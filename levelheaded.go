// Package levelheaded (import "repro") is a from-scratch Go
// reproduction of LevelHeaded — "A Unified Engine for Business
// Intelligence and Linear Algebra Querying" (Aberger, Lamb, Olukotun,
// Ré; ICDE 2018) — an in-memory relational engine that executes both
// SQL-style BI queries and linear-algebra kernels with a single
// worst-case optimal join (WCOJ) architecture.
//
// The public API is a thin facade over internal/core:
//
//	eng := levelheaded.New()
//	tab, _ := eng.CreateTable(levelheaded.Schema{
//		Name: "matrix",
//		Cols: []levelheaded.ColumnDef{
//			{Name: "i", Kind: levelheaded.Int64, Role: levelheaded.Key, Domain: "dim"},
//			{Name: "j", Kind: levelheaded.Int64, Role: levelheaded.Key, Domain: "dim"},
//			{Name: "v", Kind: levelheaded.Float64, Role: levelheaded.Annotation},
//		},
//	})
//	tab.Append(int64(0), int64(1), 0.5)
//	res, _ := eng.Query(ctx, `SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v
//		FROM matrix AS m1, matrix AS m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`)
//
// Tables stay appendable after the first query: later Append calls land
// in a per-table delta store that the next query folds in through an
// epoch snapshot, and Compact merges deltas into base storage off the
// hot path.
//
// Keys (the only joinable attributes) are dictionary-encoded into
// tries; annotations live in flat columnar buffers reachable from any
// trie level; queries compile SQL → hypergraph → GHD → cost-ordered
// WCOJ plan (paper §III–§V).
package levelheaded

import (
	"context"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Re-exported storage types: schemas classify every attribute as a Key
// (joinable, trie-stored) or an Annotation (aggregatable, columnar).
type (
	// Schema declares a table.
	Schema = storage.Schema
	// ColumnDef declares one column.
	ColumnDef = storage.ColumnDef
	// Table is a loaded base relation.
	Table = storage.Table
	// Result is a columnar query result.
	Result = exec.Result
	// ResultColumn is one typed column of a Result.
	ResultColumn = exec.Column
	// QueryOptions carries per-query experiment overrides.
	QueryOptions = core.QueryOptions
	// TableStatus reports one table's live-data state (rows, delta
	// backlog, generation, last compaction epoch).
	TableStatus = core.TableStatus
	// Option configures an Engine at construction.
	Option = core.Option
	// QueryStats is the per-query observability record: phase timings,
	// per-kernel intersection counts, dispatch decision, trie-cache
	// behavior. Reachable from Result.Stats.
	QueryStats = obs.QueryStats
	// EngineMetrics accumulates per-engine totals across queries.
	EngineMetrics = obs.EngineMetrics
	// Telemetry is the engine-wide telemetry collector: latency
	// histograms per phase and dispatch class, the live query registry,
	// and retained traces. Share one across engines with WithTelemetry
	// to aggregate a fleet behind a single debug server.
	Telemetry = telemetry.Collector
	// Trace is one query's hierarchical span record (query → phase →
	// GHD node → kernel), reachable from QueryStats.Trace; render it
	// with TreeString or export it with ChromeTraceJSON.
	Trace = telemetry.Trace
	// QueryInfo describes one in-flight (or recently finished) query in
	// the live registry.
	QueryInfo = telemetry.QueryInfo
	// StatementSnapshot is one fingerprint's cumulative statement
	// statistics (the pg_stat_statements row analog), from
	// Engine.Statements or /debug/statements.
	StatementSnapshot = telemetry.StatementSnapshot
	// DebugServer is a running telemetry HTTP server (see ServeDebug).
	DebugServer = telemetry.Server
)

// Typed errors. All are errors.Is/As-compatible and carry the offending
// SQL or schema object; ParseError/PlanError/ExecError wrap the
// underlying cause (so errors.Is(err, context.Canceled) sees through an
// ExecError after a cancellation).
type (
	// ParseError reports SQL the front-end could not parse.
	ParseError = qerr.ParseError
	// PlanError reports a query that could not be planned or ordered.
	PlanError = qerr.PlanError
	// ExecError reports a failure (or cancellation) during execution.
	ExecError = qerr.ExecError
	// UnknownTableError reports a reference to a table never created.
	UnknownTableError = qerr.UnknownTableError
	// UnknownColumnError reports a reference to a column not in a schema.
	UnknownColumnError = qerr.UnknownColumnError
	// FrozenTableError reports a bulk SetColumnData attempted after
	// freeze. It is retired from the append path: Table.Append and
	// LoadDelimitedContext now succeed on frozen tables by writing to
	// the delta store.
	FrozenTableError = qerr.FrozenTableError
	// ResourceExhaustedError reports a query aborted for exceeding its
	// memory budget (or the engine-wide soft limit).
	ResourceExhaustedError = qerr.ResourceExhaustedError
	// OverloadedError reports a query shed by admission control; its
	// RetryAfter is a backoff hint (lhserve maps it to HTTP 429).
	OverloadedError = qerr.OverloadedError
	// InternalError reports a panic contained at the query boundary: the
	// query failed, the engine keeps serving, Stack has the crash site.
	InternalError = qerr.InternalError
)

// Column kinds.
const (
	Int64   = storage.Int64
	Float64 = storage.Float64
	String  = storage.String
	Date    = storage.Date
)

// Column roles (the LevelHeaded data model, paper §III-A).
const (
	Key        = storage.Key
	Annotation = storage.Annotation
)

// Result column kinds.
const (
	KindInt    = exec.KindInt
	KindFloat  = exec.KindFloat
	KindString = exec.KindString
)

// Engine options.
var (
	// WithThreads bounds query parallelism (0 = GOMAXPROCS).
	WithThreads = core.WithThreads
	// WithAttributeElimination toggles §IV attribute elimination.
	WithAttributeElimination = core.WithAttributeElimination
	// WithCostOptimizer toggles the §V cost-based attribute ordering.
	WithCostOptimizer = core.WithCostOptimizer
	// WithWorstOrder selects the highest-cost attribute orders.
	WithWorstOrder = core.WithWorstOrder
	// WithBLAS toggles the dense-kernel dispatch of §III-D.
	WithBLAS = core.WithBLAS
	// WithTrieCache toggles cross-query reuse of unfiltered tries.
	WithTrieCache = core.WithTrieCache
	// WithTelemetry shares an existing telemetry collector with the
	// engine (instead of the private one every engine otherwise gets).
	WithTelemetry = core.WithTelemetry
	// WithSlowQueryLog emits one JSON line per query slower than the
	// threshold (threshold 0 logs every query).
	WithSlowQueryLog = core.WithSlowQueryLog
	// WithMemoryBudget caps each query's tracked memory; over-budget
	// queries abort with *ResourceExhaustedError (0 = unlimited).
	WithMemoryBudget = core.WithMemoryBudget
	// WithMemorySoftLimit sets the engine-wide soft memory limit; when
	// tracked allocations or the process heap exceed it, the next query
	// to allocate aborts (0 = unlimited).
	WithMemorySoftLimit = core.WithMemorySoftLimit
	// WithMaxConcurrency bounds concurrently executing queries; excess
	// queries queue, and queue overflow sheds with *OverloadedError
	// (0 = unlimited).
	WithMaxConcurrency = core.WithMaxConcurrency
	// WithQueueDepth bounds the admission wait queue used with
	// WithMaxConcurrency.
	WithQueueDepth = core.WithQueueDepth
	// WithAutoCompact starts a background compaction whenever a table's
	// delta backlog reaches the given row count (0 = manual Compact
	// only).
	WithAutoCompact = core.WithAutoCompact
	// WithApproxSampleRows sets the per-table reservoir sample capacity
	// of the approximate query tier (0 = the 4096-row default). Smaller
	// samples answer faster with wider error bounds.
	WithApproxSampleRows = core.WithApproxSampleRows
	// WithDurability makes every acked append crash-durable: rows are
	// written to a per-table write-ahead log in dir before they commit,
	// Compact additionally persists an atomic snapshot there, and a new
	// engine pointed at the same dir recovers the snapshot plus WAL
	// tails on startup (see Recovered / RecoveryError).
	WithDurability = core.WithDurability
)

// SyncPolicy controls when WAL appends reach stable storage (see
// WithDurability). Records are always *written* per append — any
// policy survives a process crash; the policy only decides fsync
// cadence, i.e. what survives power loss.
type SyncPolicy = wal.Policy

// Sync policy constructors.
var (
	// SyncEvery fsyncs after every append batch (power-loss-safe,
	// slowest).
	SyncEvery = wal.SyncEvery
	// GroupCommit fsyncs on a background interval (d <= 0 uses the
	// 50ms default). The recommended default.
	GroupCommit = wal.GroupCommit
	// NoSync never fsyncs; the OS flushes on its own schedule.
	NoSync = wal.NoSync
	// ParseSyncPolicy parses "always", "group[:dur]", "interval[:dur]"
	// or "none" (the -sync flag syntax of lhserve).
	ParseSyncPolicy = wal.ParsePolicy
)

// NewTelemetry creates a standalone telemetry collector to share across
// engines via WithTelemetry.
func NewTelemetry() *Telemetry { return telemetry.NewCollector() }

// ServeDebug starts the telemetry HTTP server on addr (host:port;
// port 0 picks a free one) exposing /metrics in Prometheus text format,
// /debug/queries, /debug/trace/<id>, and /debug/pprof. Close the
// returned server to stop it.
func ServeDebug(addr string, t *Telemetry) (*DebugServer, error) {
	return telemetry.Serve(addr, t)
}

// Engine is a LevelHeaded database instance.
type Engine struct {
	inner *core.Engine
}

// New creates an empty engine.
func New(opts ...Option) *Engine {
	return &Engine{inner: core.New(opts...)}
}

// CreateTable registers a base table; load rows with Table.Append,
// Table.SetColumnData, or Engine.LoadDelimitedContext. Appends keep
// working after the first query (they land in a delta store).
func (e *Engine) CreateTable(s Schema) (*Table, error) {
	return e.inner.CreateTable(s)
}

// Table returns a registered table by name, or nil.
func (e *Engine) Table(name string) *Table {
	return e.inner.Catalog().Table(name)
}

// LoadDelimitedContext bulk-loads delimiter-separated rows into a table
// ('|' for TPC-H .tbl files, ',' for CSV). The context is checked at
// chunk boundaries, so a cancelled load returns promptly. Works before
// and after the first query: post-freeze rows land in the table's delta
// store, exactly like Table.Append.
func (e *Engine) LoadDelimitedContext(ctx context.Context, table string, r io.Reader, delim byte) error {
	t := e.inner.Catalog().Table(table)
	if t == nil {
		return &UnknownTableError{Name: table}
	}
	return t.LoadDelimitedContext(ctx, r, delim)
}

// LoadDelimited bulk-loads delimiter-separated rows into a table.
//
// Deprecated: use LoadDelimitedContext, which can be cancelled
// mid-load.
func (e *Engine) LoadDelimited(table string, r io.Reader, delim byte) error {
	return e.LoadDelimitedContext(context.Background(), table, r, delim)
}

// Compact folds rows appended since the last compaction into fresh,
// right-sized base storage and rebuilds cached tries off the hot path.
// Appended rows are queryable WITHOUT calling Compact (the first query
// after an append folds them into an epoch snapshot incrementally);
// compaction reclaims the delta logs and re-rightsizes storage, and is
// also kicked automatically when configured with WithAutoCompact.
// Results are byte-identical before and after a compaction. It is
// single-flight, cancellable, governor-accounted and panic-contained.
// On a never-queried engine it performs the initial freeze.
func (e *Engine) Compact(ctx context.Context) error { return e.inner.Compact(ctx) }

// Freeze seals the catalog's base encodings; it runs automatically on
// the first query.
//
// Deprecated: Freeze is no longer a one-way door — tables accept
// Append before and after it. Use Compact, which performs the initial
// freeze on a cold engine and folds delta rows on a live one.
func (e *Engine) Freeze() error { return e.inner.Freeze() }

// QueryOption configures one query (see Query). Options compose left
// to right.
type QueryOption func(*queryConfig)

type queryConfig struct {
	qo       core.QueryOptions
	deadline time.Duration
}

// WithDeadline bounds the query's wall-clock time: the query is
// cancelled (returning an *ExecError wrapping context.DeadlineExceeded)
// once d elapses. 0 means no deadline beyond the caller's context.
func WithDeadline(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.deadline = d }
}

// WithMemBudget overrides the engine-level per-query memory budget for
// this query; over-budget queries abort with *ResourceExhaustedError.
func WithMemBudget(n int64) QueryOption {
	return func(c *queryConfig) { c.qo.MemoryBudget = n }
}

// WithApproxOK declares the caller tolerates approximate answers: the
// engine may route eligible single-table aggregates to the
// sketch/sample tier when the cost model prices exact execution high
// enough, and a query shed by admission control degrades to the
// approximate tier instead of failing with *OverloadedError.
// Result.Stats.Approx reports whether the answer is approximate, with
// Result.Stats.ErrorBound / Confidence carrying the accuracy contract.
// Without the opt-in every result stays exact and bit-identical.
func WithApproxOK() QueryOption {
	return func(c *queryConfig) { c.qo.ApproxOK = true }
}

// WithThreadCap overrides the engine thread setting for this query.
func WithThreadCap(n int) QueryOption {
	return func(c *queryConfig) { c.qo.Threads = n }
}

// WithOrder pins the root GHD node's attribute order (the paper's
// Fig. 5b/5c experiments).
func WithOrder(attrs ...string) QueryOption {
	return func(c *queryConfig) { c.qo.ForcedOrder = attrs }
}

// WithRelaxedOrder pins the root order and marks it as a §V-A2 relaxed
// order (last materialized attribute resolved by union).
func WithRelaxedOrder(attrs ...string) QueryOption {
	return func(c *queryConfig) { c.qo.ForcedOrder, c.qo.ForcedRelaxed = attrs, true }
}

// WithWorstCaseOrder selects the highest-cost attribute order for this
// query (the "-Attr. Ord." ablation).
func WithWorstCaseOrder() QueryOption {
	return func(c *queryConfig) { c.qo.WorstOrder = true }
}

// WithOptions applies a full QueryOptions struct — the escape hatch
// for callers migrating from the deprecated QueryWith signature.
func WithOptions(qo QueryOptions) QueryOption {
	return func(c *queryConfig) { c.qo = qo }
}

// Query parses, plans, optimizes and executes one SQL query (the
// supported subset is described in the README). It is the canonical
// entry point: cancellation and deadline from ctx are honored between
// lifecycle phases and at parfor chunk boundaries (a cancelled query
// returns an *ExecError wrapping ctx.Err()), and per-query behavior is
// set with functional options:
//
//	res, err := eng.Query(ctx, sql, levelheaded.WithDeadline(2*time.Second))
//
// The first query freezes cold tables automatically; rows appended
// after that (Table.Append) are visible to the next query through an
// epoch snapshot, with no explicit Compact required.
func (e *Engine) Query(ctx context.Context, sql string, opts ...QueryOption) (*Result, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
		defer cancel()
	}
	return e.inner.QueryWithContext(ctx, sql, cfg.qo)
}

// QueryWith executes a query with per-query overrides.
//
// Deprecated: use Query with functional options (WithOptions accepts
// an existing QueryOptions value).
func (e *Engine) QueryWith(sql string, qo QueryOptions) (*Result, error) {
	return e.inner.QueryWithContext(context.Background(), sql, qo)
}

// QueryContext executes a query under a context.
//
// Deprecated: use Query, whose first argument is the context.
func (e *Engine) QueryContext(ctx context.Context, sql string) (*Result, error) {
	return e.inner.QueryWithContext(ctx, sql, QueryOptions{})
}

// QueryWithContext combines QueryContext and QueryWith.
//
// Deprecated: use Query with functional options.
func (e *Engine) QueryWithContext(ctx context.Context, sql string, qo QueryOptions) (*Result, error) {
	return e.inner.QueryWithContext(ctx, sql, qo)
}

// IngestRows appends a batch of rows to the named table under governor
// admission (an overloaded engine sheds the batch with
// *OverloadedError). Rows are visible to the next query.
func (e *Engine) IngestRows(ctx context.Context, table string, rows [][]interface{}) (int, error) {
	return e.inner.IngestRows(ctx, table, rows)
}

// IngestBatch is IngestRows with an idempotency key: if batchID was
// already ingested (on this engine, or before a crash — ids are logged
// in the WAL and carried by snapshots), the batch is skipped and dup
// is true. An empty batchID degrades to plain IngestRows. Requires
// WithDurability for dedup to survive restarts.
func (e *Engine) IngestBatch(ctx context.Context, table, batchID string, rows [][]interface{}) (n int, dup bool, err error) {
	return e.inner.IngestBatch(ctx, table, batchID, rows)
}

// Recovered reports whether startup recovery (WithDurability) restored
// any persisted state — a snapshot or at least one WAL record.
func (e *Engine) Recovered() bool { return e.inner.Recovered() }

// RecoveryError reports a non-corruption failure during startup
// recovery (corrupt WAL tails are truncated and counted, never
// errors). The engine still serves; callers decide whether degraded
// durability is acceptable.
func (e *Engine) RecoveryError() error { return e.inner.RecoveryError() }

// TablesStatus reports per-table live-data state: visible rows, delta
// rows awaiting compaction, generation, and last-compaction epoch.
func (e *Engine) TablesStatus() []TableStatus { return e.inner.TablesStatus() }

// Explain renders the plan: hypergraph, GHD, attribute orders and their
// §V cost terms.
func (e *Engine) Explain(sql string) (string, error) { return e.inner.Explain(sql) }

// ExplainAnalyze executes the query and renders the plan followed by
// measured per-phase timings, per-kernel intersection counts, and the
// dispatch decision taken.
func (e *Engine) ExplainAnalyze(sql string) (string, error) {
	return e.inner.ExplainAnalyze(sql)
}

// ExplainAnalyzeContext is ExplainAnalyze under a context.
func (e *Engine) ExplainAnalyzeContext(ctx context.Context, sql string) (string, error) {
	return e.inner.ExplainAnalyzeContext(ctx, sql)
}

// Metrics exposes the engine's cumulative counters (queries, errors,
// per-phase nanoseconds, per-kernel intersection counts, cache
// behavior). Safe to read concurrently with running queries; use
// Metrics().Snapshot() for an expvar-style map.
func (e *Engine) Metrics() *EngineMetrics { return e.inner.Metrics() }

// CacheSize reports how many unfiltered tries are cached.
func (e *Engine) CacheSize() int { return e.inner.CacheSize() }

// Telemetry exposes the engine's telemetry collector (latency
// histograms, live query registry, retained traces) — pass it to
// ServeDebug to monitor the engine over HTTP.
func (e *Engine) Telemetry() *Telemetry { return e.inner.Telemetry() }

// Statements exports per-fingerprint statement statistics sorted
// descending by the given key ("" or "time" = total latency; see
// telemetry.StatementSortKeys for the rest); limit <= 0 returns all.
func (e *Engine) Statements(by string, limit int) []StatementSnapshot {
	return e.inner.Statements(by, limit)
}

// BeginShutdown stops admitting queries: queued and subsequent queries
// fail with *OverloadedError while in-flight queries run to completion.
func (e *Engine) BeginShutdown() { e.inner.BeginShutdown() }

// Drain blocks until every in-flight query finishes or ctx expires;
// stragglers are then cancelled through the live query registry. It
// returns the number of force-cancelled queries. Call BeginShutdown
// first so the drain converges.
func (e *Engine) Drain(ctx context.Context) int { return e.inner.Drain(ctx) }
