package levelheaded_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	lh "repro"
)

// triangleEngine is a small cyclic-join workload that exercises the
// generic WCOJ path.
func triangleEngine(t *testing.T) *lh.Engine {
	t.Helper()
	eng := lh.New()
	tab, err := eng.CreateTable(lh.Schema{Name: "edges", Cols: []lh.ColumnDef{
		{Name: "src", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
		{Name: "dst", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	edges := [][2]int64{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{0, 3}, {5, 0},
	}
	for _, e := range edges {
		if err := tab.AppendRow(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

const triangleSQL = `SELECT count(*) as c FROM edges e1, edges e2, edges e3
	WHERE e1.dst = e2.src AND e3.src = e1.src AND e3.dst = e2.dst`

func TestResultCarriesQueryStats(t *testing.T) {
	eng := triangleEngine(t)
	res, err := eng.Query(context.Background(), triangleSQL)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil {
		t.Fatal("Result.Stats is nil")
	}
	if st.SQL != triangleSQL {
		t.Fatalf("stats SQL = %q", st.SQL)
	}
	if st.Phases.Total <= 0 || st.Phases.Execute <= 0 {
		t.Fatalf("phases not timed: %+v", st.Phases)
	}
	if st.Phases.Parse <= 0 || st.Phases.Plan <= 0 {
		t.Fatalf("cold run should time parse/plan: %+v", st.Phases)
	}
	if st.PlanCached {
		t.Fatal("cold run reported a plan-cache hit")
	}
	if st.Intersect.Total() == 0 {
		t.Fatal("no intersection kernels counted on a cyclic join")
	}
	if st.Dispatch != "generic-wcoj" {
		t.Fatalf("dispatch = %q", st.Dispatch)
	}
	if st.GHDNodes == 0 || len(st.RootOrder) != 3 {
		t.Fatalf("GHD decision missing: nodes=%d order=%v", st.GHDNodes, st.RootOrder)
	}
	if st.RowsOut != 1 {
		t.Fatalf("rows out = %d", st.RowsOut)
	}

	// Hot run: plan cache hit, tries from the trie cache.
	res2, err := eng.Query(context.Background(), triangleSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.PlanCached {
		t.Fatal("hot run missed the plan cache")
	}
	if res2.Stats.TrieCacheHits == 0 {
		t.Fatal("hot run missed the trie cache")
	}

	m := eng.Metrics().Snapshot()
	if m["queries"] != 2 || m["errors"] != 0 {
		t.Fatalf("metrics queries=%d errors=%d", m["queries"], m["errors"])
	}
	if m["plan_cache_hits"] != 1 {
		t.Fatalf("plan_cache_hits = %d", m["plan_cache_hits"])
	}
	if m["isect_bs_bs"] == 0 {
		t.Fatalf("engine totals missing kernel counts: %v", m)
	}
}

func TestExplainAnalyzeOutput(t *testing.T) {
	eng := triangleEngine(t)
	out, err := eng.ExplainAnalyze(triangleSQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"hypergraph", "order=", // plan half
		"dispatch: generic-wcoj", "phases:", "execute=",
		"intersections:", "bs∩bs=", "rows: 1", // analyze half
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
}

func TestQueryContextPreCanceled(t *testing.T) {
	eng := triangleEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.QueryContext(ctx, triangleSQL)
	if err == nil {
		t.Fatal("canceled context did not fail the query")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	var ee *lh.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err %T does not unwrap to *ExecError", err)
	}
	if !strings.Contains(ee.SQL, "FROM edges") {
		t.Fatalf("ExecError.SQL = %q", ee.SQL)
	}
	if eng.Metrics().Snapshot()["errors"] != 1 {
		t.Fatal("canceled query not counted as an error")
	}
}

func TestQueryContextMidQueryCancel(t *testing.T) {
	// A large enough self-join that cancellation lands mid-execution;
	// whatever the timing, the call must return (no goroutine leak, no
	// deadlock) and, if it errored, with context.Canceled.
	eng := lh.New()
	tab, err := eng.CreateTable(lh.Schema{Name: "edges", Cols: []lh.ColumnDef{
		{Name: "src", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
		{Name: "dst", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := int64(0); i < n; i++ {
		for _, d := range []int64{1, 2, 3, 5, 7, 11, 13, 17} {
			if err := tab.AppendRow(i, (i+d)%n); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	_, qerr := eng.QueryContext(ctx, triangleSQL)
	if qerr != nil && !errors.Is(qerr, context.Canceled) {
		t.Fatalf("mid-query cancel error = %v", qerr)
	}
	// Workers must have drained; allow the runtime a few scheduling
	// rounds to retire them.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestTypedErrorsRoundTrip(t *testing.T) {
	eng := triangleEngine(t)

	_, err := eng.Query(context.Background(), "SELEC nope")
	var pe *lh.ParseError
	if !errors.As(err, &pe) || !strings.Contains(pe.SQL, "SELEC") {
		t.Fatalf("parse error = %#v", err)
	}

	_, err = eng.Query(context.Background(), "SELECT count(*) as c FROM nosuch")
	var ple *lh.PlanError
	if !errors.As(err, &ple) {
		t.Fatalf("plan error = %#v", err)
	}
	var ute *lh.UnknownTableError
	if !errors.As(err, &ute) || ute.Name != "nosuch" {
		t.Fatalf("unknown-table cause not preserved: %#v", err)
	}
}

func TestFrozenTableTypedErrors(t *testing.T) {
	eng := triangleEngine(t)
	tab := eng.Table("edges")

	// Unknown column in bulk load, before freeze.
	err := tab.SetColumnData(map[string]interface{}{"nope": []int64{1}})
	var uce *lh.UnknownColumnError
	if !errors.As(err, &uce) || uce.Column != "nope" {
		t.Fatalf("unknown column error = %#v", err)
	}

	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	// Appends are no longer refused after freeze: they land in the
	// table's delta store and the next query folds them in.
	before := tab.TotalRows()
	if err := tab.Append(int64(9), int64(9)); err != nil {
		t.Fatalf("append-after-freeze should succeed, got %#v", err)
	}
	if err := tab.LoadDelimitedContext(context.Background(), strings.NewReader("7,8\n"), ','); err != nil {
		t.Fatalf("load-after-freeze should succeed, got %#v", err)
	}
	if got := tab.TotalRows(); got != before+2 {
		t.Fatalf("rows after post-freeze appends = %d, want %d", got, before+2)
	}
	// Bulk column replacement stays a pre-freeze-only operation.
	var fte *lh.FrozenTableError
	if err := tab.SetColumnData(nil); !errors.As(err, &fte) {
		t.Fatalf("set-after-freeze error = %#v", err)
	}
	if _, err := eng.CreateTable(lh.Schema{Name: "late", Cols: []lh.ColumnDef{
		{Name: "k", Kind: lh.Int64, Role: lh.Key},
	}}); !errors.As(err, &fte) {
		t.Fatalf("create-after-freeze error = %#v", err)
	}
}
