GO ?= go

# bench-save/bench-compare parameters: the committed baseline file and
# the scale factor it was measured at.
BENCH_BASELINE ?= BENCH_tpch.json
BENCH_SF ?= 0.01
# Runs per query; benchdiff compares the min, and min-over-15 is stable
# enough on a shared machine for the 2% regression gate below.
BENCH_COUNT ?= 15
BENCH_WARMUP ?= 2
# Regression gate for bench-compare in ci: fail when the TPC-H geomean
# time ratio new/old exceeds this (the delta-store machinery must cost
# nothing while deltas are empty — the hot path branches on one nil
# snapshot pointer).
BENCH_MAX_RATIO ?= 1.02
# Per-query gate: no single query may regress past this ratio, so a
# large aggregate win (e.g. the hybrid access path) cannot hide one
# query that the classifier got wrong.
BENCH_MAX_QUERY_RATIO ?= 1.05

# difftest-long parameters: wall-clock budget for the nightly
# randomized sweep (time-seeded; failures shrink to a JSON repro).
DIFFTEST_BUDGET ?= 60s

# crash target parameters: SIGKILL iterations for the subprocess
# crash-recovery harness (acceptance: 50/50 green).
CRASH_ITERS ?= 50

.PHONY: all build vet lint test race bench-smoke bench-save bench-compare bench-durable hybrid-ab ingest-ab approx-ab telemetry-race telemetry-smoke chaos crash iocheck difftest difftest-long ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is optional tooling: when it
# is not on PATH the target (and ci) skips it rather than failing, so a
# hermetic build environment stays green.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short benchmark smoke: one pass over the TPC-H suite at the smallest
# scale plus the zero-allocation guards on the set-intersection and
# aggregation inner loops — enough to notice a hot-path regression (or
# perf plumbing rot) without a full run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTableII_TPCH' -benchtime 1x .
	$(GO) test -run 'ZeroAllocs' -count=1 ./internal/set ./internal/exec

# Snapshot the TPC-H perf baseline into $(BENCH_BASELINE). Run on a
# quiet machine; commit the result so bench-compare has a reference.
bench-save:
	$(GO) run ./cmd/lhbench -suite tpch -sf $(BENCH_SF) -count $(BENCH_COUNT) -warmup $(BENCH_WARMUP) -json $(BENCH_BASELINE)

# Diff a fresh run against the committed baseline (benchstat-style
# geomean + per-query table, via the in-repo cmd/benchdiff).
bench-compare:
	$(GO) run ./cmd/lhbench -suite tpch -sf $(BENCH_SF) -count $(BENCH_COUNT) -warmup $(BENCH_WARMUP) -json /tmp/bench_current.json
	$(GO) run ./cmd/benchdiff -max-ratio $(BENCH_MAX_RATIO) -max-query-ratio $(BENCH_MAX_QUERY_RATIO) $(BENCH_BASELINE) /tmp/bench_current.json

# A/B the two access paths of the hybrid executor over the TPC-H suite:
# one run with every GHD node forced onto the binary hash-join chain,
# one forced onto pure WCOJ, diffed with benchdiff (no gate — this is a
# measurement tool, not a regression check). LH_FORCE_PATH is the same
# env override the chaos drills use.
hybrid-ab:
	LH_FORCE_PATH=wcoj $(GO) run ./cmd/lhbench -suite tpch -sf $(BENCH_SF) -count $(BENCH_COUNT) -warmup $(BENCH_WARMUP) -json /tmp/bench_wcoj.json
	LH_FORCE_PATH=binary $(GO) run ./cmd/lhbench -suite tpch -sf $(BENCH_SF) -count $(BENCH_COUNT) -warmup $(BENCH_WARMUP) -json /tmp/bench_binary.json
	$(GO) run ./cmd/benchdiff /tmp/bench_wcoj.json /tmp/bench_binary.json

# A/B the WAL sync policies on TPC-H lineitem ingest (in-memory vs
# no-fsync vs group commit vs fsync-per-batch). A measurement tool, not
# a gate; the results annotate $(BENCH_BASELINE) as "_ingest/<policy>"
# records, which benchdiff skips.
ingest-ab:
	$(GO) run ./cmd/lhbench -suite ingest-ab -count $(BENCH_COUNT) -warmup $(BENCH_WARMUP) -json /tmp/bench_ingest_ab.json

# A/B the approximate query tier against exact execution on TPC-H-style
# count-distinct / heavy-hitter / filtered-aggregate queries (speedup,
# chosen route, observed error vs the advertised bound — the run fails
# if an observed error ever exceeds its bound). A measurement tool, not
# a perf gate; the results annotate $(BENCH_BASELINE) as
# "_approx/<name>" records, which benchdiff skips.
approx-ab:
	$(GO) run ./cmd/lhbench -suite approx-ab -sf $(BENCH_SF) -count $(BENCH_COUNT) -warmup $(BENCH_WARMUP) -json /tmp/bench_approx_ab.json

# Durable read-path gate: the full TPC-H suite with every engine running
# on a WAL + snapshot directory at the lhserve default sync policy
# (group commit), diffed against the in-memory baseline under the same
# ratio gates — durability must not tax the query path.
bench-durable:
	$(GO) run ./cmd/lhbench -suite tpch -sync group -sf $(BENCH_SF) -count $(BENCH_COUNT) -warmup $(BENCH_WARMUP) -json /tmp/bench_durable.json
	$(GO) run ./cmd/benchdiff -max-ratio $(BENCH_MAX_RATIO) -max-query-ratio $(BENCH_MAX_QUERY_RATIO) $(BENCH_BASELINE) /tmp/bench_durable.json

# Focused race check on the lock-free telemetry paths (histogram
# recording, span buffers, registry) and their integration points.
telemetry-race:
	$(GO) test -race -count=1 ./internal/telemetry/... ./internal/obs/... .

# Debug-server smoke: boot lhserve on a random port, run the query mix,
# and scrape /metrics and a trace dump through the real listener.
telemetry-smoke:
	$(GO) run ./cmd/lhserve -gen matrix -la 0.05 -http 127.0.0.1:0 -smoke

# Resource-governance gauntlet: fault-injected panics in exec/trie/set
# must fail only the query that hit them, over-budget queries abort
# with ResourceExhausted, overload sheds with Retry-After, and the
# governor/registry accounting drains to zero — all under -race — plus
# a short front-end fuzz (malformed SQL must never panic).
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestOverload|TestGovernorStress|TestEngineShutdown|TestSkewed' ./internal/core
	$(GO) test -race -count=1 ./internal/governor ./internal/faultinject
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 5s ./internal/sqlparse
	$(GO) test -race -count=1 -run 'TestDurable|TestIngestBatch|TestCrashRecoverySIGKILL' ./internal/core
	$(GO) test -race -count=1 ./internal/wal ./internal/snapshot
	$(GO) test -count=1 -run TestDifferentialShort ./internal/difftest -difftest.lane recovery

# SIGKILL crash-recovery gauntlet: the test binary re-execs itself as
# an ingesting child, kills it mid-ingest (including mid-compaction and
# with faultinject-widened WAL write/sync windows), recovers the data
# directory and checks that every acked row survived as an exact
# prefix. CRASH_ITERS=50 by default.
crash:
	LH_CRASH_ITERS=$(CRASH_ITERS) $(GO) test -count=1 -run TestCrashRecoverySIGKILL ./internal/core

# errcheck-style audit of the durability code: every error-returning
# io/os call in internal/wal and internal/snapshot must be consumed
# (an ignored short write or fsync error is a durability hole).
iocheck:
	$(GO) run ./cmd/iocheck ./internal/wal ./internal/snapshot

# Differential & metamorphic correctness harness (internal/difftest):
# a short, seeded, deterministic run of >=500 generated query/dataset
# pairs across the brute-force reference evaluator, the pairwise BLAS
# kernels, metamorphic identities (count partition, permutation
# invariance, aggregate re-association) and the dictionary invariant
# lane. A failure prints the shrunken JSON repro path; replay it with
# `go run ./cmd/lhfuzz -replay <file>`.
difftest:
	$(GO) test -count=1 -run TestDifferentialShort ./internal/difftest

# Nightly: time-budgeted randomized sweep with a fresh seed each run
# (set DIFFTEST_BUDGET to taste). Same shrink-to-JSON failure mode.
difftest-long:
	$(GO) test -count=1 -run TestDifferentialLong -timeout 0 \
		./internal/difftest -difftest.duration $(DIFFTEST_BUDGET)

ci: vet lint build race iocheck bench-smoke telemetry-race telemetry-smoke chaos crash difftest bench-compare

clean:
	$(GO) clean ./...
