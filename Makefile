GO ?= go

.PHONY: all build vet test race bench-smoke telemetry-race telemetry-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short benchmark smoke: one pass over the TPC-H suite at the smallest
# scale, enough to notice a hot-path regression without a full run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTableII_TPCH' -benchtime 1x .

# Focused race check on the lock-free telemetry paths (histogram
# recording, span buffers, registry) and their integration points.
telemetry-race:
	$(GO) test -race -count=1 ./internal/telemetry/... ./internal/obs/... .

# Debug-server smoke: boot lhserve on a random port, run the query mix,
# and scrape /metrics and a trace dump through the real listener.
telemetry-smoke:
	$(GO) run ./cmd/lhserve -gen matrix -la 0.05 -http 127.0.0.1:0 -smoke

ci: vet build race bench-smoke telemetry-race telemetry-smoke

clean:
	$(GO) clean ./...
