GO ?= go

.PHONY: all build vet test race bench-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short benchmark smoke: one pass over the TPC-H suite at the smallest
# scale, enough to notice a hot-path regression without a full run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTableII_TPCH' -benchtime 1x .

ci: vet build race bench-smoke

clean:
	$(GO) clean ./...
