package levelheaded_test

import (
	"context"
	"strings"
	"testing"
	"time"

	lh "repro"
)

func matrixEngine(t *testing.T) *lh.Engine {
	t.Helper()
	eng := lh.New()
	m, err := eng.CreateTable(lh.Schema{
		Name: "matrix",
		Cols: []lh.ColumnDef{
			{Name: "i", Kind: lh.Int64, Role: lh.Key, Domain: "dim"},
			{Name: "j", Kind: lh.Int64, Role: lh.Key, Domain: "dim"},
			{Name: "v", Kind: lh.Float64, Role: lh.Annotation},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cells := [][3]interface{}{
		{int64(0), int64(0), 1.0}, {int64(0), int64(1), 2.0},
		{int64(1), int64(1), 3.0},
	}
	for _, c := range cells {
		if err := m.AppendRow(c[0], c[1], c[2]); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func TestPublicAPIMatMul(t *testing.T) {
	eng := matrixEngine(t)
	res, err := eng.Query(context.Background(), `SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v
		FROM matrix AS m1, matrix AS m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`)
	if err != nil {
		t.Fatal(err)
	}
	// A² for [[1 2],[0 3]] = [[1 8],[0 9]].
	want := map[[2]int64]float64{{0, 0}: 1, {0, 1}: 8, {1, 1}: 9}
	if res.NumRows != len(want) {
		t.Fatalf("rows = %d, want %d", res.NumRows, len(want))
	}
	for r := 0; r < res.NumRows; r++ {
		k := [2]int64{res.Col("i").I64[r], res.Col("j").I64[r]}
		if res.Col("v").F64[r] != want[k] {
			t.Fatalf("C[%v] = %v, want %v", k, res.Col("v").F64[r], want[k])
		}
	}
}

func TestPublicAPILoadDelimited(t *testing.T) {
	eng := lh.New()
	_, err := eng.CreateTable(lh.Schema{
		Name: "sales",
		Cols: []lh.ColumnDef{
			{Name: "id", Kind: lh.Int64, Role: lh.Key, PK: true},
			{Name: "region", Kind: lh.String, Role: lh.Annotation},
			{Name: "amount", Kind: lh.Float64, Role: lh.Annotation},
			{Name: "day", Kind: lh.Date, Role: lh.Annotation},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	csv := "1,EAST,10.5,2020-01-01\n2,WEST,4,2020-02-01\n3,EAST,2,2020-03-01\n"
	if err := eng.LoadDelimited("sales", strings.NewReader(csv), ','); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(context.Background(), `SELECT region, sum(amount) as total FROM sales
		WHERE day >= date '2020-01-15' GROUP BY region`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for r := 0; r < res.NumRows; r++ {
		got[res.Col("region").Str[r]] = res.Col("total").F64[r]
	}
	if got["EAST"] != 2 || got["WEST"] != 4 {
		t.Fatalf("groups = %v", got)
	}
	// Unknown table errors with the typed error.
	err = eng.LoadDelimited("missing", strings.NewReader(""), ',')
	if _, ok := err.(*lh.UnknownTableError); !ok {
		t.Fatalf("error type = %T", err)
	}
}

func TestPublicAPIExplainAndCache(t *testing.T) {
	eng := matrixEngine(t)
	plan, err := eng.Explain(`SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v
		FROM matrix AS m1, matrix AS m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "hypergraph") || !strings.Contains(plan, "order=") {
		t.Fatalf("explain = %q", plan)
	}
	if _, err := eng.Query(context.Background(), `SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v
		FROM matrix AS m1, matrix AS m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`); err != nil {
		t.Fatal(err)
	}
	if eng.CacheSize() == 0 {
		t.Error("trie cache should be warm after a query")
	}
	if eng.Table("matrix") == nil || eng.Table("zzz") != nil {
		t.Error("Table lookup wrong")
	}
}

func TestPublicAPIOptions(t *testing.T) {
	for _, opts := range [][]lh.Option{
		{lh.WithThreads(2)},
		{lh.WithAttributeElimination(false)},
		{lh.WithCostOptimizer(false)},
		{lh.WithWorstOrder(true)},
		{lh.WithBLAS(false)},
		{lh.WithTrieCache(false)},
	} {
		eng := lh.New(opts...)
		m, err := eng.CreateTable(lh.Schema{
			Name: "m",
			Cols: []lh.ColumnDef{
				{Name: "i", Kind: lh.Int64, Role: lh.Key, Domain: "d"},
				{Name: "j", Kind: lh.Int64, Role: lh.Key, Domain: "d"},
				{Name: "v", Kind: lh.Float64, Role: lh.Annotation},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = m.AppendRow(int64(0), int64(1), 2.0)
		_ = m.AppendRow(int64(1), int64(0), 3.0)
		res, err := eng.Query(context.Background(), `SELECT m1.i, sum(m1.v * m2.v) AS v
			FROM m AS m1, m AS m2 WHERE m1.j = m2.i GROUP BY m1.i`)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows != 2 {
			t.Fatalf("opts %T: rows = %d", opts[0], res.NumRows)
		}
	}
}

func TestPublicAPIQueryWith(t *testing.T) {
	eng := matrixEngine(t)
	res, err := eng.QueryWith(`SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v
		FROM matrix AS m1, matrix AS m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`,
		lh.QueryOptions{WorstOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 3 {
		t.Fatalf("worst-order rows = %d", res.NumRows)
	}
}

func TestPublicAPIQueryOptions(t *testing.T) {
	eng := matrixEngine(t)
	ctx := context.Background()
	sql := `SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v
		FROM matrix AS m1, matrix AS m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`
	for name, opts := range map[string][]lh.QueryOption{
		"none":      nil,
		"worst":     {lh.WithWorstCaseOrder()},
		"deadline":  {lh.WithDeadline(time.Minute)},
		"threads":   {lh.WithThreadCap(1)},
		"budget":    {lh.WithMemBudget(1 << 30)},
		"approx":    {lh.WithApproxOK()},
		"escape":    {lh.WithOptions(lh.QueryOptions{WorstOrder: true})},
		"composite": {lh.WithDeadline(time.Minute), lh.WithThreadCap(2)},
	} {
		res, err := eng.Query(ctx, sql, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.NumRows != 3 {
			t.Fatalf("%s: rows = %d, want 3", name, res.NumRows)
		}
	}
	if _, err := eng.Query(ctx, sql, lh.WithDeadline(time.Nanosecond)); err == nil {
		t.Fatal("nanosecond deadline should cancel the query")
	}
}

func TestPublicAPIAppendAfterQuery(t *testing.T) {
	eng := matrixEngine(t)
	ctx := context.Background()
	const count = `SELECT count(*) as n FROM matrix`
	res, err := eng.Query(ctx, count)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Col("n").F64[0]; got != 3 {
		t.Fatalf("base count = %v", got)
	}
	// Append to the now-frozen table: the row must be visible to the
	// next query without any explicit Compact.
	if err := eng.Table("matrix").Append(int64(5), int64(5), 7.0); err != nil {
		t.Fatal(err)
	}
	res, err = eng.Query(ctx, count)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Col("n").F64[0]; got != 4 {
		t.Fatalf("count after append = %v, want 4", got)
	}
	if err := eng.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	res, err = eng.Query(ctx, count)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Col("n").F64[0]; got != 4 {
		t.Fatalf("count after compact = %v, want 4", got)
	}
	st := eng.TablesStatus()
	if len(st) != 1 || st[0].DeltaRows != 0 || st[0].Rows != 4 {
		t.Fatalf("status after compact = %+v", st)
	}
}
