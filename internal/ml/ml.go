// Package ml provides the machine-learning substrate for the paper's
// §VII voter-classification application: a CSR feature matrix, one-hot
// encoding of categorical columns, and batch-gradient-descent logistic
// regression (the Scikit-learn stand-in — every pipeline in Figure 6
// trains with this same implementation, so only the SQL and encoding
// phases differ across systems).
package ml

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Dataset is a CSR feature matrix with labels: row r's features are
// (Cols[p], Vals[p]) for p in [RowPtr[r], RowPtr[r+1]).
type Dataset struct {
	N, D   int
	RowPtr []int32
	Cols   []int32
	Vals   []float64
	Y      []float64 // labels in {0, 1}
}

// Builder incrementally assembles a Dataset.
type Builder struct {
	d  *Dataset
	np int
}

// NewBuilder starts a dataset with the given feature dimensionality.
func NewBuilder(dim int) *Builder {
	return &Builder{d: &Dataset{D: dim, RowPtr: []int32{0}}}
}

// AddRow appends one example. Feature indices need not be sorted.
func (b *Builder) AddRow(cols []int32, vals []float64, label float64) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("ml: %d cols for %d vals", len(cols), len(vals))
	}
	for _, c := range cols {
		if int(c) >= b.d.D || c < 0 {
			return fmt.Errorf("ml: feature %d out of range [0,%d)", c, b.d.D)
		}
	}
	b.d.Cols = append(b.d.Cols, cols...)
	b.d.Vals = append(b.d.Vals, vals...)
	b.np += len(cols)
	b.d.RowPtr = append(b.d.RowPtr, int32(b.np))
	b.d.Y = append(b.d.Y, label)
	b.d.N++
	return nil
}

// Build seals the dataset.
func (b *Builder) Build() *Dataset { return b.d }

// Model is a trained logistic-regression model.
type Model struct {
	W    []float64
	Bias float64
}

// TrainLogistic runs full-batch gradient descent for the given number
// of iterations (the paper trains for five), parallelizing the gradient
// over row chunks.
func TrainLogistic(ds *Dataset, iters int, lr float64, threads int) *Model {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > ds.N {
		threads = ds.N
	}
	if threads < 1 {
		threads = 1
	}
	m := &Model{W: make([]float64, ds.D)}
	gradW := make([][]float64, threads)
	gradB := make([]float64, threads)
	for t := range gradW {
		gradW[t] = make([]float64, ds.D)
	}
	chunk := (ds.N + threads - 1) / threads
	for it := 0; it < iters; it++ {
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			lo, hi := t*chunk, (t+1)*chunk
			if hi > ds.N {
				hi = ds.N
			}
			if lo >= hi {
				for i := range gradW[t] {
					gradW[t][i] = 0
				}
				gradB[t] = 0
				continue
			}
			wg.Add(1)
			go func(t, lo, hi int) {
				defer wg.Done()
				gw := gradW[t]
				for i := range gw {
					gw[i] = 0
				}
				gb := 0.0
				for r := lo; r < hi; r++ {
					p := m.predictRow(ds, r)
					err := p - ds.Y[r]
					for x := ds.RowPtr[r]; x < ds.RowPtr[r+1]; x++ {
						gw[ds.Cols[x]] += err * ds.Vals[x]
					}
					gb += err
				}
				gradW[t] = gw
				gradB[t] = gb
			}(t, lo, hi)
		}
		wg.Wait()
		scale := lr / float64(ds.N)
		for t := 0; t < threads; t++ {
			for i, g := range gradW[t] {
				m.W[i] -= scale * g
			}
			m.Bias -= scale * gradB[t]
		}
	}
	return m
}

func (m *Model) predictRow(ds *Dataset, r int) float64 {
	z := m.Bias
	for x := ds.RowPtr[r]; x < ds.RowPtr[r+1]; x++ {
		z += m.W[ds.Cols[x]] * ds.Vals[x]
	}
	return sigmoid(z)
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Predict returns P(y=1) for row r.
func (m *Model) Predict(ds *Dataset, r int) float64 { return m.predictRow(ds, r) }

// Accuracy evaluates the model on its own dataset (0.5 threshold).
func (m *Model) Accuracy(ds *Dataset) float64 {
	hit := 0
	for r := 0; r < ds.N; r++ {
		p := m.predictRow(ds, r)
		if (p >= 0.5) == (ds.Y[r] >= 0.5) {
			hit++
		}
	}
	if ds.N == 0 {
		return 0
	}
	return float64(hit) / float64(ds.N)
}

// LogLoss computes the mean cross-entropy on the dataset.
func (m *Model) LogLoss(ds *Dataset) float64 {
	s := 0.0
	for r := 0; r < ds.N; r++ {
		p := m.predictRow(ds, r)
		p = math.Min(math.Max(p, 1e-12), 1-1e-12)
		if ds.Y[r] >= 0.5 {
			s -= math.Log(p)
		} else {
			s -= math.Log(1 - p)
		}
	}
	if ds.N == 0 {
		return 0
	}
	return s / float64(ds.N)
}

// FeatureSpace lays out a one-hot feature space: categorical columns
// contribute one indicator feature per distinct value, numeric columns
// one feature each.
type FeatureSpace struct {
	// CatOffsets[i] is the first feature index of categorical column i.
	CatOffsets []int
	// NumOffset is the first feature index of the numeric block.
	NumOffset int
	// Dim is the total feature count.
	Dim int
}

// NewFeatureSpace builds the layout from categorical cardinalities and
// the numeric column count.
func NewFeatureSpace(catCards []int, numCols int) *FeatureSpace {
	fs := &FeatureSpace{}
	off := 0
	for _, c := range catCards {
		fs.CatOffsets = append(fs.CatOffsets, off)
		off += c
	}
	fs.NumOffset = off
	fs.Dim = off + numCols
	return fs
}

// Row encodes one example: cats[i] is the code of categorical column i
// (already dictionary-encoded, as LevelHeaded stores it), nums the
// numeric values. The returned slices alias the provided scratch.
func (fs *FeatureSpace) Row(cats []uint32, nums []float64, colScratch []int32, valScratch []float64) ([]int32, []float64) {
	cols := colScratch[:0]
	vals := valScratch[:0]
	for i, c := range cats {
		cols = append(cols, int32(fs.CatOffsets[i]+int(c)))
		vals = append(vals, 1)
	}
	for i, v := range nums {
		cols = append(cols, int32(fs.NumOffset+i))
		vals = append(vals, v)
	}
	return cols, vals
}
