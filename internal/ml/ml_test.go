package ml

import (
	"math"
	"math/rand"
	"testing"
)

// synthDataset builds a linearly separable-ish problem with a known
// generative model.
func synthDataset(t *testing.T, n int, seed int64) *Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	fs := NewFeatureSpace([]int{3}, 2) // one 3-way categorical + 2 numerics
	b := NewBuilder(fs.Dim)
	catW := []float64{-2, 0, 2}
	var cs []int32
	var vs []float64
	for i := 0; i < n; i++ {
		cat := uint32(r.Intn(3))
		x1 := r.NormFloat64()
		x2 := r.NormFloat64()
		z := catW[cat] + 1.5*x1 - 0.5*x2
		label := 0.0
		if 1/(1+math.Exp(-z)) > r.Float64() {
			label = 1
		}
		cols, vals := fs.Row([]uint32{cat}, []float64{x1, x2}, cs, vs)
		if err := b.AddRow(cols, vals, label); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestTrainingReducesLoss(t *testing.T) {
	ds := synthDataset(t, 4000, 1)
	m0 := &Model{W: make([]float64, ds.D)}
	before := m0.LogLoss(ds)
	m := TrainLogistic(ds, 50, 1.0, 0)
	after := m.LogLoss(ds)
	if after >= before {
		t.Fatalf("loss did not decrease: %v -> %v", before, after)
	}
	if acc := m.Accuracy(ds); acc < 0.7 {
		t.Fatalf("accuracy = %v, want >= 0.7 on separable-ish data", acc)
	}
}

func TestTrainingDeterministicAcrossThreads(t *testing.T) {
	ds := synthDataset(t, 2000, 2)
	m1 := TrainLogistic(ds, 5, 0.5, 1)
	m4 := TrainLogistic(ds, 5, 0.5, 4)
	for i := range m1.W {
		if math.Abs(m1.W[i]-m4.W[i]) > 1e-6 {
			t.Fatalf("weights diverge across thread counts at %d: %v vs %v", i, m1.W[i], m4.W[i])
		}
	}
	if math.Abs(m1.Bias-m4.Bias) > 1e-6 {
		t.Fatal("bias differs across thread counts")
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddRow([]int32{0, 1}, []float64{1}, 0); err == nil {
		t.Error("ragged row should error")
	}
	if err := b.AddRow([]int32{9}, []float64{1}, 0); err == nil {
		t.Error("out-of-range feature should error")
	}
	if err := b.AddRow([]int32{3}, []float64{1}, 1); err != nil {
		t.Error(err)
	}
	ds := b.Build()
	if ds.N != 1 || ds.D != 4 {
		t.Fatalf("dataset = %+v", ds)
	}
}

func TestFeatureSpaceLayout(t *testing.T) {
	fs := NewFeatureSpace([]int{5, 3}, 2)
	if fs.Dim != 10 || fs.CatOffsets[1] != 5 || fs.NumOffset != 8 {
		t.Fatalf("layout = %+v", fs)
	}
	cols, vals := fs.Row([]uint32{4, 2}, []float64{0.5, -1}, nil, nil)
	wantCols := []int32{4, 7, 8, 9}
	for i, w := range wantCols {
		if cols[i] != w {
			t.Fatalf("cols = %v, want %v", cols, wantCols)
		}
	}
	if vals[2] != 0.5 || vals[3] != -1 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestSigmoidStability(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Errorf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Errorf("sigmoid(-1000) = %v", s)
	}
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", s)
	}
}

func TestEmptyDataset(t *testing.T) {
	ds := NewBuilder(2).Build()
	m := TrainLogistic(ds, 3, 0.1, 2)
	if m.Accuracy(ds) != 0 || m.LogLoss(ds) != 0 {
		t.Error("empty dataset metrics should be 0")
	}
}
