package governor

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/qerr"
)

func TestUnlimitedAcquire(t *testing.T) {
	g := New(Config{})
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if got := g.Counters()["gov_admitted"]; got != 1 {
		t.Fatalf("admitted = %d", got)
	}
}

func TestNilGovernorIsFree(t *testing.T) {
	var g *Governor
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	var a *Accountant
	if err := a.Charge(1 << 40); err != nil {
		t.Fatal(err)
	}
	a.Close()
}

func TestAdmissionQueueAndShed(t *testing.T) {
	g := New(Config{MaxConcurrency: 1, QueueDepth: 1})
	rel1, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}

	// Second query queues.
	admitted := make(chan struct{})
	go func() {
		rel2, err := g.Acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
			return
		}
		close(admitted)
		rel2()
	}()
	waitFor(t, func() bool { return g.QueueLen() == 1 })

	// Third query is shed: queue full.
	_, err = g.Acquire(context.Background(), 1)
	var oe *qerr.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("expected OverloadedError, got %v", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v", oe.RetryAfter)
	}

	rel1()
	<-admitted
	waitFor(t, func() bool { return g.InUse() == 0 && g.QueueLen() == 0 })
	c := g.Counters()
	if c["gov_admitted"] != 2 || c["gov_shed"] != 1 || c["gov_queued"] != 1 {
		t.Fatalf("counters = %v", c)
	}
}

func TestQueuedCancellation(t *testing.T) {
	g := New(Config{MaxConcurrency: 1, QueueDepth: 4})
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, 1)
		errc <- err
	}()
	waitFor(t, func() bool { return g.QueueLen() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cancel = %v", err)
	}
	if g.QueueLen() != 0 {
		t.Fatalf("queue len = %d after cancel", g.QueueLen())
	}
}

func TestShutdownShedsQueuedAndNew(t *testing.T) {
	g := New(Config{MaxConcurrency: 1, QueueDepth: 4})
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := g.Acquire(context.Background(), 1)
		errc <- err
	}()
	waitFor(t, func() bool { return g.QueueLen() == 1 })
	g.BeginShutdown()
	var oe *qerr.OverloadedError
	if err := <-errc; !errors.As(err, &oe) || oe.Reason != "shutting down" {
		t.Fatalf("queued waiter after shutdown: %v", err)
	}
	if _, err := g.Acquire(context.Background(), 1); !errors.As(err, &oe) {
		t.Fatalf("new acquire after shutdown: %v", err)
	}
	rel()
	if g.InUse() != 0 {
		t.Fatalf("in use = %d", g.InUse())
	}
}

func TestMemoryBudget(t *testing.T) {
	g := New(Config{MemoryBudget: 1000})
	a := g.NewAccountant("SELECT 1", 0)
	if a == nil {
		t.Fatal("nil accountant with a budget configured")
	}
	if err := a.Charge(800); err != nil {
		t.Fatal(err)
	}
	err := a.Charge(800)
	var re *qerr.ResourceExhaustedError
	if !errors.As(err, &re) || re.Engine {
		t.Fatalf("expected per-query ResourceExhausted, got %v", err)
	}
	if re.Used != 1600 || re.Limit != 1000 {
		t.Fatalf("Used=%d Limit=%d", re.Used, re.Limit)
	}
	if g.Charged() != 1600 {
		t.Fatalf("engine charged = %d", g.Charged())
	}
	a.Close()
	a.Close() // idempotent
	if g.Charged() != 0 {
		t.Fatalf("engine charged after close = %d", g.Charged())
	}
}

func TestEngineSoftLimit(t *testing.T) {
	g := New(Config{SoftLimit: 1 << 50}) // heap check can't trip in tests
	a := g.NewAccountant("q1", 0)
	b := g.NewAccountant("q2", 0)
	if err := a.Charge(1 << 49); err != nil {
		t.Fatal(err)
	}
	err := b.Charge(1 + 1<<49)
	var re *qerr.ResourceExhaustedError
	if !errors.As(err, &re) || !re.Engine {
		t.Fatalf("expected engine-wide ResourceExhausted, got %v", err)
	}
	a.Close()
	b.Close()
	if g.Charged() != 0 {
		t.Fatalf("charged = %d", g.Charged())
	}
}

func TestPerQueryBudgetOverride(t *testing.T) {
	g := New(Config{MemoryBudget: 1 << 30})
	a := g.NewAccountant("q", 10)
	if err := a.Charge(11); err == nil {
		t.Fatal("override budget not enforced")
	}
	a.Close()
}

func TestChargeFaultInjection(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	faultinject.Arm(faultinject.PointGovernorCharge, faultinject.Fault{Mode: faultinject.ModeError, Times: 1})
	g := New(Config{MemoryBudget: 1 << 40})
	a := g.NewAccountant("q", 0)
	var re *qerr.ResourceExhaustedError
	if err := a.Charge(1); !errors.As(err, &re) {
		t.Fatalf("injected charge failure = %v", err)
	}
	if err := a.Charge(1); err != nil {
		t.Fatalf("after budget spent: %v", err)
	}
	a.Close()
}

func TestConcurrentAcquireRace(t *testing.T) {
	g := New(Config{MaxConcurrency: 4, QueueDepth: 8})
	var wg sync.WaitGroup
	var admitted, shedOrTimeout sync.Map
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			rel, err := g.Acquire(ctx, 1)
			if err != nil {
				shedOrTimeout.Store(i, err)
				return
			}
			admitted.Store(i, true)
			time.Sleep(time.Millisecond)
			rel()
		}(i)
	}
	wg.Wait()
	waitFor(t, func() bool { return g.InUse() == 0 && g.QueueLen() == 0 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
