// Package governor is the engine's resource-governance layer: it keeps
// an overloaded or adversarial workload from taking the process down.
//
// Two mechanisms compose:
//
//   - Admission control: a weighted semaphore bounds how many queries
//     execute concurrently, a bounded FIFO wait queue absorbs bursts,
//     and anything beyond that is shed immediately with a typed
//     qerr.OverloadedError carrying a Retry-After hint. Queued waiters
//     are deadline-aware: a context that cannot outlast the expected
//     wait is shed instead of queued, and cancellation while queued
//     dequeues promptly.
//
//   - Memory accounting: each admitted query gets an Accountant charged
//     at the engine's large-allocation sites (query-trie builds, worker
//     output buffers, aggregation tables, result assembly). Charges are
//     checked against the query's budget and against an engine-wide
//     soft limit fed by runtime/metrics heap readings; an over-budget
//     query aborts with qerr.ResourceExhaustedError instead of OOMing
//     the process.
//
// Everything is cheap when unconfigured: with no limits set, admission
// is two atomic adds per query and accounting is disabled (nil
// Accountant, nil-safe Charge).
package governor

import (
	"container/list"
	"context"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/qerr"
)

// Config bounds an engine's resource usage. Zero values disable the
// corresponding mechanism.
type Config struct {
	// MaxConcurrency is the weighted-semaphore capacity: the total
	// admission weight (1 per query by default) executing at once.
	// 0 = unlimited.
	MaxConcurrency int
	// QueueDepth bounds how many queries may wait for admission before
	// load shedding starts. 0 = no queueing: at capacity, shed.
	QueueDepth int
	// MemoryBudget is the default per-query charge budget in bytes.
	// 0 = unlimited.
	MemoryBudget int64
	// SoftLimit is the engine-wide memory soft limit in bytes: when the
	// total charged across live queries, or the process heap as read
	// from runtime/metrics, exceeds it, the currently charging query is
	// aborted. 0 = unlimited.
	SoftLimit int64
}

// Governor owns one engine's admission state and memory accounting.
// The zero value is not usable; call New.
type Governor struct {
	cfg Config

	mu      sync.Mutex
	inUse   int64      // admitted weight currently executing
	waiters *list.List // of *waiter, FIFO
	closed  bool       // shutting down: admit nothing new

	charged atomic.Int64 // bytes charged across all live accountants

	// heapSample caches the runtime/metrics heap reading so the charge
	// path never reads it more than once per heapSampleEvery.
	heapBytes   atomic.Int64
	heapSampled atomic.Int64 // unix nanos of the last sample

	// ewmaNs tracks recent query latency (released queries), feeding the
	// Retry-After hint and the deadline-aware queue check.
	ewmaNs atomic.Int64

	admitted   atomic.Int64
	queuedTot  atomic.Int64
	shed       atomic.Int64
	memAborted atomic.Int64
	panics     atomic.Int64
}

type waiter struct {
	weight int64
	// ready is closed once a decision is made; granted (written before
	// the close, so the close's happens-before publishes it) says which
	// way it went: admitted, or shed by shutdown.
	ready   chan struct{}
	granted bool
}

// New creates a governor for the given config.
func New(cfg Config) *Governor {
	return &Governor{cfg: cfg, waiters: list.New()}
}

// Config returns the governor's configuration.
func (g *Governor) Config() Config {
	if g == nil {
		return Config{}
	}
	return g.cfg
}

// heapSampleEvery bounds how often Charge reads runtime/metrics.
const heapSampleEvery = 10 * time.Millisecond

// minRetryAfter floors the Retry-After hint.
const minRetryAfter = 100 * time.Millisecond

// Acquire admits one query of the given weight (clamped to the
// semaphore capacity so an over-weighted query can still run alone). It
// returns a release func that must be called exactly once when the
// query finishes. At capacity the query waits in a bounded FIFO queue;
// a full queue, a deadline that cannot outlast the expected wait, or a
// closed (draining) governor sheds it with *qerr.OverloadedError.
// Context cancellation while queued returns ctx.Err().
func (g *Governor) Acquire(ctx context.Context, weight int64) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	if weight < 1 {
		weight = 1
	}
	maxW := int64(g.cfg.MaxConcurrency)
	if maxW > 0 && weight > maxW {
		weight = maxW
	}
	start := time.Now()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.shed.Add(1)
		return nil, &qerr.OverloadedError{Reason: "shutting down", RetryAfter: g.retryAfter(0)}
	}
	if maxW == 0 {
		// Concurrency unbounded: count and go.
		g.mu.Unlock()
		g.admitted.Add(1)
		return func() { g.observeLatency(start) }, nil
	}
	if g.inUse+weight <= maxW && g.waiters.Len() == 0 {
		g.inUse += weight
		g.mu.Unlock()
		g.admitted.Add(1)
		return g.releaseFunc(weight, start), nil
	}
	// At capacity: queue or shed.
	nq := g.waiters.Len()
	if nq >= g.cfg.QueueDepth {
		g.mu.Unlock()
		g.shed.Add(1)
		return nil, &qerr.OverloadedError{Reason: "queue full", RetryAfter: g.retryAfter(nq)}
	}
	if dl, ok := ctx.Deadline(); ok {
		// Deadline-aware queueing: if the deadline cannot outlast the
		// expected wait for this queue position, shed now instead of
		// occupying a slot that will certainly time out.
		if wait := g.expectedWait(nq); wait > 0 && time.Until(dl) < wait {
			g.mu.Unlock()
			g.shed.Add(1)
			return nil, &qerr.OverloadedError{Reason: "deadline before admission", RetryAfter: g.retryAfter(nq)}
		}
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	elem := g.waiters.PushBack(w)
	g.mu.Unlock()
	g.queuedTot.Add(1)

	select {
	case <-w.ready:
		if !w.granted {
			g.shed.Add(1)
			return nil, &qerr.OverloadedError{Reason: "shutting down", RetryAfter: g.retryAfter(0)}
		}
		g.admitted.Add(1)
		return g.releaseFunc(weight, start), nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ready:
			granted := w.granted
			if granted {
				// Lost the race: admitted just as the context died.
				// Return the weight and hand the slot onward.
				g.inUse -= weight
				g.dispatchLocked()
			}
			g.mu.Unlock()
		default:
			g.waiters.Remove(elem)
			g.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// releaseFunc builds the idempotence-guarded release closure.
func (g *Governor) releaseFunc(weight int64, start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.observeLatency(start)
			g.mu.Lock()
			g.inUse -= weight
			g.dispatchLocked()
			g.mu.Unlock()
		})
	}
}

// dispatchLocked admits queued waiters that now fit (FIFO; head-of-line
// blocking is deliberate — it preserves arrival fairness).
func (g *Governor) dispatchLocked() {
	maxW := int64(g.cfg.MaxConcurrency)
	for e := g.waiters.Front(); e != nil; e = g.waiters.Front() {
		w := e.Value.(*waiter)
		if g.inUse+w.weight > maxW {
			return
		}
		g.inUse += w.weight
		g.waiters.Remove(e)
		w.granted = true
		close(w.ready)
	}
}

// observeLatency folds a finished (or unbounded-admission) query's wall
// time into the EWMA feeding Retry-After and deadline-aware queueing.
func (g *Governor) observeLatency(start time.Time) {
	d := time.Since(start).Nanoseconds()
	for {
		old := g.ewmaNs.Load()
		nw := d
		if old > 0 {
			nw = old + (d-old)/8
		}
		if g.ewmaNs.CompareAndSwap(old, nw) {
			return
		}
	}
}

// expectedWait estimates how long the next query would sit at queue
// position pos: queue drain time at the observed per-query latency over
// MaxConcurrency parallel slots.
func (g *Governor) expectedWait(pos int) time.Duration {
	ewma := g.ewmaNs.Load()
	if ewma == 0 || g.cfg.MaxConcurrency == 0 {
		return 0
	}
	return time.Duration(ewma * int64(pos+1) / int64(g.cfg.MaxConcurrency))
}

// retryAfter computes the shed hint from the expected queue drain time.
func (g *Governor) retryAfter(queueLen int) time.Duration {
	d := g.expectedWait(queueLen)
	if d < minRetryAfter {
		return minRetryAfter
	}
	return d
}

// BeginShutdown stops admitting: every subsequent Acquire sheds with
// "shutting down", and queued waiters are shed immediately. In-flight
// queries keep running until they release (the drain loop's job).
func (g *Governor) BeginShutdown() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.closed = true
	for e := g.waiters.Front(); e != nil; e = g.waiters.Front() {
		w := e.Value.(*waiter)
		g.waiters.Remove(e)
		close(w.ready) // granted stays false: shed
	}
	g.mu.Unlock()
}

// InUse reports the admitted weight currently executing.
func (g *Governor) InUse() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse
}

// QueueLen reports the number of queries waiting for admission.
func (g *Governor) QueueLen() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiters.Len()
}

// Charged reports the total bytes currently charged across live
// accountants.
func (g *Governor) Charged() int64 {
	if g == nil {
		return 0
	}
	return g.charged.Load()
}

// RecordPanic counts a panic converted at a recovery barrier.
func (g *Governor) RecordPanic() {
	if g != nil {
		g.panics.Add(1)
	}
}

// Counters exports the governor's counters and gauges in the flat
// summable form the telemetry collector aggregates onto /metrics.
func (g *Governor) Counters() map[string]int64 {
	if g == nil {
		return nil
	}
	return map[string]int64{
		"gov_admitted":          g.admitted.Load(),
		"gov_queued":            g.queuedTot.Load(),
		"gov_shed":              g.shed.Load(),
		"gov_mem_aborted":       g.memAborted.Load(),
		"gov_panics_recovered":  g.panics.Load(),
		"gov_inflight_weight":   g.InUse(),
		"gov_queue_len":         int64(g.QueueLen()),
		"gov_mem_charged_bytes": g.charged.Load(),
	}
}

// sampleHeap returns the current heap-objects byte count from
// runtime/metrics, re-reading at most once per heapSampleEvery.
func (g *Governor) sampleHeap() int64 {
	now := time.Now().UnixNano()
	last := g.heapSampled.Load()
	if now-last < int64(heapSampleEvery) {
		return g.heapBytes.Load()
	}
	if !g.heapSampled.CompareAndSwap(last, now) {
		return g.heapBytes.Load() // another goroutine is sampling
	}
	s := [1]metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(s[:])
	v := int64(s[0].Value.Uint64())
	g.heapBytes.Store(v)
	return v
}

// Accountant tracks one query's memory charges. A nil Accountant is
// valid and free: every method no-ops, so the hot path stays branch-
// predictable when accounting is off.
type Accountant struct {
	g      *Governor
	sql    string
	budget int64 // 0 = unlimited
	used   atomic.Int64
	closed atomic.Bool
}

// NewAccountant opens a per-query accountant. budget <= 0 falls back to
// the config default; a governor with no budget and no soft limit
// returns nil (accounting disabled, zero overhead).
func (g *Governor) NewAccountant(sql string, budget int64) *Accountant {
	if g == nil {
		return nil
	}
	if budget <= 0 {
		budget = g.cfg.MemoryBudget
	}
	if budget <= 0 && g.cfg.SoftLimit <= 0 {
		return nil
	}
	return &Accountant{g: g, sql: sql, budget: budget}
}

// Charge accounts n bytes about to be (or just) allocated for the
// query. It fails with *qerr.ResourceExhaustedError when the query's
// budget or the engine soft limit is exceeded; the caller must abort
// the query. Over-charge beyond the failure point stays recorded so
// Close releases exactly what was charged.
func (a *Accountant) Charge(n int64) error {
	if a == nil || n <= 0 {
		return nil
	}
	if err := faultinject.Err(faultinject.PointGovernorCharge); err != nil {
		a.g.memAborted.Add(1)
		return &qerr.ResourceExhaustedError{SQL: a.sql, Used: a.used.Load(), Limit: a.budget}
	}
	used := a.used.Add(n)
	total := a.g.charged.Add(n)
	if a.budget > 0 && used > a.budget {
		a.g.memAborted.Add(1)
		return &qerr.ResourceExhaustedError{SQL: a.sql, Used: used, Limit: a.budget}
	}
	if soft := a.g.cfg.SoftLimit; soft > 0 {
		if total > soft {
			a.g.memAborted.Add(1)
			return &qerr.ResourceExhaustedError{SQL: a.sql, Used: used, Limit: soft, Engine: true}
		}
		if heap := a.g.sampleHeap(); heap > soft {
			a.g.memAborted.Add(1)
			return &qerr.ResourceExhaustedError{SQL: a.sql, Used: used, Limit: soft, Engine: true}
		}
	}
	return nil
}

// Used reports the bytes charged so far.
func (a *Accountant) Used() int64 {
	if a == nil {
		return 0
	}
	return a.used.Load()
}

// Close releases every charge back to the engine total. Idempotent.
func (a *Accountant) Close() {
	if a == nil || !a.closed.CompareAndSwap(false, true) {
		return
	}
	a.g.charged.Add(-a.used.Load())
}
