package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// appendRows writes one record of (int, float, string) rows.
func appendRows(t *testing.T, l *Log, epoch uint64, batchID string, rows [][3]interface{}) {
	t.Helper()
	e := NewEncoder(epoch, batchID, len(rows))
	for _, r := range rows {
		e.Int64(r[0].(int64))
		e.Float64(r[1].(float64))
		e.String(r[2].(string))
	}
	if err := l.Append(e); err != nil {
		t.Fatalf("Append: %v", err)
	}
}

type row struct {
	i int64
	f float64
	s string
}

func replayAll(t *testing.T, path string) ([]row, []string, ReplayResult) {
	t.Helper()
	var rows []row
	var ids []string
	res, err := Replay(path, func(r *Record) error {
		ids = append(ids, r.BatchID)
		for n := 0; n < r.NRows; n++ {
			rows = append(rows, row{r.Int64(), r.Float64(), r.String()})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return rows, ids, res
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "orders", SyncEvery())
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 3, "b-1", [][3]interface{}{
		{int64(1), 1.5, "alpha"},
		{int64(-2), -0.0, ""},
	})
	appendRows(t, l, 4, "", [][3]interface{}{
		{int64(9), 2.25, "βeta"},
	})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir, "orders")
	if err != nil || len(segs) != 1 {
		t.Fatalf("ListSegments = %v, %v; want 1 segment", segs, err)
	}
	rows, ids, res := replayAll(t, segs[0].Path)
	if res.Records != 2 || res.Rows != 3 || res.DroppedBytes != 0 {
		t.Fatalf("replay result %+v", res)
	}
	if ids[0] != "b-1" || ids[1] != "" {
		t.Fatalf("batch ids %v", ids)
	}
	want := []row{{1, 1.5, "alpha"}, {-2, -0.0, ""}, {9, 2.25, "βeta"}}
	for i, w := range want {
		if rows[i] != w {
			t.Fatalf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
}

// TestTornTail cuts the file mid-record: replay must keep the intact
// prefix, truncate the tail, and count the drop.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "t", NoSync())
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 1, "", [][3]interface{}{{int64(1), 1.0, "keep"}})
	appendRows(t, l, 1, "", [][3]interface{}{{int64(2), 2.0, "lost"}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName("t", 1))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	rows, _, res := replayAll(t, path)
	if len(rows) != 1 || rows[0].s != "keep" {
		t.Fatalf("rows after torn tail: %+v", rows)
	}
	if res.DroppedBytes == 0 || res.DroppedRecords != 1 {
		t.Fatalf("expected drop counted, got %+v", res)
	}
	// The file must now end at the intact boundary, and a second
	// replay must be clean.
	fi2, _ := os.Stat(path)
	if fi2.Size() != res.ValidSize {
		t.Fatalf("file size %d, want %d", fi2.Size(), res.ValidSize)
	}
	rows2, _, res2 := replayAll(t, path)
	if len(rows2) != 1 || res2.DroppedBytes != 0 {
		t.Fatalf("second replay not clean: %d rows, %+v", len(rows2), res2)
	}
}

// TestBitFlip corrupts a byte inside the last record's payload: the
// checksum must reject it, replay keeps earlier records.
func TestBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "t", NoSync())
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 1, "", [][3]interface{}{{int64(1), 1.0, "keep"}})
	appendRows(t, l, 1, "", [][3]interface{}{{int64(2), 2.0, "flip"}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName("t", 1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rows, _, res := replayAll(t, path)
	if len(rows) != 1 || rows[0].s != "keep" {
		t.Fatalf("rows after bit flip: %+v", rows)
	}
	if res.DroppedBytes == 0 {
		t.Fatalf("expected dropped bytes, got %+v", res)
	}
}

// TestGarbageFile: a file that isn't a WAL at all gets emptied, not
// fatal-errored.
func TestGarbageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g-1.wal")
	if err := os.WriteFile(path, []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(path, func(*Record) error { t.Fatal("fn called"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedBytes == 0 || res.ValidSize != 0 {
		t.Fatalf("garbage replay %+v", res)
	}
}

func TestRotateAndDelete(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "t", NoSync())
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 1, "", [][3]interface{}{{int64(1), 0.0, "a"}})
	cut, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 || l.Seq() != 2 {
		t.Fatalf("cut %d seq %d", cut, l.Seq())
	}
	appendRows(t, l, 2, "", [][3]interface{}{{int64(2), 0.0, "b"}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := DeleteThrough(dir, "t", cut); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir, "t")
	if err != nil || len(segs) != 1 || segs[0].Seq != 2 {
		t.Fatalf("segments after delete: %v, %v", segs, err)
	}
	rows, _, _ := replayAll(t, segs[0].Path)
	if len(rows) != 1 || rows[0].i != 2 {
		t.Fatalf("rows in surviving segment: %+v", rows)
	}

	// Reopen resumes the highest-numbered segment.
	l2, err := Open(dir, "t", NoSync())
	if err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 2 {
		t.Fatalf("reopened seq %d", l2.Seq())
	}
	appendRows(t, l2, 3, "", [][3]interface{}{{int64(3), 0.0, "c"}})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rows, _, _ = replayAll(t, segs[0].Path)
	if len(rows) != 2 || rows[1].i != 3 {
		t.Fatalf("rows after reopen append: %+v", rows)
	}
}

// TestShortWriteInjection: an injected short write must leave the log
// usable — the torn half-record is truncated away and later appends
// replay cleanly.
func TestShortWriteInjection(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	dir := t.TempDir()
	l, err := Open(dir, "t", SyncEvery())
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 1, "", [][3]interface{}{{int64(1), 0.0, "good"}})
	faultinject.Arm(PointWrite, faultinject.Fault{Mode: faultinject.ModeError, Times: 1})
	e := NewEncoder(1, "", 1)
	e.Int64(2)
	e.Float64(0)
	e.String("torn")
	if err := l.Append(e); err == nil {
		t.Fatal("expected injected write error")
	}
	faultinject.Reset()
	appendRows(t, l, 1, "", [][3]interface{}{{int64(3), 0.0, "after"}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rows, _, res := replayAll(t, filepath.Join(dir, segName("t", 1)))
	if len(rows) != 2 || rows[0].s != "good" || rows[1].s != "after" {
		t.Fatalf("rows after short write: %+v", rows)
	}
	if res.DroppedBytes != 0 {
		t.Fatalf("torn record should have been truncated at append time: %+v", res)
	}
}

func TestSyncErrorInjection(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	dir := t.TempDir()
	l, err := Open(dir, "t", SyncEvery())
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(PointSync, faultinject.Fault{Mode: faultinject.ModeError, Times: 1})
	e := NewEncoder(1, "", 1)
	e.Int64(1)
	e.Float64(0)
	e.String("x")
	if err := l.Append(e); err == nil {
		t.Fatal("expected injected sync error")
	}
	// The record is written but unsynced; a later Sync succeeds.
	if err := l.Sync(); err != nil {
		t.Fatalf("recovering sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		mode SyncMode
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"interval:10ms", SyncInterval, true},
		{"group:1s", SyncInterval, true},
		{"none", SyncNone, true},
		{"bogus", 0, false},
		{"interval:nope", 0, false},
	}
	for _, c := range cases {
		p, err := ParsePolicy(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParsePolicy(%q) err=%v", c.in, err)
		}
		if c.ok && p.Mode != c.mode {
			t.Fatalf("ParsePolicy(%q) mode=%v", c.in, p.Mode)
		}
	}
}

func TestCounters(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "t", SyncEvery())
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 1, "", [][3]interface{}{{int64(1), 0.0, "x"}})
	rec, bytes, syncs := l.Counters()
	if rec != 1 || bytes == 0 || syncs != 1 {
		t.Fatalf("counters %d %d %d", rec, bytes, syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
