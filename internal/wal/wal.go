// Package wal implements the per-table write-ahead log behind the
// engine's durability guarantee: every acked append is on disk (and,
// depending on the sync policy, fsynced) BEFORE the row becomes
// visible to queries, so a crash can lose at most unacked work.
//
// A table's log is a sequence of numbered segment files
// (<table>-<seq>.wal). Records are length-prefixed, CRC32C-checksummed
// (Castagnoli — the polynomial every storage engine uses because of
// its hardware support), and epoch-stamped. The format is
// deliberately dumb: no compaction inside a segment, no in-place
// mutation, nothing to fsck. Snapshots rotate the live segment and
// delete fully superseded ones; recovery replays whatever segments
// survive, in sequence order, truncating at the first torn or
// corrupt record rather than refusing to start.
//
// Record layout (little-endian):
//
//	u32 payload length
//	u32 CRC32C(payload)
//	payload:
//	  u64 epoch          catalog epoch at append time
//	  u16 batch-id len   0 when the append carried no client batch id
//	  ..  batch-id bytes
//	  u32 row count
//	  ..  row data       per row, per column, by schema kind:
//	                     int/date → u64 two's complement
//	                     float    → u64 IEEE-754 bits
//	                     string   → u32 len + bytes
//
// Segment header: magic "LHWAL001", u16 table-name length, name bytes,
// u64 segment sequence number.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// SyncMode selects when appended records are fsynced.
type SyncMode uint8

const (
	// SyncAlways fsyncs every committed batch before acking — full
	// durability even across power loss, at per-batch fsync cost.
	SyncAlways SyncMode = iota
	// SyncInterval (group commit) writes each batch immediately (so a
	// process crash loses nothing) but batches fsyncs on a timer — the
	// default: a power failure can lose at most one interval.
	SyncInterval
	// SyncNone never fsyncs; the OS flushes when it pleases. Process
	// crashes still lose nothing (writes hit the page cache), but an
	// OS crash can lose arbitrarily recent acks.
	SyncNone
)

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncMode(%d)", uint8(m))
	}
}

// Policy is a sync mode plus its group-commit interval.
type Policy struct {
	Mode SyncMode
	// Interval is the group-commit period for SyncInterval (<= 0 uses
	// DefaultInterval).
	Interval time.Duration
}

// DefaultInterval is the group-commit period when none is given.
const DefaultInterval = 50 * time.Millisecond

// SyncEvery returns the fsync-per-batch policy.
func SyncEvery() Policy { return Policy{Mode: SyncAlways} }

// GroupCommit returns the batched-fsync policy (d <= 0 uses
// DefaultInterval).
func GroupCommit(d time.Duration) Policy { return Policy{Mode: SyncInterval, Interval: d} }

// NoSync returns the never-fsync policy.
func NoSync() Policy { return Policy{Mode: SyncNone} }

// ParsePolicy parses "always", "interval[:duration]" or "none" (the
// lhserve -sync flag syntax).
func ParsePolicy(s string) (Policy, error) {
	mode, arg, _ := strings.Cut(s, ":")
	switch mode {
	case "always":
		return SyncEvery(), nil
	case "interval", "group":
		if arg == "" {
			return GroupCommit(0), nil
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return Policy{}, fmt.Errorf("wal: bad sync interval %q: %v", arg, err)
		}
		return GroupCommit(d), nil
	case "none":
		return NoSync(), nil
	}
	return Policy{}, fmt.Errorf("wal: unknown sync policy %q (want always, interval[:dur], none)", s)
}

// Fault-injection points for the disk failure drills.
const (
	// PointWrite simulates a short write: half the record reaches the
	// file, then the write errors (exercises truncate-back recovery).
	PointWrite = "wal.write"
	// PointSync simulates an fsync error.
	PointSync = "wal.sync"
	// PointReplay makes the replayer treat the next record as corrupt
	// (exercises the truncate-and-count recovery path in-process).
	PointReplay = "wal.replay"
	// PointSnapshotWrite simulates a failed snapshot write (owned by
	// internal/snapshot; declared here so every disk fault point lives
	// in one greppable block).
	PointSnapshotWrite = "snapshot.write"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	segMagic  = "LHWAL001"
	recHeader = 8 // u32 len + u32 crc
	// MaxRecordBytes bounds one record; a length prefix beyond it is
	// treated as corruption, not an allocation request.
	MaxRecordBytes = 1 << 30
)

// Encoder builds one record payload. Values are appended in row-major
// schema order by the caller; the encoder is storage-format agnostic.
type Encoder struct {
	buf []byte
}

// NewEncoder starts a record stamped with the given epoch and
// (possibly empty) client batch id, expecting nrows rows.
func NewEncoder(epoch uint64, batchID string, nrows int) *Encoder {
	e := &Encoder{buf: make([]byte, 0, 64)}
	e.buf = binary.LittleEndian.AppendUint64(e.buf, epoch)
	if len(batchID) > math.MaxUint16 {
		batchID = batchID[:math.MaxUint16]
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(len(batchID)))
	e.buf = append(e.buf, batchID...)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(nrows))
	return e
}

// Int64 appends an integer (or date day-count) value.
func (e *Encoder) Int64(v int64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v))
}

// Float64 appends a float value by bits.
func (e *Encoder) Float64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// String appends a string value.
func (e *Encoder) String(v string) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Record is a decoded record: its stamps plus a cursor over the row
// data, read back with the same call sequence the encoder wrote.
type Record struct {
	Epoch   uint64
	BatchID string
	NRows   int

	data []byte
	off  int
	err  error
}

func decodeRecord(payload []byte) (*Record, error) {
	if len(payload) < 8+2+4 {
		return nil, fmt.Errorf("wal: record payload too short (%d bytes)", len(payload))
	}
	r := &Record{Epoch: binary.LittleEndian.Uint64(payload)}
	idLen := int(binary.LittleEndian.Uint16(payload[8:]))
	if 10+idLen+4 > len(payload) {
		return nil, fmt.Errorf("wal: record batch-id overruns payload")
	}
	r.BatchID = string(payload[10 : 10+idLen])
	r.NRows = int(binary.LittleEndian.Uint32(payload[10+idLen:]))
	r.data = payload[10+idLen+4:]
	return r, nil
}

// Int64 reads the next integer value.
func (r *Record) Int64() int64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

// Float64 reads the next float value.
func (r *Record) Float64() float64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

// String reads the next string value.
func (r *Record) String() string {
	if r.err != nil || r.off+4 > len(r.data) {
		r.fail()
		return ""
	}
	n := int(binary.LittleEndian.Uint32(r.data[r.off:]))
	r.off += 4
	if n < 0 || r.off+n > len(r.data) {
		r.fail()
		return ""
	}
	v := string(r.data[r.off : r.off+n])
	r.off += n
	return v
}

func (r *Record) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wal: record row data overrun (off %d of %d)", r.off, len(r.data))
	}
}

// Err reports whether any read overran the row data — a record that
// checksummed correctly but disagrees with the schema shape.
func (r *Record) Err() error { return r.err }

// Log is one table's live write-ahead log: the currently open segment
// plus rotation state. Safe for concurrent use; the storage layer
// additionally serializes appends per table.
type Log struct {
	mu     sync.Mutex
	dir    string
	table  string
	policy Policy
	f      *os.File
	seq    uint64
	dirty  bool
	broken error

	// OnSync, when set, observes each fsync's latency (the flush
	// latency histogram on /metrics). Set before first use.
	OnSync func(time.Duration)
	// Stats counters, maintained atomically enough under mu.
	records int64
	bytes   int64
	syncs   int64
}

// segName renders a segment filename. Table names are SQL identifiers
// and safe as path components; defensively, path separators are
// folded anyway.
func segName(table string, seq uint64) string {
	table = strings.Map(func(r rune) rune {
		if r == '/' || r == '\\' || r == 0 {
			return '_'
		}
		return r
	}, table)
	return fmt.Sprintf("%s-%d.wal", table, seq)
}

// Segment names one on-disk WAL segment.
type Segment struct {
	Path string
	Seq  uint64
}

// ListSegments returns the table's segments in ascending sequence
// order.
func ListSegments(dir, table string) ([]Segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	prefix := strings.TrimSuffix(segName(table, 0), "0.wal")
	var segs []Segment
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".wal") {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".wal")
		seq, perr := strconv.ParseUint(seqStr, 10, 64)
		if perr != nil {
			continue
		}
		segs = append(segs, Segment{Path: filepath.Join(dir, name), Seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// Open opens (or creates) the table's live segment: the
// highest-numbered existing segment, or segment 1 of a fresh log.
// Callers are expected to have replayed and truncated torn tails
// first (Replay); Open itself validates only the header.
func Open(dir, table string, policy Policy) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := ListSegments(dir, table)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, table: table, policy: policy, seq: 1}
	if len(segs) > 0 {
		l.seq = segs[len(segs)-1].Seq
		f, err := os.OpenFile(segs[len(segs)-1].Path, os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.f = f
		return l, nil
	}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

// openSegment creates and headers segment l.seq. Caller holds mu (or
// is constructing the log).
func (l *Log) openSegment() error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.table, l.seq)), os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, len(segMagic)+2+len(l.table)+8)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(l.table)))
	hdr = append(hdr, l.table...)
	hdr = binary.LittleEndian.AppendUint64(hdr, l.seq)
	if _, err := f.Write(hdr); err != nil {
		cerr := f.Close()
		_ = cerr // the write error is the one worth reporting
		return err
	}
	l.f = f
	return nil
}

// Seq reports the live segment's sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Counters reports cumulative (records, bytes, syncs).
func (l *Log) Counters() (records, bytes, syncs int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records, l.bytes, l.syncs
}

// Append commits one encoded record: length + checksum + payload are
// written with a single Write call, then fsynced per policy. The
// record is the durability point — when Append returns nil, the batch
// is on disk (and synced, under SyncAlways). On a write error the log
// truncates back to the pre-record offset so a torn record never
// precedes later good ones; if even the truncate fails the log is
// marked broken and every subsequent Append fails fast.
func (l *Log) Append(e *Encoder) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("wal: log %s broken by earlier failure: %w", l.table, l.broken)
	}
	payload := e.buf
	rec := make([]byte, 0, recHeader+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, castagnoli))
	rec = append(rec, payload...)

	start, err := l.f.Seek(0, 2)
	if err != nil {
		l.broken = err
		return err
	}
	if ferr := faultinject.Err(PointWrite); ferr != nil {
		// Simulated short write: half the record lands, then the device
		// errors. The truncate below must clean it up.
		if _, werr := l.f.Write(rec[:len(rec)/2]); werr != nil {
			err = werr
		} else {
			err = ferr
		}
	} else if _, werr := l.f.Write(rec); werr != nil {
		err = werr
	}
	if err != nil {
		if terr := l.f.Truncate(start); terr != nil {
			l.broken = fmt.Errorf("write failed (%v), truncate failed: %w", err, terr)
		}
		return err
	}
	l.records++
	l.bytes += int64(len(rec))
	l.dirty = true
	if l.policy.Mode == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// Sync fsyncs the live segment if it has unsynced writes. The
// group-commit ticker and Drain call this.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dirty || l.broken != nil {
		return l.broken
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	t0 := time.Now()
	if err := faultinject.Err(PointSync); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.syncs++
	if l.OnSync != nil {
		l.OnSync(time.Since(t0))
	}
	return nil
}

// Rotate syncs and closes the live segment and opens the next one,
// returning the sequence number of the segment rotated away — the
// snapshot's truncation cutoff: every record at or below it is
// covered by the snapshot being taken.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return 0, l.broken
	}
	if l.dirty {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	if err := l.f.Close(); err != nil {
		return 0, err
	}
	old := l.seq
	l.seq++
	if err := l.openSegment(); err != nil {
		l.broken = err
		return 0, err
	}
	return old, nil
}

// DeleteThrough removes segments with sequence <= cutoff — called
// after a snapshot covering them has been durably renamed into place.
func DeleteThrough(dir, table string, cutoff uint64) error {
	segs, err := ListSegments(dir, table)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.Seq > cutoff {
			continue
		}
		if err := os.Remove(s.Path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// Close final-syncs and closes the live segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var serr error
	if l.dirty && l.broken == nil {
		serr = l.syncLocked()
	}
	cerr := l.f.Close()
	l.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// ReplayResult summarizes one segment replay.
type ReplayResult struct {
	Records int // intact records decoded
	Rows    int // rows across them
	// DroppedBytes is the torn/corrupt tail length discarded; nonzero
	// means the segment was truncated at ValidSize.
	DroppedBytes   int64
	DroppedRecords int // at least 1 when DroppedBytes > 0
	ValidSize      int64
}

// Replay streams a segment's intact records through fn in order. The
// first torn or checksum-failing record ends the replay: the file is
// truncated back to the last intact boundary (so future appends never
// follow garbage) and the drop is counted, never surfaced as an
// error — recovery's contract is to come up. A non-nil error from fn
// (or an unreadable file) aborts and IS returned: that's a logic or
// I/O failure, not corruption.
func Replay(path string, fn func(*Record) error) (ReplayResult, error) {
	var res ReplayResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	// Segment header.
	hdrLen := len(segMagic) + 2
	if len(data) < hdrLen || string(data[:len(segMagic)]) != segMagic {
		// Unrecognizable file: drop it wholesale.
		res.DroppedBytes = int64(len(data))
		res.DroppedRecords = 1
		return res, truncateTo(path, 0, &res)
	}
	nameLen := int(binary.LittleEndian.Uint16(data[len(segMagic):]))
	off := hdrLen + nameLen + 8
	if off > len(data) {
		res.DroppedBytes = int64(len(data))
		res.DroppedRecords = 1
		return res, truncateTo(path, 0, &res)
	}
	valid := int64(off)
	for off < len(data) {
		if off+recHeader > len(data) {
			break // torn length prefix
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen < 0 || plen > MaxRecordBytes || off+recHeader+plen > len(data) {
			break // torn payload (or nonsense length = corruption)
		}
		payload := data[off+recHeader : off+recHeader+plen]
		if crc32.Checksum(payload, castagnoli) != crc {
			break // bit rot / torn overwrite
		}
		if faultinject.Err(PointReplay) != nil {
			break // injected corruption
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			break // checksummed but structurally invalid: treat as corrupt
		}
		if err := fn(rec); err != nil {
			return res, err
		}
		if rec.Err() != nil {
			// The consumer overran the row data: schema/record mismatch.
			// Count it as corruption and stop.
			break
		}
		res.Records++
		res.Rows += rec.NRows
		off += recHeader + plen
		valid = int64(off)
	}
	if int64(len(data)) > valid {
		res.DroppedBytes = int64(len(data)) - valid
		res.DroppedRecords = 1
	}
	res.ValidSize = valid
	if res.DroppedBytes > 0 {
		return res, truncateTo(path, valid, &res)
	}
	return res, nil
}

// truncateTo physically truncates the segment at the last intact
// boundary. Failure to truncate is reported — the caller decides
// whether to keep booting (recovery does; the next rotation abandons
// the file anyway).
func truncateTo(path string, n int64, res *ReplayResult) error {
	res.ValidSize = n
	if err := os.Truncate(path, n); err != nil {
		return fmt.Errorf("wal: truncating corrupt tail of %s: %w", path, err)
	}
	return nil
}
