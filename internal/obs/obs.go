// Package obs is the observability layer threaded through the query
// lifecycle: per-query QueryStats (phase timers, per-kernel
// intersection counts, trie-cache behavior, dispatch decisions) and
// engine-level cumulative EngineMetrics with an exportable
// expvar-style snapshot.
//
// Hot-path discipline: nothing here is touched per-tuple. Intersection
// counters live in set.Stats values owned by one parfor worker each
// (see set.Buffer.Stat) and are folded into a QueryStats once, at the
// parfor join; phase timers are a handful of time.Now calls per query;
// EngineMetrics is updated once per query with atomics.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/set"
	"repro/internal/telemetry"
)

// Dispatch labels for the execution strategy a query ended up on.
const (
	DispatchScalarScan  = "scalar-scan"  // single-relation filtered fold (Q6 shape)
	DispatchDenseMM     = "dense-mm"     // §III-D BLAS matrix–matrix kernel
	DispatchDenseMV     = "dense-mv"     // §III-D BLAS matrix–vector kernel
	DispatchSpMVGather  = "spmv-gather"  // specialized CSR-style SpMV kernel
	DispatchSpMVScatter = "spmv-scatter" // specialized relaxed-order SpMV kernel
	DispatchWCOJ        = "generic-wcoj" // generic worst-case optimal join interpreter
	DispatchHybrid      = "hybrid"       // mixed binary/WCOJ access paths across GHD nodes

	// Approximate-tier dispatches (and the exact distinct scan that
	// anchors them).
	DispatchDistinctScan = "distinct-scan" // exact hash-set COUNT(DISTINCT) scan
	DispatchApproxHLL    = "approx-hll"    // HyperLogLog COUNT(DISTINCT) estimate
	DispatchApproxCMS    = "approx-cms"    // Count-Min heavy-hitter group counts
	DispatchApproxSample = "approx-sample" // scaled aggregates over a reservoir sample
)

// Phases holds one duration per query-lifecycle phase. Freeze is only
// nonzero for the first query against an unfrozen catalog (the
// encoding work the paper's measurements exclude); Compile covers
// per-query trie building; Output covers result assembly and decode.
type Phases struct {
	Parse   time.Duration
	Plan    time.Duration
	Freeze  time.Duration
	Compile time.Duration
	Execute time.Duration
	Output  time.Duration
	Total   time.Duration
}

// NodeCost is the estimate-vs-actual cost audit for one GHD node: the
// §V model's predicted cost (Σ icost×weight over the chosen order)
// against the observed work (the node's measured kernel counts repriced
// with the same icost constants). Ratio is Actual/Est — the optimizer's
// calibration signal per node; 0 when the estimate was 0 (dense
// relations, trivial nodes).
type NodeCost struct {
	Order  []string // the node's executed attribute order
	Est    float64  // predicted §V cost of the chosen access path
	Actual float64  // icost-weighted observed intersections/probes
	Ratio  float64  // Actual/Est (0 when Est == 0)
	Isect  uint64   // raw intersection+probe count at this node
	Bytes  uint64   // bytes materialized at this node
	// Path is the access path the node executed (costopt.PathWCOJ or
	// costopt.PathBinary); LazyLevels counts the lazy-trie levels this
	// node materialized during execution (0 on the WCOJ path and on
	// cache hits whose levels were already built).
	Path       string
	LazyLevels int
}

// QueryStats captures everything observable about one query run.
type QueryStats struct {
	SQL    string
	Phases Phases

	// Fingerprint identifies the statement's literal-free shape (see
	// sqlparse.Fingerprint); 0 when the statement never parsed.
	// FingerprintText is the canonical text the ID hashes.
	Fingerprint     uint64
	FingerprintText string

	// Trace is the query's hierarchical span record (query → phase →
	// GHD node → kernel); nil when the engine ran without telemetry
	// (e.g. the bare Prepare/Execute benchmark path). All telemetry
	// span operations are nil-safe, so executors record through this
	// field unconditionally.
	Trace *telemetry.Trace

	// PlanCached reports whether the (plan, orders) pair came from the
	// prepared-plan cache (parse/plan phases then read ~0).
	PlanCached bool
	// Dispatch is the execution strategy taken (Dispatch* constants).
	Dispatch string
	// AccessPaths lists the per-GHD-node access path in pre-order
	// (costopt.PathWCOJ / costopt.PathBinary); empty for scalar scans
	// and specialized-kernel dispatches.
	AccessPaths []string
	// Threads is the parfor worker bound the query ran with.
	Threads int

	// GHD shape and the optimizer's root decision.
	GHDNodes  int
	RootOrder []string
	Relaxed   bool

	// Intersect counts kernel invocations and materialized bytes,
	// merged from all parfor workers.
	Intersect set.Stats

	// Query-trie construction: cache behavior and builds performed.
	TrieCacheHits   int
	TrieCacheMisses int
	TriesBuilt      int

	// Heap traffic attributed to the query: bytes allocated and GC
	// cycles started while it ran (runtime/metrics deltas taken around
	// the run — process-wide, so concurrent queries share the blame).
	AllocBytes uint64
	GCCycles   uint64

	// MemHighWater is the query's governor-accounted memory peak in
	// bytes (0 when accounting is off).
	MemHighWater int64

	// SnapshotEpoch is the epoch snapshot the query read (0 = static
	// catalog, no post-freeze appends); DeltaRowsFolded counts the
	// delta-store rows that snapshot folded in.
	SnapshotEpoch   uint64
	DeltaRowsFolded int

	// NodeCosts is the per-GHD-node estimate-vs-actual cost audit,
	// appended by the generic WCOJ engine as each node finishes (empty
	// for scalar scans and specialized-kernel dispatches, which run no
	// per-node intersections to audit).
	NodeCosts []NodeCost

	// Approx is true when the result came from the approximate tier
	// (sketch or sample evaluation) rather than exact execution;
	// ApproxRoute names the tier's route decision ("exact", "sample",
	// "sketch"), set for every approx-eligible query including those
	// routed exact. Degraded marks a query that entered the tier because
	// admission control was overloaded and the caller had opted in.
	Approx      bool
	ApproxRoute string
	Degraded    bool
	// ErrorBound is the largest advertised absolute error across output
	// aggregate columns (0 for exact results); ErrorBounds carries the
	// per-output-column bounds (group columns are always exact, bound
	// 0). Confidence is the probability the bounds hold (0.999 for the
	// tier's estimators).
	ErrorBound  float64
	ErrorBounds []float64
	Confidence  float64
	// MissBound, on grouped approximate routes, bounds the true count of
	// any group absent from the answer (0 = the answer is complete).
	MissBound float64

	RowsOut int
}

// String renders the stats in the EXPLAIN ANALYZE block format.
func (q *QueryStats) String() string {
	var b strings.Builder
	plan := "computed"
	if q.PlanCached {
		plan = "cached"
	}
	fmt.Fprintf(&b, "dispatch: %s  threads: %d  plan: %s\n", q.Dispatch, q.Threads, plan)
	if q.Fingerprint != 0 {
		fmt.Fprintf(&b, "fingerprint: %016x  %s\n", q.Fingerprint, q.FingerprintText)
	}
	if len(q.RootOrder) > 0 {
		relax := ""
		if q.Relaxed {
			relax = " (relaxed)"
		}
		fmt.Fprintf(&b, "ghd nodes: %d  root order: [%s]%s\n", q.GHDNodes, strings.Join(q.RootOrder, " "), relax)
	}
	fmt.Fprintf(&b, "phases: parse=%v plan=%v freeze=%v compile=%v execute=%v output=%v total=%v\n",
		rd(q.Phases.Parse), rd(q.Phases.Plan), rd(q.Phases.Freeze), rd(q.Phases.Compile),
		rd(q.Phases.Execute), rd(q.Phases.Output), rd(q.Phases.Total))
	if len(q.AccessPaths) > 0 {
		fmt.Fprintf(&b, "access paths: %s\n", strings.Join(q.AccessPaths, " "))
	}
	is := &q.Intersect
	fmt.Fprintf(&b, "intersections: %d (uint∩uint merge=%d gallop=%d, bs∩uint=%d, bs∩bs=%d, probes=%d), %s materialized\n",
		is.Total(), is.UintUintMerge, is.UintUintGallop, is.BsUint, is.BsBs, is.Probes, fmtBytes(is.BytesOut))
	for _, nc := range q.NodeCosts {
		path := ""
		if nc.Path != "" {
			path = fmt.Sprintf(" path=%s lazy-levels=%d", nc.Path, nc.LazyLevels)
		}
		fmt.Fprintf(&b, "cost audit [%s]:%s est=%.0f actual=%.0f ratio=%.2f (isect=%d, %s)\n",
			strings.Join(nc.Order, " "), path, nc.Est, nc.Actual, nc.Ratio, nc.Isect, fmtBytes(nc.Bytes))
	}
	fmt.Fprintf(&b, "tries: built=%d cache hit=%d miss=%d\n", q.TriesBuilt, q.TrieCacheHits, q.TrieCacheMisses)
	fmt.Fprintf(&b, "heap: %s allocated, %d gc cycles\n", fmtBytes(q.AllocBytes), q.GCCycles)
	if q.MemHighWater > 0 {
		fmt.Fprintf(&b, "mem high-water: %s\n", fmtBytes(uint64(q.MemHighWater)))
	}
	if q.SnapshotEpoch > 0 {
		fmt.Fprintf(&b, "snapshot: epoch=%d delta rows folded=%d\n", q.SnapshotEpoch, q.DeltaRowsFolded)
	}
	if q.ApproxRoute != "" {
		degraded := ""
		if q.Degraded {
			degraded = " (degraded under overload)"
		}
		if q.Approx {
			miss := ""
			if q.MissBound > 0 {
				miss = fmt.Sprintf(" miss bound=%g", q.MissBound)
			}
			fmt.Fprintf(&b, "approx: route=%s error bound=%g confidence=%g%s%s\n",
				q.ApproxRoute, q.ErrorBound, q.Confidence, miss, degraded)
		} else {
			fmt.Fprintf(&b, "approx: route=%s (exact answer)%s\n", q.ApproxRoute, degraded)
		}
	}
	fmt.Fprintf(&b, "rows: %d\n", q.RowsOut)
	return b.String()
}

// Line renders a compact one-line form for benchmark harnesses.
func (q *QueryStats) Line() string {
	is := &q.Intersect
	return fmt.Sprintf("dispatch=%s plan=%t compile=%v execute=%v total=%v isect=%d(mg=%d gl=%d bu=%d bb=%d) cache=%d/%d alloc=%dB rows=%d",
		q.Dispatch, q.PlanCached, rd(q.Phases.Compile), rd(q.Phases.Execute), rd(q.Phases.Total),
		is.Total(), is.UintUintMerge, is.UintUintGallop, is.BsUint, is.BsBs,
		q.TrieCacheHits, q.TrieCacheHits+q.TrieCacheMisses, q.AllocBytes, q.RowsOut)
}

func rd(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// EngineMetrics accumulates per-engine totals across queries. All
// fields are atomics: Record is one query-granularity update, and
// Snapshot can be read concurrently with running queries.
type EngineMetrics struct {
	Queries atomic.Uint64
	Errors  atomic.Uint64
	RowsOut atomic.Uint64

	ParseNs   atomic.Int64
	PlanNs    atomic.Int64
	FreezeNs  atomic.Int64
	CompileNs atomic.Int64
	ExecNs    atomic.Int64
	OutputNs  atomic.Int64
	TotalNs   atomic.Int64

	UintUintMerge  atomic.Uint64
	UintUintGallop atomic.Uint64
	BsUint         atomic.Uint64
	BsBs           atomic.Uint64
	IsectBytes     atomic.Uint64

	TrieCacheHits   atomic.Uint64
	TrieCacheMisses atomic.Uint64
	TriesBuilt      atomic.Uint64
	PlanCacheHits   atomic.Uint64

	AllocBytes atomic.Uint64
	GCCycles   atomic.Uint64

	// extra, when set, supplies derived gauges (the telemetry
	// collector's latency quantiles) merged into Snapshot. Counters
	// alone are exported by SnapshotCounters so fleet-level
	// aggregation never double-counts derived values.
	extra atomic.Pointer[func() map[string]int64]
}

// SetExtra installs a derived-gauge source merged into Snapshot (the
// engine wires the telemetry collector's p50/p95/p99 here).
func (m *EngineMetrics) SetExtra(f func() map[string]int64) {
	m.extra.Store(&f)
}

// Record folds one finished query's stats into the totals.
func (m *EngineMetrics) Record(q *QueryStats) {
	m.Queries.Add(1)
	m.RowsOut.Add(uint64(q.RowsOut))
	m.ParseNs.Add(int64(q.Phases.Parse))
	m.PlanNs.Add(int64(q.Phases.Plan))
	m.FreezeNs.Add(int64(q.Phases.Freeze))
	m.CompileNs.Add(int64(q.Phases.Compile))
	m.ExecNs.Add(int64(q.Phases.Execute))
	m.OutputNs.Add(int64(q.Phases.Output))
	m.TotalNs.Add(int64(q.Phases.Total))
	m.UintUintMerge.Add(q.Intersect.UintUintMerge)
	m.UintUintGallop.Add(q.Intersect.UintUintGallop)
	m.BsUint.Add(q.Intersect.BsUint)
	m.BsBs.Add(q.Intersect.BsBs)
	m.IsectBytes.Add(q.Intersect.BytesOut)
	m.TrieCacheHits.Add(uint64(q.TrieCacheHits))
	m.TrieCacheMisses.Add(uint64(q.TrieCacheMisses))
	m.TriesBuilt.Add(uint64(q.TriesBuilt))
	m.AllocBytes.Add(q.AllocBytes)
	m.GCCycles.Add(q.GCCycles)
	if q.PlanCached {
		m.PlanCacheHits.Add(1)
	}
}

// RecordError counts a failed query.
func (m *EngineMetrics) RecordError() { m.Errors.Add(1) }

// Snapshot exports the totals as an expvar-style flat map, including
// any derived gauges installed with SetExtra (latency quantiles).
func (m *EngineMetrics) Snapshot() map[string]int64 {
	snap := m.SnapshotCounters()
	if f := m.extra.Load(); f != nil {
		for k, v := range (*f)() {
			snap[k] = v
		}
	}
	return snap
}

// SnapshotCounters exports only the raw cumulative counters (no
// derived gauges) — the summable form for aggregating across engines.
func (m *EngineMetrics) SnapshotCounters() map[string]int64 {
	return map[string]int64{
		"queries":                  int64(m.Queries.Load()),
		"errors":                   int64(m.Errors.Load()),
		"rows_out":                 int64(m.RowsOut.Load()),
		"parse_ns":                 m.ParseNs.Load(),
		"plan_ns":                  m.PlanNs.Load(),
		"freeze_ns":                m.FreezeNs.Load(),
		"compile_ns":               m.CompileNs.Load(),
		"execute_ns":               m.ExecNs.Load(),
		"output_ns":                m.OutputNs.Load(),
		"total_ns":                 m.TotalNs.Load(),
		"isect_uint_uint_merge":    int64(m.UintUintMerge.Load()),
		"isect_uint_uint_gallop":   int64(m.UintUintGallop.Load()),
		"isect_bs_uint":            int64(m.BsUint.Load()),
		"isect_bs_bs":              int64(m.BsBs.Load()),
		"isect_bytes_materialized": int64(m.IsectBytes.Load()),
		"trie_cache_hits":          int64(m.TrieCacheHits.Load()),
		"trie_cache_misses":        int64(m.TrieCacheMisses.Load()),
		"tries_built":              int64(m.TriesBuilt.Load()),
		"plan_cache_hits":          int64(m.PlanCacheHits.Load()),
		"alloc_bytes":              int64(m.AllocBytes.Load()),
		"gc_cycles":                int64(m.GCCycles.Load()),
	}
}

// SnapshotString renders the snapshot with sorted keys, one per line.
func (m *EngineMetrics) SnapshotString() string {
	snap := m.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-26s %d\n", k, snap[k])
	}
	return b.String()
}
