package obs

import "runtime/metrics"

// HeapCounters reads the process-wide cumulative heap-allocated byte
// count and GC cycle count via runtime/metrics. Two reads bracket a
// query (or a benchmark iteration batch); the deltas are the heap
// traffic attributed to it. Cheap enough to take per query — no
// stop-the-world, unlike runtime.ReadMemStats.
func HeapCounters() (allocBytes, gcCycles uint64) {
	s := [2]metrics.Sample{
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/cycles/total:gc-cycles"},
	}
	metrics.Read(s[:])
	return s[0].Value.Uint64(), s[1].Value.Uint64()
}
