package sketch

// Reservoir is algorithm-R uniform row sampling (Vitter 1985) with a
// seeded splitmix64 RNG: after n observations each row is retained with
// probability k/n, independent of arrival order, and two reservoirs fed
// the same stream under the same seed are identical. Not safe for
// concurrent mutation.
type Reservoir struct {
	k    int
	n    uint64
	rows [][]any
	rng  uint64
}

// NewReservoir returns an empty reservoir holding at most k rows.
func NewReservoir(k int, seed uint64) *Reservoir {
	return &Reservoir{k: k, rows: make([][]any, 0, min(k, 1024)), rng: splitmix64(seed | 1)}
}

func (r *Reservoir) next() uint64 {
	r.rng = splitmix64(r.rng)
	return r.rng
}

// Add observes one row. The reservoir keeps a reference (callers must
// not mutate the slice afterwards).
func (r *Reservoir) Add(row []any) {
	r.n++
	if len(r.rows) < r.k {
		r.rows = append(r.rows, row)
		return
	}
	if j := r.next() % r.n; j < uint64(r.k) {
		r.rows[j] = row
	}
}

// Rows returns the current sample. The slice is owned by the reservoir;
// callers must copy the header before retaining it across Adds.
func (r *Reservoir) Rows() [][]any { return r.rows }

// N reports the total number of rows observed.
func (r *Reservoir) N() uint64 { return r.n }

// Scale is the per-sample-row multiplicity N/|sample| (1 when the whole
// stream fit in the reservoir).
func (r *Reservoir) Scale() float64 {
	if len(r.rows) == 0 {
		return 1
	}
	return float64(r.n) / float64(len(r.rows))
}

// Cap reports the reservoir capacity k.
func (r *Reservoir) Cap() int { return r.k }
