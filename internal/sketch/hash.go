// Package sketch implements the probabilistic summaries behind the
// approximate query tier: HyperLogLog for COUNT(DISTINCT), Count-Min
// for heavy-hitter group counts, and seeded reservoir samples of base
// rows. In the paper's framing (LevelHeaded §III) these are just
// another annotation shape over the same relations — a lossy semiring
// fold that trades bounded error for sublinear evaluation work.
//
// Everything here is deterministic: hashing is seeded splitmix64 over
// canonicalized values (so -0.0 and +0.0 collapse and every NaN payload
// is one value, matching the engine's group pseudo-encoding), and the
// reservoir RNG is a seeded splitmix64 stream. Two builds over the same
// rows produce identical sketches, which the difftest lane relies on.
package sketch

import "math"

// splitmix64 is the SplitMix64 finalizer: a fast, well-mixed 64-bit
// permutation (Steele et al.). Used both as a value-hash finalizer and
// as the reservoir RNG step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// canonFloatBits canonicalizes a float64 for hashing: -0.0 folds into
// +0.0 and every NaN payload maps to one quiet NaN, mirroring
// refeval.canonGroupVal and the engine's pseudo-encoding.
func canonFloatBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	if math.IsNaN(f) {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(f)
}

// HashInt hashes an int64 value under seed.
func HashInt(seed uint64, v int64) uint64 {
	return splitmix64(seed ^ splitmix64(uint64(v)))
}

// HashFloat hashes a float64 value under seed, canonicalized.
func HashFloat(seed uint64, f float64) uint64 {
	return splitmix64(seed ^ splitmix64(canonFloatBits(f)))
}

// HashString hashes a string value under seed (FNV-1a folded through
// the splitmix finalizer so short strings still spread).
func HashString(seed uint64, s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return splitmix64(seed ^ h)
}

// HashValue hashes a decoded cell (int64, float64 or string). Note that
// int64 and float64 cells hash apart even for equal magnitudes — a
// column has one storage kind, so cross-kind equality never arises
// within one sketch.
func HashValue(seed uint64, v any) uint64 {
	switch x := v.(type) {
	case int64:
		return HashInt(seed, x)
	case float64:
		return HashFloat(seed, x)
	case string:
		return HashString(seed, x)
	}
	return splitmix64(seed)
}
