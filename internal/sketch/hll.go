package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// DefaultHLLPrecision is the register-count exponent used by the
// engine's per-column cardinality sketches: p=12 ⇒ m=4096 registers,
// 4 KiB per sketch, standard error 1.04/√m ≈ 1.6%.
const DefaultHLLPrecision = 12

// HLL is a HyperLogLog cardinality sketch (Flajolet et al. 2007) over
// 64-bit value hashes. Not safe for concurrent mutation.
type HLL struct {
	p    uint8
	regs []uint8
}

// NewHLL returns an empty sketch with 2^p registers (4 ≤ p ≤ 18).
func NewHLL(p uint8) *HLL {
	if p < 4 || p > 18 {
		panic(fmt.Sprintf("sketch: HLL precision %d out of range [4,18]", p))
	}
	return &HLL{p: p, regs: make([]uint8, 1<<p)}
}

// AddHash observes one canonical value hash.
func (h *HLL) AddHash(x uint64) {
	idx := x >> (64 - h.p)
	// Rank of the first set bit in the remaining 64-p bits (1-based);
	// an all-zero tail ranks 64-p+1.
	tail := x<<h.p | 1<<(h.p-1)
	rho := uint8(bits.LeadingZeros64(tail)) + 1
	if rho > h.regs[idx] {
		h.regs[idx] = rho
	}
}

// alpha is the bias-correction constant α_m.
func (h *HLL) alpha() float64 {
	m := float64(uint64(1) << h.p)
	switch h.p {
	case 4:
		return 0.673
	case 5:
		return 0.697
	case 6:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/m)
}

// Estimate returns the estimated number of distinct values, with
// linear-counting correction in the small-cardinality regime.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.regs))
	sum := 0.0
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := h.alpha() * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Linear counting: exact to ±O(1) while most registers are empty,
		// which covers every small table the exact path would win anyway.
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// StdError is the theoretical relative standard error 1.04/√m.
func (h *HLL) StdError() float64 {
	return 1.04 / math.Sqrt(float64(len(h.regs)))
}

// Merge folds another sketch of the same precision into h (register-wise
// max), equivalent to having observed the union of both streams.
func (h *HLL) Merge(o *HLL) error {
	if h.p != o.p {
		return fmt.Errorf("sketch: merge of HLL precisions %d and %d", h.p, o.p)
	}
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

// Bytes reports the sketch's register-array footprint.
func (h *HLL) Bytes() int { return len(h.regs) }
