package sketch

import "math"

// Default Count-Min geometry for the per-column group-count sketches:
// depth 4 ⇒ overcount-failure probability e⁻⁴ ≈ 1.8% per point query,
// width 2048 ⇒ guaranteed overcount ≤ (e/2048)·N ≈ 0.13% of the stream.
const (
	DefaultCMSDepth = 4
	DefaultCMSWidth = 2048
)

// CMS is a Count-Min sketch (Cormode & Muthukrishnan 2005) over 64-bit
// value hashes: point counts are never under-estimated, and over-
// estimate by at most ErrorBound with probability 1-e^-depth.
type CMS struct {
	depth int
	width int
	rows  [][]uint64
	seeds []uint64
	n     uint64
}

// NewCMS returns an empty depth×width sketch. Row seeds derive
// deterministically from the geometry so equal streams build equal
// sketches.
func NewCMS(depth, width int) *CMS {
	c := &CMS{depth: depth, width: width}
	c.rows = make([][]uint64, depth)
	c.seeds = make([]uint64, depth)
	for i := range c.rows {
		c.rows[i] = make([]uint64, width)
		c.seeds[i] = splitmix64(uint64(i) + 0x5bf03635)
	}
	return c
}

// AddHash observes one canonical value hash.
func (c *CMS) AddHash(x uint64) {
	for i := 0; i < c.depth; i++ {
		c.rows[i][splitmix64(x^c.seeds[i])%uint64(c.width)]++
	}
	c.n++
}

// Count returns the point-count estimate for a value hash (an upper
// bound on the true count).
func (c *CMS) Count(x uint64) uint64 {
	min := uint64(math.MaxUint64)
	for i := 0; i < c.depth; i++ {
		if v := c.rows[i][splitmix64(x^c.seeds[i])%uint64(c.width)]; v < min {
			min = v
		}
	}
	return min
}

// N reports the total number of observations.
func (c *CMS) N() uint64 { return c.n }

// ErrorBound is the additive overcount guarantee εN with ε = e/width,
// held with probability 1-e^-depth per point query.
func (c *CMS) ErrorBound() float64 {
	return math.E / float64(c.width) * float64(c.n)
}

// Bytes reports the counter-array footprint.
func (c *CMS) Bytes() int { return c.depth * c.width * 8 }
