package sketch

import (
	"fmt"
	"math"
	"testing"
)

func TestHashCanonicalization(t *testing.T) {
	const seed = 42
	if HashFloat(seed, 0.0) != HashFloat(seed, math.Copysign(0, -1)) {
		t.Error("-0.0 and +0.0 must hash together")
	}
	nan2 := math.Float64frombits(math.Float64bits(math.NaN()) ^ 1)
	if HashFloat(seed, math.NaN()) != HashFloat(seed, nan2) {
		t.Error("NaN payloads must hash together")
	}
	if HashInt(seed, 7) == HashInt(seed+1, 7) {
		t.Error("seed must matter")
	}
	if HashString(seed, "") == HashString(seed, "a") {
		t.Error("strings must hash apart")
	}
	// Determinism across calls.
	if HashValue(seed, int64(9)) != HashInt(seed, 9) {
		t.Error("HashValue(int64) must match HashInt")
	}
}

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1000, 50000, 500000} {
		h := NewHLL(DefaultHLLPrecision)
		for i := 0; i < n; i++ {
			h.AddHash(HashInt(1, int64(i)))
		}
		est := h.Estimate()
		// 5 standard errors plus small-n slack: the difftest lane promises
		// this envelope, so pin it here at several regimes.
		tol := 5*h.StdError()*float64(n) + 3
		if math.Abs(est-float64(n)) > tol {
			t.Errorf("n=%d: estimate %.1f off by more than %.1f", n, est, tol)
		}
	}
}

func TestHLLDuplicatesDontCount(t *testing.T) {
	h := NewHLL(DefaultHLLPrecision)
	for i := 0; i < 10000; i++ {
		h.AddHash(HashInt(1, int64(i%10)))
	}
	if est := h.Estimate(); math.Abs(est-10) > 2 {
		t.Errorf("10 distinct seen 1000×: estimate %.2f", est)
	}
}

func TestHLLMerge(t *testing.T) {
	a, b, both := NewHLL(12), NewHLL(12), NewHLL(12)
	for i := 0; i < 5000; i++ {
		x := HashInt(1, int64(i))
		both.AddHash(x)
		if i%2 == 0 {
			a.AddHash(x)
		} else {
			b.AddHash(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != both.Estimate() {
		t.Errorf("merged estimate %.1f != single-stream %.1f", a.Estimate(), both.Estimate())
	}
	if err := a.Merge(NewHLL(11)); err == nil {
		t.Error("precision mismatch must error")
	}
}

func TestCMSNeverUndercounts(t *testing.T) {
	c := NewCMS(DefaultCMSDepth, DefaultCMSWidth)
	true1 := map[int64]uint64{}
	for i := 0; i < 20000; i++ {
		v := int64(i % 97)
		true1[v]++
		c.AddHash(HashInt(2, v))
	}
	if c.N() != 20000 {
		t.Fatalf("N = %d", c.N())
	}
	bound := c.ErrorBound()
	for v, want := range true1 {
		got := c.Count(HashInt(2, v))
		if got < want {
			t.Fatalf("undercount for %d: %d < %d", v, got, want)
		}
		if float64(got-want) > bound {
			t.Errorf("overcount for %d: %d vs %d exceeds bound %.1f", v, got, want, bound)
		}
	}
}

func TestReservoirBasics(t *testing.T) {
	r := NewReservoir(64, 7)
	for i := 0; i < 10000; i++ {
		r.Add([]any{int64(i)})
	}
	if len(r.Rows()) != 64 || r.N() != 10000 {
		t.Fatalf("size=%d n=%d", len(r.Rows()), r.N())
	}
	if s := r.Scale(); math.Abs(s-10000.0/64) > 1e-9 {
		t.Fatalf("scale = %v", s)
	}
	// Determinism: same seed, same stream ⇒ identical sample.
	r2 := NewReservoir(64, 7)
	for i := 0; i < 10000; i++ {
		r2.Add([]any{int64(i)})
	}
	for i := range r.Rows() {
		if r.Rows()[i][0] != r2.Rows()[i][0] {
			t.Fatal("reservoir is not deterministic")
		}
	}
	// Short streams are kept whole.
	r3 := NewReservoir(64, 7)
	for i := 0; i < 10; i++ {
		r3.Add([]any{int64(i)})
	}
	if len(r3.Rows()) != 10 || r3.Scale() != 1 {
		t.Fatalf("short stream: %d rows, scale %v", len(r3.Rows()), r3.Scale())
	}
}

func TestReservoirRoughlyUniform(t *testing.T) {
	// Each of 1000 rows should land in a k=100 sample with p≈0.1;
	// counting hits over many seeds, the first and second halves of the
	// stream must be hit about equally (no recency/oldness bias).
	const n, k, trials = 1000, 100, 200
	firstHalf := 0
	total := 0
	for s := 0; s < trials; s++ {
		r := NewReservoir(k, uint64(s))
		for i := 0; i < n; i++ {
			r.Add([]any{int64(i)})
		}
		for _, row := range r.Rows() {
			total++
			if row[0].(int64) < n/2 {
				firstHalf++
			}
		}
	}
	frac := float64(firstHalf) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("first-half fraction %.3f, want ≈0.5", frac)
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h := NewHLL(DefaultHLLPrecision)
	for i := 0; i < b.N; i++ {
		h.AddHash(HashInt(1, int64(i)))
	}
}

func ExampleHLL() {
	h := NewHLL(12)
	for i := 0; i < 3; i++ {
		h.AddHash(HashInt(1, int64(i)))
	}
	fmt.Printf("%.0f\n", h.Estimate())
	// Output: 3
}
