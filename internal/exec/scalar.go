package exec

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/qerr"
	"repro/internal/telemetry"
)

// runScalarScan executes the single-relation, no-join, no-group-by fast
// path (paper Q6): a parallel filtered fold over the base columns — the
// |V| = 0 base case of the WCOJ recursion.
func runScalarScan(p *planner.Plan, opts Options, parent telemetry.SpanID) (*Result, error) {
	tr := stTrace(opts.Stats)
	ks := tr.Begin(parent, telemetry.SpanKernel, obs.DispatchScalarScan)
	defer tr.End(ks)
	if len(p.Rels) != 1 {
		return nil, fmt.Errorf("exec: scalar scan requires one relation")
	}
	r := &p.Rels[0]
	tb := opts.table(r.Table)
	binding := &expr.Binding{Alias: r.Alias, Table: tb}

	var filter expr.Filter
	if r.Filter != nil {
		f, err := expr.CompileFilter(r.Filter, binding)
		if err != nil {
			return nil, err
		}
		filter = f
	}

	// Compile leaf expressions per aggregate.
	type aggEval struct {
		kind   planner.AggKind
		skel   *planner.EmitNode
		leaves []expr.Value
	}
	aggs := make([]aggEval, len(p.Aggs))
	for ai := range p.Aggs {
		spec := &p.Aggs[ai]
		aggs[ai] = aggEval{kind: spec.Kind, skel: spec.Skeleton}
		for _, leaf := range spec.Leaves {
			v, err := expr.CompileValue(leaf.Expr, binding)
			if err != nil {
				return nil, err
			}
			aggs[ai].leaves = append(aggs[ai].leaves, v)
		}
	}

	// Attribute-elimination ablation: without elimination the scan
	// touches every annotation column of the relation, not just the ones
	// the query references (the paper's Q1/Q6 rows of Table III).
	var allCols [][]float64
	if opts.NoAttrElim {
		for _, cd := range tb.Schema.Cols {
			if col := tb.Col(cd.Name); col != nil {
				if f := col.AnnFloats(); f != nil {
					allCols = append(allCols, f)
				}
			}
		}
	}

	n := tb.NumRows
	threads := opts.threads()
	if threads > n {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	partial := make([][]float64, threads)
	touched := make([]bool, threads)
	errs := make([]error, threads)
	// Cancellation granularity for the scan loop: cheap relative to the
	// per-row work, frequent enough to stop a long fold promptly.
	const scanCtxStride = 8192
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[t] = qerr.CapturePanic(r)
				}
			}()
			acc := make([]float64, len(aggs))
			for ai := range aggs {
				switch aggs[ai].kind {
				case planner.AggMin:
					acc[ai] = math.Inf(1)
				case planner.AggMax:
					acc[ai] = math.Inf(-1)
				}
			}
			any := false
			sink := 0.0
			for blk := lo; blk < hi; blk += scanCtxStride {
				if opts.Ctx != nil {
					if err := opts.Ctx.Err(); err != nil {
						errs[t] = err
						return
					}
				}
				end := blk + scanCtxStride
				if end > hi {
					end = hi
				}
				for row := int32(blk); row < int32(end); row++ {
					for _, col := range allCols {
						sink += col[row]
					}
					if filter != nil && !filter(row) {
						continue
					}
					any = true
					for ai := range aggs {
						a := &aggs[ai]
						var v float64
						switch a.kind {
						case planner.AggCount:
							v = 1
						case planner.AggMin, planner.AggMax:
							v = a.leaves[0](row)
						default:
							v = evalScalarSkel(a.skel, a.leaves, row)
						}
						acc[ai] = combine1(a.kind, acc[ai], v)
					}
				}
			}
			if sink == 0.12345 {
				acc[0] += 0 // keep the column touches from being elided
			}
			partial[t] = acc
			touched[t] = any
		}(t, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	final := make([]float64, len(aggs))
	for ai := range aggs {
		switch aggs[ai].kind {
		case planner.AggMin:
			final[ai] = math.Inf(1)
		case planner.AggMax:
			final[ai] = math.Inf(-1)
		}
	}
	anyRows := false
	for t := range partial {
		if partial[t] == nil || !touched[t] {
			continue
		}
		anyRows = true
		for ai := range aggs {
			final[ai] = combine1(aggs[ai].kind, final[ai], partial[t][ai])
		}
	}
	if !anyRows {
		for ai := range final {
			final[ai] = 0
		}
	}
	for ai := range final {
		if math.IsInf(final[ai], 0) {
			final[ai] = 0
		}
	}

	if p.Having != nil && !evalHaving(p.Having, final) {
		res := &Result{NumRows: 0}
		for _, o := range p.Outputs {
			res.Cols = append(res.Cols, &Column{Name: o.Name, Kind: KindFloat})
		}
		return res, nil
	}

	res := &Result{NumRows: 1}
	for _, o := range p.Outputs {
		col := &Column{Name: o.Name, Kind: KindFloat, F64: make([]float64, 1)}
		switch o.Kind {
		case planner.OutAgg:
			col.F64[0] = final[o.Index]
		case planner.OutAggExpr:
			col.F64[0] = evalAggExpr(o.Expr, final)
		default:
			return nil, fmt.Errorf("exec: scalar scan cannot produce group output %s", o.Name)
		}
		res.Cols = append(res.Cols, col)
	}
	return res, nil
}

// evalScalarSkel evaluates an aggregate skeleton with all leaves bound
// to one source row.
func evalScalarSkel(e *planner.EmitNode, leaves []expr.Value, row int32) float64 {
	switch e.Op {
	case planner.EmitLeaf:
		return leaves[e.Leaf](row)
	case planner.EmitConst:
		return e.Const
	case planner.EmitAdd:
		return evalScalarSkel(e.L, leaves, row) + evalScalarSkel(e.R, leaves, row)
	case planner.EmitSub:
		return evalScalarSkel(e.L, leaves, row) - evalScalarSkel(e.R, leaves, row)
	case planner.EmitMul:
		return evalScalarSkel(e.L, leaves, row) * evalScalarSkel(e.R, leaves, row)
	case planner.EmitDiv:
		return evalScalarSkel(e.L, leaves, row) / evalScalarSkel(e.R, leaves, row)
	case planner.EmitMulInd:
		if l := evalScalarSkel(e.L, leaves, row); l != 0 {
			return l * evalScalarSkel(e.R, leaves, row)
		}
		return 0
	}
	return 0
}
