package exec

import (
	"testing"

	"repro/internal/planner"
)

// The emit-time aggregation table runs once per WCOJ output tuple: with
// the group set warm its add path must not allocate, on both the
// open-addressing and the dense direct-indexed layouts.

func accNode(domains []int) *cNode {
	n := &cNode{
		aggs:     make([]cAgg, 2),
		aggKinds: []planner.AggKind{planner.AggSum, planner.AggMax},
	}
	for _, d := range domains {
		n.hgroups = append(n.hgroups, hashGroup{domain: d})
	}
	return n
}

func TestHashAccAddZeroAllocs(t *testing.T) {
	cases := []struct {
		name    string
		domains []int
		dense   bool
	}{
		{"open_addressing", []int{0, 0}, false},
		{"dense_fallback", []int{16, 32}, true},
	}
	for _, c := range cases {
		n := accNode(c.domains)
		h := newHashAcc(n)
		if (h.dense != nil) != c.dense {
			t.Fatalf("%s: dense=%v, want %v", c.name, h.dense != nil, c.dense)
		}
		toks := make([]uint64, 2)
		vals := []float64{1, 2}
		// Warm: insert a group population large enough to force several
		// probe-table growths before measuring.
		for g := 0; g < 256; g++ {
			toks[0] = uint64(g % 16)
			toks[1] = uint64(g % 32)
			h.add(toks, vals)
		}
		g := 0
		if n := testing.AllocsPerRun(1000, func() {
			toks[0] = uint64(g % 16)
			toks[1] = uint64(g % 32)
			g++
			h.add(toks, vals)
		}); n != 0 {
			t.Errorf("%s: %v allocs/op on warm add path, want 0", c.name, n)
		}
	}
}

// TestHashAccMatchesMap cross-checks the open-addressing table against
// a straightforward map-based reference on a randomized-ish workload.
func TestHashAccMatchesMap(t *testing.T) {
	n := accNode([]int{0, 0})
	h := newHashAcc(n)
	ref := map[[2]uint64][2]float64{}
	seen := map[[2]uint64]bool{}
	toks := make([]uint64, 2)
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 5000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		toks[0] = x % 97
		toks[1] = (x >> 32) % 89
		v := float64(i%13) - 6
		h.add(toks, []float64{v, v})
		k := [2]uint64{toks[0], toks[1]}
		r, ok := ref[k]
		if !ok {
			ref[k] = [2]float64{v, v}
		} else {
			if v > r[1] {
				r[1] = v
			}
			r[0] += v
			ref[k] = r
		}
		seen[k] = true
	}
	if h.n() != len(ref) {
		t.Fatalf("group count: got %d, want %d", h.n(), len(ref))
	}
	for gi := 0; gi < h.n(); gi++ {
		k := [2]uint64{h.tokens[gi*2], h.tokens[gi*2+1]}
		r, ok := ref[k]
		if !ok {
			t.Fatalf("group %v not in reference", k)
		}
		if h.aggs[gi*2] != r[0] || h.aggs[gi*2+1] != r[1] {
			t.Fatalf("group %v: got (%g,%g), want (%g,%g)",
				k, h.aggs[gi*2], h.aggs[gi*2+1], r[0], r[1])
		}
	}
	// merge into a fresh table must reproduce the same groups.
	m := newHashAcc(n)
	m.merge(h)
	if m.n() != h.n() {
		t.Fatalf("merge changed group count: %d vs %d", m.n(), h.n())
	}
}
