// Package exec is LevelHeaded's execution engine: it compiles a logical
// plan plus chosen attribute orders into per-query tries and runs the
// generic worst-case optimal join (Algorithm 1) over them, with
// Yannakakis-style communication between GHD nodes, semiring
// aggregation, GROUP BY materialization, the §V-A2 one-attribute union,
// and parfor parallelization of the outermost loop (paper §III-C/D).
package exec

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/costopt"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// stTrace extracts the span trace threaded through Options.Stats.
// Both layers are nil-safe, so executors record spans unconditionally.
func stTrace(st *obs.QueryStats) *telemetry.Trace {
	if st == nil {
		return nil
	}
	return st.Trace
}

// Options configures one execution.
type Options struct {
	// Threads bounds the parfor worker count; 0 means GOMAXPROCS.
	Threads int
	// NoAttrElim disables attribute elimination (Table III ablation):
	// every annotation column of every table is loaded into the query
	// tries, and the dense BLAS dispatch is disabled.
	NoAttrElim bool
	// NoBLAS disables only the dense-kernel dispatch (§III-D), forcing
	// dense LA to run as a pure aggregate-join in the WCOJ engine.
	NoBLAS bool
	// Cache holds reusable unfiltered tries (the "index creation" the
	// paper's measurements exclude). Nil disables caching.
	Cache *TrieCache
	// NoFastPath disables the specialized kernels and forces the generic
	// WCOJ interpreter (used with forced/worst attribute orders so
	// ablations measure the interpreter).
	NoFastPath bool
	// ForcePath overrides the per-node access-path classification:
	// costopt.PathWCOJ or costopt.PathBinary. Either value also skips
	// the dense/SpMV fast paths so A/B runs compare the two generic
	// navigators symmetrically. Empty means cost-based selection.
	ForcePath string
	// Ctx, when non-nil, cancels the execution: it is checked between
	// phases and at parfor chunk boundaries, and its Err is returned.
	Ctx context.Context
	// Stats, when non-nil, receives phase timings, kernel counters and
	// dispatch decisions for this execution. Counters are owned
	// per-worker and merged at parfor joins — no hot-path allocation.
	Stats *obs.QueryStats
	// Mem, when non-nil, is the query's memory accountant: the large
	// allocation sites (query-trie builds, worker output buffers,
	// aggregation tables, result assembly) charge it and abort with
	// qerr.ResourceExhaustedError when the query is over budget.
	Mem *governor.Accountant
	// Snap pins the epoch snapshot this execution reads. Nil is the
	// static-catalog fast path (no post-freeze appends anywhere): table
	// handles are used directly, costing one nil-pointer branch.
	Snap *storage.Snapshot
}

// table resolves a plan's table handle through the pinned snapshot.
func (o *Options) table(t *storage.Table) *storage.Table { return o.Snap.Resolve(t) }

// ctxErr reports the options context's cancellation state (nil-safe).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func (o Options) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return runtime.GOMAXPROCS(0)
}

// Kind is the type of a result column.
type Kind uint8

const (
	KindInt Kind = iota
	KindFloat
	KindString
)

// Column is one typed result column.
type Column struct {
	Name string
	Kind Kind
	I64  []int64
	F64  []float64
	Str  []string
}

// Result is a query result in columnar form. Stats, when the engine
// collects them, describes how the query ran.
type Result struct {
	Cols    []*Column
	NumRows int
	Stats   *obs.QueryStats
}

// Col returns the named column or nil.
func (r *Result) Col(name string) *Column {
	for _, c := range r.Cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Float returns the float64 value at (col, row), converting ints.
func (c *Column) Float(row int) float64 {
	switch c.Kind {
	case KindFloat:
		return c.F64[row]
	case KindInt:
		return float64(c.I64[row])
	}
	return 0
}

// TrieCache shares immutable unfiltered tries across queries.
type TrieCache struct {
	mu sync.RWMutex
	m  map[string]interface{}
}

// NewTrieCache returns an empty cache.
func NewTrieCache() *TrieCache { return &TrieCache{m: map[string]interface{}{}} }

func (c *TrieCache) get(key string) (interface{}, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *TrieCache) put(key string, v interface{}) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// PurgeTable drops every cached trie of the named table built from a
// generation other than keep. Cache keys are "<table>@<gen>|..." (see
// compile.go), so staleness is a prefix test.
func (c *TrieCache) PurgeTable(table string, keep uint64) {
	if c == nil {
		return
	}
	live := fmt.Sprintf("%s@%d|", table, keep)
	prefix := table + "@"
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.m {
		if strings.HasPrefix(k, prefix) && !strings.HasPrefix(k, live) {
			delete(c.m, k)
		}
	}
}

// Len reports the number of cached tries.
func (c *TrieCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// collectPaths lists the compiled tree's access paths in pre-order.
func collectPaths(n *cNode, out []string) []string {
	out = append(out, n.path)
	for _, ch := range n.children {
		out = collectPaths(ch, out)
	}
	return out
}

// Run executes the plan with the chosen attribute orders.
func Run(p *planner.Plan, ch *costopt.Choice, cat *storage.Catalog, opts Options) (*Result, error) {
	if !cat.Frozen() {
		return nil, fmt.Errorf("exec: catalog must be frozen before querying")
	}
	if fp := opts.ForcePath; fp != "" && fp != costopt.PathWCOJ && fp != costopt.PathBinary {
		return nil, fmt.Errorf("exec: unknown forced access path %q", fp)
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	st := opts.Stats
	if st != nil {
		st.Threads = opts.threads()
	}
	tr := stTrace(st)
	if p.ScalarScan {
		if st != nil {
			st.Dispatch = obs.DispatchScalarScan
		}
		t0 := time.Now()
		es := tr.Begin(tr.Root(), telemetry.SpanPhase, "execute")
		res, err := runScalarScan(p, opts, es)
		tr.End(es)
		if st != nil {
			st.Phases.Execute = time.Since(t0)
		}
		return res, err
	}
	t0 := time.Now()
	cs := tr.Begin(tr.Root(), telemetry.SpanPhase, "compile")
	c, err := compile(p, ch, cat, opts)
	tr.End(cs)
	if st != nil {
		st.Phases.Compile = time.Since(t0)
	}
	if err != nil {
		return nil, err
	}
	// One execute span covers whichever dispatch commits (its kernel
	// span identifies the strategy; an unmatched fast-path probe costs
	// microseconds and stays inside the same interval).
	es := tr.Begin(tr.Root(), telemetry.SpanPhase, "execute")
	c.execSpan = es
	// Dense LA dispatch (§III-D): attribute elimination leaves dense
	// annotation buffers BLAS-compatible; call the kernel opaquely.
	// A forced access path bypasses the specialized kernels so both
	// forced modes exercise (and can be compared on) the generic engine.
	if !opts.NoAttrElim && !opts.NoBLAS && opts.ForcePath == "" {
		t1 := time.Now()
		if res, ok, err := tryDenseDispatch(c); err != nil {
			tr.End(es)
			return nil, err
		} else if ok {
			tr.End(es)
			if st != nil {
				st.Phases.Execute = time.Since(t1)
			}
			return res, nil
		}
	}
	// Specialized sparse matrix–vector kernel (the interpreter's
	// code-generation stand-in); falls back to the generic engine when
	// the plan shape does not match exactly.
	if !opts.NoFastPath && opts.ForcePath == "" {
		t1 := time.Now()
		if res, ok, err := trySpMVFastPath(c, opts); err != nil {
			tr.End(es)
			return nil, err
		} else if ok {
			tr.End(es)
			if st != nil {
				st.Phases.Execute = time.Since(t1)
			}
			return res, nil
		}
	}
	if st != nil {
		st.Dispatch = obs.DispatchWCOJ
		st.AccessPaths = collectPaths(c.root, nil)
		for _, p := range st.AccessPaths {
			if p == costopt.PathBinary {
				st.Dispatch = obs.DispatchHybrid
				break
			}
		}
	}
	t1 := time.Now()
	rows, hacc, err := runNode(c.root, opts, es)
	tr.End(es)
	if err != nil {
		return nil, err
	}
	if st != nil {
		st.Phases.Execute = time.Since(t1)
	}
	t2 := time.Now()
	os := tr.Begin(tr.Root(), telemetry.SpanPhase, "output")
	var res *Result
	if hacc != nil {
		res, err = assembleHash(c, hacc)
	} else {
		res, err = assemble(c, rows)
	}
	releaseRows(rows) // assemble copies into the Result; recycle the buffer
	tr.End(os)
	if st != nil && err == nil {
		st.Phases.Output = time.Since(t2)
	}
	return res, err
}
