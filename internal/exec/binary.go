// Binary hash-join navigation over lazily-built generalized hash
// tries: the second access path of the hybrid executor. Instead of
// materializing per-level set intersections, one driver relation's
// sorted value run is scanned and the other participants are membership
// -probed in batches (vectorized probing). Because the driver run is
// ascending and probing preserves exactly the survivors an intersection
// would produce, the navigator visits the same value sequence as the
// WCOJ recursion — it shares the worker's emit machinery verbatim, so
// hybrid and forced-WCOJ plans are bit-identical on every shape.
package exec

import (
	"fmt"

	"repro/internal/faultinject"
)

// probeBlock is the batched-probe width: per non-driver relation, one
// tight loop fills a rank buffer for probeBlock driver values before
// the survivor scan, keeping probe loops branch-predictable and free of
// per-element call overhead.
const probeBlock = 512

// binBufs is the per-level probe scratch of one worker: the batched
// rank buffers (one per participating relation) and a value buffer for
// materializing bitset-layout trie sets. Pooled with the worker, so the
// steady-state probe loop performs zero allocations.
type binBufs struct {
	ranks [][]int32
	vals  []uint32
}

// prepareBinary materializes everything a binary node needs before the
// parfor fan-out: all lazy-trie levels and annotation buffers (the
// "first probe" of this node — skipped entirely when the level-0 join
// came up empty), the dense level-0 probe index, and the deferred
// aggregate-leaf and multiplicity bindings.
func prepareBinary(n *cNode) {
	for _, cr := range n.rels {
		if cr.lz == nil {
			continue
		}
		cr.lz.EnsureLevels(len(cr.attrs) - 1)
		cr.lz.EnsureAnns()
		cr.lz.EnsureProbe0()
		if a := cr.lz.Ann(multAnn); a != nil {
			cr.mult = a.F64
		}
	}
	for _, b := range n.lazyBinds {
		n.aggs[b.agg].leafBufs[b.leaf] = b.ann.F64
	}
}

// lazyLevelsSum counts materialized lazy-trie levels across the node's
// relations; runNode diffs it around execution for the EXPLAIN ANALYZE
// lazy-build counter.
func lazyLevelsSum(n *cNode) int {
	s := 0
	for _, cr := range n.rels {
		if cr.lz != nil {
			s += cr.lz.BuiltLevels()
		}
	}
	return s
}

// probeRank locates v in a relation's set under parent, or -1.
func probeRank(cr *cRel, lvl int, parent int32, v uint32) int32 {
	if cr.lz != nil {
		if lvl == 0 {
			return cr.lz.Probe0(v)
		}
		return cr.lz.RankOf(lvl, parent, v)
	}
	return cr.tr.RankOf(lvl, parent, v)
}

// lvlCard reports the cardinality of a relation's set under parent.
func lvlCard(cr *cRel, lvl int, parent int32) int {
	if cr.lz != nil {
		return cr.lz.Card(lvl, parent)
	}
	return cr.tr.Set(lvl, parent).Card()
}

// lvlSlice returns a relation's sorted value run under parent and the
// global rank of its first element, materializing bitset layouts into
// scratch. The returned slice aliases the trie or scratch; callers only
// read it.
func lvlSlice(cr *cRel, lvl int, parent int32, scratch []uint32) (vals []uint32, base int32, sc []uint32) {
	if cr.lz != nil {
		return cr.lz.Values(lvl, parent), cr.lz.Start(lvl, parent), scratch
	}
	s := cr.tr.Set(lvl, parent)
	base = cr.tr.Levels[lvl].Starts[parent]
	if u, ok := s.Uints(); ok {
		return u, base, scratch
	}
	scratch = scratch[:0]
	s.ForEach(func(v uint32) {
		scratch = append(scratch, v)
	})
	return scratch, base, scratch
}

// binBuf returns (lazily creating) the worker's level-d probe scratch.
func (w *worker) binBuf(d int) *binBufs {
	if w.bbufs[d] == nil {
		w.bbufs[d] = &binBufs{}
	}
	return w.bbufs[d]
}

// runChunkBinary processes the assigned level-0 survivors (already
// probed by levelZeroValues' binary branch), binding each relation's
// rank and descending. Mirrors runChunk: same context-check cadence,
// same group boundaries, same emit calls — only navigation differs.
func (w *worker) runChunkBinary(vals []uint32) error {
	faultinject.Fire(faultinject.PointExecWorker)
	n := w.n
	ps := n.parts[0]
	boundary := n.matCount - 1
	for vi, v := range vals {
		if vi%ctxCheckStride == 0 {
			if w.ctx != nil {
				if err := w.ctx.Err(); err != nil {
					return err
				}
			}
			if err := w.chargeRetained(); err != nil {
				return err
			}
		}
		for _, p := range ps {
			rk := probeRank(n.rels[p.rel], p.lvl, 0, v)
			if rk < 0 {
				return fmt.Errorf("exec: value %d missing from %s level %d", v, n.rels[p.rel].alias, p.lvl)
			}
			w.ranks[p.rel][p.lvl] = rk
		}
		w.iStats.Probes += uint64(len(ps))
		if 0 < n.matCount {
			w.curKey[0] = v
		}
		if w.curVals != nil {
			w.curVals[0] = v
		}
		if boundary == 0 {
			w.beginGroup()
		}
		if n.nLevels == 1 {
			w.addTuple(v)
		} else {
			if err := w.descendBinary(1); err != nil {
				return err
			}
		}
		if boundary == 0 {
			w.endGroup()
		}
	}
	return nil
}

// visitBinary is the per-value emit step of the binary navigator — the
// exact body of the WCOJ recursion's visit closure, as a method so the
// probe loops stay closure-free (and allocation-free).
func (w *worker) visitBinary(d int, v uint32, boundary, last bool) error {
	n := w.n
	w.steps++
	if w.steps&stepCheckMask == 0 {
		if err := w.tick(); err != nil {
			return err
		}
	}
	if d < n.matCount {
		w.curKey[d] = v
	}
	if w.curVals != nil {
		w.curVals[d] = v
	}
	if boundary {
		w.beginGroup()
	}
	if last {
		w.addTuple(v)
	} else if err := w.descendBinary(d + 1); err != nil {
		return err
	}
	if boundary {
		w.endGroup()
	}
	return nil
}

// descendBinary iterates level d by scanning the smallest participating
// set (the driver) in ascending order and batch-probing the others.
// The survivor sequence equals the level's set intersection, so the
// visit order — and therefore every downstream fold — matches WCOJ.
func (w *worker) descendBinary(d int) error {
	n := w.n
	ps := n.parts[d]
	boundary := d == n.matCount-1
	last := d == n.nLevels-1

	if len(ps) == 1 {
		p := ps[0]
		cr := n.rels[p.rel]
		parent := w.parentRank(p.rel, p.lvl)
		bb := w.binBuf(d)
		vals, base, sc := lvlSlice(cr, p.lvl, parent, bb.vals)
		bb.vals = sc
		for idx, v := range vals {
			w.ranks[p.rel][p.lvl] = base + int32(idx)
			if err := w.visitBinary(d, v, boundary, last); err != nil {
				return err
			}
		}
		return nil
	}

	// Driver: the smallest set (ties to the lowest part index, so the
	// choice — and the visit sequence — is deterministic).
	drv := 0
	minCard := lvlCard(n.rels[ps[0].rel], ps[0].lvl, w.parentRank(ps[0].rel, ps[0].lvl))
	for i := 1; i < len(ps); i++ {
		if c := lvlCard(n.rels[ps[i].rel], ps[i].lvl, w.parentRank(ps[i].rel, ps[i].lvl)); c < minCard {
			minCard, drv = c, i
		}
	}
	bb := w.binBuf(d)
	if cap(bb.ranks) < len(ps) {
		bb.ranks = append(bb.ranks[:cap(bb.ranks)], make([][]int32, len(ps)-cap(bb.ranks))...)
	}
	bb.ranks = bb.ranks[:len(ps)]
	dp := ps[drv]
	dvals, dbase, sc := lvlSlice(n.rels[dp.rel], dp.lvl, w.parentRank(dp.rel, dp.lvl), bb.vals)
	bb.vals = sc

	for lo := 0; lo < len(dvals); lo += probeBlock {
		hi := lo + probeBlock
		if hi > len(dvals) {
			hi = len(dvals)
		}
		block := dvals[lo:hi]
		// Vectorized probe: one tight loop per non-driver relation fills
		// its rank buffer for the whole block.
		for j, p := range ps {
			if j == drv {
				continue
			}
			cr := n.rels[p.rel]
			parent := w.parentRank(p.rel, p.lvl)
			rj := resizeI32(bb.ranks[j], len(block))
			bb.ranks[j] = rj
			if cr.lz != nil && p.lvl == 0 {
				for i, v := range block {
					rj[i] = cr.lz.Probe0(v)
				}
			} else if cr.lz != nil {
				for i, v := range block {
					rj[i] = cr.lz.RankOf(p.lvl, parent, v)
				}
			} else {
				for i, v := range block {
					rj[i] = cr.tr.RankOf(p.lvl, parent, v)
				}
			}
			w.iStats.Probes += uint64(len(block))
		}
		// Survivor scan: values present in every relation bind their
		// ranks and descend.
	survivors:
		for i, v := range block {
			for j := range ps {
				if j != drv && bb.ranks[j][i] < 0 {
					continue survivors
				}
			}
			w.ranks[dp.rel][dp.lvl] = dbase + int32(lo+i)
			for j, p := range ps {
				if j != drv {
					w.ranks[p.rel][p.lvl] = bb.ranks[j][i]
				}
			}
			if err := w.visitBinary(d, v, boundary, last); err != nil {
				return err
			}
		}
	}
	return nil
}
