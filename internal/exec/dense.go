package exec

import (
	"repro/internal/blas"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/telemetry"
	"repro/internal/trie"
)

// tryDenseDispatch implements §III-D: when attribute elimination has
// left completely dense annotation buffers, matrix-multiply and
// matrix-vector queries are routed to the BLAS package with no data
// transformation — the buffers hanging off the tries are the row-major
// matrices. Returns ok=false (and no error) when the query does not
// match a dense kernel, in which case the WCOJ engine runs it.
func tryDenseDispatch(c *compiled) (*Result, bool, error) {
	n := c.root
	if len(n.children) != 0 || len(n.rels) != 2 || n.relaxed {
		return nil, false, nil
	}
	// Single SUM aggregate whose skeleton is leaf×leaf on the two rels.
	if len(c.p.Aggs) != 1 || c.p.Aggs[0].Kind != planner.AggSum {
		return nil, false, nil
	}
	ca := &n.aggs[0]
	sk := ca.skel
	if sk == nil || sk.Op != planner.EmitMul ||
		sk.L.Op != planner.EmitLeaf || sk.R.Op != planner.EmitLeaf {
		return nil, false, nil
	}
	if len(ca.leafRels) != 2 || ca.leafRels[0] == ca.leafRels[1] {
		return nil, false, nil
	}
	if len(ca.multRels) != 0 {
		return nil, false, nil // duplicate keys: not a plain matrix
	}
	// All trie levels completely dense. A lazily-backed relation (the
	// classifier chose the binary path for this node) never qualifies:
	// the dense kernels read fully-built tries.
	for _, cr := range n.rels {
		if cr.tr == nil {
			return nil, false, nil
		}
		for _, l := range cr.tr.Levels {
			if !l.Dense || l.NumElems() == 0 {
				return nil, false, nil
			}
		}
	}
	// Group items must be plain vertices.
	for _, g := range c.groups {
		if g.item.Kind != planner.GroupVertex {
			return nil, false, nil
		}
	}

	a := n.rels[ca.leafRels[sk.L.Leaf]]
	b := n.rels[ca.leafRels[sk.R.Leaf]]
	aBuf := ca.leafBufs[sk.L.Leaf]
	bBuf := ca.leafBufs[sk.R.Leaf]

	switch {
	case len(a.attrs) == 2 && len(b.attrs) == 2 && len(c.groups) == 2:
		return denseMM(c, a, b, aBuf, bBuf)
	case len(a.attrs) == 2 && len(b.attrs) == 1 && len(c.groups) == 1:
		return denseMV(c, a, b, aBuf, bBuf)
	case len(a.attrs) == 1 && len(b.attrs) == 2 && len(c.groups) == 1:
		return denseMV(c, b, a, bBuf, aBuf)
	}
	return nil, false, nil
}

// denseDims extracts (rows, cols, row base, col base) of a dense 2-level
// trie.
func denseDims(tr *trie.Trie) (m, k int, rowBase, colBase uint32, ok bool) {
	l0 := tr.Levels[0].Sets[0]
	m = l0.Card()
	if m == 0 {
		return 0, 0, 0, 0, false
	}
	total := tr.Levels[1].NumElems()
	if total%m != 0 {
		return 0, 0, 0, 0, false
	}
	k = total / m
	colBase = tr.Levels[1].Sets[0].Min()
	// Every row must span the same column range for the buffer to be a
	// rectangular matrix.
	for i := range tr.Levels[1].Sets {
		s := &tr.Levels[1].Sets[i]
		if s.Card() != k || s.Min() != colBase {
			return 0, 0, 0, 0, false
		}
	}
	return m, k, l0.Min(), colBase, true
}

// denseMM runs C = A·Bᵀ-or-B depending on B's trie orientation. With the
// materialized-first rule, both output vertices precede the shared one,
// so B's trie is keyed (j, k) — the transpose — and the dot-product
// kernel applies.
func denseMM(c *compiled, a, b *cRel, aBuf, bBuf []float64) (*Result, bool, error) {
	shared := a.attrs[1] // projected vertex
	if b.attrs[1] != shared {
		// Unexpected orientation; let the WCOJ engine handle it.
		return nil, false, nil
	}
	m, k, aRowBase, aColBase, ok := denseDims(a.tr)
	if !ok {
		return nil, false, nil
	}
	nOut, k2, bRowBase, bColBase, ok := denseDims(b.tr)
	if !ok || k2 != k || aColBase != bColBase {
		return nil, false, nil
	}
	if c.opts.Stats != nil {
		c.opts.Stats.Dispatch = obs.DispatchDenseMM
	}
	tr := stTrace(c.opts.Stats)
	ks := tr.Begin(c.execSpan, telemetry.SpanKernel, obs.DispatchDenseMM)
	cBuf := make([]float64, m*nOut)
	gemmNT(m, k, nOut, aBuf, bBuf, cBuf)
	tr.End(ks)

	// Build the output: key columns plus the annotation (the <2% cost
	// the paper notes for producing key values).
	g0, g1 := &c.groups[0], &c.groups[1]
	// groups[0] corresponds to A's first attr iff its vertex matches.
	if g0.item.Vertex != a.attrs[0] {
		g0, g1 = g1, g0
	}
	if g0.item.Vertex != a.attrs[0] || g1.item.Vertex != b.attrs[0] {
		return nil, false, nil
	}
	res := &Result{NumRows: m * nOut}
	iCol := &Column{Name: colNameFor(c, g0), Kind: KindInt, I64: make([]int64, m*nOut)}
	jCol := &Column{Name: colNameFor(c, g1), Kind: KindInt, I64: make([]int64, m*nOut)}
	vCol := &Column{Name: aggName(c), Kind: KindFloat, F64: cBuf}
	for i := 0; i < m; i++ {
		iv := g0.domain.DecodeInt(aRowBase + uint32(i))
		for j := 0; j < nOut; j++ {
			iCol.I64[i*nOut+j] = iv
			jCol.I64[i*nOut+j] = g1.domain.DecodeInt(bRowBase + uint32(j))
		}
	}
	res.Cols = orderOutputs(c, g0, g1, iCol, jCol, vCol)
	return res, true, nil
}

// denseMV runs y = A·x.
func denseMV(c *compiled, a, x *cRel, aBuf, xBuf []float64) (*Result, bool, error) {
	if a.attrs[1] != x.attrs[0] {
		return nil, false, nil
	}
	m, k, aRowBase, aColBase, ok := denseDims(a.tr)
	if !ok {
		return nil, false, nil
	}
	xs := x.tr.Levels[0].Sets[0]
	if xs.Card() != k || xs.Min() != aColBase {
		return nil, false, nil
	}
	g0 := &c.groups[0]
	if g0.item.Vertex != a.attrs[0] {
		return nil, false, nil
	}
	if c.opts.Stats != nil {
		c.opts.Stats.Dispatch = obs.DispatchDenseMV
	}
	tr := stTrace(c.opts.Stats)
	ks := tr.Begin(c.execSpan, telemetry.SpanKernel, obs.DispatchDenseMV)
	y := make([]float64, m)
	blas.Gemv(m, k, aBuf, xBuf, y)
	tr.End(ks)
	iCol := &Column{Name: colNameFor(c, g0), Kind: KindInt, I64: make([]int64, m)}
	for i := 0; i < m; i++ {
		iCol.I64[i] = g0.domain.DecodeInt(aRowBase + uint32(i))
	}
	vCol := &Column{Name: aggName(c), Kind: KindFloat, F64: y}
	res := &Result{NumRows: m}
	res.Cols = orderOutputs(c, g0, nil, iCol, nil, vCol)
	return res, true, nil
}

// gemmNT computes C[i][j] = Σ_k A[i][k]·B[j][k] (B stored transposed),
// delegating to the blas package.
func gemmNT(m, k, n int, a, bt, c []float64) {
	blas.GemmNT(m, k, n, a, bt, c)
}

// colNameFor finds the SELECT-list name of a group item.
func colNameFor(c *compiled, g *groupDecoder) string {
	for _, o := range c.p.Outputs {
		if o.Kind == planner.OutGroup && &c.groups[o.Index] == g {
			return o.Name
		}
	}
	return g.item.Name
}

// aggName finds the SELECT-list name of the single aggregate output.
func aggName(c *compiled) string {
	for _, o := range c.p.Outputs {
		if o.Kind == planner.OutAgg || o.Kind == planner.OutAggExpr {
			return o.Name
		}
	}
	return "agg"
}

// orderOutputs arranges result columns in SELECT-list order.
func orderOutputs(c *compiled, g0, g1 *groupDecoder, c0, c1, cv *Column) []*Column {
	var out []*Column
	for _, o := range c.p.Outputs {
		switch o.Kind {
		case planner.OutGroup:
			gd := &c.groups[o.Index]
			if gd == g0 {
				out = append(out, c0)
			} else if g1 != nil && gd == g1 {
				out = append(out, c1)
			}
		default:
			out = append(out, cv)
		}
	}
	return out
}
