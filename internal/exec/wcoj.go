package exec

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync"

	"repro/internal/costopt"
	"repro/internal/faultinject"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/qerr"
	"repro/internal/set"
	"repro/internal/telemetry"
	"repro/internal/trie"
)

// ctxCheckStride is how many outermost-loop values a worker processes
// between context-cancellation checks: coarse enough to stay off the
// per-intersection hot path, fine enough that cancellation lands in
// well under a chunk.
const ctxCheckStride = 64

// stepCheckMask samples the in-recursion tick (context cancellation +
// memory-charge flush) once per 2048 visited trie nodes: a single
// outermost value with a huge subtree — the skewed chunk the stride
// check above cannot see — still observes cancellation within
// microseconds of work, not at the end of the chunk.
const stepCheckMask = 2048 - 1

// rowsBuf is a node's output: materialized key codes and aggregate
// values, struct-of-arrays.
type rowsBuf struct {
	kWidth, aWidth int
	keys           []uint32
	aggs           []float64
}

func (b *rowsBuf) n() int {
	if b.kWidth > 0 {
		return len(b.keys) / b.kWidth
	}
	if b.aWidth > 0 {
		return len(b.aggs) / b.aWidth
	}
	return 0
}

func (b *rowsBuf) appendRow(keys []uint32, aggs []float64) {
	b.keys = append(b.keys, keys...)
	b.aggs = append(b.aggs, aggs...)
}

// rowsPool recycles node output buffers: runNode checks one out per
// node; the consumer releases it once the rows have been copied onward
// (into a child trie or the final Result).
var rowsPool = sync.Pool{New: func() any { return new(rowsBuf) }}

func getRowsBuf(kWidth, aWidth int) *rowsBuf {
	b := rowsPool.Get().(*rowsBuf)
	b.kWidth, b.aWidth = kWidth, aWidth
	b.keys = b.keys[:0]
	b.aggs = b.aggs[:0]
	return b
}

// releaseRows returns a buffer to the pool; callers must not touch it
// (or slices derived from it) afterwards.
func releaseRows(b *rowsBuf) {
	if b != nil {
		rowsPool.Put(b)
	}
}

// hashAcc is the emit-time hash aggregation table (Fig. 4's
// out(n_n) += pattern): group tokens → aggregate accumulators. Groups
// live densely in tokens/aggs; lookup goes through either an
// open-addressing index (linear probing over a power-of-two slot
// array, wyhash-style token mixing) or, when every group column has a
// known small code domain, a direct-indexed dense table. Both paths
// keep the steady-state add allocation-free: growth rebuilds only the
// slot index, never re-keys the dense storage, and merge folds another
// table in group by group without materializing string keys.
type hashAcc struct {
	nG, nA int
	kinds  []planner.AggKind
	tokens []uint64  // nG per entry
	aggs   []float64 // nA per entry

	// Open-addressing index: slot values are group index + 1 (0 = empty).
	slots []int32
	mask  uint32

	// Dense fallback: a mixed-radix code over the group columns' domains
	// indexes the table directly — no hashing, no probing.
	dense   []int32  // code → group index + 1
	strides []uint64 // per group column
}

// denseAccCap bounds the dense fallback's table size (entries); past it
// the probe table is cheaper than zeroing the dense table per query.
const denseAccCap = 1 << 15

const minAccSlots = 64

// denseLayout returns mixed-radix strides over the group domains, or
// ok=false when any domain is unknown or the product exceeds
// denseAccCap.
func denseLayout(hgroups []hashGroup) (strides []uint64, size uint64, ok bool) {
	if len(hgroups) == 0 {
		return nil, 0, false
	}
	size = 1
	for _, hg := range hgroups {
		if hg.domain <= 0 {
			return nil, 0, false
		}
		size *= uint64(hg.domain)
		if size > denseAccCap {
			return nil, 0, false
		}
	}
	strides = make([]uint64, len(hgroups))
	st := uint64(1)
	for i := len(hgroups) - 1; i >= 0; i-- {
		strides[i] = st
		st *= uint64(hgroups[i].domain)
	}
	return strides, size, true
}

func newHashAcc(n *cNode) *hashAcc {
	h := &hashAcc{nG: len(n.hgroups), nA: len(n.aggs), kinds: n.aggKinds}
	if strides, size, ok := denseLayout(n.hgroups); ok {
		h.strides = strides
		h.dense = make([]int32, size)
	} else {
		h.slots = make([]int32, minAccSlots)
		h.mask = minAccSlots - 1
	}
	return h
}

// configureHashAcc prepares a pooled accumulator for node n, reusing
// the index storage when the shape matches the previous query's.
func configureHashAcc(h *hashAcc, n *cNode) *hashAcc {
	if h == nil {
		return newHashAcc(n)
	}
	strides, size, denseOK := denseLayout(n.hgroups)
	if h.nG != len(n.hgroups) || h.nA != len(n.aggs) {
		return newHashAcc(n)
	}
	switch {
	case denseOK && h.dense != nil && uint64(len(h.dense)) == size:
		h.strides = strides
		clear(h.dense)
	case !denseOK && h.slots != nil:
		clear(h.slots)
	default:
		return newHashAcc(n)
	}
	h.kinds = n.aggKinds
	h.tokens = h.tokens[:0]
	h.aggs = h.aggs[:0]
	return h
}

func (h *hashAcc) n() int { return len(h.tokens) / max1(h.nG) }

func max1(x int) int {
	if x < 1 {
		return 1
	}
	return x
}

// wyhash-style mixing constants (the wyp primes).
const (
	wyp0 = 0xa0761d6478bd642f
	wyp1 = 0xe7037ed1a0b428db
)

// mix64 folds a full 64×64→128 multiply, the wyhash primitive.
func mix64(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

func hashToks(toks []uint64) uint64 {
	h := uint64(wyp0)
	for _, t := range toks {
		h = mix64(h^t, wyp1)
	}
	return h
}

func equalToks(a, b []uint64) bool {
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// add combines one tuple's aggregate values into the group named by the
// token tuple. Once a group exists the path performs zero allocations;
// new groups append to the dense storage (amortized doubling).
func (h *hashAcc) add(toks []uint64, vals []float64) {
	if h.dense != nil {
		code := uint64(0)
		for i, t := range toks {
			code += t * h.strides[i]
		}
		gi := int(h.dense[code]) - 1
		if gi < 0 {
			h.dense[code] = int32(h.appendGroup(toks, vals)) + 1
			return
		}
		h.combine(gi, vals)
		return
	}
	hv := hashToks(toks)
	i := uint32(hv) & h.mask
	for {
		s := h.slots[i]
		if s == 0 {
			if (h.n()+1)*4 > len(h.slots)*3 {
				h.grow()
				i = uint32(hv) & h.mask
				for h.slots[i] != 0 {
					i = (i + 1) & h.mask
				}
			}
			h.slots[i] = int32(h.appendGroup(toks, vals)) + 1
			return
		}
		gi := int(s) - 1
		base := gi * h.nG
		if equalToks(h.tokens[base:base+h.nG], toks) {
			h.combine(gi, vals)
			return
		}
		i = (i + 1) & h.mask
	}
}

func (h *hashAcc) appendGroup(toks []uint64, vals []float64) int {
	gi := h.n()
	h.tokens = append(h.tokens, toks...)
	h.aggs = append(h.aggs, vals...)
	return gi
}

func (h *hashAcc) combine(gi int, vals []float64) {
	base := gi * h.nA
	for i, k := range h.kinds {
		h.aggs[base+i] = combine1(k, h.aggs[base+i], vals[i])
	}
}

// grow doubles the probe table and re-inserts the group indices; the
// dense tokens/aggs storage is untouched.
func (h *hashAcc) grow() {
	n := len(h.slots) * 2
	h.slots = make([]int32, n)
	h.mask = uint32(n - 1)
	ng := h.n()
	for gi := 0; gi < ng; gi++ {
		base := gi * h.nG
		i := uint32(hashToks(h.tokens[base:base+h.nG])) & h.mask
		for h.slots[i] != 0 {
			i = (i + 1) & h.mask
		}
		h.slots[i] = int32(gi) + 1
	}
}

// merge folds another accumulator into h without re-keying: each group
// is re-located by its token tuple and combined by aggregate kind.
func (h *hashAcc) merge(o *hashAcc) {
	ng := o.n()
	for gi := 0; gi < ng; gi++ {
		h.add(o.tokens[gi*o.nG:(gi+1)*o.nG], o.aggs[gi*o.nA:(gi+1)*o.nA])
	}
}

// outKeyWidth is the node's output key width: the materialized prefix
// plus the relaxed tail attribute.
func (n *cNode) outKeyWidth() int {
	if n.relaxed {
		return n.matCount + 1
	}
	return n.matCount
}

// outKeyAttrs lists the output key attributes in output-column order.
func (n *cNode) outKeyAttrs() []string {
	out := append([]string(nil), n.order[:n.matCount]...)
	if n.relaxed {
		out = append(out, n.order[n.nLevels-1])
	}
	return out
}

// runNode executes a compiled node bottom-up: children first (their
// results become relations of this node — Yannakakis' algorithm), then
// the WCOJ recursion with the outermost loop parallelized (parfor,
// §III-D).
func runNode(n *cNode, opts Options, parent telemetry.SpanID) (*rowsBuf, *hashAcc, error) {
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, nil, err
	}
	tr := stTrace(opts.Stats)
	sp := tr.Begin(parent, telemetry.SpanNode, "node ["+strings.Join(n.order, " ")+"]")
	// nodeStats collects only this node's kernel counters — the level-0
	// intersection plus the parfor workers' merge. The span carries that
	// per-node view; the fold below keeps QueryStats.Intersect equal to
	// the sum over node spans. Child nodes fold separately, so counts are
	// attributed exactly once.
	var nodeStats set.Stats
	lazyBefore := lazyLevelsSum(n)
	defer func() {
		tr.EndWithStats(sp, &nodeStats)
		if opts.Stats != nil {
			opts.Stats.Intersect.Add(&nodeStats)
			// Estimate-vs-actual audit: the §V model's predicted cost for
			// this node against the observed kernel counts repriced with the
			// same icost constants. Node recursion is single-goroutine (the
			// parfor is within a node), so the append is race-free. Binary
			// nodes audit against the probe-side estimate so the ratio
			// calibrates the model of the path that actually ran.
			nc := obs.NodeCost{
				Order:      n.order,
				Actual:     costopt.ObservedCost(&nodeStats),
				Isect:      nodeStats.Total(),
				Bytes:      nodeStats.BytesOut,
				Path:       n.path,
				LazyLevels: lazyLevelsSum(n) - lazyBefore,
			}
			if n.path == costopt.PathBinary && n.pinfo != nil {
				nc.Est = n.pinfo.ProbeCost
			} else if n.est != nil {
				nc.Est = n.est.Cost
			}
			if nc.Est > 0 {
				nc.Ratio = nc.Actual / nc.Est
			}
			opts.Stats.NodeCosts = append(opts.Stats.NodeCosts, nc)
		}
	}()
	for _, cr := range n.rels {
		if cr.child == nil {
			continue
		}
		childRows, _, err := runNode(cr.child, opts, sp)
		if err != nil {
			return nil, nil, err
		}
		// Charge the child-trie materialization up front: the build copies
		// every row into column buffers and roughly doubles them inside
		// trie.Build, so an over-budget query aborts before allocating.
		if opts.Mem != nil {
			est := int64(childRows.n()) * int64(4*len(cr.attrs)+8) * 2
			if err := opts.Mem.Charge(est); err != nil {
				releaseRows(childRows)
				return nil, nil, err
			}
		}
		tr, err := buildChildTrie(cr.child, childRows, cr.attrs)
		releaseRows(childRows) // buildChildTrie copied every row out
		if err != nil {
			return nil, nil, err
		}
		cr.tr = tr
		if a := tr.Ann(multAnn); a != nil {
			cr.mult = a.F64
		}
	}

	nAggs := len(n.aggs)
	out := getRowsBuf(n.outKeyWidth(), nAggs)

	// Level-0 iteration set (counted against this node's stats directly:
	// this runs once per node, before the parfor fan-out).
	vals, err := levelZeroValues(n, &nodeStats)
	if err != nil {
		return nil, nil, err
	}
	if len(vals) == 0 {
		if n.hashEmit {
			return out, newHashAcc(n), nil
		}
		if n.matCount == 0 && !n.relaxed {
			// A grand aggregate over an empty join still yields one row of
			// semiring zeros (COUNT/SUM → 0); matching SQL-without-NULL
			// semantics used throughout this engine.
			acc := make([]float64, nAggs)
			resetAcc(n, acc)
			zeroAccToFinal(n, acc)
			out.appendRow(nil, acc)
		}
		return out, nil, nil
	}
	binary := n.path == costopt.PathBinary
	if binary {
		// The node's first probe found a non-empty join: materialize the
		// deeper lazy levels and annotation buffers now (an empty level-0
		// join returned above without ever building them).
		prepareBinary(n)
	}

	threads := opts.threads()
	if threads > len(vals) {
		threads = len(vals)
	}
	if threads < 1 {
		threads = 1
	}
	workers := make([]*worker, threads)
	var wg sync.WaitGroup
	chunk := (len(vals) + threads - 1) / threads
	errs := make([]error, threads)
	for t := 0; t < threads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > len(vals) {
			hi = len(vals)
		}
		if lo >= hi {
			workers[t] = nil
			continue
		}
		w := newWorker(n, opts.Ctx, opts.Mem)
		w.id = t
		workers[t] = w
		wg.Add(1)
		go func(w *worker, vs []uint32) {
			defer wg.Done()
			// Recovery barrier: a panic inside this worker fails only
			// this query. The worker is poisoned (kept out of the pool)
			// because its buffers may be in an inconsistent state.
			defer func() {
				if r := recover(); r != nil {
					w.poisoned = true
					errs[w.id] = qerr.CapturePanic(r)
				}
			}()
			if binary {
				errs[w.id] = w.runChunkBinary(vs)
			} else {
				errs[w.id] = w.runChunk(vs)
			}
		}(w, vals[lo:hi])
	}
	wg.Wait()
	// Parfor join: merge per-worker kernel counters into the node stats
	// (the only place worker counters touch shared state).
	for _, w := range workers {
		if w != nil {
			nodeStats.Add(&w.iStats)
		}
	}
	for _, e := range errs {
		if e != nil {
			releaseWorkers(workers)
			return nil, nil, e
		}
	}

	// Combine worker outputs; workers return to the pool once their
	// results have been folded in.
	var mergedAcc *hashAcc
	switch {
	case n.hashEmit:
		mergedAcc = newHashAcc(n)
		for _, w := range workers {
			if w != nil {
				mergedAcc.merge(w.hacc)
			}
		}
	case n.matCount > 0:
		for _, w := range workers {
			if w == nil {
				continue
			}
			out.keys = append(out.keys, w.out.keys...)
			out.aggs = append(out.aggs, w.out.aggs...)
		}
	case n.relaxed:
		// Global 1-attribute union: merge per-worker accumulators.
		merged := newUnionAcc(n)
		touchedAny := false
		for _, w := range workers {
			if w == nil {
				continue
			}
			for _, j := range w.uAcc.touched {
				merged.combineFrom(n, w.uAcc, j)
				touchedAny = true
			}
		}
		if touchedAny {
			merged.flushInto(n, out, nil)
		}
	default:
		// Grand aggregate: merge scalar accumulators.
		acc := make([]float64, nAggs)
		resetAcc(n, acc)
		touched := false
		for _, w := range workers {
			if w == nil || !w.touched {
				continue
			}
			combineAcc(n, acc, w.acc)
			touched = true
		}
		if !touched {
			resetAcc(n, acc)
		}
		zeroAccToFinal(n, acc)
		out.appendRow(nil, acc)
	}
	releaseWorkers(workers)
	return out, mergedAcc, nil
}

func releaseWorkers(ws []*worker) {
	for _, w := range ws {
		if w != nil && !w.poisoned {
			w.release()
		}
	}
}

// levelZeroValues materializes the level-0 iteration set, counting its
// kernels against stat when non-nil. WCOJ nodes intersect the
// participating sets; binary nodes scan the smallest participant and
// membership-probe the rest — the survivor sequence is the same
// ascending intersection either way. For uint layouts the returned
// slice aliases the trie (or the intersection/survivor buffer) —
// callers only read it, so no defensive copy is taken.
func levelZeroValues(n *cNode, stat *set.Stats) ([]uint32, error) {
	ps := n.parts[0]
	if len(ps) == 1 {
		cr := n.rels[ps[0].rel]
		if cr.lz != nil {
			return cr.lz.Values(0, 0), nil
		}
		s := cr.tr.Set(ps[0].lvl, 0)
		if vals, ok := s.Uints(); ok {
			return vals, nil
		}
		return s.Values(), nil
	}
	if n.path == costopt.PathBinary {
		return levelZeroBinary(n, stat)
	}
	sets := make([]*set.Set, len(ps))
	for i, p := range ps {
		sets[i] = n.rels[p.rel].tr.Set(p.lvl, 0)
	}
	b1 := set.Buffer{Stat: stat}
	b2 := set.Buffer{Stat: stat}
	isect := set.IntersectMany(&b1, &b2, sets)
	if vals, ok := isect.Uints(); ok {
		return vals, nil
	}
	return isect.Values(), nil
}

// levelZeroBinary computes the level-0 survivors of a binary node by
// probing. Lazy participants get their dense probe index built here —
// level 0 always exists (it is built eagerly) — so a selective filter
// that empties the join never materializes a deeper level.
func levelZeroBinary(n *cNode, stat *set.Stats) ([]uint32, error) {
	ps := n.parts[0]
	for _, p := range ps {
		if cr := n.rels[p.rel]; cr.lz != nil {
			cr.lz.EnsureProbe0()
		}
	}
	drv := 0
	minCard := lvlCard(n.rels[ps[0].rel], ps[0].lvl, 0)
	for i := 1; i < len(ps); i++ {
		if c := lvlCard(n.rels[ps[i].rel], ps[i].lvl, 0); c < minCard {
			minCard, drv = c, i
		}
	}
	dvals, _, _ := lvlSlice(n.rels[ps[drv].rel], ps[drv].lvl, 0, nil)
	out := make([]uint32, 0, len(dvals))
	probes := uint64(0)
scan:
	for _, v := range dvals {
		for j, p := range ps {
			if j == drv {
				continue
			}
			probes++
			if probeRank(n.rels[p.rel], p.lvl, 0, v) < 0 {
				continue scan
			}
		}
		out = append(out, v)
	}
	if stat != nil {
		stat.Probes += probes
		stat.BytesOut += uint64(len(out)) * 4
	}
	return out, nil
}

// worker executes a chunk of the outermost loop.
type worker struct {
	id      int
	n       *cNode
	ranks   [][]int32 // per rel: global rank at each of its levels
	curKey  []uint32
	acc     []float64
	touched bool
	out     *rowsBuf
	bufs    []*levelBufs
	bbufs   []*binBufs // per level: binary-path probe scratch
	uAcc    *unionAcc
	scratch []float64
	curVals []uint32 // per-level bound values (hash-emit mode)
	hacc    *hashAcc
	toks    []uint64
	// iStats is this worker's private kernel counters; every level's
	// intersection buffers point at it, and it is merged into the query
	// stats at the parfor join.
	iStats set.Stats
	ctx    context.Context // non-nil: checked every ctxCheckStride values

	// steps counts visited trie nodes; every stepCheckMask+1 visits the
	// worker ticks: context check plus memory-charge flush. This is the
	// in-loop check that bounds cancellation latency on skewed chunks.
	steps int
	// mem is the query's accountant; memCharged is the retained-bytes
	// high-water mark already charged (ticks charge only the delta).
	mem        *governor.Accountant
	memCharged int64
	// poisoned marks a worker that panicked: its buffers are suspect,
	// so release keeps it out of the pool.
	poisoned bool
}

type levelBufs struct {
	b1, b2 set.Buffer
	sets   []*set.Set
}

// workerPool recycles workers across parfor chunks, GHD nodes and
// queries: their level buffers, rank tables, accumulator slices and
// hash tables are the bulk of a query's transient allocations
// (DESIGN.md §"Memory management").
var workerPool = sync.Pool{New: func() any { return new(worker) }}

func resizeU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// newWorker checks a worker out of the pool and sizes its scratch for
// node n; release returns it once the node's results are merged. On
// reuse every slice keeps its capacity, so a steady workload (the same
// query shape over and over) checks out workers without allocating.
func newWorker(n *cNode, ctx context.Context, mem *governor.Accountant) *worker {
	w := workerPool.Get().(*worker)
	w.id = 0
	w.n = n
	w.ctx = ctx
	w.mem = mem
	w.steps = 0
	w.memCharged = 0
	w.poisoned = false
	w.touched = false
	w.iStats = set.Stats{}
	w.curKey = resizeU32(w.curKey, n.outKeyWidth())
	nA := len(n.aggs)
	w.acc = resizeF64(w.acc, nA)
	w.scratch = resizeF64(w.scratch, nA)
	if w.out == nil {
		w.out = &rowsBuf{}
	}
	w.out.kWidth = n.outKeyWidth()
	w.out.aWidth = nA
	w.out.keys = w.out.keys[:0]
	w.out.aggs = w.out.aggs[:0]
	if cap(w.ranks) < len(n.rels) {
		w.ranks = append(w.ranks[:cap(w.ranks)], make([][]int32, len(n.rels)-cap(w.ranks))...)
	}
	w.ranks = w.ranks[:len(n.rels)]
	for i, cr := range n.rels {
		w.ranks[i] = resizeI32(w.ranks[i], len(cr.attrs))
	}
	if cap(w.bufs) < n.nLevels {
		w.bufs = append(w.bufs[:cap(w.bufs)], make([]*levelBufs, n.nLevels-cap(w.bufs))...)
	}
	w.bufs = w.bufs[:n.nLevels]
	if cap(w.bbufs) < n.nLevels {
		w.bbufs = append(w.bbufs[:cap(w.bbufs)], make([]*binBufs, n.nLevels-cap(w.bbufs))...)
	}
	w.bbufs = w.bbufs[:n.nLevels]
	for d := range w.bufs {
		if w.bufs[d] == nil {
			w.bufs[d] = &levelBufs{}
		}
		lb := w.bufs[d]
		lb.sets = lb.sets[:0]
		lb.b1.Stat = &w.iStats
		lb.b2.Stat = &w.iStats
	}
	if n.relaxed {
		w.uAcc = configureUnionAcc(w.uAcc, n)
	}
	if n.hashEmit {
		// curVals doubles as the hash-emit mode flag in the recursion
		// (checked against nil), so it is sized here and nilled otherwise.
		w.curVals = resizeU32(w.curVals, n.nLevels)
		w.hacc = configureHashAcc(w.hacc, n)
		w.toks = resizeU64(w.toks, len(n.hgroups))
	} else {
		w.curVals = nil
	}
	resetAcc(n, w.acc)
	return w
}

// release returns a worker to the pool. Query-owned pointers — the
// node, the context, and the trie sets captured in level buffers — are
// cleared so pooled workers never pin a finished query's tries.
func (w *worker) release() {
	w.n = nil
	w.ctx = nil
	w.mem = nil
	for _, lb := range w.bufs {
		if lb == nil {
			continue
		}
		for i := range lb.sets {
			lb.sets[i] = nil
		}
		lb.sets = lb.sets[:0]
		lb.b1.ClearRefs()
		lb.b2.ClearRefs()
	}
	workerPool.Put(w)
}

// runChunk processes the assigned level-0 values, checking the context
// every ctxCheckStride values (the parfor chunk boundary).
func (w *worker) runChunk(vals []uint32) error {
	faultinject.Fire(faultinject.PointExecWorker)
	n := w.n
	ps := n.parts[0]
	boundary := n.matCount - 1
	for vi, v := range vals {
		if vi%ctxCheckStride == 0 {
			if w.ctx != nil {
				if err := w.ctx.Err(); err != nil {
					return err
				}
			}
			if err := w.chargeRetained(); err != nil {
				return err
			}
		}
		for _, p := range ps {
			rk := n.rels[p.rel].tr.RankOf(p.lvl, 0, v)
			if rk < 0 {
				return fmt.Errorf("exec: value %d missing from %s level %d", v, n.rels[p.rel].alias, p.lvl)
			}
			w.ranks[p.rel][p.lvl] = rk
		}
		if 0 < n.matCount {
			w.curKey[0] = v
		}
		if w.curVals != nil {
			w.curVals[0] = v
		}
		if boundary == 0 {
			w.beginGroup()
		}
		if n.nLevels == 1 {
			w.addTuple(v)
		} else {
			if err := w.recurse(1); err != nil {
				return err
			}
		}
		if boundary == 0 {
			w.endGroup()
		}
	}
	return nil
}

// recurse iterates level d.
func (w *worker) recurse(d int) error {
	n := w.n
	ps := n.parts[d]
	boundary := d == n.matCount-1
	last := d == n.nLevels-1

	visit := func(v uint32) error {
		w.steps++
		if w.steps&stepCheckMask == 0 {
			if err := w.tick(); err != nil {
				return err
			}
		}
		if d < n.matCount {
			w.curKey[d] = v
		}
		if w.curVals != nil {
			w.curVals[d] = v
		}
		if boundary {
			w.beginGroup()
		}
		if last {
			w.addTuple(v)
		} else {
			if err := w.recurse(d + 1); err != nil {
				return err
			}
		}
		if boundary {
			w.endGroup()
		}
		return nil
	}

	if len(ps) == 1 {
		p := ps[0]
		cr := n.rels[p.rel]
		parent := w.parentRank(p.rel, p.lvl)
		s := cr.tr.Set(p.lvl, parent)
		base := cr.tr.Levels[p.lvl].Starts[parent]
		// Direct slice iteration for the common uint layout: no
		// per-element closure in the innermost loops.
		if vals, ok := s.Uints(); ok {
			for idx, v := range vals {
				w.ranks[p.rel][p.lvl] = base + int32(idx)
				if err := visit(v); err != nil {
					return err
				}
			}
			return nil
		}
		var err error
		idx := int32(0)
		s.ForEachUntil(func(v uint32) bool {
			w.ranks[p.rel][p.lvl] = base + idx
			idx++
			if e := visit(v); e != nil {
				err = e
				return false
			}
			return true
		})
		return err
	}

	lb := w.bufs[d]
	lb.sets = lb.sets[:0]
	for _, p := range ps {
		cr := n.rels[p.rel]
		lb.sets = append(lb.sets, cr.tr.Set(p.lvl, w.parentRank(p.rel, p.lvl)))
	}
	isect := set.IntersectMany(&lb.b1, &lb.b2, lb.sets)
	bind := func(v uint32) error {
		for _, p := range ps {
			rk := n.rels[p.rel].tr.RankOf(p.lvl, w.parentRank(p.rel, p.lvl), v)
			if rk < 0 {
				return fmt.Errorf("exec: intersection value %d missing from %s", v, n.rels[p.rel].alias)
			}
			w.ranks[p.rel][p.lvl] = rk
		}
		return visit(v)
	}
	if vals, ok := isect.Uints(); ok {
		for _, v := range vals {
			if err := bind(v); err != nil {
				return err
			}
		}
		return nil
	}
	var err error
	isect.ForEachUntil(func(v uint32) bool {
		if e := bind(v); e != nil {
			err = e
			return false
		}
		return true
	})
	return err
}

// tick is the sampled in-recursion check (every stepCheckMask+1 visited
// trie nodes): observe cancellation promptly even on a skewed chunk, and
// flush newly retained memory to the query's accountant.
func (w *worker) tick() error {
	if w.ctx != nil {
		if err := w.ctx.Err(); err != nil {
			return err
		}
	}
	return w.chargeRetained()
}

// chargeRetained charges the accountant for the growth of this worker's
// retained buffers since the last flush. Charging capacity deltas keeps
// the cost proportional to actual growth: a steady-state query whose
// pooled buffers already fit charges nothing after the first tick.
func (w *worker) chargeRetained() error {
	if w.mem == nil {
		return nil
	}
	ret := int64(cap(w.out.keys))*4 + int64(cap(w.out.aggs))*8
	if w.curVals != nil && w.hacc != nil {
		ret += int64(cap(w.hacc.tokens))*8 + int64(cap(w.hacc.aggs))*8 +
			int64(cap(w.hacc.slots))*4 + int64(cap(w.hacc.dense))*4
	}
	if w.n != nil && w.n.relaxed && w.uAcc != nil {
		ret += int64(cap(w.uAcc.vals))*8 + int64(cap(w.uAcc.mark))*4 +
			int64(cap(w.uAcc.touched))*4
	}
	if ret <= w.memCharged {
		return nil
	}
	d := ret - w.memCharged
	w.memCharged = ret
	return w.mem.Charge(d)
}

func (w *worker) parentRank(rel, lvl int) int32 {
	if lvl == 0 {
		return 0
	}
	return w.ranks[rel][lvl-1]
}

// beginGroup resets accumulators at the materialized-prefix boundary.
func (w *worker) beginGroup() {
	resetAcc(w.n, w.acc)
	w.touched = false
	if w.n.relaxed {
		w.uAcc.reset()
	}
}

// endGroup flushes the finished group(s).
func (w *worker) endGroup() {
	n := w.n
	if n.relaxed {
		if len(w.uAcc.touched) > 0 {
			w.uAcc.flushInto(n, w.out, w.curKey[:n.matCount])
		}
		return
	}
	if !w.touched {
		return
	}
	zeroAccToFinal(n, w.acc)
	w.out.appendRow(w.curKey[:n.matCount], w.acc)
}

// addTuple folds the current full WCOJ tuple into the accumulators.
func (w *worker) addTuple(lastVal uint32) {
	n := w.n
	vals := w.scratch
	for ai := range n.aggs {
		vals[ai] = w.evalAgg(&n.aggs[ai])
	}
	if n.hashEmit {
		ok := true
		for gi := range n.hgroups {
			hg := &n.hgroups[gi]
			code := w.curVals[hg.level]
			row := hg.metaRows[code]
			if row < 0 {
				ok = false
				break
			}
			if hg.metaCodes != nil {
				w.toks[gi] = uint64(hg.metaCodes[row])
			} else {
				w.toks[gi] = floatBits(hg.metaVal(row))
			}
		}
		if ok {
			w.hacc.add(w.toks, vals)
		}
		return
	}
	if n.relaxed {
		w.uAcc.add(n, lastVal, vals)
		return
	}
	w.touched = true
	for ai := range n.aggs {
		w.acc[ai] = combine1(n.aggs[ai].kind, w.acc[ai], vals[ai])
	}
}

// evalAgg computes one aggregate's contribution for the bound tuple.
func (w *worker) evalAgg(a *cAgg) float64 {
	var v float64
	switch a.kind {
	case planner.AggMin, planner.AggMax:
		rel := a.leafRels[0]
		return a.leafBufs[0][w.lastRank(rel)]
	case planner.AggCount:
		v = 1
	default: // AggSum
		v = w.evalSkel(a, a.skel)
	}
	for _, rel := range a.multRels {
		v *= w.n.rels[rel].mult[w.lastRank(rel)]
	}
	return v
}

func (w *worker) lastRank(rel int) int32 {
	lv := len(w.n.rels[rel].attrs) - 1
	return w.ranks[rel][lv]
}

func (w *worker) evalSkel(a *cAgg, e *planner.EmitNode) float64 {
	switch e.Op {
	case planner.EmitLeaf:
		return a.leafBufs[e.Leaf][w.lastRank(a.leafRels[e.Leaf])]
	case planner.EmitConst:
		return e.Const
	case planner.EmitAdd:
		return w.evalSkel(a, e.L) + w.evalSkel(a, e.R)
	case planner.EmitSub:
		return w.evalSkel(a, e.L) - w.evalSkel(a, e.R)
	case planner.EmitMul:
		return w.evalSkel(a, e.L) * w.evalSkel(a, e.R)
	case planner.EmitDiv:
		return w.evalSkel(a, e.L) / w.evalSkel(a, e.R)
	case planner.EmitMulInd:
		// CASE indicator: a predicate that never fired contributes an
		// exact 0, even when the THEN side pre-aggregated to NaN/Inf.
		if l := w.evalSkel(a, e.L); l != 0 {
			return l * w.evalSkel(a, e.R)
		}
		return 0
	}
	return 0
}

// floatBits maps a float64 group value to its hash token. -0.0 folds
// onto +0.0 and every NaN payload onto one canonical NaN so that values
// that compare equal (or are all "the" NaN) land in one group.
func floatBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	if f != f {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(f)
}

// combine1 merges one value into an accumulator per aggregate kind.
func combine1(kind planner.AggKind, acc, v float64) float64 {
	switch kind {
	case planner.AggMin:
		if v < acc {
			return v
		}
		return acc
	case planner.AggMax:
		if v > acc {
			return v
		}
		return acc
	default:
		return acc + v
	}
}

// resetAcc initializes accumulators to the aggregate identities.
func resetAcc(n *cNode, acc []float64) {
	for i := range n.aggs {
		switch n.aggs[i].kind {
		case planner.AggMin:
			acc[i] = math.Inf(1)
		case planner.AggMax:
			acc[i] = math.Inf(-1)
		default:
			acc[i] = 0
		}
	}
}

// combineAcc merges worker accumulators (grand-aggregate path).
func combineAcc(n *cNode, dst, src []float64) {
	for i := range n.aggs {
		dst[i] = combine1(n.aggs[i].kind, dst[i], src[i])
	}
}

// zeroAccToFinal normalizes untouched min/max groups: an empty group is
// never flushed, so infinities only appear for all-empty grand
// aggregates, where 0 is the least surprising output.
func zeroAccToFinal(n *cNode, acc []float64) {
	for i := range acc {
		if math.IsInf(acc[i], 0) {
			acc[i] = 0
		}
	}
}

// unionAcc is the §V-A2 one-attribute union accumulator: a dense
// epoch-marked table over the last attribute's code space.
type unionAcc struct {
	vals    []float64 // lastDomain × nAggs
	mark    []int32
	epoch   int32
	touched []uint32
	nAggs   int
}

func newUnionAcc(n *cNode) *unionAcc {
	dom := n.lastDomain
	if dom < 1 {
		dom = 1
	}
	return &unionAcc{
		vals:  make([]float64, dom*len(n.aggs)),
		mark:  make([]int32, dom),
		epoch: 1,
		nAggs: len(n.aggs),
	}
}

// configureUnionAcc prepares a pooled union accumulator for node n:
// when the pooled table is large enough it is revalidated by bumping
// the epoch (stale marks are all ≤ the old epoch), otherwise a fresh
// table is allocated.
func configureUnionAcc(u *unionAcc, n *cNode) *unionAcc {
	dom := n.lastDomain
	if dom < 1 {
		dom = 1
	}
	nA := len(n.aggs)
	if u == nil || u.nAggs != nA || cap(u.mark) < dom || cap(u.vals) < dom*nA {
		return newUnionAcc(n)
	}
	u.vals = u.vals[:dom*nA]
	u.mark = u.mark[:dom]
	u.reset()
	return u
}

func (u *unionAcc) reset() {
	u.epoch++
	if u.epoch == math.MaxInt32 {
		// Epoch wrap: clear the marks once so stale epochs can never
		// collide with a reused value.
		clear(u.mark)
		u.epoch = 1
	}
	u.touched = u.touched[:0]
}

func (u *unionAcc) add(n *cNode, j uint32, vals []float64) {
	base := int(j) * u.nAggs
	if u.mark[j] != u.epoch {
		u.mark[j] = u.epoch
		u.touched = append(u.touched, j)
		for i := range n.aggs {
			switch n.aggs[i].kind {
			case planner.AggMin:
				u.vals[base+i] = math.Inf(1)
			case planner.AggMax:
				u.vals[base+i] = math.Inf(-1)
			default:
				u.vals[base+i] = 0
			}
		}
	}
	for i := range n.aggs {
		u.vals[base+i] = combine1(n.aggs[i].kind, u.vals[base+i], vals[i])
	}
}

// combineFrom merges entry j of another worker's accumulator.
func (u *unionAcc) combineFrom(n *cNode, src *unionAcc, j uint32) {
	base := int(j) * u.nAggs
	sbase := base
	if u.mark[j] != u.epoch {
		u.mark[j] = u.epoch
		u.touched = append(u.touched, j)
		copy(u.vals[base:base+u.nAggs], src.vals[sbase:sbase+u.nAggs])
		return
	}
	for i := range n.aggs {
		u.vals[base+i] = combine1(n.aggs[i].kind, u.vals[base+i], src.vals[sbase+i])
	}
}

// flushInto appends one row per touched last-attribute value. When
// prefix has a spare capacity slot (the worker's curKey does — it is
// sized to the output width, which includes the relaxed tail), the row
// is built in place without allocating.
func (u *unionAcc) flushInto(n *cNode, out *rowsBuf, prefix []uint32) {
	var row []uint32
	if cap(prefix) > len(prefix) {
		row = prefix[:len(prefix)+1]
	} else {
		row = make([]uint32, len(prefix)+1)
		copy(row, prefix)
	}
	for _, j := range u.touched {
		row[len(prefix)] = j
		base := int(j) * u.nAggs
		vals := u.vals[base : base+u.nAggs]
		for i := range vals {
			if math.IsInf(vals[i], 0) {
				vals[i] = 0
			}
		}
		out.appendRow(row, vals)
	}
}

// buildChildTrie turns a child node's output rows into a trie keyed by
// the parent's access order over the shared vertices, annotated with the
// child multiplicity.
func buildChildTrie(child *cNode, rows *rowsBuf, parentAttrs []string) (*trie.Trie, error) {
	childAttrs := child.outKeyAttrs()
	perm := make([]int, len(parentAttrs))
	for i, pa := range parentAttrs {
		perm[i] = -1
		for j, ca := range childAttrs {
			if ca == pa {
				perm[i] = j
				break
			}
		}
		if perm[i] < 0 {
			return nil, fmt.Errorf("exec: child output missing shared vertex %s (has %v)", pa, childAttrs)
		}
	}
	nRows := rows.n()
	in := trie.BuildInput{Attrs: parentAttrs}
	for _, src := range perm {
		col := make([]uint32, nRows)
		for r := 0; r < nRows; r++ {
			col[r] = rows.keys[r*rows.kWidth+src]
		}
		in.Keys = append(in.Keys, col)
	}
	vals := make([]float64, nRows)
	for r := 0; r < nRows; r++ {
		vals[r] = rows.aggs[r*rows.aWidth] // __childmult is the only agg
	}
	in.Anns = []trie.AnnSpec{{Name: multAnn, Level: len(parentAttrs) - 1, Kind: trie.F64, F64: vals}}
	return trie.Build(in)
}
