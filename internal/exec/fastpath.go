package exec

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/qerr"
	"repro/internal/set"
	"repro/internal/telemetry"
)

// trySpMVFastPath recognizes the two-relation matrix–vector pattern —
// a 2-level trie joined with a 1-level trie on one attribute under a
// single SUM of a leaf product — and runs it with direct slice loops.
//
// The paper's engine code-generates exactly this loop nest from the
// WCOJ plan; an interpreter pays per-element closure and rank-lookup
// costs that a generated kernel does not, so this specialization is the
// interpreter's stand-in for code generation. Both attribute orders the
// §V optimizer can pick are implemented: the gather kernel for
// [i, j] (CSR-style row dot products) and the scatter kernel for the
// relaxed [j, i] order (column-wise accumulation under the 1-attribute
// union). Anything unexpected falls back to the generic engine.
func trySpMVFastPath(c *compiled, opts Options) (*Result, bool, error) {
	n := c.root
	if len(n.children) != 0 || len(n.rels) != 2 || len(n.aggs) != 1 || n.hashEmit {
		return nil, false, nil
	}
	ca := &n.aggs[0]
	if ca.kind != planner.AggSum || len(ca.multRels) != 0 || ca.skel == nil {
		return nil, false, nil
	}
	sk := ca.skel
	if sk.Op != planner.EmitMul || sk.L.Op != planner.EmitLeaf || sk.R.Op != planner.EmitLeaf {
		return nil, false, nil
	}
	if len(ca.leafRels) != 2 || ca.leafRels[0] == ca.leafRels[1] {
		return nil, false, nil
	}
	// Lazily-backed relations (binary-path node) stay on the generic
	// navigator; this kernel walks fully-built tries.
	for _, cr := range n.rels {
		if cr.tr == nil {
			return nil, false, nil
		}
	}
	// Identify matrix (2 levels) and vector (1 level).
	var mRel, vRel *cRel
	var mBuf, vBuf []float64
	for li, rp := range ca.leafRels {
		cr := n.rels[rp]
		switch len(cr.attrs) {
		case 2:
			mRel, mBuf = cr, ca.leafBufs[li]
		case 1:
			vRel, vBuf = cr, ca.leafBufs[li]
		}
	}
	if mRel == nil || vRel == nil {
		return nil, false, nil
	}
	// One group item: the matrix's output attribute, as a plain vertex.
	if len(c.groups) != 1 || c.groups[0].item.Kind != planner.GroupVertex {
		return nil, false, nil
	}

	switch {
	case !n.relaxed && n.matCount == 1 &&
		n.order[0] == mRel.attrs[0] && n.order[1] == mRel.attrs[1] && vRel.attrs[0] == mRel.attrs[1]:
		return spmvGather(c, opts, mRel, vRel, mBuf, vBuf)
	case n.relaxed && n.nLevels == 2 &&
		n.order[0] == mRel.attrs[0] && n.order[1] == mRel.attrs[1] && vRel.attrs[0] == mRel.attrs[0]:
		return spmvScatter(c, opts, mRel, vRel, mBuf, vBuf)
	}
	return nil, false, nil
}

// spmvGather runs order [i, j]: the matrix trie is CSR-shaped (rows i,
// columns j); each output row is a dot product against the vector.
// Requires the vector's set to be a dense contiguous range so values
// index directly; otherwise falls back.
func spmvGather(c *compiled, opts Options, m, v *cRel, mBuf, vBuf []float64) (*Result, bool, error) {
	vs := v.tr.Set(0, 0)
	dom := c.vertexDomainSize(v.attrs[0])
	if vs.Layout() != set.Bitset || vs.Card() == 0 ||
		int(vs.Max()-vs.Min())+1 != vs.Card() || vs.Min() != 0 || vs.Card() != dom {
		return nil, false, nil
	}
	vBase := vs.Min()
	l0 := m.tr.Set(0, 0)
	rows := l0.Values()
	nRows := len(rows)
	outVals := make([]float64, nRows)

	if opts.Stats != nil {
		opts.Stats.Dispatch = obs.DispatchSpMVGather
	}
	tr := stTrace(opts.Stats)
	ks := tr.Begin(c.execSpan, telemetry.SpanKernel, obs.DispatchSpMVGather)
	defer tr.End(ks)
	threads := opts.threads()
	parallelRange(threads, nRows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			parent := m.tr.GlobalRank(0, 0, r)
			kids := m.tr.Set(1, parent)
			base := m.tr.Levels[1].Starts[parent]
			sum := 0.0
			if vals, ok := kids.Uints(); ok {
				for idx, j := range vals {
					sum += mBuf[base+int32(idx)] * vBuf[j-vBase]
				}
			} else {
				kids.ForEachIndexed(func(idx int, j uint32) {
					sum += mBuf[base+int32(idx)] * vBuf[j-vBase]
				})
			}
			outVals[r] = sum
		}
	})
	return spmvResult(c, rows, outVals)
}

// spmvScatter runs the relaxed order [j, i]: iterate shared j in the
// matrix-transpose trie, scatter x_j-scaled columns into a dense
// accumulator over i (the 1-attribute union), merging per-worker
// accumulators.
func spmvScatter(c *compiled, opts Options, m, v *cRel, mBuf, vBuf []float64) (*Result, bool, error) {
	vs := v.tr.Set(0, 0)
	vdom := c.vertexDomainSize(v.attrs[0])
	if vs.Layout() != set.Bitset || vs.Card() == 0 ||
		int(vs.Max()-vs.Min())+1 != vs.Card() || vs.Min() != 0 || vs.Card() != vdom {
		return nil, false, nil
	}
	dom := c.root.lastDomain
	if dom <= 0 {
		return nil, false, nil
	}
	l0 := m.tr.Set(0, 0)
	js := l0.Values()

	if opts.Stats != nil {
		opts.Stats.Dispatch = obs.DispatchSpMVScatter
	}
	tr := stTrace(opts.Stats)
	ks := tr.Begin(c.execSpan, telemetry.SpanKernel, obs.DispatchSpMVScatter)
	defer tr.End(ks)
	threads := opts.threads()
	accs := make([][]float64, threads)
	touches := make([][]bool, threads)
	var mu sync.Mutex
	parallelRangeID(threads, len(js), func(id, lo, hi int) {
		acc := make([]float64, dom)
		touch := make([]bool, dom)
		for r := lo; r < hi; r++ {
			j := js[r]
			x := vBuf[j]
			parent := m.tr.GlobalRank(0, 0, r)
			kids := m.tr.Set(1, parent)
			base := m.tr.Levels[1].Starts[parent]
			if vals, ok := kids.Uints(); ok {
				for idx, i := range vals {
					acc[i] += mBuf[base+int32(idx)] * x
					touch[i] = true
				}
			} else {
				kids.ForEachIndexed(func(idx int, i uint32) {
					acc[i] += mBuf[base+int32(idx)] * x
					touch[i] = true
				})
			}
		}
		mu.Lock()
		accs[id] = acc
		touches[id] = touch
		mu.Unlock()
	})
	final := make([]float64, dom)
	touched := make([]bool, dom)
	for t, acc := range accs {
		if acc == nil {
			continue
		}
		for i, a := range acc {
			final[i] += a
			touched[i] = touched[i] || touches[t][i]
		}
	}
	// Union semantics: emit exactly the groups that received a tuple.
	rows := make([]uint32, 0, dom)
	vals := make([]float64, 0, dom)
	for i, hit := range touched {
		if hit {
			rows = append(rows, uint32(i))
			vals = append(vals, final[i])
		}
	}
	return spmvResult(c, rows, vals)
}

// spmvResult assembles the (key, value) columns in SELECT order.
func spmvResult(c *compiled, rows []uint32, vals []float64) (*Result, bool, error) {
	g := &c.groups[0]
	iCol := &Column{Name: colNameFor(c, g), Kind: g.outKind}
	switch g.outKind {
	case KindString:
		iCol.Str = make([]string, len(rows))
		for r, code := range rows {
			iCol.Str[r] = g.domain.DecodeString(code)
		}
	default:
		iCol.Kind = KindInt
		iCol.I64 = make([]int64, len(rows))
		for r, code := range rows {
			iCol.I64[r] = g.domain.DecodeInt(code)
		}
	}
	vCol := &Column{Name: aggName(c), Kind: KindFloat, F64: vals}
	res := &Result{NumRows: len(rows)}
	res.Cols = orderOutputs(c, g, nil, iCol, nil, vCol)
	return res, true, nil
}

// parallelRange splits [0, n) across workers.
func parallelRange(threads, n int, f func(lo, hi int)) {
	parallelRangeID(threads, n, func(_, lo, hi int) { f(lo, hi) })
}

func parallelRangeID(threads, n int, f func(id, lo, hi int)) {
	if threads < 1 {
		threads = 1
	}
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		f(0, 0, n)
		return
	}
	chunk := (n + threads - 1) / threads
	var wg sync.WaitGroup
	var pc qerr.PanicCell
	for t := 0; t < threads; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			defer pc.Recover()
			f(t, lo, hi)
		}(t, lo, hi)
	}
	wg.Wait()
	// A panic in any chunk re-raises on the caller's goroutine, where the
	// query-boundary barrier converts it to a qerr.InternalError.
	pc.Repanic()
}
