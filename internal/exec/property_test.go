package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/costopt"
	"repro/internal/storage"
)

// TestRandomStarJoinsMatchBruteForce generates random 3-relation star
// joins (fact(a, b) ⋈ dim1(a) ⋈ dim2(b)) with duplicates and filters and
// checks the engine against a brute-force nested-loop evaluation, over
// many seeds and both optimizer modes.
func TestRandomStarJoinsMatchBruteForce(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			cat := storage.NewCatalog()
			fact, err := cat.Create(storage.Schema{Name: "fact", Cols: []storage.ColumnDef{
				{Name: "a", Kind: storage.Int64, Role: storage.Key, Domain: "da"},
				{Name: "b", Kind: storage.Int64, Role: storage.Key, Domain: "db"},
				{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
			}})
			if err != nil {
				t.Fatal(err)
			}
			dim1, err := cat.Create(storage.Schema{Name: "dim1", Cols: []storage.ColumnDef{
				{Name: "a1", Kind: storage.Int64, Role: storage.Key, Domain: "da", PK: true},
				{Name: "w", Kind: storage.Float64, Role: storage.Annotation},
				{Name: "tag", Kind: storage.String, Role: storage.Annotation},
			}})
			if err != nil {
				t.Fatal(err)
			}
			dim2, err := cat.Create(storage.Schema{Name: "dim2", Cols: []storage.ColumnDef{
				{Name: "b2", Kind: storage.Int64, Role: storage.Key, Domain: "db"},
				{Name: "y", Kind: storage.Float64, Role: storage.Annotation},
			}})
			if err != nil {
				t.Fatal(err)
			}

			nA := 3 + r.Intn(8)
			nB := 3 + r.Intn(8)
			// dim1: unique keys, a tag used both for filtering and grouping.
			tags := []string{"red", "green", "blue"}
			d1w := map[int64]float64{}
			d1tag := map[int64]string{}
			for a := 0; a < nA; a++ {
				w := float64(r.Intn(5) + 1)
				tag := tags[r.Intn(3)]
				d1w[int64(a)] = w
				d1tag[int64(a)] = tag
				if err := dim1.AppendRow(int64(a), w, tag); err != nil {
					t.Fatal(err)
				}
			}
			// dim2: may contain duplicate keys (multiplicities).
			type d2row struct{ y float64 }
			d2rows := map[int64][]d2row{}
			nD2 := nB + r.Intn(nB+1)
			for i := 0; i < nD2; i++ {
				b := int64(r.Intn(nB))
				y := float64(r.Intn(7))
				d2rows[b] = append(d2rows[b], d2row{y})
				if err := dim2.AppendRow(b, y); err != nil {
					t.Fatal(err)
				}
			}
			// fact: duplicates everywhere.
			type frow struct {
				a, b int64
				x    float64
			}
			var facts []frow
			nF := 10 + r.Intn(40)
			for i := 0; i < nF; i++ {
				f := frow{int64(r.Intn(nA)), int64(r.Intn(nB)), float64(r.Intn(10))}
				facts = append(facts, f)
				if err := fact.AppendRow(f.a, f.b, f.x); err != nil {
					t.Fatal(err)
				}
			}
			if err := cat.Freeze(); err != nil {
				t.Fatal(err)
			}

			// Query: filter dim1 by tag, group by a, sum fact.x * dim2.y,
			// count(*).
			sql := `SELECT a1, sum(x * y) as s, count(*) as c
				FROM fact, dim1, dim2
				WHERE fact.a = dim1.a1 AND fact.b = dim2.b2 AND tag <> 'red'
				GROUP BY a1`

			// Brute force.
			type acc struct{ s, c float64 }
			want := map[int64]*acc{}
			for _, f := range facts {
				if d1tag[f.a] == "red" {
					continue
				}
				if _, ok := d1w[f.a]; !ok {
					continue
				}
				for _, d2 := range d2rows[f.b] {
					a := want[f.a]
					if a == nil {
						a = &acc{}
						want[f.a] = a
					}
					a.s += f.x * d2.y
					a.c++
				}
			}

			for _, copts := range []costopt.Options{{}, {Disabled: true}, {PickWorst: true}} {
				res, err := runErr(cat, sql, Options{}, copts)
				if err != nil {
					t.Fatalf("opts %+v: %v", copts, err)
				}
				if res.NumRows != len(want) {
					t.Fatalf("opts %+v: %d groups, want %d", copts, res.NumRows, len(want))
				}
				for i := 0; i < res.NumRows; i++ {
					a := res.Col("a1").I64[i]
					w := want[a]
					if w == nil {
						t.Fatalf("unexpected group %d", a)
					}
					if math.Abs(res.Col("s").F64[i]-w.s) > 1e-9 || math.Abs(res.Col("c").F64[i]-w.c) > 1e-9 {
						t.Fatalf("group %d = (%v, %v), want (%v, %v)",
							a, res.Col("s").F64[i], res.Col("c").F64[i], w.s, w.c)
					}
				}
			}
		})
	}
}

// TestRandomHashEmitMatchesBruteForce exercises the emit-time hash
// aggregation path: grouping purely by a metadata string.
func TestRandomHashEmitMatchesBruteForce(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		r := rand.New(rand.NewSource(seed))
		cat := storage.NewCatalog()
		fact, _ := cat.Create(storage.Schema{Name: "fact", Cols: []storage.ColumnDef{
			{Name: "a", Kind: storage.Int64, Role: storage.Key, Domain: "da"},
			{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
		}})
		dim, _ := cat.Create(storage.Schema{Name: "dim", Cols: []storage.ColumnDef{
			{Name: "a1", Kind: storage.Int64, Role: storage.Key, Domain: "da", PK: true},
			{Name: "tag", Kind: storage.String, Role: storage.Annotation},
		}})
		nA := 4 + r.Intn(6)
		tags := []string{"u", "v", "w"}
		tagOf := map[int64]string{}
		for a := 0; a < nA; a++ {
			tag := tags[r.Intn(3)]
			tagOf[int64(a)] = tag
			_ = dim.AppendRow(int64(a), tag)
		}
		want := map[string]float64{}
		for i := 0; i < 20+r.Intn(30); i++ {
			a := int64(r.Intn(nA))
			x := float64(r.Intn(9))
			_ = fact.AppendRow(a, x)
			want[tagOf[a]] += x
		}
		if err := cat.Freeze(); err != nil {
			t.Fatal(err)
		}
		res, err := runErr(cat, `SELECT tag, sum(x) as s FROM fact, dim WHERE fact.a = dim.a1 GROUP BY tag`,
			Options{}, costopt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]float64{}
		for i := 0; i < res.NumRows; i++ {
			got[res.Col("tag").Str[i]] = res.Col("s").F64[i]
		}
		// Drop zero-sum absent tags from want (tags with no facts).
		for k, v := range want {
			if math.Abs(got[k]-v) > 1e-9 {
				t.Fatalf("seed %d: tag %q = %v, want %v (got %v)", seed, k, got[k], v, got)
			}
		}
	}
}
