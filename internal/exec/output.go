package exec

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/faultinject"
	"repro/internal/planner"
	"repro/internal/sqlparse"
)

// assemble turns the root node's (key, aggregates) rows into the final
// result: group items are decoded (through the metadata container for
// GroupMeta items), groups that map to the same final key are merged by
// aggregate kind, and SELECT-level arithmetic over aggregates is
// evaluated.
func assemble(c *compiled, rows *rowsBuf) (*Result, error) {
	faultinject.Fire(faultinject.PointExecOutput)
	root := c.root
	n := rows.n()

	// Charge result assembly: the Result copies every row out of the
	// pooled buffer into fresh columns (~16 bytes per cell is a safe
	// upper bound across int64/float64/string columns).
	if c.opts.Mem != nil {
		est := int64(n) * int64(len(c.groups)+len(c.root.aggs)) * 16
		if err := c.opts.Mem.Charge(est); err != nil {
			return nil, err
		}
	}

	// Direct mode: every group item reads a distinct key position and
	// the key positions are exactly covered — stage-1 groups are final.
	direct := true
	usedPos := map[int]bool{}
	for _, g := range c.groups {
		if g.item.Kind == planner.GroupMeta {
			direct = false
			break
		}
		if usedPos[g.pos] {
			direct = false
			break
		}
		usedPos[g.pos] = true
	}
	if direct && len(usedPos) != rows.kWidth {
		direct = false
	}

	reprRows := make([]int, 0, n)
	var aggVals []float64
	nAggs := len(root.aggs)

	if direct {
		for r := 0; r < n; r++ {
			reprRows = append(reprRows, r)
		}
		aggVals = rows.aggs
	} else {
		// Hash-merge stage: group rows by decoded group-value tokens.
		tokens := make([]func(r int) (uint64, error), len(c.groups))
		for gi := range c.groups {
			g := &c.groups[gi]
			switch g.item.Kind {
			case planner.GroupVertex, planner.GroupPseudo:
				pos := g.pos
				tokens[gi] = func(r int) (uint64, error) {
					return uint64(rows.keys[r*rows.kWidth+pos]), nil
				}
			case planner.GroupMeta:
				pos := g.pos
				g := g
				tokens[gi] = func(r int) (uint64, error) {
					code := rows.keys[r*rows.kWidth+pos]
					row := g.metaRows[code]
					if row < 0 {
						return 0, fmt.Errorf("exec: no metadata row for %s code %d", g.item.Vertex, code)
					}
					if g.metaCodes != nil {
						return uint64(g.metaCodes[row]), nil
					}
					return floatBits(g.metaVal(row)), nil
				}
			}
		}
		idx := map[string]int{}
		keyBuf := make([]byte, 8*len(c.groups))
		for r := 0; r < n; r++ {
			for gi := range tokens {
				tok, err := tokens[gi](r)
				if err != nil {
					return nil, err
				}
				binary.LittleEndian.PutUint64(keyBuf[gi*8:], tok)
			}
			k := string(keyBuf)
			gi, ok := idx[k]
			if !ok {
				gi = len(reprRows)
				idx[k] = gi
				reprRows = append(reprRows, r)
				base := len(aggVals)
				aggVals = append(aggVals, rows.aggs[r*nAggs:(r+1)*nAggs]...)
				_ = base
				continue
			}
			for ai := 0; ai < nAggs; ai++ {
				aggVals[gi*nAggs+ai] = combine1(root.aggs[ai].kind,
					aggVals[gi*nAggs+ai], rows.aggs[r*nAggs+ai])
			}
		}
	}

	// HAVING: filter final groups on their aggregate values.
	if c.p.Having != nil {
		keptRows := reprRows[:0]
		keptAggs := aggVals[:0:0]
		for i, r := range reprRows {
			if evalHaving(c.p.Having, aggVals[i*nAggs:(i+1)*nAggs]) {
				keptRows = append(keptRows, r)
				keptAggs = append(keptAggs, aggVals[i*nAggs:(i+1)*nAggs]...)
			}
		}
		reprRows = keptRows
		aggVals = keptAggs
	}

	nOut := len(reprRows)
	res := &Result{NumRows: nOut}
	for _, o := range c.p.Outputs {
		col := &Column{Name: o.Name}
		switch o.Kind {
		case planner.OutGroup:
			if err := decodeGroupColumn(c, &c.groups[o.Index], rows, reprRows, col); err != nil {
				return nil, err
			}
		case planner.OutAgg:
			col.Kind = KindFloat
			col.F64 = make([]float64, nOut)
			for i := 0; i < nOut; i++ {
				col.F64[i] = aggVals[i*nAggs+o.Index]
			}
		case planner.OutAggExpr:
			col.Kind = KindFloat
			col.F64 = make([]float64, nOut)
			for i := 0; i < nOut; i++ {
				col.F64[i] = evalAggExpr(o.Expr, aggVals[i*nAggs:(i+1)*nAggs])
			}
		}
		res.Cols = append(res.Cols, col)
	}
	return res, nil
}

// evalHaving evaluates the HAVING predicate on one group's final
// aggregate values.
func evalHaving(h *planner.HavingNode, aggs []float64) bool {
	switch h.Op {
	case "and":
		return evalHaving(h.L, aggs) && evalHaving(h.R, aggs)
	case "or":
		return evalHaving(h.L, aggs) || evalHaving(h.R, aggs)
	case "not":
		return !evalHaving(h.L, aggs)
	}
	l := evalAggExpr(h.LE, aggs)
	r := evalAggExpr(h.RE, aggs)
	switch h.Op {
	case "=":
		return l == r
	case "<>":
		return l != r
	case "<":
		return l < r
	case "<=":
		return l <= r
	case ">":
		return l > r
	case ">=":
		return l >= r
	}
	return false
}

// evalAggExpr evaluates a SELECT-level skeleton whose leaves index the
// final aggregate values.
func evalAggExpr(e *planner.EmitNode, aggs []float64) float64 {
	switch e.Op {
	case planner.EmitLeaf:
		return aggs[e.Leaf]
	case planner.EmitConst:
		return e.Const
	case planner.EmitAdd:
		return evalAggExpr(e.L, aggs) + evalAggExpr(e.R, aggs)
	case planner.EmitSub:
		return evalAggExpr(e.L, aggs) - evalAggExpr(e.R, aggs)
	case planner.EmitMul:
		return evalAggExpr(e.L, aggs) * evalAggExpr(e.R, aggs)
	case planner.EmitDiv:
		return evalAggExpr(e.L, aggs) / evalAggExpr(e.R, aggs)
	case planner.EmitMulInd:
		if l := evalAggExpr(e.L, aggs); l != 0 {
			return l * evalAggExpr(e.R, aggs)
		}
		return 0
	}
	return 0
}

// decodeGroupColumn materializes one GROUP BY output column.
func decodeGroupColumn(c *compiled, g *groupDecoder, rows *rowsBuf, repr []int, col *Column) error {
	nOut := len(repr)
	col.Kind = g.outKind
	switch g.outKind {
	case KindInt:
		col.I64 = make([]int64, nOut)
	case KindFloat:
		col.F64 = make([]float64, nOut)
	case KindString:
		col.Str = make([]string, nOut)
	}
	for i, r := range repr {
		code := rows.keys[r*rows.kWidth+g.pos]
		switch g.item.Kind {
		case planner.GroupVertex:
			if g.outKind == KindString {
				col.Str[i] = g.domain.DecodeString(code)
			} else {
				col.I64[i] = g.domain.DecodeInt(code)
			}
		case planner.GroupPseudo:
			switch {
			case g.pseudo.strDict != nil:
				col.Str[i] = g.pseudo.strDict.DecodeString(code)
			case g.pseudo.isDate:
				col.Str[i] = sqlparse.DaysToDate(int32(g.pseudo.numVals[code]))
			default:
				col.F64[i] = g.pseudo.numVals[code]
			}
		case planner.GroupMeta:
			row := g.metaRows[code]
			if row < 0 {
				return fmt.Errorf("exec: no metadata row for %s code %d", g.item.Vertex, code)
			}
			switch {
			case g.metaCodes != nil:
				col.Str[i] = g.metaDict.DecodeString(g.metaCodes[row])
			case g.metaDate:
				col.Str[i] = sqlparse.DaysToDate(int32(g.metaVal(row)))
			case g.outKind == KindInt:
				col.I64[i] = int64(g.metaVal(row))
			default:
				col.F64[i] = g.metaVal(row)
			}
		}
	}
	return nil
}

// assembleHash materializes a hash-emit result: group values decode
// from the accumulated metadata tokens, aggregates are already final.
func assembleHash(c *compiled, h *hashAcc) (*Result, error) {
	faultinject.Fire(faultinject.PointExecOutput)
	if c.opts.Mem != nil {
		est := int64(h.n()) * int64(len(c.groups)+len(c.root.aggs)) * 16
		if err := c.opts.Mem.Charge(est); err != nil {
			return nil, err
		}
	}
	nAggs := h.nA
	if c.p.Having != nil {
		kept := &hashAcc{nG: h.nG, nA: h.nA}
		ng := h.n()
		for gi := 0; gi < ng; gi++ {
			if evalHaving(c.p.Having, h.aggs[gi*nAggs:(gi+1)*nAggs]) {
				kept.tokens = append(kept.tokens, h.tokens[gi*h.nG:(gi+1)*h.nG]...)
				kept.aggs = append(kept.aggs, h.aggs[gi*nAggs:(gi+1)*nAggs]...)
			}
		}
		h = kept
	}
	nOut := h.n()
	res := &Result{NumRows: nOut}
	for _, o := range c.p.Outputs {
		col := &Column{Name: o.Name}
		switch o.Kind {
		case planner.OutGroup:
			g := &c.groups[o.Index]
			gi := hashGroupIndex(c, o.Index)
			col.Kind = g.outKind
			switch g.outKind {
			case KindInt:
				col.I64 = make([]int64, nOut)
			case KindFloat:
				col.F64 = make([]float64, nOut)
			case KindString:
				col.Str = make([]string, nOut)
			}
			for r := 0; r < nOut; r++ {
				tok := h.tokens[r*h.nG+gi]
				switch {
				case g.metaCodes != nil:
					col.Str[r] = g.metaDict.DecodeString(uint32(tok))
				case g.metaDate:
					col.Str[r] = sqlparse.DaysToDate(int32(math.Float64frombits(tok)))
				case g.outKind == KindInt:
					col.I64[r] = int64(math.Float64frombits(tok))
				default:
					col.F64[r] = math.Float64frombits(tok)
				}
			}
		case planner.OutAgg:
			col.Kind = KindFloat
			col.F64 = make([]float64, nOut)
			for r := 0; r < nOut; r++ {
				col.F64[r] = h.aggs[r*nAggs+o.Index]
			}
		case planner.OutAggExpr:
			col.Kind = KindFloat
			col.F64 = make([]float64, nOut)
			for r := 0; r < nOut; r++ {
				col.F64[r] = evalAggExpr(o.Expr, h.aggs[r*nAggs:(r+1)*nAggs])
			}
		}
		res.Cols = append(res.Cols, col)
	}
	return res, nil
}

// hashGroupIndex maps a plan group index to its token slot (group items
// are registered in plan order, so the indices coincide; kept explicit
// for clarity).
func hashGroupIndex(c *compiled, planGroup int) int { return planGroup }
