package exec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/costopt"
	"repro/internal/planner"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// smvCatalog builds a sparse matrix + full dense vector over a shared
// domain, returning the ground-truth y = A·x.
func smvCatalog(t *testing.T, n, nnz int, seed int64) (*storage.Catalog, []float64) {
	t.Helper()
	cat := storage.NewCatalog()
	m, _ := cat.Create(storage.Schema{Name: "m", Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	vec, _ := cat.Create(storage.Schema{Name: "vec", Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}})
	r := rand.New(rand.NewSource(seed))
	dense := make([]float64, n*n)
	// Diagonal guarantees the full domain.
	for d := 0; d < n; d++ {
		dense[d*n+d] = r.NormFloat64()
		_ = m.AppendRow(int64(d), int64(d), dense[d*n+d])
	}
	for k := 0; k < nnz; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if dense[i*n+j] != 0 {
			continue
		}
		dense[i*n+j] = r.NormFloat64()
		_ = m.AppendRow(int64(i), int64(j), dense[i*n+j])
	}
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		x[k] = r.NormFloat64()
		_ = vec.AppendRow(int64(k), x[k])
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want[i] += dense[i*n+j] * x[j]
		}
	}
	return cat, want
}

const smvSQL = `SELECT m.i, sum(m.v * vec.x) as y FROM m, vec WHERE m.j = vec.k GROUP BY m.i`

func checkSMV(t *testing.T, res *Result, want []float64, label string) {
	t.Helper()
	got := make([]float64, len(want))
	for r := 0; r < res.NumRows; r++ {
		got[res.Col("i").I64[r]] = res.Col("y").F64[r]
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("%s: y[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// smvVertices discovers the planner's vertex naming for the SMV query:
// the group item holds the output vertex, the other bag vertex is the
// shared one.
func smvVertices(t *testing.T, cat *storage.Catalog) (iV, jV string) {
	t.Helper()
	q, err := sqlparse.Parse(smvSQL)
	if err != nil {
		t.Fatal(err)
	}
	p, err := planner.Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	iV = p.Groups[0].Vertex
	for _, v := range p.GHD.Root.Bag {
		if v != iV {
			jV = v
		}
	}
	return iV, jV
}

func TestSpMVFastPathScatterMatchesGeneric(t *testing.T) {
	cat, want := smvCatalog(t, 40, 250, 1)
	// Default optimizer picks the relaxed [j, i] order → scatter kernel.
	fast := run(t, cat, smvSQL, Options{}, costopt.Options{})
	checkSMV(t, fast, want, "scatter fastpath")
	generic := run(t, cat, smvSQL, Options{NoFastPath: true}, costopt.Options{})
	checkSMV(t, generic, want, "generic engine")
	if fast.NumRows != generic.NumRows {
		t.Fatalf("row counts differ: %d vs %d", fast.NumRows, generic.NumRows)
	}
}

func TestSpMVFastPathGatherMatchesGeneric(t *testing.T) {
	cat, want := smvCatalog(t, 35, 200, 2)
	iV, jV := smvVertices(t, cat)
	// Forcing the non-relaxed [i, j] order exercises the gather kernel
	// (exec applies the fast path whenever the shape matches; only the
	// engine facade disables it for forced orders).
	res := run(t, cat, smvSQL, Options{}, costopt.Options{Forced: []string{iV, jV}})
	checkSMV(t, res, want, "gather fastpath")
	generic := run(t, cat, smvSQL, Options{NoFastPath: true}, costopt.Options{Forced: []string{iV, jV}})
	checkSMV(t, generic, want, "generic forced [i,j]")
}

func TestSpMVFastPathFallsBackOnPartialVector(t *testing.T) {
	// A vector covering only part of the domain must not take the fast
	// path (and the answer must still be right).
	cat := storage.NewCatalog()
	m, _ := cat.Create(storage.Schema{Name: "m", Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	vec, _ := cat.Create(storage.Schema{Name: "vec", Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}})
	_ = m.AppendRow(int64(0), int64(0), 2.0)
	_ = m.AppendRow(int64(0), int64(3), 5.0)
	_ = m.AppendRow(int64(2), int64(3), 7.0)
	// Vector misses k=0 and k=2: only j=3 contributes.
	_ = vec.AppendRow(int64(3), 10.0)
	_ = vec.AppendRow(int64(1), 1.0)
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	res := run(t, cat, smvSQL, Options{}, costopt.Options{})
	got := map[int64]float64{}
	for r := 0; r < res.NumRows; r++ {
		got[res.Col("i").I64[r]] = res.Col("y").F64[r]
	}
	if got[0] != 50 || got[2] != 70 || len(got) != 2 {
		t.Fatalf("partial vector smv = %v", got)
	}
}

func TestDenseDispatchFallsBackOnRaggedMatrix(t *testing.T) {
	// One short row breaks rectangular density: the BLAS dispatch must
	// decline and the WCOJ answer must match the dense result elsewhere.
	cat := storage.NewCatalog()
	m, _ := cat.Create(storage.Schema{Name: "m", Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	n := 6
	r := rand.New(rand.NewSource(3))
	dense := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == n-1 && j == n-1 {
				continue // the missing corner
			}
			dense[i*n+j] = r.Float64() + 0.1
			_ = m.AppendRow(int64(i), int64(j), dense[i*n+j])
		}
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	sql := `SELECT m1.i, m2.j, sum(m1.v * m2.v) as v FROM m m1, m m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`
	res := run(t, cat, sql, Options{}, costopt.Options{})
	want := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				want[i*n+j] += dense[i*n+k] * dense[k*n+j]
			}
		}
	}
	for r2 := 0; r2 < res.NumRows; r2++ {
		i, j := res.Col("i").I64[r2], res.Col("j").I64[r2]
		if math.Abs(res.Col("v").F64[r2]-want[i*int64(n)+j]) > 1e-9 {
			t.Fatalf("ragged C[%d,%d] = %v, want %v", i, j, res.Col("v").F64[r2], want[i*int64(n)+j])
		}
	}
}
