package exec

import (
	"strings"
	"testing"

	"repro/internal/costopt"
	"repro/internal/storage"
)

// edgeCatalog builds two tiny joinable tables for edge-case probing.
func edgeCatalog(t *testing.T, factRows [][3]interface{}, dimRows [][2]interface{}) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	fact, err := cat.Create(storage.Schema{Name: "fact", Cols: []storage.ColumnDef{
		{Name: "a", Kind: storage.Int64, Role: storage.Key, Domain: "da"},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
		{Name: "s", Kind: storage.String, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	dim, err := cat.Create(storage.Schema{Name: "dim", Cols: []storage.ColumnDef{
		{Name: "a1", Kind: storage.Int64, Role: storage.Key, Domain: "da", PK: true},
		{Name: "w", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range factRows {
		if err := fact.AppendRow(r[0], r[1], r[2]); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range dimRows {
		if err := dim.AppendRow(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestEmptyJoinResult(t *testing.T) {
	// Keys never match: the join is empty.
	cat := edgeCatalog(t,
		[][3]interface{}{{int64(1), 1.0, "x"}, {int64(2), 2.0, "y"}},
		[][2]interface{}{{int64(99), 5.0}})
	res, err := runErr(cat, `SELECT a, sum(x) as s FROM fact, dim WHERE fact.a = dim.a1 GROUP BY a`,
		Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 0 {
		t.Fatalf("empty join produced %d rows", res.NumRows)
	}
	// Grand aggregate over an empty join yields one zero row.
	res, err = runErr(cat, `SELECT sum(x) as s, count(*) as c FROM fact, dim WHERE fact.a = dim.a1`,
		Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 1 || res.Col("s").F64[0] != 0 || res.Col("c").F64[0] != 0 {
		t.Fatalf("empty grand aggregate = %+v", res.Cols)
	}
}

func TestFilterSelectsNothing(t *testing.T) {
	cat := edgeCatalog(t,
		[][3]interface{}{{int64(1), 1.0, "x"}},
		[][2]interface{}{{int64(1), 5.0}})
	res, err := runErr(cat, `SELECT a, sum(x) as s FROM fact, dim WHERE fact.a = dim.a1 AND x > 100 GROUP BY a`,
		Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 0 {
		t.Fatalf("impossible filter produced %d rows", res.NumRows)
	}
}

func TestSingleRowTables(t *testing.T) {
	cat := edgeCatalog(t,
		[][3]interface{}{{int64(7), 3.5, "only"}},
		[][2]interface{}{{int64(7), 2.0}})
	res, err := runErr(cat, `SELECT a, sum(x * w) as v, count(*) as c FROM fact, dim WHERE fact.a = dim.a1 GROUP BY a`,
		Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 1 || res.Col("v").F64[0] != 7 || res.Col("c").F64[0] != 1 {
		t.Fatalf("single row join = %+v", res.Cols)
	}
	if res.Col("a").I64[0] != 7 {
		t.Fatalf("key = %d", res.Col("a").I64[0])
	}
}

func TestManyThreadsFewRows(t *testing.T) {
	cat := edgeCatalog(t,
		[][3]interface{}{{int64(1), 1.0, "x"}, {int64(2), 2.0, "y"}},
		[][2]interface{}{{int64(1), 1.0}, {int64(2), 1.0}})
	res, err := runErr(cat, `SELECT a, sum(x) as s FROM fact, dim WHERE fact.a = dim.a1 GROUP BY a`,
		Options{Threads: 64}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 2 {
		t.Fatalf("rows = %d", res.NumRows)
	}
}

func TestAllRowsDuplicateKeys(t *testing.T) {
	// Every fact row shares one key: pre-aggregation collapses to one
	// tuple and multiplicities must still give the right count.
	cat := edgeCatalog(t,
		[][3]interface{}{{int64(5), 1.0, "a"}, {int64(5), 2.0, "b"}, {int64(5), 4.0, "c"}},
		[][2]interface{}{{int64(5), 10.0}})
	res, err := runErr(cat, `SELECT a, sum(x) as s, count(*) as c, min(x) as mn, max(x) as mx
		FROM fact, dim WHERE fact.a = dim.a1 GROUP BY a`, Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Col("s").F64[0] != 7 || res.Col("c").F64[0] != 3 ||
		res.Col("mn").F64[0] != 1 || res.Col("mx").F64[0] != 4 {
		t.Fatalf("dup-key aggregates = s%v c%v mn%v mx%v",
			res.Col("s").F64[0], res.Col("c").F64[0], res.Col("mn").F64[0], res.Col("mx").F64[0])
	}
}

func TestDimDuplicatesMultiplyCount(t *testing.T) {
	// dim has two rows with the same key: every matching fact row joins
	// twice.
	cat := storage.NewCatalog()
	fact, _ := cat.Create(storage.Schema{Name: "fact", Cols: []storage.ColumnDef{
		{Name: "a", Kind: storage.Int64, Role: storage.Key, Domain: "da"},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}})
	dim, _ := cat.Create(storage.Schema{Name: "dim", Cols: []storage.ColumnDef{
		{Name: "a1", Kind: storage.Int64, Role: storage.Key, Domain: "da"},
		{Name: "w", Kind: storage.Float64, Role: storage.Annotation},
	}})
	_ = fact.AppendRow(int64(1), 3.0)
	_ = dim.AppendRow(int64(1), 5.0)
	_ = dim.AppendRow(int64(1), 7.0)
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	res, err := runErr(cat, `SELECT count(*) as c, sum(x) as sx, sum(x * w) as sxw
		FROM fact, dim WHERE fact.a = dim.a1`, Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Join result: (3,5) and (3,7) → count 2, sum(x) 6, sum(x*w) 36.
	if res.Col("c").F64[0] != 2 || res.Col("sx").F64[0] != 6 || res.Col("sxw").F64[0] != 36 {
		t.Fatalf("got c=%v sx=%v sxw=%v", res.Col("c").F64[0], res.Col("sx").F64[0], res.Col("sxw").F64[0])
	}
}

func TestUnfrozenCatalogRejected(t *testing.T) {
	cat := storage.NewCatalog()
	_, _ = cat.Create(storage.Schema{Name: "t", Cols: []storage.ColumnDef{
		{Name: "a", Kind: storage.Int64, Role: storage.Key},
	}})
	_, err := runErr(cat, "SELECT count(*) as c FROM t", Options{}, costopt.Options{})
	if err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Fatalf("unfrozen catalog error = %v", err)
	}
}

func TestGroupOnStringKeyColumn(t *testing.T) {
	// String-typed key columns decode through the domain dictionary.
	cat := storage.NewCatalog()
	tab, err := cat.Create(storage.Schema{Name: "ev", Cols: []storage.ColumnDef{
		{Name: "name", Kind: storage.String, Role: storage.Key, Domain: "names"},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	_ = tab.AppendRow("beta", 1.0)
	_ = tab.AppendRow("alpha", 2.0)
	_ = tab.AppendRow("beta", 4.0)
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	res, err := runErr(cat, "SELECT name, sum(x) as s FROM ev GROUP BY name", Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for i := 0; i < res.NumRows; i++ {
		got[res.Col("name").Str[i]] = res.Col("s").F64[i]
	}
	if got["alpha"] != 2 || got["beta"] != 5 {
		t.Fatalf("string key groups = %v", got)
	}
}

func TestTriangleQueryCyclic(t *testing.T) {
	// A 3-cycle self-join (FHW 3/2) — the WCOJ specialty — on a graph
	// with exactly two triangles.
	cat := storage.NewCatalog()
	tab, _ := cat.Create(storage.Schema{Name: "edges", Cols: []storage.ColumnDef{
		{Name: "src", Kind: storage.Int64, Role: storage.Key, Domain: "node"},
		{Name: "dst", Kind: storage.Int64, Role: storage.Key, Domain: "node"},
	}})
	edges := [][2]int64{
		{0, 1}, {1, 2}, {0, 2}, // triangle 1
		{3, 4}, {4, 5}, {3, 5}, // triangle 2
		{0, 3}, {5, 0}, // noise
	}
	for _, e := range edges {
		_ = tab.AppendRow(e[0], e[1])
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	res, err := runErr(cat, `SELECT count(*) as c FROM edges e1, edges e2, edges e3
		WHERE e1.dst = e2.src AND e3.src = e1.src AND e3.dst = e2.dst`,
		Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Col("c").F64[0] != 2 {
		t.Fatalf("triangles = %v, want 2", res.Col("c").F64[0])
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	cat := edgeCatalog(t,
		[][3]interface{}{
			{int64(1), 1.0, "x"}, {int64(1), 2.0, "x"},
			{int64(2), 10.0, "y"}, {int64(3), 4.0, "z"},
		},
		[][2]interface{}{{int64(1), 1.0}, {int64(2), 1.0}, {int64(3), 1.0}})
	res, err := runErr(cat, `SELECT a, sum(x) as s FROM fact, dim WHERE fact.a = dim.a1
		GROUP BY a HAVING sum(x) > 3`, Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Groups: a=1 sum 3 (dropped), a=2 sum 10, a=3 sum 4.
	if res.NumRows != 2 {
		t.Fatalf("having kept %d groups, want 2", res.NumRows)
	}
	for i := 0; i < res.NumRows; i++ {
		if res.Col("s").F64[i] <= 3 {
			t.Fatalf("group %d survived with sum %v", res.Col("a").I64[i], res.Col("s").F64[i])
		}
	}
}

func TestHavingWithCountAndLogic(t *testing.T) {
	cat := edgeCatalog(t,
		[][3]interface{}{
			{int64(1), 1.0, "x"}, {int64(1), 2.0, "x"}, {int64(1), 3.0, "x"},
			{int64(2), 100.0, "y"},
		},
		[][2]interface{}{{int64(1), 1.0}, {int64(2), 1.0}})
	res, err := runErr(cat, `SELECT a, sum(x) as s FROM fact, dim WHERE fact.a = dim.a1
		GROUP BY a HAVING count(*) >= 3 AND sum(x) < 50`, Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 1 || res.Col("a").I64[0] != 1 {
		t.Fatalf("having logic kept %d rows", res.NumRows)
	}
	// An aggregate appearing only in HAVING must still work.
	res, err = runErr(cat, `SELECT a, count(*) as c FROM fact, dim WHERE fact.a = dim.a1
		GROUP BY a HAVING avg(x) > 50`, Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 1 || res.Col("a").I64[0] != 2 {
		t.Fatalf("having-only aggregate kept %d rows", res.NumRows)
	}
}

func TestHavingOnScalarScan(t *testing.T) {
	cat := edgeCatalog(t,
		[][3]interface{}{{int64(1), 1.0, "x"}},
		[][2]interface{}{{int64(1), 1.0}})
	res, err := runErr(cat, `SELECT sum(x) as s FROM fact HAVING sum(x) > 100`,
		Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 0 {
		t.Fatalf("scalar having kept %d rows", res.NumRows)
	}
	res, err = runErr(cat, `SELECT sum(x) as s FROM fact HAVING sum(x) > 0.5`,
		Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 1 {
		t.Fatalf("scalar having dropped the row")
	}
}

func TestHavingOnHashEmitPath(t *testing.T) {
	// dim's w is a metadata group (PK path) → hash-emit mode + HAVING.
	cat := edgeCatalog(t,
		[][3]interface{}{
			{int64(1), 1.0, "x"}, {int64(2), 5.0, "y"}, {int64(3), 7.0, "z"},
		},
		[][2]interface{}{{int64(1), 10.0}, {int64(2), 10.0}, {int64(3), 20.0}})
	res, err := runErr(cat, `SELECT w, sum(x) as s FROM fact, dim WHERE fact.a = dim.a1
		GROUP BY w HAVING sum(x) > 5`, Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Groups: w=10 sum 6, w=20 sum 7 → both kept; HAVING > 6 keeps one.
	if res.NumRows != 2 {
		t.Fatalf("rows = %d, want 2", res.NumRows)
	}
	res, err = runErr(cat, `SELECT w, sum(x) as s FROM fact, dim WHERE fact.a = dim.a1
		GROUP BY w HAVING sum(x) > 6`, Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 1 || res.Col("w").F64[0] != 20 {
		t.Fatalf("hash-emit having = %d rows", res.NumRows)
	}
}

func TestGroupByDatePseudoVertex(t *testing.T) {
	// A Date annotation grouped on a relation without a PK join vertex
	// becomes a pseudo trie level and decodes back to its date string.
	cat := storage.NewCatalog()
	tab, _ := cat.Create(storage.Schema{Name: "ev", Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: "dk"},
		{Name: "day", Kind: storage.Date, Role: storage.Annotation},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}})
	_ = tab.AppendRow(int64(1), "2020-05-01", 1.0)
	_ = tab.AppendRow(int64(2), "2020-05-01", 2.0)
	_ = tab.AppendRow(int64(3), "2021-01-15", 4.0)
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	res, err := runErr(cat, "SELECT day, sum(x) as s FROM ev GROUP BY day", Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for i := 0; i < res.NumRows; i++ {
		got[res.Col("day").Str[i]] = res.Col("s").F64[i]
	}
	if got["2020-05-01"] != 3 || got["2021-01-15"] != 4 {
		t.Fatalf("date pseudo groups = %v", got)
	}
}

func TestGroupByNumericPseudoVertex(t *testing.T) {
	cat := storage.NewCatalog()
	tab, _ := cat.Create(storage.Schema{Name: "ev", Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: "dk"},
		{Name: "bucket", Kind: storage.Float64, Role: storage.Annotation},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}})
	_ = tab.AppendRow(int64(1), 0.5, 1.0)
	_ = tab.AppendRow(int64(2), 1.5, 2.0)
	_ = tab.AppendRow(int64(3), 0.5, 4.0)
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	res, err := runErr(cat, "SELECT bucket, sum(x) as s FROM ev GROUP BY bucket", Options{}, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[float64]float64{}
	for i := 0; i < res.NumRows; i++ {
		got[res.Col("bucket").F64[i]] = res.Col("s").F64[i]
	}
	if got[0.5] != 5 || got[1.5] != 2 {
		t.Fatalf("numeric pseudo groups = %v", got)
	}
}
