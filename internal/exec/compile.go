package exec

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/costopt"
	"repro/internal/dict"
	"repro/internal/expr"
	"repro/internal/ghd"
	"repro/internal/planner"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/trie"
)

// multAnn is the implicit duplicate-multiplicity annotation attached to
// every query trie (one 1.0 per source row, sum-combined).
const multAnn = "__mult"

// part identifies one relation's participation at one node level.
type part struct {
	rel int // index into cNode.rels
	lvl int // that relation's trie level for this attribute
}

// leafRef addresses one aggregate leaf: (aggregate index, leaf index).
type leafRef struct{ agg, leaf int }

// cRel is a compiled relation: a query trie plus bookkeeping. Exactly
// one of tr / lz backs it: binary-path nodes build their base relations
// as lazy generalized hash tries (lz), everything else is a fully-built
// trie (tr).
type cRel struct {
	relIdx  int // index into plan.Rels; -1 for a child result
	alias   string
	tr      *trie.Trie
	lz      *trie.Lazy
	attrs   []string // vertex per trie level, in node order
	hasDups bool
	mult    []float64 // the __mult buffer (nil when dup-free)
	child   *cNode    // non-nil for child results
}

// cAgg is a compiled aggregate at one node.
type cAgg struct {
	kind     planner.AggKind
	skel     *planner.EmitNode
	leafBufs [][]float64 // per leaf: pre-aggregated annotation buffer
	leafRels []int       // per leaf: rel index in cNode.rels
	multRels []int       // rels whose multiplicity multiplies in
}

// cNode is a compiled GHD node.
type cNode struct {
	gnode      *ghd.Node
	order      []string
	est        *costopt.Order // the chosen order with its §V cost terms (est-vs-actual audit)
	relaxed    bool
	rels       []*cRel
	parts      [][]part
	nLevels    int
	matCount   int // leading materialized levels (excludes the relaxed tail)
	aggs       []cAgg
	children   []*cNode
	lastDomain int // code-space size of the last attribute (relaxed union)
	// hashEmit: aggregate into a hash table keyed by metadata tokens at
	// emit time (plan.HashEmit); hgroups computes one token per GROUP BY
	// item from the current vertex bindings.
	hashEmit bool
	hgroups  []hashGroup
	// aggKinds mirrors aggs[i].kind so the aggregation table can combine
	// without reaching back into the node.
	aggKinds []planner.AggKind
	// path is the access path this node executes (costopt.PathWCOJ or
	// costopt.PathBinary); pinfo carries the priced alternatives when the
	// classifier ran (nil under ablations/forced orders).
	path  string
	pinfo *costopt.PathInfo
	// lazyBinds defers aggregate-leaf buffer binding for lazy relations:
	// annotation buffers only exist after EnsureAnns, which runNode calls
	// right before the parfor fan-out.
	lazyBinds []lazyBind
}

// lazyBind rebinds aggs[agg].leafBufs[leaf] to ann.F64 at run time,
// once the lazy trie's annotation buffers are materialized.
type lazyBind struct {
	agg, leaf int
	ann       *trie.Annotation
}

// hashGroup computes the emit-time group token of one GROUP BY item.
type hashGroup struct {
	level     int // position of the item's vertex in the node order
	domain    int // token code-space size when known (> 0), else 0
	metaRows  []int32
	metaCodes []uint32
	metaVal   expr.Value
}

// pseudoDecoder decodes pseudo-vertex codes back to values.
type pseudoDecoder struct {
	strDict *dict.Dictionary // string pseudo: per-column dictionary
	numVals []float64        // numeric pseudo: code → value
	isDate  bool
}

// groupDecoder turns a result tuple into one GROUP BY output value.
type groupDecoder struct {
	item planner.GroupItem
	pos  int // index of the vertex within the root's materialized key
	// GroupVertex decode:
	domain *dict.Dictionary
	// GroupPseudo decode:
	pseudo *pseudoDecoder
	// GroupMeta decode (the metadata container M):
	metaRows  []int32
	metaVal   expr.Value
	metaCodes []uint32
	metaDict  *dict.Dictionary
	metaDate  bool
	outKind   Kind
}

type compiled struct {
	p      *planner.Plan
	cat    *storage.Catalog
	opts   Options
	root   *cNode
	groups []groupDecoder
	// execSpan is the execute-phase span the dispatch kernels parent
	// their kernel spans under (SpanID(0) when telemetry is off).
	execSpan telemetry.SpanID
}

// compile builds query tries for every relation of every GHD node and
// resolves metadata lookups and group decoders.
func compile(p *planner.Plan, ch *costopt.Choice, cat *storage.Catalog, opts Options) (*compiled, error) {
	c := &compiled{p: p, cat: cat, opts: opts}
	if p.GHD == nil {
		return nil, fmt.Errorf("exec: plan has no GHD")
	}
	// Multi-node plans require every aggregate leaf in the root node
	// (the child contribution is then a pure multiplicity, which is the
	// only cross-node factorization this engine implements).
	if p.GHD.NumNodes > 1 {
		rootRels := map[int]bool{}
		for _, e := range p.GHD.Root.Edges {
			rootRels[e] = true
		}
		for _, a := range p.Aggs {
			for _, l := range a.Leaves {
				if !rootRels[l.Rel] {
					return nil, fmt.Errorf("exec: aggregate over relation %s in a non-root GHD node is not supported",
						p.Rels[l.Rel].Alias)
				}
			}
		}
	}
	root, err := c.compileNode(p.GHD.Root, ch, true)
	if err != nil {
		return nil, err
	}
	c.root = root
	if err := c.buildGroupDecoders(); err != nil {
		return nil, err
	}
	return c, nil
}

// tbl resolves a relation's table handle through the execution's
// pinned epoch snapshot (a nil-pointer branch when the catalog has
// never seen a post-freeze append).
func (c *compiled) tbl(r *planner.RelInfo) *storage.Table {
	return c.opts.Snap.Resolve(r.Table)
}

// compileNode compiles one GHD node and, recursively, its children.
func (c *compiled) compileNode(n *ghd.Node, ch *costopt.Choice, isRoot bool) (*cNode, error) {
	ord := ch.Orders[n]
	if ord == nil {
		return nil, fmt.Errorf("exec: no attribute order for node %v", n.Bag)
	}
	cn := &cNode{gnode: n, order: ord.Attrs, est: ord, relaxed: ord.Relaxed, nLevels: len(ord.Attrs)}
	// Access-path decision: the classifier's per-node choice, overridden
	// uniformly by ForcePath (the A/B and difftest lever). Binary
	// navigation is value-identical to WCOJ on any node shape, so forcing
	// either path can only change speed, never results.
	cn.path = costopt.PathWCOJ
	if pi := ch.Paths[n]; pi != nil {
		cn.pinfo = pi
		cn.path = pi.Path
	}
	if fp := c.opts.ForcePath; fp != "" {
		cn.path = fp
	}
	mat := 0
	for _, v := range ord.Attrs {
		if ord.MatSet[v] {
			mat++
		} else {
			break
		}
	}
	cn.matCount = mat
	if cn.relaxed {
		if cn.nLevels < 2 || !ord.MatSet[ord.Attrs[cn.nLevels-1]] || ord.MatSet[ord.Attrs[cn.nLevels-2]] {
			return nil, fmt.Errorf("exec: invalid relaxed order %v", ord.Attrs)
		}
		cn.matCount = cn.nLevels - 2
	} else {
		for _, v := range ord.Attrs[mat:] {
			if ord.MatSet[v] {
				return nil, fmt.Errorf("exec: materialized attribute %s after projected ones in %v", v, ord.Attrs)
			}
		}
	}

	// Aggregates at this node: the plan's for the root, a single
	// multiplicity count for inner nodes (Yannakakis partial aggregate).
	var aggSpecs []planner.AggSpec
	if isRoot {
		aggSpecs = c.p.Aggs
	} else {
		aggSpecs = []planner.AggSpec{{Name: "__childmult", Kind: planner.AggCount}}
	}

	// Collect leaf annotations per relation, deduping identical
	// expressions (Q8 uses the same revenue leaf twice).
	leafRefs := map[int]map[string][]leafRef{}    // relIdx → expr key → refs
	leafAST := map[int]map[string]sqlparse.Expr{} // relIdx → expr key → AST
	for ai := range aggSpecs {
		for li, leaf := range aggSpecs[ai].Leaves {
			if leafRefs[leaf.Rel] == nil {
				leafRefs[leaf.Rel] = map[string][]leafRef{}
				leafAST[leaf.Rel] = map[string]sqlparse.Expr{}
			}
			// The combine class is part of the identity: min(x) and
			// max(x) must not share a pre-aggregated buffer.
			key := combineClass(aggSpecs[ai].Kind) + leaf.Expr.String()
			leafRefs[leaf.Rel][key] = append(leafRefs[leaf.Rel][key], leafRef{ai, li})
			leafAST[leaf.Rel][key] = leaf.Expr
		}
	}

	// Build relation tries; bind leaf buffers. Lazy relations (binary
	// path) bind through the annotation pointer instead: the F64 buffer
	// only exists after runNode's EnsureAnns.
	leafBufs := map[leafRef][]float64{}
	leafAnns := map[leafRef]*trie.Annotation{}
	leafBound := map[leafRef]bool{}
	for _, ei := range n.Edges {
		combines := map[string]trie.CombineFunc{}
		for key, refs := range leafRefs[ei] {
			for _, ref := range refs {
				switch aggSpecs[ref.agg].Kind {
				case planner.AggMin:
					combines[key] = minCombine
				case planner.AggMax:
					combines[key] = maxCombine
				}
			}
		}
		cr, err := c.buildRel(ei, ord.Attrs, leafAST[ei], combines, cn.path == costopt.PathBinary)
		if err != nil {
			return nil, err
		}
		cn.rels = append(cn.rels, cr)
		for key, refs := range leafRefs[ei] {
			if cr.lz != nil {
				ann := cr.lz.Ann("leaf:" + key)
				if ann == nil {
					return nil, fmt.Errorf("exec: missing leaf annotation %q on %s", key, cr.alias)
				}
				for _, ref := range refs {
					leafAnns[ref] = ann
					leafBound[ref] = true
				}
				continue
			}
			ann := cr.tr.Ann("leaf:" + key)
			if ann == nil {
				return nil, fmt.Errorf("exec: missing leaf annotation %q on %s", key, cr.alias)
			}
			for _, ref := range refs {
				leafBufs[ref] = ann.F64
				leafBound[ref] = true
			}
		}
	}

	// Children: compiled now, tries built at run time.
	for _, gch := range n.Children {
		childCN, err := c.compileNode(gch, ch, false)
		if err != nil {
			return nil, err
		}
		cn.rels = append(cn.rels, &cRel{
			relIdx:  -1,
			alias:   "child",
			attrs:   sharedInOrder(ord.Attrs, gch.Bag),
			hasDups: true,
			child:   childCN,
		})
		cn.children = append(cn.children, childCN)
	}

	// Assemble compiled aggregates.
	for ai := range aggSpecs {
		spec := &aggSpecs[ai]
		ca := cAgg{kind: spec.Kind, skel: spec.Skeleton}
		leafRelSet := map[int]bool{}
		for li, leaf := range spec.Leaves {
			buf := leafBufs[leafRef{ai, li}]
			if !leafBound[leafRef{ai, li}] {
				return nil, fmt.Errorf("exec: unbound leaf %d of aggregate %s", li, spec.Name)
			}
			relPos := cn.relPos(leaf.Rel)
			if relPos < 0 {
				return nil, fmt.Errorf("exec: leaf relation %d not in node", leaf.Rel)
			}
			ca.leafBufs = append(ca.leafBufs, buf)
			ca.leafRels = append(ca.leafRels, relPos)
			leafRelSet[relPos] = true
			if ann := leafAnns[leafRef{ai, li}]; ann != nil {
				cn.lazyBinds = append(cn.lazyBinds, lazyBind{agg: ai, leaf: li, ann: ann})
			}
		}
		// Multiplicity factors: duplicated relations not consumed by a
		// leaf, plus all child results — except under min/max, which
		// multiplicities cannot affect.
		if spec.Kind != planner.AggMin && spec.Kind != planner.AggMax {
			for rp, cr := range cn.rels {
				if !leafRelSet[rp] && cr.hasDups {
					ca.multRels = append(ca.multRels, rp)
				}
			}
		}
		cn.aggs = append(cn.aggs, ca)
	}
	cn.aggKinds = make([]planner.AggKind, len(cn.aggs))
	for i := range cn.aggs {
		cn.aggKinds[i] = cn.aggs[i].kind
	}

	// Level participation table.
	cn.parts = make([][]part, cn.nLevels)
	for d, v := range ord.Attrs {
		for rp, cr := range cn.rels {
			for lvl, a := range cr.attrs {
				if a == v {
					cn.parts[d] = append(cn.parts[d], part{rel: rp, lvl: lvl})
				}
			}
		}
		if len(cn.parts[d]) == 0 {
			return nil, fmt.Errorf("exec: attribute %s has no participating relation", v)
		}
	}
	if cn.relaxed {
		cn.lastDomain = c.vertexDomainSize(ord.Attrs[cn.nLevels-1])
	}
	return cn, nil
}

// combineClass tags the pre-aggregation semantics of an aggregate kind.
func combineClass(k planner.AggKind) string {
	switch k {
	case planner.AggMin:
		return "min|"
	case planner.AggMax:
		return "max|"
	default:
		return "sum|"
	}
}

func minCombine(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxCombine(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// relPos maps a plan relation index to its position in cn.rels.
func (cn *cNode) relPos(relIdx int) int {
	for i, cr := range cn.rels {
		if cr.relIdx == relIdx {
			return i
		}
	}
	return -1
}

// sharedInOrder lists the vertices of bag in the order they appear in
// the node's attribute order.
func sharedInOrder(order []string, bag []string) []string {
	var out []string
	for _, v := range order {
		for _, b := range bag {
			if v == b {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// vertexDomainSize finds the dictionary size of the domain backing a
// vertex (0 when unknown).
func (c *compiled) vertexDomainSize(vertex string) int {
	for i := range c.p.Rels {
		r := &c.p.Rels[i]
		if colName, ok := r.VertexCol[vertex]; ok {
			col := c.tbl(r).Col(colName)
			if col != nil {
				if col.Def.Role == storage.Key && col.Dict() != nil {
					return col.Dict().Len()
				}
				// Pseudo vertices: string codes come from the column
				// dictionary; numeric ones from the ad-hoc encoding.
				if col.Def.Kind == storage.String && col.Dict() != nil {
					return col.Dict().Len()
				}
				codes, _ := c.pseudoEncode(col)
				max := uint32(0)
				for _, x := range codes {
					if x > max {
						max = x
					}
				}
				return int(max) + 1
			}
		}
	}
	return 0
}

// buildRel builds (or fetches from cache) the query trie for one
// relation: key levels in node order (attribute elimination: only the
// vertices this query touches enter the trie), filters applied per row,
// leaf and multiplicity annotations pre-aggregated over duplicate key
// tuples. When lazy is set (binary access path) the relation becomes a
// lazy generalized hash trie: only level 0 is materialized here, the
// rest on first probe — the per-query build cost the binary path
// exists to avoid.
func (c *compiled) buildRel(relIdx int, order []string,
	leafAST map[string]sqlparse.Expr, combines map[string]trie.CombineFunc, lazy bool) (*cRel, error) {

	r := &c.p.Rels[relIdx]
	tb := c.tbl(r)
	attrs := sharedInOrder(order, r.Vertices)
	if len(attrs) != len(r.Vertices) {
		return nil, fmt.Errorf("exec: node order %v does not cover relation %s vertices %v", order, r.Alias, r.Vertices)
	}

	var leafKeys []string
	for key := range leafAST {
		leafKeys = append(leafKeys, key)
	}
	sort.Strings(leafKeys)

	if err := ctxErr(c.opts.Ctx); err != nil {
		return nil, err
	}

	// Only unfiltered builds are cached: they are the reusable physical
	// index whose creation the paper's measurements exclude. The key
	// carries the generation sequence, so appends (which publish a new
	// generation) never serve a stale trie.
	cacheable := r.Filter == nil && !c.opts.NoAttrElim && c.opts.Cache != nil
	cacheKey := fmt.Sprintf("%s@%d|%v|%v", tb.Schema.Name, tb.Generation(), attrs, leafKeys)
	if lazy {
		// Lazy entries are level-granular: the cached value is a *trie.Lazy
		// whose deeper levels materialize across queries (single-flight),
		// so the same key must never alias a fully-built trie.
		cacheKey += "|lazy"
	}
	if cacheable {
		if v, ok := c.opts.Cache.get(cacheKey); ok {
			if c.opts.Stats != nil {
				c.opts.Stats.TrieCacheHits++
			}
			if lazy {
				return newCRelLazy(relIdx, r.Alias, v.(*trie.Lazy), attrs), nil
			}
			return newCRel(relIdx, r.Alias, v.(*trie.Trie), attrs), nil
		}
		if c.opts.Stats != nil {
			c.opts.Stats.TrieCacheMisses++
		}
	}

	binding := &expr.Binding{Alias: r.Alias, Table: tb}
	threads := c.opts.threads()

	// Row selection (parallel: the compiled predicate closures only read
	// immutable column buffers).
	n := tb.NumRows
	var rows []int32
	if r.Filter != nil {
		f, err := expr.CompileFilter(r.Filter, binding)
		if err != nil {
			return nil, err
		}
		chunks := make([][]int32, threads)
		parallelRangeID(threads, n, func(id, lo, hi int) {
			out := make([]int32, 0, (hi-lo)/4+1)
			for i := int32(lo); i < int32(hi); i++ {
				if f(i) {
					out = append(out, i)
				}
			}
			chunks[id] = out
		})
		rows = make([]int32, 0, n/4+1)
		for _, ch := range chunks {
			rows = append(rows, ch...)
		}
	}
	nRows := n
	if rows != nil {
		nRows = len(rows)
	}

	// Key columns in node order.
	in := trie.BuildInput{Attrs: attrs, Threads: threads}
	for _, v := range attrs {
		colName := r.VertexCol[v]
		col := tb.Col(colName)
		if col == nil {
			return nil, fmt.Errorf("exec: missing column %s.%s", r.Alias, colName)
		}
		codes, err := c.keyCodesFor(r, col)
		if err != nil {
			return nil, err
		}
		in.Keys = append(in.Keys, gatherU32(codes, rows))
	}

	lastLvl := len(attrs) - 1
	for _, key := range leafKeys {
		val, err := expr.CompileValue(leafAST[key], binding)
		if err != nil {
			return nil, err
		}
		buf := make([]float64, nRows)
		parallelRange(threads, nRows, func(lo, hi int) {
			if rows == nil {
				for i := lo; i < hi; i++ {
					buf[i] = val(int32(i))
				}
			} else {
				for i := lo; i < hi; i++ {
					buf[i] = val(rows[i])
				}
			}
		})
		in.Anns = append(in.Anns, trie.AnnSpec{
			Name: "leaf:" + key, Level: lastLvl, Kind: trie.F64, F64: buf,
			Combine: combines[key],
		})
	}
	ones := make([]float64, nRows)
	for i := range ones {
		ones[i] = 1
	}
	in.Anns = append(in.Anns, trie.AnnSpec{Name: multAnn, Level: lastLvl, Kind: trie.F64, F64: ones})

	// Attribute-elimination ablation: load every annotation column into
	// the trie, as an engine without physical elimination would.
	if c.opts.NoAttrElim {
		for _, cd := range tb.Schema.Cols {
			if cd.Role != storage.Annotation {
				continue
			}
			col := tb.Col(cd.Name)
			name := "all:" + cd.Name
			if f := col.AnnFloats(); f != nil {
				in.Anns = append(in.Anns, trie.AnnSpec{Name: name, Level: lastLvl, Kind: trie.F64, F64: gatherF64(f, rows)})
			} else if codes := col.AnnCodes(); codes != nil {
				in.Anns = append(in.Anns, trie.AnnSpec{Name: name, Level: lastLvl, Kind: trie.Code, Codes: gatherU32(codes, rows)})
			}
		}
	}

	// Charge the query-trie build before running it: the build retains
	// roughly twice the input columns (sort scratch plus trie levels), and
	// an over-budget query should abort here rather than OOM inside Build.
	if c.opts.Mem != nil {
		est := int64(nRows) * int64(4*len(in.Keys)+8*len(in.Anns)) * 2
		if err := c.opts.Mem.Charge(est); err != nil {
			return nil, err
		}
	}
	if lazy {
		lz, err := trie.NewLazy(in)
		if err != nil {
			return nil, fmt.Errorf("exec: building lazy trie for %s: %v", r.Alias, err)
		}
		if c.opts.Stats != nil {
			c.opts.Stats.TriesBuilt++
		}
		if cacheable {
			c.opts.Cache.put(cacheKey, lz)
		}
		return newCRelLazy(relIdx, r.Alias, lz, attrs), nil
	}
	tr, err := trie.Build(in)
	if err != nil {
		return nil, fmt.Errorf("exec: building trie for %s: %v", r.Alias, err)
	}
	if c.opts.Stats != nil {
		c.opts.Stats.TriesBuilt++
	}
	if cacheable {
		c.opts.Cache.put(cacheKey, tr)
	}
	return newCRel(relIdx, r.Alias, tr, attrs), nil
}

// newCRelLazy wraps a lazy trie. Duplicate state is unknown until the
// leaf level materializes, so it stays conservative: hasDups=true keeps
// the relation in every sum/count aggregate's multiplicity set, and the
// __mult buffer bound at run time is an exact identity (all ones) when
// the input turns out duplicate-free.
func newCRelLazy(relIdx int, alias string, lz *trie.Lazy, attrs []string) *cRel {
	return &cRel{relIdx: relIdx, alias: alias, lz: lz, attrs: attrs, hasDups: true}
}

func newCRel(relIdx int, alias string, tr *trie.Trie, attrs []string) *cRel {
	cr := &cRel{relIdx: relIdx, alias: alias, tr: tr, attrs: attrs}
	cr.hasDups = tr.SourceRows != tr.NumTuples
	if a := tr.Ann(multAnn); a != nil {
		cr.mult = a.F64
	}
	return cr
}

// keyCodesFor returns the code column for a key or pseudo-vertex column.
func (c *compiled) keyCodesFor(r *planner.RelInfo, col *storage.Column) ([]uint32, error) {
	if col.Def.Role == storage.Key {
		codes := col.KeyCodes()
		if codes == nil {
			return nil, fmt.Errorf("exec: key column %s.%s not encoded", r.Alias, col.Def.Name)
		}
		return codes, nil
	}
	if col.Def.Kind == storage.String {
		return col.AnnCodes(), nil
	}
	codes, _ := c.pseudoEncode(col)
	return codes, nil
}

// pseudoEncode builds an ad-hoc order-preserving code space for a
// numeric annotation column promoted to a trie level.
func (c *compiled) pseudoEncode(col *storage.Column) ([]uint32, *pseudoDecoder) {
	f := col.AnnFloats()
	// NaN map keys are each distinct (NaN != NaN), so dedup/rank maps
	// would mint unbounded entries and every rank[NaN] lookup would
	// miss, silently coding NaN rows as 0. Canonicalize: one trailing
	// NaN code, and -0.0 folded into +0.0.
	hasNaN := false
	uniq := map[float64]struct{}{}
	for _, v := range f {
		if math.IsNaN(v) {
			hasNaN = true
			continue
		}
		if v == 0 {
			v = 0
		}
		uniq[v] = struct{}{}
	}
	vals := make([]float64, 0, len(uniq)+1)
	for v := range uniq {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	rank := make(map[float64]uint32, len(vals))
	for i, v := range vals {
		rank[v] = uint32(i)
	}
	nanCode := uint32(len(vals))
	if hasNaN {
		vals = append(vals, math.NaN())
	}
	codes := make([]uint32, len(f))
	for i, v := range f {
		if math.IsNaN(v) {
			codes[i] = nanCode
			continue
		}
		if v == 0 {
			v = 0
		}
		codes[i] = rank[v]
	}
	return codes, &pseudoDecoder{numVals: vals, isDate: col.Def.Kind == storage.Date}
}

func gatherU32(src []uint32, rows []int32) []uint32 {
	if rows == nil {
		return src
	}
	out := make([]uint32, len(rows))
	for i, r := range rows {
		out[i] = src[r]
	}
	return out
}

func gatherF64(src []float64, rows []int32) []float64 {
	if rows == nil {
		return src
	}
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = src[r]
	}
	return out
}

// buildGroupDecoders resolves each GROUP BY item to a decoder over the
// root's materialized key (the metadata container M of §IV-A rule 4).
func (c *compiled) buildGroupDecoders() error {
	root := c.root
	posOf := map[string]int{}
	if c.p.HashEmit {
		// Hash-emit mode: any position in the order works — the token is
		// computed from the live vertex binding.
		root.hashEmit = true
		for i, v := range root.order {
			posOf[v] = i
		}
	} else {
		for i := 0; i < root.matCount; i++ {
			posOf[root.order[i]] = i
		}
		if root.relaxed {
			// The relaxed tail's materialized attribute lands after the
			// prefix in the output key.
			posOf[root.order[root.nLevels-1]] = root.matCount
		}
	}
	for _, g := range c.p.Groups {
		pos, ok := posOf[g.Vertex]
		if !ok {
			return fmt.Errorf("exec: group vertex %s not bound in root order %v", g.Vertex, root.order)
		}
		gd := groupDecoder{item: g, pos: pos}
		switch g.Kind {
		case planner.GroupVertex:
			col := c.tbl(&c.p.Rels[g.Rel]).Col(g.Col)
			gd.domain = col.Dict()
			if col.Def.Kind == storage.String {
				gd.outKind = KindString
			} else {
				gd.outKind = KindInt
			}
		case planner.GroupPseudo:
			col := c.tbl(&c.p.Rels[g.Rel]).Col(g.Col)
			if col.Def.Kind == storage.String {
				gd.pseudo = &pseudoDecoder{strDict: col.Dict()}
				gd.outKind = KindString
			} else {
				_, dec := c.pseudoEncode(col)
				gd.pseudo = dec
				if dec.isDate {
					gd.outKind = KindString
				} else {
					gd.outKind = KindFloat
				}
			}
		case planner.GroupMeta:
			r := &c.p.Rels[g.Rel]
			tb := c.tbl(r)
			pkCol := tb.Col(r.VertexCol[g.Vertex])
			metaRows := make([]int32, pkCol.Dict().Len())
			for i := range metaRows {
				metaRows[i] = -1
			}
			for row, code := range pkCol.KeyCodes() {
				metaRows[code] = int32(row)
			}
			gd.metaRows = metaRows
			if col, isStr, isDate, ok := metaColRef(r, tb, g.Expr); ok && isStr {
				gd.metaCodes = col.AnnCodes()
				gd.metaDict = col.Dict()
				gd.outKind = KindString
			} else {
				binding := &expr.Binding{Alias: r.Alias, Table: tb}
				val, err := expr.CompileValue(g.Expr, binding)
				if err != nil {
					return err
				}
				gd.metaVal = val
				gd.metaDate = isDate
				switch {
				case isDate:
					gd.outKind = KindString
				case ok && col.Def.Kind == storage.Int64:
					gd.outKind = KindInt
				default:
					gd.outKind = KindFloat
				}
			}
		}
		c.groups = append(c.groups, gd)
		if c.p.HashEmit {
			hg := hashGroup{
				level:     gd.pos,
				metaRows:  gd.metaRows,
				metaCodes: gd.metaCodes,
				metaVal:   gd.metaVal,
			}
			if gd.metaCodes != nil && gd.metaDict != nil {
				// Dictionary-coded tokens have a known domain, enabling the
				// aggregation table's dense direct-indexed fallback.
				hg.domain = gd.metaDict.Len()
			}
			root.hgroups = append(root.hgroups, hg)
		}
	}
	return nil
}

// metaColRef inspects a GroupMeta expression: when it is a plain column
// reference it returns the column (from the snapshot-resolved table tb)
// and its type flags.
func metaColRef(r *planner.RelInfo, tb *storage.Table, e sqlparse.Expr) (col *storage.Column, isStr, isDate, ok bool) {
	cr, isCR := e.(sqlparse.ColRef)
	if !isCR {
		return nil, false, false, false
	}
	if cr.Qualifier != "" && cr.Qualifier != r.Alias {
		return nil, false, false, false
	}
	col = tb.Col(cr.Name)
	if col == nil {
		return nil, false, false, false
	}
	return col, col.Def.Kind == storage.String, col.Def.Kind == storage.Date, true
}
