package exec

import (
	"testing"

	"repro/internal/costopt"
	"repro/internal/planner"
	"repro/internal/set"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// binaryCatalog builds a two-attribute join pair so the compiled trie
// has two levels with two participating relations at each — the shape
// that exercises descendBinary's batched probe loop, not just the
// single-part slice scan.
func binaryCatalog(t *testing.T, rows int) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	fact, err := cat.Create(storage.Schema{Name: "fact", Cols: []storage.ColumnDef{
		{Name: "a", Kind: storage.Int64, Role: storage.Key, Domain: "da"},
		{Name: "b", Kind: storage.Int64, Role: storage.Key, Domain: "db"},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	dim, err := cat.Create(storage.Schema{Name: "dim", Cols: []storage.ColumnDef{
		{Name: "a1", Kind: storage.Int64, Role: storage.Key, Domain: "da"},
		{Name: "b1", Kind: storage.Int64, Role: storage.Key, Domain: "db"},
		{Name: "w", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic, overlapping but not identical key sets: some fact
	// keys miss dim (probe misses) and values repeat (duplicate handling).
	x := uint64(0x9e3779b97f4a7c15)
	next := func(m uint64) int64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int64(x % m)
	}
	for i := 0; i < rows; i++ {
		if err := fact.AppendRow(next(64), next(32), float64(i%7)+0.5); err != nil {
			t.Fatal(err)
		}
		if err := dim.AppendRow(next(48), next(32), float64(i%5)-2); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestForcedPathsAgree runs the same queries under ForcePath=wcoj and
// ForcePath=binary and requires bit-identical results: the binary
// navigator must visit exactly the survivor sequence the WCOJ
// intersections produce, on grouped and grand-aggregate shapes alike.
func TestForcedPathsAgree(t *testing.T) {
	cat := binaryCatalog(t, 500)
	queries := []string{
		`SELECT sum(x * w) as v, count(*) as c FROM fact, dim WHERE fact.a = dim.a1 AND fact.b = dim.b1`,
		`SELECT a, sum(x * w) as v FROM fact, dim WHERE fact.a = dim.a1 AND fact.b = dim.b1 GROUP BY a`,
		`SELECT a, b, sum(x) as v, min(w) as lo, max(w) as hi FROM fact, dim WHERE fact.a = dim.a1 AND fact.b = dim.b1 GROUP BY a, b`,
		`SELECT sum(x) as v FROM fact, dim WHERE fact.a = dim.a1 AND fact.b = dim.b1 AND x > 2`,
	}
	for _, threads := range []int{1, 4} {
		for _, sql := range queries {
			// One plan + order choice shared by both executions: order
			// selection may break cost ties either way run-to-run, and this
			// test isolates the access path, not the tie-break.
			q, err := sqlparse.Parse(sql)
			if err != nil {
				t.Fatal(err)
			}
			p, err := planner.Build(q, cat)
			if err != nil {
				t.Fatal(err)
			}
			ch, err := costopt.Choose(p, costopt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			rw, err := Run(p, ch, cat, Options{Threads: threads, ForcePath: costopt.PathWCOJ})
			if err != nil {
				t.Fatalf("wcoj %q: %v", sql, err)
			}
			rb, err := Run(p, ch, cat, Options{Threads: threads, ForcePath: costopt.PathBinary})
			if err != nil {
				t.Fatalf("binary %q: %v", sql, err)
			}
			assertResultsEqual(t, sql, rw, rb)
		}
	}
}

// assertResultsEqual requires bitwise-equal columns in identical order.
func assertResultsEqual(t *testing.T, sql string, a, b *Result) {
	t.Helper()
	if a.NumRows != b.NumRows || len(a.Cols) != len(b.Cols) {
		t.Fatalf("%q: shape mismatch %dx%d vs %dx%d", sql, a.NumRows, len(a.Cols), b.NumRows, len(b.Cols))
	}
	for ci := range a.Cols {
		ca, cb := a.Cols[ci], b.Cols[ci]
		if ca.Name != cb.Name || ca.Kind != cb.Kind {
			t.Fatalf("%q: column %d header mismatch", sql, ci)
		}
		for ri := 0; ri < a.NumRows; ri++ {
			same := true
			switch ca.Kind {
			case KindInt:
				same = ca.I64[ri] == cb.I64[ri]
			case KindFloat:
				same = ca.F64[ri] == cb.F64[ri]
			case KindString:
				same = ca.Str[ri] == cb.Str[ri]
			}
			if !same {
				t.Fatalf("%q: col %s row %d differs between wcoj and binary", sql, ca.Name, ri)
			}
		}
	}
}

// TestForcePathRejected checks the ForcePath validation in Run.
func TestForcePathRejected(t *testing.T) {
	cat := binaryCatalog(t, 10)
	_, err := runErr(cat, `SELECT sum(x) as v FROM fact, dim WHERE fact.a = dim.a1 AND fact.b = dim.b1`,
		Options{ForcePath: "hash"}, costopt.Options{})
	if err == nil {
		t.Fatal("unknown ForcePath accepted")
	}
}

// TestBinaryProbeZeroAllocs guards the binary navigator's steady state:
// with lazy levels materialized and worker scratch warm, a full chunk —
// level-0 rank binding, batched descendBinary probing, grand-aggregate
// folds — must not allocate. (bench-smoke runs this alongside the
// intersection and aggregation-table guards.)
func TestBinaryProbeZeroAllocs(t *testing.T) {
	cat := binaryCatalog(t, 2000)
	sql := `SELECT sum(x * w) as v FROM fact, dim WHERE fact.a = dim.a1 AND fact.b = dim.b1`
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := planner.Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := costopt.Choose(p, costopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := compile(p, ch, cat, Options{ForcePath: costopt.PathBinary})
	if err != nil {
		t.Fatal(err)
	}
	n := c.root
	var st set.Stats
	vals, err := levelZeroValues(n, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) == 0 {
		t.Fatal("empty level-0 join; test needs survivors to probe")
	}
	prepareBinary(n)
	w := newWorker(n, nil, nil)
	defer w.release()
	// Warm: first chunk sizes the per-level probe buffers.
	if err := w.runChunkBinary(vals); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := w.runChunkBinary(vals); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("binary probe loop: %v allocs/chunk on warm path, want 0", allocs)
	}
	if w.iStats.Probes == 0 {
		t.Error("no probes counted; the binary path did not run")
	}
}
