package exec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/costopt"
	"repro/internal/planner"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// run parses, plans, optimizes and executes a query.
func run(t *testing.T, cat *storage.Catalog, sql string, opts Options, coptOpts costopt.Options) *Result {
	t.Helper()
	res, err := runErr(cat, sql, opts, coptOpts)
	if err != nil {
		t.Fatalf("run(%s): %v", sql, err)
	}
	return res
}

func runErr(cat *storage.Catalog, sql string, opts Options, coptOpts costopt.Options) (*Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := planner.Build(q, cat)
	if err != nil {
		return nil, err
	}
	ch, err := costopt.Choose(p, coptOpts)
	if err != nil {
		return nil, err
	}
	return Run(p, ch, cat, opts)
}

// rowMap extracts result rows keyed by the first column's string form.
func rowMap(t *testing.T, r *Result, keyCol string) map[string][]float64 {
	t.Helper()
	kc := r.Col(keyCol)
	if kc == nil {
		t.Fatalf("missing column %s", keyCol)
	}
	out := map[string][]float64{}
	for i := 0; i < r.NumRows; i++ {
		var k string
		switch kc.Kind {
		case KindString:
			k = kc.Str[i]
		case KindInt:
			k = fmt.Sprint(kc.I64[i])
		default:
			k = fmt.Sprint(kc.F64[i])
		}
		var vals []float64
		for _, c := range r.Cols {
			if c == kc {
				continue
			}
			vals = append(vals, c.Float(i))
		}
		out[k] = vals
	}
	return out
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// --- fixtures -------------------------------------------------------

// sparseMatrixCatalog builds a random sparse matrix table plus a dense
// reference of it.
func sparseMatrixCatalog(t *testing.T, n, nnz int, seed int64) (*storage.Catalog, []float64) {
	t.Helper()
	cat := storage.NewCatalog()
	m, err := cat.Create(storage.Schema{Name: "m", Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	dense := make([]float64, n*n)
	used := map[int]bool{}
	for k := 0; k < nnz; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if used[i*n+j] {
			continue
		}
		used[i*n+j] = true
		v := float64(r.Intn(9) + 1)
		dense[i*n+j] = v
		if err := m.AppendRow(int64(i), int64(j), v); err != nil {
			t.Fatal(err)
		}
	}
	// Guarantee the full dimension domain exists by adding the diagonal
	// corners if absent.
	for _, d := range []int{0, n - 1} {
		if !used[d*n+d] {
			used[d*n+d] = true
			dense[d*n+d] = 1
			if err := m.AppendRow(int64(d), int64(d), 1.0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	return cat, dense
}

const matmulSQL = `SELECT m1.i, m2.j, sum(m1.v * m2.v) as v
	FROM m as m1, m as m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`

func checkMatmul(t *testing.T, res *Result, dense []float64, n int) {
	t.Helper()
	want := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if dense[i*n+k] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				want[i*n+j] += dense[i*n+k] * dense[k*n+j]
			}
		}
	}
	got := make([]float64, n*n)
	ic, jc, vc := res.Col("i"), res.Col("j"), res.Col("v")
	if ic == nil || jc == nil || vc == nil {
		t.Fatalf("missing columns: %v", res.Cols)
	}
	for r := 0; r < res.NumRows; r++ {
		got[ic.I64[r]*int64(n)+jc.I64[r]] += vc.F64[r]
	}
	for x := range want {
		if !approx(got[x], want[x]) {
			t.Fatalf("matmul[%d,%d] = %v, want %v", x/n, x%n, got[x], want[x])
		}
	}
}

func TestSparseMatMul(t *testing.T) {
	n := 30
	cat, dense := sparseMatrixCatalog(t, n, 200, 1)
	res := run(t, cat, matmulSQL, Options{}, costopt.Options{})
	checkMatmul(t, res, dense, n)
}

func TestSparseMatMulAllOrdersAgree(t *testing.T) {
	n := 12
	cat, dense := sparseMatrixCatalog(t, n, 60, 2)
	// Discover the vertex names from the plan.
	q, _ := sqlparse.Parse(matmulSQL)
	p, err := planner.Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	bag := p.GHD.Root.Bag
	perms := [][]string{}
	var rec func(cur, rest []string)
	rec = func(cur, rest []string) {
		if len(rest) == 0 {
			perms = append(perms, append([]string(nil), cur...))
			return
		}
		for i := range rest {
			next := append(append([]string(nil), rest[:i]...), rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, bag)
	ran := 0
	for _, perm := range perms {
		res, err := runErr(cat, matmulSQL, Options{}, costopt.Options{Forced: perm})
		if err != nil {
			// Orders violating materialized-first are rejected by exec;
			// that is expected for some permutations.
			continue
		}
		checkMatmul(t, res, dense, n)
		ran++
	}
	if ran < 2 {
		t.Fatalf("only %d forced orders executed", ran)
	}
}

func TestSparseMatMulRelaxedVsWorst(t *testing.T) {
	n := 20
	cat, dense := sparseMatrixCatalog(t, n, 120, 3)
	best := run(t, cat, matmulSQL, Options{}, costopt.Options{})
	worst := run(t, cat, matmulSQL, Options{}, costopt.Options{PickWorst: true})
	checkMatmul(t, best, dense, n)
	checkMatmul(t, worst, dense, n)
}

func TestSparseMatVec(t *testing.T) {
	n := 25
	cat := storage.NewCatalog()
	m, _ := cat.Create(storage.Schema{Name: "m", Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	vec, _ := cat.Create(storage.Schema{Name: "vec", Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}})
	r := rand.New(rand.NewSource(4))
	dense := make([]float64, n*n)
	for c := 0; c < 120; c++ {
		i, j := r.Intn(n), r.Intn(n)
		if dense[i*n+j] != 0 {
			continue
		}
		v := r.Float64()
		dense[i*n+j] = v
		_ = m.AppendRow(int64(i), int64(j), v)
	}
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		x[k] = r.Float64()
		_ = vec.AppendRow(int64(k), x[k])
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	res := run(t, cat, `SELECT m.i, sum(m.v * vec.x) as y FROM m, vec WHERE m.j = vec.k GROUP BY m.i`,
		Options{}, costopt.Options{})
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want[i] += dense[i*n+j] * x[j]
		}
	}
	got := make([]float64, n)
	for rr := 0; rr < res.NumRows; rr++ {
		got[res.Col("i").I64[rr]] = res.Col("y").F64[rr]
	}
	for i := range want {
		if !approx(got[i], want[i]) {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// denseMatrixCatalog builds a full n×n matrix.
func denseMatrixCatalog(t *testing.T, n int, seed int64) (*storage.Catalog, []float64) {
	t.Helper()
	cat := storage.NewCatalog()
	m, _ := cat.Create(storage.Schema{Name: "m", Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	r := rand.New(rand.NewSource(seed))
	dense := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dense[i*n+j] = r.Float64()
			_ = m.AppendRow(int64(i), int64(j), dense[i*n+j])
		}
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	return cat, dense
}

func TestDenseMatMulBLASDispatchMatchesWCOJ(t *testing.T) {
	n := 16
	cat, dense := denseMatrixCatalog(t, n, 5)
	blasRes := run(t, cat, matmulSQL, Options{}, costopt.Options{})
	wcojRes := run(t, cat, matmulSQL, Options{NoBLAS: true}, costopt.Options{})
	checkMatmul(t, blasRes, dense, n)
	checkMatmul(t, wcojRes, dense, n)
	if blasRes.NumRows != n*n {
		t.Fatalf("dense output rows = %d, want %d", blasRes.NumRows, n*n)
	}
}

func TestDenseMatVecBLASDispatch(t *testing.T) {
	n := 12
	cat := storage.NewCatalog()
	m, _ := cat.Create(storage.Schema{Name: "m", Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	vec, _ := cat.Create(storage.Schema{Name: "vec", Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}})
	r := rand.New(rand.NewSource(6))
	a := make([]float64, n*n)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Float64()
		_ = vec.AppendRow(int64(i), x[i])
		for j := 0; j < n; j++ {
			a[i*n+j] = r.Float64()
			_ = m.AppendRow(int64(i), int64(j), a[i*n+j])
		}
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	sql := `SELECT m.i, sum(m.v * vec.x) as y FROM m, vec WHERE m.j = vec.k GROUP BY m.i`
	res := run(t, cat, sql, Options{}, costopt.Options{})
	res2 := run(t, cat, sql, Options{NoBLAS: true}, costopt.Options{})
	for _, rr := range []*Result{res, res2} {
		got := make([]float64, n)
		for i := 0; i < rr.NumRows; i++ {
			got[rr.Col("i").I64[i]] = rr.Col("y").F64[i]
		}
		for i := 0; i < n; i++ {
			want := 0.0
			for j := 0; j < n; j++ {
				want += a[i*n+j] * x[j]
			}
			if !approx(got[i], want) {
				t.Fatalf("y[%d] = %v, want %v", i, got[i], want)
			}
		}
	}
}

// tpchMiniCatalog builds a tiny TPC-H-shaped database with enough rows
// to exercise filters, duplicates and multi-node GHDs.
func tpchMiniCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	region, _ := cat.Create(storage.Schema{Name: "region", Cols: []storage.ColumnDef{
		{Name: "r_regionkey", Kind: storage.Int64, Role: storage.Key, Domain: "regionkey", PK: true},
		{Name: "r_name", Kind: storage.String, Role: storage.Annotation},
	}})
	nation, _ := cat.Create(storage.Schema{Name: "nation", Cols: []storage.ColumnDef{
		{Name: "n_nationkey", Kind: storage.Int64, Role: storage.Key, Domain: "nationkey", PK: true},
		{Name: "n_regionkey", Kind: storage.Int64, Role: storage.Key, Domain: "regionkey"},
		{Name: "n_name", Kind: storage.String, Role: storage.Annotation},
	}})
	customer, _ := cat.Create(storage.Schema{Name: "customer", Cols: []storage.ColumnDef{
		{Name: "c_custkey", Kind: storage.Int64, Role: storage.Key, Domain: "custkey", PK: true},
		{Name: "c_nationkey", Kind: storage.Int64, Role: storage.Key, Domain: "nationkey"},
	}})
	orders, _ := cat.Create(storage.Schema{Name: "orders", Cols: []storage.ColumnDef{
		{Name: "o_orderkey", Kind: storage.Int64, Role: storage.Key, Domain: "orderkey", PK: true},
		{Name: "o_custkey", Kind: storage.Int64, Role: storage.Key, Domain: "custkey"},
		{Name: "o_orderdate", Kind: storage.Date, Role: storage.Annotation},
	}})
	lineitem, _ := cat.Create(storage.Schema{Name: "lineitem", Cols: []storage.ColumnDef{
		{Name: "l_orderkey", Kind: storage.Int64, Role: storage.Key, Domain: "orderkey"},
		{Name: "l_suppkey", Kind: storage.Int64, Role: storage.Key, Domain: "suppkey"},
		{Name: "l_extendedprice", Kind: storage.Float64, Role: storage.Annotation},
		{Name: "l_discount", Kind: storage.Float64, Role: storage.Annotation},
		{Name: "l_quantity", Kind: storage.Float64, Role: storage.Annotation},
		{Name: "l_returnflag", Kind: storage.String, Role: storage.Annotation},
		{Name: "l_linestatus", Kind: storage.String, Role: storage.Annotation},
		{Name: "l_shipdate", Kind: storage.Date, Role: storage.Annotation},
	}})
	supplier, _ := cat.Create(storage.Schema{Name: "supplier", Cols: []storage.ColumnDef{
		{Name: "s_suppkey", Kind: storage.Int64, Role: storage.Key, Domain: "suppkey", PK: true},
		{Name: "s_nationkey", Kind: storage.Int64, Role: storage.Key, Domain: "nationkey"},
	}})

	_ = region.AppendRow(int64(0), "ASIA")
	_ = region.AppendRow(int64(1), "AMERICA")
	nations := []struct {
		k, r int64
		name string
	}{{0, 0, "JAPAN"}, {1, 0, "CHINA"}, {2, 1, "BRAZIL"}, {3, 1, "CANADA"}}
	for _, n := range nations {
		_ = nation.AppendRow(n.k, n.r, n.name)
	}
	// 6 customers spread over nations.
	for ck := int64(0); ck < 6; ck++ {
		_ = customer.AppendRow(ck, ck%4)
	}
	// 10 suppliers.
	for sk := int64(0); sk < 10; sk++ {
		_ = supplier.AppendRow(sk, sk%4)
	}
	// 12 orders, dates alternating inside/outside 1994.
	for ok := int64(0); ok < 12; ok++ {
		date := "1994-03-01"
		if ok%3 == 2 {
			date = "1995-07-01"
		}
		_ = orders.AppendRow(ok, ok%6, date)
	}
	// 40 lineitems with duplicate (orderkey, suppkey) pairs.
	r := rand.New(rand.NewSource(7))
	flags := []string{"R", "N", "A"}
	status := []string{"F", "O"}
	for i := 0; i < 40; i++ {
		ok := int64(r.Intn(12))
		sk := int64(r.Intn(10))
		price := float64(r.Intn(900) + 100)
		disc := float64(r.Intn(10)) / 100
		qty := float64(r.Intn(45) + 5)
		ship := "1994-06-01"
		if r.Intn(2) == 0 {
			ship = "1996-02-01"
		}
		_ = lineitem.AppendRow(ok, sk, price, disc, qty, flags[r.Intn(3)], status[r.Intn(2)], ship)
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	return cat
}

// refQ5 computes the Q5 answer by brute force over the raw tables.
func refQ5(t *testing.T, cat *storage.Catalog) map[string][]float64 {
	t.Helper()
	region := cat.Table("region")
	nation := cat.Table("nation")
	customer := cat.Table("customer")
	orders := cat.Table("orders")
	lineitem := cat.Table("lineitem")
	supplier := cat.Table("supplier")
	lo, _ := sqlparse.ParseDate("1994-01-01")
	hi, _ := sqlparse.ParseDate("1995-01-01")
	want := map[string][]float64{}
	for li := 0; li < lineitem.NumRows; li++ {
		lok := lineitem.Col("l_orderkey").Ints[li]
		lsk := lineitem.Col("l_suppkey").Ints[li]
		rev := lineitem.Col("l_extendedprice").Floats[li] * (1 - lineitem.Col("l_discount").Floats[li])
		for oi := 0; oi < orders.NumRows; oi++ {
			if orders.Col("o_orderkey").Ints[oi] != lok {
				continue
			}
			od := orders.Col("o_orderdate").Ints[oi]
			if od < int64(lo) || od >= int64(hi) {
				continue
			}
			ock := orders.Col("o_custkey").Ints[oi]
			for ci := 0; ci < customer.NumRows; ci++ {
				if customer.Col("c_custkey").Ints[ci] != ock {
					continue
				}
				cnk := customer.Col("c_nationkey").Ints[ci]
				for si := 0; si < supplier.NumRows; si++ {
					if supplier.Col("s_suppkey").Ints[si] != lsk {
						continue
					}
					if supplier.Col("s_nationkey").Ints[si] != cnk {
						continue
					}
					for ni := 0; ni < nation.NumRows; ni++ {
						if nation.Col("n_nationkey").Ints[ni] != cnk {
							continue
						}
						nrk := nation.Col("n_regionkey").Ints[ni]
						for ri := 0; ri < region.NumRows; ri++ {
							if region.Col("r_regionkey").Ints[ri] != nrk {
								continue
							}
							if region.Col("r_name").Strs[ri] != "ASIA" {
								continue
							}
							name := nation.Col("n_name").Strs[ni]
							if want[name] == nil {
								want[name] = []float64{0}
							}
							want[name][0] += rev
						}
					}
				}
			}
		}
	}
	return want
}

const q5SQL = `SELECT n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
	FROM customer, orders, lineitem, supplier, nation, region
	WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
	AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
	AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	AND r_name = 'ASIA' AND o_orderdate >= date '1994-01-01'
	AND o_orderdate < date '1995-01-01'
	GROUP BY n_name`

func TestQ5MultiNodeGHD(t *testing.T) {
	cat := tpchMiniCatalog(t)
	res := run(t, cat, q5SQL, Options{}, costopt.Options{})
	got := rowMap(t, res, "n_name")
	want := refQ5(t, cat)
	if len(got) != len(want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok || !approx(g[0], w[0]) {
			t.Fatalf("revenue[%s] = %v, want %v", k, g, w)
		}
	}
	// Also exercise the disabled-optimizer (EmptyHeaded-ish) path.
	res2 := run(t, cat, q5SQL, Options{}, costopt.Options{Disabled: true})
	got2 := rowMap(t, res2, "n_name")
	for k, w := range want {
		if !approx(got2[k][0], w[0]) {
			t.Fatalf("disabled optimizer: revenue[%s] = %v, want %v", k, got2[k], w)
		}
	}
}

func TestQ1PseudoGroupBy(t *testing.T) {
	cat := tpchMiniCatalog(t)
	res := run(t, cat, `SELECT l_returnflag, l_linestatus, sum(l_quantity) as sum_qty,
		sum(l_extendedprice * (1 - l_discount)) as sum_disc, count(*) as cnt, avg(l_quantity) as avg_qty
		FROM lineitem WHERE l_shipdate <= date '1995-01-01' GROUP BY l_returnflag, l_linestatus`,
		Options{}, costopt.Options{})
	// Brute force.
	lineitem := cat.Table("lineitem")
	cut, _ := sqlparse.ParseDate("1995-01-01")
	type acc struct{ qty, disc, cnt float64 }
	want := map[string]*acc{}
	for i := 0; i < lineitem.NumRows; i++ {
		if lineitem.Col("l_shipdate").Ints[i] > int64(cut) {
			continue
		}
		k := lineitem.Col("l_returnflag").Strs[i] + "|" + lineitem.Col("l_linestatus").Strs[i]
		a := want[k]
		if a == nil {
			a = &acc{}
			want[k] = a
		}
		a.qty += lineitem.Col("l_quantity").Floats[i]
		a.disc += lineitem.Col("l_extendedprice").Floats[i] * (1 - lineitem.Col("l_discount").Floats[i])
		a.cnt++
	}
	if res.NumRows != len(want) {
		t.Fatalf("groups = %d, want %d", res.NumRows, len(want))
	}
	for i := 0; i < res.NumRows; i++ {
		k := res.Col("l_returnflag").Str[i] + "|" + res.Col("l_linestatus").Str[i]
		a := want[k]
		if a == nil {
			t.Fatalf("unexpected group %s", k)
		}
		if !approx(res.Col("sum_qty").F64[i], a.qty) ||
			!approx(res.Col("sum_disc").F64[i], a.disc) ||
			!approx(res.Col("cnt").F64[i], a.cnt) ||
			!approx(res.Col("avg_qty").F64[i], a.qty/a.cnt) {
			t.Fatalf("group %s = %v/%v/%v/%v, want %+v", k,
				res.Col("sum_qty").F64[i], res.Col("sum_disc").F64[i],
				res.Col("cnt").F64[i], res.Col("avg_qty").F64[i], a)
		}
	}
}

func TestScalarScanQ6(t *testing.T) {
	cat := tpchMiniCatalog(t)
	res := run(t, cat, `SELECT sum(l_extendedprice * l_discount) as revenue, count(*) as c
		FROM lineitem WHERE l_quantity < 30 AND l_shipdate >= date '1994-01-01'`,
		Options{}, costopt.Options{})
	lineitem := cat.Table("lineitem")
	lo, _ := sqlparse.ParseDate("1994-01-01")
	var wantRev, wantCnt float64
	for i := 0; i < lineitem.NumRows; i++ {
		if lineitem.Col("l_quantity").Floats[i] >= 30 || lineitem.Col("l_shipdate").Ints[i] < int64(lo) {
			continue
		}
		wantRev += lineitem.Col("l_extendedprice").Floats[i] * lineitem.Col("l_discount").Floats[i]
		wantCnt++
	}
	if res.NumRows != 1 || !approx(res.Col("revenue").F64[0], wantRev) || !approx(res.Col("c").F64[0], wantCnt) {
		t.Fatalf("q6 = %v/%v, want %v/%v", res.Col("revenue").F64[0], res.Col("c").F64[0], wantRev, wantCnt)
	}
}

func TestGroupMetaOrderdate(t *testing.T) {
	cat := tpchMiniCatalog(t)
	// Q3-like: group by orderkey plus a metadata date column.
	res := run(t, cat, `SELECT l_orderkey, o_orderdate, sum(l_extendedprice * (1 - l_discount)) as revenue
		FROM orders, lineitem WHERE o_orderkey = l_orderkey GROUP BY l_orderkey, o_orderdate`,
		Options{}, costopt.Options{})
	orders, lineitem := cat.Table("orders"), cat.Table("lineitem")
	want := map[int64]float64{}
	dates := map[int64]string{}
	for i := 0; i < orders.NumRows; i++ {
		dates[orders.Col("o_orderkey").Ints[i]] = sqlparse.DaysToDate(int32(orders.Col("o_orderdate").Ints[i]))
	}
	for i := 0; i < lineitem.NumRows; i++ {
		ok := lineitem.Col("l_orderkey").Ints[i]
		if _, has := dates[ok]; has {
			want[ok] += lineitem.Col("l_extendedprice").Floats[i] * (1 - lineitem.Col("l_discount").Floats[i])
		}
	}
	if res.NumRows != len(want) {
		t.Fatalf("rows = %d, want %d", res.NumRows, len(want))
	}
	for i := 0; i < res.NumRows; i++ {
		ok := res.Col("l_orderkey").I64[i]
		if !approx(res.Col("revenue").F64[i], want[ok]) {
			t.Fatalf("revenue[%d] = %v, want %v", ok, res.Col("revenue").F64[i], want[ok])
		}
		if res.Col("o_orderdate").Str[i] != dates[ok] {
			t.Fatalf("date[%d] = %s, want %s", ok, res.Col("o_orderdate").Str[i], dates[ok])
		}
	}
}

func TestExtractYearGroupingMergesGroups(t *testing.T) {
	cat := tpchMiniCatalog(t)
	// Orders span 1994 and 1995: grouping by extract(year) must merge
	// orderkeys into two groups.
	res := run(t, cat, `SELECT extract(year from o_orderdate) as o_year, count(*) as c
		FROM orders, lineitem WHERE o_orderkey = l_orderkey GROUP BY o_year`,
		Options{}, costopt.Options{})
	if res.NumRows != 2 {
		t.Fatalf("years = %d, want 2", res.NumRows)
	}
	orders, lineitem := cat.Table("orders"), cat.Table("lineitem")
	want := map[float64]float64{}
	for i := 0; i < lineitem.NumRows; i++ {
		lok := lineitem.Col("l_orderkey").Ints[i]
		for j := 0; j < orders.NumRows; j++ {
			if orders.Col("o_orderkey").Ints[j] == lok {
				y := float64(sqlparse.DateYear(int32(orders.Col("o_orderdate").Ints[j])))
				want[y]++
			}
		}
	}
	for i := 0; i < res.NumRows; i++ {
		y := res.Col("o_year").F64[i]
		if !approx(res.Col("c").F64[i], want[y]) {
			t.Fatalf("count[%v] = %v, want %v", y, res.Col("c").F64[i], want[y])
		}
	}
}

func TestMinMaxAggregates(t *testing.T) {
	cat := tpchMiniCatalog(t)
	res := run(t, cat, `SELECT l_returnflag, min(l_quantity) as mn, max(l_quantity) as mx
		FROM lineitem GROUP BY l_returnflag`, Options{}, costopt.Options{})
	lineitem := cat.Table("lineitem")
	type mm struct{ mn, mx float64 }
	want := map[string]*mm{}
	for i := 0; i < lineitem.NumRows; i++ {
		k := lineitem.Col("l_returnflag").Strs[i]
		q := lineitem.Col("l_quantity").Floats[i]
		a := want[k]
		if a == nil {
			want[k] = &mm{q, q}
			continue
		}
		a.mn = math.Min(a.mn, q)
		a.mx = math.Max(a.mx, q)
	}
	for i := 0; i < res.NumRows; i++ {
		k := res.Col("l_returnflag").Str[i]
		if !approx(res.Col("mn").F64[i], want[k].mn) || !approx(res.Col("mx").F64[i], want[k].mx) {
			t.Fatalf("minmax[%s] = %v/%v, want %+v", k, res.Col("mn").F64[i], res.Col("mx").F64[i], want[k])
		}
	}
}

func TestCountStarWithDuplicates(t *testing.T) {
	cat := tpchMiniCatalog(t)
	// count(*) over a join where lineitem has duplicate (ok, sk) pairs:
	// the multiplicity machinery must recover the true row count.
	res := run(t, cat, `SELECT count(*) as c FROM orders, lineitem WHERE o_orderkey = l_orderkey`,
		Options{}, costopt.Options{})
	orders, lineitem := cat.Table("orders"), cat.Table("lineitem")
	okSet := map[int64]bool{}
	for i := 0; i < orders.NumRows; i++ {
		okSet[orders.Col("o_orderkey").Ints[i]] = true
	}
	want := 0.0
	for i := 0; i < lineitem.NumRows; i++ {
		if okSet[lineitem.Col("l_orderkey").Ints[i]] {
			want++
		}
	}
	if !approx(res.Col("c").F64[0], want) {
		t.Fatalf("count = %v, want %v", res.Col("c").F64[0], want)
	}
}

func TestThreadCountsAgree(t *testing.T) {
	n := 24
	cat, dense := sparseMatrixCatalog(t, n, 150, 8)
	for _, threads := range []int{1, 2, 7} {
		res := run(t, cat, matmulSQL, Options{Threads: threads}, costopt.Options{})
		checkMatmul(t, res, dense, n)
	}
}

func TestTrieCacheReuse(t *testing.T) {
	n := 16
	cat, dense := sparseMatrixCatalog(t, n, 80, 9)
	cache := NewTrieCache()
	res1 := run(t, cat, matmulSQL, Options{Cache: cache}, costopt.Options{})
	if cache.Len() == 0 {
		t.Fatal("cache should hold the matrix trie")
	}
	res2 := run(t, cat, matmulSQL, Options{Cache: cache}, costopt.Options{})
	checkMatmul(t, res1, dense, n)
	checkMatmul(t, res2, dense, n)
}

func TestNoAttrElimStillCorrect(t *testing.T) {
	cat := tpchMiniCatalog(t)
	want := refQ5(t, cat)
	res := run(t, cat, q5SQL, Options{NoAttrElim: true}, costopt.Options{})
	got := rowMap(t, res, "n_name")
	for k, w := range want {
		if !approx(got[k][0], w[0]) {
			t.Fatalf("NoAttrElim revenue[%s] = %v, want %v", k, got[k], w)
		}
	}
}

func TestCaseIndicatorAcrossRelations(t *testing.T) {
	cat := tpchMiniCatalog(t)
	// Q8-style market-share: CASE over nation gates lineitem revenue.
	res := run(t, cat, `SELECT n_name,
		sum(case when n_name = 'JAPAN' then l_extendedprice * (1 - l_discount) else 0 end) as jp,
		sum(l_extendedprice * (1 - l_discount)) as total
		FROM lineitem, supplier, nation
		WHERE l_suppkey = s_suppkey AND s_nationkey = n_nationkey
		GROUP BY n_name`, Options{}, costopt.Options{})
	for i := 0; i < res.NumRows; i++ {
		name := res.Col("n_name").Str[i]
		jp := res.Col("jp").F64[i]
		total := res.Col("total").F64[i]
		if name == "JAPAN" {
			if !approx(jp, total) {
				t.Fatalf("JAPAN gated sum %v != total %v", jp, total)
			}
		} else if jp != 0 {
			t.Fatalf("%s gated sum = %v, want 0", name, jp)
		}
	}
}

func TestGroupOnlyNoAggregates(t *testing.T) {
	cat := tpchMiniCatalog(t)
	res := run(t, cat, `SELECT n_name FROM nation, region
		WHERE n_regionkey = r_regionkey AND r_name = 'ASIA' GROUP BY n_name`,
		Options{}, costopt.Options{})
	var got []string
	for i := 0; i < res.NumRows; i++ {
		got = append(got, res.Col("n_name").Str[i])
	}
	sort.Strings(got)
	want := []string{"CHINA", "JAPAN"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("asian nations = %v, want %v", got, want)
	}
}
