// Package crosscheck_test validates that all engines in this repository
// — LevelHeaded (WCOJ), pairwise (HyPer-sim) and colstore (MonetDB-sim)
// — produce identical answers on the paper's benchmark queries, and
// that the LA queries agree with the BLAS kernels. This is the
// repository's strongest end-to-end correctness gate.
package crosscheck_test

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/blas"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/pairwise"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// groupCols lists, per query, the group columns in cross-engine key
// order (matching the baseline engines' key construction).
var groupCols = map[string][]string{
	"q1":  {"l_returnflag", "l_linestatus"},
	"q3":  {"l_orderkey", "o_orderdate", "o_shippriority"},
	"q5":  {"n_name"},
	"q6":  {},
	"q8":  {"o_year"},
	"q9":  {"n_name", "o_year"},
	"q10": {"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"},
}

func fm(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// toRows converts a LevelHeaded result to the comparable key → values
// form used by the baseline engines.
func toRows(t *testing.T, res *exec.Result, groups []string) map[string][]float64 {
	t.Helper()
	var keyCols []*exec.Column
	for _, g := range groups {
		c := res.Col(g)
		if c == nil {
			t.Fatalf("missing group column %s (have %v)", g, colNames(res))
		}
		keyCols = append(keyCols, c)
	}
	groupSet := map[string]bool{}
	for _, g := range groups {
		groupSet[g] = true
	}
	var valCols []*exec.Column
	for _, c := range res.Cols {
		if !groupSet[c.Name] {
			valCols = append(valCols, c)
		}
	}
	out := map[string][]float64{}
	for i := 0; i < res.NumRows; i++ {
		key := ""
		for gi, c := range keyCols {
			if gi > 0 {
				key += "|"
			}
			switch c.Kind {
			case exec.KindString:
				key += c.Str[i]
			case exec.KindInt:
				key += strconv.FormatInt(c.I64[i], 10)
			default:
				key += fm(c.F64[i])
			}
		}
		var vals []float64
		for _, c := range valCols {
			vals = append(vals, c.Float(i))
		}
		out[key] = vals
	}
	return out
}

func colNames(res *exec.Result) []string {
	var out []string
	for _, c := range res.Cols {
		out = append(out, c.Name)
	}
	return out
}

func compareRows(t *testing.T, label string, got, want map[string][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d groups, want %d", label, len(got), len(want))
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Errorf("%s: missing group %q", label, k)
			continue
		}
		if len(gv) != len(wv) {
			t.Errorf("%s: group %q has %d values, want %d", label, k, len(gv), len(wv))
			continue
		}
		for i := range wv {
			if math.Abs(gv[i]-wv[i]) > 1e-6*math.Max(1, math.Abs(wv[i])) {
				t.Errorf("%s: group %q value %d = %v, want %v", label, k, i, gv[i], wv[i])
			}
		}
	}
}

func TestTPCHAllEnginesAgree(t *testing.T) {
	eng := core.New()
	if _, err := tpch.Populate(eng.Catalog(), 0.003, 11); err != nil {
		t.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	pw := pairwise.New(eng.Catalog())
	cs := colstore.New(eng.Catalog())

	for _, name := range tpch.QueryNames {
		name := name
		t.Run(name, func(t *testing.T) {
			pwRows, err := pw.RunTPCH(name)
			if err != nil {
				t.Fatal(err)
			}
			csRows, err := cs.RunTPCH(name)
			if err != nil {
				t.Fatal(err)
			}
			compareRows(t, name+" colstore-vs-pairwise", csRows.Data, pwRows.Data)

			res, err := eng.Query(tpch.Queries[name])
			if err != nil {
				t.Fatalf("levelheaded %s: %v", name, err)
			}
			lhRows := toRows(t, res, groupCols[name])
			compareRows(t, name+" levelheaded-vs-pairwise", lhRows, pwRows.Data)
		})
	}
}

func TestTPCHAblationsAgree(t *testing.T) {
	base := core.New()
	if _, err := tpch.Populate(base.Catalog(), 0.002, 12); err != nil {
		t.Fatal(err)
	}
	if err := base.Freeze(); err != nil {
		t.Fatal(err)
	}
	pw := pairwise.New(base.Catalog())

	variants := map[string]*core.Engine{}
	// The ablation engines share the already-populated catalog via fresh
	// engines over the same data? Engines own their catalogs, so rebuild.
	mk := func(opts ...core.Option) *core.Engine {
		e := core.New(opts...)
		if _, err := tpch.Populate(e.Catalog(), 0.002, 12); err != nil {
			t.Fatal(err)
		}
		return e
	}
	variants["noattrelim"] = mk(core.WithAttributeElimination(false))
	variants["nocostopt"] = mk(core.WithCostOptimizer(false))
	variants["worst"] = mk(core.WithWorstOrder(true))

	for _, name := range []string{"q1", "q3", "q5", "q6", "q10"} {
		want, err := pw.RunTPCH(name)
		if err != nil {
			t.Fatal(err)
		}
		for label, eng := range variants {
			res, err := eng.Query(tpch.Queries[name])
			if err != nil {
				t.Fatalf("%s %s: %v", label, name, err)
			}
			compareRows(t, name+" "+label, toRows(t, res, groupCols[name]), want.Data)
		}
	}
}

// laCatalog loads a random sparse matrix and vector into a catalog.
func laCatalog(t *testing.T, n, nnz int, seed int64) (*core.Engine, *blas.CSR, []float64) {
	t.Helper()
	eng := core.New()
	cat := eng.Catalog()
	m, err := cat.Create(storage.Schema{Name: "m", Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := cat.Create(storage.Schema{Name: "vec", Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	used := map[int]bool{}
	var ci, cj []int32
	var cv []float64
	add := func(i, j int, v float64) {
		used[i*n+j] = true
		ci = append(ci, int32(i))
		cj = append(cj, int32(j))
		cv = append(cv, v)
		if err := m.AppendRow(int64(i), int64(j), v); err != nil {
			t.Fatal(err)
		}
	}
	// Ensure the full domain [0, n) exists via the diagonal.
	for d := 0; d < n; d++ {
		add(d, d, r.Float64()+0.5)
	}
	for k := 0; k < nnz; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if used[i*n+j] {
			continue
		}
		add(i, j, r.Float64())
	}
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		x[k] = r.Float64()
		if err := vec.AppendRow(int64(k), x[k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	coo, _ := blas.NewCOO(n, n, ci, cj, cv)
	return eng, blas.CompressCOO(coo), x
}

func TestSpMVAllEnginesAgree(t *testing.T) {
	n := 40
	eng, csr, x := laCatalog(t, n, 300, 21)
	// Reference: CSR SpMV.
	want := make([]float64, n)
	blas.SpMV(csr, x, want)

	res, err := eng.Query(`SELECT m.i, sum(m.v * vec.x) as y FROM m, vec WHERE m.j = vec.k GROUP BY m.i`)
	if err != nil {
		t.Fatal(err)
	}
	lh := make([]float64, n)
	for r := 0; r < res.NumRows; r++ {
		lh[res.Col("i").I64[r]] = res.Col("y").F64[r]
	}
	pw := pairwise.New(eng.Catalog())
	pwY, err := pw.SpMV("m", "vec")
	if err != nil {
		t.Fatal(err)
	}
	cs := colstore.New(eng.Catalog())
	csY, err := cs.SpMV("m", "vec")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for label, got := range map[string]float64{"levelheaded": lh[i], "pairwise": pwY[int64(i)], "colstore": csY[int64(i)]} {
			if math.Abs(got-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("%s y[%d] = %v, want %v", label, i, got, want[i])
			}
		}
	}
}

func TestSpMMAllEnginesAgree(t *testing.T) {
	n := 25
	eng, csr, _ := laCatalog(t, n, 150, 22)
	want := blas.SpGEMM(csr, csr)
	wantSum := 0.0
	wantNNZ := 0
	for r := 0; r < want.Rows; r++ {
		for p := want.RowPtr[r]; p < want.RowPtr[r+1]; p++ {
			if want.Vals[p] != 0 {
				wantNNZ++
			}
			wantSum += want.Vals[p] * float64(int64(r)+2*int64(want.ColIdx[p])+1)
		}
	}
	res, err := eng.Query(`SELECT m1.i, m2.j, sum(m1.v * m2.v) as v
		FROM m as m1, m as m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`)
	if err != nil {
		t.Fatal(err)
	}
	lhSum := 0.0
	for r := 0; r < res.NumRows; r++ {
		lhSum += res.Col("v").F64[r] * float64(res.Col("i").I64[r]+2*res.Col("j").I64[r]+1)
	}
	if math.Abs(lhSum-wantSum) > 1e-6*math.Abs(wantSum) {
		t.Fatalf("levelheaded SpMM checksum %v, want %v", lhSum, wantSum)
	}
	pw := pairwise.New(eng.Catalog())
	nnz, sum, err := pw.SpMM("m", "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-wantSum) > 1e-6*math.Abs(wantSum) {
		t.Fatalf("pairwise SpMM checksum %v, want %v (nnz %d vs %d)", sum, wantSum, nnz, wantNNZ)
	}
	cs := colstore.New(eng.Catalog())
	_, sum2, err := cs.SpMM("m", "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum2-wantSum) > 1e-6*math.Abs(wantSum) {
		t.Fatalf("colstore SpMM checksum %v, want %v", sum2, wantSum)
	}
}

func TestSpMMOOMBudget(t *testing.T) {
	eng, _, _ := laCatalog(t, 20, 150, 23)
	pw := pairwise.New(eng.Catalog())
	if _, _, err := pw.SpMM("m", "m", 5); err == nil {
		t.Error("pairwise SpMM should exceed a tiny budget")
	}
	cs := colstore.New(eng.Catalog())
	if _, _, err := cs.SpMM("m", "m", 5); err == nil {
		t.Error("colstore SpMM should exceed a tiny budget")
	}
}

func TestConvertToCSRMatchesData(t *testing.T) {
	n := 15
	eng, csr, _ := laCatalog(t, n, 60, 24)
	cs := colstore.New(eng.Catalog())
	got, err := cs.ConvertToCSR("m", n, n)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != csr.NNZ() {
		t.Fatalf("nnz = %d, want %d", got.NNZ(), csr.NNZ())
	}
	for r := 0; r <= n; r++ {
		if got.RowPtr[r] != csr.RowPtr[r] {
			t.Fatalf("rowptr[%d] = %d, want %d", r, got.RowPtr[r], csr.RowPtr[r])
		}
	}
}

func TestExplainRendersPlans(t *testing.T) {
	eng := core.New()
	if _, err := tpch.Populate(eng.Catalog(), 0.001, 13); err != nil {
		t.Fatal(err)
	}
	for _, name := range tpch.QueryNames {
		s, err := eng.Explain(tpch.Queries[name])
		if err != nil {
			t.Fatalf("explain %s: %v", name, err)
		}
		if s == "" {
			t.Fatalf("empty explain for %s", name)
		}
	}
	_ = fmt.Sprint() // keep fmt imported for debugging helpers
}
