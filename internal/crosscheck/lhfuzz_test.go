package crosscheck_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/difftest"
)

// TestLhfuzzArtifacts replays every committed shrunken repro under
// testdata/lhfuzz/ through its differential lane. Each artifact is a
// bug the fuzz harness once caught (see the "note" field); a
// regression turns back into a disagreement here, with the engine and
// reference results in the failure message.
func TestLhfuzzArtifacts(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "lhfuzz", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed lhfuzz artifacts found under testdata/lhfuzz")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			c, err := difftest.UnmarshalCase(b)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			out := difftest.RunLane(c)
			switch out.Verdict {
			case difftest.Disagree:
				t.Fatalf("replay disagrees: %s\nSQL: %s\nnote: %s", out.Detail, c.SQL, c.Note)
			case difftest.Skip:
				// A committed artifact must stay inside the supported
				// subset; a skip means the repro silently stopped testing
				// anything.
				t.Fatalf("replay skipped (%s) — artifact no longer exercises the engine", out.Detail)
			}
		})
	}
}
