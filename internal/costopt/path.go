// Access-path selection for the hybrid binary/WCOJ executor. The §V
// icost model prices the generic WCOJ path; the binary hash-join path
// over lazily-built generalized hash tries is priced with the same
// vertex weights but membership-probe constants plus a build-side term:
// a WCOJ node pays the full radix-sort trie build for every relation it
// touches, while the binary path pays only the counting-bucket lazy
// build of the levels it actually probes. Since filtered relations are
// never trie-cached, the build term counts only them — cached builds
// amortize to zero across queries.
package costopt

import (
	"fmt"

	"repro/internal/ghd"
	"repro/internal/planner"
)

// Access-path labels, shared with exec/telemetry/EXPLAIN.
const (
	PathWCOJ   = "wcoj"
	PathBinary = "binary"
)

// Cost constants of the binary path, on the same scale as the Fig. 5a
// icost constants. A lazy-trie membership probe is a dense-array lookup
// at level 0 and a short binary search below, i.e. bitset-probe class
// work per element. The build constants express that a counting-bucket
// pass per level is cheap next to the multi-pass LSD radix sort plus
// dedup scan of a full trie build.
const (
	costLazyProbe   = 2
	costSortBuild   = 6
	costBucketBuild = 2
)

// Drift correction bounds: the observed cost_ratio (actual/estimated,
// PR 7's statement audit) recalibrates the intersection-side estimate,
// clamped so one outlier measurement cannot flip every plan.
const (
	driftMin = 0.5
	driftMax = 2.0
)

// PathInfo is the access-path decision for one GHD node.
type PathInfo struct {
	Path    string // PathWCOJ or PathBinary
	Acyclic bool
	// WCOJCost / BinaryCost are the two priced alternatives (exec +
	// build terms, drift-corrected on the WCOJ side).
	WCOJCost   float64
	BinaryCost float64
	// ProbeCost is the binary path's exec-side term alone (no build):
	// the estimate the runtime audit compares observed probes against,
	// so binary-node cost ratios calibrate the probe model, not the
	// amortized build.
	ProbeCost float64
	// Drift is the clamped cost_ratio correction applied (1 = none).
	Drift float64
}

// String renders the decision for EXPLAIN output.
func (pi *PathInfo) String() string {
	s := fmt.Sprintf("access path=%s (icost: binary=%.0f wcoj=%.0f", pi.Path, pi.BinaryCost, pi.WCOJCost)
	if !pi.Acyclic {
		s += ", cyclic core"
	}
	if pi.Drift != 1 {
		s += fmt.Sprintf(", drift×%.2f", pi.Drift)
	}
	return s + ")"
}

// ClassifyPaths picks an access path for every node of a chosen plan:
// α-acyclic bags (GYO reduction over the node's relation and
// child-result edges) whose build savings beat the WCOJ estimate run as
// a binary hash-join chain over lazy tries; everything else keeps the
// WCOJ path. drift is the statement's observed cost_ratio (0 when
// unknown). The decision is a pure cost choice — the binary navigator
// is value-identical to WCOJ on any shape — so misclassification can
// only cost time, never correctness.
func ClassifyPaths(p *planner.Plan, ch *Choice, drift float64) map[*ghd.Node]*PathInfo {
	out := make(map[*ghd.Node]*PathInfo, len(ch.Orders))
	if p.GHD == nil {
		return out
	}
	c := &chooser{p: p}
	c.relScores()
	corr := 1.0
	if drift > 0 {
		corr = drift
		if corr < driftMin {
			corr = driftMin
		}
		if corr > driftMax {
			corr = driftMax
		}
	}
	p.GHD.Walk(func(n *ghd.Node, _ int) {
		ord := ch.Orders[n]
		if ord == nil {
			return
		}
		edges := c.nodeEdges(n)
		verts := make([][]string, len(edges))
		for i := range edges {
			verts[i] = edges[i].vertices
		}
		pi := &PathInfo{Path: PathWCOJ, Acyclic: ghd.AcyclicHyper(verts), Drift: corr}

		// Build-side terms: only uncacheable (filtered) base relations
		// pay a per-query build; each costs score × levels in the chosen
		// representation.
		var sortBuild, bucketBuild float64
		hasFiltered := false
		for _, ei := range n.Edges {
			r := &p.Rels[ei]
			if r.Filter == nil {
				continue
			}
			hasFiltered = true
			levels := float64(len(r.Vertices))
			sortBuild += float64(c.scores[ei]) * levels * costSortBuild
			bucketBuild += float64(c.scores[ei]) * levels * costBucketBuild
		}

		// Exec-side terms: WCOJ pays the §V intersection estimate
		// (drift-corrected); the binary chain pays (coveringEdges-1)
		// probes per driver element at each vertex.
		var probe float64
		for _, vc := range ord.Per {
			m := 0
			for i := range edges {
				if edges[i].covers(vc.Vertex) {
					m++
				}
			}
			if m > 1 {
				probe += float64(m-1) * costLazyProbe * float64(vc.Weight)
			}
		}
		pi.WCOJCost = ord.Cost*corr + sortBuild
		pi.BinaryCost = probe + bucketBuild
		pi.ProbeCost = probe

		// The binary path is only attractive when a per-query build is
		// being avoided; unfiltered joins keep WCOJ (whose tries are
		// cached, and whose dense shapes feed the BLAS fast paths).
		if pi.Acyclic && hasFiltered && pi.BinaryCost < pi.WCOJCost {
			pi.Path = PathBinary
		}
		out[n] = pi
	})
	return out
}
