// Approximate-tier routing: price an exact evaluation of an
// approx-eligible aggregate against its sketch or sample alternative on
// the same §V icost scale, and route to the approximate tier only when
// the win is decisive. The decision is gated on the caller declaring
// tolerance (QueryOptions.ApproxOK) — this file only prices.
package costopt

import "fmt"

// Approximate-tier route labels.
const (
	RouteExact  = "exact"
	RouteSample = "sample"
	RouteSketch = "sketch"
)

// approxMinRatio is how decisively the approximate candidate must beat
// the exact scan before the tier engages: below 4× the exact answer is
// cheap enough that trading accuracy for it is a bad deal.
const approxMinRatio = 4

// ApproxDecision is the priced exact-vs-approximate choice for one
// approx-eligible query.
type ApproxDecision struct {
	Route string // RouteExact, RouteSample or RouteSketch
	// ExactCost prices the full-table scan the exact evaluator would
	// run: one decoded-column probe per row (bs∩uint class), corrected
	// by the statement's observed cost-ratio drift like ClassifyPaths.
	ExactCost float64
	// ApproxCost prices the chosen alternative: sample rows at the same
	// per-row probe cost, or sketch cells at bitset-probe cost.
	ApproxCost float64
	// Drift is the clamped cost_ratio correction applied (1 = none).
	Drift float64
}

// String renders the decision for EXPLAIN output.
func (d *ApproxDecision) String() string {
	return fmt.Sprintf("approx route=%s (icost: exact=%.0f approx=%.0f, drift×%.2f)",
		d.Route, d.ExactCost, d.ApproxCost, d.Drift)
}

// ChooseApprox prices the exact scan over rows against an approximate
// candidate — a reservoir evaluation over sampleRows when sketchCells
// is 0, a sketch read over sketchCells cells otherwise — and picks a
// route. drift is the statement's observed cost_ratio (0 when unknown),
// applied to the exact side: a statement whose scans run hotter than
// the model thinks degrades sooner.
func ChooseApprox(rows, sampleRows, sketchCells int, drift float64) *ApproxDecision {
	corr := 1.0
	if drift > 0 {
		corr = drift
		if corr < driftMin {
			corr = driftMin
		}
		if corr > driftMax {
			corr = driftMax
		}
	}
	d := &ApproxDecision{Route: RouteExact, Drift: corr}
	d.ExactCost = float64(rows) * costBsUint * corr
	if sketchCells > 0 {
		d.ApproxCost = float64(sketchCells) * costBsBs
		if d.ExactCost >= approxMinRatio*d.ApproxCost {
			d.Route = RouteSketch
		}
		return d
	}
	d.ApproxCost = float64(sampleRows) * costBsUint
	if d.ExactCost >= approxMinRatio*d.ApproxCost {
		d.Route = RouteSample
	}
	return d
}
