// Package costopt implements LevelHeaded's cost-based optimizer for
// WCOJ attribute ordering (paper §V) — the first of its kind. For each
// GHD node it enumerates the attribute orders that satisfy the
// materialized-attributes-first rule (plus the §V-A2 one-attribute-union
// relaxation) and scores each with
//
//	cost = Σ_i icost(v_i) × weight(v_i)
//
// where icost follows Observation 5.1 (a relation's first trie level is
// likely a bitset, the rest uints; icost(bs∩bs)=1, icost(bs∩uint)=10,
// icost(uint∩uint)=50; completely dense relations cost 0) and weight
// follows Observation 5.2 (highest-cardinality attributes first:
// relation scores are cardinalities relative to the heaviest relation,
// a vertex takes its max-score edge under an equality selection and its
// min-score edge otherwise).
package costopt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ghd"
	"repro/internal/planner"
	"repro/internal/set"
)

// Intersection cost constants from Fig. 5a.
const (
	costBsBs     = 1
	costBsUint   = 10
	costUintUint = 50
)

// VertexCost records the per-attribute cost terms for EXPLAIN output
// and the Fig. 5b/5c experiments.
type VertexCost struct {
	Vertex string
	ICost  int
	Weight int
}

// Order is a chosen attribute order for one GHD node.
type Order struct {
	// Attrs is the execution order of the node's vertices.
	Attrs []string
	// MatSet marks which attrs are materialized (output) at this node.
	MatSet map[string]bool
	// Relaxed marks the §V-A2 shape: the last attribute is materialized,
	// the second-to-last projected away, executed with a 1-attribute
	// union.
	Relaxed bool
	Cost    float64
	Per     []VertexCost
}

// String renders the order for EXPLAIN output.
func (o *Order) String() string {
	s := fmt.Sprintf("order=%v cost=%.0f", o.Attrs, o.Cost)
	if o.Relaxed {
		s += " (relaxed: 1-attr union)"
	}
	return s
}

// Choice holds the per-node orders of a plan, plus the access-path
// decisions of the hybrid executor (populated by ClassifyPaths; nil
// or missing entries mean the WCOJ path).
type Choice struct {
	Orders map[*ghd.Node]*Order
	Paths  map[*ghd.Node]*PathInfo
}

// Options configures order selection.
type Options struct {
	// Disabled selects orders the way EmptyHeaded might: bag order with
	// materialized attributes first, no cost model, no relaxation. Used
	// for the LogicBlox comparison column and the Table III ablation.
	Disabled bool
	// PickWorst selects the highest-cost valid order instead of the
	// lowest (the "-Attr. Ord." rows of Table III).
	PickWorst bool
	// Forced pins the order of the root node (Fig. 5b/5c experiments).
	// The listed attributes must be a permutation of the root bag.
	Forced []string
	// ForcedRelaxed marks the forced order as a relaxed (1-attr union)
	// order.
	ForcedRelaxed bool
}

// nodeEdge is one relation (or child-result) edge visible to a node.
type nodeEdge struct {
	name     string
	vertices []string
	score    int
	selected bool
	dense    bool
}

func (e *nodeEdge) covers(v string) bool {
	for _, x := range e.vertices {
		if x == v {
			return true
		}
	}
	return false
}

// Choose selects an attribute order for every node of the plan's GHD.
func Choose(p *planner.Plan, opts Options) (*Choice, error) {
	if p.GHD == nil {
		return &Choice{Orders: map[*ghd.Node]*Order{}}, nil
	}
	c := &chooser{p: p, opts: opts, out: &Choice{Orders: map[*ghd.Node]*Order{}}, globalPos: map[string]int{}}
	c.relScores()
	if err := c.walk(p.GHD.Root, nil); err != nil {
		return nil, err
	}
	return c.out, nil
}

type chooser struct {
	p         *planner.Plan
	opts      Options
	out       *Choice
	scores    []int
	dense     []bool
	globalPos map[string]int
	globalSeq int
}

// relScores computes each relation's cardinality score (§V-B) and its
// complete-density flag.
func (c *chooser) relScores() {
	maxCard := 1
	for i := range c.p.Rels {
		if n := c.p.Rels[i].Table.LiveRows(); n > maxCard {
			maxCard = n
		}
	}
	c.scores = make([]int, len(c.p.Rels))
	c.dense = make([]bool, len(c.p.Rels))
	for i := range c.p.Rels {
		r := &c.p.Rels[i]
		c.scores[i] = int(math.Ceil(float64(r.Table.LiveRows()) / float64(maxCard) * 100))
		if c.scores[i] < 1 {
			c.scores[i] = 1
		}
		c.dense[i] = relCompletelyDense(r)
	}
}

// relCompletelyDense reports whether the relation's key structure is a
// full cross product of its join domains — the icost-0 case (§V-A1).
func relCompletelyDense(r *planner.RelInfo) bool {
	if len(r.PseudoVertices) > 0 || len(r.Vertices) == 0 {
		return false
	}
	prod := 1.0
	live := r.Table.Live()
	for _, v := range r.Vertices {
		col := live.Col(r.VertexCol[v])
		if col == nil || col.Dict() == nil {
			return false
		}
		prod *= float64(col.Dict().Len())
		if prod > 1e15 {
			return false
		}
	}
	// A filter can break density, so require unfiltered too.
	return r.Filter == nil && prod == float64(live.NumRows)
}

// nodeEdges assembles the edges visible to a node: its relations plus
// one pseudo-edge per child result.
func (c *chooser) nodeEdges(n *ghd.Node) []nodeEdge {
	var edges []nodeEdge
	for _, ei := range n.Edges {
		r := &c.p.Rels[ei]
		edges = append(edges, nodeEdge{
			name:     r.Alias,
			vertices: append([]string(nil), r.Vertices...),
			score:    c.scores[ei],
			selected: r.HasEqualitySelection,
			dense:    c.dense[ei],
		})
	}
	for _, ch := range n.Children {
		shared := intersectStrs(n.Bag, ch.Bag)
		edges = append(edges, nodeEdge{
			name:     "child",
			vertices: shared,
			score:    c.subtreeMinScore(ch),
			selected: c.subtreeSelected(ch),
		})
	}
	return edges
}

func (c *chooser) subtreeMinScore(n *ghd.Node) int {
	s := 101
	var rec func(n *ghd.Node)
	rec = func(n *ghd.Node) {
		for _, ei := range n.Edges {
			if c.scores[ei] < s {
				s = c.scores[ei]
			}
		}
		for _, ch := range n.Children {
			rec(ch)
		}
	}
	rec(n)
	if s > 100 {
		s = 1
	}
	return s
}

func (c *chooser) subtreeSelected(n *ghd.Node) bool {
	for _, ei := range n.Edges {
		if c.p.Rels[ei].HasEqualitySelection {
			return true
		}
	}
	for _, ch := range n.Children {
		if c.subtreeSelected(ch) {
			return true
		}
	}
	return false
}

// walk assigns orders top-down so materialized attributes keep a
// consistent global order across nodes.
func (c *chooser) walk(n *ghd.Node, parent *ghd.Node) error {
	mat := c.materializedAt(n, parent)
	edges := c.nodeEdges(n)
	var chosen *Order
	if parent == nil && len(c.opts.Forced) > 0 {
		if err := validatePerm(c.opts.Forced, n.Bag); err != nil {
			return err
		}
		chosen = c.scoreOrder(c.opts.Forced, mat, edges, c.opts.ForcedRelaxed)
	} else {
		cands := c.candidates(n, mat, edges)
		if len(cands) == 0 {
			return fmt.Errorf("costopt: no valid order for node %v", n.Bag)
		}
		chosen = cands[0]
		for _, cand := range cands[1:] {
			if c.opts.PickWorst {
				if cand.Cost > chosen.Cost {
					chosen = cand
				}
			} else if better(cand, chosen) {
				chosen = cand
			}
		}
	}
	c.out.Orders[n] = chosen
	// Record global positions of materialized attributes.
	for _, v := range chosen.Attrs {
		if chosen.MatSet[v] {
			if _, ok := c.globalPos[v]; !ok {
				c.globalPos[v] = c.globalSeq
				c.globalSeq++
			}
		}
	}
	for _, ch := range n.Children {
		if err := c.walk(ch, n); err != nil {
			return err
		}
	}
	return nil
}

// better orders candidates: primarily by cost; cost ties break by
// Observation 5.2 directly — the heavier (higher-weight) attributes
// should come first, so the weight sequence is compared for
// lexicographically *descending* preference. (The icost × weight sum is
// position-independent, so without this tie-break a low-cardinality
// materialized attribute could land in the outer loop and multiply the
// work of every inner intersection.)
func better(a, b *Order) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	for i := range a.Per {
		if i >= len(b.Per) {
			break
		}
		if a.Per[i].Weight != b.Per[i].Weight {
			return a.Per[i].Weight > b.Per[i].Weight
		}
	}
	return false
}

// materializedAt computes the vertices a node must materialize: the
// plan's output vertices for the root, the parent-shared vertices for
// inner nodes (both restricted to the bag).
func (c *chooser) materializedAt(n *ghd.Node, parent *ghd.Node) map[string]bool {
	mat := map[string]bool{}
	if parent == nil {
		for _, v := range c.p.OutVertices {
			if containsStr(n.Bag, v) {
				mat[v] = true
			}
		}
	} else {
		for _, v := range intersectStrs(n.Bag, parent.Bag) {
			mat[v] = true
		}
	}
	return mat
}

// candidates enumerates valid orders: permutations with materialized
// attributes first (respecting the global order), plus relaxed variants.
func (c *chooser) candidates(n *ghd.Node, mat map[string]bool, edges []nodeEdge) []*Order {
	var matAttrs, projAttrs []string
	for _, v := range n.Bag {
		if mat[v] {
			matAttrs = append(matAttrs, v)
		} else {
			projAttrs = append(projAttrs, v)
		}
	}
	var out []*Order
	if c.opts.Disabled {
		// EmptyHeaded-style: bag order, materialized first, no cost model.
		order := append(append([]string(nil), matAttrs...), projAttrs...)
		return []*Order{c.scoreOrder(order, mat, edges, false)}
	}
	matPerms := permsRespecting(matAttrs, c.globalPos)
	projPerms := perms(projAttrs)
	for _, mp := range matPerms {
		for _, pp := range projPerms {
			order := append(append([]string(nil), mp...), pp...)
			out = append(out, c.scoreOrder(order, mat, edges, false))
			// §V-A2 relaxation: exactly one projected attribute at the
			// end, preceded by a materialized one — consider the swap.
			if len(pp) == 1 && len(mp) >= 1 {
				sw := append([]string(nil), order...)
				last := len(sw) - 1
				sw[last], sw[last-1] = sw[last-1], sw[last]
				out = append(out, c.scoreOrder(sw, mat, edges, true))
			}
		}
	}
	return out
}

// scoreOrder computes the §V cost of one attribute order.
func (c *chooser) scoreOrder(order []string, mat map[string]bool, edges []nodeEdge, relaxed bool) *Order {
	o := &Order{Attrs: order, MatSet: mat, Relaxed: relaxed}
	seen := make([]bool, len(edges))
	for _, v := range order {
		var layouts []int // 0 = bs, 1 = uint
		weightLo, weightHi := 101, 0
		selectedVertex := false
		nEdges := 0
		for ei := range edges {
			e := &edges[ei]
			if !e.covers(v) {
				continue
			}
			nEdges++
			if e.score < weightLo {
				weightLo = e.score
			}
			if e.score > weightHi {
				weightHi = e.score
			}
			if e.selected {
				selectedVertex = true
			}
			if !e.dense {
				if seen[ei] {
					layouts = append(layouts, 1)
				} else {
					layouts = append(layouts, 0)
				}
			}
		}
		for ei := range edges {
			if edges[ei].covers(v) {
				seen[ei] = true
			}
		}
		ic := icostOf(layouts)
		w := weightLo
		if selectedVertex {
			w = weightHi
		}
		if nEdges == 0 {
			w = 1
		}
		o.Per = append(o.Per, VertexCost{Vertex: v, ICost: ic, Weight: w})
		o.Cost += float64(ic * w)
	}
	return o
}

// icostOf computes the N-way intersection cost: bitsets first, pairwise
// accumulation with uint = l(bs ∩ uint) (§V-A1).
func icostOf(layouts []int) int {
	if len(layouts) < 2 {
		return 0
	}
	sort.Ints(layouts) // bs (0) first
	cost := 0
	cur := layouts[0]
	for _, l := range layouts[1:] {
		switch {
		case cur == 0 && l == 0:
			cost += costBsBs
			cur = 0
		case cur == 1 && l == 1:
			cost += costUintUint
			cur = 1
		default:
			cost += costBsUint
			cur = 1 // uint = l(bs ∩ uint)
		}
	}
	return cost
}

// perms enumerates permutations (n ≤ 7 in practice).
func perms(items []string) [][]string {
	if len(items) == 0 {
		return [][]string{nil}
	}
	var out [][]string
	var rec func(cur []string, rest []string)
	rec = func(cur []string, rest []string) {
		if len(rest) == 0 {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for i := range rest {
			next := append([]string(nil), rest[:i]...)
			next = append(next, rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, items)
	return out
}

// permsRespecting enumerates permutations consistent with previously
// assigned global positions (attributes without positions are free).
func permsRespecting(items []string, pos map[string]int) [][]string {
	all := perms(items)
	var out [][]string
	for _, p := range all {
		ok := true
		last := -1
		for _, v := range p {
			if gp, has := pos[v]; has {
				if gp < last {
					ok = false
					break
				}
				last = gp
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	return out
}

func validatePerm(order, bag []string) error {
	if len(order) != len(bag) {
		return fmt.Errorf("costopt: forced order %v is not a permutation of %v", order, bag)
	}
	have := map[string]bool{}
	for _, v := range bag {
		have[v] = true
	}
	for _, v := range order {
		if !have[v] {
			return fmt.Errorf("costopt: forced order attribute %q not in bag %v", v, bag)
		}
	}
	return nil
}

func containsStr(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func intersectStrs(a, b []string) []string {
	var out []string
	for _, x := range a {
		if containsStr(b, x) {
			out = append(out, x)
		}
	}
	return out
}

// ObservedCost maps measured kernel counts onto the Fig. 5a icost
// scale: each executed intersection weighted by its layout-pair
// constant. This is the "actual" side of the estimate-vs-actual audit —
// the model's Order.Cost predicts Σ icost×weight from cardinality
// scores before running; ObservedCost reprices the intersections the
// node really performed with the same icost constants, so their ratio
// is a per-shape calibration signal (stable ≈ model tracks the data;
// drifting across epochs ≈ appends/compaction changed the workload
// under the plan).
func ObservedCost(st *set.Stats) float64 {
	return float64(st.BsBs)*costBsBs +
		float64(st.BsUint)*costBsUint +
		float64(st.UintUintMerge+st.UintUintGallop)*costUintUint +
		float64(st.Probes)*costLazyProbe
}

// RelaxedValid reports whether an order satisfies the §V-A2 execution
// conditions given its materialized set.
func RelaxedValid(o *Order) bool {
	n := len(o.Attrs)
	if n < 2 {
		return false
	}
	return o.MatSet[o.Attrs[n-1]] && !o.MatSet[o.Attrs[n-2]]
}
