package costopt

import (
	"reflect"
	"testing"

	"repro/internal/planner"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// laCatalog holds a sparse matrix (COO) and a dense matrix with sizes
// mimicking the paper's shapes.
func laCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	sparse, err := cat.Create(storage.Schema{Name: "m", Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := cat.Create(storage.Schema{Name: "d", Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: "ddim"},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "ddim"},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Sparse: 8x8 with a band; not all pairs present.
	for i := int64(0); i < 8; i++ {
		_ = sparse.AppendRow(i, i, 1.0)
		if i+1 < 8 {
			_ = sparse.AppendRow(i, i+1, 0.5)
		}
	}
	// Dense: full 4x4.
	for i := int64(0); i < 4; i++ {
		for j := int64(0); j < 4; j++ {
			_ = dense.AppendRow(i, j, float64(i*4+j))
		}
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	return cat
}

func planFor(t *testing.T, cat *storage.Catalog, sql string) *planner.Plan {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := planner.Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const smmSQL = `SELECT m1.i, m2.j, sum(m1.v * m2.v) as v
	FROM m as m1, m as m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`

func TestSpGEMMPrefersRelaxedIKJ(t *testing.T) {
	cat := laCatalog(t)
	p := planFor(t, cat, smmSQL)
	ch, err := Choose(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := ch.Orders[p.GHD.Root]
	if o == nil {
		t.Fatal("no root order")
	}
	// The §V-A2 result: [i, k, j] with the 1-attribute union beats
	// [i, j, k] (uint∩uint on k). The middle attribute must be the shared
	// (projected) one and Relaxed must be set.
	if !o.Relaxed {
		t.Fatalf("expected relaxed order, got %s", o)
	}
	if !o.MatSet[o.Attrs[0]] || o.MatSet[o.Attrs[1]] || !o.MatSet[o.Attrs[2]] {
		t.Fatalf("expected [mat, proj, mat] shape, got %s (mat=%v)", o, o.MatSet)
	}
	// Cost comparison against the default ijk order.
	chDefault, err := Choose(p, Options{Forced: []string{o.Attrs[0], o.Attrs[2], o.Attrs[1]}})
	if err != nil {
		t.Fatal(err)
	}
	ijk := chDefault.Orders[p.GHD.Root]
	if ijk.Cost <= o.Cost {
		t.Fatalf("ijk cost %v should exceed relaxed ikj cost %v", ijk.Cost, o.Cost)
	}
}

func TestDenseRelationICostZero(t *testing.T) {
	cat := laCatalog(t)
	p := planFor(t, cat, `SELECT d1.i, d2.j, sum(d1.v * d2.v) as v
		FROM d as d1, d as d2 WHERE d1.j = d2.i GROUP BY d1.i, d2.j`)
	ch, err := Choose(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := ch.Orders[p.GHD.Root]
	// Every vertex of a completely dense join costs 0.
	if o.Cost != 0 {
		t.Fatalf("dense matmul cost = %v, want 0 (%+v)", o.Cost, o.Per)
	}
}

func TestDisabledUsesBagOrder(t *testing.T) {
	cat := laCatalog(t)
	p := planFor(t, cat, smmSQL)
	ch, err := Choose(p, Options{Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	o := ch.Orders[p.GHD.Root]
	if o.Relaxed {
		t.Fatal("disabled optimizer must not relax")
	}
	// Materialized attrs first, in bag order.
	var wantMat []string
	for _, v := range p.GHD.Root.Bag {
		if o.MatSet[v] {
			wantMat = append(wantMat, v)
		}
	}
	if !reflect.DeepEqual(o.Attrs[:len(wantMat)], wantMat) {
		t.Fatalf("disabled order = %v, want prefix %v", o.Attrs, wantMat)
	}
}

func TestPickWorstIsWorse(t *testing.T) {
	cat := laCatalog(t)
	p := planFor(t, cat, smmSQL)
	best, err := Choose(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := Choose(p, Options{PickWorst: true})
	if err != nil {
		t.Fatal(err)
	}
	if worst.Orders[p.GHD.Root].Cost < best.Orders[p.GHD.Root].Cost {
		t.Fatalf("worst cost %v < best cost %v", worst.Orders[p.GHD.Root].Cost, best.Orders[p.GHD.Root].Cost)
	}
}

func TestForcedOrderValidation(t *testing.T) {
	cat := laCatalog(t)
	p := planFor(t, cat, smmSQL)
	if _, err := Choose(p, Options{Forced: []string{"nope", "x", "y"}}); err == nil {
		t.Error("bad forced order should error")
	}
	if _, err := Choose(p, Options{Forced: []string{"dim"}}); err == nil {
		t.Error("short forced order should error")
	}
}

func TestICostOf(t *testing.T) {
	cases := []struct {
		layouts []int
		want    int
	}{
		{nil, 0},
		{[]int{0}, 0},
		{[]int{0, 0}, 1},
		{[]int{0, 1}, 10},
		{[]int{1, 1}, 50},
		{[]int{0, 0, 1}, 11},  // Example 5.1's nationkey: bs∩bs then ∩uint
		{[]int{1, 1, 1}, 100}, // uint∩uint → uint, ∩uint again
		{[]int{0, 1, 1}, 60},  // bs∩uint → uint, ∩uint
	}
	for _, c := range cases {
		if got := icostOf(append([]int(nil), c.layouts...)); got != c.want {
			t.Errorf("icostOf(%v) = %d, want %d", c.layouts, got, c.want)
		}
	}
}

func TestScoresExample53(t *testing.T) {
	// Verify the §V-B score formula on the paper's relative cardinalities
	// (lineitem : orders : customer : supplier ≈ 100 : 26 : 3 : 1).
	cat := storage.NewCatalog()
	li, _ := cat.Create(storage.Schema{Name: "li", Cols: []storage.ColumnDef{
		{Name: "a", Kind: storage.Int64, Role: storage.Key, Domain: "ka"},
		{Name: "b", Kind: storage.Int64, Role: storage.Key, Domain: "kb"},
	}})
	or, _ := cat.Create(storage.Schema{Name: "or_t", Cols: []storage.ColumnDef{
		{Name: "b2", Kind: storage.Int64, Role: storage.Key, Domain: "kb"},
		{Name: "c", Kind: storage.Int64, Role: storage.Key, Domain: "kc"},
	}})
	for i := int64(0); i < 400; i++ {
		_ = li.AppendRow(i%20, i%40)
	}
	for i := int64(0); i < 103; i++ {
		_ = or.AppendRow(i%40, i%10)
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	p := planFor(t, cat, `SELECT a, sum(1) as s FROM li, or_t WHERE li.b = or_t.b2 GROUP BY a`)
	c := &chooser{p: p, out: &Choice{Orders: nil}, globalPos: map[string]int{}}
	c.relScores()
	liIdx, orIdx := p.RelIndex("li"), p.RelIndex("or_t")
	if c.scores[liIdx] != 100 {
		t.Errorf("lineitem score = %d, want 100", c.scores[liIdx])
	}
	if c.scores[orIdx] != 26 { // ceil(103/400*100) = 26
		t.Errorf("orders score = %d, want 26", c.scores[orIdx])
	}
}

func TestHighestCardinalityFirst(t *testing.T) {
	// Observation 5.2 on a Q5-like two-relation join: the heavy shared
	// vertex should come first in the chosen order.
	cat := storage.NewCatalog()
	li, _ := cat.Create(storage.Schema{Name: "li", Cols: []storage.ColumnDef{
		{Name: "ok", Kind: storage.Int64, Role: storage.Key, Domain: "orderkey"},
		{Name: "sk", Kind: storage.Int64, Role: storage.Key, Domain: "suppkey"},
		{Name: "p", Kind: storage.Float64, Role: storage.Annotation},
	}})
	su, _ := cat.Create(storage.Schema{Name: "su", Cols: []storage.ColumnDef{
		{Name: "sk2", Kind: storage.Int64, Role: storage.Key, Domain: "suppkey", PK: true},
		{Name: "nk", Kind: storage.Int64, Role: storage.Key, Domain: "nationkey"},
	}})
	or, _ := cat.Create(storage.Schema{Name: "ord", Cols: []storage.ColumnDef{
		{Name: "ok2", Kind: storage.Int64, Role: storage.Key, Domain: "orderkey", PK: true},
		{Name: "ck", Kind: storage.Int64, Role: storage.Key, Domain: "custkey"},
	}})
	for i := int64(0); i < 1000; i++ {
		_ = li.AppendRow(i%250, i%10, 1.0)
	}
	for i := int64(0); i < 10; i++ {
		_ = su.AppendRow(i, i%3)
	}
	for i := int64(0); i < 250; i++ {
		_ = or.AppendRow(i, i%50)
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	p := planFor(t, cat, `SELECT ck, sum(p) as s FROM li, su, ord
		WHERE li.sk = su.sk2 AND li.ok = ord.ok2 GROUP BY ck`)
	ch, err := Choose(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := ch.Orders[p.GHD.Root]
	// Among projected attributes, orderkey (weight 25) must precede
	// suppkey and nationkey (weight 1).
	posOf := func(v string) int {
		for i, a := range o.Attrs {
			if a == v {
				return i
			}
		}
		return -1
	}
	if posOf("orderkey") > posOf("suppkey") {
		t.Fatalf("orderkey should precede suppkey in %v (weights %v)", o.Attrs, o.Per)
	}
}

func TestRelaxedValid(t *testing.T) {
	mat := map[string]bool{"i": true, "j": true}
	ok := &Order{Attrs: []string{"i", "k", "j"}, MatSet: mat}
	if !RelaxedValid(ok) {
		t.Error("[i,k,j] with mat {i,j} should be a valid relaxed shape")
	}
	bad := &Order{Attrs: []string{"i", "j", "k"}, MatSet: mat}
	if RelaxedValid(bad) {
		t.Error("[i,j,k] ends with a projected attribute: not relaxed-valid")
	}
	short := &Order{Attrs: []string{"i"}, MatSet: mat}
	if RelaxedValid(short) {
		t.Error("single attribute cannot be relaxed")
	}
}

func TestBetterTieBreakPrefersHeavyFirst(t *testing.T) {
	a := &Order{Cost: 100, Per: []VertexCost{{Vertex: "x", Weight: 50}, {Vertex: "y", Weight: 1}}}
	b := &Order{Cost: 100, Per: []VertexCost{{Vertex: "y", Weight: 1}, {Vertex: "x", Weight: 50}}}
	if !better(a, b) {
		t.Error("equal cost: the heavier-first order should win (Observation 5.2)")
	}
	if better(b, a) {
		t.Error("tie-break should be asymmetric")
	}
	c := &Order{Cost: 99, Per: b.Per}
	if !better(c, a) {
		t.Error("lower cost always wins")
	}
}
