package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/storage"
)

// approxEngine builds an engine with one fact table of n rows:
// k (int key), v (int annotation, i%50), s (string annotation, 8
// distinct), f (float annotation).
func approxEngine(t *testing.T, n int, opts ...Option) *Engine {
	t.Helper()
	eng := New(opts...)
	tab, err := eng.CreateTable(storage.Schema{Name: "facts", Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: "dk"},
		{Name: "v", Kind: storage.Int64, Role: storage.Annotation},
		{Name: "s", Kind: storage.String, Role: storage.Annotation},
		{Name: "f", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"ash", "birch", "cedar", "elm", "fir", "oak", "pine", "yew"}
	for i := 0; i < n; i++ {
		if err := tab.Append(int64(i), int64(i%50), names[i%len(names)], float64(i%10)); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func scalarF(t *testing.T, eng *Engine, sql string, qo QueryOptions) (float64, *obs.QueryStats) {
	t.Helper()
	res, err := eng.QueryWithContext(context.Background(), sql, qo)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if res.NumRows != 1 || len(res.Cols) != 1 {
		t.Fatalf("%s: want 1x1 result, got %dx%d", sql, res.NumRows, len(res.Cols))
	}
	return res.Cols[0].F64[0], res.Stats
}

func TestCountDistinctExactDefault(t *testing.T) {
	eng := approxEngine(t, 500)
	got, st := scalarF(t, eng, "SELECT count(distinct v) AS c FROM facts", QueryOptions{})
	if got != 50 {
		t.Fatalf("count(distinct v) = %v, want 50", got)
	}
	if st.Approx {
		t.Fatal("exact distinct scan reported Approx=true")
	}
	if st.Dispatch != obs.DispatchDistinctScan {
		t.Fatalf("dispatch = %q, want %q", st.Dispatch, obs.DispatchDistinctScan)
	}
	if st.ErrorBound != 0 || st.Confidence != 0 {
		t.Fatalf("exact answer advertised bounds: %v / %v", st.ErrorBound, st.Confidence)
	}

	// Filtered distinct stays exact (no sketch covers a filter).
	got, st = scalarF(t, eng, "SELECT count(distinct v) AS c FROM facts WHERE v < 10", QueryOptions{ApproxOK: true})
	if got != 10 || st.Approx {
		t.Fatalf("filtered distinct = %v approx=%t, want 10 exact", got, st.Approx)
	}

	// Grouped distinct works through the same scan.
	res, err := eng.Query("SELECT s, count(distinct v) AS c FROM facts GROUP BY s")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 8 {
		t.Fatalf("grouped distinct rows = %d, want 8", res.NumRows)
	}
}

func TestApproxHLLRoute(t *testing.T) {
	eng := approxEngine(t, 4000)
	exact, _ := scalarF(t, eng, "SELECT count(distinct k) AS c FROM facts", QueryOptions{})
	if exact != 4000 {
		t.Fatalf("exact distinct k = %v", exact)
	}
	got, st := scalarF(t, eng, "SELECT count(distinct k) AS c FROM facts", QueryOptions{ApproxOK: true})
	if !st.Approx {
		t.Fatalf("4000-row distinct under ApproxOK stayed exact (dispatch %s)", st.Dispatch)
	}
	if st.Dispatch != obs.DispatchApproxHLL {
		t.Fatalf("dispatch = %q, want %q", st.Dispatch, obs.DispatchApproxHLL)
	}
	if st.ErrorBound <= 0 || st.Confidence != 0.999 {
		t.Fatalf("bound=%v confidence=%v", st.ErrorBound, st.Confidence)
	}
	if math.Abs(got-exact) > st.ErrorBound {
		t.Fatalf("HLL estimate %v off exact %v beyond bound %v", got, exact, st.ErrorBound)
	}
}

func TestApproxSampleRoute(t *testing.T) {
	eng := approxEngine(t, 2000, WithApproxSampleRows(64))
	const q = "SELECT count(*) AS c, sum(f) AS s FROM facts WHERE v < 25"
	res, err := eng.QueryWith(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exactC := res.Col("c").F64[0]
	exactS := res.Col("s").F64[0]

	ares, err := eng.QueryWith(q, QueryOptions{ApproxOK: true})
	if err != nil {
		t.Fatal(err)
	}
	st := ares.Stats
	if !st.Approx || st.Dispatch != obs.DispatchApproxSample {
		t.Fatalf("approx=%t dispatch=%q, want sample route", st.Approx, st.Dispatch)
	}
	if len(st.ErrorBounds) != 2 {
		t.Fatalf("per-column bounds = %v", st.ErrorBounds)
	}
	gotC := ares.Col("c").F64[0]
	gotS := ares.Col("s").F64[0]
	if math.Abs(gotC-exactC) > st.ErrorBounds[0] {
		t.Fatalf("count %v off exact %v beyond bound %v", gotC, exactC, st.ErrorBounds[0])
	}
	if math.Abs(gotS-exactS) > st.ErrorBounds[1] {
		t.Fatalf("sum %v off exact %v beyond bound %v", gotS, exactS, st.ErrorBounds[1])
	}

	// min/max shapes have no sample estimator: they stay exact on the
	// normal pipeline even under ApproxOK.
	mres, err := eng.QueryWith("SELECT max(f) AS m FROM facts", QueryOptions{ApproxOK: true})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Stats.Approx {
		t.Fatal("max() routed approximate")
	}
	if mres.Col("m").F64[0] != 9 {
		t.Fatalf("max(f) = %v", mres.Col("m").F64[0])
	}
}

func TestApproxCMSRoute(t *testing.T) {
	eng := approxEngine(t, 4000)
	const q = "SELECT s, count(*) AS c FROM facts GROUP BY s"
	res, err := eng.QueryWith(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exact := map[string]float64{}
	for i := 0; i < res.NumRows; i++ {
		exact[res.Col("s").Str[i]] = res.Col("c").F64[i]
	}

	ares, err := eng.QueryWith(q, QueryOptions{ApproxOK: true})
	if err != nil {
		t.Fatal(err)
	}
	st := ares.Stats
	if !st.Approx || st.Dispatch != obs.DispatchApproxCMS {
		t.Fatalf("approx=%t dispatch=%q, want cms route", st.Approx, st.Dispatch)
	}
	// Every heavy hitter (all 8 groups are 500 rows >> MissBound) must
	// surface, with its count within the CMS bound.
	if ares.NumRows != 8 {
		t.Fatalf("cms groups = %d, want 8 (miss bound %v)", ares.NumRows, st.MissBound)
	}
	for i := 0; i < ares.NumRows; i++ {
		name := ares.Col("s").Str[i]
		got := ares.Col("c").F64[i]
		want, ok := exact[name]
		if !ok {
			t.Fatalf("cms invented group %q", name)
		}
		if math.Abs(got-want) > st.ErrorBound {
			t.Fatalf("group %q count %v off exact %v beyond bound %v", name, got, want, st.ErrorBound)
		}
	}
}

func TestApproxOptInIsBitIdentical(t *testing.T) {
	// Below every route threshold, ApproxOK must change nothing.
	eng := approxEngine(t, 200)
	for _, q := range []string{
		"SELECT count(*) AS c FROM facts",
		"SELECT sum(f) AS s FROM facts WHERE v < 10",
		"SELECT s, count(*) AS c FROM facts GROUP BY s",
	} {
		r1, err := eng.QueryWith(q, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := eng.QueryWith(q, QueryOptions{ApproxOK: true})
		if err != nil {
			t.Fatal(err)
		}
		if r2.Stats.Approx {
			t.Fatalf("%s: tiny table routed approximate", q)
		}
		if r1.NumRows != r2.NumRows {
			t.Fatalf("%s: row counts differ", q)
		}
		for ci := range r1.Cols {
			for ri := range r1.Cols[ci].F64 {
				b1 := math.Float64bits(r1.Cols[ci].F64[ri])
				b2 := math.Float64bits(r2.Cols[ci].F64[ri])
				if b1 != b2 {
					t.Fatalf("%s: col %d row %d differ bitwise", q, ci, ri)
				}
			}
		}
	}
}

func TestApproxSummaryFollowsAppends(t *testing.T) {
	eng := approxEngine(t, 4000)
	got, _ := scalarF(t, eng, "SELECT count(distinct k) AS c FROM facts", QueryOptions{ApproxOK: true})
	if math.Abs(got-4000) > 400 {
		t.Fatalf("initial estimate %v", got)
	}
	// Double the key range through the delta store: the summary must
	// extend over the appended suffix without a rebuild.
	tab := eng.Catalog().Table("facts")
	for i := 4000; i < 8000; i++ {
		if err := tab.Append(int64(i), int64(i%50), "oak", 1.0); err != nil {
			t.Fatal(err)
		}
	}
	got, st := scalarF(t, eng, "SELECT count(distinct k) AS c FROM facts", QueryOptions{ApproxOK: true})
	if math.Abs(got-8000) > st.ErrorBound {
		t.Fatalf("post-append estimate %v (bound %v), want ~8000", got, st.ErrorBound)
	}
	// Compact refreshes the summary; the answer must not regress.
	if err := eng.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	got2, st2 := scalarF(t, eng, "SELECT count(distinct k) AS c FROM facts", QueryOptions{ApproxOK: true})
	if got2 != got {
		t.Fatalf("estimate moved across compact: %v -> %v", got, got2)
	}
	if math.Abs(got2-8000) > st2.ErrorBound {
		t.Fatalf("post-compact estimate %v beyond bound %v", got2, st2.ErrorBound)
	}
}

func TestApproxDegradeUnderOverload(t *testing.T) {
	eng := approxEngine(t, 4000, WithMaxConcurrency(1), WithQueueDepth(0))
	// Saturate the only admission slot directly.
	release, err := eng.gov.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// Exact-only queries shed.
	_, err = eng.QueryWith("SELECT count(*) AS c FROM facts", QueryOptions{})
	var oe *qerr.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("want OverloadedError, got %v", err)
	}

	// Opted-in queries degrade to the approximate tier instead.
	res, err := eng.QueryWith("SELECT count(distinct k) AS c FROM facts", QueryOptions{ApproxOK: true})
	if err != nil {
		t.Fatalf("degrade failed: %v", err)
	}
	st := res.Stats
	if !st.Approx || !st.Degraded {
		t.Fatalf("approx=%t degraded=%t, want both", st.Approx, st.Degraded)
	}
	if math.Abs(res.Cols[0].F64[0]-4000) > st.ErrorBound {
		t.Fatalf("degraded estimate %v beyond bound %v", res.Cols[0].F64[0], st.ErrorBound)
	}

	// Opted-in but unboundable shapes (min/max) still shed.
	_, err = eng.QueryWith("SELECT max(f) AS m FROM facts", QueryOptions{ApproxOK: true})
	if !errors.As(err, &oe) {
		t.Fatalf("unboundable degrade: want OverloadedError, got %v", err)
	}

	counters := map[string]int64{}
	for k, v := range eng.approxCounters() {
		counters[k] = v
	}
	if counters["approx_degraded_total"] != 1 {
		t.Fatalf("approx_degraded_total = %d, want 1", counters["approx_degraded_total"])
	}
}

func TestExplainApproxShapes(t *testing.T) {
	eng := approxEngine(t, 4000)
	plan, err := eng.Explain("SELECT count(distinct k) AS c FROM facts")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "approx shape") || !strings.Contains(plan, "route") {
		t.Fatalf("explain missing approx tier info:\n%s", plan)
	}
	out, err := eng.ExplainAnalyze("SELECT count(distinct k) AS c FROM facts")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "distinct-scan") {
		t.Fatalf("explain analyze missing dispatch:\n%s", out)
	}
}

func TestDistinctOverJoinRejected(t *testing.T) {
	eng := approxEngine(t, 100)
	_, err := eng.CreateTable(storage.Schema{Name: "dim2", Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: "dk"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, qerr2 := eng.Query("SELECT count(distinct facts.v) AS c FROM facts, dim2 WHERE facts.k = dim2.k")
	var pe *qerr.PlanError
	if !errors.As(qerr2, &pe) {
		t.Fatalf("distinct over join: want PlanError, got %v", qerr2)
	}
}
