package core

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// The SIGKILL crash harness: the test binary re-execs itself as an
// ingesting child (TestMain diverts on LH_CRASH_CHILD_DIR), the parent
// kills it with SIGKILL mid-ingest, then recovers the directory
// in-process and checks the durability contract — every acked row
// survives, the recovered set is an exact prefix of the append stream,
// and the sums match bit-for-bit.

func TestMain(m *testing.M) {
	if dir := os.Getenv("LH_CRASH_CHILD_DIR"); dir != "" {
		crashChild(dir)
		return
	}
	os.Exit(m.Run())
}

// crashChild ingests rows forever, printing "acked N" only after the
// append (and its WAL write) returned, compacting every 32 rows so
// kills also land inside snapshot writes and WAL truncations. It never
// exits on its own — the parent SIGKILLs it.
func crashChild(dir string) {
	e := New(WithDurability(dir, wal.GroupCommit(time.Millisecond)))
	if err := e.RecoveryError(); err != nil {
		fmt.Printf("child recovery error: %v\n", err)
		os.Exit(1)
	}
	tab, err := e.CreateTable(storage.Schema{Name: "events", Cols: []storage.ColumnDef{
		{Name: "id", Kind: storage.Int64, Role: storage.Key, PK: true},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		fmt.Printf("child create error: %v\n", err)
		os.Exit(1)
	}
	ctx := context.Background()
	for i := 0; ; i++ {
		if err := tab.Append(int64(i), float64(i%97)); err != nil {
			fmt.Printf("child append error at %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("acked %d\n", i)
		if i%32 == 31 {
			if err := e.Compact(ctx); err != nil {
				fmt.Printf("child compact error at %d: %v\n", i, err)
				os.Exit(1)
			}
		}
	}
}

// TestCrashRecoverySIGKILL: LH_CRASH_ITERS controls the iteration
// count (`make crash` runs 50); kill points cycle across plain
// appends, compaction boundaries, and widened WAL write/sync windows
// (via LH_FAULTS delays in the child).
func TestCrashRecoverySIGKILL(t *testing.T) {
	iters := 6
	if s := os.Getenv("LH_CRASH_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad LH_CRASH_ITERS %q", s)
		}
		iters = n
	}
	if testing.Short() {
		iters = 2
	}
	for it := 0; it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("iter%02d", it), func(t *testing.T) {
			runCrashIteration(t, it)
		})
	}
}

func runCrashIteration(t *testing.T, it int) {
	dir := t.TempDir()
	// Targets sweep the interesting phases: early (first segment),
	// around the every-32-rows compaction (snapshot write + WAL
	// truncation in flight), and deeper streams spanning several
	// snapshot cycles.
	target := 3 + (it*13)%70
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "LH_CRASH_CHILD_DIR="+dir)
	switch it % 3 {
	case 1:
		// Widen the record-write window so the kill lands mid-write.
		cmd.Env = append(cmd.Env, "LH_FAULTS=wal.write=delay:200us")
	case 2:
		// Slow fsync: kills land between write and sync (group commit).
		cmd.Env = append(cmd.Env, "LH_FAULTS=wal.sync=delay:1ms")
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lastAcked := -1
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		var n int
		if _, err := fmt.Sscanf(sc.Text(), "acked %d", &n); err != nil {
			t.Fatalf("child said %q (stderr: %s)", sc.Text(), stderr.String())
		}
		lastAcked = n
		if n >= target {
			break
		}
	}
	if lastAcked < target {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("child died before acking %d rows (last %d, stderr: %s)",
			target, lastAcked, stderr.String())
	}
	// SIGKILL — no handlers, no flushes, no goodbyes. The child may have
	// appended (and even acked into the pipe buffer) more rows by now;
	// the invariant only binds rows we READ the ack for.
	cmd.Process.Kill()
	cmd.Wait()

	e := New(WithDurability(dir, wal.GroupCommit(time.Millisecond)))
	defer func() {
		e.BeginShutdown()
		e.Drain(context.Background())
	}()
	if err := e.RecoveryError(); err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	res, err := e.Query("SELECT count(*) AS c, sum(v) AS s FROM events")
	if err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
	got := int(res.Cols[0].Float(0))
	sum := res.Cols[1].Float(0)
	if got < lastAcked+1 {
		t.Fatalf("acked rows lost: recovered %d, acked through %d", got, lastAcked)
	}
	// Appends are ordered and replay preserves order, so whatever
	// survived must be the exact prefix 0..got-1. The values are
	// integer-valued floats, so the expected sum is exact under any
	// association order.
	want := 0.0
	for i := 0; i < got; i++ {
		want += float64(i % 97)
	}
	if sum != want {
		t.Fatalf("recovered %d rows but sum %v != prefix sum %v (not a clean prefix)",
			got, sum, want)
	}
	// The recovered engine keeps working: one more cycle of append +
	// compact on the survivor.
	if err := e.cat.Table("events").Append(int64(1_000_000), 3.0); err != nil {
		t.Fatalf("post-recovery append: %v", err)
	}
	if err := e.Compact(context.Background()); err != nil {
		t.Fatalf("post-recovery compact: %v", err)
	}
	res2, err := e.Query("SELECT count(*) AS c FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if int(res2.Cols[0].Float(0)) != got+1 {
		t.Fatalf("post-recovery append not visible: %v", res2.Cols[0].Float(0))
	}
}
