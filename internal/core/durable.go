package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/qerr"
	"repro/internal/snapshot"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// This file is the engine side of the durability subsystem: the
// WithDurability option, startup recovery (snapshot restore + WAL
// replay), the group-commit syncer, snapshot writing on Compact, the
// idempotency dedup set behind X-Batch-Id, and the durability
// counters on /metrics.

// dedupCapacity bounds the batch-id idempotency set: a FIFO of the
// most recent ids. Retries normally arrive within seconds of the
// original, so a few thousand ids of history is plenty; the bound
// keeps adversarial id streams from growing memory without limit.
const dedupCapacity = 4096

// durState carries everything durability adds to an Engine.
type durState struct {
	dir    string
	policy wal.Policy

	mu   sync.Mutex
	wals map[string]*wal.Log // table → live log

	dedupMu  sync.Mutex
	dedup    map[string]struct{}
	dedupLRU []string // FIFO eviction order

	flushHist telemetry.Histogram

	// Recovery + runtime counters.
	recovered        atomic.Bool // recovery restored at least one table
	recoveryNs       atomic.Int64
	recoveryErr      atomic.Pointer[string]
	replayedRecords  atomic.Int64
	replayedRows     atomic.Int64
	droppedRecords   atomic.Int64
	droppedBytes     atomic.Int64
	snapshotsWritten atomic.Int64
	snapshotErrors   atomic.Int64
	snapshotInvalid  atomic.Int64
	dedupHits        atomic.Int64
	syncErrors       atomic.Int64
}

// WithDurability enables crash durability rooted at dir: every append
// is written to a per-table WAL (synced per policy) before it becomes
// visible, Compact additionally persists an atomic catalog snapshot,
// and engine construction recovers the newest valid snapshot plus WAL
// tails. Corrupt tails are truncated and counted — recovery always
// comes up.
func WithDurability(dir string, policy wal.Policy) Option {
	return func(e *Engine) {
		e.dur = &durState{dir: dir, policy: policy, wals: map[string]*wal.Log{},
			dedup: map[string]struct{}{}}
	}
}

// Durable reports whether the engine was built with WithDurability.
func (e *Engine) Durable() bool { return e.dur != nil }

// Recovered reports whether startup recovery restored any tables (the
// lhserve signal to skip regenerating data).
func (e *Engine) Recovered() bool { return e.dur != nil && e.dur.recovered.Load() }

// RecoveryError reports the startup recovery failure, if any. A
// non-nil error means durability is degraded (the engine came up
// empty or partially restored); the data directory itself was
// unusable. Corruption never surfaces here — it is truncated and
// counted instead.
func (e *Engine) RecoveryError() error {
	if e.dur == nil {
		return nil
	}
	if s := e.dur.recoveryErr.Load(); s != nil {
		return fmt.Errorf("%s", *s)
	}
	return nil
}

// DataDir reports the durability root ("" when not durable).
func (e *Engine) DataDir() string {
	if e.dur == nil {
		return ""
	}
	return e.dur.dir
}

// recoverStartup restores the catalog from disk. Called once from New
// before the engine is visible to any caller; failures are recorded,
// not returned — the engine comes up (possibly empty) regardless.
func (e *Engine) recoverStartup() {
	d := e.dur
	t0 := time.Now()
	defer func() { d.recoveryNs.Store(int64(time.Since(t0))) }()
	fail := func(err error) {
		s := err.Error()
		d.recoveryErr.Store(&s)
	}

	loaded, invalid, err := snapshot.Load(d.dir)
	d.snapshotInvalid.Add(int64(invalid))
	if err != nil {
		fail(fmt.Errorf("durability: reading snapshots in %s: %w", d.dir, err))
		return
	}
	cutoffs := map[string]uint64{}
	if loaded != nil {
		cat, berr := snapshot.BuildCatalog(loaded)
		if berr != nil {
			// The snapshot validated but would not rebuild (e.g. a schema
			// the storage layer now rejects). Count it like corruption and
			// come up from the WAL alone.
			d.snapshotInvalid.Add(1)
			loaded = nil
		} else {
			e.cat = cat
			for _, tm := range loaded.Manifest.Tables {
				cutoffs[tm.Name] = tm.WALCutoff
			}
			for _, id := range loaded.Manifest.BatchIDs {
				d.noteBatchID(id)
			}
			d.recovered.Store(true)
		}
	}
	if loaded == nil {
		// No (valid) snapshot: rebuild empty tables from the schema
		// manifest so WAL records can be decoded.
		schemas, merr := snapshot.LoadCatalogManifest(d.dir)
		if merr != nil {
			fail(fmt.Errorf("durability: reading catalog manifest: %w", merr))
			return
		}
		for _, s := range schemas {
			if _, cerr := e.cat.Create(s); cerr != nil {
				fail(fmt.Errorf("durability: recreating table %s: %w", s.Name, cerr))
				return
			}
			d.recovered.Store(true)
		}
	}

	// Replay WAL tails table by table, oldest segment first. The WAL is
	// not attached yet, so replayed rows are not re-logged.
	for _, name := range e.cat.Tables() {
		t := e.cat.Table(name)
		// Segments fully covered by the snapshot may survive a crash
		// between snapshot rename and truncation: drop them first.
		if derr := wal.DeleteThrough(d.dir, name, cutoffs[name]); derr != nil {
			fail(fmt.Errorf("durability: pruning covered wal segments of %s: %w", name, derr))
			return
		}
		segs, lerr := wal.ListSegments(d.dir, name)
		if lerr != nil {
			fail(fmt.Errorf("durability: listing wal segments of %s: %w", name, lerr))
			return
		}
		for _, seg := range segs {
			res, rerr := wal.Replay(seg.Path, func(r *wal.Record) error {
				rows, derr := t.DecodeWALRecord(r)
				if derr != nil {
					return derr
				}
				if r.BatchID != "" {
					d.noteBatchID(r.BatchID)
				}
				return t.AppendBatch(rows)
			})
			d.replayedRecords.Add(int64(res.Records))
			d.replayedRows.Add(int64(res.Rows))
			if res.DroppedRecords > 0 {
				d.droppedRecords.Add(int64(res.DroppedRecords))
				d.droppedBytes.Add(res.DroppedBytes)
			}
			if rerr != nil {
				// A record decoded but failed to apply (schema drift), or
				// the truncate of a corrupt tail failed. Stop replaying this
				// table — later records may depend on the failed one — but
				// still come up with what applied cleanly.
				d.droppedRecords.Add(1)
				break
			}
			if res.Records > 0 {
				d.recovered.Store(true)
			}
		}
	}

	// Persist the (possibly restored) schema set and attach fresh WALs.
	if werr := e.writeCatalogManifest(); werr != nil {
		fail(fmt.Errorf("durability: writing catalog manifest: %w", werr))
		return
	}
	for _, name := range e.cat.Tables() {
		if aerr := e.attachWAL(name); aerr != nil {
			fail(fmt.Errorf("durability: opening wal for %s: %w", name, aerr))
			return
		}
	}
}

// attachWAL opens (resuming or creating) the table's log and attaches
// it as the append sink.
func (e *Engine) attachWAL(table string) error {
	d := e.dur
	l, err := wal.Open(d.dir, table, d.policy)
	if err != nil {
		return err
	}
	l.OnSync = d.flushHist.Record
	d.mu.Lock()
	d.wals[table] = l
	d.mu.Unlock()
	e.cat.Table(table).SetWAL(l)
	return nil
}

// writeCatalogManifest atomically rewrites catalog.json with the
// current schemas.
func (e *Engine) writeCatalogManifest() error {
	var schemas []storage.Schema
	for _, name := range e.cat.Tables() {
		schemas = append(schemas, e.cat.Table(name).Schema)
	}
	return snapshot.WriteCatalogManifest(e.dur.dir, schemas)
}

// registerDurableTable is the CreateTable hook: persist the schema
// manifest (so a crash before the first snapshot can still decode this
// table's WAL) and attach a fresh WAL.
func (e *Engine) registerDurableTable(name string) error {
	if err := e.writeCatalogManifest(); err != nil {
		return err
	}
	return e.attachWAL(name)
}

// startGroupCommit runs the group-commit flusher when the policy asks
// for interval syncing. bgCtx cancellation (BeginShutdown) stops it;
// Drain's final sync covers anything still unflushed.
func (e *Engine) startGroupCommit() {
	d := e.dur
	if d.policy.Mode != wal.SyncInterval {
		return
	}
	iv := d.policy.Interval
	if iv <= 0 {
		iv = wal.DefaultInterval
	}
	e.bgWG.Add(1)
	go func() {
		defer e.bgWG.Done()
		tick := time.NewTicker(iv)
		defer tick.Stop()
		for {
			select {
			case <-e.bgCtx.Done():
				return
			case <-tick.C:
				e.syncWALs()
			}
		}
	}()
}

// syncWALs fsyncs every dirty log (group commit / drain barrier).
func (e *Engine) syncWALs() {
	d := e.dur
	d.mu.Lock()
	logs := make([]*wal.Log, 0, len(d.wals))
	for _, l := range d.wals {
		logs = append(logs, l)
	}
	d.mu.Unlock()
	for _, l := range logs {
		if err := l.Sync(); err != nil {
			d.syncErrors.Add(1)
		}
	}
}

// writeSnapshot persists the catalog after a compaction: capture (each
// table's WAL rotated under the same mutex appends commit under),
// write-temp-fsync-rename, then truncate the covered segments. Called
// with compactMu held, so captures never interleave.
func (e *Engine) writeSnapshot() error {
	d := e.dur
	cap, err := e.cat.CaptureForSnapshot(func(table string) (uint64, error) {
		d.mu.Lock()
		l := d.wals[table]
		d.mu.Unlock()
		if l == nil {
			return 0, nil
		}
		return l.Rotate()
	})
	if err != nil {
		d.snapshotErrors.Add(1)
		return err
	}
	if _, err := snapshot.Write(d.dir, cap, d.batchIDs()); err != nil {
		// The rotated segments survive; recovery replays them over the
		// previous snapshot, so nothing acked is at risk.
		d.snapshotErrors.Add(1)
		return err
	}
	d.snapshotsWritten.Add(1)
	for _, tc := range cap.Tables {
		if tc.WALCutoff == 0 {
			continue
		}
		if err := wal.DeleteThrough(d.dir, tc.Name, tc.WALCutoff); err != nil {
			// Non-fatal: the segments are covered by the snapshot and will
			// be pruned by the next recovery or snapshot.
			d.snapshotErrors.Add(1)
			return err
		}
	}
	return nil
}

// noteBatchID records one client batch id in the bounded FIFO dedup
// set. Reports whether the id was already present.
func (d *durState) noteBatchID(id string) bool {
	d.dedupMu.Lock()
	defer d.dedupMu.Unlock()
	if _, dup := d.dedup[id]; dup {
		return true
	}
	d.dedup[id] = struct{}{}
	d.dedupLRU = append(d.dedupLRU, id)
	if len(d.dedupLRU) > dedupCapacity {
		old := d.dedupLRU[0]
		d.dedupLRU = d.dedupLRU[1:]
		delete(d.dedup, old)
	}
	return false
}

// dropBatchID removes a reserved id after a failed append so the
// client's retry is not treated as a duplicate.
func (d *durState) dropBatchID(id string) {
	d.dedupMu.Lock()
	defer d.dedupMu.Unlock()
	delete(d.dedup, id)
	for i, v := range d.dedupLRU {
		if v == id {
			d.dedupLRU = append(d.dedupLRU[:i], d.dedupLRU[i+1:]...)
			break
		}
	}
}

// batchIDs returns the dedup set oldest-first (snapshot persistence).
func (d *durState) batchIDs() []string {
	d.dedupMu.Lock()
	defer d.dedupMu.Unlock()
	return append([]string(nil), d.dedupLRU...)
}

// IngestBatch is IngestRows carrying a client batch id for idempotent
// retries: if the id was already ingested (this process or any
// recovered WAL/snapshot history in the dedup window), the batch is
// acked as a duplicate without touching storage. dup reports that
// outcome. An empty id degrades to plain IngestRows.
func (e *Engine) IngestBatch(ctx context.Context, table, batchID string, rows [][]interface{}) (int, bool, error) {
	if batchID == "" || e.dur == nil {
		n, err := e.IngestRows(ctx, table, rows)
		return n, false, err
	}
	t := e.cat.Table(table)
	if t == nil {
		return 0, false, &qerr.UnknownTableError{Name: table}
	}
	// Reserve the id before appending: a concurrent retry of the same id
	// sees the reservation and acks as duplicate instead of double-
	// ingesting. A failed append releases the reservation so a later
	// retry can succeed.
	if e.dur.noteBatchID(batchID) {
		e.dur.dedupHits.Add(1)
		return 0, true, nil
	}
	release, err := e.gov.Acquire(ctx, 1)
	if err != nil {
		e.dur.dropBatchID(batchID)
		return 0, false, err
	}
	defer release()
	if err := t.AppendBatchID(batchID, rows); err != nil {
		e.dur.dropBatchID(batchID)
		return 0, false, err
	}
	e.maybeAutoCompact()
	return len(rows), false, nil
}

// durCounters exports the durability state on /metrics.
func (e *Engine) durCounters() map[string]int64 {
	d := e.dur
	if d == nil {
		return nil
	}
	var records, bytes, syncs int64
	d.mu.Lock()
	for _, l := range d.wals {
		r, b, s := l.Counters()
		records += r
		bytes += b
		syncs += s
	}
	d.mu.Unlock()
	m := map[string]int64{
		"wal_records_total":       records,
		"wal_bytes_total":         bytes,
		"wal_syncs_total":         syncs,
		"wal_sync_errors_total":   d.syncErrors.Load(),
		"wal_records_dropped":     d.droppedRecords.Load(),
		"wal_bytes_dropped":       d.droppedBytes.Load(),
		"wal_replayed_records":    d.replayedRecords.Load(),
		"wal_replayed_rows":       d.replayedRows.Load(),
		"snapshots_written_total": d.snapshotsWritten.Load(),
		"snapshot_errors_total":   d.snapshotErrors.Load(),
		"snapshot_invalid_total":  d.snapshotInvalid.Load(),
		"recovery_ns":             d.recoveryNs.Load(),
		"batch_dedup_hits":        d.dedupHits.Load(),
		"batch_dedup_size":        int64(len(d.batchIDs())),
		"durability_degraded":     0,
		"wal_flush_p50_ns":        0,
		"wal_flush_p95_ns":        0,
		"wal_flush_p99_ns":        0,
	}
	if d.recoveryErr.Load() != nil {
		m["durability_degraded"] = 1
	}
	if hs := d.flushHist.Snapshot(); hs.Count > 0 {
		m["wal_flush_p50_ns"] = hs.Quantile(0.50)
		m["wal_flush_p95_ns"] = hs.Quantile(0.95)
		m["wal_flush_p99_ns"] = hs.Quantile(0.99)
	}
	return m
}
