package core

import (
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/tpch"
)

func tpchEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	eng := New(opts...)
	if _, err := tpch.Populate(eng.Catalog(), 0.002, 3); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestQueryLifecycle(t *testing.T) {
	eng := tpchEngine(t)
	res, err := eng.Query(tpch.Queries["q5"])
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows == 0 {
		t.Fatal("q5 returned no rows")
	}
	if res.Col("n_name") == nil || res.Col("revenue") == nil {
		t.Fatalf("missing output columns")
	}
	// Catalog is frozen after the first query; creating tables now fails.
	if _, err := eng.CreateTable(storage.Schema{Name: "late", Cols: []storage.ColumnDef{
		{Name: "x", Kind: storage.Int64, Role: storage.Key},
	}}); err == nil {
		t.Error("create after first query should fail")
	}
}

func TestAllPaperQueriesRun(t *testing.T) {
	eng := tpchEngine(t)
	for _, name := range tpch.QueryNames {
		res, err := eng.Query(tpch.Queries[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.NumRows == 0 && name != "q8" {
			// q8's tight type+region+date predicates can select nothing at
			// tiny scale; everything else must produce rows.
			t.Errorf("%s returned no rows", name)
		}
	}
}

func TestAblationOptionsProduceSameAnswers(t *testing.T) {
	ref := tpchEngine(t)
	want, err := ref.Query(tpch.Queries["q5"])
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]Option{
		{WithAttributeElimination(false)},
		{WithCostOptimizer(false)},
		{WithWorstOrder(true)},
		{WithBLAS(false)},
		{WithTrieCache(false)},
		{WithThreads(1)},
	} {
		eng := tpchEngine(t, opts...)
		got, err := eng.Query(tpch.Queries["q5"])
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows != want.NumRows {
			t.Fatalf("%v: %d rows, want %d", opts, got.NumRows, want.NumRows)
		}
	}
}

func TestQueryWithForcedOrderAndWorst(t *testing.T) {
	eng := tpchEngine(t)
	// Worst order must still be correct.
	res, err := eng.QueryWith(tpch.Queries["q3"], QueryOptions{WorstOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := eng.Query(tpch.Queries["q3"])
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != base.NumRows {
		t.Fatalf("worst order rows = %d, want %d", res.NumRows, base.NumRows)
	}
}

func TestExplainOutputs(t *testing.T) {
	eng := tpchEngine(t)
	s, err := eng.Explain(tpch.Queries["q5"])
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"hypergraph:", "GHD", "order=", "icost="} {
		if !strings.Contains(s, frag) {
			t.Errorf("explain missing %q:\n%s", frag, s)
		}
	}
	s6, err := eng.Explain(tpch.Queries["q6"])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s6, "scalar scan") {
		t.Errorf("q6 explain = %q", s6)
	}
}

func TestTrieCacheGrows(t *testing.T) {
	eng := tpchEngine(t)
	if eng.CacheSize() != 0 {
		t.Fatal("cache should start empty")
	}
	if _, err := eng.Query(tpch.Queries["q5"]); err != nil {
		t.Fatal(err)
	}
	if eng.CacheSize() == 0 {
		t.Error("unfiltered tries should be cached")
	}
}

func TestPrepareExecuteSplit(t *testing.T) {
	eng := tpchEngine(t)
	p, ch, err := eng.Prepare(tpch.Queries["q5"], QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Execute(p, ch, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows == 0 {
		t.Fatal("prepared execution returned no rows")
	}
}

func TestBadSQLSurfacesError(t *testing.T) {
	eng := tpchEngine(t)
	if _, err := eng.Query("SELECT FROM nothing"); err == nil {
		t.Error("bad SQL should error")
	}
	if _, err := eng.Query("SELECT x FROM missing_table"); err == nil {
		t.Error("missing table should error")
	}
}
