package core

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/wal"
)

func durableEngine(t *testing.T, dir string, policy wal.Policy) *Engine {
	t.Helper()
	return New(WithDurability(dir, policy))
}

func mkEvents(t *testing.T, e *Engine) *storage.Table {
	t.Helper()
	tab, err := e.CreateTable(storage.Schema{Name: "events", Cols: []storage.ColumnDef{
		{Name: "id", Kind: storage.Int64, Role: storage.Key, PK: true},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
		{Name: "tag", Kind: storage.String, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func sumV(t *testing.T, e *Engine) (int, float64) {
	t.Helper()
	res, err := e.Query("SELECT count(*) AS c, sum(v) AS s FROM events")
	if err != nil {
		t.Fatal(err)
	}
	return int(res.Cols[0].Float(0)), res.Cols[1].Float(0)
}

// TestDurableRecovery drives the full acked-write-survives contract
// in-process: appends pre- and post-freeze, a compaction snapshot in
// the middle, then a "crash" (drop the engine, reopen the dir) and a
// bit-exact comparison of query results.
func TestDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	e1 := durableEngine(t, dir, wal.SyncEvery())
	tab := mkEvents(t, e1)
	for i := 0; i < 40; i++ {
		if err := tab.Append(int64(i), float64(i%97), "pre"); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Freeze(); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 70; i++ {
		if _, err := e1.IngestRows(context.Background(), "events",
			[][]interface{}{{int64(i), float64(i % 97), "post"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 70; i < 90; i++ {
		if err := tab.Append(int64(i), float64(i%97), "tail"); err != nil {
			t.Fatal(err)
		}
	}
	c1, s1 := sumV(t, e1)
	if c1 != 90 {
		t.Fatalf("pre-crash count %d", c1)
	}

	// "Crash": no Drain, no close. SyncEvery means everything acked is
	// on disk already.
	e2 := durableEngine(t, dir, wal.SyncEvery())
	if err := e2.RecoveryError(); err != nil {
		t.Fatalf("recovery error: %v", err)
	}
	if !e2.Recovered() {
		t.Fatal("Recovered() = false after non-empty recovery")
	}
	c2, s2 := sumV(t, e2)
	if c2 != c1 || math.Float64bits(s2) != math.Float64bits(s1) {
		t.Fatalf("recovered (%d, %v), want (%d, %v)", c2, s2, c1, s1)
	}

	// Appends keep working after recovery and survive another cycle.
	if err := e2.Catalog().Table("events").Append(int64(90), 4.0, "again"); err != nil {
		t.Fatal(err)
	}
	e2.Drain(context.Background())
	e3 := durableEngine(t, dir, wal.SyncEvery())
	c3, _ := sumV(t, e3)
	if c3 != 91 {
		t.Fatalf("second recovery count %d, want 91", c3)
	}
}

// TestDurableGroupCommitCrash: under the group-commit default, a
// process crash (as opposed to power loss) must still lose nothing —
// records are written per append, only the fsync is deferred.
func TestDurableGroupCommitCrash(t *testing.T) {
	dir := t.TempDir()
	e1 := durableEngine(t, dir, wal.GroupCommit(0))
	tab := mkEvents(t, e1)
	for i := 0; i < 25; i++ {
		if err := tab.Append(int64(i), 1.0, "x"); err != nil {
			t.Fatal(err)
		}
	}
	// No drain, no sync interval elapsed: simulated SIGKILL.
	e2 := durableEngine(t, dir, wal.GroupCommit(0))
	c, _ := sumV(t, e2)
	if c != 25 {
		t.Fatalf("recovered %d rows, want 25", c)
	}
	e2.BeginShutdown()
	e2.Drain(context.Background())
}

// TestDurableCorruptTail: a bit-flipped WAL tail truncates, counts,
// and never prevents startup.
func TestDurableCorruptTail(t *testing.T) {
	dir := t.TempDir()
	e1 := durableEngine(t, dir, wal.SyncEvery())
	tab := mkEvents(t, e1)
	for i := 0; i < 10; i++ {
		if err := tab.Append(int64(i), 1.0, "x"); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := wal.ListSegments(dir, "events")
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	path := segs[len(segs)-1].Path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := durableEngine(t, dir, wal.SyncEvery())
	if err := e2.RecoveryError(); err != nil {
		t.Fatalf("corruption must not fail startup: %v", err)
	}
	c, _ := sumV(t, e2)
	if c != 9 {
		t.Fatalf("recovered %d rows, want 9 (last record corrupt)", c)
	}
	if got := e2.durCounters()["wal_records_dropped"]; got == 0 {
		t.Fatal("wal_records_dropped not incremented")
	}
	// The engine accepts writes again and the truncated tail never
	// resurfaces.
	if err := e2.Catalog().Table("events").Append(int64(50), 1.0, "y"); err != nil {
		t.Fatal(err)
	}
	e3 := durableEngine(t, dir, wal.SyncEvery())
	if c, _ := sumV(t, e3); c != 10 {
		t.Fatalf("third generation count %d, want 10", c)
	}
}

// TestIngestBatchDedup: batch ids dedupe live, across recovery (ids
// replayed from the WAL), and across snapshots (ids in the manifest).
func TestIngestBatchDedup(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	e1 := durableEngine(t, dir, wal.SyncEvery())
	mkEvents(t, e1)
	row := [][]interface{}{{int64(1), 2.0, "a"}}
	if n, dup, err := e1.IngestBatch(ctx, "events", "batch-1", row); n != 1 || dup || err != nil {
		t.Fatalf("first: %d %v %v", n, dup, err)
	}
	if n, dup, err := e1.IngestBatch(ctx, "events", "batch-1", row); n != 0 || !dup || err != nil {
		t.Fatalf("retry not deduped: %d %v %v", n, dup, err)
	}

	// Recovery from WAL alone.
	e2 := durableEngine(t, dir, wal.SyncEvery())
	if n, dup, err := e2.IngestBatch(ctx, "events", "batch-1", row); n != 0 || !dup || err != nil {
		t.Fatalf("post-recovery retry not deduped: %d %v %v", n, dup, err)
	}
	if c, _ := sumV(t, e2); c != 1 {
		t.Fatalf("count %d, want 1", c)
	}
	// Snapshot carries the set past WAL truncation.
	if err := e2.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	e3 := durableEngine(t, dir, wal.SyncEvery())
	if n, dup, err := e3.IngestBatch(ctx, "events", "batch-1", row); n != 0 || !dup || err != nil {
		t.Fatalf("post-snapshot retry not deduped: %d %v %v", n, dup, err)
	}
}

// TestDurableCatalogCreate: tables created directly on the catalog
// (the dataset-generator path, bypassing Engine.CreateTable) must
// still get a WAL attached and their rows recovered.
func TestDurableCatalogCreate(t *testing.T) {
	dir := t.TempDir()
	e1 := durableEngine(t, dir, wal.SyncEvery())
	tab, err := e1.Catalog().Create(storage.Schema{Name: "gen", Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key, PK: true},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.WAL() == nil {
		t.Fatal("catalog-created table has no WAL attached")
	}
	for i := 0; i < 5; i++ {
		if err := tab.Append(int64(i), 1.0); err != nil {
			t.Fatal(err)
		}
	}
	e2 := durableEngine(t, dir, wal.SyncEvery())
	res, err := e2.Query("SELECT count(*) AS c FROM gen")
	if err != nil {
		t.Fatal(err)
	}
	if got := int(res.Cols[0].Float(0)); got != 5 {
		t.Fatalf("recovered %d rows, want 5", got)
	}
}

// TestDurableFreshDirIsEmpty: durability on an empty dir changes
// nothing about engine behavior.
func TestDurableFreshDirIsEmpty(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	e := durableEngine(t, dir, wal.NoSync())
	if e.Recovered() {
		t.Fatal("Recovered() on fresh dir")
	}
	if err := e.RecoveryError(); err != nil {
		t.Fatal(err)
	}
	mkEvents(t, e)
	if _, err := os.Stat(filepath.Join(dir, "catalog.json")); err != nil {
		t.Fatalf("catalog.json not written: %v", err)
	}
}
