package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/costopt"
	"repro/internal/exec"
	"repro/internal/storage"
)

// hybridEngine builds a joinable fact/dim pair whose key sets are
// initially disjoint, so the first binary-path query's level-0 join is
// empty and the cached lazy tries stay partially materialized (level 0
// only — the COLT laziness this file exercises).
func hybridEngine(t *testing.T) (*Engine, *storage.Table, *storage.Table) {
	t.Helper()
	eng := New()
	fact, err := eng.CreateTable(storage.Schema{Name: "fact", Cols: []storage.ColumnDef{
		{Name: "a", Kind: storage.Int64, Role: storage.Key, Domain: "da"},
		{Name: "b", Kind: storage.Int64, Role: storage.Key, Domain: "db"},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	dim, err := eng.CreateTable(storage.Schema{Name: "dim", Cols: []storage.ColumnDef{
		{Name: "a1", Kind: storage.Int64, Role: storage.Key, Domain: "da"},
		{Name: "b1", Kind: storage.Int64, Role: storage.Key, Domain: "db"},
		{Name: "w", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 64; i++ {
		if err := fact.Append(i, i%16, float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := dim.Append(i+1000, i%16, float64(i)/2); err != nil {
			t.Fatal(err)
		}
	}
	return eng, fact, dim
}

const hybridJoin = `SELECT sum(x * w) AS v, count(*) AS c FROM fact, dim WHERE fact.a = dim.a1 AND fact.b = dim.b1`

// queryStats runs the query forced onto the binary path and returns the
// result plus its stats.
func queryBinary(t *testing.T, eng *Engine) *exec.Result {
	t.Helper()
	res, err := eng.QueryWith(hybridJoin, QueryOptions{ForcePath: costopt.PathBinary})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLazyTrieCacheInvalidationAcrossCompact drives the level-granular
// trie cache through the lazy lifecycle: an empty join leaves cached
// lazy tries built to level 0 only; appends plus Compact swap the table
// generation, which must purge the partially-built entries; the
// post-compact query must then agree bitwise with the WCOJ path on the
// fresh generation.
func TestLazyTrieCacheInvalidationAcrossCompact(t *testing.T) {
	eng, fact, dim := hybridEngine(t)

	// Disjoint keys: empty join, lazy tries cached at level 0 only.
	res := queryBinary(t, eng)
	if res.Stats == nil || len(res.Stats.NodeCosts) != 1 {
		t.Fatalf("want 1 node cost, got %+v", res.Stats)
	}
	if got := res.Stats.NodeCosts[0].LazyLevels; got != 0 {
		t.Fatalf("empty join materialized %d deeper lazy levels, want 0", got)
	}
	if res.Col("c").F64[0] != 0 {
		t.Fatalf("disjoint join counted %v rows", res.Col("c").F64[0])
	}
	if eng.CacheSize() == 0 {
		t.Fatal("no lazy tries cached")
	}

	// Overlap the key sets through the delta store, then compact: the
	// generation bump must purge the level-0-only entries.
	for i := int64(0); i < 32; i++ {
		if err := fact.Append(i+1000, i%16, 2.0); err != nil {
			t.Fatal(err)
		}
		if err := dim.Append(i+2000, i%16, 3.0); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Non-empty now: the first probe must materialize deeper levels of
	// the freshly cached (new-generation) lazy tries...
	res = queryBinary(t, eng)
	if got := res.Stats.NodeCosts[0].LazyLevels; got == 0 {
		t.Fatal("post-compact query materialized no lazy levels; stale tries survived the purge?")
	}
	if res.Col("c").F64[0] == 0 {
		t.Fatal("post-compact join is empty; appends lost")
	}
	// ...and a re-run finds them already built (level-granular reuse).
	res2 := queryBinary(t, eng)
	if got := res2.Stats.NodeCosts[0].LazyLevels; got != 0 {
		t.Fatalf("re-run rebuilt %d lazy levels; cache reuse broken", got)
	}

	// Bit-identical to the WCOJ path on the same generation.
	rw, err := eng.QueryWith(hybridJoin, QueryOptions{ForcePath: costopt.PathWCOJ})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(rw.Col("v").F64[0]) != math.Float64bits(res2.Col("v").F64[0]) ||
		rw.Col("c").F64[0] != res2.Col("c").F64[0] {
		t.Fatalf("wcoj %v/%v vs binary %v/%v", rw.Col("v").F64[0], rw.Col("c").F64[0],
			res2.Col("v").F64[0], res2.Col("c").F64[0])
	}
}

// TestChaosLazySingleFlight hammers the lazy-build single-flight: many
// concurrent binary-path queries share one cached lazy trie mid-build
// while writers append and compactions swap generations under them
// (epoch snapshots pin what each query reads). Run with -race; the
// final answers must agree bitwise with the WCOJ path.
func TestChaosLazySingleFlight(t *testing.T) {
	eng, fact, dim := hybridEngine(t)
	// Overlapping keys from the start so lazy builds go deep.
	for i := int64(0); i < 64; i++ {
		if err := fact.Append(i+1000, i%16, 1.5); err != nil {
			t.Fatal(err)
		}
	}

	const duration = 300 * time.Millisecond
	var (
		wg      sync.WaitGroup
		stop    = make(chan struct{})
		queries atomic.Int64
	)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fp := costopt.PathBinary
			if r%2 == 1 {
				fp = "" // cost-based: mixes classifier decisions into the pot
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.QueryWith(hybridJoin, QueryOptions{ForcePath: fp}); err != nil {
					t.Error(err)
					return
				}
				queries.Add(1)
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		k := int64(5000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := dim.Append(k, k%16, 0.25); err != nil {
				t.Error(err)
				return
			}
			k++
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := eng.Compact(context.Background()); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed")
	}

	if err := eng.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	rb := queryBinary(t, eng)
	rw, err := eng.QueryWith(hybridJoin, QueryOptions{ForcePath: costopt.PathWCOJ})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(rb.Col("v").F64[0]) != math.Float64bits(rw.Col("v").F64[0]) ||
		rb.Col("c").F64[0] != rw.Col("c").F64[0] {
		t.Fatalf("post-chaos mismatch: binary %v/%v vs wcoj %v/%v",
			rb.Col("v").F64[0], rb.Col("c").F64[0], rw.Col("v").F64[0], rw.Col("c").F64[0])
	}
}
