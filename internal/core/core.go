// Package core assembles the LevelHeaded engine (paper §III): catalog,
// SQL front-end, GHD-based query compiler, cost-based attribute
// ordering, and the WCOJ execution engine, behind one Engine type. The
// public facade at the repository root (import "repro") wraps this
// package.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/approx"
	"repro/internal/costopt"
	"repro/internal/exec"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/qerr"
	"repro/internal/set"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Engine is a LevelHeaded instance: a catalog plus query machinery.
// Methods are safe for concurrent use after Freeze — including
// Table.Append/AppendBatch, which land in per-table delta stores and
// surface through epoch snapshots without an explicit compaction.
type Engine struct {
	mu      sync.Mutex
	cat     *storage.Catalog
	cache   *exec.TrieCache
	plans   map[string]*preparedPlan
	metrics obs.EngineMetrics
	tel     *telemetry.Collector
	slow    *slowLog
	gov     *governor.Governor

	threads    int
	forcePath  string
	noAttrElim bool
	noCostOpt  bool
	pickWorst  bool
	noBLAS     bool
	noCache    bool
	govCfg     governor.Config

	// Compaction state: one compaction at a time, optionally kicked in
	// the background when the delta debt crosses autoCompactRows.
	compactMu       sync.Mutex
	compactInFlight atomic.Bool
	compactions     atomic.Int64
	compactedRows   atomic.Int64
	autoCompactRows int
	bgCtx           context.Context
	bgCancel        context.CancelFunc
	bgWG            sync.WaitGroup

	// Approximate-tier state (see approx.go): per-table summaries
	// (HLL + Count-Min + reservoir sample) built lazily on first
	// approximate use and extended as snapshots grow.
	approxMu         sync.Mutex
	summaries        map[string]*approx.Summary
	approxSampleRows int
	approxQueries    atomic.Int64
	approxDegraded   atomic.Int64

	// Durability state (nil unless WithDurability): see durable.go.
	dur *durState
}

// Option configures an Engine.
type Option func(*Engine)

// WithThreads bounds query parallelism (0 = GOMAXPROCS).
func WithThreads(n int) Option { return func(e *Engine) { e.threads = n } }

// WithAttributeElimination toggles the §IV attribute-elimination
// optimization; disabling it reproduces the "-Attr. Elim." rows of
// Table III (all annotation columns loaded, no dense BLAS dispatch).
func WithAttributeElimination(on bool) Option {
	return func(e *Engine) { e.noAttrElim = !on }
}

// WithCostOptimizer toggles the §V cost-based attribute ordering;
// disabled, the engine picks EmptyHeaded-style orders.
func WithCostOptimizer(on bool) Option { return func(e *Engine) { e.noCostOpt = !on } }

// WithWorstOrder makes the optimizer select the highest-cost order
// (the "-Attr. Ord." rows of Table III).
func WithWorstOrder(on bool) Option { return func(e *Engine) { e.pickWorst = on } }

// WithBLAS toggles the dense-kernel dispatch of §III-D.
func WithBLAS(on bool) Option { return func(e *Engine) { e.noBLAS = !on } }

// WithTrieCache toggles reuse of unfiltered query tries across queries
// (the physical index whose creation the paper's timings exclude).
func WithTrieCache(on bool) Option { return func(e *Engine) { e.noCache = !on } }

// WithTelemetry shares a telemetry collector with this engine instead
// of creating a private one — histograms, the live query registry and
// the /metrics counter export then aggregate over every engine bound
// to the collector (lhbench runs a fleet of engines behind one debug
// server).
func WithTelemetry(c *telemetry.Collector) Option { return func(e *Engine) { e.tel = c } }

// WithSlowQueryLog emits one JSON line per query whose total latency
// reaches threshold (phase breakdown, dispatch class, rows, error).
// The writer is serialized internally; pass os.Stderr or a log file.
func WithSlowQueryLog(w io.Writer, threshold time.Duration) Option {
	return func(e *Engine) { e.slow = &slowLog{w: w, threshold: threshold} }
}

// WithMemoryBudget caps the tracked memory (query tries, worker
// buffers, aggregation tables, result assembly) of each query; an
// over-budget query aborts with qerr.ResourceExhaustedError. 0 means
// unlimited.
func WithMemoryBudget(n int64) Option {
	return func(e *Engine) { e.govCfg.MemoryBudget = n }
}

// WithMemorySoftLimit sets the engine-wide soft memory limit: when the
// sum of tracked allocations — or the process heap — exceeds it, the
// next query to allocate aborts with an engine-wide
// qerr.ResourceExhaustedError. 0 means unlimited.
func WithMemorySoftLimit(n int64) Option {
	return func(e *Engine) { e.govCfg.SoftLimit = n }
}

// WithMaxConcurrency bounds the number of concurrently executing
// queries; excess queries wait in the admission queue. 0 means
// unlimited.
func WithMaxConcurrency(n int) Option {
	return func(e *Engine) { e.govCfg.MaxConcurrency = n }
}

// WithQueueDepth bounds the admission wait queue; a query arriving with
// the queue full is shed immediately with qerr.OverloadedError (0 with
// admission control on means no queueing: shed when saturated).
func WithQueueDepth(n int) Option {
	return func(e *Engine) { e.govCfg.QueueDepth = n }
}

// WithAutoCompact kicks a background Compact whenever the catalog-wide
// delta debt (appended-but-uncompacted rows) reaches rows. 0 (the
// default) disables automatic compaction; appends are still folded
// incrementally by the snapshot builder, so auto-compaction only
// bounds memory, never visibility.
func WithAutoCompact(rows int) Option {
	return func(e *Engine) { e.autoCompactRows = rows }
}

// WithApproxSampleRows sets the per-table reservoir capacity of the
// approximate query tier (default approx.DefaultSampleRows). Smaller
// samples answer faster with wider error bounds, and make the sample
// route price in on smaller tables.
func WithApproxSampleRows(n int) Option {
	return func(e *Engine) { e.approxSampleRows = n }
}

// New creates an empty engine.
func New(opts ...Option) *Engine {
	e := &Engine{cat: storage.NewCatalog(), cache: exec.NewTrieCache(), plans: map[string]*preparedPlan{}, summaries: map[string]*approx.Summary{}}
	// LH_FORCE_PATH pins every GHD node to one access path ("wcoj" or
	// "binary"), faultinject-style: an env knob for A/B runs and chaos
	// drills that needs no code changes in the caller. Unknown values are
	// rejected at query time by exec.Run.
	e.forcePath = os.Getenv("LH_FORCE_PATH")
	for _, o := range opts {
		o(e)
	}
	if e.tel == nil {
		e.tel = telemetry.NewCollector()
	}
	e.gov = governor.New(e.govCfg)
	e.bgCtx, e.bgCancel = context.WithCancel(context.Background())
	e.tel.AddCounterSource(e.metrics.SnapshotCounters)
	e.tel.AddCounterSource(e.gov.Counters)
	e.tel.AddCounterSource(e.deltaCounters)
	e.tel.AddCounterSource(e.approxCounters)
	e.metrics.SetExtra(e.tel.Quantiles)
	if e.dur != nil {
		// Recovery runs before the engine is visible to any caller, so
		// the first query already sees the restored state; failures are
		// recorded (RecoveryError) and the engine comes up regardless.
		e.recoverStartup()
		// Hook the catalog (possibly the one recovery just rebuilt) so
		// EVERY subsequent table creation — via Engine.CreateTable or
		// directly on the catalog by a dataset generator — persists its
		// schema and gets a WAL attached before it accepts appends.
		e.cat.OnCreate(func(t *storage.Table) error {
			return e.registerDurableTable(t.Schema.Name)
		})
		e.startGroupCommit()
		e.tel.AddCounterSource(e.durCounters)
	}
	return e
}

// Catalog exposes the engine's catalog for loading data.
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// CreateTable registers a new base table. On a durable engine the
// schema manifest is rewritten and a WAL attached before the table is
// returned, so even the very first append is recoverable.
func (e *Engine) CreateTable(s storage.Schema) (*storage.Table, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Durability (WAL attach + schema persistence) rides the catalog's
	// OnCreate hook, so it also covers generators creating tables
	// directly on the catalog.
	return e.cat.Create(s)
}

// Freeze builds dictionaries and encodings; it runs automatically on
// the first query. It is NOT a mutation barrier: rows appended after
// Freeze land in per-table delta stores and stay queryable.
func (e *Engine) Freeze() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cat.Freeze()
}

// Compact folds every table's appended delta rows into fresh,
// right-sized base generations and truncates the delta logs — the
// heavy merge the query hot path never runs. It is single-flight,
// cancellable per table via ctx, charged against the engine governor
// (an over-limit rebuild aborts with qerr.ResourceExhaustedError), and
// panic-contained like a query. Dictionary codes are stable across
// compaction, so results are byte-identical before and after. On a
// never-frozen catalog it performs the initial freeze.
func (e *Engine) Compact(ctx context.Context) (err error) {
	if ferr := e.Freeze(); ferr != nil {
		return ferr
	}
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			ie := qerr.CapturePanic(r)
			e.gov.RecordPanic()
			err = ie
		}
	}()
	mem := e.gov.NewAccountant("COMPACT", 0)
	defer mem.Close()
	n, _, cerr := e.cat.Compact(ctx, mem.Charge)
	if n > 0 {
		e.compactions.Add(1)
		e.compactedRows.Add(int64(n))
		e.purgeStaleTries()
		e.refreshSummaries()
	}
	if cerr == nil && e.dur != nil {
		// Persist the compacted state: atomic snapshot write, then WAL
		// truncation up to the rotated cutoffs. A failed snapshot leaves
		// the WAL segments in place — recovery replays them over the
		// previous snapshot, so durability is never weakened by the
		// failure, and the error tells the caller the checkpoint didn't
		// advance.
		cerr = e.writeSnapshot()
	}
	return cerr
}

// purgeStaleTries drops cached tries built from superseded generations.
func (e *Engine) purgeStaleTries() {
	for _, name := range e.cat.Tables() {
		if t := e.cat.Table(name); t != nil {
			e.cache.PurgeTable(name, t.Live().Generation())
		}
	}
}

// maybeAutoCompact kicks a background compaction when the accumulated
// delta debt crosses the configured threshold.
func (e *Engine) maybeAutoCompact() {
	if e.autoCompactRows <= 0 || e.compactInFlight.Load() {
		return
	}
	if e.cat.DeltaRows() < e.autoCompactRows {
		return
	}
	if !e.compactInFlight.CompareAndSwap(false, true) {
		return
	}
	e.bgWG.Add(1)
	go func() {
		defer e.bgWG.Done()
		defer e.compactInFlight.Store(false)
		// Compact contains panics and honors bgCtx, which BeginShutdown
		// cancels; a failed background compaction retries on the next
		// threshold crossing.
		_ = e.Compact(e.bgCtx)
	}()
}

// IngestRows appends a batch of rows to the named table under governor
// admission: an overloaded engine sheds the batch with
// qerr.OverloadedError (lhserve maps it to HTTP 429) instead of letting
// writers starve queries. Returns the number of rows appended.
func (e *Engine) IngestRows(ctx context.Context, table string, rows [][]interface{}) (int, error) {
	t := e.cat.Table(table)
	if t == nil {
		return 0, &qerr.UnknownTableError{Name: table}
	}
	release, err := e.gov.Acquire(ctx, 1)
	if err != nil {
		return 0, err
	}
	defer release()
	if err := t.AppendBatch(rows); err != nil {
		return 0, err
	}
	e.maybeAutoCompact()
	return len(rows), nil
}

// IngestDelimited streams delimiter-separated rows into a table under
// the same governor admission as IngestRows, returning the number of
// rows appended. A mid-stream parse error or cancellation leaves the
// fully committed chunks appended and reports their count alongside
// the error.
func (e *Engine) IngestDelimited(ctx context.Context, table string, r io.Reader, delim byte) (int, error) {
	t := e.cat.Table(table)
	if t == nil {
		return 0, &qerr.UnknownTableError{Name: table}
	}
	release, err := e.gov.Acquire(ctx, 1)
	if err != nil {
		return 0, err
	}
	defer release()
	before := t.TotalRows()
	lerr := t.LoadDelimitedContext(ctx, r, delim)
	n := t.TotalRows() - before
	if n > 0 {
		e.maybeAutoCompact()
	}
	return n, lerr
}

// TableStatus describes one table's live/delta state.
type TableStatus struct {
	Name             string `json:"name"`
	Rows             int    `json:"rows"`       // rows visible to the next query
	DeltaRows        int    `json:"delta_rows"` // appended rows not yet compacted
	Generation       uint64 `json:"generation"`
	LastCompactEpoch uint64 `json:"last_compact_epoch"`
}

// TablesStatus reports per-table delta debt and compaction epochs, in
// catalog creation order.
func (e *Engine) TablesStatus() []TableStatus {
	var out []TableStatus
	for _, name := range e.cat.Tables() {
		t := e.cat.Table(name)
		out = append(out, TableStatus{
			Name:             name,
			Rows:             t.TotalRows(),
			DeltaRows:        t.DeltaRows(),
			Generation:       t.Live().Generation(),
			LastCompactEpoch: t.LastCompactEpoch(),
		})
	}
	return out
}

// deltaCounters exports the live-data state on /metrics:
// catalog-wide delta debt, per-table delta rows and compaction epochs,
// and compaction totals.
func (e *Engine) deltaCounters() map[string]int64 {
	m := map[string]int64{
		"compactions_total":    e.compactions.Load(),
		"compacted_rows_total": e.compactedRows.Load(),
		"snapshot_epoch":       int64(e.cat.Epoch()),
		"delta_rows":           int64(e.cat.DeltaRows()),
	}
	for _, name := range e.cat.Tables() {
		t := e.cat.Table(name)
		m["delta_rows_"+name] = int64(t.DeltaRows())
		m["last_compact_epoch_"+name] = int64(t.LastCompactEpoch())
	}
	return m
}

// QueryOptions override per-query behavior (experiments).
type QueryOptions struct {
	// ForcedOrder pins the root GHD node's attribute order (Fig. 5b/5c).
	ForcedOrder []string
	// ForcedRelaxed marks the forced order as a §V-A2 relaxed order.
	ForcedRelaxed bool
	// WorstOrder selects the highest-cost order for this query.
	WorstOrder bool
	// Threads overrides the engine thread setting for this query.
	Threads int
	// ForcePath forces every GHD node onto one access path —
	// costopt.PathWCOJ or costopt.PathBinary — instead of the cost-based
	// choice. Empty defers to the engine-level LH_FORCE_PATH override.
	ForcePath string
	// MemoryBudget overrides the engine-level per-query memory budget
	// for this query (0 keeps the engine setting).
	MemoryBudget int64
	// ApproxOK declares the caller tolerates approximate answers: the
	// engine may route eligible single-table aggregates to the
	// sketch/sample tier when the cost model prices exact execution at
	// >= 4x the approximate one (Result.Stats.Approx reports when it
	// did, with an explicit error bound), and a query shed by admission
	// control degrades to the approximate tier instead of failing with
	// qerr.OverloadedError.
	ApproxOK bool
}

// Query parses, plans, optimizes and executes one SQL query.
func (e *Engine) Query(sql string) (*exec.Result, error) {
	return e.QueryWithContext(context.Background(), sql, QueryOptions{})
}

// QueryWith runs a query with per-query overrides.
func (e *Engine) QueryWith(sql string, qo QueryOptions) (*exec.Result, error) {
	return e.QueryWithContext(context.Background(), sql, qo)
}

// QueryContext runs a query under a context: cancellation and deadline
// are honored between lifecycle phases and at parfor chunk boundaries
// inside the execution engine.
func (e *Engine) QueryContext(ctx context.Context, sql string) (*exec.Result, error) {
	return e.QueryWithContext(ctx, sql, QueryOptions{})
}

// QueryWithContext is the full-form entry point: context plus per-query
// overrides. Every other query method delegates here, so one run per
// query is timed, traced, registered in the live query registry,
// counted into the engine metrics and latency histograms, and the
// returned Result carries its QueryStats (including the span trace).
func (e *Engine) QueryWithContext(ctx context.Context, sql string, qo QueryOptions) (*exec.Result, error) {
	st := &obs.QueryStats{SQL: sql, Trace: telemetry.NewTrace(sql)}
	// The derived cancel is what makes an in-flight query killable from
	// the registry (and the debug server's cancel endpoint).
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	aq := e.tel.Registry.Register(sql, cancel, st.Trace)
	t0 := time.Now()
	// Admission control: registered first so a queued query is visible in
	// the live registry (phase "queued"), then admitted or shed.
	aq.SetPhase("queued")
	release, aerr := e.gov.Acquire(ctx, 1)
	if aerr != nil {
		// Overload degrade: an opted-in (ApproxOK) query shed by the
		// governor retries on the approximate tier without admission — a
		// bounded sketch/sample read — instead of surfacing the shed.
		// Shapes the tier cannot bound fall through to the original error.
		var oe *qerr.OverloadedError
		if qo.ApproxOK && errors.As(aerr, &oe) {
			aq.SetPhase("degraded")
			if res, ok, derr := e.tryApprox(sql, qo, st, true); ok && derr == nil {
				st.Degraded = true
				e.approxDegraded.Add(1)
				st.Phases.Total = time.Since(t0)
				st.Trace.Finish()
				e.tel.Registry.Finish(aq)
				e.observeLatency(st, nil)
				st.RowsOut = res.NumRows
				res.Stats = st
				e.metrics.Record(st)
				e.recordStatement(st, nil)
				e.logSlow(st, nil)
				return res, nil
			}
		}
		st.Phases.Total = time.Since(t0)
		st.Trace.Finish()
		e.tel.Registry.Finish(aq)
		e.metrics.RecordError()
		e.logSlow(st, aerr)
		return nil, aerr
	}
	defer release()
	a0, g0 := obs.HeapCounters()
	res, err := e.runQuery(ctx, sql, qo, st, aq)
	st.Phases.Total = time.Since(t0)
	a1, g1 := obs.HeapCounters()
	st.AllocBytes, st.GCCycles = a1-a0, g1-g0
	st.Trace.Finish()
	e.tel.Registry.Finish(aq)
	e.observeLatency(st, err)
	if err != nil {
		e.metrics.RecordError()
		e.recordStatement(st, err)
		e.logSlow(st, err)
		return nil, err
	}
	st.RowsOut = res.NumRows
	res.Stats = st
	e.metrics.Record(st)
	e.recordStatement(st, nil)
	e.logSlow(st, nil)
	return res, nil
}

// recordStatement folds one finished query into the collector's
// per-fingerprint statement store. Queries that never parsed
// (fingerprint 0) are skipped inside Record.
func (e *Engine) recordStatement(st *obs.QueryStats, err error) {
	var est, actual float64
	for _, nc := range st.NodeCosts {
		est += nc.Est
		actual += nc.Actual
	}
	e.tel.Statements.Record(telemetry.StatementObservation{
		Fingerprint: st.Fingerprint,
		Text:        st.FingerprintText,
		DurNs:       int64(st.Phases.Total),
		Err:         err != nil,
		Rows:        st.RowsOut,
		AllocBytes:  st.AllocBytes,
		MemBytes:    st.MemHighWater,
		DeltaRows:   st.DeltaRowsFolded,
		Epoch:       st.SnapshotEpoch,
		Order:       st.RootOrder,
		Paths:       st.AccessPaths,
		EstCost:     est,
		ActualCost:  actual,
		Approx:      st.Approx,
		ErrorBound:  st.ErrorBound,
	})
}

// Statements exports the per-fingerprint statement statistics, sorted
// by the given key (see telemetry.StatementSortKeys; "" = total time).
func (e *Engine) Statements(by string, limit int) []telemetry.StatementSnapshot {
	return e.tel.Statements.Snapshots(by, limit)
}

func (e *Engine) runQuery(ctx context.Context, sql string, qo QueryOptions, st *obs.QueryStats, aq *telemetry.ActiveQuery) (res *exec.Result, err error) {
	// Query-boundary panic barrier: a crash anywhere in the lifecycle
	// below (or re-raised from a parallel section's PanicCell) fails only
	// this query, as qerr.InternalError with the captured stack.
	defer func() {
		if r := recover(); r != nil {
			ie := qerr.CapturePanic(r)
			ie.SQL = sql
			e.gov.RecordPanic()
			res, err = nil, ie
		}
	}()
	aq.SetPhase("prepare")
	// Approximate-tier intercept: COUNT(DISTINCT) shapes (which the WCOJ
	// pipeline does not execute) and, under ApproxOK, sketch/sample
	// routes whose priced win is decisive. Unhandled shapes fall through.
	if res, handled, aerr := e.tryApprox(sql, qo, st, false); handled {
		return res, aerr
	}
	p, ch, err := e.prepareStats(sql, qo, st)
	if err != nil {
		return nil, err
	}
	aq.SetPhase("execute")
	opts := e.execOptions(qo)
	opts.Ctx = ctx
	opts.Stats = st
	// Pin the epoch snapshot for the query's whole lifetime: appends and
	// compactions that land while it runs cannot shift what it reads.
	// Nil (the common static case) costs a nil-pointer branch per table.
	opts.Snap = e.cat.Snapshot()
	if opts.Snap != nil {
		st.SnapshotEpoch = opts.Snap.Epoch
		st.DeltaRowsFolded = e.cat.DeltaRows()
	}
	mem := e.gov.NewAccountant(sql, qo.MemoryBudget)
	defer mem.Close()
	opts.Mem = mem
	res, err = exec.Run(p, ch, e.cat, opts)
	// Used is monotone until Close, so this is the query's memory
	// high-water (0 when accounting is off).
	st.MemHighWater = mem.Used()
	if err != nil {
		// Panics recovered inside parfor workers surface as an
		// InternalError return value rather than unwinding to the barrier
		// above; count them the same way.
		var ie *qerr.InternalError
		if errors.As(err, &ie) {
			e.gov.RecordPanic()
		}
		return nil, &qerr.ExecError{SQL: sql, Err: err}
	}
	return res, nil
}

// BeginShutdown stops admitting queries: every queued waiter and every
// subsequent Acquire fails with qerr.OverloadedError. In-flight queries
// are unaffected; a background compaction is cancelled. Pair with Drain
// for a graceful stop.
func (e *Engine) BeginShutdown() {
	e.gov.BeginShutdown()
	e.bgCancel()
}

// Drain waits until every in-flight query finishes or ctx expires; on
// expiry the stragglers are cancelled through the live query registry
// and Drain waits (briefly) for them to observe the cancellation. It
// returns the number of queries that were force-cancelled.
func (e *Engine) Drain(ctx context.Context) int {
	reg := e.tel.Registry
	for reg.NumActive() > 0 {
		if ctx.Err() != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancelled := 0
	for _, qi := range reg.List() {
		if reg.Cancel(qi.ID) {
			cancelled++
		}
	}
	if cancelled > 0 {
		// Bounded wait for the cancelled queries to unwind: they observe
		// the context at the next chunk/step check.
		deadline := time.Now().Add(2 * time.Second)
		for reg.NumActive() > 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
	}
	// A background compaction was cancelled by BeginShutdown; wait for
	// it to unwind so no goroutine outlives the drain. (bgWG also covers
	// the group-commit flusher and any auto-compact snapshot write.)
	e.bgWG.Wait()
	if e.dur != nil {
		// A caller-driven Compact may still be mid-snapshot-write: take
		// the compaction lock once so Drain cannot return while that
		// write is in flight, then final-fsync every WAL so no acked
		// group-commit batch is left unsynced at exit.
		e.compactMu.Lock()
		e.compactMu.Unlock() //nolint:staticcheck // barrier, not a critical section
		e.syncWALs()
	}
	return cancelled
}

// observeLatency feeds one finished query into the latency histograms:
// every nonzero phase, plus whole-query latency under the dispatch
// class the query ended on (error'd queries have no class).
func (e *Engine) observeLatency(st *obs.QueryStats, err error) {
	c := e.tel
	c.ObservePhase("total", st.Phases.Total)
	for _, p := range [...]struct {
		name string
		d    time.Duration
	}{
		{"parse", st.Phases.Parse}, {"plan", st.Phases.Plan},
		{"freeze", st.Phases.Freeze}, {"compile", st.Phases.Compile},
		{"execute", st.Phases.Execute}, {"output", st.Phases.Output},
	} {
		if p.d > 0 {
			c.ObservePhase(p.name, p.d)
		}
	}
	if err == nil {
		c.ObserveClass(st.Dispatch, st.Phases.Total)
	}
	// Per-kernel latency estimates: the set kernels time one in every
	// sampleStride invocations; a query that sampled a kernel at least
	// once contributes its mean sampled latency under a kernel: class,
	// so /metrics exports p50/p95/p99 per intersection kernel.
	for k := 0; k < set.NumKernels; k++ {
		if ns, ok := st.Intersect.SampledMeanNs(k); ok {
			c.ObserveClass("kernel:"+set.KernelNames[k], time.Duration(ns))
		}
	}
}

// slowLog is the structured slow-query log: JSON lines for every query
// at or above the threshold, serialized on one writer.
type slowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
}

// slowEntry is one slow-query log line.
type slowEntry struct {
	TS          string `json:"ts"`
	QueryID     uint64 `json:"query_id"`
	SQL         string `json:"sql"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Epoch       uint64 `json:"snapshot_epoch,omitempty"`
	TotalNs     int64  `json:"total_ns"`
	ParseNs     int64  `json:"parse_ns,omitempty"`
	PlanNs      int64  `json:"plan_ns,omitempty"`
	FreezeNs    int64  `json:"freeze_ns,omitempty"`
	CompileNs   int64  `json:"compile_ns,omitempty"`
	ExecNs      int64  `json:"execute_ns,omitempty"`
	OutputNs    int64  `json:"output_ns,omitempty"`
	Dispatch    string `json:"dispatch,omitempty"`
	Rows        int    `json:"rows"`
	Error       string `json:"error,omitempty"`
}

// logSlow emits a slow-query line when configured and over threshold.
func (e *Engine) logSlow(st *obs.QueryStats, err error) {
	if e.slow == nil || st.Phases.Total < e.slow.threshold {
		return
	}
	ent := slowEntry{
		TS:        time.Now().UTC().Format(time.RFC3339Nano),
		QueryID:   st.Trace.ID(),
		SQL:       st.SQL,
		Epoch:     st.SnapshotEpoch,
		TotalNs:   int64(st.Phases.Total),
		ParseNs:   int64(st.Phases.Parse),
		PlanNs:    int64(st.Phases.Plan),
		FreezeNs:  int64(st.Phases.Freeze),
		CompileNs: int64(st.Phases.Compile),
		ExecNs:    int64(st.Phases.Execute),
		OutputNs:  int64(st.Phases.Output),
		Dispatch:  st.Dispatch,
		Rows:      st.RowsOut,
	}
	if st.Fingerprint != 0 {
		ent.Fingerprint = telemetry.FingerprintHex(st.Fingerprint)
	}
	if err != nil {
		ent.Error = err.Error()
	}
	line, jerr := json.Marshal(ent)
	if jerr != nil {
		return
	}
	line = append(line, '\n')
	e.slow.mu.Lock()
	e.slow.w.Write(line)
	e.slow.mu.Unlock()
}

// ExplainAnalyze runs the query and renders the plan followed by the
// measured per-phase timings, kernel counts and dispatch decision.
func (e *Engine) ExplainAnalyze(sql string) (string, error) {
	return e.ExplainAnalyzeContext(context.Background(), sql)
}

// ExplainAnalyzeContext is ExplainAnalyze under a context.
func (e *Engine) ExplainAnalyzeContext(ctx context.Context, sql string) (string, error) {
	res, err := e.QueryWithContext(ctx, sql, QueryOptions{})
	if err != nil {
		return "", err
	}
	plan, err := e.Explain(sql)
	if err != nil {
		return "", err
	}
	out := plan + res.Stats.String()
	if tree := res.Stats.Trace.TreeString(); tree != "" {
		out += "spans:\n" + tree
	}
	return out, nil
}

// Metrics exposes the engine's cumulative observability counters.
func (e *Engine) Metrics() *obs.EngineMetrics { return &e.metrics }

// Telemetry exposes the engine's telemetry collector: latency
// histograms, the live query registry, and the counter aggregation
// behind the debug HTTP server's /metrics.
func (e *Engine) Telemetry() *telemetry.Collector { return e.tel }

// Prepare compiles a query without running it, returning the logical
// plan and chosen orders (used by EXPLAIN and by benchmarks that want
// compile/execute split).
func (e *Engine) Prepare(sql string, qo QueryOptions) (*planner.Plan, *costopt.Choice, error) {
	return e.prepare(sql, qo)
}

// Execute runs a previously prepared plan.
func (e *Engine) Execute(p *planner.Plan, ch *costopt.Choice, qo QueryOptions) (*exec.Result, error) {
	opts := e.execOptions(qo)
	opts.Snap = e.cat.Snapshot()
	return exec.Run(p, ch, e.cat, opts)
}

func (e *Engine) execOptions(qo QueryOptions) exec.Options {
	threads := e.threads
	if qo.Threads > 0 {
		threads = qo.Threads
	}
	opts := exec.Options{
		Threads:    threads,
		NoAttrElim: e.noAttrElim,
		NoBLAS:     e.noBLAS,
		// Specialized kernels stand in for code generation over the
		// optimizer's chosen plan; ablations that force other orders must
		// measure the generic interpreter instead.
		NoFastPath: e.noCostOpt || e.pickWorst || qo.WorstOrder || len(qo.ForcedOrder) > 0,
		ForcePath:  qo.ForcePath,
	}
	if opts.ForcePath == "" {
		opts.ForcePath = e.forcePath
	}
	if !e.noCache {
		opts.Cache = e.cache
	}
	return opts
}

// preparedPlan caches one compiled (plan, orders) pair. Plans and
// choices are immutable after construction, so hot-run re-execution
// (the paper's measurement setup) skips parsing, GHD enumeration and
// order scoring entirely. The statement fingerprint rides along so
// cache hits skip re-normalization too.
type preparedPlan struct {
	p      *planner.Plan
	ch     *costopt.Choice
	fp     uint64
	fpText string
}

func (e *Engine) prepare(sql string, qo QueryOptions) (*planner.Plan, *costopt.Choice, error) {
	return e.prepareStats(sql, qo, nil)
}

// prepareStats is prepare with optional stats capture: parse/plan phase
// durations (mirrored as trace spans), plan-cache behavior, and the
// GHD/order decision.
func (e *Engine) prepareStats(sql string, qo QueryOptions, st *obs.QueryStats) (*planner.Plan, *costopt.Choice, error) {
	var tr *telemetry.Trace
	if st != nil {
		tr = st.Trace
	}
	tf := time.Now()
	if err := e.Freeze(); err != nil {
		return nil, nil, err
	}
	if st != nil {
		st.Phases.Freeze = time.Since(tf)
		if st.Phases.Freeze > time.Millisecond {
			// Only a first-query freeze is worth a span; a no-op
			// freeze check would just be tree noise.
			tr.Add(tr.Root(), telemetry.SpanPhase, "freeze", tf, time.Now())
		}
	}
	key := fmt.Sprintf("%s|%v|%v|%v|%v|%v", sql, e.noCostOpt, e.pickWorst || qo.WorstOrder, qo.ForcedOrder, qo.ForcedRelaxed, e.noAttrElim)
	e.mu.Lock()
	if pp, ok := e.plans[key]; ok {
		e.mu.Unlock()
		if st != nil {
			st.PlanCached = true
			st.Fingerprint, st.FingerprintText = pp.fp, pp.fpText
			recordPlanStats(st, pp.p, pp.ch)
		}
		return pp.p, e.classifyPaths(pp.p, pp.ch, pp.fp, qo), nil
	}
	e.mu.Unlock()
	tp := time.Now()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, &qerr.ParseError{SQL: sql, Err: err}
	}
	fpText, fp := sqlparse.Fingerprint(q)
	if st != nil {
		st.Phases.Parse = time.Since(tp)
		st.Fingerprint, st.FingerprintText = fp, fpText
		tr.Add(tr.Root(), telemetry.SpanPhase, "parse", tp, time.Now())
	}
	tq := time.Now()
	p, err := planner.Build(q, e.cat)
	if err != nil {
		return nil, nil, &qerr.PlanError{SQL: sql, Err: err}
	}
	co := costopt.Options{
		Disabled:      e.noCostOpt,
		PickWorst:     e.pickWorst || qo.WorstOrder,
		Forced:        qo.ForcedOrder,
		ForcedRelaxed: qo.ForcedRelaxed,
	}
	ch, err := costopt.Choose(p, co)
	if err != nil {
		return nil, nil, &qerr.PlanError{SQL: sql, Err: err}
	}
	if st != nil {
		st.Phases.Plan = time.Since(tq)
		tr.Add(tr.Root(), telemetry.SpanPhase, "plan", tq, time.Now())
		recordPlanStats(st, p, ch)
	}
	e.mu.Lock()
	e.plans[key] = &preparedPlan{p: p, ch: ch, fp: fp, fpText: fpText}
	e.mu.Unlock()
	return p, e.classifyPaths(p, ch, fp, qo), nil
}

// classifyPaths augments a chosen plan with per-node access-path
// decisions (tentpole of the hybrid executor). It runs per query — not
// once at plan-cache fill — because the drift correction folds in the
// statement's live cost_ratio, which sharpens as executions accumulate.
// The cached Choice is never mutated: paths land on a per-query shallow
// copy, so concurrent queries racing on one cached plan stay safe.
// Ablation and forced-order modes skip classification — their cost
// numbers deliberately mismeasure, and Table III rows must keep
// measuring the pure WCOJ interpreter.
func (e *Engine) classifyPaths(p *planner.Plan, ch *costopt.Choice, fp uint64, qo QueryOptions) *costopt.Choice {
	if e.noCostOpt || e.pickWorst || qo.WorstOrder || len(qo.ForcedOrder) > 0 || p.GHD == nil {
		return ch
	}
	drift := e.tel.Statements.CostRatio(fp)
	out := *ch
	out.Paths = costopt.ClassifyPaths(p, ch, drift)
	return &out
}

// recordPlanStats copies the optimizer's decision into the stats.
func recordPlanStats(st *obs.QueryStats, p *planner.Plan, ch *costopt.Choice) {
	if p.ScalarScan || p.GHD == nil {
		return
	}
	st.GHDNodes = len(ch.Orders)
	if ord := ch.Orders[p.GHD.Root]; ord != nil {
		st.RootOrder = append([]string(nil), ord.Attrs...)
		st.Relaxed = ord.Relaxed
	}
}

// Explain renders the query plan: hypergraph, GHD, per-node attribute
// orders with their §V cost terms.
func (e *Engine) Explain(sql string) (string, error) {
	// Distinct-bearing single-table aggregates are served by the
	// approximate tier (the WCOJ planner rejects them); render its plan.
	if s, ok := e.explainApprox(sql); ok {
		return s, nil
	}
	p, ch, err := e.prepare(sql, QueryOptions{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if p.ScalarScan {
		fmt.Fprintf(&b, "scalar scan over %s\n", p.Rels[0].Alias)
		return b.String(), nil
	}
	fmt.Fprintf(&b, "hypergraph: %s\n", p.HG)
	fmt.Fprintf(&b, "%s", p.GHD)
	for node, ord := range ch.Orders {
		fmt.Fprintf(&b, "node %v: %s\n", node.Bag, ord)
		if pi := ch.Paths[node]; pi != nil {
			fmt.Fprintf(&b, "  %s\n", pi)
		}
		for _, pv := range ord.Per {
			fmt.Fprintf(&b, "  %-14s icost=%-4d weight=%d\n", pv.Vertex, pv.ICost, pv.Weight)
		}
	}
	fmt.Fprintf(&b, "aggregates: %d, groups: %d, outputs: %d\n", len(p.Aggs), len(p.Groups), len(p.Outputs))
	return b.String(), nil
}

// CacheSize reports the number of cached tries.
func (e *Engine) CacheSize() int { return e.cache.Len() }
