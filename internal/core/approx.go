package core

import (
	"strings"
	"time"

	"repro/internal/approx"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// This file wires the approximate query tier (internal/approx) into the
// engine: per-table summary lifecycle, the runQuery intercept, and the
// overload-degrade path. The tier owns two things the WCOJ pipeline
// does not execute:
//
//   - COUNT(DISTINCT col): always served here, exactly (hash-set scan)
//     by default, approximately (HyperLogLog) under ApproxOK when the
//     priced win is decisive.
//   - Sketch/sample answers for single-table aggregates when the caller
//     opted in (QueryOptions.ApproxOK) and the cost model prices the
//     exact plan at >= 4x the approximate one.

// approxCounters exports the tier's totals on /metrics.
func (e *Engine) approxCounters() map[string]int64 {
	return map[string]int64{
		"approx_queries_total":  e.approxQueries.Load(),
		"approx_degraded_total": e.approxDegraded.Load(),
	}
}

func (e *Engine) approxSampleCap() int {
	if e.approxSampleRows > 0 {
		return e.approxSampleRows
	}
	return approx.DefaultSampleRows
}

// summaryFor returns the table's summary, building it on first use and
// extending it over any snapshot rows appended since it last covered
// the table. Callers must hold e.approxMu for the summary's whole use
// (sketch reads race with Extend otherwise).
func (e *Engine) summaryFor(name string, g *storage.Table, epoch uint64) *approx.Summary {
	s := e.summaries[name]
	if s == nil || !s.Covers(g) {
		s = approx.NewSummary(&g.Schema, e.approxSampleCap())
		e.summaries[name] = s
	}
	if s.Rows < g.NumRows {
		s.Extend(g, epoch)
	}
	return s
}

// refreshSummaries re-extends every already-built summary against the
// post-compaction state, so the first approximate query after a compact
// does not pay the fold. Summaries never built stay lazy. Compaction
// preserves row order (base prefix, then deltas), so the incremental
// extension stays sound across it.
func (e *Engine) refreshSummaries() {
	snap := e.cat.Snapshot()
	var epoch uint64
	if snap != nil {
		epoch = snap.Epoch
	}
	e.approxMu.Lock()
	defer e.approxMu.Unlock()
	for name, s := range e.summaries {
		t := e.cat.Table(name)
		if t == nil {
			delete(e.summaries, name)
			continue
		}
		g := snap.Resolve(t)
		if !s.Covers(g) {
			s = approx.NewSummary(&g.Schema, e.approxSampleCap())
			e.summaries[name] = s
		}
		if s.Rows < g.NumRows {
			s.Extend(g, epoch)
		}
	}
}

// tryApprox is the runQuery intercept for the approximate tier. The
// returned bool reports whether the tier served (or definitively
// failed) the query; false falls through to the normal pipeline, whose
// planner produces the authoritative errors for shapes the tier
// declined.
//
// degraded marks the overload-degrade entry: only bounded-work routes
// (sketch/sample) are served — the cost gate is waived, since any
// approximate answer beats a shed — and errors fall through so the
// caller surfaces the original OverloadedError.
func (e *Engine) tryApprox(sql string, qo QueryOptions, st *obs.QueryStats, degraded bool) (*exec.Result, bool, error) {
	// Cheap pre-filter: without the opt-in the only shape served here is
	// the exact distinct scan, so skip the second parse entirely unless
	// the text can contain one.
	if !qo.ApproxOK && !strings.Contains(strings.ToLower(sql), "distinct") {
		return nil, false, nil
	}
	if err := e.Freeze(); err != nil {
		return nil, false, err
	}
	tp := time.Now()
	q, perr := sqlparse.Parse(sql)
	if perr != nil {
		// Let prepareStats produce the canonical ParseError.
		return nil, false, nil
	}
	if len(q.From) != 1 {
		return nil, false, nil
	}
	t := e.cat.Table(q.From[0].Table)
	if t == nil {
		return nil, false, nil
	}
	snap := e.cat.Snapshot()
	g := snap.Resolve(t)
	sh, ok := approx.Analyze(q, &g.Schema)
	if !ok {
		return nil, false, nil
	}
	if st != nil {
		st.Phases.Parse = time.Since(tp)
		fpText, fp := sqlparse.Fingerprint(q)
		st.Fingerprint, st.FingerprintText = fp, fpText
		tr := st.Trace
		tr.Add(tr.Root(), telemetry.SpanPhase, "parse", tp, time.Now())
	}

	route := ""
	if qo.ApproxOK {
		var fp uint64
		if st != nil {
			fp = st.Fingerprint
		}
		drift := e.tel.Statements.CostRatio(fp)
		route, _ = approx.Route(sh, g.NumRows, e.approxSampleCap(), drift)
		if degraded && route == "" {
			// Under overload any bounded-work answer beats a 429; waive
			// the cost gate and take whatever route the shape allows.
			if r, ok := sh.Sketchable(); ok {
				route = r
			} else if sh.Sampleable() {
				route = "sample"
			}
		}
	}
	if route == "" && (degraded || !sh.HasDistinct) {
		// Degrade has no bounded route; non-distinct exact shapes belong
		// to the normal pipeline.
		return nil, false, nil
	}

	te := time.Now()
	var ans *approx.Answer
	var err error
	switch route {
	case "":
		// Exact distinct scan: the engine's COUNT(DISTINCT) baseline.
		var res *exec.Result
		res, err = approx.EvalScan(sh, approx.NewTableScanner(g))
		if err == nil {
			ans = &approx.Answer{Res: res, Route: obs.DispatchDistinctScan}
		}
	default:
		var epoch uint64
		if snap != nil {
			epoch = snap.Epoch
		}
		e.approxMu.Lock()
		sum := e.summaryFor(q.From[0].Table, g, epoch)
		switch route {
		case "hll":
			ans, err = approx.EvalHLL(sh, sum, &g.Schema, g.NumRows)
		case "cms":
			ans, err = approx.EvalCMS(sh, sum, &g.Schema, g.NumRows)
		default:
			ans, err = approx.EvalSample(sh, sum.SampleRows(), &g.Schema, g.NumRows)
		}
		e.approxMu.Unlock()
	}
	if err != nil {
		if degraded {
			return nil, false, nil
		}
		return nil, true, &qerr.ExecError{SQL: sql, Err: err}
	}

	if st != nil {
		st.Phases.Execute = time.Since(te)
		tr := st.Trace
		tr.Add(tr.Root(), telemetry.SpanPhase, "approx", te, time.Now())
		st.Dispatch = ans.Route
		st.ApproxRoute = ans.Route
		st.Approx = ans.Approx
		st.ErrorBound = ans.ErrorBound
		st.ErrorBounds = ans.ErrorBounds
		st.Confidence = ans.Confidence
		st.MissBound = ans.MissBound
		if snap != nil {
			st.SnapshotEpoch = snap.Epoch
			st.DeltaRowsFolded = e.cat.DeltaRows()
		}
	}
	if ans.Approx {
		e.approxQueries.Add(1)
	}
	return ans.Res, true, nil
}

// explainApprox renders the approximate-tier plan for shapes the tier
// is authoritative over (distinct-bearing single-table aggregates,
// which the WCOJ planner rejects). Other shapes return ok=false and
// EXPLAIN renders the normal plan.
func (e *Engine) explainApprox(sql string) (string, bool) {
	q, err := sqlparse.Parse(sql)
	if err != nil || len(q.From) != 1 {
		return "", false
	}
	t := e.cat.Table(q.From[0].Table)
	if t == nil {
		return "", false
	}
	g := e.cat.Snapshot().Resolve(t)
	sh, ok := approx.Analyze(q, &g.Schema)
	if !ok || !sh.HasDistinct {
		return "", false
	}
	_, fp := sqlparse.Fingerprint(q)
	drift := e.tel.Statements.CostRatio(fp)
	route, dec := approx.Route(sh, g.NumRows, e.approxSampleCap(), drift)
	var b strings.Builder
	b.WriteString(sh.String() + "\n")
	if route == "" {
		b.WriteString("route: exact distinct scan (hash-set evaluation)\n")
	} else {
		b.WriteString("route (with ApproxOK): " + route + "\n")
	}
	b.WriteString("decision: " + dec.String() + "\n")
	return b.String(), true
}
