package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/qerr"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// chaosPoints are the injection sites the acceptance criteria name: a
// forced panic in each of exec, trie, and set must fail only the query
// that hit it while concurrent queries complete.
var chaosPoints = []string{
	faultinject.PointExecWorker,
	faultinject.PointTrieBuild,
	faultinject.PointSetIntersect,
	faultinject.PointExecOutput,
}

func TestChaosPanicFailsOnlyInjectedQuery(t *testing.T) {
	for _, point := range chaosPoints {
		t.Run(point, func(t *testing.T) {
			faultinject.Reset()
			t.Cleanup(faultinject.Reset)
			eng := tpchEngine(t, WithTrieCache(false))
			// Warm the plan cache so the injected run exercises only
			// execution-side code.
			if _, err := eng.Query(tpch.Queries["q5"]); err != nil {
				t.Fatal(err)
			}
			faultinject.Arm(point, faultinject.Fault{Mode: faultinject.ModePanic, Times: 1})

			const n = 8
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, errs[i] = eng.Query(tpch.Queries["q5"])
				}(i)
			}
			wg.Wait()

			var failed int
			for _, err := range errs {
				if err == nil {
					continue
				}
				failed++
				var ie *qerr.InternalError
				if !errors.As(err, &ie) {
					t.Fatalf("injected failure is %T (%v), want InternalError", err, err)
				}
				if len(ie.Stack) == 0 {
					t.Fatal("InternalError carries no stack")
				}
			}
			if failed != 1 {
				t.Fatalf("%d queries failed, want exactly the injected one", failed)
			}
			// The engine keeps serving after the contained panic.
			if _, err := eng.Query(tpch.Queries["q1"]); err != nil {
				t.Fatalf("query after contained panic: %v", err)
			}
			if got := eng.gov.Counters()["gov_panics_recovered"]; got != 1 {
				t.Fatalf("gov_panics_recovered = %d", got)
			}
		})
	}
}

func TestChaosInjectedDelayStillCompletes(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	eng := tpchEngine(t)
	faultinject.Arm(faultinject.PointSetIntersect,
		faultinject.Fault{Mode: faultinject.ModeDelay, Delay: time.Millisecond, Times: 8})
	if _, err := eng.Query(tpch.Queries["q5"]); err != nil {
		t.Fatal(err)
	}
}

func TestChaosMemoryBudgetAbort(t *testing.T) {
	eng := tpchEngine(t, WithMemoryBudget(1), WithTrieCache(false))
	_, err := eng.Query(tpch.Queries["q5"])
	var re *qerr.ResourceExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("over-budget query returned %v, want ResourceExhaustedError", err)
	}
	if re.Engine {
		t.Fatal("per-query budget flagged as engine-wide")
	}
	if got := eng.gov.Charged(); got != 0 {
		t.Fatalf("charged bytes after abort = %d", got)
	}
	if got := eng.gov.Counters()["gov_mem_aborted"]; got == 0 {
		t.Fatal("gov_mem_aborted not incremented")
	}
	// A roomy per-query override on the same engine succeeds.
	if _, err := eng.QueryWith(tpch.Queries["q5"], QueryOptions{MemoryBudget: 1 << 40}); err != nil {
		t.Fatalf("override budget query: %v", err)
	}
}

func TestChaosEngineSoftLimitAbort(t *testing.T) {
	eng := tpchEngine(t, WithMemorySoftLimit(1), WithTrieCache(false))
	_, err := eng.Query(tpch.Queries["q5"])
	var re *qerr.ResourceExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("soft-limit query returned %v, want ResourceExhaustedError", err)
	}
	if !re.Engine {
		t.Fatal("soft-limit abort not flagged engine-wide")
	}
}

func TestOverloadShedWithRetryAfter(t *testing.T) {
	eng := tpchEngine(t, WithMaxConcurrency(1), WithQueueDepth(0))
	// Hold the only slot with a slow injected query.
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	faultinject.Arm(faultinject.PointExecWorker,
		faultinject.Fault{Mode: faultinject.ModeDelay, Delay: 300 * time.Millisecond, Times: 1})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := eng.Query(tpch.Queries["q5"])
		done <- err
	}()
	<-started
	waitForCond(t, func() bool { return eng.gov.InUse() == 1 })

	_, err := eng.Query(tpch.Queries["q1"])
	var oe *qerr.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("overload returned %v, want OverloadedError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v", oe.RetryAfter)
	}
	if err := <-done; err != nil {
		t.Fatalf("held query failed: %v", err)
	}
	c := eng.gov.Counters()
	if c["gov_shed"] == 0 {
		t.Fatal("gov_shed not incremented")
	}
}

// TestGovernorStress runs admitted, queued, shed, over-budget,
// panicking, and cancelled queries simultaneously (run under -race via
// `make chaos`), then asserts every accounting surface returns to zero.
func TestGovernorStress(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	eng := tpchEngine(t, WithMaxConcurrency(3), WithQueueDepth(4))
	// Warm plans and tries so the stress loop measures steady state.
	if _, err := eng.Query(tpch.Queries["q5"]); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.PointExecWorker,
		faultinject.Fault{Mode: faultinject.ModePanic, Times: 5})

	const n = 48
	var wg sync.WaitGroup
	var ok, shed, exhausted, panicked, cancelled, other int
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			qo := QueryOptions{}
			switch i % 4 {
			case 1: // over-budget
				qo.MemoryBudget = 1
			case 2: // short deadline: queued queries may time out
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 30*time.Millisecond)
				defer cancel()
			}
			_, err := eng.QueryWithContext(ctx, tpch.Queries["q5"], qo)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.As(err, new(*qerr.OverloadedError)):
				shed++
			case errors.As(err, new(*qerr.ResourceExhaustedError)):
				exhausted++
			case errors.As(err, new(*qerr.InternalError)):
				panicked++
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				cancelled++
			default:
				other++
			}
		}(i)
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("unexpected error class: ok=%d shed=%d exhausted=%d panicked=%d cancelled=%d other=%d",
			ok, shed, exhausted, panicked, cancelled, other)
	}
	if ok == 0 || exhausted == 0 {
		t.Fatalf("stress mix too narrow: ok=%d shed=%d exhausted=%d panicked=%d cancelled=%d",
			ok, shed, exhausted, panicked, cancelled)
	}
	// Every accounting surface drains to zero.
	waitForCond(t, func() bool { return eng.Telemetry().Registry.NumActive() == 0 })
	if got := eng.gov.InUse(); got != 0 {
		t.Fatalf("governor in-use weight = %d", got)
	}
	if got := eng.gov.QueueLen(); got != 0 {
		t.Fatalf("governor queue len = %d", got)
	}
	if got := eng.gov.Charged(); got != 0 {
		t.Fatalf("charged bytes = %d", got)
	}
	// The engine still answers correctly after the storm.
	if _, err := eng.Query(tpch.Queries["q1"]); err != nil {
		t.Fatalf("query after stress: %v", err)
	}
}

func TestEngineShutdownAndDrain(t *testing.T) {
	eng := tpchEngine(t, WithMaxConcurrency(2), WithQueueDepth(2))
	if _, err := eng.Query(tpch.Queries["q5"]); err != nil {
		t.Fatal(err)
	}
	eng.BeginShutdown()
	_, err := eng.Query(tpch.Queries["q1"])
	var oe *qerr.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("post-shutdown query returned %v, want OverloadedError", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if n := eng.Drain(ctx); n != 0 {
		t.Fatalf("drain cancelled %d queries on an idle engine", n)
	}
}

// TestSkewedChunkCancellation is the regression test for in-recursion
// cancellation: a self-join whose outermost loop has a single value
// gives parfor exactly one chunk, so the chunk-boundary check alone
// would only observe cancellation after the whole (quadratic) subtree.
// The sampled per-node check must stop it promptly.
func TestSkewedChunkCancellation(t *testing.T) {
	eng := New(WithThreads(1))
	tab, err := eng.CreateTable(storage.Schema{Name: "skew", Cols: []storage.ColumnDef{
		{Name: "a", Kind: storage.Int64, Role: storage.Key, Domain: "da"},
		{Name: "b", Kind: storage.Int64, Role: storage.Key, Domain: "db"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// One outermost value (a=0) fanning out to nB children; grouping by
	// both b attributes keeps them in the root bag, so the b1×b2
	// self-join subtree under a=0 has nB² output tuples — all in one
	// parfor chunk.
	const nB = 8000
	for b := 0; b < nB; b++ {
		if err := tab.AppendRow(int64(0), int64(b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT s1.b AS b1, s2.b AS b2, count(*) AS c
		FROM skew AS s1, skew AS s2 WHERE s1.a = s2.a GROUP BY s1.b, s2.b`
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = eng.QueryContext(ctx, q)
	elapsed := time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("skewed query returned %v, want deadline exceeded", err)
	}
	// Generous CI bound: the sampled check fires every 2048 visited
	// nodes, so cancellation should land within microseconds of work;
	// without it this query runs the full 9·10⁸-tuple subtree.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, in-loop check not effective", elapsed)
	}
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosConcurrentIngest hammers one engine with concurrent
// Append/AppendBatch writers, readers, and compactions for a few
// hundred milliseconds under -race, then verifies not a single row was
// lost: a final compact + count(*) must equal exactly the number of
// successfully committed appends.
func TestChaosConcurrentIngest(t *testing.T) {
	eng := New()
	tab, err := eng.CreateTable(storage.Schema{
		Name: "events",
		Cols: []storage.ColumnDef{
			{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: "d"},
			{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "d"},
			{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed rows so the first query has something to freeze.
	for i := int64(0); i < 32; i++ {
		if err := tab.Append(i, (i*7)%32, float64(i)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		writers  = 4
		readers  = 2
		duration = 300 * time.Millisecond
	)
	var (
		committed atomic.Int64
		wg        sync.WaitGroup
		stop      = make(chan struct{})
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := int64(1000 * (w + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if w%2 == 0 {
					if err := tab.Append(k, k%97, 1.0); err != nil {
						t.Error(err)
						return
					}
					committed.Add(1)
				} else {
					batch := [][]interface{}{
						{k, k % 89, 0.5},
						{k + 1, (k + 1) % 89, 0.5},
					}
					if _, err := eng.IngestRows(context.Background(), "events", batch); err != nil {
						t.Error(err)
						return
					}
					committed.Add(2)
					k++
				}
				k++
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := eng.QueryContext(context.Background(), "SELECT count(*) AS n FROM events")
				if err != nil {
					t.Error(err)
					return
				}
				if res.Col("n").F64[0] < 32 {
					t.Errorf("count shrank below the seeded 32: %v", res.Col("n").F64[0])
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := eng.Compact(context.Background()); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	if err := eng.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := eng.QueryContext(context.Background(), "SELECT count(*) AS n FROM events")
	if err != nil {
		t.Fatal(err)
	}
	want := float64(32 + committed.Load())
	if got := res.Col("n").F64[0]; got != want {
		t.Fatalf("final count = %v, want %v (%d committed appends)", got, want, committed.Load())
	}
	if d := tab.DeltaRows(); d != 0 {
		t.Fatalf("delta rows after final compact = %d", d)
	}
	st := eng.TablesStatus()
	if len(st) != 1 || st[0].Rows != int(want) {
		t.Fatalf("TablesStatus = %+v, want %v rows", st, want)
	}
}
