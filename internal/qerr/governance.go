package qerr

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// ResourceExhaustedError reports a query aborted by the memory governor:
// either its own budget was exceeded or the engine-wide soft limit was
// hit while it was the one charging. The query fails; the process does
// not OOM.
type ResourceExhaustedError struct {
	SQL    string
	Used   int64 // bytes charged to the query when it was aborted
	Limit  int64 // the limit that tripped (query budget or engine soft limit)
	Engine bool  // true when the engine-wide soft limit tripped
}

func (e *ResourceExhaustedError) Error() string {
	scope := "query memory budget"
	if e.Engine {
		scope = "engine memory soft limit"
	}
	if e.SQL != "" {
		return fmt.Sprintf("levelheaded: %s exceeded running %q: %d bytes charged, limit %d",
			scope, fragment(e.SQL), e.Used, e.Limit)
	}
	return fmt.Sprintf("levelheaded: %s exceeded: %d bytes charged, limit %d", scope, e.Used, e.Limit)
}

// OverloadedError reports a query shed by admission control: the engine
// was at max concurrency and the wait queue was full (or the query's
// deadline could not outlast the expected queue wait, or the engine is
// shutting down). RetryAfter is the server's backoff hint.
type OverloadedError struct {
	Reason     string // "queue full", "deadline before admission", "shutting down"
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("levelheaded: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// InternalError reports a panic captured at a recovery barrier (the
// query boundary or a parfor worker): the crash is converted into a
// failure of the offending query only. Stack is the goroutine stack at
// the panic site.
type InternalError struct {
	SQL   string
	Panic any
	Stack []byte
}

func (e *InternalError) Error() string {
	if e.SQL != "" {
		return fmt.Sprintf("levelheaded: internal error running %q: panic: %v", fragment(e.SQL), e.Panic)
	}
	return fmt.Sprintf("levelheaded: internal error: panic: %v", e.Panic)
}

// CapturePanic wraps a recovered panic value into an InternalError,
// capturing the current goroutine's stack. When the value already is an
// InternalError (a barrier downstream re-panicked to propagate across a
// goroutine join), it is passed through so the original stack survives.
func CapturePanic(r any) *InternalError {
	if ie, ok := r.(*InternalError); ok {
		return ie
	}
	return &InternalError{Panic: r, Stack: debug.Stack()}
}

// PanicCell propagates the first panic out of a fan-out of goroutines:
// each worker defers Recover, and the spawning goroutine calls Repanic
// after the join. The re-raised value is the captured *InternalError,
// so the query-boundary barrier reports the worker's original stack.
type PanicCell struct {
	p atomic.Pointer[InternalError]
}

// Recover must be deferred inside each spawned goroutine.
func (c *PanicCell) Recover() {
	if r := recover(); r != nil {
		c.p.CompareAndSwap(nil, CapturePanic(r))
	}
}

// Repanic re-raises the first captured panic, if any, on the caller's
// goroutine (after the WaitGroup join).
func (c *PanicCell) Repanic() {
	if p := c.p.Load(); p != nil {
		panic(p)
	}
}
