// Package qerr defines the typed errors of the LevelHeaded query
// lifecycle. Every phase failure is classified as a parse, plan, or
// execution error carrying the offending SQL, and catalog misuse
// (writes after Freeze, unknown tables or columns) gets its own types.
// All types are errors.Is/As-compatible: the phase wrappers Unwrap to
// the underlying cause, so e.g. a query canceled mid-execution
// satisfies both errors.As(err, **ExecError) and
// errors.Is(err, context.Canceled).
//
// The public facade (import "repro") re-exports these types; internal
// packages construct them directly.
package qerr

import "fmt"

// fragment trims sql for error messages: enough to identify the query
// without flooding logs.
func fragment(sql string) string {
	const max = 60
	if len(sql) <= max {
		return sql
	}
	return sql[:max] + "…"
}

// ParseError reports that the SQL text could not be parsed.
type ParseError struct {
	SQL string // the full query text
	Err error  // the lexer/parser cause
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("levelheaded: parse %q: %v", fragment(e.SQL), e.Err)
}

// Unwrap exposes the parser cause to errors.Is/As.
func (e *ParseError) Unwrap() error { return e.Err }

// PlanError reports that a parsed query could not be planned or
// optimized (unknown tables/columns, unsupported shapes, GHD or
// attribute-order failures).
type PlanError struct {
	SQL string
	Err error
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("levelheaded: plan %q: %v", fragment(e.SQL), e.Err)
}

// Unwrap exposes the planner cause to errors.Is/As.
func (e *PlanError) Unwrap() error { return e.Err }

// ExecError reports a failure while executing a planned query,
// including context cancellation: errors.Is(err, context.Canceled)
// holds when the query was canceled mid-flight.
type ExecError struct {
	SQL string
	Err error
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("levelheaded: exec %q: %v", fragment(e.SQL), e.Err)
}

// Unwrap exposes the execution cause to errors.Is/As.
func (e *ExecError) Unwrap() error { return e.Err }

// UnknownTableError reports a reference to a table that was never
// created.
type UnknownTableError struct{ Name string }

func (e *UnknownTableError) Error() string {
	return "levelheaded: unknown table " + e.Name
}

// UnknownColumnError reports a reference to a column a table does not
// have.
type UnknownColumnError struct{ Table, Column string }

func (e *UnknownColumnError) Error() string {
	return fmt.Sprintf("levelheaded: unknown column %s.%s", e.Table, e.Column)
}

// FrozenTableError reports a mutation attempted after Catalog.Freeze
// sealed the encodings (Op names the rejected operation).
type FrozenTableError struct {
	Table string
	Op    string
}

func (e *FrozenTableError) Error() string {
	return fmt.Sprintf("levelheaded: %s on frozen table %s (load data before Freeze or the first query)", e.Op, e.Table)
}
