// Package pairwise is the reproduction's stand-in for HyPer (paper
// §VI-A): a traditional in-memory relational engine that executes the
// benchmark queries with pipelined pairwise hash joins — build hash
// tables on the dimension sides, stream the fact table once, aggregate
// into a hash table. Plans are hand-written per benchmark query, the
// way a production optimizer would order these star joins.
//
// Linear-algebra queries run the way they would in any pairwise RDBMS:
// hash joins plus hash aggregation over coordinate triples — the path
// the paper shows losing to a unified engine by orders of magnitude.
package pairwise

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Rows is a comparable query result: group-key → aggregate values.
type Rows struct {
	// Names lists output column names (groups then aggregates).
	Names []string
	// Data maps "g1|g2|..." group keys to aggregate values.
	Data map[string][]float64
}

// NumRows reports the number of result groups.
func (r *Rows) NumRows() int { return len(r.Data) }

// Engine runs benchmark queries against a frozen catalog.
type Engine struct {
	cat *storage.Catalog
}

// New wraps a catalog (the same base data every engine in this
// repository shares).
func New(cat *storage.Catalog) *Engine { return &Engine{cat: cat} }

func day(s string) int64 {
	d, err := sqlparse.ParseDate(s)
	if err != nil {
		panic(err)
	}
	return int64(d)
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// RunTPCH executes one of the paper's TPC-H queries (q1, q3, q5, q6,
// q8, q9, q10).
func (e *Engine) RunTPCH(name string) (*Rows, error) {
	switch name {
	case "q1":
		return e.q1(), nil
	case "q3":
		return e.q3(), nil
	case "q5":
		return e.q5(), nil
	case "q6":
		return e.q6(), nil
	case "q8":
		return e.q8(), nil
	case "q9":
		return e.q9(), nil
	case "q10":
		return e.q10(), nil
	default:
		return nil, fmt.Errorf("pairwise: unknown query %q", name)
	}
}

func (e *Engine) q1() *Rows {
	li := e.cat.Table("lineitem")
	cutoff := day("1998-12-01") - 90
	ship := li.Col("l_shipdate").Ints
	flag := li.Col("l_returnflag").Strs
	stat := li.Col("l_linestatus").Strs
	qty := li.Col("l_quantity").Floats
	price := li.Col("l_extendedprice").Floats
	disc := li.Col("l_discount").Floats
	tax := li.Col("l_tax").Floats
	type acc struct{ qty, base, discP, charge, disc, cnt float64 }
	groups := map[string]*acc{}
	for i := 0; i < li.NumRows; i++ {
		if ship[i] > cutoff {
			continue
		}
		k := flag[i] + "|" + stat[i]
		a := groups[k]
		if a == nil {
			a = &acc{}
			groups[k] = a
		}
		dp := price[i] * (1 - disc[i])
		a.qty += qty[i]
		a.base += price[i]
		a.discP += dp
		a.charge += dp * (1 + tax[i])
		a.disc += disc[i]
		a.cnt++
	}
	out := &Rows{
		Names: []string{"l_returnflag", "l_linestatus", "sum_qty", "sum_base_price", "sum_disc_price", "sum_charge", "avg_qty", "avg_price", "avg_disc", "count_order"},
		Data:  map[string][]float64{},
	}
	for k, a := range groups {
		out.Data[k] = []float64{a.qty, a.base, a.discP, a.charge, a.qty / a.cnt, a.base / a.cnt, a.disc / a.cnt, a.cnt}
	}
	return out
}

func (e *Engine) q3() *Rows {
	cust := e.cat.Table("customer")
	orders := e.cat.Table("orders")
	li := e.cat.Table("lineitem")
	cut := day("1995-03-15")

	building := map[int64]bool{}
	seg := cust.Col("c_mktsegment").Strs
	ck := cust.Col("c_custkey").Ints
	for i := 0; i < cust.NumRows; i++ {
		if seg[i] == "BUILDING" {
			building[ck[i]] = true
		}
	}
	type oinfo struct {
		date int64
		prio int64
	}
	omap := map[int64]oinfo{}
	ok := orders.Col("o_orderkey").Ints
	ock := orders.Col("o_custkey").Ints
	od := orders.Col("o_orderdate").Ints
	op := orders.Col("o_shippriority").Ints
	for i := 0; i < orders.NumRows; i++ {
		if od[i] < cut && building[ock[i]] {
			omap[ok[i]] = oinfo{od[i], op[i]}
		}
	}
	lok := li.Col("l_orderkey").Ints
	lship := li.Col("l_shipdate").Ints
	price := li.Col("l_extendedprice").Floats
	disc := li.Col("l_discount").Floats
	type acc struct {
		rev  float64
		info oinfo
	}
	groups := map[int64]*acc{}
	for i := 0; i < li.NumRows; i++ {
		if lship[i] <= cut {
			continue
		}
		info, hit := omap[lok[i]]
		if !hit {
			continue
		}
		a := groups[lok[i]]
		if a == nil {
			a = &acc{info: info}
			groups[lok[i]] = a
		}
		a.rev += price[i] * (1 - disc[i])
	}
	out := &Rows{Names: []string{"l_orderkey", "revenue", "o_orderdate", "o_shippriority"}, Data: map[string][]float64{}}
	for k, a := range groups {
		key := strconv.FormatInt(k, 10) + "|" + sqlparse.DaysToDate(int32(a.info.date)) + "|" + strconv.FormatInt(a.info.prio, 10)
		out.Data[key] = []float64{a.rev}
	}
	return out
}

func (e *Engine) q5() *Rows {
	region := e.cat.Table("region")
	nation := e.cat.Table("nation")
	cust := e.cat.Table("customer")
	orders := e.cat.Table("orders")
	li := e.cat.Table("lineitem")
	supp := e.cat.Table("supplier")
	lo, hi := day("1994-01-01"), day("1995-01-01")

	asia := map[int64]bool{}
	for i := 0; i < region.NumRows; i++ {
		if region.Col("r_name").Strs[i] == "ASIA" {
			asia[region.Col("r_regionkey").Ints[i]] = true
		}
	}
	nname := map[int64]string{}
	for i := 0; i < nation.NumRows; i++ {
		if asia[nation.Col("n_regionkey").Ints[i]] {
			nname[nation.Col("n_nationkey").Ints[i]] = nation.Col("n_name").Strs[i]
		}
	}
	custNation := map[int64]int64{}
	for i := 0; i < cust.NumRows; i++ {
		nk := cust.Col("c_nationkey").Ints[i]
		if _, ok := nname[nk]; ok {
			custNation[cust.Col("c_custkey").Ints[i]] = nk
		}
	}
	suppNation := map[int64]int64{}
	for i := 0; i < supp.NumRows; i++ {
		nk := supp.Col("s_nationkey").Ints[i]
		if _, ok := nname[nk]; ok {
			suppNation[supp.Col("s_suppkey").Ints[i]] = nk
		}
	}
	orderCust := map[int64]int64{}
	for i := 0; i < orders.NumRows; i++ {
		d := orders.Col("o_orderdate").Ints[i]
		if d >= lo && d < hi {
			orderCust[orders.Col("o_orderkey").Ints[i]] = orders.Col("o_custkey").Ints[i]
		}
	}
	groups := map[string]float64{}
	lok := li.Col("l_orderkey").Ints
	lsk := li.Col("l_suppkey").Ints
	price := li.Col("l_extendedprice").Floats
	disc := li.Col("l_discount").Floats
	for i := 0; i < li.NumRows; i++ {
		ck, hit := orderCust[lok[i]]
		if !hit {
			continue
		}
		cnk, hit := custNation[ck]
		if !hit {
			continue
		}
		snk, hit := suppNation[lsk[i]]
		if !hit || snk != cnk {
			continue
		}
		groups[nname[snk]] += price[i] * (1 - disc[i])
	}
	out := &Rows{Names: []string{"n_name", "revenue"}, Data: map[string][]float64{}}
	for k, v := range groups {
		out.Data[k] = []float64{v}
	}
	return out
}

// q6Lo/q6Hi reproduce the query's literal arithmetic (0.06 ± 0.01) in
// runtime float64 (IEEE) semantics, matching the SQL expression
// evaluator exactly — Go constant arithmetic is exact and would differ.
var (
	q6Mid float64 = 0.06
	q6Eps float64 = 0.01
	q6Lo          = q6Mid - q6Eps
	q6Hi          = q6Mid + q6Eps
)

func (e *Engine) q6() *Rows {
	li := e.cat.Table("lineitem")
	lo, hi := day("1994-01-01"), day("1995-01-01")
	ship := li.Col("l_shipdate").Ints
	disc := li.Col("l_discount").Floats
	qty := li.Col("l_quantity").Floats
	price := li.Col("l_extendedprice").Floats
	rev := 0.0
	for i := 0; i < li.NumRows; i++ {
		if ship[i] >= lo && ship[i] < hi && disc[i] >= q6Lo && disc[i] <= q6Hi && qty[i] < 24 {
			rev += price[i] * disc[i]
		}
	}
	return &Rows{Names: []string{"revenue"}, Data: map[string][]float64{"": {rev}}}
}

func (e *Engine) q8() *Rows {
	part := e.cat.Table("part")
	supp := e.cat.Table("supplier")
	li := e.cat.Table("lineitem")
	orders := e.cat.Table("orders")
	cust := e.cat.Table("customer")
	nation := e.cat.Table("nation")
	region := e.cat.Table("region")
	lo, hi := day("1995-01-01"), day("1996-12-31")

	econ := map[int64]bool{}
	for i := 0; i < part.NumRows; i++ {
		if part.Col("p_type").Strs[i] == "ECONOMY ANODIZED STEEL" {
			econ[part.Col("p_partkey").Ints[i]] = true
		}
	}
	america := map[int64]bool{}
	for i := 0; i < region.NumRows; i++ {
		if region.Col("r_name").Strs[i] == "AMERICA" {
			america[region.Col("r_regionkey").Ints[i]] = true
		}
	}
	nationAmerica := map[int64]bool{}
	nationName := map[int64]string{}
	for i := 0; i < nation.NumRows; i++ {
		nk := nation.Col("n_nationkey").Ints[i]
		nationName[nk] = nation.Col("n_name").Strs[i]
		if america[nation.Col("n_regionkey").Ints[i]] {
			nationAmerica[nk] = true
		}
	}
	custAmerican := map[int64]bool{}
	for i := 0; i < cust.NumRows; i++ {
		if nationAmerica[cust.Col("c_nationkey").Ints[i]] {
			custAmerican[cust.Col("c_custkey").Ints[i]] = true
		}
	}
	type oinfo struct{ year int }
	omap := map[int64]oinfo{}
	for i := 0; i < orders.NumRows; i++ {
		d := orders.Col("o_orderdate").Ints[i]
		if d >= lo && d <= hi && custAmerican[orders.Col("o_custkey").Ints[i]] {
			omap[orders.Col("o_orderkey").Ints[i]] = oinfo{sqlparse.DateYear(int32(d))}
		}
	}
	suppNation := map[int64]int64{}
	for i := 0; i < supp.NumRows; i++ {
		suppNation[supp.Col("s_suppkey").Ints[i]] = supp.Col("s_nationkey").Ints[i]
	}
	type acc struct{ num, den float64 }
	groups := map[int]*acc{}
	lok := li.Col("l_orderkey").Ints
	lpk := li.Col("l_partkey").Ints
	lsk := li.Col("l_suppkey").Ints
	price := li.Col("l_extendedprice").Floats
	disc := li.Col("l_discount").Floats
	for i := 0; i < li.NumRows; i++ {
		if !econ[lpk[i]] {
			continue
		}
		oi, hit := omap[lok[i]]
		if !hit {
			continue
		}
		nk, hit := suppNation[lsk[i]]
		if !hit {
			continue
		}
		rev := price[i] * (1 - disc[i])
		a := groups[oi.year]
		if a == nil {
			a = &acc{}
			groups[oi.year] = a
		}
		if nationName[nk] == "BRAZIL" {
			a.num += rev
		}
		a.den += rev
	}
	out := &Rows{Names: []string{"o_year", "mkt_share"}, Data: map[string][]float64{}}
	for y, a := range groups {
		out.Data[f(float64(y))] = []float64{a.num / a.den}
	}
	return out
}

func (e *Engine) q9() *Rows {
	part := e.cat.Table("part")
	supp := e.cat.Table("supplier")
	li := e.cat.Table("lineitem")
	ps := e.cat.Table("partsupp")
	orders := e.cat.Table("orders")
	nation := e.cat.Table("nation")

	green := map[int64]bool{}
	for i := 0; i < part.NumRows; i++ {
		if strings.Contains(part.Col("p_name").Strs[i], "green") {
			green[part.Col("p_partkey").Ints[i]] = true
		}
	}
	suppNation := map[int64]int64{}
	for i := 0; i < supp.NumRows; i++ {
		suppNation[supp.Col("s_suppkey").Ints[i]] = supp.Col("s_nationkey").Ints[i]
	}
	nationName := map[int64]string{}
	for i := 0; i < nation.NumRows; i++ {
		nationName[nation.Col("n_nationkey").Ints[i]] = nation.Col("n_name").Strs[i]
	}
	psCost := map[int64]float64{}
	for i := 0; i < ps.NumRows; i++ {
		key := ps.Col("ps_partkey").Ints[i]<<20 | ps.Col("ps_suppkey").Ints[i]
		psCost[key] = ps.Col("ps_supplycost").Floats[i]
	}
	orderYear := map[int64]int{}
	for i := 0; i < orders.NumRows; i++ {
		orderYear[orders.Col("o_orderkey").Ints[i]] = sqlparse.DateYear(int32(orders.Col("o_orderdate").Ints[i]))
	}
	groups := map[string]float64{}
	lok := li.Col("l_orderkey").Ints
	lpk := li.Col("l_partkey").Ints
	lsk := li.Col("l_suppkey").Ints
	qty := li.Col("l_quantity").Floats
	price := li.Col("l_extendedprice").Floats
	disc := li.Col("l_discount").Floats
	for i := 0; i < li.NumRows; i++ {
		if !green[lpk[i]] {
			continue
		}
		cost, hit := psCost[lpk[i]<<20|lsk[i]]
		if !hit {
			continue
		}
		nk, hit := suppNation[lsk[i]]
		if !hit {
			continue
		}
		year, hit := orderYear[lok[i]]
		if !hit {
			continue
		}
		amount := price[i]*(1-disc[i]) - cost*qty[i]
		groups[nationName[nk]+"|"+f(float64(year))] += amount
	}
	out := &Rows{Names: []string{"n_name", "o_year", "sum_profit"}, Data: map[string][]float64{}}
	for k, v := range groups {
		out.Data[k] = []float64{v}
	}
	return out
}

func (e *Engine) q10() *Rows {
	cust := e.cat.Table("customer")
	orders := e.cat.Table("orders")
	li := e.cat.Table("lineitem")
	nation := e.cat.Table("nation")
	lo, hi := day("1993-10-01"), day("1994-01-01")

	nationName := map[int64]string{}
	for i := 0; i < nation.NumRows; i++ {
		nationName[nation.Col("n_nationkey").Ints[i]] = nation.Col("n_name").Strs[i]
	}
	type cinfo struct {
		name, addr, phone, comment, nname string
		acctbal                           float64
	}
	cmap := map[int64]cinfo{}
	for i := 0; i < cust.NumRows; i++ {
		cmap[cust.Col("c_custkey").Ints[i]] = cinfo{
			name:    cust.Col("c_name").Strs[i],
			addr:    cust.Col("c_address").Strs[i],
			phone:   cust.Col("c_phone").Strs[i],
			comment: cust.Col("c_comment").Strs[i],
			nname:   nationName[cust.Col("c_nationkey").Ints[i]],
			acctbal: cust.Col("c_acctbal").Floats[i],
		}
	}
	orderCust := map[int64]int64{}
	for i := 0; i < orders.NumRows; i++ {
		d := orders.Col("o_orderdate").Ints[i]
		if d >= lo && d < hi {
			orderCust[orders.Col("o_orderkey").Ints[i]] = orders.Col("o_custkey").Ints[i]
		}
	}
	groups := map[int64]float64{}
	lok := li.Col("l_orderkey").Ints
	flag := li.Col("l_returnflag").Strs
	price := li.Col("l_extendedprice").Floats
	disc := li.Col("l_discount").Floats
	for i := 0; i < li.NumRows; i++ {
		if flag[i] != "R" {
			continue
		}
		ck, hit := orderCust[lok[i]]
		if !hit {
			continue
		}
		groups[ck] += price[i] * (1 - disc[i])
	}
	out := &Rows{Names: []string{"c_custkey", "revenue"}, Data: map[string][]float64{}}
	for ck, rev := range groups {
		ci := cmap[ck]
		key := strconv.FormatInt(ck, 10) + "|" + ci.name + "|" + f(ci.acctbal) + "|" + ci.phone + "|" + ci.nname + "|" + ci.addr + "|" + ci.comment
		out.Data[key] = []float64{rev}
	}
	return out
}

// SpMV computes y = A·x where A is a COO table (i, j, v) and x a vector
// table (k, x), via a hash join on j = k with hash aggregation on i —
// the pairwise-relational execution of the query.
func (e *Engine) SpMV(matrix, vector string) (map[int64]float64, error) {
	m := e.cat.Table(matrix)
	v := e.cat.Table(vector)
	if m == nil || v == nil {
		return nil, fmt.Errorf("pairwise: missing table")
	}
	x := map[int64]float64{}
	vk := v.Col("k").Ints
	vx := v.Col("x").Floats
	for i := 0; i < v.NumRows; i++ {
		x[vk[i]] = vx[i]
	}
	mi := m.Col("i").Ints
	mj := m.Col("j").Ints
	mv := m.Col("v").Floats
	y := map[int64]float64{}
	for r := 0; r < m.NumRows; r++ {
		if xv, ok := x[mj[r]]; ok {
			y[mi[r]] += mv[r] * xv
		}
	}
	return y, nil
}

// SpMM computes C = A·B over COO tables with a hash join on the shared
// dimension and hash aggregation over (i, j) output pairs. It returns
// the output nonzero count and a content checksum. maxPairs bounds the
// intermediate join size; exceeding it aborts with an error, standing
// in for the out-of-memory failures the paper reports for RDBMSs on
// matrix multiplication.
func (e *Engine) SpMM(m1, m2 string, maxPairs int) (nnz int, checksum float64, err error) {
	a := e.cat.Table(m1)
	b := e.cat.Table(m2)
	if a == nil || b == nil {
		return 0, 0, fmt.Errorf("pairwise: missing table")
	}
	type entry struct {
		j int64
		v float64
	}
	build := map[int64][]entry{}
	bi := b.Col("i").Ints
	bj := b.Col("j").Ints
	bv := b.Col("v").Floats
	for r := 0; r < b.NumRows; r++ {
		build[bi[r]] = append(build[bi[r]], entry{bj[r], bv[r]})
	}
	out := map[[2]int64]float64{}
	ai := a.Col("i").Ints
	aj := a.Col("j").Ints
	av := a.Col("v").Floats
	pairs := 0
	for r := 0; r < a.NumRows; r++ {
		matches := build[aj[r]]
		pairs += len(matches)
		if maxPairs > 0 && pairs > maxPairs {
			return 0, 0, fmt.Errorf("pairwise: join exceeded %d intermediate pairs (oom)", maxPairs)
		}
		for _, m := range matches {
			out[[2]int64{ai[r], m.j}] += av[r] * m.v
		}
	}
	for k, v := range out {
		checksum += v * float64(k[0]+2*k[1]+1)
	}
	return len(out), checksum, nil
}

// SortedKeys returns result keys in sorted order (test helper).
func (r *Rows) SortedKeys() []string {
	keys := make([]string, 0, len(r.Data))
	for k := range r.Data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
