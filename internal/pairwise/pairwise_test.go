package pairwise

import (
	"math"
	"testing"

	"repro/internal/storage"
)

func TestUnknownQuery(t *testing.T) {
	e := New(storage.NewCatalog())
	if _, err := e.RunTPCH("nope"); err == nil {
		t.Error("unknown query should error")
	}
}

func laTables(t *testing.T) *Engine {
	t.Helper()
	cat := storage.NewCatalog()
	m, err := cat.Create(storage.Schema{Name: "matrix", Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := cat.Create(storage.Schema{Name: "vec", Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// [[1 2] [0 3]] and x = [10, 100]
	_ = m.AppendRow(int64(0), int64(0), 1.0)
	_ = m.AppendRow(int64(0), int64(1), 2.0)
	_ = m.AppendRow(int64(1), int64(1), 3.0)
	_ = vec.AppendRow(int64(0), 10.0)
	_ = vec.AppendRow(int64(1), 100.0)
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	return New(cat)
}

func TestSpMVKnownAnswer(t *testing.T) {
	e := laTables(t)
	y, err := e.SpMV("matrix", "vec")
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 210 || y[1] != 300 {
		t.Fatalf("y = %v", y)
	}
}

func TestSpMMKnownAnswer(t *testing.T) {
	e := laTables(t)
	// A² = [[1 8] [0 9]]
	nnz, sum, err := e.SpMM("matrix", "matrix", 0)
	if err != nil {
		t.Fatal(err)
	}
	if nnz != 3 {
		t.Fatalf("nnz = %d", nnz)
	}
	// checksum = Σ v·(i + 2j + 1): 1·1 + 8·3 + 9·4 = 61.
	if math.Abs(sum-61) > 1e-12 {
		t.Fatalf("checksum = %v", sum)
	}
}

func TestSpMMBudget(t *testing.T) {
	e := laTables(t)
	if _, _, err := e.SpMM("matrix", "matrix", 1); err == nil {
		t.Error("tiny budget should abort")
	}
}

func TestRowsHelpers(t *testing.T) {
	r := &Rows{Data: map[string][]float64{"b": {1}, "a": {2}}}
	if r.NumRows() != 2 {
		t.Fatalf("NumRows = %d", r.NumRows())
	}
	keys := r.SortedKeys()
	if keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("SortedKeys = %v", keys)
	}
}
