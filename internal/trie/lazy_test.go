package trie

import (
	"math"
	"math/rand"
	"testing"
)

// randBuildInput generates a duplicate-heavy input with F64 annotations
// (including NaN and signed zeros) and a Code annotation per level.
func randBuildInput(rng *rand.Rand, k, n int) BuildInput {
	in := BuildInput{Threads: 1 + rng.Intn(4)}
	for d := 0; d < k; d++ {
		in.Attrs = append(in.Attrs, string(rune('a'+d)))
		dom := 1 + rng.Intn(8)
		col := make([]uint32, n)
		for i := range col {
			col[i] = uint32(rng.Intn(dom))
		}
		in.Keys = append(in.Keys, col)
	}
	specials := []float64{math.NaN(), math.Copysign(0, -1), 0, math.Inf(1), -3.5}
	for d := 0; d < k; d++ {
		f := make([]float64, n)
		for i := range f {
			if rng.Intn(4) == 0 {
				f[i] = specials[rng.Intn(len(specials))]
			} else {
				f[i] = float64(rng.Intn(100)) / 4
			}
		}
		var comb CombineFunc
		if d == k-1 && rng.Intn(2) == 0 {
			comb = func(a, b float64) float64 { return math.Min(a, b) }
		}
		in.Anns = append(in.Anns, AnnSpec{Name: "f" + string(rune('0'+d)), Level: d, Kind: F64, F64: f, Combine: comb})
		c := make([]uint32, n)
		for i := range c {
			c[i] = uint32(rng.Intn(50))
		}
		in.Anns = append(in.Anns, AnnSpec{Name: "c" + string(rune('0'+d)), Level: d, Kind: Code, Codes: c})
	}
	return in
}

// requireTrieEqual asserts two tries are bit-identical: shape, sets,
// ranks, density, and annotation buffers (float comparisons by bits).
func requireTrieEqual(t *testing.T, want, got *Trie) {
	t.Helper()
	if got.NumTuples != want.NumTuples || got.SourceRows != want.SourceRows {
		t.Fatalf("tuples/rows: got %d/%d want %d/%d", got.NumTuples, got.SourceRows, want.NumTuples, want.SourceRows)
	}
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("levels: got %d want %d", len(got.Levels), len(want.Levels))
	}
	for d := range want.Levels {
		wl, gl := want.Levels[d], got.Levels[d]
		if len(gl.Sets) != len(wl.Sets) || gl.Dense != wl.Dense {
			t.Fatalf("level %d: sets=%d dense=%v, want sets=%d dense=%v", d, len(gl.Sets), gl.Dense, len(wl.Sets), wl.Dense)
		}
		if len(gl.Starts) != len(wl.Starts) {
			t.Fatalf("level %d starts len: got %d want %d", d, len(gl.Starts), len(wl.Starts))
		}
		for i := range wl.Starts {
			if gl.Starts[i] != wl.Starts[i] {
				t.Fatalf("level %d Starts[%d]: got %d want %d", d, i, gl.Starts[i], wl.Starts[i])
			}
		}
		for p := range wl.Sets {
			wv := wl.Sets[p].Values()
			gv := gl.Sets[p].Values()
			if len(wv) != len(gv) {
				t.Fatalf("level %d set %d card: got %d want %d", d, p, len(gv), len(wv))
			}
			for i := range wv {
				if wv[i] != gv[i] {
					t.Fatalf("level %d set %d elem %d: got %d want %d", d, p, i, gv[i], wv[i])
				}
			}
		}
	}
	if len(got.Anns) != len(want.Anns) {
		t.Fatalf("anns: got %d want %d", len(got.Anns), len(want.Anns))
	}
	for name, wa := range want.Anns {
		ga := got.Anns[name]
		if ga == nil || ga.Level != wa.Level || ga.Kind != wa.Kind {
			t.Fatalf("ann %q mismatch: %+v vs %+v", name, ga, wa)
		}
		if len(ga.F64) != len(wa.F64) || len(ga.Codes) != len(wa.Codes) {
			t.Fatalf("ann %q buffers: got %d/%d want %d/%d", name, len(ga.F64), len(ga.Codes), len(wa.F64), len(wa.Codes))
		}
		for i := range wa.F64 {
			if math.Float64bits(ga.F64[i]) != math.Float64bits(wa.F64[i]) {
				t.Fatalf("ann %q F64[%d]: got %v want %v (bits differ)", name, i, ga.F64[i], wa.F64[i])
			}
		}
		for i := range wa.Codes {
			if ga.Codes[i] != wa.Codes[i] {
				t.Fatalf("ann %q Codes[%d]: got %d want %d", name, i, ga.Codes[i], wa.Codes[i])
			}
		}
	}
}

// TestLazyEquivalence: Full() on a Lazy must be bit-identical to Build
// on the same input, across shapes, duplicates, and special floats.
func TestLazyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 200; iter++ {
		k := 1 + rng.Intn(3)
		n := rng.Intn(200)
		in := randBuildInput(rng, k, n)
		want, err := Build(in)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		lz, err := NewLazy(in)
		if err != nil {
			t.Fatalf("NewLazy: %v", err)
		}
		// Exercise the incremental path before converting.
		for d := 0; d < k; d++ {
			lz.EnsureLevels(d)
			if lz.BuiltLevels() != d+1 {
				t.Fatalf("BuiltLevels=%d after EnsureLevels(%d)", lz.BuiltLevels(), d)
			}
		}
		lz.EnsureAnns()
		got := lz.Full(0)
		requireTrieEqual(t, want, got)

		// Lazy accessors must agree with the converted trie.
		for d := 0; d < k; d++ {
			numParents := 1
			if d > 0 {
				numParents = want.Levels[d-1].NumElems()
			}
			for p := 0; p < numParents; p++ {
				vals := lz.Values(d, int32(p))
				wvals := want.Levels[d].Sets[p].Values()
				if len(vals) != len(wvals) {
					t.Fatalf("Values(%d,%d) card %d want %d", d, p, len(vals), len(wvals))
				}
				if lz.Start(d, int32(p)) != want.Levels[d].Starts[p] {
					t.Fatalf("Start(%d,%d)=%d want %d", d, p, lz.Start(d, int32(p)), want.Levels[d].Starts[p])
				}
				for i, v := range vals {
					if v != wvals[i] {
						t.Fatalf("Values(%d,%d)[%d]=%d want %d", d, p, i, v, wvals[i])
					}
					if rk := lz.RankOf(d, int32(p), v); rk != want.RankOf(d, int32(p), v) {
						t.Fatalf("RankOf(%d,%d,%d)=%d want %d", d, p, v, rk, want.RankOf(d, int32(p), v))
					}
				}
				if rk := lz.RankOf(d, int32(p), 999999); rk != -1 {
					t.Fatalf("RankOf absent = %d, want -1", rk)
				}
			}
		}
		lz.EnsureProbe0()
		for _, v := range lz.Values(0, 0) {
			if lz.Probe0(v) != want.RankOf(0, 0, v) {
				t.Fatalf("Probe0(%d)=%d want %d", v, lz.Probe0(v), want.RankOf(0, 0, v))
			}
		}
		if lz.Probe0(1<<31) != -1 {
			t.Fatal("Probe0 out-of-domain should be -1")
		}
		if n > 0 && lz.NumTuples() != want.NumTuples {
			t.Fatalf("NumTuples=%d want %d", lz.NumTuples(), want.NumTuples)
		}
	}
}

// TestLazyConcurrentEnsure hammers EnsureLevels/EnsureAnns from many
// goroutines to exercise the single-flight path under -race.
func TestLazyConcurrentEnsure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := randBuildInput(rng, 3, 5000)
	want, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	lz, err := NewLazy(in)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Trie, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			lz.EnsureLevels(g % 3)
			lz.EnsureProbe0()
			lz.EnsureAnns()
			done <- lz.Full(0)
		}(g)
	}
	for g := 0; g < 8; g++ {
		got := <-done
		requireTrieEqual(t, want, got)
	}
}
