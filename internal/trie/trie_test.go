package trie

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// matrixInput builds the paper's Fig. 3 example: a sparse matrix stored
// as a (row, col) trie with a value annotation.
func matrixInput() BuildInput {
	// (0,0)=0.1 (0,2)=0.2 (1,1)=0.3 (2,0)=0.4 (2,2)=0.5
	return BuildInput{
		Attrs: []string{"i", "j"},
		Keys: [][]uint32{
			{0, 0, 1, 2, 2},
			{0, 2, 1, 0, 2},
		},
		Anns: []AnnSpec{{
			Name: "v", Level: 1, Kind: F64,
			F64: []float64{0.1, 0.2, 0.3, 0.4, 0.5},
		}},
	}
}

func TestBuildMatrixTrie(t *testing.T) {
	tr, err := Build(matrixInput())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLevels() != 2 || tr.NumTuples != 5 {
		t.Fatalf("levels=%d tuples=%d", tr.NumLevels(), tr.NumTuples)
	}
	l0 := tr.Set(0, 0)
	if got, want := l0.Values(), []uint32{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("level0 = %v, want %v", got, want)
	}
	// Children of row 0 are cols {0,2}; row 1 -> {1}; row 2 -> {0,2}.
	wantChildren := [][]uint32{{0, 2}, {1}, {0, 2}}
	l0.ForEachIndexed(func(i int, v uint32) {
		child := tr.Set(1, tr.GlobalRank(0, 0, i))
		if got := child.Values(); !reflect.DeepEqual(got, wantChildren[v]) {
			t.Errorf("children of row %d = %v, want %v", v, got, wantChildren[v])
		}
	})
	// Annotation values follow sorted (i,j) order.
	ann := tr.Ann("v")
	if ann == nil || ann.Level != 1 {
		t.Fatal("missing annotation v at level 1")
	}
	want := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	if !reflect.DeepEqual(ann.F64, want) {
		t.Fatalf("annotation = %v, want %v", ann.F64, want)
	}
}

func TestBuildUnsortedInputMatchesSorted(t *testing.T) {
	in := matrixInput()
	// Shuffle rows; trie must come out identical.
	perm := []int{4, 2, 0, 3, 1}
	shuf := BuildInput{Attrs: in.Attrs, Keys: [][]uint32{make([]uint32, 5), make([]uint32, 5)}}
	f := make([]float64, 5)
	for to, from := range perm {
		shuf.Keys[0][to] = in.Keys[0][from]
		shuf.Keys[1][to] = in.Keys[1][from]
		f[to] = in.Anns[0].F64[from]
	}
	shuf.Anns = []AnnSpec{{Name: "v", Level: 1, Kind: F64, F64: f}}
	a, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(shuf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Ann("v").F64, b.Ann("v").F64) {
		t.Fatalf("annotations differ: %v vs %v", a.Ann("v").F64, b.Ann("v").F64)
	}
	if a.NumTuples != b.NumTuples {
		t.Fatalf("tuple counts differ: %d vs %d", a.NumTuples, b.NumTuples)
	}
}

func TestDuplicateKeysCombine(t *testing.T) {
	in := BuildInput{
		Attrs: []string{"k"},
		Keys:  [][]uint32{{7, 7, 7, 3}},
		Anns: []AnnSpec{{
			Name: "v", Level: 0, Kind: F64,
			F64: []float64{1, 2, 4, 10},
		}},
	}
	tr, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTuples != 2 || tr.SourceRows != 4 {
		t.Fatalf("tuples=%d rows=%d", tr.NumTuples, tr.SourceRows)
	}
	// Sorted keys: 3 (10), 7 (1+2+4).
	if got, want := tr.Ann("v").F64, []float64{10, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("combined annotations = %v, want %v", got, want)
	}
}

func TestDuplicateKeysCustomCombine(t *testing.T) {
	min := func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	in := BuildInput{
		Attrs: []string{"k"},
		Keys:  [][]uint32{{5, 5}},
		Anns:  []AnnSpec{{Name: "v", Level: 0, Kind: F64, F64: []float64{9, 2}, Combine: min}},
	}
	tr, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Ann("v").F64[0]; got != 2 {
		t.Fatalf("min combine = %v, want 2", got)
	}
}

func TestIntermediateLevelAnnotation(t *testing.T) {
	// orders-like relation: key (orderkey, custkey), o_date determined by
	// orderkey, attached at level 0.
	in := BuildInput{
		Attrs: []string{"ok", "ck"},
		Keys: [][]uint32{
			{1, 1, 2},
			{10, 11, 10},
		},
		Anns: []AnnSpec{{
			Name: "o_date", Level: 0, Kind: Code,
			Codes: []uint32{100, 100, 200},
		}},
	}
	tr, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	ann := tr.Ann("o_date")
	if got, want := ann.Codes, []uint32{100, 200}; !reflect.DeepEqual(got, want) {
		t.Fatalf("level-0 annotation = %v, want %v", got, want)
	}
}

func TestRankOf(t *testing.T) {
	tr, err := Build(matrixInput())
	if err != nil {
		t.Fatal(err)
	}
	if r := tr.RankOf(0, 0, 1); r != 1 {
		t.Errorf("RankOf(level0, 1) = %d, want 1", r)
	}
	if r := tr.RankOf(0, 0, 9); r != -1 {
		t.Errorf("RankOf absent = %d, want -1", r)
	}
	// Row 2's children set is the third set at level 1: global ranks 3,4.
	rowRank := tr.RankOf(0, 0, 2)
	if r := tr.RankOf(1, rowRank, 2); r != 4 {
		t.Errorf("RankOf(2,2) = %d, want 4", r)
	}
	if v := tr.Ann("v").F64[4]; v != 0.5 {
		t.Errorf("ann[(2,2)] = %v, want 0.5", v)
	}
}

func TestDenseDetection(t *testing.T) {
	n := 64
	keys := make([][]uint32, 2)
	keys[0] = make([]uint32, n*n)
	keys[1] = make([]uint32, n*n)
	vals := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			keys[0][i*n+j] = uint32(i)
			keys[1][i*n+j] = uint32(j)
			vals[i*n+j] = float64(i + j)
		}
	}
	tr, err := Build(BuildInput{
		Attrs: []string{"i", "j"},
		Keys:  keys,
		Anns:  []AnnSpec{{Name: "v", Level: 1, Kind: F64, F64: vals}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Levels[0].Dense || !tr.Levels[1].Dense {
		t.Error("fully dense matrix should have dense levels")
	}
	// The dense annotation buffer is exactly the row-major matrix — the
	// BLAS-compatibility property of attribute elimination.
	if tr.Ann("v").F64[5] != 5 || tr.Ann("v").F64[n*n-1] != float64(2*(n-1)) {
		t.Error("dense annotation buffer is not row-major")
	}
	sparseTr, err := Build(matrixInput())
	if err != nil {
		t.Fatal(err)
	}
	if sparseTr.Levels[1].Dense {
		t.Error("sparse matrix level 1 should not be dense")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(BuildInput{}); err == nil {
		t.Error("no key columns should error")
	}
	if _, err := Build(BuildInput{Attrs: []string{"a"}, Keys: [][]uint32{{1}, {2}}}); err == nil {
		t.Error("attr/key mismatch should error")
	}
	if _, err := Build(BuildInput{Attrs: []string{"a", "b"}, Keys: [][]uint32{{1, 2}, {3}}}); err == nil {
		t.Error("ragged key columns should error")
	}
	if _, err := Build(BuildInput{
		Attrs: []string{"a"}, Keys: [][]uint32{{1}},
		Anns: []AnnSpec{{Name: "v", Level: 3, Kind: F64, F64: []float64{1}}},
	}); err == nil {
		t.Error("annotation level out of range should error")
	}
	if _, err := Build(BuildInput{
		Attrs: []string{"a"}, Keys: [][]uint32{{1}},
		Anns: []AnnSpec{{Name: "v", Level: 0, Kind: F64, F64: []float64{1, 2}}},
	}); err == nil {
		t.Error("annotation length mismatch should error")
	}
	if _, err := Build(BuildInput{
		Attrs: []string{"a"}, Keys: [][]uint32{{1}},
		Anns: []AnnSpec{
			{Name: "v", Level: 0, Kind: F64, F64: []float64{1}},
			{Name: "v", Level: 0, Kind: F64, F64: []float64{1}},
		},
	}); err == nil {
		t.Error("duplicate annotation name should error")
	}
}

func TestEmptyRelation(t *testing.T) {
	tr, err := Build(BuildInput{Attrs: []string{"a", "b"}, Keys: [][]uint32{{}, {}}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTuples != 0 {
		t.Fatalf("empty relation tuples = %d", tr.NumTuples)
	}
	if !tr.Set(0, 0).Empty() {
		t.Error("empty relation level-0 set should be empty")
	}
}

// Property: for random 3-column inputs, every input tuple is reachable
// through the trie and the trie contains exactly the distinct tuples.
func TestTrieContainsExactlyInputTuples(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		keys := [][]uint32{make([]uint32, n), make([]uint32, n), make([]uint32, n)}
		vals := make([]float64, n)
		type tup [3]uint32
		sum := map[tup]float64{}
		for i := 0; i < n; i++ {
			tp := tup{uint32(r.Intn(6)), uint32(r.Intn(6)), uint32(r.Intn(6))}
			keys[0][i], keys[1][i], keys[2][i] = tp[0], tp[1], tp[2]
			vals[i] = float64(r.Intn(100))
			sum[tp] += vals[i]
		}
		tr, err := Build(BuildInput{
			Attrs: []string{"a", "b", "c"},
			Keys:  keys,
			Anns:  []AnnSpec{{Name: "v", Level: 2, Kind: F64, F64: vals}},
		})
		if err != nil {
			return false
		}
		if tr.NumTuples != len(sum) {
			return false
		}
		// Walk the full trie; check each tuple and annotation.
		found := 0
		ok := true
		l0 := tr.Set(0, 0)
		l0.ForEachIndexed(func(i0 int, v0 uint32) {
			r0 := tr.GlobalRank(0, 0, i0)
			s1 := tr.Set(1, r0)
			s1.ForEachIndexed(func(i1 int, v1 uint32) {
				r1 := tr.GlobalRank(1, r0, i1)
				s2 := tr.Set(2, r1)
				s2.ForEachIndexed(func(i2 int, v2 uint32) {
					r2 := tr.GlobalRank(2, r1, i2)
					want, present := sum[tup{v0, v1, v2}]
					if !present || tr.Ann("v").F64[r2] != want {
						ok = false
					}
					found++
				})
			})
		})
		return ok && found == len(sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRadixSortMatchesComparisonSort(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 9000 // above the radix threshold
	keys := [][]uint32{make([]uint32, n), make([]uint32, n)}
	for i := 0; i < n; i++ {
		keys[0][i] = uint32(r.Intn(1 << 20))
		keys[1][i] = uint32(r.Intn(1 << 9))
	}
	got := sortRows(keys, n, 4)
	want := make([]int32, n)
	for i := range want {
		want[i] = int32(i)
	}
	sort.SliceStable(want, func(a, b int) bool {
		ra, rb := want[a], want[b]
		if keys[0][ra] != keys[0][rb] {
			return keys[0][ra] < keys[0][rb]
		}
		return keys[1][ra] < keys[1][rb]
	})
	for i := range got {
		ra, rb := got[i], want[i]
		if keys[0][ra] != keys[0][rb] || keys[1][ra] != keys[1][rb] {
			t.Fatalf("radix order diverges at %d", i)
		}
	}
}

func TestStringSummary(t *testing.T) {
	tr, err := Build(matrixInput())
	if err != nil {
		t.Fatal(err)
	}
	if s := tr.String(); s == "" {
		t.Error("String() should not be empty")
	}
	if tr.LevelOf("j") != 1 || tr.LevelOf("zzz") != -1 {
		t.Error("LevelOf wrong")
	}
}
