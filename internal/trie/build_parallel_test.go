package trie

import (
	"testing"
)

// TestParallelBuildMatchesSequential builds the same input with one
// thread (single dedup/emit region) and with many threads (level-0
// partitioned regions) and requires structurally identical tries,
// including combined duplicate annotations straddling chunk-size
// boundaries.
func TestParallelBuildMatchesSequential(t *testing.T) {
	const n = 40000 // above the 1<<14 parallel-scan threshold
	k0 := make([]uint32, n)
	k1 := make([]uint32, n)
	k2 := make([]uint32, n)
	ann := make([]float64, n)
	x := uint32(12345)
	for i := 0; i < n; i++ {
		x = x*1664525 + 1013904223
		k0[i] = x % 37 // few distinct level-0 keys → uneven regions
		k1[i] = (x >> 8) % 101
		k2[i] = (x >> 16) % 53 // collisions → full-duplicate combining
		ann[i] = float64(i%7) + 1
	}
	mkInput := func(threads int) BuildInput {
		return BuildInput{
			Attrs: []string{"a", "b", "c"},
			Keys:  [][]uint32{k0, k1, k2},
			Anns: []AnnSpec{{
				Name: "w", Level: 2, Kind: F64, F64: ann,
			}},
			Threads: threads,
		}
	}
	seq, err := Build(mkInput(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(mkInput(8))
	if err != nil {
		t.Fatal(err)
	}

	if seq.NumTuples != par.NumTuples {
		t.Fatalf("NumTuples: seq %d, par %d", seq.NumTuples, par.NumTuples)
	}
	for d := range seq.Levels {
		sl, pl := seq.Levels[d], par.Levels[d]
		if sl.NumElems() != pl.NumElems() {
			t.Fatalf("level %d: %d vs %d elems", d, sl.NumElems(), pl.NumElems())
		}
		if len(sl.Sets) != len(pl.Sets) {
			t.Fatalf("level %d: %d vs %d sets", d, len(sl.Sets), len(pl.Sets))
		}
		for i := range sl.Sets {
			if sl.Starts[i] != pl.Starts[i] {
				t.Fatalf("level %d set %d: start %d vs %d", d, i, sl.Starts[i], pl.Starts[i])
			}
			sv := sl.Sets[i].Values()
			pv := pl.Sets[i].Values()
			if len(sv) != len(pv) {
				t.Fatalf("level %d set %d: card %d vs %d", d, i, len(sv), len(pv))
			}
			for j := range sv {
				if sv[j] != pv[j] {
					t.Fatalf("level %d set %d elem %d: %d vs %d", d, i, j, sv[j], pv[j])
				}
			}
		}
	}
	sa, pa := seq.Ann("w"), par.Ann("w")
	if len(sa.F64) != len(pa.F64) {
		t.Fatalf("annotation length: %d vs %d", len(sa.F64), len(pa.F64))
	}
	for i := range sa.F64 {
		if sa.F64[i] != pa.F64[i] {
			t.Fatalf("annotation %d: %g vs %g", i, sa.F64[i], pa.F64[i])
		}
	}
}

// TestInsertionSortRows pins the small-n sort path against a simple
// lexicographic check.
func TestInsertionSortRows(t *testing.T) {
	k0 := []uint32{3, 1, 3, 1, 2, 2, 1}
	k1 := []uint32{0, 5, 1, 5, 9, 2, 4}
	order := make([]int32, len(k0))
	for i := range order {
		order[i] = int32(i)
	}
	insertionSortRows([][]uint32{k0, k1}, order)
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if k0[a] > k0[b] || (k0[a] == k0[b] && k1[a] > k1[b]) {
			t.Fatalf("rows %d,%d out of order", a, b)
		}
	}
}
