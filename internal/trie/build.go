package trie

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/set"
)

// CombineFunc merges the annotation values of two rows that share the
// same full key tuple (e.g. + for SUM annotations, min for MIN).
type CombineFunc func(a, b float64) float64

// Sum is the default CombineFunc.
func Sum(a, b float64) float64 { return a + b }

// AnnSpec describes one annotation column to attach during Build.
type AnnSpec struct {
	Name string
	// Level is the trie level the buffer hangs off (usually the last).
	Level int
	Kind  AnnKind
	// F64 / Codes hold one value per input row, matching Kind.
	F64   []float64
	Codes []uint32
	// Combine merges duplicate key tuples; nil means Sum. Only meaningful
	// for F64 annotations on the last level — elsewhere the key prefix is
	// assumed to functionally determine the value and the first is kept.
	Combine CombineFunc
}

// BuildInput is the columnar input to Build. All key columns and
// annotation columns must have the same length.
type BuildInput struct {
	Attrs []string   // key attribute name per level, outermost first
	Keys  [][]uint32 // Keys[level][row]: encoded key values
	Anns  []AnnSpec
	// Threads bounds sort/build parallelism; 0 means GOMAXPROCS.
	Threads int
}

// Build sorts the rows lexicographically by the key columns and
// constructs the trie level by level, deduplicating identical key tuples
// by combining their annotations (the AJAR pre-aggregation that makes
// annotations 1-1 with last-level trie elements, paper §II-C, §III-B).
func Build(in BuildInput) (*Trie, error) {
	k := len(in.Keys)
	if k == 0 {
		return nil, fmt.Errorf("trie: no key columns")
	}
	if len(in.Attrs) != k {
		return nil, fmt.Errorf("trie: %d attrs for %d key columns", len(in.Attrs), k)
	}
	n := len(in.Keys[0])
	for i, col := range in.Keys {
		if len(col) != n {
			return nil, fmt.Errorf("trie: key column %d has %d rows, want %d", i, len(col), n)
		}
	}
	for _, a := range in.Anns {
		if a.Level < 0 || a.Level >= k {
			return nil, fmt.Errorf("trie: annotation %q at level %d of %d", a.Name, a.Level, k)
		}
		if a.Kind == F64 && len(a.F64) != n {
			return nil, fmt.Errorf("trie: annotation %q has %d values, want %d", a.Name, len(a.F64), n)
		}
		if a.Kind == Code && len(a.Codes) != n {
			return nil, fmt.Errorf("trie: annotation %q has %d codes, want %d", a.Name, len(a.Codes), n)
		}
	}

	order := sortRows(in.Keys, n, in.Threads)

	t := &Trie{
		Attrs:      append([]string(nil), in.Attrs...),
		Levels:     make([]*Level, k),
		Anns:       make(map[string]*Annotation, len(in.Anns)),
		SourceRows: n,
	}

	// Per-level flattened element values and set boundaries.
	vals := make([][]uint32, k)
	ends := make([][]int32, k) // closed set boundaries (end offsets into vals)
	for d := 0; d < k; d++ {
		vals[d] = make([]uint32, 0, minInt(n, 1024))
		ends[d] = make([]int32, 0, 16)
	}

	anns := make([]*Annotation, len(in.Anns))
	combines := make([]CombineFunc, len(in.Anns))
	for i, a := range in.Anns {
		anns[i] = &Annotation{Name: a.Name, Level: a.Level, Kind: a.Kind}
		combines[i] = a.Combine
		if combines[i] == nil {
			combines[i] = Sum
		}
		if _, dup := t.Anns[a.Name]; dup {
			return nil, fmt.Errorf("trie: duplicate annotation %q", a.Name)
		}
		t.Anns[a.Name] = anns[i]
	}

	if n > 0 {
		prev := order[0]
		appendRow(in, anns, vals, prev, 0, k)
		for idx := 1; idx < n; idx++ {
			r := order[idx]
			// First level at which this row differs from the previous one.
			d := 0
			for d < k && in.Keys[d][r] == in.Keys[d][prev] {
				d++
			}
			if d == k {
				// Full duplicate key tuple: combine last-level annotations.
				for ai, a := range anns {
					if a.Level == k-1 && a.Kind == F64 {
						last := len(a.F64) - 1
						a.F64[last] = combines[ai](a.F64[last], in.Anns[ai].F64[r])
					}
				}
				prev = r
				continue
			}
			// Levels below d get new sets (their parent changed).
			for lvl := d + 1; lvl < k; lvl++ {
				ends[lvl] = append(ends[lvl], int32(len(vals[lvl])))
			}
			appendRow(in, anns, vals, r, d, k)
			prev = r
		}
		for lvl := 0; lvl < k; lvl++ {
			ends[lvl] = append(ends[lvl], int32(len(vals[lvl])))
		}
	} else {
		for lvl := 0; lvl < k; lvl++ {
			ends[lvl] = append(ends[lvl], 0)
		}
	}

	for d := 0; d < k; d++ {
		t.Levels[d] = buildLevel(vals[d], ends[d], in.Threads)
	}
	t.NumTuples = t.Levels[k-1].NumElems()

	// Sanity: each level's set count equals the previous level's elements.
	for d := 1; d < k; d++ {
		if len(t.Levels[d].Sets) != t.Levels[d-1].NumElems() && n > 0 {
			return nil, fmt.Errorf("trie: level %d has %d sets for %d parents",
				d, len(t.Levels[d].Sets), t.Levels[d-1].NumElems())
		}
	}
	return t, nil
}

// appendRow emits new trie elements for row r from level d downward and
// their annotation values.
func appendRow(in BuildInput, anns []*Annotation, vals [][]uint32, r int32, d, k int) {
	for lvl := d; lvl < k; lvl++ {
		vals[lvl] = append(vals[lvl], in.Keys[lvl][r])
		for ai, a := range anns {
			if a.Level != lvl {
				continue
			}
			switch a.Kind {
			case F64:
				a.F64 = append(a.F64, in.Anns[ai].F64[r])
			case Code:
				a.Codes = append(a.Codes, in.Anns[ai].Codes[r])
			}
		}
	}
}

// buildLevel splits the flattened values at the recorded boundaries into
// per-parent sets, builds rank indexes, and detects full density.
func buildLevel(vals []uint32, ends []int32, threads int) *Level {
	l := &Level{
		Sets:   make([]set.Set, len(ends)),
		Starts: make([]int32, len(ends)+1),
		Dense:  true,
	}
	// Starts are prefix sums of set cardinalities (= segment lengths,
	// since segments hold distinct sorted values).
	var start int32
	var elems int32
	for i, end := range ends {
		l.Starts[i] = elems
		elems += end - start
		start = end
	}
	l.Starts[len(ends)] = elems
	// Set construction (layout choice, bitset fill, rank indexes) is
	// independent per parent and parallelizes cleanly.
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if len(ends) < 1024 || threads <= 1 {
		threads = 1
	}
	var dense [64]bool
	if threads > len(dense) {
		threads = len(dense)
	}
	chunk := (len(ends) + threads - 1) / threads
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > len(ends) {
			hi = len(ends)
		}
		if lo >= hi {
			dense[t] = true
			continue
		}
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			allDense := true
			for i := lo; i < hi; i++ {
				var s0 int32
				if i > 0 {
					s0 = ends[i-1]
				}
				s := set.FromSorted(vals[s0:ends[i]])
				s.BuildRankIndex()
				l.Sets[i] = s
				if s.Card() > 0 && (s.Layout() != set.Bitset || int(s.Max()-s.Min())+1 != s.Card()) {
					allDense = false
				}
			}
			dense[t] = allDense
		}(t, lo, hi)
	}
	wg.Wait()
	for t := 0; t < threads; t++ {
		if !dense[t] {
			l.Dense = false
		}
	}
	return l
}

// sortRows returns row indices ordered lexicographically by the key
// columns. It uses a parallel LSD radix sort on 8-bit digits: each pass
// computes per-worker digit histograms, derives stable global offsets,
// and scatters in parallel — near-linear on the multi-million-row
// benchmark inputs.
func sortRows(keys [][]uint32, n, threads int) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	if n < 1<<12 {
		sort.Slice(order, func(a, b int) bool {
			ra, rb := order[a], order[b]
			for _, col := range keys {
				va, vb := col[ra], col[rb]
				if va != vb {
					return va < vb
				}
			}
			return false
		})
		return order
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n/(1<<14)+1 {
		threads = n/(1<<14) + 1
	}
	tmp := make([]int32, n)
	counts := make([][256]int, threads)
	chunk := (n + threads - 1) / threads
	for colIdx := len(keys) - 1; colIdx >= 0; colIdx-- {
		col := keys[colIdx]
		maxV := uint32(0)
		for _, v := range col {
			if v > maxV {
				maxV = v
			}
		}
		for shift := uint(0); shift < 32; shift += 8 {
			if shift > 0 && maxV>>shift == 0 {
				break
			}
			// Per-worker histograms.
			var wg sync.WaitGroup
			for t := 0; t < threads; t++ {
				lo, hi := t*chunk, (t+1)*chunk
				if hi > n {
					hi = n
				}
				wg.Add(1)
				go func(t, lo, hi int) {
					defer wg.Done()
					c := &counts[t]
					for i := range c {
						c[i] = 0
					}
					for _, r := range order[lo:hi] {
						c[(col[r]>>shift)&0xff]++
					}
				}(t, lo, hi)
			}
			wg.Wait()
			// Stable global offsets: digit-major, then worker order.
			sum := 0
			for d := 0; d < 256; d++ {
				for t := 0; t < threads; t++ {
					c := counts[t][d]
					counts[t][d] = sum
					sum += c
				}
			}
			// Parallel stable scatter.
			for t := 0; t < threads; t++ {
				lo, hi := t*chunk, (t+1)*chunk
				if hi > n {
					hi = n
				}
				wg.Add(1)
				go func(t, lo, hi int) {
					defer wg.Done()
					c := &counts[t]
					for _, r := range order[lo:hi] {
						d := (col[r] >> shift) & 0xff
						tmp[c[d]] = r
						c[d]++
					}
				}(t, lo, hi)
			}
			wg.Wait()
			order, tmp = tmp, order
		}
	}
	return order
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
