package trie

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/qerr"
	"repro/internal/set"
)

// CombineFunc merges the annotation values of two rows that share the
// same full key tuple (e.g. + for SUM annotations, min for MIN).
type CombineFunc func(a, b float64) float64

// Sum is the default CombineFunc.
func Sum(a, b float64) float64 { return a + b }

// AnnSpec describes one annotation column to attach during Build.
type AnnSpec struct {
	Name string
	// Level is the trie level the buffer hangs off (usually the last).
	Level int
	Kind  AnnKind
	// F64 / Codes hold one value per input row, matching Kind.
	F64   []float64
	Codes []uint32
	// Combine merges duplicate key tuples; nil means Sum. Only meaningful
	// for F64 annotations on the last level — elsewhere the key prefix is
	// assumed to functionally determine the value and the first is kept.
	Combine CombineFunc
}

// BuildInput is the columnar input to Build. All key columns and
// annotation columns must have the same length.
type BuildInput struct {
	Attrs []string   // key attribute name per level, outermost first
	Keys  [][]uint32 // Keys[level][row]: encoded key values
	Anns  []AnnSpec
	// Threads bounds sort/build parallelism; 0 means GOMAXPROCS.
	Threads int
}

// Build sorts the rows lexicographically by the key columns and
// constructs the trie level by level, deduplicating identical key tuples
// by combining their annotations (the AJAR pre-aggregation that makes
// annotations 1-1 with last-level trie elements, paper §II-C, §III-B).
func Build(in BuildInput) (*Trie, error) {
	faultinject.Fire(faultinject.PointTrieBuild)
	k := len(in.Keys)
	if k == 0 {
		return nil, fmt.Errorf("trie: no key columns")
	}
	if len(in.Attrs) != k {
		return nil, fmt.Errorf("trie: %d attrs for %d key columns", len(in.Attrs), k)
	}
	n := len(in.Keys[0])
	for i, col := range in.Keys {
		if len(col) != n {
			return nil, fmt.Errorf("trie: key column %d has %d rows, want %d", i, len(col), n)
		}
	}
	for _, a := range in.Anns {
		if a.Level < 0 || a.Level >= k {
			return nil, fmt.Errorf("trie: annotation %q at level %d of %d", a.Name, a.Level, k)
		}
		if a.Kind == F64 && len(a.F64) != n {
			return nil, fmt.Errorf("trie: annotation %q has %d values, want %d", a.Name, len(a.F64), n)
		}
		if a.Kind == Code && len(a.Codes) != n {
			return nil, fmt.Errorf("trie: annotation %q has %d codes, want %d", a.Name, len(a.Codes), n)
		}
	}

	order := sortRows(in.Keys, n, in.Threads)

	t := &Trie{
		Attrs:      append([]string(nil), in.Attrs...),
		Levels:     make([]*Level, k),
		Anns:       make(map[string]*Annotation, len(in.Anns)),
		SourceRows: n,
	}

	// Per-level flattened element values and set boundaries.
	vals := make([][]uint32, k)
	ends := make([][]int32, k) // closed set boundaries (end offsets into vals)

	anns := make([]*Annotation, len(in.Anns))
	combines := make([]CombineFunc, len(in.Anns))
	for i, a := range in.Anns {
		anns[i] = &Annotation{Name: a.Name, Level: a.Level, Kind: a.Kind}
		combines[i] = a.Combine
		if combines[i] == nil {
			combines[i] = Sum
		}
		if _, dup := t.Anns[a.Name]; dup {
			return nil, fmt.Errorf("trie: duplicate annotation %q", a.Name)
		}
		t.Anns[a.Name] = anns[i]
	}

	if n > 0 {
		// The dedup/emit scan parallelizes across level-0 partitions:
		// rows with equal full keys share the level-0 key, so duplicate
		// combination stays region-local, and each region boundary is
		// exactly a sequential-scan "new set at every level" event.
		regions := splitLevel0(in.Keys[0], order, buildThreads(in.Threads))
		if len(regions) == 1 {
			for d := 0; d < k; d++ {
				vals[d] = make([]uint32, 0, minInt(n, 1024))
				ends[d] = make([]int32, 0, 16)
			}
			aF := make([][]float64, len(in.Anns))
			aC := make([][]uint32, len(in.Anns))
			scanRegion(in, combines, order, k, vals, ends, aF, aC)
			for ai := range anns {
				anns[ai].F64 = aF[ai]
				anns[ai].Codes = aC[ai]
			}
		} else {
			type regionOut struct {
				vals [][]uint32
				ends [][]int32
				aF   [][]float64
				aC   [][]uint32
			}
			outs := make([]regionOut, len(regions))
			var wg sync.WaitGroup
			// Panics in region workers re-raise on the caller after the
			// join, where the query-boundary barrier converts them.
			var pc qerr.PanicCell
			for ri, reg := range regions {
				wg.Add(1)
				go func(ri, lo, hi int) {
					defer wg.Done()
					defer pc.Recover()
					o := &outs[ri]
					o.vals = make([][]uint32, k)
					o.ends = make([][]int32, k)
					o.aF = make([][]float64, len(in.Anns))
					o.aC = make([][]uint32, len(in.Anns))
					scanRegion(in, combines, order[lo:hi], k, o.vals, o.ends, o.aF, o.aC)
				}(ri, reg[0], reg[1])
			}
			wg.Wait()
			pc.Repanic()
			// Concatenate region outputs, shifting set boundaries by the
			// preceding regions' value counts.
			for lvl := 0; lvl < k; lvl++ {
				total, nEnds := 0, 0
				for _, o := range outs {
					total += len(o.vals[lvl])
					nEnds += len(o.ends[lvl])
				}
				vals[lvl] = make([]uint32, 0, total)
				ends[lvl] = make([]int32, 0, nEnds+1)
				for _, o := range outs {
					off := int32(len(vals[lvl]))
					vals[lvl] = append(vals[lvl], o.vals[lvl]...)
					for _, e := range o.ends[lvl] {
						ends[lvl] = append(ends[lvl], off+e)
					}
				}
			}
			for ai := range anns {
				total := 0
				for _, o := range outs {
					total += len(o.aF[ai]) + len(o.aC[ai])
				}
				switch anns[ai].Kind {
				case F64:
					anns[ai].F64 = make([]float64, 0, total)
					for _, o := range outs {
						anns[ai].F64 = append(anns[ai].F64, o.aF[ai]...)
					}
				case Code:
					anns[ai].Codes = make([]uint32, 0, total)
					for _, o := range outs {
						anns[ai].Codes = append(anns[ai].Codes, o.aC[ai]...)
					}
				}
			}
		}
		// scanRegion closes levels 1..k-1 at each region end; the level-0
		// close spans the whole trie.
		ends[0] = append(ends[0], int32(len(vals[0])))
	} else {
		for lvl := 0; lvl < k; lvl++ {
			ends[lvl] = append(ends[lvl], 0)
		}
	}

	for d := 0; d < k; d++ {
		t.Levels[d] = buildLevel(vals[d], ends[d], in.Threads)
	}
	t.NumTuples = t.Levels[k-1].NumElems()

	// Sanity: each level's set count equals the previous level's elements.
	for d := 1; d < k; d++ {
		if len(t.Levels[d].Sets) != t.Levels[d-1].NumElems() && n > 0 {
			return nil, fmt.Errorf("trie: level %d has %d sets for %d parents",
				d, len(t.Levels[d].Sets), t.Levels[d-1].NumElems())
		}
	}
	return t, nil
}

// buildThreads resolves the parallelism bound for Build's scans.
func buildThreads(threads int) int {
	if threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return threads
}

// splitLevel0 partitions the sorted row order into contiguous regions
// aligned to level-0 key boundaries, so duplicate tuples (which share
// every key column, in particular level 0) never straddle regions.
func splitLevel0(col0 []uint32, order []int32, threads int) [][2]int {
	n := len(order)
	if threads <= 1 || n < 1<<14 {
		return [][2]int{{0, n}}
	}
	regions := make([][2]int, 0, threads)
	chunk := (n + threads - 1) / threads
	lo := 0
	for lo < n {
		hi := lo + chunk
		if hi >= n {
			hi = n
		} else {
			for hi < n && col0[order[hi]] == col0[order[hi-1]] {
				hi++
			}
		}
		regions = append(regions, [2]int{lo, hi})
		lo = hi
	}
	return regions
}

// scanRegion runs the dedup/emit scan over one contiguous region of the
// sorted row order, appending into the caller's per-level vals/ends and
// per-annotation buffers. It closes the sets of levels 1..k-1 at the
// region end (the level-0 close spans regions and is the caller's).
func scanRegion(in BuildInput, combines []CombineFunc, order []int32, k int,
	vals [][]uint32, ends [][]int32, aF [][]float64, aC [][]uint32) {
	emit := func(r int32, d int) {
		for lvl := d; lvl < k; lvl++ {
			vals[lvl] = append(vals[lvl], in.Keys[lvl][r])
			for ai := range in.Anns {
				a := &in.Anns[ai]
				if a.Level != lvl {
					continue
				}
				switch a.Kind {
				case F64:
					aF[ai] = append(aF[ai], a.F64[r])
				case Code:
					aC[ai] = append(aC[ai], a.Codes[r])
				}
			}
		}
	}
	prev := order[0]
	emit(prev, 0)
	for _, r := range order[1:] {
		// First level at which this row differs from the previous one.
		d := 0
		for d < k && in.Keys[d][r] == in.Keys[d][prev] {
			d++
		}
		if d == k {
			// Full duplicate key tuple: combine last-level annotations.
			for ai := range in.Anns {
				a := &in.Anns[ai]
				if a.Level == k-1 && a.Kind == F64 {
					last := len(aF[ai]) - 1
					aF[ai][last] = combines[ai](aF[ai][last], a.F64[r])
				}
			}
			prev = r
			continue
		}
		// Levels below d get new sets (their parent changed).
		for lvl := d + 1; lvl < k; lvl++ {
			ends[lvl] = append(ends[lvl], int32(len(vals[lvl])))
		}
		emit(r, d)
		prev = r
	}
	for lvl := 1; lvl < k; lvl++ {
		ends[lvl] = append(ends[lvl], int32(len(vals[lvl])))
	}
}

// buildLevel splits the flattened values at the recorded boundaries into
// per-parent sets, builds rank indexes, and detects full density.
func buildLevel(vals []uint32, ends []int32, threads int) *Level {
	l := &Level{
		Sets:   make([]set.Set, len(ends)),
		Starts: make([]int32, len(ends)+1),
		Dense:  true,
	}
	// Starts are prefix sums of set cardinalities (= segment lengths,
	// since segments hold distinct sorted values).
	var start int32
	var elems int32
	for i, end := range ends {
		l.Starts[i] = elems
		elems += end - start
		start = end
	}
	l.Starts[len(ends)] = elems
	// Set construction (layout choice, bitset fill, rank indexes) is
	// independent per parent and parallelizes cleanly.
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if len(ends) < 1024 || threads <= 1 {
		threads = 1
	}
	var dense [64]bool
	if threads > len(dense) {
		threads = len(dense)
	}
	chunk := (len(ends) + threads - 1) / threads
	var wg sync.WaitGroup
	var pc qerr.PanicCell
	for t := 0; t < threads; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > len(ends) {
			hi = len(ends)
		}
		if lo >= hi {
			dense[t] = true
			continue
		}
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			defer pc.Recover()
			allDense := true
			for i := lo; i < hi; i++ {
				var s0 int32
				if i > 0 {
					s0 = ends[i-1]
				}
				s := set.FromSorted(vals[s0:ends[i]])
				s.BuildRankIndex()
				l.Sets[i] = s
				if s.Card() > 0 && (s.Layout() != set.Bitset || int(s.Max()-s.Min())+1 != s.Card()) {
					allDense = false
				}
			}
			dense[t] = allDense
		}(t, lo, hi)
	}
	wg.Wait()
	pc.Repanic()
	for t := 0; t < threads; t++ {
		if !dense[t] {
			l.Dense = false
		}
	}
	return l
}

// sortRows returns row indices ordered lexicographically by the key
// columns. It uses a parallel LSD radix sort on 8-bit digits: each pass
// computes per-worker digit histograms, derives stable global offsets,
// and scatters in parallel — near-linear on the multi-million-row
// benchmark inputs.
func sortRows(keys [][]uint32, n, threads int) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	if n < 256 {
		// Hand-rolled insertion sort: no reflection, no allocation, and
		// O(n) on the near-sorted child-node outputs that dominate the
		// small-input case.
		insertionSortRows(keys, order)
		return order
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n/(1<<14)+1 {
		threads = n/(1<<14) + 1
	}
	tmp := make([]int32, n)
	counts := make([][256]int, threads)
	chunk := (n + threads - 1) / threads
	var pc qerr.PanicCell
	for colIdx := len(keys) - 1; colIdx >= 0; colIdx-- {
		col := keys[colIdx]
		maxV := uint32(0)
		for _, v := range col {
			if v > maxV {
				maxV = v
			}
		}
		for shift := uint(0); shift < 32; shift += 8 {
			if shift > 0 && maxV>>shift == 0 {
				break
			}
			// Per-worker histograms.
			var wg sync.WaitGroup
			for t := 0; t < threads; t++ {
				lo, hi := t*chunk, (t+1)*chunk
				if hi > n {
					hi = n
				}
				wg.Add(1)
				go func(t, lo, hi int) {
					defer wg.Done()
					defer pc.Recover()
					c := &counts[t]
					for i := range c {
						c[i] = 0
					}
					for _, r := range order[lo:hi] {
						c[(col[r]>>shift)&0xff]++
					}
				}(t, lo, hi)
			}
			wg.Wait()
			pc.Repanic()
			// Stable global offsets: digit-major, then worker order.
			sum := 0
			for d := 0; d < 256; d++ {
				for t := 0; t < threads; t++ {
					c := counts[t][d]
					counts[t][d] = sum
					sum += c
				}
			}
			// Parallel stable scatter.
			for t := 0; t < threads; t++ {
				lo, hi := t*chunk, (t+1)*chunk
				if hi > n {
					hi = n
				}
				wg.Add(1)
				go func(t, lo, hi int) {
					defer wg.Done()
					defer pc.Recover()
					c := &counts[t]
					for _, r := range order[lo:hi] {
						d := (col[r] >> shift) & 0xff
						tmp[c[d]] = r
						c[d]++
					}
				}(t, lo, hi)
			}
			wg.Wait()
			pc.Repanic()
			order, tmp = tmp, order
		}
	}
	return order
}

// insertionSortRows sorts order lexicographically by the key columns.
func insertionSortRows(keys [][]uint32, order []int32) {
	for i := 1; i < len(order); i++ {
		r := order[i]
		j := i - 1
		for j >= 0 && rowLess(keys, r, order[j]) {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = r
	}
}

func rowLess(keys [][]uint32, a, b int32) bool {
	for _, col := range keys {
		va, vb := col[a], col[b]
		if va != vb {
			return va < vb
		}
	}
	return false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
