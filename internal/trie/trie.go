// Package trie implements LevelHeaded's only physical index: a
// level-per-attribute trie over dictionary-encoded keys, with columnar
// annotation buffers attached to (and reachable from) any level (paper
// §III-B, Fig. 3, Table I).
//
// Each trie level L holds one set per node at level L-1 (level 0 holds a
// single set). Elements of every level carry a dense global rank; the
// child set of element (parent p, index i) at level L is
// Levels[L+1].Sets[Starts[p]+i]. Annotation buffers are indexed by the
// global rank of the level they hang off, which is what lets attribute
// elimination load a single annotation column in isolation — and lets a
// fully-dense annotation buffer be handed to a BLAS kernel unchanged.
package trie

import (
	"fmt"

	"repro/internal/set"
)

// AnnKind is the physical type of an annotation buffer.
type AnnKind uint8

const (
	// F64 annotations hold numeric values aggregated through semirings.
	F64 AnnKind = iota
	// Code annotations hold dictionary codes (strings, dates) used by
	// GROUP BY and metadata lookups.
	Code
)

// Annotation is one columnar annotation buffer hanging off trie level
// Level. Exactly one of F64 / Codes is populated, per Kind.
type Annotation struct {
	Name  string
	Level int
	Kind  AnnKind
	F64   []float64
	Codes []uint32
}

// Level is one trie level: a set of children per parent node.
type Level struct {
	// Sets[p] holds the values under parent node p (level 0 has one set).
	Sets []set.Set
	// Starts[p] is the global rank of the first element of Sets[p];
	// Starts has len(Sets)+1 entries, so Starts[len(Sets)] is the total
	// element count of the level.
	Starts []int32
	// Dense reports that every set on this level is a contiguous range —
	// the icost-0 case of the cost model and the BLAS-dispatch trigger.
	Dense bool
}

// NumElems reports the total number of elements on the level.
func (l *Level) NumElems() int {
	if len(l.Starts) == 0 {
		return 0
	}
	return int(l.Starts[len(l.Starts)-1])
}

// Trie is an immutable k-level trie plus its annotation buffers.
type Trie struct {
	// Attrs names the key attribute stored at each level, in order.
	Attrs  []string
	Levels []*Level
	// Anns maps annotation name to its buffer.
	Anns map[string]*Annotation
	// NumTuples is the number of distinct key tuples (last-level elements).
	NumTuples int
	// SourceRows is the number of input rows before key deduplication.
	SourceRows int
}

// NumLevels reports the number of key attributes.
func (t *Trie) NumLevels() int { return len(t.Levels) }

// LevelOf returns the level index of the named key attribute, or -1.
func (t *Trie) LevelOf(attr string) int {
	for i, a := range t.Attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// Set returns the child set at the given level under the parent with the
// given global rank at the previous level. For level 0, parentRank must
// be 0.
func (t *Trie) Set(level int, parentRank int32) *set.Set {
	return &t.Levels[level].Sets[parentRank]
}

// GlobalRank returns the global rank of the element at position idx of
// the set under parentRank at the given level.
func (t *Trie) GlobalRank(level int, parentRank int32, idx int) int32 {
	return t.Levels[level].Starts[parentRank] + int32(idx)
}

// RankOf locates value v within the set under parentRank at the given
// level and returns its global rank, or -1 if absent.
func (t *Trie) RankOf(level int, parentRank int32, v uint32) int32 {
	s := &t.Levels[level].Sets[parentRank]
	i := s.Rank(v)
	if i < 0 {
		return -1
	}
	return t.Levels[level].Starts[parentRank] + int32(i)
}

// Ann returns the named annotation buffer or nil.
func (t *Trie) Ann(name string) *Annotation { return t.Anns[name] }

// MemBytes estimates the heap footprint of the trie payload.
func (t *Trie) MemBytes() int {
	n := 0
	for _, l := range t.Levels {
		for i := range l.Sets {
			n += l.Sets[i].MemBytes()
		}
		n += len(l.Starts) * 4
	}
	for _, a := range t.Anns {
		n += len(a.F64)*8 + len(a.Codes)*4
	}
	return n
}

// String summarizes the trie shape for EXPLAIN output.
func (t *Trie) String() string {
	s := fmt.Sprintf("trie(%v) tuples=%d", t.Attrs, t.NumTuples)
	for i, l := range t.Levels {
		s += fmt.Sprintf(" | L%d sets=%d elems=%d dense=%v", i, len(l.Sets), l.NumElems(), l.Dense)
	}
	return s
}
