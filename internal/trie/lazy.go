package trie

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Lazy is a COLT-style lazily-built generalized hash trie (Free Join,
// arXiv 2301.10841): level 0 is materialized eagerly at construction,
// deeper levels and annotation buffers materialize on first probe, one
// whole level at a time, under a per-trie single-flight lock so
// concurrent workers (and queries sharing a cached instance) never
// duplicate or race a build.
//
// Materialization uses a stable counting-bucket pass per level instead
// of the full LSD radix sort of Build: rows are partitioned by the next
// key column within each current leaf group, preserving original row
// order inside equal-key runs. Because the radix sort is also stable,
// the resulting element sequence, grouping, and duplicate-fold order
// are exactly those of Build — Full() on a Lazy yields a Trie
// bit-identical to Build on the same input.
//
// Readers must call EnsureLevels / EnsureAnns before touching a level
// or annotation buffer; the atomic built counters give the
// happens-before edge, so already-materialized levels are read without
// locking.
type Lazy struct {
	Attrs []string

	in BuildInput
	k  int // number of key levels
	n  int // source rows

	mu       sync.Mutex
	built    atomic.Int32 // number of fully materialized levels
	annsDone atomic.Bool
	fullDone atomic.Bool

	levels []*lazyLevel

	// rows is the frontier permutation: source rows bucketed through the
	// deepest built level. rowOff boundaries recorded per level stay
	// valid forever because deeper bucketing only permutes within groups.
	rows []int32

	anns    map[string]*Annotation
	annSpec []AnnSpec

	// cnt is the shared counting scratch, sized to the largest key code
	// seen so far; gvbuf collects per-group distinct values. cntDirty
	// guards against a panic mid-pass leaving stale counts behind.
	cnt      []int32
	gvbuf    []uint32
	cntDirty bool

	// probe0 is an optional dense code->rank+1 index over level 0,
	// built on demand for the binary hash-join probe loop.
	probe0      []int32
	probe0Ready atomic.Bool

	full *Trie
}

// lazyLevel mirrors one trie level in flattened form: distinct values
// concatenated per parent set, parent boundaries, and the row-range
// boundary of every element within the frontier permutation.
type lazyLevel struct {
	vals   []uint32
	starts []int32 // len = numParents+1; element-rank bounds per parent set
	rowOff []int32 // len = numElems+1; row-range bounds into Lazy.rows
}

// NewLazy validates the input exactly like Build and materializes
// level 0. All deeper work is deferred.
func NewLazy(in BuildInput) (*Lazy, error) {
	faultinject.Fire(faultinject.PointTrieBuild)
	k := len(in.Keys)
	if k == 0 {
		return nil, fmt.Errorf("trie: no key columns")
	}
	if len(in.Attrs) != k {
		return nil, fmt.Errorf("trie: %d attrs for %d key columns", len(in.Attrs), k)
	}
	n := len(in.Keys[0])
	for i, col := range in.Keys {
		if len(col) != n {
			return nil, fmt.Errorf("trie: key column %d has %d rows, want %d", i, len(col), n)
		}
	}
	l := &Lazy{
		Attrs:   append([]string(nil), in.Attrs...),
		in:      in,
		k:       k,
		n:       n,
		levels:  make([]*lazyLevel, k),
		anns:    make(map[string]*Annotation, len(in.Anns)),
		annSpec: in.Anns,
	}
	for _, a := range in.Anns {
		if a.Level < 0 || a.Level >= k {
			return nil, fmt.Errorf("trie: annotation %q at level %d of %d", a.Name, a.Level, k)
		}
		if a.Kind == F64 && len(a.F64) != n {
			return nil, fmt.Errorf("trie: annotation %q has %d values, want %d", a.Name, len(a.F64), n)
		}
		if a.Kind == Code && len(a.Codes) != n {
			return nil, fmt.Errorf("trie: annotation %q has %d codes, want %d", a.Name, len(a.Codes), n)
		}
		if _, dup := l.anns[a.Name]; dup {
			return nil, fmt.Errorf("trie: duplicate annotation %q", a.Name)
		}
		l.anns[a.Name] = &Annotation{Name: a.Name, Level: a.Level, Kind: a.Kind}
	}
	l.mu.Lock()
	l.materializeLocked(0)
	l.built.Store(1)
	l.mu.Unlock()
	return l, nil
}

// NumLevels reports the number of key attributes.
func (l *Lazy) NumLevels() int { return l.k }

// SourceRows reports the number of input rows before deduplication.
func (l *Lazy) SourceRows() int { return l.n }

// BuiltLevels reports how many levels are currently materialized.
func (l *Lazy) BuiltLevels() int { return int(l.built.Load()) }

// AnnsBuilt reports whether annotation buffers are materialized.
func (l *Lazy) AnnsBuilt() bool { return l.annsDone.Load() }

// NumTuples reports the number of distinct key tuples. It requires the
// last level to be materialized.
func (l *Lazy) NumTuples() int {
	lv := l.levels[l.k-1]
	return int(lv.starts[len(lv.starts)-1])
}

// EnsureLevels materializes levels [0, upto] if not already built.
func (l *Lazy) EnsureLevels(upto int) {
	if upto >= l.k {
		upto = l.k - 1
	}
	if int(l.built.Load()) > upto {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ensureLevelsLocked(upto)
}

func (l *Lazy) ensureLevelsLocked(upto int) {
	for d := int(l.built.Load()); d <= upto; d++ {
		faultinject.Fire(faultinject.PointTrieBuild)
		l.materializeLocked(d)
		l.built.Store(int32(d + 1))
	}
}

// EnsureAnns materializes every annotation buffer (building all key
// levels first if needed).
func (l *Lazy) EnsureAnns() {
	if l.annsDone.Load() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ensureAnnsLocked()
}

func (l *Lazy) ensureAnnsLocked() {
	if l.annsDone.Load() {
		return
	}
	l.ensureLevelsLocked(l.k - 1)
	for ai := range l.annSpec {
		a := &l.annSpec[ai]
		out := l.anns[a.Name]
		lv := l.levels[a.Level]
		elems := len(lv.rowOff) - 1
		switch a.Kind {
		case Code:
			// The key prefix functionally determines the value; keep the
			// first row of the element in frontier (= lex) order, exactly
			// what the sorted-scan build emits.
			codes := make([]uint32, elems)
			for e := 0; e < elems; e++ {
				codes[e] = a.Codes[l.rows[lv.rowOff[e]]]
			}
			out.Codes = codes
		case F64:
			vals := make([]float64, elems)
			if a.Level == l.k-1 {
				// Leaf level: fold duplicate key tuples in row order —
				// the same left-fold the stable sorted scan performs.
				src := a.F64
				if a.Combine == nil {
					for e := 0; e < elems; e++ {
						s := src[l.rows[lv.rowOff[e]]]
						for _, r := range l.rows[lv.rowOff[e]+1 : lv.rowOff[e+1]] {
							s += src[r]
						}
						vals[e] = s
					}
				} else {
					comb := a.Combine
					for e := 0; e < elems; e++ {
						s := src[l.rows[lv.rowOff[e]]]
						for _, r := range l.rows[lv.rowOff[e]+1 : lv.rowOff[e+1]] {
							s = comb(s, src[r])
						}
						vals[e] = s
					}
				}
			} else {
				for e := 0; e < elems; e++ {
					vals[e] = a.F64[l.rows[lv.rowOff[e]]]
				}
			}
			out.F64 = vals
		}
	}
	l.annsDone.Store(true)
}

// materializeLocked buckets the frontier by key column d, appending one
// refined group per distinct (prefix, value) pair. Stability: rows keep
// their relative order inside each new group.
func (l *Lazy) materializeLocked(d int) {
	col := l.in.Keys[d]
	// Size the counting scratch to the column's code domain.
	var maxV uint32
	for _, v := range col {
		if v > maxV {
			maxV = v
		}
	}
	if need := int(maxV) + 1; l.n > 0 && len(l.cnt) < need {
		l.cnt = make([]int32, need)
	}
	if l.cntDirty {
		clear(l.cnt)
	}
	l.cntDirty = true

	lv := &lazyLevel{}
	var prevOff []int32
	if d == 0 {
		prevOff = []int32{0, int32(l.n)}
	} else {
		prevOff = l.levels[d-1].rowOff
	}
	nGroups := len(prevOff) - 1
	lv.starts = make([]int32, 1, nGroups+1)
	// Distinct-count upper bound is the frontier row count.
	lv.vals = make([]uint32, 0, minInt(l.n, 1024))
	lv.rowOff = make([]int32, 0, minInt(l.n, 1024)+1)
	newRows := make([]int32, l.n)

	cnt, rows := l.cnt, l.rows
	for g := 0; g < nGroups; g++ {
		lo, hi := prevOff[g], prevOff[g+1]
		gv := l.gvbuf[:0]
		if d == 0 {
			// Implicit identity frontier at level 0.
			for r := lo; r < hi; r++ {
				c := col[r]
				if cnt[c] == 0 {
					gv = append(gv, c)
				}
				cnt[c]++
			}
		} else {
			for _, r := range rows[lo:hi] {
				c := col[r]
				if cnt[c] == 0 {
					gv = append(gv, c)
				}
				cnt[c]++
			}
		}
		slices.Sort(gv)
		// Turn counts into scatter offsets; rowOff[e] records element
		// e's row-range start (the next entry, or the final n, is its
		// end).
		off := lo
		for _, v := range gv {
			lv.rowOff = append(lv.rowOff, off)
			c := cnt[v]
			cnt[v] = off
			off += c
		}
		// Stable scatter.
		if d == 0 {
			for r := lo; r < hi; r++ {
				c := col[r]
				newRows[cnt[c]] = r
				cnt[c]++
			}
		} else {
			for _, r := range rows[lo:hi] {
				c := col[r]
				newRows[cnt[c]] = r
				cnt[c]++
			}
		}
		for _, v := range gv {
			cnt[v] = 0
		}
		lv.vals = append(lv.vals, gv...)
		lv.starts = append(lv.starts, int32(len(lv.vals)))
		if cap(l.gvbuf) < cap(gv) {
			l.gvbuf = gv
		}
	}
	lv.rowOff = append(lv.rowOff, int32(l.n))
	l.cntDirty = false
	l.levels[d] = lv
	l.rows = newRows
}

// Values returns the distinct sorted child values under the parent with
// the given global rank (0 for level 0). The level must be built.
func (l *Lazy) Values(level int, parentRank int32) []uint32 {
	lv := l.levels[level]
	return lv.vals[lv.starts[parentRank]:lv.starts[parentRank+1]]
}

// Start returns the global rank of the first element of the set under
// parentRank at the given level.
func (l *Lazy) Start(level int, parentRank int32) int32 {
	return l.levels[level].starts[parentRank]
}

// Card returns the cardinality of the set under parentRank.
func (l *Lazy) Card(level int, parentRank int32) int {
	lv := l.levels[level]
	return int(lv.starts[parentRank+1] - lv.starts[parentRank])
}

// RankOf locates v in the set under parentRank and returns its global
// rank, or -1 if absent. Binary search over the flattened value run.
func (l *Lazy) RankOf(level int, parentRank int32, v uint32) int32 {
	lv := l.levels[level]
	lo, hi := lv.starts[parentRank], lv.starts[parentRank+1]
	for lo < hi {
		mid := (lo + hi) >> 1
		if lv.vals[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < lv.starts[parentRank+1] && lv.vals[lo] == v {
		return lo
	}
	return -1
}

// EnsureProbe0 builds the dense code->rank+1 probe index over level 0.
func (l *Lazy) EnsureProbe0() {
	if l.probe0Ready.Load() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.probe0Ready.Load() {
		return
	}
	vals := l.Values(0, 0)
	var maxV uint32
	if len(vals) > 0 {
		maxV = vals[len(vals)-1]
	}
	idx := make([]int32, int(maxV)+1)
	for i, v := range vals {
		idx[v] = int32(i) + 1
	}
	l.probe0 = idx
	l.probe0Ready.Store(true)
}

// Probe0 returns the global rank of v on level 0 via the dense index,
// or -1 if absent. EnsureProbe0 must have been called.
func (l *Lazy) Probe0(v uint32) int32 {
	if int(v) >= len(l.probe0) {
		return -1
	}
	return l.probe0[v] - 1
}

// Ann returns the named annotation buffer or nil. Buffers are populated
// only after EnsureAnns.
func (l *Lazy) Ann(name string) *Annotation { return l.anns[name] }

// Full materializes everything and converts to an immutable Trie,
// bit-identical to Build on the same input. The result is cached.
func (l *Lazy) Full(threads int) *Trie {
	if l.fullDone.Load() {
		return l.full
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fullDone.Load() {
		return l.full
	}
	l.ensureLevelsLocked(l.k - 1)
	l.ensureAnnsLocked()
	t := &Trie{
		Attrs:      append([]string(nil), l.Attrs...),
		Levels:     make([]*Level, l.k),
		Anns:       make(map[string]*Annotation, len(l.anns)),
		SourceRows: l.n,
	}
	for name, a := range l.anns {
		t.Anns[name] = a
	}
	if threads <= 0 {
		threads = l.in.Threads
	}
	for d := 0; d < l.k; d++ {
		lv := l.levels[d]
		var ends []int32
		if l.n == 0 {
			ends = []int32{0}
		} else {
			ends = lv.starts[1:]
		}
		t.Levels[d] = buildLevel(lv.vals, ends, threads)
	}
	t.NumTuples = t.Levels[l.k-1].NumElems()
	l.full = t
	l.fullDone.Store(true)
	return t
}

// MemBytes estimates the heap footprint of the materialized state.
func (l *Lazy) MemBytes() int {
	n := len(l.rows)*4 + len(l.cnt)*4 + len(l.probe0)*4
	for _, lv := range l.levels {
		if lv == nil {
			continue
		}
		n += len(lv.vals)*4 + len(lv.starts)*4 + len(lv.rowOff)*4
	}
	for _, a := range l.anns {
		n += len(a.F64)*8 + len(a.Codes)*4
	}
	return n
}

// String summarizes the lazy trie shape and build progress.
func (l *Lazy) String() string {
	s := fmt.Sprintf("lazytrie(%v) rows=%d built=%d/%d", l.Attrs, l.n, l.BuiltLevels(), l.k)
	for d := 0; d < l.BuiltLevels(); d++ {
		lv := l.levels[d]
		s += fmt.Sprintf(" | L%d sets=%d elems=%d", d, len(lv.starts)-1, len(lv.vals))
	}
	return s
}
