// Package voter implements the paper's §VII end-to-end application: a
// voter-classification pipeline that joins and filters a voter table
// with a precinct table to form a feature set, one-hot encodes the
// categorical variables, and trains a logistic-regression model for
// five iterations. Figure 6 compares LevelHeaded's unified execution
// against MonetDB/Scikit-learn, Pandas/Scikit-learn, and Spark.
//
// Substitution note (DESIGN.md §1.2): the original dataset (7.5 M North
// Carolina voters, 2,751 precincts) is not redistributable here; the
// generator produces a scaled synthetic population with a hidden
// generative model so training is meaningful. The comparison pipelines
// reproduce each system's *data-movement discipline* — the paper's
// point is that LevelHeaded avoids the transformations entirely by
// using one dictionary-encoded structure for SQL, encoding, and
// training:
//
//   - unified (LevelHeaded): SQL + encoding straight off the
//     dictionary-encoded columnar/trie data; codes are feature ids.
//   - monet (MonetDB/Scikit-learn): column-at-a-time SQL, then a
//     copy-out through a textual boundary (the DB→Python hop), then
//     string-keyed encoding.
//   - pandas (Pandas/Scikit-learn): row-records with boxed values,
//     map-based join, string-keyed encoding.
//   - spark (Spark): row-records plus a partition/shuffle copy before
//     encoding.
//
// Every pipeline trains with the same internal/ml implementation, so
// measured differences come from the SQL and encoding phases only.
package voter

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/ml"
	"repro/internal/storage"
)

var (
	genders       = []string{"F", "M", "U"}
	precinctTypes = []string{"RURAL", "SUBURBAN", "URBAN"}
)

// Schemas returns the two application tables under the LevelHeaded data
// model.
func Schemas() []storage.Schema {
	return []storage.Schema{
		{Name: "precincts", Cols: []storage.ColumnDef{
			{Name: "p_id", Kind: storage.Int64, Role: storage.Key, Domain: "precinct", PK: true},
			{Name: "p_type", Kind: storage.String, Role: storage.Annotation},
			{Name: "p_medincome", Kind: storage.Float64, Role: storage.Annotation},
		}},
		{Name: "voters", Cols: []storage.ColumnDef{
			{Name: "v_id", Kind: storage.Int64, Role: storage.Key, Domain: "voterid", PK: true},
			{Name: "v_precinct", Kind: storage.Int64, Role: storage.Key, Domain: "precinct"},
			{Name: "v_gender", Kind: storage.String, Role: storage.Annotation},
			{Name: "v_age", Kind: storage.Float64, Role: storage.Annotation},
			{Name: "v_voted", Kind: storage.Float64, Role: storage.Annotation},
		}},
	}
}

// Generate fills the two tables with nVoters voters over nPrecincts
// precincts. Labels follow a hidden logistic model over age, gender and
// precinct urbanization so the trained model has signal to find.
func Generate(cat *storage.Catalog, nVoters, nPrecincts int, seed int64) error {
	if nPrecincts < 1 || nVoters < 1 {
		return fmt.Errorf("voter: need at least one voter and precinct")
	}
	r := rand.New(rand.NewSource(seed))
	for _, s := range Schemas() {
		if _, err := cat.Create(s); err != nil {
			return err
		}
	}
	pIDs := make([]int64, nPrecincts)
	pTypes := make([]string, nPrecincts)
	pIncome := make([]float64, nPrecincts)
	typeEffect := make([]float64, nPrecincts)
	for i := 0; i < nPrecincts; i++ {
		pIDs[i] = int64(i)
		ti := r.Intn(3)
		pTypes[i] = precinctTypes[ti]
		pIncome[i] = 30000 + r.Float64()*90000
		typeEffect[i] = []float64{-0.4, 0.1, 0.5}[ti]
	}
	if err := cat.Table("precincts").SetColumnData(map[string]interface{}{
		"p_id": pIDs, "p_type": pTypes, "p_medincome": pIncome,
	}); err != nil {
		return err
	}

	vIDs := make([]int64, nVoters)
	vPrec := make([]int64, nVoters)
	vGender := make([]string, nVoters)
	vAge := make([]float64, nVoters)
	vVoted := make([]float64, nVoters)
	for i := 0; i < nVoters; i++ {
		vIDs[i] = int64(i)
		p := r.Intn(nPrecincts)
		vPrec[i] = int64(p)
		g := r.Intn(3)
		vGender[i] = genders[g]
		age := 18 + r.Float64()*80
		vAge[i] = float64(int(age))
		z := 0.03*(age-45) + []float64{0.2, -0.2, 0}[g] + typeEffect[p] + r.NormFloat64()*0.5
		if z > 0 {
			vVoted[i] = 1
		}
	}
	return cat.Table("voters").SetColumnData(map[string]interface{}{
		"v_id": vIDs, "v_precinct": vPrec, "v_gender": vGender, "v_age": vAge, "v_voted": vVoted,
	})
}

// Phases reports per-phase wall-clock times of one pipeline run —
// Figure 6's stacked bars.
type Phases struct {
	System string
	SQL    time.Duration
	Encode time.Duration
	Train  time.Duration
	N      int
	Acc    float64
}

// Total is the end-to-end time.
func (p Phases) Total() time.Duration { return p.SQL + p.Encode + p.Train }

// Iters is the number of training iterations the paper uses.
const Iters = 5

const trainLR = 0.5

// ageLo/ageHi is the SQL phase's filter (registered adult voters).
const (
	ageLo = 18
	ageHi = 95
)

// featureSpace lays out the shared one-hot space: gender, precinct
// type, precinct id, plus numeric age and income.
func featureSpace(nPrecincts int) *ml.FeatureSpace {
	return ml.NewFeatureSpace([]int{len(genders), len(precinctTypes), nPrecincts}, 2)
}

// RunUnified executes the pipeline the LevelHeaded way: the SQL phase
// filters and joins over the dictionary-encoded columns, and the
// encoding phase uses those same codes as feature indices — no decoding
// and no data-structure conversion between phases (paper §VII).
func RunUnified(cat *storage.Catalog, threads int) (Phases, error) {
	out := Phases{System: "levelheaded"}
	voters := cat.Table("voters")
	prec := cat.Table("precincts")
	if voters == nil || prec == nil {
		return out, fmt.Errorf("voter: tables not loaded")
	}

	// SQL phase: σ_age(voters) ⋈ precincts via the shared precinct
	// domain — the FK is already a dense code, so the "join" is an array
	// lookup into the precinct table's PK index (its trie level).
	t0 := time.Now()
	age := voters.Col("v_age").AnnFloats()
	precCodes := voters.Col("v_precinct").KeyCodes()
	pRowOf := make([]int32, cat.Domain("precinct").Len())
	for i := range pRowOf {
		pRowOf[i] = -1
	}
	for row, code := range prec.Col("p_id").KeyCodes() {
		pRowOf[code] = int32(row)
	}
	sel := make([]int32, 0, voters.NumRows)
	for i := 0; i < voters.NumRows; i++ {
		if age[i] >= ageLo && age[i] <= ageHi && pRowOf[precCodes[i]] >= 0 {
			sel = append(sel, int32(i))
		}
	}
	out.SQL = time.Since(t0)

	// Encode phase: dictionary codes are feature indices directly, so
	// the CSR feature matrix is filled with straight array stores — no
	// hashing, no string decoding, no per-row dispatch.
	t1 := time.Now()
	fs := featureSpace(prec.NumRows)
	genderCodes := voters.Col("v_gender").AnnCodes()
	typeCodes := prec.Col("p_type").AnnCodes()
	income := prec.Col("p_medincome").AnnFloats()
	label := voters.Col("v_voted").AnnFloats()
	const perRow = 5 // gender, type, precinct one-hots + age, income
	nSel := len(sel)
	ds := &ml.Dataset{
		N: nSel, D: fs.Dim,
		RowPtr: make([]int32, nSel+1),
		Cols:   make([]int32, nSel*perRow),
		Vals:   make([]float64, nSel*perRow),
		Y:      make([]float64, nSel),
	}
	gOff := int32(fs.CatOffsets[0])
	tOff := int32(fs.CatOffsets[1])
	pOff := int32(fs.CatOffsets[2])
	nOff := int32(fs.NumOffset)
	for i, row := range sel {
		pRow := pRowOf[precCodes[row]]
		base := i * perRow
		ds.Cols[base+0] = gOff + int32(genderCodes[row])
		ds.Cols[base+1] = tOff + int32(typeCodes[pRow])
		ds.Cols[base+2] = pOff + int32(precCodes[row])
		ds.Cols[base+3] = nOff
		ds.Cols[base+4] = nOff + 1
		ds.Vals[base+0] = 1
		ds.Vals[base+1] = 1
		ds.Vals[base+2] = 1
		ds.Vals[base+3] = age[row] / 100
		ds.Vals[base+4] = income[pRow] / 100000
		ds.RowPtr[i+1] = int32(base + perRow)
		ds.Y[i] = label[row]
	}
	out.Encode = time.Since(t1)

	t2 := time.Now()
	m := ml.TrainLogistic(ds, Iters, trainLR, threads)
	out.Train = time.Since(t2)
	out.N = ds.N
	out.Acc = m.Accuracy(ds)
	return out, nil
}

// record is the boxed row representation the Pandas/Spark-style
// pipelines materialize.
type record struct {
	gender string
	ptype  string
	prec   int64
	age    float64
	income float64
	label  float64
}

// RunMonetSklearn is the MonetDB/Scikit-learn pipeline: column-at-a-
// time SQL with materialized join indexes and *decoded string columns*,
// then a copy-out through a textual boundary (each row serialized and
// re-parsed — the embedded-Python hop), then string-keyed encoding.
func RunMonetSklearn(cat *storage.Catalog, threads int) (Phases, error) {
	out := Phases{System: "monetdb/sklearn"}
	voters := cat.Table("voters")
	prec := cat.Table("precincts")

	// SQL phase (column-at-a-time, fully materialized).
	t0 := time.Now()
	age := voters.Col("v_age").Floats
	sel := make([]int32, 0, voters.NumRows)
	for i := 0; i < voters.NumRows; i++ {
		if age[i] >= ageLo && age[i] <= ageHi {
			sel = append(sel, int32(i))
		}
	}
	pRow := map[int64]int32{}
	for i := 0; i < prec.NumRows; i++ {
		pRow[prec.Col("p_id").Ints[i]] = int32(i)
	}
	joined := make([][2]int32, 0, len(sel))
	for _, r := range sel {
		if pr, ok := pRow[voters.Col("v_precinct").Ints[r]]; ok {
			joined = append(joined, [2]int32{r, pr})
		}
	}
	// Materialize the result columns (decoded strings).
	gcol := make([]string, len(joined))
	tcol := make([]string, len(joined))
	pcol := make([]int64, len(joined))
	acol := make([]float64, len(joined))
	icol := make([]float64, len(joined))
	lcol := make([]float64, len(joined))
	for i, j := range joined {
		gcol[i] = voters.Col("v_gender").Strs[j[0]]
		tcol[i] = prec.Col("p_type").Strs[j[1]]
		pcol[i] = voters.Col("v_precinct").Ints[j[0]]
		acol[i] = voters.Col("v_age").Floats[j[0]]
		icol[i] = prec.Col("p_medincome").Floats[j[1]]
		lcol[i] = voters.Col("v_voted").Floats[j[0]]
	}
	out.SQL = time.Since(t0)

	// Copy-out + encode phase: textual boundary, then string-keyed maps.
	t1 := time.Now()
	lines := make([]string, len(joined))
	for i := range joined {
		lines[i] = gcol[i] + "," + tcol[i] + "," + strconv.FormatInt(pcol[i], 10) + "," +
			strconv.FormatFloat(acol[i], 'g', -1, 64) + "," +
			strconv.FormatFloat(icol[i], 'g', -1, 64) + "," +
			strconv.FormatFloat(lcol[i], 'g', -1, 64)
	}
	recs := make([]record, len(lines))
	for i, ln := range lines {
		parts := strings.Split(ln, ",")
		recs[i].gender = parts[0]
		recs[i].ptype = parts[1]
		recs[i].prec, _ = strconv.ParseInt(parts[2], 10, 64)
		recs[i].age, _ = strconv.ParseFloat(parts[3], 64)
		recs[i].income, _ = strconv.ParseFloat(parts[4], 64)
		recs[i].label, _ = strconv.ParseFloat(parts[5], 64)
	}
	ds, err := encodeRecords(recs, prec.NumRows)
	if err != nil {
		return out, err
	}
	out.Encode = time.Since(t1)

	t2 := time.Now()
	m := ml.TrainLogistic(ds, Iters, trainLR, threads)
	out.Train = time.Since(t2)
	out.N = ds.N
	out.Acc = m.Accuracy(ds)
	return out, nil
}

// RunPandasSklearn is the Pandas/Scikit-learn pipeline: boxed
// row-records, map-based join, string-keyed encoding.
func RunPandasSklearn(cat *storage.Catalog, threads int) (Phases, error) {
	return runRecordPipeline(cat, threads, "pandas/sklearn", false)
}

// RunSpark is the Spark pipeline: the record pipeline plus a
// partition/shuffle copy before encoding (the exchange a distributed
// runtime pays even on one node).
func RunSpark(cat *storage.Catalog, threads int) (Phases, error) {
	return runRecordPipeline(cat, threads, "spark", true)
}

func runRecordPipeline(cat *storage.Catalog, threads int, system string, shuffle bool) (Phases, error) {
	out := Phases{System: system}
	voters := cat.Table("voters")
	prec := cat.Table("precincts")

	// SQL phase: row-record materialization and map join.
	t0 := time.Now()
	type pinfo struct {
		ptype  string
		income float64
	}
	pmap := map[int64]pinfo{}
	for i := 0; i < prec.NumRows; i++ {
		pmap[prec.Col("p_id").Ints[i]] = pinfo{prec.Col("p_type").Strs[i], prec.Col("p_medincome").Floats[i]}
	}
	recs := make([]record, 0, voters.NumRows)
	for i := 0; i < voters.NumRows; i++ {
		a := voters.Col("v_age").Floats[i]
		if a < ageLo || a > ageHi {
			continue
		}
		pi, ok := pmap[voters.Col("v_precinct").Ints[i]]
		if !ok {
			continue
		}
		recs = append(recs, record{
			gender: voters.Col("v_gender").Strs[i],
			ptype:  pi.ptype,
			prec:   voters.Col("v_precinct").Ints[i],
			age:    a,
			income: pi.income,
			label:  voters.Col("v_voted").Floats[i],
		})
	}
	if shuffle {
		// Partition exchange: rows are serialized into per-partition
		// buffers and deserialized on the "receiving" side — the
		// ser/de cost a distributed runtime pays at every shuffle
		// boundary even on one node.
		nPart := 16
		parts := make([][]string, nPart)
		for _, r := range recs {
			p := int(r.prec) % nPart
			parts[p] = append(parts[p], r.gender+","+r.ptype+","+
				strconv.FormatInt(r.prec, 10)+","+
				strconv.FormatFloat(r.age, 'g', -1, 64)+","+
				strconv.FormatFloat(r.income, 'g', -1, 64)+","+
				strconv.FormatFloat(r.label, 'g', -1, 64))
		}
		recs = recs[:0]
		for _, part := range parts {
			for _, ln := range part {
				f := strings.Split(ln, ",")
				var r record
				r.gender, r.ptype = f[0], f[1]
				r.prec, _ = strconv.ParseInt(f[2], 10, 64)
				r.age, _ = strconv.ParseFloat(f[3], 64)
				r.income, _ = strconv.ParseFloat(f[4], 64)
				r.label, _ = strconv.ParseFloat(f[5], 64)
				recs = append(recs, r)
			}
		}
	}
	out.SQL = time.Since(t0)

	t1 := time.Now()
	ds, err := encodeRecords(recs, prec.NumRows)
	if err != nil {
		return out, err
	}
	out.Encode = time.Since(t1)

	t2 := time.Now()
	m := ml.TrainLogistic(ds, Iters, trainLR, threads)
	out.Train = time.Since(t2)
	out.N = ds.N
	out.Acc = m.Accuracy(ds)
	return out, nil
}

// encodeRecords is the string-keyed one-hot encoding the non-unified
// pipelines pay for: every categorical value goes through a hash map.
func encodeRecords(recs []record, nPrecincts int) (*ml.Dataset, error) {
	fs := featureSpace(nPrecincts)
	genderIdx := map[string]uint32{}
	typeIdx := map[string]uint32{}
	b := ml.NewBuilder(fs.Dim)
	cols := make([]int32, 0, 8)
	vals := make([]float64, 0, 8)
	for _, r := range recs {
		g, ok := genderIdx[r.gender]
		if !ok {
			g = uint32(len(genderIdx))
			if int(g) >= len(genders) {
				return nil, fmt.Errorf("voter: too many gender values")
			}
			genderIdx[r.gender] = g
		}
		tc, ok := typeIdx[r.ptype]
		if !ok {
			tc = uint32(len(typeIdx))
			if int(tc) >= len(precinctTypes) {
				return nil, fmt.Errorf("voter: too many precinct types")
			}
			typeIdx[r.ptype] = tc
		}
		cols, vals = fs.Row([]uint32{g, tc, uint32(r.prec)}, []float64{r.age / 100, r.income / 100000}, cols, vals)
		if err := b.AddRow(cols, vals, r.label); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
