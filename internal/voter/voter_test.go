package voter

import (
	"math"
	"testing"

	"repro/internal/storage"
)

func setup(t *testing.T, nVoters, nPrecincts int) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	if err := Generate(cat, nVoters, nPrecincts, 1); err != nil {
		t.Fatal(err)
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestGenerateShapes(t *testing.T) {
	cat := setup(t, 5000, 40)
	v := cat.Table("voters")
	p := cat.Table("precincts")
	if v.NumRows != 5000 || p.NumRows != 40 {
		t.Fatalf("rows = %d, %d", v.NumRows, p.NumRows)
	}
	// Labels are binary and non-degenerate.
	ones := 0
	for _, y := range v.Col("v_voted").Floats {
		if y != 0 && y != 1 {
			t.Fatal("non-binary label")
		}
		if y == 1 {
			ones++
		}
	}
	if ones == 0 || ones == v.NumRows {
		t.Fatalf("degenerate labels: %d of %d", ones, v.NumRows)
	}
	// Every precinct FK resolves.
	for _, pk := range v.Col("v_precinct").Ints {
		if pk < 0 || pk >= 40 {
			t.Fatalf("precinct %d out of range", pk)
		}
	}
	if err := Generate(storage.NewCatalog(), 0, 5, 1); err == nil {
		t.Error("zero voters should error")
	}
}

func TestAllPipelinesAgree(t *testing.T) {
	cat := setup(t, 8000, 50)
	unified, err := RunUnified(cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	monet, err := RunMonetSklearn(cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	pandas, err := RunPandasSklearn(cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	spark, err := RunSpark(cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Same rows survive the SQL phase everywhere.
	for _, p := range []Phases{monet, pandas, spark} {
		if p.N != unified.N {
			t.Errorf("%s trained on %d rows, unified on %d", p.System, p.N, unified.N)
		}
	}
	// All models find real signal: the hidden generative model is
	// learnable well above chance.
	for _, p := range []Phases{unified, monet, pandas, spark} {
		if p.Acc < 0.6 {
			t.Errorf("%s accuracy = %v, want >= 0.6", p.System, p.Acc)
		}
	}
	// Unified and monet encode identical features modulo category order;
	// accuracies must agree closely (spark/pandas reorder rows, which
	// changes nothing for full-batch GD).
	if math.Abs(unified.Acc-monet.Acc) > 0.02 {
		t.Errorf("unified %v vs monet %v accuracy divergence", unified.Acc, monet.Acc)
	}
	if math.Abs(pandas.Acc-spark.Acc) > 0.02 {
		t.Errorf("pandas %v vs spark %v accuracy divergence", pandas.Acc, spark.Acc)
	}
}

func TestPhasesTotal(t *testing.T) {
	cat := setup(t, 2000, 20)
	p, err := RunUnified(cat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total() != p.SQL+p.Encode+p.Train {
		t.Error("Total mismatch")
	}
	if p.N == 0 {
		t.Error("no rows trained")
	}
}

func TestAgeFilterApplied(t *testing.T) {
	cat := setup(t, 3000, 25)
	v := cat.Table("voters")
	inRange := 0
	for _, a := range v.Col("v_age").Floats {
		if a >= ageLo && a <= ageHi {
			inRange++
		}
	}
	p, err := RunUnified(cat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != inRange {
		t.Fatalf("trained on %d rows, filter passes %d", p.N, inRange)
	}
}
