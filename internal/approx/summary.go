package approx

import (
	"math"

	"repro/internal/sketch"
	"repro/internal/storage"
)

// ValueHashSeed is the fixed seed of every per-column value hash: the
// sketches and their point queries must agree on it, and keeping it
// constant makes summaries reproducible across processes.
const ValueHashSeed = 0x1e7e17ead

// DefaultSampleRows is the default reservoir capacity per table.
const DefaultSampleRows = 4096

// Summary is one table's approximate-tier state: per-column HLL
// cardinality sketches, per-column Count-Min group-count sketches, and
// a uniform reservoir sample of decoded rows. It is built lazily on
// first approximate use, extended incrementally as a table's snapshot
// row count grows (generations fold delta rows strictly after the base
// prefix, so rows [Rows, n) are exactly the unseen suffix), and
// invalidated when the covered prefix shrinks or the schema changes.
// Not safe for concurrent mutation — the engine serializes access.
type Summary struct {
	Table string
	// Gen and Epoch record the generation/epoch last folded in (for
	// observability; coverage is tracked by Rows).
	Gen   uint64
	Epoch uint64
	// Rows is the prefix of the table's snapshot rows covered.
	Rows int

	Sample *sketch.Reservoir
	HLLs   []*sketch.HLL
	CMSs   []*sketch.CMS
}

// seedFor derives the reservoir seed from the table name, so rebuilds
// are reproducible per table.
func seedFor(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// NewSummary allocates an empty summary for a table's schema.
func NewSummary(sch *storage.Schema, sampleRows int) *Summary {
	if sampleRows <= 0 {
		sampleRows = DefaultSampleRows
	}
	s := &Summary{Table: sch.Name, Sample: sketch.NewReservoir(sampleRows, seedFor(sch.Name))}
	for range sch.Cols {
		s.HLLs = append(s.HLLs, sketch.NewHLL(sketch.DefaultHLLPrecision))
		s.CMSs = append(s.CMSs, sketch.NewCMS(sketch.DefaultCMSDepth, sketch.DefaultCMSWidth))
	}
	return s
}

// Covers reports whether the summary can be extended to t (same arity,
// row prefix not shrunk). A false return means rebuild.
func (s *Summary) Covers(t *storage.Table) bool {
	return len(s.HLLs) == len(t.Schema.Cols) && s.Rows <= t.NumRows
}

// Extend folds rows [s.Rows, t.NumRows) of a snapshot-resolved table
// into the summary. Building from scratch is Extend on a fresh summary.
func (s *Summary) Extend(t *storage.Table, epoch uint64) {
	sc := NewTableScanner(t)
	for ri := s.Rows; ri < sc.NumRows(); ri++ {
		row := sc.Row(ri)
		for ci, v := range row {
			h := sketch.HashValue(ValueHashSeed, canonVal(v))
			s.HLLs[ci].AddHash(h)
			s.CMSs[ci].AddHash(h)
		}
		s.Sample.Add(row)
	}
	s.Rows = sc.NumRows()
	s.Gen = t.Generation()
	s.Epoch = epoch
}

// SampleRows returns a race-free snapshot of the current sample (the
// row slices themselves are immutable once created).
func (s *Summary) SampleRows() [][]any {
	return append([][]any(nil), s.Sample.Rows()...)
}

// Bytes estimates the summary's sketch footprint (sample excluded).
func (s *Summary) Bytes() int {
	n := 0
	for _, h := range s.HLLs {
		n += h.Bytes()
	}
	for _, c := range s.CMSs {
		n += c.Bytes()
	}
	return n
}

// --- error-bound math ---

// Confidence is the advertised probability that every reported error
// bound holds. The estimator coefficients below are chosen well past
// the quantile this implies (≈5σ and Hoeffding at δ≈1e-7), so a
// deterministic difftest sweep holds the envelope with margin.
const Confidence = 0.999

const (
	// hoeff is ln(2/δ)/2 at δ≈1e-7: the Hoeffding coefficient of the
	// sample-count bound N·√(hoeff/k).
	hoeff = 8.4
	// zScore is the CLT multiplier of the sample sum/avg bounds.
	zScore = 5.0
	// missLn is ln(1/δ) at δ≈1e-7: a group entirely absent from a
	// k-sample has true count ≤ N·missLn/k with probability 1-δ.
	missLn = 16.1
)

// countBound is the absolute error bound of a scaled sample count.
func countBound(n int, k int) float64 {
	if k <= 0 {
		return float64(n)
	}
	return float64(n) * math.Sqrt(hoeff/float64(k))
}

// sumBound is the absolute error bound of a scaled sample sum, from
// the sample standard deviation of the per-row contributions plus a
// heavy-tail slack term.
func sumBound(n, k int, sum, sumsq, maxAbs float64) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	kk := float64(k)
	mean := sum / kk
	varc := sumsq/kk - mean*mean
	if varc < 0 {
		varc = 0
	}
	return zScore*float64(n)*math.Sqrt(varc)/math.Sqrt(kk) + zScore*float64(n)*(maxAbs+1)/kk
}

// avgBound is the absolute error bound of a conditional sample mean
// over kMatch matching rows.
func avgBound(kMatch int, sum, sumsq, maxAbs float64) float64 {
	if kMatch <= 0 {
		return 0 // no matching rows: the NaN convention is exact
	}
	kk := float64(kMatch)
	mean := sum / kk
	varc := sumsq/kk - mean*mean
	if varc < 0 {
		varc = 0
	}
	return zScore*math.Sqrt(varc)/math.Sqrt(kk) + zScore*2*(maxAbs+1)/kk
}

// hllBound is the absolute error bound of an HLL estimate.
func hllBound(h *sketch.HLL, est float64) float64 {
	return 3 + zScore*h.StdError()*est
}

// MissBound is the largest true count a group entirely absent from the
// sample may have (with probability Confidence): the group-route
// completeness guarantee.
func MissBound(n, k int) float64 {
	if k <= 0 {
		return float64(n)
	}
	return float64(n) * missLn / float64(k)
}
