package approx

import (
	"math"

	"repro/internal/costopt"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/sketch"
	"repro/internal/storage"
)

// Answer is one approximate-tier evaluation: the result plus the
// advertised accuracy contract.
type Answer struct {
	Res   *exec.Result
	Route string // obs.Dispatch* label
	// Approx is false only for the exact distinct scan.
	Approx bool
	// ErrorBound is the largest per-column bound; ErrorBounds has one
	// entry per output column (0 for group columns and exact values).
	ErrorBound  float64
	ErrorBounds []float64
	Confidence  float64
	// MissBound, on group routes, is the largest true count an output
	// group absent from the answer may have (0 = answer is complete).
	MissBound float64
}

func finishBounds(a *Answer) *Answer {
	for _, b := range a.ErrorBounds {
		if b > a.ErrorBound {
			a.ErrorBound = b
		}
	}
	if a.Approx {
		a.Confidence = Confidence
	}
	return a
}

// Route picks the tier's route for an opted-in query: a whole-table
// sketch read when the shape allows it, a sample evaluation otherwise,
// and "" when the priced win is not decisive (caller runs exact).
// rows is the snapshot row count, sampleCap the reservoir capacity,
// drift the statement's observed cost_ratio (0 = unknown).
func Route(sh *Shape, rows, sampleCap int, drift float64) (string, *costopt.ApproxDecision) {
	if skRoute, ok := sh.Sketchable(); ok {
		dec := costopt.ChooseApprox(rows, sampleCap, 1<<sketch.DefaultHLLPrecision, drift)
		if dec.Route == costopt.RouteSketch {
			return skRoute, dec
		}
		return "", dec
	}
	if sh.Sampleable() {
		dec := costopt.ChooseApprox(rows, sampleCap, 0, drift)
		if dec.Route == costopt.RouteSample {
			return "sample", dec
		}
		return "", dec
	}
	return "", costopt.ChooseApprox(rows, sampleCap, 0, drift)
}

// EvalHLL answers a scalar count / count-distinct shape from the
// per-column HLL sketches (n is the covered row count).
func EvalHLL(sh *Shape, sum *Summary, sch *storage.Schema, n int) (*Answer, error) {
	finals := make([]float64, len(sh.Aggs))
	bounds := make([]float64, len(sh.Aggs))
	for i, a := range sh.Aggs {
		if !a.Distinct {
			finals[i] = float64(n) // count(*) is exact from coverage
			continue
		}
		ci := colIndex(sch, a.Col)
		h := sum.HLLs[ci]
		est := math.Round(h.Estimate())
		if est > float64(n) {
			est = float64(n)
		}
		finals[i] = est
		bounds[i] = hllBound(h, est)
	}
	a := &Answer{Route: obs.DispatchApproxHLL, Approx: true}
	a.Res = newResult(sh, sch)
	appendRow(a.Res, sh, nil, finals)
	a.ErrorBounds = outBounds(sh, bounds)
	return finishBounds(a), nil
}

// EvalCMS answers a single-column count-only GROUP BY from the sample's
// candidate groups and the column's Count-Min counts.
func EvalCMS(sh *Shape, sum *Summary, sch *storage.Schema, n int) (*Answer, error) {
	ci := colIndex(sch, sh.GroupBy[0])
	cms := sum.CMSs[ci]
	a := &Answer{Route: obs.DispatchApproxCMS, Approx: true}
	a.Res = newResult(sh, sch)

	seen := map[string]struct{}{}
	bounds := make([]float64, len(sh.Aggs))
	for _, row := range sum.Sample.Rows() {
		v := canonVal(row[ci])
		key := canonKey(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		cnt := float64(cms.Count(sketch.HashValue(ValueHashSeed, v)))
		finals := make([]float64, len(sh.Aggs))
		for i := range sh.Aggs {
			finals[i] = cnt // every agg on this route is a count
		}
		appendRow(a.Res, sh, []any{v}, finals)
	}
	for i := range bounds {
		bounds[i] = cms.ErrorBound()
	}
	a.ErrorBounds = outBounds(sh, bounds)
	a.MissBound = MissBound(n, len(sum.Sample.Rows()))
	return finishBounds(a), nil
}

// EvalSample answers a filtered/grouped count-sum-avg shape by running
// the shared scan loop over the reservoir rows and scaling by N/k.
func EvalSample(sh *Shape, rows [][]any, sch *storage.Schema, n int) (*Answer, error) {
	k := len(rows)
	scale := 1.0
	if k > 0 {
		scale = float64(n) / float64(k)
	}
	sc := NewRowScanner(sch, rows)
	groups, err := sh.scan(sc)
	if err != nil {
		return nil, err
	}
	scalar := len(sh.GroupBy) == 0
	if scalar && len(groups) == 0 {
		groups = append(groups, newGroupAcc(sh, nil))
	}

	a := &Answer{Route: obs.DispatchApproxSample, Approx: true}
	a.Res = newResult(sh, sch)
	bounds := make([]float64, len(sh.Aggs))
	for _, g := range groups {
		finals := make([]float64, len(sh.Aggs))
		for i, agg := range sh.Aggs {
			switch agg.Fn {
			case "count":
				finals[i] = math.Round(g.accs[i] * scale)
				bounds[i] = math.Max(bounds[i], countBound(n, k))
			case "sum":
				finals[i] = g.accs[i] * scale
				bounds[i] = math.Max(bounds[i], sumBound(n, k, g.accs[i], g.accsSq[i], g.maxAbs[i]))
			case "avg":
				finals[i] = g.accs[i] / g.counts[i]
				bounds[i] = math.Max(bounds[i], avgBound(int(g.counts[i]), g.accs[i], g.accsSq[i], g.maxAbs[i]))
			}
		}
		appendRow(a.Res, sh, g.keyVals, finals)
	}
	a.ErrorBounds = outBounds(sh, bounds)
	if !scalar {
		a.MissBound = MissBound(n, k)
	}
	return finishBounds(a), nil
}

// outBounds spreads per-aggregate bounds onto output-column positions
// (group columns are exact: bound 0).
func outBounds(sh *Shape, aggBounds []float64) []float64 {
	out := make([]float64, len(sh.Out))
	for i, oc := range sh.Out {
		if oc.Agg >= 0 {
			out[i] = aggBounds[oc.Agg]
		}
	}
	return out
}

func colIndex(sch *storage.Schema, name string) int {
	for i := range sch.Cols {
		if sch.Cols[i].Name == name {
			return i
		}
	}
	return -1
}
