package approx

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/exec"
	"repro/internal/refeval"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Scanner is row access for the tier's evaluator, over either a
// table's decoded columnar arrays (the exact scan) or a reservoir
// sample's row slices (the sample route). Both backends present the
// same (column, row) → native value view.
type Scanner struct {
	sch   *storage.Schema
	colIx map[string]int
	cols  []*storage.Column // columnar backend; nil for the row backend
	rows  [][]any           // row backend
	n     int
}

// NewTableScanner reads a snapshot-resolved table's raw columnar
// arrays directly (generations retain them alongside the encodings).
func NewTableScanner(t *storage.Table) *Scanner {
	s := &Scanner{sch: &t.Schema, cols: t.Cols, n: t.NumRows, colIx: map[string]int{}}
	for i := range t.Schema.Cols {
		s.colIx[t.Schema.Cols[i].Name] = i
	}
	return s
}

// NewRowScanner reads pre-decoded rows (a reservoir sample) under the
// same schema.
func NewRowScanner(sch *storage.Schema, rows [][]any) *Scanner {
	s := &Scanner{sch: sch, rows: rows, n: len(rows), colIx: map[string]int{}}
	for i := range sch.Cols {
		s.colIx[sch.Cols[i].Name] = i
	}
	return s
}

// NumRows reports the scan length.
func (s *Scanner) NumRows() int { return s.n }

func (s *Scanner) value(ci, ri int) any {
	if s.cols != nil {
		c := s.cols[ci]
		switch c.Def.Kind {
		case storage.Float64:
			return c.Floats[ri]
		case storage.String:
			return c.Strs[ri]
		default:
			return c.Ints[ri]
		}
	}
	return s.rows[ri][ci]
}

// Row materializes row ri as a decoded []any (used when feeding the
// reservoir).
func (s *Scanner) Row(ri int) []any {
	row := make([]any, len(s.sch.Cols))
	for ci := range row {
		row[ci] = s.value(ci, ri)
	}
	return row
}

// --- row expression evaluation (mirrors refeval's float64 semantics) ---

func (s *Scanner) colOf(cr sqlparse.ColRef) (int, error) {
	ci, ok := s.colIx[cr.Name]
	if !ok {
		return 0, fmt.Errorf("approx: unknown column %s", cr.Name)
	}
	return ci, nil
}

func (s *Scanner) evalBool(e sqlparse.Expr, ri int) (bool, error) {
	switch v := e.(type) {
	case sqlparse.BinaryExpr:
		switch v.Op {
		case "and":
			l, err := s.evalBool(v.L, ri)
			if err != nil || !l {
				return false, err
			}
			return s.evalBool(v.R, ri)
		case "or":
			l, err := s.evalBool(v.L, ri)
			if err != nil || l {
				return l, err
			}
			return s.evalBool(v.R, ri)
		case "=", "<>", "<", "<=", ">", ">=":
			return s.compare(v.Op, v.L, v.R, ri)
		}
		return false, fmt.Errorf("approx: boolean op %s", v.Op)
	case sqlparse.UnaryExpr:
		if v.Op == "not" {
			b, err := s.evalBool(v.X, ri)
			return !b, err
		}
		return false, fmt.Errorf("approx: unary %s in boolean context", v.Op)
	case sqlparse.BetweenExpr:
		x, err := s.evalNum(v.X, ri)
		if err != nil {
			return false, err
		}
		lo, err := s.evalNum(v.Lo, ri)
		if err != nil {
			return false, err
		}
		hi, err := s.evalNum(v.Hi, ri)
		if err != nil {
			return false, err
		}
		in := x >= lo && x <= hi
		return in != v.Negate, nil
	case sqlparse.InExpr:
		if str, ok, err := s.evalStr(v.X, ri); err != nil {
			return false, err
		} else if ok {
			hit := false
			for _, ve := range v.Vals {
				lit, isStr := ve.(sqlparse.StringLit)
				if !isStr {
					return false, fmt.Errorf("approx: IN on string needs string literals")
				}
				if str == lit.Val {
					hit = true
					break
				}
			}
			return hit != v.Negate, nil
		}
		x, err := s.evalNum(v.X, ri)
		if err != nil {
			return false, err
		}
		hit := false
		for _, ve := range v.Vals {
			n, err := s.evalNum(ve, ri)
			if err != nil {
				return false, err
			}
			if x == n {
				hit = true
				break
			}
		}
		return hit != v.Negate, nil
	case sqlparse.LikeExpr:
		str, ok, err := s.evalStr(v.X, ri)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, fmt.Errorf("approx: LIKE on non-string")
		}
		return refeval.LikeMatch(str, v.Pattern) != v.Negate, nil
	}
	return false, fmt.Errorf("approx: unsupported boolean expr %T", e)
}

func (s *Scanner) compare(op string, le, re sqlparse.Expr, ri int) (bool, error) {
	ls, lok, err := s.evalStr(le, ri)
	if err != nil {
		return false, err
	}
	rs, rok, err := s.evalStr(re, ri)
	if err != nil {
		return false, err
	}
	if lok && rok {
		switch op {
		case "=":
			return ls == rs, nil
		case "<>":
			return ls != rs, nil
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		default:
			return ls >= rs, nil
		}
	}
	if lok != rok {
		return false, fmt.Errorf("approx: mixed string/numeric comparison")
	}
	l, err := s.evalNum(le, ri)
	if err != nil {
		return false, err
	}
	r, err := s.evalNum(re, ri)
	if err != nil {
		return false, err
	}
	switch op {
	case "=":
		return l == r, nil
	case "<>":
		return l != r, nil
	case "<":
		return l < r, nil
	case "<=":
		return l <= r, nil
	case ">":
		return l > r, nil
	default:
		return l >= r, nil
	}
}

func (s *Scanner) evalStr(e sqlparse.Expr, ri int) (string, bool, error) {
	switch v := e.(type) {
	case sqlparse.StringLit:
		return v.Val, true, nil
	case sqlparse.ColRef:
		ci, err := s.colOf(v)
		if err != nil {
			return "", false, err
		}
		if s.sch.Cols[ci].Kind == storage.String {
			return s.value(ci, ri).(string), true, nil
		}
	}
	return "", false, nil
}

func (s *Scanner) evalNum(e sqlparse.Expr, ri int) (float64, error) {
	switch v := e.(type) {
	case sqlparse.NumberLit:
		return v.Val, nil
	case sqlparse.DateLit:
		return float64(v.Days), nil
	case sqlparse.ColRef:
		ci, err := s.colOf(v)
		if err != nil {
			return 0, err
		}
		switch s.sch.Cols[ci].Kind {
		case storage.String:
			return 0, fmt.Errorf("approx: string column %s in numeric context", v.Name)
		case storage.Float64:
			return s.value(ci, ri).(float64), nil
		default:
			return float64(s.value(ci, ri).(int64)), nil
		}
	case sqlparse.BinaryExpr:
		switch v.Op {
		case "+", "-", "*", "/":
			l, err := s.evalNum(v.L, ri)
			if err != nil {
				return 0, err
			}
			r, err := s.evalNum(v.R, ri)
			if err != nil {
				return 0, err
			}
			switch v.Op {
			case "+":
				return l + r, nil
			case "-":
				return l - r, nil
			case "*":
				return l * r, nil
			default:
				return l / r, nil
			}
		default:
			b, err := s.evalBool(v, ri)
			if err != nil {
				return 0, err
			}
			if b {
				return 1, nil
			}
			return 0, nil
		}
	case sqlparse.UnaryExpr:
		if v.Op == "-" {
			n, err := s.evalNum(v.X, ri)
			return -n, err
		}
		b, err := s.evalBool(v, ri)
		if err != nil {
			return 0, err
		}
		if b {
			return 1, nil
		}
		return 0, nil
	case sqlparse.CaseExpr:
		for _, w := range v.Whens {
			c, err := s.evalBool(w.Cond, ri)
			if err != nil {
				return 0, err
			}
			if c {
				return s.evalNum(w.Then, ri)
			}
		}
		if v.Else != nil {
			return s.evalNum(v.Else, ri)
		}
		return 0, nil
	case sqlparse.ExtractExpr:
		d, err := s.evalNum(v.X, ri)
		if err != nil {
			return 0, err
		}
		days := int32(d)
		switch v.Unit {
		case "year":
			return float64(sqlparse.DateYear(days)), nil
		case "month":
			return float64(sqlparse.DateMonth(days)), nil
		default:
			return float64(sqlparse.DateDay(days)), nil
		}
	case sqlparse.BetweenExpr, sqlparse.InExpr, sqlparse.LikeExpr:
		b, err := s.evalBool(e, ri)
		if err != nil {
			return 0, err
		}
		if b {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("approx: unsupported numeric expr %T", e)
}

// --- canonical group/distinct keys (mirror the engine's pseudo-encoding) ---

// canonVal folds -0.0 into +0.0 and all NaN payloads into one NaN.
func canonVal(v any) any {
	if f, ok := v.(float64); ok {
		if f == 0 {
			return 0.0
		}
		if math.IsNaN(f) {
			return math.NaN()
		}
	}
	return v
}

// canonKey renders a canonical value as an exact pairing string.
func canonKey(v any) string {
	switch x := v.(type) {
	case int64:
		return "i" + strconv.FormatInt(x, 10)
	case float64:
		if math.IsNaN(x) {
			return "fNaN"
		}
		return "f" + strconv.FormatFloat(x, 'x', -1, 64)
	case string:
		return "s" + x
	}
	return fmt.Sprintf("?%v", v)
}

// --- exact scan evaluation ---

type groupAcc struct {
	keyVals []any
	rows    float64
	accs    []float64
	counts  []float64
	sets    []map[string]struct{}
	// accsSq/maxAbs track Σv² and max|v| per sum/avg aggregate — free on
	// the exact path, and exactly what the sample route's CLT bounds need.
	accsSq []float64
	maxAbs []float64
}

// scan runs the shared filter/group/accumulate loop over sc and returns
// the groups in first-seen order.
func (sh *Shape) scan(sc *Scanner) ([]*groupAcc, error) {
	groups := map[string]*groupAcc{}
	var order []*groupAcc
	for ri := 0; ri < sc.NumRows(); ri++ {
		if sh.Where != nil {
			ok, err := sc.evalBool(sh.Where, ri)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		key := ""
		var keyVals []any
		if len(sh.GroupBy) > 0 {
			keyVals = make([]any, len(sh.GroupBy))
			for i, gcol := range sh.GroupBy {
				v := canonVal(sc.value(sc.colIx[gcol], ri))
				keyVals[i] = v
				key += canonKey(v) + "\x00"
			}
		}
		g := groups[key]
		if g == nil {
			g = newGroupAcc(sh, keyVals)
			groups[key] = g
			order = append(order, g)
		}
		g.rows++
		for i, a := range sh.Aggs {
			if a.Distinct {
				v := canonVal(sc.value(sc.colIx[a.Col], ri))
				g.sets[i][canonKey(v)] = struct{}{}
				continue
			}
			switch a.Fn {
			case "count":
				g.accs[i]++
			case "sum", "avg":
				v, err := sc.evalNum(sqlparse.ColRef{Name: a.Col}, ri)
				if err != nil {
					return nil, err
				}
				g.accs[i] += v
				g.accsSq[i] += v * v
				g.counts[i]++
				if av := math.Abs(v); av > g.maxAbs[i] {
					g.maxAbs[i] = av
				}
			case "min":
				v, err := sc.evalNum(sqlparse.ColRef{Name: a.Col}, ri)
				if err != nil {
					return nil, err
				}
				if v < g.accs[i] {
					g.accs[i] = v
				}
			case "max":
				v, err := sc.evalNum(sqlparse.ColRef{Name: a.Col}, ri)
				if err != nil {
					return nil, err
				}
				if v > g.accs[i] {
					g.accs[i] = v
				}
			}
		}
	}
	return order, nil
}

func newGroupAcc(sh *Shape, keyVals []any) *groupAcc {
	g := &groupAcc{keyVals: keyVals, accs: make([]float64, len(sh.Aggs)), counts: make([]float64, len(sh.Aggs)), sets: make([]map[string]struct{}, len(sh.Aggs)), accsSq: make([]float64, len(sh.Aggs)), maxAbs: make([]float64, len(sh.Aggs))}
	for i, a := range sh.Aggs {
		switch a.Fn {
		case "min":
			g.accs[i] = math.Inf(1)
		case "max":
			g.accs[i] = math.Inf(-1)
		}
		if a.Distinct {
			g.sets[i] = map[string]struct{}{}
		}
	}
	return g
}

// finals computes the output value of every aggregate for one group,
// applying the engine's scalar conventions (±Inf→0 on empty, avg =
// sum/count incl. 0/0 = NaN).
func (sh *Shape) finals(g *groupAcc) []float64 {
	out := make([]float64, len(sh.Aggs))
	for i, a := range sh.Aggs {
		v := g.accs[i]
		if a.Distinct {
			v = float64(len(g.sets[i]))
		}
		if g.rows == 0 && math.IsInf(v, 0) {
			v = 0
		}
		if a.Fn == "avg" {
			v = v / g.counts[i]
		}
		out[i] = v
	}
	return out
}

// EvalScan evaluates the shape exactly over a full table scan: the
// engine's COUNT(DISTINCT) baseline (hash-set evaluation) and the
// approximate tier's exact fallback route.
func EvalScan(sh *Shape, sc *Scanner) (*exec.Result, error) {
	groups, err := sh.scan(sc)
	if err != nil {
		return nil, err
	}
	if len(sh.GroupBy) == 0 && len(groups) == 0 {
		// Scalar convention: one all-zero aggregate row.
		groups = append(groups, newGroupAcc(sh, nil))
	}
	res := newResult(sh, sc.sch)
	for _, g := range groups {
		appendRow(res, sh, g.keyVals, sh.finals(g))
	}
	return res, nil
}

// newResult allocates the typed output columns for a shape.
func newResult(sh *Shape, sch *storage.Schema) *exec.Result {
	res := &exec.Result{}
	for _, out := range sh.Out {
		col := &exec.Column{Name: out.Name}
		if out.Group >= 0 {
			switch sch.Col(sh.GroupBy[out.Group]).Kind {
			case storage.Float64:
				col.Kind = exec.KindFloat
			case storage.String:
				col.Kind = exec.KindString
			default:
				col.Kind = exec.KindInt
			}
		} else {
			col.Kind = exec.KindFloat
		}
		res.Cols = append(res.Cols, col)
	}
	return res
}

// appendRow appends one output row from group key values and finished
// aggregate values.
func appendRow(res *exec.Result, sh *Shape, keyVals []any, finals []float64) {
	for ci, out := range sh.Out {
		col := res.Cols[ci]
		if out.Group >= 0 {
			switch v := keyVals[out.Group].(type) {
			case int64:
				col.I64 = append(col.I64, v)
			case float64:
				col.F64 = append(col.F64, v)
			case string:
				col.Str = append(col.Str, v)
			}
			continue
		}
		col.F64 = append(col.F64, finals[out.Agg])
	}
	res.NumRows++
}
