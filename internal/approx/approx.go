// Package approx is the approximate query tier: a scan-shaped
// evaluator over single-table aggregate queries that can answer from a
// per-table summary (HyperLogLog cardinalities, Count-Min group counts,
// a uniform reservoir row sample) instead of the full WCOJ pipeline,
// reporting an explicit error bound with every estimate. It also owns
// the exact hash-set evaluation of COUNT(DISTINCT col) — a shape the
// trie engine does not execute — so the sketches always have an exact
// anchor on the same code path.
//
// The tier is strictly opt-in (QueryOptions.ApproxOK): without the
// opt-in the only shape served here is the exact distinct scan, and
// every other query falls through to the normal engine untouched.
package approx

import (
	"fmt"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Agg is one aggregate call of a supported shape.
type Agg struct {
	Fn       string // count | sum | avg | min | max
	Col      string // argument column name; "" for count(*)
	Distinct bool   // count(distinct Col)
}

// OutCol maps one SELECT position to its source: a GROUP BY column
// (Group ≥ 0) or an aggregate (Agg ≥ 0).
type OutCol struct {
	Name  string
	Group int
	Agg   int
}

// Shape is a supported single-table aggregate query: optional WHERE
// over the table's columns, plain-column GROUP BY, and SELECT items
// that are either group columns or bare aggregate calls.
type Shape struct {
	Table   string
	Where   sqlparse.Expr
	GroupBy []string
	Aggs    []Agg
	Out     []OutCol

	HasDistinct bool
	HasMinMax   bool
}

// Analyze reports whether q is a supported shape over sch. A (nil,
// false) return means "not this tier's query" — the caller falls
// through to the normal engine, whose planner produces the
// authoritative error for unsupported distinct shapes.
func Analyze(q *sqlparse.Query, sch *storage.Schema) (*Shape, bool) {
	if len(q.From) != 1 || q.Having != nil {
		return nil, false
	}
	alias := q.From[0].Alias
	if alias == "" {
		alias = q.From[0].Table
	}
	sh := &Shape{Table: q.From[0].Table}

	resolve := func(cr sqlparse.ColRef) (string, bool) {
		if cr.Qualifier != "" && cr.Qualifier != alias {
			return "", false
		}
		if sch.Col(cr.Name) == nil {
			return "", false
		}
		return cr.Name, true
	}

	if q.Where != nil {
		if !filterSupported(q.Where, resolve) {
			return nil, false
		}
		sh.Where = q.Where
	}

	for _, ge := range q.GroupBy {
		cr, ok := ge.(sqlparse.ColRef)
		if !ok {
			return nil, false
		}
		name, ok := resolve(cr)
		if !ok {
			return nil, false
		}
		sh.GroupBy = append(sh.GroupBy, name)
	}

	addAgg := func(a Agg) int {
		for i, b := range sh.Aggs {
			if b == a {
				return i
			}
		}
		sh.Aggs = append(sh.Aggs, a)
		return len(sh.Aggs) - 1
	}

	for _, it := range q.Select {
		out := OutCol{Name: selectName(it), Group: -1, Agg: -1}
		switch e := it.Expr.(type) {
		case sqlparse.ColRef:
			name, ok := resolve(e)
			if !ok {
				return nil, false
			}
			gi := -1
			for i, g := range sh.GroupBy {
				if g == name {
					gi = i
				}
			}
			if gi < 0 {
				return nil, false
			}
			out.Group = gi
		case sqlparse.FuncCall:
			a, ok := analyzeAgg(e, sch, resolve)
			if !ok {
				return nil, false
			}
			out.Agg = addAgg(a)
		default:
			return nil, false
		}
		sh.Out = append(sh.Out, out)
	}
	if len(sh.Out) == 0 {
		return nil, false
	}

	for _, a := range sh.Aggs {
		if a.Distinct {
			sh.HasDistinct = true
		}
		if a.Fn == "min" || a.Fn == "max" {
			sh.HasMinMax = true
		}
	}
	return sh, true
}

// analyzeAgg validates one aggregate call: count(*) / count(col) /
// count(distinct col), and sum/avg/min/max over a numeric column.
func analyzeAgg(fc sqlparse.FuncCall, sch *storage.Schema, resolve func(sqlparse.ColRef) (string, bool)) (Agg, bool) {
	switch fc.Name {
	case "count", "sum", "avg", "min", "max":
	default:
		return Agg{}, false
	}
	if fc.Star || len(fc.Args) == 0 {
		if fc.Name != "count" || fc.Distinct {
			return Agg{}, false
		}
		return Agg{Fn: "count"}, true
	}
	if len(fc.Args) != 1 {
		return Agg{}, false
	}
	cr, ok := fc.Args[0].(sqlparse.ColRef)
	if !ok {
		return Agg{}, false
	}
	name, ok := resolve(cr)
	if !ok {
		return Agg{}, false
	}
	if fc.Distinct && fc.Name != "count" {
		return Agg{}, false
	}
	if !fc.Distinct && fc.Name != "count" && sch.Col(name).Kind == storage.String {
		// String columns have no numeric aggregate; let the normal
		// pipeline produce its own error.
		return Agg{}, false
	}
	if fc.Name == "count" && !fc.Distinct {
		// COUNT(col) counts rows in this engine (no NULLs): same as
		// count(*), keep the argument for the output name only.
		return Agg{Fn: "count", Col: name}, true
	}
	return Agg{Fn: fc.Name, Col: name, Distinct: fc.Distinct}, true
}

// filterSupported walks a WHERE expression and accepts exactly the
// node set the tier's row evaluator implements, with every column
// reference resolving into the table.
func filterSupported(e sqlparse.Expr, resolve func(sqlparse.ColRef) (string, bool)) bool {
	switch v := e.(type) {
	case sqlparse.ColRef:
		_, ok := resolve(v)
		return ok
	case sqlparse.NumberLit, sqlparse.StringLit, sqlparse.DateLit:
		return true
	case sqlparse.BinaryExpr:
		return filterSupported(v.L, resolve) && filterSupported(v.R, resolve)
	case sqlparse.UnaryExpr:
		return filterSupported(v.X, resolve)
	case sqlparse.BetweenExpr:
		return filterSupported(v.X, resolve) && filterSupported(v.Lo, resolve) && filterSupported(v.Hi, resolve)
	case sqlparse.InExpr:
		if !filterSupported(v.X, resolve) {
			return false
		}
		for _, x := range v.Vals {
			if !filterSupported(x, resolve) {
				return false
			}
		}
		return true
	case sqlparse.LikeExpr:
		return filterSupported(v.X, resolve)
	case sqlparse.ExtractExpr:
		return filterSupported(v.X, resolve)
	case sqlparse.CaseExpr:
		for _, w := range v.Whens {
			if !filterSupported(w.Cond, resolve) || !filterSupported(w.Then, resolve) {
				return false
			}
		}
		return v.Else == nil || filterSupported(v.Else, resolve)
	}
	return false
}

func selectName(it sqlparse.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	return it.Expr.String()
}

// Sketchable reports whether the shape can be answered from whole-table
// sketches alone: no filter, and either a scalar count/count-distinct
// read (HLL) or a single-column count-only GROUP BY (Count-Min).
func (sh *Shape) Sketchable() (route string, ok bool) {
	if sh.Where != nil {
		return "", false
	}
	if len(sh.GroupBy) == 0 {
		for _, a := range sh.Aggs {
			if a.Fn != "count" {
				return "", false
			}
		}
		if !sh.HasDistinct {
			// count(*) alone is exact from the row count; nothing to
			// approximate.
			return "", false
		}
		return "hll", true
	}
	if len(sh.GroupBy) != 1 {
		return "", false
	}
	for _, a := range sh.Aggs {
		if a.Fn != "count" || a.Distinct {
			return "", false
		}
	}
	return "cms", true
}

// Sampleable reports whether the shape can be answered from a uniform
// row sample: distinct and min/max have no unbiased sample estimator,
// everything else scales.
func (sh *Shape) Sampleable() bool {
	return !sh.HasDistinct && !sh.HasMinMax
}

func (sh *Shape) String() string {
	return fmt.Sprintf("approx shape: table=%s groups=%d aggs=%d distinct=%t",
		sh.Table, len(sh.GroupBy), len(sh.Aggs), sh.HasDistinct)
}
