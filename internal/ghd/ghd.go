// Package ghd implements generalized hypertree decompositions — the
// query-plan representation of LevelHeaded (paper §II-B, §II-C, §IV-B).
//
// Given a query hypergraph it enumerates valid GHDs (edge coverage +
// running intersection), scores each node's bag with the fractional
// edge cover LP to obtain the FHW, picks a decomposition with the
// minimum FHW, and breaks ties with the paper's four heuristics:
//
//  1. minimize the number of tree nodes,
//  2. minimize the depth,
//  3. minimize the number of shared vertices between nodes,
//  4. maximize the depth of selections.
//
// GHDs whose FHW is 1 are compressed to a single node, since the plan is
// then equivalent to one run of the WCOJ algorithm (paper §II-C).
package ghd

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/hypergraph"
)

// Node is one bag of a GHD. Children are executed before their parent
// (Yannakakis' algorithm runs bottom-up for aggregate queries).
type Node struct {
	// Bag is χ(t): the hypergraph vertices materialized in this node.
	Bag []string
	// Edges are the indices (into the hypergraph edge list) of relations
	// assigned to this node.
	Edges []int
	// Width is the fractional edge cover number of Bag.
	Width    float64
	Children []*Node
}

// GHD is a selected decomposition with its summary statistics.
type GHD struct {
	Root *Node
	// FHW is the maximum node width.
	FHW float64
	// NumNodes, Depth, Shared and SelectionDepth are the tie-break
	// statistics of §IV-B.
	NumNodes       int
	Depth          int
	Shared         int
	SelectionDepth int
}

// Options configures enumeration.
type Options struct {
	// RootMustContain lists vertices that must appear in the root bag —
	// the output (GROUP BY / materialized) vertices, so results need no
	// upward projection (AJAR compatibility of the aggregation ordering).
	RootMustContain []string
	// SelectionEdges are indices of relations carrying selective
	// (equality) predicates, used by heuristic 4.
	SelectionEdges []int
	// MaxCandidates bounds the number of (sub)decompositions retained at
	// each enumeration step; 0 means the default.
	MaxCandidates int
}

const defaultMaxCandidates = 24

// Decompose enumerates GHDs of h and returns the best one under
// (FHW, heuristics) ordering.
func Decompose(h *hypergraph.Hypergraph, opts Options) (*GHD, error) {
	if len(h.Edges) == 0 {
		return nil, fmt.Errorf("ghd: empty hypergraph")
	}
	if len(h.Edges) > 30 {
		return nil, fmt.Errorf("ghd: %d edges exceeds enumeration limit", len(h.Edges))
	}
	e := &enumerator{
		h:         h,
		opts:      opts,
		selEdges:  map[int]bool{},
		memo:      map[memoKey][]*candidate{},
		widthMemo: map[string]float64{},
	}
	if opts.MaxCandidates <= 0 {
		e.opts.MaxCandidates = defaultMaxCandidates
	}
	for _, s := range opts.SelectionEdges {
		e.selEdges[s] = true
	}
	fullMask := uint32(1)<<len(h.Edges) - 1

	pick := func(required []string) (*GHD, error) {
		cands, err := e.decompose(fullMask, required, true)
		if err != nil {
			return nil, err
		}
		if len(cands) == 0 {
			return nil, nil
		}
		best := cands[0]
		for _, c := range cands[1:] {
			if c.better(best) {
				best = c
			}
		}
		g := &GHD{
			Root:           best.node,
			FHW:            best.fhw,
			NumNodes:       best.numNodes,
			Depth:          best.depth,
			Shared:         best.shared,
			SelectionDepth: best.selDepth,
		}
		// Compression: an FHW-1 plan is a single WCOJ run.
		if g.FHW <= 1+1e-9 && g.NumNodes > 1 {
			g = compress(h, g)
		}
		return g, nil
	}

	// The output-vertex requirement is applied softly: FHW minimization
	// runs unconstrained first (matching the theory), and only if the
	// winning multi-node plan fails to expose the output vertices at its
	// root is enumeration redone with the hard constraint. A single
	// all-edge node is always a valid last resort.
	g, err := pick(nil)
	if err != nil {
		return nil, err
	}
	if g != nil && rootHasAll(g.Root, opts.RootMustContain) {
		return g, nil
	}
	g2, err := pick(opts.RootMustContain)
	if err == nil && g2 != nil {
		return g2, nil
	}
	full := compress(h, &GHD{FHW: math.Inf(1)})
	full.FHW = full.Root.Width
	return full, nil
}

// rootHasAll reports whether every vertex in req appears in the root bag.
func rootHasAll(root *Node, req []string) bool {
	for _, v := range req {
		found := false
		for _, x := range root.Bag {
			if x == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// compress collapses the whole decomposition into one node covering all
// edges and vertices.
func compress(h *hypergraph.Hypergraph, g *GHD) *GHD {
	all := make([]int, len(h.Edges))
	for i := range all {
		all[i] = i
	}
	w, err := h.Width(h.Vertices)
	if err != nil {
		w = g.FHW
	}
	return &GHD{
		Root: &Node{
			Bag:   append([]string(nil), h.Vertices...),
			Edges: all,
			Width: w,
		},
		FHW:      g.FHW,
		NumNodes: 1,
		Depth:    1,
	}
}

type memoKey struct {
	mask uint32
	req  string
}

// candidate is a (sub)decomposition with composable statistics.
type candidate struct {
	node     *Node
	fhw      float64
	numNodes int
	depth    int
	shared   int
	selDepth int
}

// better implements the (FHW; nodes; depth; shared; -selDepth) order.
func (c *candidate) better(o *candidate) bool {
	if math.Abs(c.fhw-o.fhw) > 1e-9 {
		return c.fhw < o.fhw
	}
	if c.numNodes != o.numNodes {
		return c.numNodes < o.numNodes
	}
	if c.depth != o.depth {
		return c.depth < o.depth
	}
	if c.shared != o.shared {
		return c.shared < o.shared
	}
	return c.selDepth > o.selDepth
}

type enumerator struct {
	h         *hypergraph.Hypergraph
	opts      Options
	selEdges  map[int]bool
	memo      map[memoKey][]*candidate
	widthMemo map[string]float64
}

func (e *enumerator) width(bag []string) (float64, error) {
	key := strings.Join(bag, ",")
	if w, ok := e.widthMemo[key]; ok {
		return w, nil
	}
	w, err := e.h.Width(bag)
	if err != nil {
		return 0, err
	}
	e.widthMemo[key] = w
	return w, nil
}

// decompose returns candidate subtrees that decompose the edges in mask
// and whose root bag contains every vertex in required.
func (e *enumerator) decompose(mask uint32, required []string, isRoot bool) ([]*candidate, error) {
	reqSorted := append([]string(nil), required...)
	sort.Strings(reqSorted)
	key := memoKey{mask: mask, req: strings.Join(reqSorted, ",")}
	if cands, ok := e.memo[key]; ok {
		return cands, nil
	}

	var edgeIdx []int
	for i := 0; i < len(e.h.Edges); i++ {
		if mask&(1<<i) != 0 {
			edgeIdx = append(edgeIdx, i)
		}
	}

	var cands []*candidate
	// Enumerate non-empty subsets S of the edges in mask as the root
	// bag's covering edges.
	for sub := mask; sub != 0; sub = (sub - 1) & mask {
		if bits.OnesCount32(sub) > 6 {
			continue // bags wider than 6 relations never help on our workloads
		}
		bagSet := map[string]bool{}
		var bag []string
		var rootEdges []int
		for _, i := range edgeIdx {
			if sub&(1<<i) != 0 {
				rootEdges = append(rootEdges, i)
				for _, v := range e.h.Edges[i].Vertices {
					if !bagSet[v] {
						bagSet[v] = true
						bag = append(bag, v)
					}
				}
			}
		}
		// Running intersection with the parent: required vertices must be
		// in this bag.
		okReq := true
		for _, v := range required {
			if !bagSet[v] {
				okReq = false
				break
			}
		}
		if !okReq {
			continue
		}
		// All edges fully inside the bag are covered here.
		covered := sub
		for _, i := range edgeIdx {
			if covered&(1<<i) != 0 {
				continue
			}
			inside := true
			for _, v := range e.h.Edges[i].Vertices {
				if !bagSet[v] {
					inside = false
					break
				}
			}
			if inside {
				covered |= 1 << i
				rootEdges = append(rootEdges, i)
			}
		}
		remaining := mask &^ covered

		w, err := e.width(bag)
		if err != nil {
			return nil, err
		}
		selDepthHere := 0
		for _, i := range rootEdges {
			if e.selEdges[i] {
				selDepthHere = 1 // depth of this node relative to subtree root
			}
		}

		if remaining == 0 {
			sort.Ints(rootEdges)
			cands = append(cands, &candidate{
				node:     &Node{Bag: bag, Edges: rootEdges, Width: w},
				fhw:      w,
				numNodes: 1,
				depth:    1,
				shared:   0,
				selDepth: selDepthHere,
			})
			continue
		}

		// Split remaining edges into components connected through
		// vertices outside the bag.
		outside := map[string]bool{}
		var remIdx []int
		for _, i := range edgeIdx {
			if remaining&(1<<i) != 0 {
				remIdx = append(remIdx, i)
				for _, v := range e.h.Edges[i].Vertices {
					if !bagSet[v] {
						outside[v] = true
					}
				}
			}
		}
		comps := e.h.ConnectedComponents(remIdx, outside)

		// For each component, the interface with this bag must appear in
		// the child's root bag (running intersection).
		childChoices := make([][]*candidate, len(comps))
		feasible := true
		for ci, comp := range comps {
			var cmask uint32
			ifaceSet := map[string]bool{}
			var iface []string
			for _, i := range comp {
				cmask |= 1 << i
				for _, v := range e.h.Edges[i].Vertices {
					if bagSet[v] && !ifaceSet[v] {
						ifaceSet[v] = true
						iface = append(iface, v)
					}
				}
			}
			sub, err := e.decompose(cmask, iface, false)
			if err != nil {
				return nil, err
			}
			if len(sub) == 0 {
				feasible = false
				break
			}
			childChoices[ci] = sub
		}
		if !feasible {
			continue
		}

		// Combine: take the best candidate per component (statistics
		// compose monotonically, so per-component argmin is safe for the
		// lexicographic order used here).
		sort.Ints(rootEdges)
		combos := [][]*candidate{nil}
		for _, choices := range childChoices {
			// Keep a handful of top choices per component to allow
			// different tie-break tradeoffs to surface at the root.
			top := topK(choices, 3)
			var next [][]*candidate
			for _, combo := range combos {
				for _, ch := range top {
					next = append(next, append(append([]*candidate(nil), combo...), ch))
				}
				if len(next) > e.opts.MaxCandidates {
					break
				}
			}
			combos = next
		}
		for _, combo := range combos {
			node := &Node{Bag: bag, Edges: rootEdges, Width: w}
			cand := &candidate{fhw: w, numNodes: 1, depth: 1, selDepth: selDepthHere}
			for _, ch := range combo {
				node.Children = append(node.Children, ch.node)
				cand.fhw = math.Max(cand.fhw, ch.fhw)
				cand.numNodes += ch.numNodes
				if ch.depth+1 > cand.depth {
					cand.depth = ch.depth + 1
				}
				// Shared vertices between this bag and the child bag.
				for _, v := range ch.node.Bag {
					if bagSet[v] {
						cand.shared++
					}
				}
				cand.shared += ch.shared
				if ch.selDepth > 0 && ch.selDepth+1 > cand.selDepth {
					cand.selDepth = ch.selDepth + 1
				}
			}
			cand.node = node
			cands = append(cands, cand)
		}
	}

	cands = topK(cands, e.opts.MaxCandidates)
	e.memo[key] = cands
	return cands, nil
}

// topK sorts candidates best-first and truncates to k.
func topK(cands []*candidate, k int) []*candidate {
	sort.Slice(cands, func(i, j int) bool { return cands[i].better(cands[j]) })
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// Walk visits nodes depth-first, parents before children.
func (g *GHD) Walk(f func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		f(n, d)
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	rec(g.Root, 1)
}

// String renders the decomposition for EXPLAIN output.
func (g *GHD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "GHD fhw=%.2f nodes=%d depth=%d\n", g.FHW, g.NumNodes, g.Depth)
	g.Walk(func(n *Node, d int) {
		fmt.Fprintf(&b, "%s[%s] edges=%v width=%.2f\n", strings.Repeat("  ", d-1),
			strings.Join(n.Bag, ","), n.Edges, n.Width)
	})
	return b.String()
}

// AcyclicHyper reports whether the hypergraph formed by the given edges
// (each a list of vertex names) is α-acyclic, via GYO ear removal: an
// edge e is an ear when every vertex it shares with the rest of the
// hypergraph is contained in one single other edge w (its witness), or
// when it shares nothing at all. Repeatedly removing ears reduces an
// α-acyclic hypergraph to at most one edge. This is the per-GHD-node
// classification used by the hybrid executor: acyclic bags admit a
// binary hash-join chain, cyclic cores need the WCOJ path.
func AcyclicHyper(edges [][]string) bool {
	live := make([][]string, 0, len(edges))
	for _, e := range edges {
		if len(e) > 0 {
			live = append(live, e)
		}
	}
	for len(live) > 1 {
		removed := false
		for i := 0; i < len(live) && !removed; i++ {
			if gyoEar(live, i) {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				removed = true
			}
		}
		if !removed {
			return false
		}
	}
	return true
}

// gyoEar reports whether live[i] is an ear of the hypergraph.
func gyoEar(live [][]string, i int) bool {
	e := live[i]
	// shared: vertices of e appearing in at least one other edge.
	var shared []string
	for _, v := range e {
		for j, f := range live {
			if j == i {
				continue
			}
			if containsVert(f, v) {
				shared = append(shared, v)
				break
			}
		}
	}
	if len(shared) == 0 {
		return true
	}
	for j, f := range live {
		if j == i {
			continue
		}
		all := true
		for _, v := range shared {
			if !containsVert(f, v) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func containsVert(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
