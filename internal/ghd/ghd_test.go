package ghd

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/hypergraph"
)

func mustHG(t *testing.T, edges []hypergraph.Edge) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.New(edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func q5Hypergraph(t *testing.T) *hypergraph.Hypergraph {
	return mustHG(t, []hypergraph.Edge{
		{Name: "customer", Vertices: []string{"custkey", "nationkey"}, Card: 150000},
		{Name: "orders", Vertices: []string{"custkey", "orderkey"}, Card: 1500000},
		{Name: "lineitem", Vertices: []string{"orderkey", "suppkey"}, Card: 6000000},
		{Name: "supplier", Vertices: []string{"suppkey", "nationkey"}, Card: 10000},
		{Name: "nation", Vertices: []string{"nationkey", "regionkey"}, Card: 25},
		{Name: "region", Vertices: []string{"regionkey"}, Card: 5},
	})
}

func TestTriangleSingleNode(t *testing.T) {
	h := mustHG(t, []hypergraph.Edge{
		{Name: "R", Vertices: []string{"a", "b"}, Card: 100},
		{Name: "S", Vertices: []string{"b", "c"}, Card: 100},
		{Name: "T", Vertices: []string{"a", "c"}, Card: 100},
	})
	g, err := Decompose(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.FHW-1.5) > 1e-6 {
		t.Fatalf("triangle FHW = %v, want 1.5", g.FHW)
	}
	if g.NumNodes != 1 {
		t.Fatalf("triangle should be a single node, got %d", g.NumNodes)
	}
	if len(g.Root.Edges) != 3 {
		t.Fatalf("root edges = %v", g.Root.Edges)
	}
}

func TestAcyclicCompressesToSingleNode(t *testing.T) {
	// Path R(a,b) ⋈ S(b,c) ⋈ T(c,d): FHW 1, and §II-C compression should
	// yield one WCOJ node.
	h := mustHG(t, []hypergraph.Edge{
		{Name: "R", Vertices: []string{"a", "b"}, Card: 100},
		{Name: "S", Vertices: []string{"b", "c"}, Card: 100},
		{Name: "T", Vertices: []string{"c", "d"}, Card: 100},
	})
	g, err := Decompose(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.FHW-1) > 1e-6 {
		t.Fatalf("path FHW = %v, want 1", g.FHW)
	}
	if g.NumNodes != 1 {
		t.Fatalf("FHW-1 plan should compress to one node, got %d", g.NumNodes)
	}
	if len(g.Root.Edges) != 3 || len(g.Root.Bag) != 4 {
		t.Fatalf("compressed root = %+v", g.Root)
	}
}

func TestQ5TwoNodePlan(t *testing.T) {
	h := q5Hypergraph(t)
	g, err := Decompose(h, Options{
		RootMustContain: []string{"nationkey"},
		SelectionEdges:  []int{5}, // region has r_name = 'ASIA'
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's plan: FHW 2, two nodes — the {regionkey,nationkey}
	// filter node under the 4-attribute join node.
	if math.Abs(g.FHW-2) > 1e-6 {
		t.Fatalf("Q5 FHW = %v, want 2", g.FHW)
	}
	if g.NumNodes != 2 {
		t.Fatalf("Q5 should be a 2-node GHD, got %d:\n%s", g.NumNodes, g)
	}
	if len(g.Root.Children) != 1 {
		t.Fatalf("root should have one child:\n%s", g)
	}
	child := g.Root.Children[0]
	bag := strings.Join(child.Bag, ",")
	if !strings.Contains(bag, "regionkey") || !strings.Contains(bag, "nationkey") {
		t.Fatalf("child bag = %v, want {regionkey, nationkey}", child.Bag)
	}
	// Root must contain the output vertex.
	found := false
	for _, v := range g.Root.Bag {
		if v == "nationkey" {
			found = true
		}
	}
	if !found {
		t.Fatalf("root bag %v missing nationkey", g.Root.Bag)
	}
}

func TestRootMustContainRespected(t *testing.T) {
	h := mustHG(t, []hypergraph.Edge{
		{Name: "R", Vertices: []string{"a", "b"}, Card: 100},
		{Name: "S", Vertices: []string{"b", "c"}, Card: 100},
	})
	g, err := Decompose(h, Options{RootMustContain: []string{"c"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range g.Root.Bag {
		if v == "c" {
			found = true
		}
	}
	if !found {
		t.Fatalf("root bag %v does not contain required vertex c", g.Root.Bag)
	}
}

func TestEveryEdgeAssignedExactlyOnce(t *testing.T) {
	h := q5Hypergraph(t)
	g, err := Decompose(h, Options{RootMustContain: []string{"nationkey"}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	g.Walk(func(n *Node, _ int) {
		for _, e := range n.Edges {
			seen[e]++
		}
	})
	for i := range h.Edges {
		if seen[i] != 1 {
			t.Fatalf("edge %d assigned %d times:\n%s", i, seen[i], g)
		}
	}
}

func TestRunningIntersectionProperty(t *testing.T) {
	// For every vertex, the set of nodes containing it must form a
	// connected subtree.
	h := q5Hypergraph(t)
	for _, req := range [][]string{nil, {"nationkey"}, {"orderkey", "nationkey"}} {
		g, err := Decompose(h, Options{RootMustContain: req})
		if err != nil {
			t.Fatal(err)
		}
		checkRunningIntersection(t, g)
	}
}

func checkRunningIntersection(t *testing.T, g *GHD) {
	t.Helper()
	// For each vertex, collect nodes containing it; check connectivity by
	// walking: a node's vertex occurrence is connected iff the occurrences
	// form one subtree — equivalently, for every node n containing v whose
	// parent does not contain v, n is the unique "topmost" occurrence.
	type nodeInfo struct {
		node   *Node
		parent *Node
	}
	var infos []nodeInfo
	var walk func(n, p *Node)
	walk = func(n, p *Node) {
		infos = append(infos, nodeInfo{n, p})
		for _, c := range n.Children {
			walk(c, n)
		}
	}
	walk(g.Root, nil)
	vertices := map[string]bool{}
	for _, in := range infos {
		for _, v := range in.node.Bag {
			vertices[v] = true
		}
	}
	has := func(n *Node, v string) bool {
		if n == nil {
			return false
		}
		for _, x := range n.Bag {
			if x == v {
				return true
			}
		}
		return false
	}
	for v := range vertices {
		tops := 0
		for _, in := range infos {
			if has(in.node, v) && !has(in.parent, v) {
				tops++
			}
		}
		if tops != 1 {
			t.Fatalf("vertex %s occurs in %d disconnected subtrees:\n%s", v, tops, g)
		}
	}
}

func TestSelectionDepthHeuristic(t *testing.T) {
	// Two same-FHW decompositions exist for this query; the one putting
	// the selected relation deeper should win, all earlier tie-breaks
	// being equal.
	h := q5Hypergraph(t)
	g, err := Decompose(h, Options{
		RootMustContain: []string{"nationkey"},
		SelectionEdges:  []int{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The selection edge (region) should not be in the root.
	for _, e := range g.Root.Edges {
		if e == 5 {
			t.Fatalf("selection edge in root; want it pushed into the leaf:\n%s", g)
		}
	}
	if g.SelectionDepth < 2 {
		t.Fatalf("selection depth = %d, want >= 2", g.SelectionDepth)
	}
}

func TestEmptyHypergraphErrors(t *testing.T) {
	h := &hypergraph.Hypergraph{}
	if _, err := Decompose(h, Options{}); err == nil {
		t.Error("empty hypergraph should error")
	}
}

func TestSingleEdge(t *testing.T) {
	h := mustHG(t, []hypergraph.Edge{{Name: "R", Vertices: []string{"a", "b"}, Card: 5}})
	g, err := Decompose(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 1 || math.Abs(g.FHW-1) > 1e-9 {
		t.Fatalf("single edge: nodes=%d fhw=%v", g.NumNodes, g.FHW)
	}
}

func TestMatrixMultiplyHypergraph(t *testing.T) {
	// m1(i,k) ⋈ m2(k,j): FHW 1 → single WCOJ node (Fig. 4 right).
	h := mustHG(t, []hypergraph.Edge{
		{Name: "m1", Vertices: []string{"i", "k"}, Card: 1000},
		{Name: "m2", Vertices: []string{"k", "j"}, Card: 1000},
	})
	g, err := Decompose(h, Options{RootMustContain: []string{"i", "j"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 1 {
		t.Fatalf("matmul should be single node, got:\n%s", g)
	}
	if math.Abs(g.FHW-1) > 1e-9 {
		t.Fatalf("matmul FHW = %v, want 1", g.FHW)
	}
}

func TestStringOutput(t *testing.T) {
	h := q5Hypergraph(t)
	g, err := Decompose(h, Options{RootMustContain: []string{"nationkey"}})
	if err != nil {
		t.Fatal(err)
	}
	if s := g.String(); !strings.Contains(s, "fhw=") {
		t.Errorf("String output = %q", s)
	}
}

// Property: random chain/star (acyclic) hypergraphs always decompose to
// FHW 1 and compress to a single node; random arbitrary hypergraphs
// always yield a valid decomposition (edges covered once, running
// intersection).
func TestRandomHypergraphProperties(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	vertexName := func(i int) string { return string(rune('a' + i)) }
	for trial := 0; trial < 40; trial++ {
		nV := 3 + r.Intn(5)
		var edges []hypergraph.Edge
		if trial%2 == 0 {
			// Acyclic: a chain of 2-vertex edges.
			for i := 0; i+1 < nV; i++ {
				edges = append(edges, hypergraph.Edge{
					Name:     fmt.Sprintf("e%d", i),
					Vertices: []string{vertexName(i), vertexName(i + 1)},
					Card:     10 + r.Intn(100),
				})
			}
		} else {
			// Arbitrary random edges plus a spanning chain for coverage.
			for i := 0; i+1 < nV; i++ {
				edges = append(edges, hypergraph.Edge{
					Name:     fmt.Sprintf("c%d", i),
					Vertices: []string{vertexName(i), vertexName(i + 1)},
					Card:     10 + r.Intn(100),
				})
			}
			for k := 0; k < r.Intn(3); k++ {
				a, b := r.Intn(nV), r.Intn(nV)
				if a == b {
					continue
				}
				edges = append(edges, hypergraph.Edge{
					Name:     fmt.Sprintf("x%d", k),
					Vertices: []string{vertexName(a), vertexName(b)},
					Card:     10 + r.Intn(100),
				})
			}
		}
		h, err := hypergraph.New(edges)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Decompose(h, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if trial%2 == 0 {
			if math.Abs(g.FHW-1) > 1e-9 || g.NumNodes != 1 {
				t.Fatalf("trial %d: acyclic chain FHW=%v nodes=%d", trial, g.FHW, g.NumNodes)
			}
		}
		// Every edge assigned exactly once.
		seen := map[int]int{}
		g.Walk(func(n *Node, _ int) {
			for _, e := range n.Edges {
				seen[e]++
			}
		})
		for i := range edges {
			if seen[i] != 1 {
				t.Fatalf("trial %d: edge %d assigned %d times", trial, i, seen[i])
			}
		}
		checkRunningIntersection(t, g)
	}
}

func TestAcyclicHyper(t *testing.T) {
	cases := []struct {
		name  string
		edges [][]string
		want  bool
	}{
		{"empty", nil, true},
		{"single", [][]string{{"a", "b"}}, true},
		{"chain", [][]string{{"a", "b"}, {"b", "c"}, {"c", "d"}}, true},
		{"star", [][]string{{"a", "b"}, {"a", "c"}, {"a", "d"}}, true},
		{"triangle", [][]string{{"a", "b"}, {"b", "c"}, {"a", "c"}}, false},
		{"triangle-covered", [][]string{{"a", "b"}, {"b", "c"}, {"a", "c"}, {"a", "b", "c"}}, true},
		{"q3-shape", [][]string{{"ck"}, {"ok", "ck"}, {"ok"}}, true},
		{"q10-shape", [][]string{{"ck", "nk"}, {"ck", "ok"}, {"ok"}, {"nk"}}, true},
		{"4-cycle", [][]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"}}, false},
		{"disconnected", [][]string{{"a", "b"}, {"c", "d"}}, true},
		{"superedge", [][]string{{"a", "b", "c"}, {"a"}, {"b"}, {"a", "c"}}, true},
	}
	for _, tc := range cases {
		if got := AcyclicHyper(tc.edges); got != tc.want {
			t.Errorf("%s: AcyclicHyper=%v want %v", tc.name, got, tc.want)
		}
	}
}
