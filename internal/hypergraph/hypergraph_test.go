package hypergraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func triangle() *Hypergraph {
	h, err := New([]Edge{
		{Name: "R", Vertices: []string{"a", "b"}, Card: 1000},
		{Name: "S", Vertices: []string{"b", "c"}, Card: 1000},
		{Name: "T", Vertices: []string{"a", "c"}, Card: 1000},
	})
	if err != nil {
		panic(err)
	}
	return h
}

func TestTriangleWidth(t *testing.T) {
	h := triangle()
	// The canonical WCOJ result: the triangle's fractional cover number
	// is 3/2 (each edge weight 1/2).
	w, err := h.Width(h.Vertices)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1.5) > 1e-6 {
		t.Fatalf("triangle width = %v, want 1.5", w)
	}
}

func TestTriangleAGM(t *testing.T) {
	h := triangle()
	// AGM bound for the triangle is N^{3/2} = 1000^1.5.
	b, err := h.AGMBound()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(1000, 1.5)
	if math.Abs(b-want)/want > 1e-6 {
		t.Fatalf("AGM = %v, want %v", b, want)
	}
}

func TestPathQueryWidth(t *testing.T) {
	// R(a,b) ⋈ S(b,c): acyclic, width 1 per bag {a,b} or {b,c}.
	h, err := New([]Edge{
		{Name: "R", Vertices: []string{"a", "b"}, Card: 10},
		{Name: "S", Vertices: []string{"b", "c"}, Card: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := h.Width([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1) > 1e-6 {
		t.Fatalf("bag {a,b} width = %v, want 1", w)
	}
	// Whole vertex set needs both edges: width 2.
	w, err = h.Width(h.Vertices)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-2) > 1e-6 {
		t.Fatalf("full width = %v, want 2", w)
	}
}

func TestTPCHQ5Hypergraph(t *testing.T) {
	// The Fig. 4 hypergraph.
	h, err := New([]Edge{
		{Name: "customer", Vertices: []string{"custkey", "nationkey"}, Card: 150000},
		{Name: "orders", Vertices: []string{"custkey", "orderkey"}, Card: 1500000},
		{Name: "lineitem", Vertices: []string{"orderkey", "suppkey"}, Card: 6000000},
		{Name: "supplier", Vertices: []string{"suppkey", "nationkey"}, Card: 10000},
		{Name: "nation", Vertices: []string{"nationkey", "regionkey"}, Card: 25},
		{Name: "region", Vertices: []string{"regionkey"}, Card: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Vertices) != 5 {
		t.Fatalf("vertices = %v", h.Vertices)
	}
	// The paper's expensive GHD node bag.
	w, err := h.Width([]string{"orderkey", "custkey", "suppkey", "nationkey"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-2) > 1e-6 {
		t.Fatalf("Q5 big bag width = %v, want 2", w)
	}
	// The filter node {regionkey, nationkey} has width 1 (nation covers both).
	w, err = h.Width([]string{"regionkey", "nationkey"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1) > 1e-6 {
		t.Fatalf("Q5 filter bag width = %v, want 1", w)
	}
}

func TestEdgesWithAndCovers(t *testing.T) {
	h := triangle()
	es := h.EdgesWith("b")
	if len(es) != 2 {
		t.Fatalf("EdgesWith(b) = %v", es)
	}
	if !h.Edges[0].Covers("a") || h.Edges[0].Covers("c") {
		t.Error("Covers wrong")
	}
	if h.VertexIndex("c") != 2 || h.VertexIndex("zzz") != -1 {
		t.Error("VertexIndex wrong")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New([]Edge{{Name: "R", Vertices: []string{"a"}}, {Name: "R", Vertices: []string{"b"}}}); err == nil {
		t.Error("duplicate edge names should error")
	}
	if _, err := New([]Edge{{Name: "R"}}); err == nil {
		t.Error("empty edge should error")
	}
}

func TestWidthUncoveredVertex(t *testing.T) {
	h := triangle()
	if _, err := h.Width([]string{"a", "zzz"}); err == nil {
		t.Error("uncovered vertex should error")
	}
}

func TestConnectedComponents(t *testing.T) {
	h, err := New([]Edge{
		{Name: "R", Vertices: []string{"a", "b"}},
		{Name: "S", Vertices: []string{"b", "c"}},
		{Name: "T", Vertices: []string{"d", "e"}},
		{Name: "U", Vertices: []string{"e", "f"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": true, "f": true}
	comps := h.ConnectedComponents([]int{0, 1, 2, 3}, all)
	if len(comps) != 2 {
		t.Fatalf("components = %v, want 2 groups", comps)
	}
	// Cutting vertex b splits R from S.
	noB := map[string]bool{"a": true, "c": true, "d": true, "e": true, "f": true}
	comps = h.ConnectedComponents([]int{0, 1}, noB)
	if len(comps) != 2 {
		t.Fatalf("components without b = %v, want 2 groups", comps)
	}
}

// Property: the LP solution is always a feasible cover and the objective
// never exceeds the integral cover (all edges at weight 1).
func TestFractionalCoverProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nV := 2 + r.Intn(5)
		nE := 1 + r.Intn(5)
		verts := make([]string, nV)
		for i := range verts {
			verts[i] = string(rune('a' + i))
		}
		edges := make([]Edge, nE)
		for i := range edges {
			var vs []string
			for _, v := range verts {
				if r.Intn(2) == 0 {
					vs = append(vs, v)
				}
			}
			if len(vs) == 0 {
				vs = []string{verts[r.Intn(nV)]}
			}
			edges[i] = Edge{Name: string(rune('R' + i)), Vertices: vs, Card: 1 + r.Intn(1000)}
		}
		// Guarantee coverage: one edge with all vertices.
		edges = append(edges, Edge{Name: "ALL", Vertices: verts, Card: 1 + r.Intn(1000)})
		h, err := New(edges)
		if err != nil {
			return false
		}
		w, x, err := h.FractionalCover(h.Vertices, func(*Edge) float64 { return 1 })
		if err != nil {
			return false
		}
		// Feasibility.
		for _, v := range h.Vertices {
			total := 0.0
			for _, e := range h.EdgesWith(v) {
				total += x[e]
			}
			if total < 1-1e-6 {
				return false
			}
		}
		// Nonnegativity and upper bound (weight-1 "ALL" edge is feasible).
		for _, xe := range x {
			if xe < -1e-9 {
				return false
			}
		}
		return w <= 1+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAGMMonotoneInCardinality(t *testing.T) {
	small, _ := New([]Edge{
		{Name: "R", Vertices: []string{"a", "b"}, Card: 100},
		{Name: "S", Vertices: []string{"b", "c"}, Card: 100},
	})
	big, _ := New([]Edge{
		{Name: "R", Vertices: []string{"a", "b"}, Card: 10000},
		{Name: "S", Vertices: []string{"b", "c"}, Card: 10000},
	})
	bs, _ := small.AGMBound()
	bb, _ := big.AGMBound()
	if bb <= bs {
		t.Fatalf("AGM not monotone: %v vs %v", bs, bb)
	}
	// For the path query the bound is |R|·|S|.
	if math.Abs(bs-100*100)/1e4 > 1e-6 {
		t.Fatalf("path AGM = %v, want 1e4", bs)
	}
}

func TestStringRendering(t *testing.T) {
	if s := triangle().String(); s == "" {
		t.Error("String empty")
	}
}
