// Package hypergraph implements query hypergraphs (paper §II-A):
// vertices are join attributes, hyperedges are relations. It provides
// the fractional edge cover linear program underlying both the AGM
// output-size bound and the fractional hypertree width (FHW) of GHD
// nodes.
package hypergraph

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Edge is one hyperedge: a relation with the set of hypergraph vertices
// (join attributes) it spans.
type Edge struct {
	// Name identifies the relation occurrence (alias-qualified, so a
	// self-join contributes distinct edges).
	Name string
	// Vertices are the hypergraph vertices covered, in relation key order.
	Vertices []string
	// Card is the relation's tuple cardinality (statistics input to the
	// AGM bound and the cost-based optimizer).
	Card int
}

// Covers reports whether the edge contains vertex v.
func (e *Edge) Covers(v string) bool {
	for _, x := range e.Vertices {
		if x == v {
			return true
		}
	}
	return false
}

// Hypergraph is a query hypergraph H = (V, E).
type Hypergraph struct {
	Vertices []string
	Edges    []Edge

	vidx map[string]int
}

// New builds a hypergraph from edges; the vertex set is the union of the
// edge vertex lists, in first-appearance order.
func New(edges []Edge) (*Hypergraph, error) {
	h := &Hypergraph{Edges: edges, vidx: map[string]int{}}
	names := map[string]bool{}
	for _, e := range edges {
		if names[e.Name] {
			return nil, fmt.Errorf("hypergraph: duplicate edge name %q", e.Name)
		}
		names[e.Name] = true
		if len(e.Vertices) == 0 {
			return nil, fmt.Errorf("hypergraph: edge %q has no vertices", e.Name)
		}
		for _, v := range e.Vertices {
			if _, ok := h.vidx[v]; !ok {
				h.vidx[v] = len(h.Vertices)
				h.Vertices = append(h.Vertices, v)
			}
		}
	}
	return h, nil
}

// VertexIndex returns the index of v, or -1.
func (h *Hypergraph) VertexIndex(v string) int {
	if i, ok := h.vidx[v]; ok {
		return i
	}
	return -1
}

// EdgesWith returns the indices of edges containing vertex v.
func (h *Hypergraph) EdgesWith(v string) []int {
	var out []int
	for i := range h.Edges {
		if h.Edges[i].Covers(v) {
			out = append(out, i)
		}
	}
	return out
}

// FractionalCover solves the fractional edge cover LP for the given
// vertex subset using all edges of h: minimize Σ c(e)·x(e) subject to
// every vertex in verts being covered with total weight ≥ 1. The cost
// function c is supplied by the caller (1 for FHW, log|R| for AGM).
func (h *Hypergraph) FractionalCover(verts []string, cost func(e *Edge) float64) (float64, []float64, error) {
	c := make([]float64, len(h.Edges))
	for i := range h.Edges {
		c[i] = cost(&h.Edges[i])
	}
	covers := make([][]int, len(verts))
	for i, v := range verts {
		covers[i] = h.EdgesWith(v)
		if len(covers[i]) == 0 {
			return 0, nil, fmt.Errorf("hypergraph: vertex %q not covered by any edge", v)
		}
	}
	return solveCoverLP(c, covers)
}

// Width is the fractional edge cover number of the vertex subset: the
// FHW contribution of a GHD node whose bag is verts (paper §II-B).
func (h *Hypergraph) Width(verts []string) (float64, error) {
	if len(verts) == 0 {
		return 0, nil
	}
	w, _, err := h.FractionalCover(verts, func(*Edge) float64 { return 1 })
	return w, err
}

// AGMBound computes the Atserias–Grohe–Marx bound on the output size of
// the full join: min Π |R_e|^{x_e} over fractional covers x of V
// (paper §II-A). It returns +Inf overflow-free via logs.
func (h *Hypergraph) AGMBound() (float64, error) {
	if len(h.Vertices) == 0 {
		return 1, nil
	}
	logObj, _, err := h.FractionalCover(h.Vertices, func(e *Edge) float64 {
		card := e.Card
		if card < 1 {
			card = 1
		}
		return math.Log2(float64(card))
	})
	if err != nil {
		return 0, err
	}
	return math.Exp2(logObj), nil
}

// ConnectedComponents partitions the given edge indices into components
// connected through the given vertex set (edges sharing a vertex in
// `through` are connected). Used by GHD enumeration: after a bag is
// chosen, remaining edges split into components through non-bag
// vertices.
func (h *Hypergraph) ConnectedComponents(edgeIdx []int, through map[string]bool) [][]int {
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range edgeIdx {
		parent[e] = e
	}
	byVertex := map[string][]int{}
	for _, e := range edgeIdx {
		for _, v := range h.Edges[e].Vertices {
			if through[v] {
				byVertex[v] = append(byVertex[v], e)
			}
		}
	}
	for _, es := range byVertex {
		for i := 1; i < len(es); i++ {
			union(es[0], es[i])
		}
	}
	groups := map[int][]int{}
	for _, e := range edgeIdx {
		r := find(e)
		groups[r] = append(groups[r], e)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// String renders the hypergraph for EXPLAIN output.
func (h *Hypergraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "V={%s} E={", strings.Join(h.Vertices, ","))
	for i, e := range h.Edges {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s(%s)", e.Name, strings.Join(e.Vertices, ","))
	}
	b.WriteString("}")
	return b.String()
}
