package hypergraph

import (
	"fmt"
	"math"
)

// solveCoverLP solves the fractional edge cover linear program
//
//	minimize    Σ_e c[e]·x[e]
//	subject to  Σ_{e : covers[v] ∋ e} x[e] ≥ 1   for every vertex v
//	            x ≥ 0
//
// with a two-phase primal simplex on the standard-form tableau. The LPs
// here are tiny (≤ ~16 edges, ≤ ~16 vertices), so numerical simplicity
// beats sophistication; Bland's rule guarantees termination.
func solveCoverLP(c []float64, covers [][]int) (obj float64, x []float64, err error) {
	nVars := len(c)
	nCons := len(covers)
	if nCons == 0 {
		return 0, make([]float64, nVars), nil
	}
	for v, row := range covers {
		if len(row) == 0 {
			return 0, nil, fmt.Errorf("hypergraph: vertex %d is covered by no edge", v)
		}
	}

	// Standard form: A x - s + a = 1 with surplus s ≥ 0 and artificial
	// a ≥ 0. Columns: [x (nVars) | s (nCons) | a (nCons) | rhs].
	cols := nVars + 2*nCons + 1
	tab := make([][]float64, nCons)
	basis := make([]int, nCons)
	for i := 0; i < nCons; i++ {
		tab[i] = make([]float64, cols)
		for _, e := range covers[i] {
			tab[i][e] = 1
		}
		tab[i][nVars+i] = -1         // surplus
		tab[i][nVars+nCons+i] = 1    // artificial
		tab[i][cols-1] = 1           // rhs
		basis[i] = nVars + nCons + i // artificials start basic
	}

	// Phase 1: minimize the sum of artificials.
	phase1 := make([]float64, cols)
	for i := 0; i < nCons; i++ {
		phase1[nVars+nCons+i] = 1
	}
	if err := simplexIterate(tab, basis, phase1); err != nil {
		return 0, nil, err
	}
	if v := objectiveValue(tab, basis, phase1); v > 1e-7 {
		return 0, nil, fmt.Errorf("hypergraph: cover LP infeasible (phase-1 objective %g)", v)
	}
	// Drive any artificial still basic (at value 0) out of the basis.
	for i := 0; i < nCons; i++ {
		if basis[i] < nVars+nCons {
			continue
		}
		pivoted := false
		for j := 0; j < nVars+nCons; j++ {
			if math.Abs(tab[i][j]) > 1e-9 {
				pivot(tab, basis, i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant constraint row; harmless.
			continue
		}
	}

	// Phase 2: minimize the true objective, artificials forbidden.
	phase2 := make([]float64, cols)
	copy(phase2, c)
	for i := 0; i < nCons; i++ {
		phase2[nVars+nCons+i] = math.Inf(1) // never re-enter
	}
	if err := simplexIterate(tab, basis, phase2); err != nil {
		return 0, nil, err
	}

	x = make([]float64, nVars)
	for i, b := range basis {
		if b < nVars {
			x[b] = tab[i][cols-1]
		}
	}
	obj = 0
	for e, xe := range x {
		obj += c[e] * xe
	}
	return obj, x, nil
}

// objectiveValue computes cᵀx for the current basic solution.
func objectiveValue(tab [][]float64, basis []int, c []float64) float64 {
	cols := len(tab[0])
	v := 0.0
	for i, b := range basis {
		if !math.IsInf(c[b], 1) {
			v += c[b] * tab[i][cols-1]
		}
	}
	return v
}

// simplexIterate runs primal simplex (minimization) to optimality using
// Bland's anti-cycling rule.
func simplexIterate(tab [][]float64, basis []int, c []float64) error {
	cols := len(tab[0])
	nCols := cols - 1
	for iter := 0; ; iter++ {
		if iter > 10000 {
			return fmt.Errorf("hypergraph: simplex failed to converge")
		}
		// Reduced costs: r_j = c_j - Σ_i c_{basis[i]}·tab[i][j].
		enter := -1
		for j := 0; j < nCols; j++ {
			if math.IsInf(c[j], 1) {
				continue
			}
			r := c[j]
			for i, b := range basis {
				if !math.IsInf(c[b], 1) && tab[i][j] != 0 {
					r -= c[b] * tab[i][j]
				}
			}
			if r < -1e-9 {
				enter = j // Bland: first improving column
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Ratio test, Bland tie-break on smallest basis index.
		leave := -1
		best := math.Inf(1)
		for i := range tab {
			a := tab[i][enter]
			if a > 1e-9 {
				ratio := tab[i][cols-1] / a
				if ratio < best-1e-12 || (math.Abs(ratio-best) <= 1e-12 && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return fmt.Errorf("hypergraph: cover LP unbounded")
		}
		pivot(tab, basis, leave, enter)
	}
}

// pivot performs a Gauss-Jordan pivot on tab[row][col].
func pivot(tab [][]float64, basis []int, row, col int) {
	p := tab[row][col]
	for j := range tab[row] {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := range tab[i] {
			tab[i][j] -= f * tab[row][j]
		}
	}
	basis[row] = col
}
