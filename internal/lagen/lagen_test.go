package lagen

import (
	"testing"

	"repro/internal/blas"
	"repro/internal/storage"
)

func TestProfilesShape(t *testing.T) {
	ps := Profiles(0.02)
	if len(ps) != 3 {
		t.Fatalf("profiles = %d", len(ps))
	}
	byName := map[string]SparseSpec{}
	for _, p := range ps {
		byName[p.Name] = p
		if p.N < 64 {
			t.Errorf("%s: N = %d below floor", p.Name, p.N)
		}
	}
	// Relative nnz/row must match the originals: hv15r > harbor > nlp240.
	if !(byName["hv15r"].NNZPerRow > byName["harbor"].NNZPerRow &&
		byName["harbor"].NNZPerRow > byName["nlp240"].NNZPerRow) {
		t.Errorf("nnz/row ordering broken: %+v", byName)
	}
	if !byName["nlp240"].Symmetric {
		t.Error("nlp240 must be symmetric (KKT)")
	}
	if _, err := Profile("harbor", 0.01); err != nil {
		t.Error(err)
	}
	if _, err := Profile("nope", 1); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestTriplesProperties(t *testing.T) {
	spec := SparseSpec{Name: "t", N: 500, NNZPerRow: 12, Bandwidth: 40}
	i, j, v := Triples(spec, 7)
	if len(i) != len(j) || len(j) != len(v) {
		t.Fatal("ragged triples")
	}
	// Average nnz/row within 2x of the target.
	avg := float64(len(i)) / float64(spec.N)
	if avg < float64(spec.NNZPerRow)/2 || avg > float64(spec.NNZPerRow)*2 {
		t.Fatalf("avg nnz/row = %v, want ≈ %d", avg, spec.NNZPerRow)
	}
	// Diagonal present, band respected, no duplicates.
	diag := map[int32]bool{}
	seen := map[int64]bool{}
	for k := range i {
		if i[k] == j[k] {
			diag[i[k]] = true
		}
		off := int(i[k]) - int(j[k])
		if off < -spec.Bandwidth || off > spec.Bandwidth {
			t.Fatalf("entry (%d,%d) outside band", i[k], j[k])
		}
		key := int64(i[k])<<32 | int64(uint32(j[k]))
		if seen[key] {
			t.Fatalf("duplicate entry (%d,%d)", i[k], j[k])
		}
		seen[key] = true
	}
	if len(diag) != spec.N {
		t.Fatalf("diagonal has %d of %d entries", len(diag), spec.N)
	}
}

func TestSymmetricTriples(t *testing.T) {
	spec := SparseSpec{Name: "s", N: 300, NNZPerRow: 10, Bandwidth: 30, Symmetric: true}
	i, j, v := Triples(spec, 8)
	vals := map[int64]float64{}
	for k := range i {
		vals[int64(i[k])<<32|int64(uint32(j[k]))] = v[k]
	}
	for k := range i {
		mirror, ok := vals[int64(j[k])<<32|int64(uint32(i[k]))]
		if !ok || mirror != v[k] {
			t.Fatalf("entry (%d,%d) not mirrored", i[k], j[k])
		}
	}
}

func TestTriplesDeterministic(t *testing.T) {
	spec := SparseSpec{Name: "d", N: 200, NNZPerRow: 8, Bandwidth: 20}
	i1, j1, v1 := Triples(spec, 9)
	i2, j2, v2 := Triples(spec, 9)
	if len(i1) != len(i2) {
		t.Fatal("nondeterministic size")
	}
	for k := range i1 {
		if i1[k] != i2[k] || j1[k] != j2[k] || v1[k] != v2[k] {
			t.Fatal("nondeterministic content")
		}
	}
}

func TestLoadSparseAndVector(t *testing.T) {
	cat := storage.NewCatalog()
	spec := SparseSpec{Name: "x", N: 128, NNZPerRow: 6, Bandwidth: 16}
	nnz, err := LoadSparse(cat, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	m := cat.Table("matrix")
	vec := cat.Table("vec")
	if m.NumRows != nnz || vec.NumRows != spec.N {
		t.Fatalf("rows: matrix=%d (want %d) vec=%d (want %d)", m.NumRows, nnz, vec.NumRows, spec.N)
	}
	// The shared domain covers exactly [0, N).
	d := cat.Domain("dim")
	if d.Len() != spec.N {
		t.Fatalf("dim domain = %d, want %d", d.Len(), spec.N)
	}
}

func TestLoadDenseBuffer(t *testing.T) {
	cat := storage.NewCatalog()
	n := 32
	if err := LoadDense(cat, n, 4); err != nil {
		t.Fatal(err)
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	a, x, err := DenseBuffer(cat, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != n*n || len(x) != n {
		t.Fatalf("buffer sizes %d, %d", len(a), len(x))
	}
	// Row-major layout: gemv through the buffer matches manual dot.
	y := make([]float64, n)
	blas.Gemv(n, n, a, x, y)
	want := 0.0
	for j := 0; j < n; j++ {
		want += a[5*n+j] * x[j]
	}
	if diff := y[5] - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("row-major layout broken: %v vs %v", y[5], want)
	}
	if _, _, err := DenseBuffer(cat, n+1); err == nil {
		t.Error("wrong order should error")
	}
}
