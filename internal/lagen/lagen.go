// Package lagen generates the linear-algebra benchmark inputs. The
// paper evaluates on three University-of-Florida sparse matrices —
// Harbor (3-D CFD of Charleston Harbor, 46,835² with 2.3 M nonzeros,
// ~50/row), HV15R (3-D engine fan CFD, 2M² with 283 M nonzeros,
// ~140/row) and nlpkkt240 (symmetric KKT, 28M² with 401 M nonzeros,
// ~14/row) — plus synthetic dense matrices of order 8192–16384.
//
// Substitution note (DESIGN.md §1.2): the originals are hundreds of
// megabytes to download and hundreds of millions of nonzeros; this
// package generates scaled synthetic stand-ins that preserve the
// structural properties the experiments depend on — nonzeros per row,
// banded CFD-stencil locality, and symmetry for the KKT case — so set
// layouts (bitset vs uint) and intersection densities behave like the
// originals one scale down.
package lagen

import (
	"fmt"
	"math/rand"

	"repro/internal/storage"
)

// SparseSpec describes a synthetic sparse matrix.
type SparseSpec struct {
	// Name labels the dataset ("harbor", "hv15r", "nlp240").
	Name string
	// N is the matrix order.
	N int
	// NNZPerRow is the average number of stored entries per row.
	NNZPerRow int
	// Bandwidth is the half-width of the band entries are drawn from
	// (CFD stencils touch nearby cells).
	Bandwidth int
	// Symmetric mirrors entries across the diagonal (KKT matrices).
	Symmetric bool
}

// Profiles returns the three paper datasets scaled by the given factor
// (scale 1 ≈ the generator defaults sized for this environment;
// nnz/row always matches the original).
func Profiles(scale float64) []SparseSpec {
	sz := func(base int) int {
		n := int(float64(base) * scale)
		if n < 64 {
			n = 64
		}
		return n
	}
	return []SparseSpec{
		// Harbor: 46,835 rows, ~50 nnz/row, tight CFD band.
		{Name: "harbor", N: sz(8000), NNZPerRow: 50, Bandwidth: 400},
		// HV15R: 2,017,169 rows, ~140 nnz/row.
		{Name: "hv15r", N: sz(20000), NNZPerRow: 140, Bandwidth: 1200},
		// nlpkkt240: 27,993,600 rows, ~14 nnz/row, symmetric.
		{Name: "nlp240", N: sz(60000), NNZPerRow: 14, Bandwidth: 3000, Symmetric: true},
	}
}

// Profile returns one named profile at the given scale.
func Profile(name string, scale float64) (SparseSpec, error) {
	for _, p := range Profiles(scale) {
		if p.Name == name {
			return p, nil
		}
	}
	return SparseSpec{}, fmt.Errorf("lagen: unknown profile %q", name)
}

// Triples generates the COO triples of a spec, deterministically, with
// sorted distinct coordinates per row and a guaranteed diagonal (CFD
// and KKT matrices have full diagonals).
func Triples(spec SparseSpec, seed int64) (i, j []int32, v []float64) {
	r := rand.New(rand.NewSource(seed))
	n := spec.N
	perRow := spec.NNZPerRow
	if spec.Symmetric {
		perRow = (perRow + 1) / 2 // mirrored entries double the count
	}
	est := n * spec.NNZPerRow
	i = make([]int32, 0, est)
	j = make([]int32, 0, est)
	v = make([]float64, 0, est)
	seen := map[int64]bool{}
	add := func(row, col int32, val float64) {
		key := int64(row)<<32 | int64(uint32(col))
		if seen[key] {
			return
		}
		seen[key] = true
		i = append(i, row)
		j = append(j, col)
		v = append(v, val)
	}
	for row := 0; row < n; row++ {
		add(int32(row), int32(row), 4+r.Float64())
		for k := 1; k < perRow; k++ {
			off := r.Intn(2*spec.Bandwidth+1) - spec.Bandwidth
			col := row + off
			if col < 0 || col >= n {
				continue
			}
			val := r.NormFloat64()
			add(int32(row), int32(col), val)
			if spec.Symmetric {
				add(int32(col), int32(row), val)
			}
		}
		// Periodically clear the dedup map to bound memory: collisions
		// across distant rows are impossible within the band.
		if row%4096 == 4095 {
			seen = make(map[int64]bool, perRow*2)
		}
	}
	return i, j, v
}

// matrixSchema builds the COO relation schema: LevelHeaded stores a
// sparse matrix as keys (i, j) in one shared dimension domain with the
// value as an annotation (paper Fig. 3).
func matrixSchema(name, domain string) storage.Schema {
	return storage.Schema{Name: name, Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: domain},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: domain},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}}
}

// vectorSchema builds the vector relation schema over the same domain.
func vectorSchema(name, domain string) storage.Schema {
	return storage.Schema{Name: name, Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: domain},
		{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
	}}
}

// LoadSparse creates tables `matrix` and `vec` in the catalog holding
// the spec's triples and a dense random vector over [0, N). Every
// dimension value appears (diagonal), so the shared domain is [0, N).
func LoadSparse(cat *storage.Catalog, spec SparseSpec, seed int64) (nnz int, err error) {
	i32, j32, vals := Triples(spec, seed)
	m, err := cat.Create(matrixSchema("matrix", "dim"))
	if err != nil {
		return 0, err
	}
	iCol := make([]int64, len(i32))
	jCol := make([]int64, len(j32))
	for k := range i32 {
		iCol[k] = int64(i32[k])
		jCol[k] = int64(j32[k])
	}
	if err := m.SetColumnData(map[string]interface{}{"i": iCol, "j": jCol, "v": vals}); err != nil {
		return 0, err
	}
	if err := loadVector(cat, spec.N, seed+1); err != nil {
		return 0, err
	}
	return len(vals), nil
}

// LoadDense creates `matrix` and `vec` tables holding a full n×n dense
// matrix (row-major values) and a dense vector.
func LoadDense(cat *storage.Catalog, n int, seed int64) error {
	r := rand.New(rand.NewSource(seed))
	m, err := cat.Create(matrixSchema("matrix", "dim"))
	if err != nil {
		return err
	}
	iCol := make([]int64, n*n)
	jCol := make([]int64, n*n)
	vals := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			iCol[i*n+j] = int64(i)
			jCol[i*n+j] = int64(j)
			vals[i*n+j] = r.Float64()
		}
	}
	if err := m.SetColumnData(map[string]interface{}{"i": iCol, "j": jCol, "v": vals}); err != nil {
		return err
	}
	return loadVector(cat, n, seed+1)
}

func loadVector(cat *storage.Catalog, n int, seed int64) error {
	r := rand.New(rand.NewSource(seed))
	vec, err := cat.Create(vectorSchema("vec", "dim"))
	if err != nil {
		return err
	}
	kCol := make([]int64, n)
	xCol := make([]float64, n)
	for k := 0; k < n; k++ {
		kCol[k] = int64(k)
		xCol[k] = r.Float64()
	}
	return vec.SetColumnData(map[string]interface{}{"k": kCol, "x": xCol})
}

// DenseBuffer extracts the row-major dense buffer and vector from
// catalogs loaded by LoadDense (for direct BLAS baselines).
func DenseBuffer(cat *storage.Catalog, n int) (a, x []float64, err error) {
	m := cat.Table("matrix")
	v := cat.Table("vec")
	if m == nil || v == nil || m.NumRows != n*n || v.NumRows != n {
		return nil, nil, fmt.Errorf("lagen: catalog does not hold an order-%d dense system", n)
	}
	return m.Col("v").Floats, v.Col("x").Floats, nil
}

// SMVQuery and SMMQuery are the LA benchmark queries expressed in SQL —
// the paper's point: these kernels are plain aggregate-join queries.
const (
	SMVQuery = `SELECT m.i, sum(m.v * vec.x) as y FROM matrix m, vec WHERE m.j = vec.k GROUP BY m.i`
	SMMQuery = `SELECT m1.i, m2.j, sum(m1.v * m2.v) as v FROM matrix m1, matrix m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`
)
