package blas

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/qerr"
)

// CSR is a compressed-sparse-row matrix: the format accepted by sparse
// BLAS packages, and the format a column store must convert into before
// calling one (the cost measured by the paper's Table IV).
type CSR struct {
	Rows, Cols int
	RowPtr     []int32 // len Rows+1
	ColIdx     []int32 // len NNZ
	Vals       []float64
}

// NNZ reports the number of stored entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// COO is a coordinate-format triple list (a column store's natural
// representation of a sparse matrix).
type COO struct {
	Rows, Cols int
	I, J       []int32
	V          []float64
}

// NewCOO validates and wraps triple slices.
func NewCOO(rows, cols int, i, j []int32, v []float64) (*COO, error) {
	if len(i) != len(j) || len(j) != len(v) {
		return nil, fmt.Errorf("blas: ragged COO slices (%d, %d, %d)", len(i), len(j), len(v))
	}
	return &COO{Rows: rows, Cols: cols, I: i, J: j, V: v}, nil
}

// CompressCOO converts COO triples into CSR, the analogue of MKL's
// mkl_scsrcoo conversion that Table IV times. Duplicate coordinates are
// summed. The input is not assumed sorted.
func CompressCOO(c *COO) *CSR {
	nnz := len(c.I)
	counts := make([]int32, c.Rows+1)
	for _, r := range c.I {
		counts[r+1]++
	}
	for i := 0; i < c.Rows; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int32, nnz)
	vals := make([]float64, nnz)
	next := make([]int32, c.Rows)
	copy(next, counts[:c.Rows])
	for k := 0; k < nnz; k++ {
		r := c.I[k]
		p := next[r]
		colIdx[p] = c.J[k]
		vals[p] = c.V[k]
		next[r]++
	}
	// Sort within each row and merge duplicates.
	out := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int32, c.Rows+1)}
	outCols := colIdx[:0]
	outVals := vals[:0]
	w := int32(0)
	for r := 0; r < c.Rows; r++ {
		lo, hi := counts[r], counts[r+1]
		row := colIdx[lo:hi]
		rv := vals[lo:hi]
		sort.Sort(&colValSorter{row, rv})
		out.RowPtr[r] = w
		for x := 0; x < len(row); x++ {
			if w > out.RowPtr[r] && outCols[w-1] == row[x] {
				outVals[w-1] += rv[x]
				continue
			}
			outCols = append(outCols[:w], row[x])
			outVals = append(outVals[:w], rv[x])
			w++
		}
	}
	out.RowPtr[c.Rows] = w
	out.ColIdx = outCols[:w]
	out.Vals = outVals[:w]
	return out
}

type colValSorter struct {
	c []int32
	v []float64
}

func (s *colValSorter) Len() int           { return len(s.c) }
func (s *colValSorter) Less(i, j int) bool { return s.c[i] < s.c[j] }
func (s *colValSorter) Swap(i, j int) {
	s.c[i], s.c[j] = s.c[j], s.c[i]
	s.v[i], s.v[j] = s.v[j], s.v[i]
}

// SpMV computes y = A·x for CSR A. y must have length A.Rows.
func SpMV(a *CSR, x, y []float64) {
	threads := Threads()
	if threads <= 1 || a.Rows < 4096 {
		spmvRange(a, x, y, 0, a.Rows)
		return
	}
	var wg sync.WaitGroup
	var pc qerr.PanicCell
	chunk := (a.Rows + threads - 1) / threads
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := min(lo+chunk, a.Rows)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer pc.Recover()
			spmvRange(a, x, y, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	pc.Repanic()
}

func spmvRange(a *CSR, x, y []float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		s := 0.0
		for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
			s += a.Vals[p] * x[a.ColIdx[p]]
		}
		y[r] = s
	}
}

// SpGEMM computes C = A·B for CSR matrices with Gustavson's row-by-row
// algorithm (the loop order the paper's §V-A2 relaxed attribute order
// recovers), parallelized over row panels.
func SpGEMM(a, b *CSR) *CSR {
	threads := Threads()
	rowsOut := make([][]int32, a.Rows)
	valsOut := make([][]float64, a.Rows)
	var wg sync.WaitGroup
	var pc qerr.PanicCell
	chunk := (a.Rows + threads - 1) / threads
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := min(lo+chunk, a.Rows)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer pc.Recover()
			// Dense accumulator with an epoch-marked touched list.
			acc := make([]float64, b.Cols)
			mark := make([]int32, b.Cols)
			var touched []int32
			epoch := int32(0)
			for r := lo; r < hi; r++ {
				epoch++
				touched = touched[:0]
				for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
					k := a.ColIdx[p]
					av := a.Vals[p]
					for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
						j := b.ColIdx[q]
						if mark[j] != epoch {
							mark[j] = epoch
							acc[j] = 0
							touched = append(touched, j)
						}
						acc[j] += av * b.Vals[q]
					}
				}
				sort.Slice(touched, func(x, y int) bool { return touched[x] < touched[y] })
				cols := make([]int32, len(touched))
				vals := make([]float64, len(touched))
				for x, j := range touched {
					cols[x] = j
					vals[x] = acc[j]
				}
				rowsOut[r] = cols
				valsOut[r] = vals
			}
		}(lo, hi)
	}
	wg.Wait()
	pc.Repanic()
	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int32, a.Rows+1)}
	total := 0
	for r := 0; r < a.Rows; r++ {
		out.RowPtr[r] = int32(total)
		total += len(rowsOut[r])
	}
	out.RowPtr[a.Rows] = int32(total)
	out.ColIdx = make([]int32, total)
	out.Vals = make([]float64, total)
	for r := 0; r < a.Rows; r++ {
		copy(out.ColIdx[out.RowPtr[r]:], rowsOut[r])
		copy(out.Vals[out.RowPtr[r]:], valsOut[r])
	}
	return out
}
