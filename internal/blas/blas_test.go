package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func refGemm(m, k, n int, a, b []float64) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			for j := 0; j < n; j++ {
				c[i*n+j] += a[i*k+kk] * b[kk*n+j]
			}
		}
	}
	return c
}

func close2(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*math.Max(1, math.Abs(b[i])) {
			return false
		}
	}
	return true
}

func randMat(r *rand.Rand, n int) []float64 {
	m := make([]float64, n)
	for i := range m {
		m[i] = r.NormFloat64()
	}
	return m
}

func TestGemmMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	dims := [][3]int{{1, 1, 1}, {3, 5, 2}, {64, 64, 64}, {65, 63, 67}, {130, 40, 200}}
	for _, d := range dims {
		m, k, n := d[0], d[1], d[2]
		a, b := randMat(r, m*k), randMat(r, k*n)
		want := refGemm(m, k, n, a, b)
		c := make([]float64, m*n)
		Gemm(m, k, n, a, b, c)
		if !close2(c, want) {
			t.Fatalf("Gemm %v mismatch", d)
		}
		cs := make([]float64, m*n)
		GemmSerial(m, k, n, a, b, cs)
		if !close2(cs, want) {
			t.Fatalf("GemmSerial %v mismatch", d)
		}
	}
}

func TestGemvMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, d := range [][2]int{{1, 1}, {7, 13}, {100, 333}, {2000, 57}} {
		m, n := d[0], d[1]
		a, x := randMat(r, m*n), randMat(r, n)
		y := make([]float64, m)
		Gemv(m, n, a, x, y)
		want := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want[i] += a[i*n+j] * x[j]
			}
		}
		if !close2(y, want) {
			t.Fatalf("Gemv %v mismatch", d)
		}
	}
}

func randCOO(r *rand.Rand, rows, cols, nnz int) *COO {
	i := make([]int32, nnz)
	j := make([]int32, nnz)
	v := make([]float64, nnz)
	for k := range i {
		i[k] = int32(r.Intn(rows))
		j[k] = int32(r.Intn(cols))
		v[k] = r.NormFloat64()
	}
	c, _ := NewCOO(rows, cols, i, j, v)
	return c
}

func (m *CSR) dense() []float64 {
	d := make([]float64, m.Rows*m.Cols)
	for r := 0; r < m.Rows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			d[r*m.Cols+int(m.ColIdx[p])] += m.Vals[p]
		}
	}
	return d
}

func (c *COO) dense() []float64 {
	d := make([]float64, c.Rows*c.Cols)
	for k := range c.I {
		d[int(c.I[k])*c.Cols+int(c.J[k])] += c.V[k]
	}
	return d
}

func TestCompressCOO(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		coo := randCOO(r, 20, 30, 100)
		csr := CompressCOO(coo)
		if !close2(csr.dense(), coo.dense()) {
			t.Fatal("CompressCOO mismatch")
		}
		// Rows sorted, no duplicates.
		for row := 0; row < csr.Rows; row++ {
			for p := csr.RowPtr[row] + 1; p < csr.RowPtr[row+1]; p++ {
				if csr.ColIdx[p-1] >= csr.ColIdx[p] {
					t.Fatal("CSR row not strictly sorted")
				}
			}
		}
	}
}

func TestNewCOOValidation(t *testing.T) {
	if _, err := NewCOO(2, 2, []int32{0}, []int32{0, 1}, []float64{1}); err == nil {
		t.Error("ragged COO should error")
	}
}

func TestSpMV(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	coo := randCOO(r, 50, 40, 300)
	csr := CompressCOO(coo)
	x := randMat(r, 40)
	y := make([]float64, 50)
	SpMV(csr, x, y)
	dense := csr.dense()
	want := make([]float64, 50)
	for i := 0; i < 50; i++ {
		for j := 0; j < 40; j++ {
			want[i] += dense[i*40+j] * x[j]
		}
	}
	if !close2(y, want) {
		t.Fatal("SpMV mismatch")
	}
}

func TestSpGEMM(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := CompressCOO(randCOO(r, 30, 25, 200))
	b := CompressCOO(randCOO(r, 25, 35, 200))
	c := SpGEMM(a, b)
	want := refGemm(30, 25, 35, a.dense(), b.dense())
	if !close2(c.dense(), want) {
		t.Fatal("SpGEMM mismatch")
	}
}

func TestSpGEMMEmptyRows(t *testing.T) {
	// Matrix with empty rows and columns must survive multiplication.
	coo, _ := NewCOO(5, 5, []int32{0, 4}, []int32{4, 0}, []float64{2, 3})
	a := CompressCOO(coo)
	c := SpGEMM(a, a)
	want := refGemm(5, 5, 5, a.dense(), a.dense())
	if !close2(c.dense(), want) {
		t.Fatal("SpGEMM with empty rows mismatch")
	}
}

// Property: (A·B)·x == A·(B·x) for random sparse matrices.
func TestSpGEMMAssociativityWithVector(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(20)
		a := CompressCOO(randCOO(r, n, n, n*3))
		b := CompressCOO(randCOO(r, n, n, n*3))
		x := randMat(r, n)
		// (A·B)·x
		ab := SpGEMM(a, b)
		y1 := make([]float64, n)
		SpMV(ab, x, y1)
		// A·(B·x)
		bx := make([]float64, n)
		SpMV(b, x, bx)
		y2 := make([]float64, n)
		SpMV(a, bx, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-6*math.Max(1, math.Abs(y2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
