// Package blas is the reproduction's stand-in for Intel MKL (paper
// §III-D): pure-Go dense and sparse linear algebra kernels with the
// BLAS-style row-major calling conventions LevelHeaded targets.
//
// Substitution note (DESIGN.md §1.2): MKL is proprietary and relies on
// SIMD intrinsics unavailable to pure Go. These kernels use the same
// algorithmic structure (cache blocking, parallel row panels, Gustavson
// SpGEMM, CSR SpMV) so every engine in this repository runs on the same
// scalar backend and the paper's *relative* comparisons keep their
// shape.
package blas

import (
	"runtime"
	"sync"

	"repro/internal/qerr"
)

// blockSize is the micro-tile edge for the blocked GEMM kernel, sized so
// three float64 tiles fit comfortably in L1.
const blockSize = 64

// Threads returns the default worker count.
func Threads() int { return runtime.GOMAXPROCS(0) }

// Gemm computes C = A·B for row-major dense matrices: A is m×k, B is
// k×n, C is m×n. C must be zeroed by the caller or freshly allocated.
func Gemm(m, k, n int, a, b, c []float64) {
	gemmParallel(m, k, n, a, b, c, Threads())
}

// GemmSerial is the single-threaded kernel (used by tests and by callers
// that parallelize at a higher level).
func GemmSerial(m, k, n int, a, b, c []float64) {
	gemmBlocked(0, m, k, n, a, b, c)
}

func gemmParallel(m, k, n int, a, b, c []float64, threads int) {
	if threads <= 1 || m < 2*blockSize {
		gemmBlocked(0, m, k, n, a, b, c)
		return
	}
	var wg sync.WaitGroup
	var pc qerr.PanicCell
	chunk := (m + threads - 1) / threads
	// Round row panels to the blocking factor to keep tiles aligned.
	if chunk%blockSize != 0 {
		chunk += blockSize - chunk%blockSize
	}
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer pc.Recover()
			gemmBlocked(lo, hi, k, n, a, b, c)
		}(lo, hi)
	}
	wg.Wait()
	pc.Repanic()
}

// gemmBlocked computes the row panel C[lo:hi] with i-k-j loop order and
// cache blocking; the innermost loop is a saxpy over contiguous B and C
// rows, which the Go compiler keeps in registers reasonably well.
func gemmBlocked(lo, hi, k, n int, a, b, c []float64) {
	for ii := lo; ii < hi; ii += blockSize {
		iMax := min(ii+blockSize, hi)
		for kk := 0; kk < k; kk += blockSize {
			kMax := min(kk+blockSize, k)
			for jj := 0; jj < n; jj += blockSize {
				jMax := min(jj+blockSize, n)
				for i := ii; i < iMax; i++ {
					arow := a[i*k : i*k+k]
					crow := c[i*n : i*n+n]
					for kx := kk; kx < kMax; kx++ {
						av := arow[kx]
						if av == 0 {
							continue
						}
						brow := b[kx*n : kx*n+n]
						for j := jj; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// Gemv computes y = A·x for row-major A (m×n) and dense x (n). y must
// have length m.
func Gemv(m, n int, a, x, y []float64) {
	threads := Threads()
	if threads <= 1 || m < 1024 {
		gemvRange(0, m, n, a, x, y)
		return
	}
	var wg sync.WaitGroup
	var pc qerr.PanicCell
	chunk := (m + threads - 1) / threads
	for lo := 0; lo < m; lo += chunk {
		hi := min(lo+chunk, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer pc.Recover()
			gemvRange(lo, hi, n, a, x, y)
		}(lo, hi)
	}
	wg.Wait()
	pc.Repanic()
}

func gemvRange(lo, hi, n int, a, x, y []float64) {
	for i := lo; i < hi; i++ {
		row := a[i*n : i*n+n]
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= n; j += 4 {
			s0 += row[j] * x[j]
			s1 += row[j+1] * x[j+1]
			s2 += row[j+2] * x[j+2]
			s3 += row[j+3] * x[j+3]
		}
		s := s0 + s1 + s2 + s3
		for ; j < n; j++ {
			s += row[j] * x[j]
		}
		y[i] = s
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// GemmNT computes C = A·Bᵀ for row-major A (m×k) and row-major B (n×k):
// C[i][j] = Σ_x A[i][x]·B[j][x]. This is the natural kernel when both
// output attributes precede the shared attribute in a trie order, so the
// second matrix arrives transposed.
func GemmNT(m, k, n int, a, bt, c []float64) {
	threads := Threads()
	if threads <= 1 || m < 64 {
		gemmNTRange(0, m, k, n, a, bt, c)
		return
	}
	var wg sync.WaitGroup
	var pc qerr.PanicCell
	chunk := (m + threads - 1) / threads
	for lo := 0; lo < m; lo += chunk {
		hi := min(lo+chunk, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer pc.Recover()
			gemmNTRange(lo, hi, k, n, a, bt, c)
		}(lo, hi)
	}
	wg.Wait()
	pc.Repanic()
}

func gemmNTRange(lo, hi, k, n int, a, bt, c []float64) {
	for ii := lo; ii < hi; ii += blockSize {
		iMax := min(ii+blockSize, hi)
		for jj := 0; jj < n; jj += blockSize {
			jMax := min(jj+blockSize, n)
			for i := ii; i < iMax; i++ {
				arow := a[i*k : i*k+k]
				for j := jj; j < jMax; j++ {
					brow := bt[j*k : j*k+k]
					var s0, s1 float64
					x := 0
					for ; x+2 <= k; x += 2 {
						s0 += arow[x] * brow[x]
						s1 += arow[x+1] * brow[x+1]
					}
					s := s0 + s1
					for ; x < k; x++ {
						s += arow[x] * brow[x]
					}
					c[i*n+j] = s
				}
			}
		}
	}
}
