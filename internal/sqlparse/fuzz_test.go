package sqlparse

import (
	"testing"
)

// FuzzParse feeds arbitrary bytes through the SQL front-end. The
// contract under fuzz is total: Parse must return (*Query, nil) or
// (nil, error) for any input — never panic, hang, or return a nil
// query without an error. Malformed SQL surfaces to engine callers as
// a qerr.ParseError wrapping the error returned here.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Well-formed queries spanning the supported subset.
		`SELECT count(*) FROM t`,
		`SELECT a, b FROM t WHERE a = b`,
		`SELECT t1.a AS x, sum(t2.v * t1.v) AS s FROM t AS t1, t AS t2 WHERE t1.b = t2.a GROUP BY t1.a`,
		`SELECT l_orderkey, min(l_quantity) FROM lineitem GROUP BY l_orderkey;`,
		`SELECT a FROM t WHERE d >= DATE '1994-01-01' AND d < DATE '1995-01-01'`,
		`SELECT a FROM t WHERE s = 'BUILDING' AND n <> 12 AND f < 0.07`,
		// Malformed / boundary inputs.
		``,
		`;`,
		`SELECT`,
		`SELECT FROM`,
		`SELECT * FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t GROUP`,
		`SELECT a FROM t WHERE a = `,
		`SELECT a FROM t WHERE a = 'unterminated`,
		`SELECT a FROM t WHERE d = DATE '19x4-01-01'`,
		`SELECT a FROM t trailing garbage )(`,
		`SELECT ((((a FROM t`,
		`SELECT a,, FROM t`,
		`select a from t where a = 9999999999999999999999999`,
		"SELECT a FROM t \x00\xff\xfe",
		`SELECT sum( FROM t`,
		`SELECT a AS FROM t`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil && q == nil {
			t.Fatalf("Parse(%q) returned nil query without an error", src)
		}
	})
}
