// Package sqlparse implements the SQL-2008 subset accepted by
// LevelHeaded (paper §III-A): SELECT lists with aggregate functions and
// arithmetic, FROM with aliases and self-joins, WHERE conjunctions of
// equi-joins and filter predicates (comparisons, BETWEEN, IN, LIKE, date
// arithmetic, CASE), and GROUP BY. ORDER BY is intentionally absent —
// the paper runs TPC-H without it.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // identifiers lower-cased; strings unquoted
	pos  int
}

// lexer splits input into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front (queries are short).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '-' && l.peekAt(1) == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(l.src[start:l.pos]), pos: start})
		case unicode.IsDigit(rune(c)) || (c == '.' && unicode.IsDigit(rune(l.peekAt(1)))):
			seenDot := false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch == '.' && !seenDot {
					seenDot = true
					l.pos++
					continue
				}
				if !unicode.IsDigit(rune(ch)) {
					break
				}
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("sql: unterminated string at %d", start)
				}
				if l.src[l.pos] == '\'' {
					if l.peekAt(1) == '\'' { // escaped quote
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
		default:
			// Multi-char operators first.
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				l.pos += 2
				l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start})
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '.', ';':
				l.pos++
				l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
			}
		}
	}
}

func (l *lexer) peekAt(d int) byte {
	if l.pos+d < len(l.src) {
		return l.src[l.pos+d]
	}
	return 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}
