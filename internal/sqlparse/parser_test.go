package sqlparse

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestSimpleSelect(t *testing.T) {
	q := mustParse(t, "SELECT a, b FROM r WHERE a = 1")
	if len(q.Select) != 2 || len(q.From) != 1 {
		t.Fatalf("select=%d from=%d", len(q.Select), len(q.From))
	}
	if q.From[0].Table != "r" || q.From[0].Alias != "r" {
		t.Fatalf("from = %+v", q.From[0])
	}
	be, ok := q.Where.(BinaryExpr)
	if !ok || be.Op != "=" {
		t.Fatalf("where = %v", q.Where)
	}
}

func TestAliases(t *testing.T) {
	q := mustParse(t, "SELECT m1.i AS row_id, m2.j col_id FROM matrix AS m1, matrix m2 WHERE m1.k = m2.k")
	if q.Select[0].Alias != "row_id" || q.Select[1].Alias != "col_id" {
		t.Fatalf("aliases = %q, %q", q.Select[0].Alias, q.Select[1].Alias)
	}
	if q.From[0].Alias != "m1" || q.From[1].Alias != "m2" || q.From[1].Table != "matrix" {
		t.Fatalf("from = %+v", q.From)
	}
	cr := q.Select[0].Expr.(ColRef)
	if cr.Qualifier != "m1" || cr.Name != "i" {
		t.Fatalf("colref = %+v", cr)
	}
}

func TestDateAndIntervalFolding(t *testing.T) {
	q := mustParse(t, "SELECT a FROM r WHERE d <= date '1998-12-01' - interval '90' day")
	be := q.Where.(BinaryExpr)
	dl, ok := be.R.(DateLit)
	if !ok {
		t.Fatalf("interval arithmetic not folded: %v", be.R)
	}
	if got := DaysToDate(dl.Days); got != "1998-09-02" {
		t.Fatalf("folded date = %s, want 1998-09-02", got)
	}
	q2 := mustParse(t, "SELECT a FROM r WHERE d < date '1994-01-01' + interval '1' year")
	dl2 := q2.Where.(BinaryExpr).R.(DateLit)
	if got := DaysToDate(dl2.Days); got != "1995-01-01" {
		t.Fatalf("+1 year = %s, want 1995-01-01", got)
	}
}

func TestAggregatesAndArithmetic(t *testing.T) {
	q := mustParse(t, `SELECT sum(l_extendedprice * (1 - l_discount)) as revenue, count(*), avg(l_quantity) FROM lineitem`)
	fc := q.Select[0].Expr.(FuncCall)
	if fc.Name != "sum" || len(fc.Args) != 1 {
		t.Fatalf("sum call = %+v", fc)
	}
	mul := fc.Args[0].(BinaryExpr)
	if mul.Op != "*" {
		t.Fatalf("arg = %v", mul)
	}
	cnt := q.Select[1].Expr.(FuncCall)
	if cnt.Name != "count" || !cnt.Star {
		t.Fatalf("count(*) = %+v", cnt)
	}
}

func TestCountDistinct(t *testing.T) {
	q := mustParse(t, "SELECT count(distinct c_custkey) FROM customer")
	fc := q.Select[0].Expr.(FuncCall)
	if fc.Name != "count" || !fc.Distinct || len(fc.Args) != 1 {
		t.Fatalf("count(distinct) = %+v", fc)
	}
	if got := fc.String(); got != "count(distinct c_custkey)" {
		t.Fatalf("String() = %q", got)
	}
	// Round trip: the rendered form must re-parse to the same AST text.
	q2 := mustParse(t, "SELECT "+fc.String()+" FROM customer")
	if q2.Select[0].Expr.String() != fc.String() {
		t.Fatalf("round trip: %q vs %q", q2.Select[0].Expr.String(), fc.String())
	}
	// Plain count must stay non-distinct.
	q3 := mustParse(t, "SELECT count(c_custkey) FROM customer")
	if q3.Select[0].Expr.(FuncCall).Distinct {
		t.Fatal("count(col) parsed as distinct")
	}
	// distinct with no argument is an error.
	if _, err := Parse("SELECT count(distinct) FROM customer"); err == nil {
		t.Fatal("count(distinct) with no arg should not parse")
	}
	// distinct survives inside GROUP BY queries with other aggregates.
	q4 := mustParse(t, "SELECT g, count(distinct v), sum(v) FROM r GROUP BY g")
	if !q4.Select[1].Expr.(FuncCall).Distinct || q4.Select[2].Expr.(FuncCall).Distinct {
		t.Fatalf("distinct flags: %+v", q4.Select)
	}
}

func TestPrecedence(t *testing.T) {
	q := mustParse(t, "SELECT a + b * c FROM r")
	add := q.Select[0].Expr.(BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top op = %s", add.Op)
	}
	if add.R.(BinaryExpr).Op != "*" {
		t.Fatal("* should bind tighter than +")
	}
	q2 := mustParse(t, "SELECT a FROM r WHERE x = 1 OR y = 2 AND z = 3")
	or := q2.Where.(BinaryExpr)
	if or.Op != "or" {
		t.Fatalf("top logical op = %s, want or", or.Op)
	}
	if or.R.(BinaryExpr).Op != "and" {
		t.Fatal("AND should bind tighter than OR")
	}
}

func TestBetweenInLike(t *testing.T) {
	q := mustParse(t, `SELECT a FROM r WHERE q BETWEEN 5 AND 10 AND n IN (1, 2, 3) AND s LIKE '%green%' AND m NOT LIKE 'x%' AND p NOT IN (7) AND w NOT BETWEEN 1 AND 2`)
	// Walk the AND chain and count node kinds.
	var betweens, ins, likes, negs int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case BinaryExpr:
			walk(v.L)
			walk(v.R)
		case BetweenExpr:
			betweens++
			if v.Negate {
				negs++
			}
		case InExpr:
			ins++
			if v.Negate {
				negs++
			}
		case LikeExpr:
			likes++
			if v.Negate {
				negs++
			}
		}
	}
	walk(q.Where)
	if betweens != 2 || ins != 2 || likes != 2 || negs != 3 {
		t.Fatalf("betweens=%d ins=%d likes=%d negs=%d", betweens, ins, likes, negs)
	}
}

func TestCaseWhen(t *testing.T) {
	q := mustParse(t, `SELECT sum(CASE WHEN n_name = 'BRAZIL' THEN volume ELSE 0 END) / sum(volume) FROM x GROUP BY o_year`)
	div := q.Select[0].Expr.(BinaryExpr)
	if div.Op != "/" {
		t.Fatalf("top op = %s", div.Op)
	}
	ce := div.L.(FuncCall).Args[0].(CaseExpr)
	if len(ce.Whens) != 1 || ce.Else == nil {
		t.Fatalf("case = %+v", ce)
	}
	if len(q.GroupBy) != 1 {
		t.Fatalf("group by = %v", q.GroupBy)
	}
}

func TestExtract(t *testing.T) {
	q := mustParse(t, "SELECT extract(year from o_orderdate) as o_year FROM orders")
	ex := q.Select[0].Expr.(ExtractExpr)
	if ex.Unit != "year" {
		t.Fatalf("extract = %+v", ex)
	}
	if q.Select[0].Alias != "o_year" {
		t.Fatalf("alias = %q", q.Select[0].Alias)
	}
}

// The seven paper queries (slightly abbreviated schemas) must all parse.
func TestPaperQueriesParse(t *testing.T) {
	queries := map[string]string{
		"q1": `SELECT l_returnflag, l_linestatus, sum(l_quantity) as sum_qty,
			sum(l_extendedprice) as sum_base_price,
			sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
			sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
			avg(l_quantity) as avg_qty, avg(l_extendedprice) as avg_price,
			avg(l_discount) as avg_disc, count(*) as count_order
			FROM lineitem
			WHERE l_shipdate <= date '1998-12-01' - interval '90' day
			GROUP BY l_returnflag, l_linestatus`,
		"q3": `SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
			o_orderdate, o_shippriority
			FROM customer, orders, lineitem
			WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
			AND l_orderkey = o_orderkey AND o_orderdate < date '1995-03-15'
			AND l_shipdate > date '1995-03-15'
			GROUP BY l_orderkey, o_orderdate, o_shippriority`,
		"q5": `SELECT n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
			FROM customer, orders, lineitem, supplier, nation, region
			WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
			AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
			AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
			AND r_name = 'ASIA' AND o_orderdate >= date '1994-01-01'
			AND o_orderdate < date '1994-01-01' + interval '1' year
			GROUP BY n_name`,
		"q6": `SELECT sum(l_extendedprice * l_discount) as revenue
			FROM lineitem
			WHERE l_shipdate >= date '1994-01-01'
			AND l_shipdate < date '1994-01-01' + interval '1' year
			AND l_discount between 0.06 - 0.01 and 0.06 + 0.01
			AND l_quantity < 24`,
		"q8": `SELECT o_year, sum(case when nation = 'BRAZIL' then volume else 0 end) / sum(volume) as mkt_share
			FROM allnations GROUP BY o_year`,
		"q9": `SELECT nation, o_year, sum(amount) as sum_profit
			FROM profit GROUP BY nation, o_year`,
		"q10": `SELECT c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue,
			c_acctbal, n_name, c_address, c_phone, c_comment
			FROM customer, orders, lineitem, nation
			WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
			AND o_orderdate >= date '1993-10-01'
			AND o_orderdate < date '1993-10-01' + interval '3' month
			AND l_returnflag = 'R' AND c_nationkey = n_nationkey
			GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment`,
	}
	for name, src := range queries {
		if _, err := Parse(src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMatMulQuery(t *testing.T) {
	q := mustParse(t, `SELECT m1.i, m2.j, sum(m1.v * m2.v)
		FROM matrix as m1, matrix as m2
		WHERE m1.j = m2.i GROUP BY m1.i, m2.j`)
	if len(q.From) != 2 || q.From[0].Alias == q.From[1].Alias {
		t.Fatalf("self join from = %+v", q.From)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM r WHERE",
		"SELECT a FROM r GROUP",
		"SELECT a FROM r ORDER BY a",
		"SELECT a FROM r WHERE s LIKE 5",
		"SELECT a FROM r WHERE d = date 123",
		"SELECT a FROM r; SELECT b FROM s",
		"SELECT case end FROM r",
		"SELECT a FROM r WHERE x IN ()",
		"SELECT a FROM r WHERE 'unterminated",
		"SELECT a FROM r WHERE a ~ b",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestTrailingSemicolonOK(t *testing.T) {
	mustParse(t, "SELECT a FROM r;")
}

func TestCommentsSkipped(t *testing.T) {
	q := mustParse(t, "SELECT a -- the column\nFROM r")
	if len(q.Select) != 1 {
		t.Fatal("comment broke parse")
	}
}

func TestStringEscapes(t *testing.T) {
	q := mustParse(t, "SELECT a FROM r WHERE s = 'it''s'")
	sl := q.Where.(BinaryExpr).R.(StringLit)
	if sl.Val != "it's" {
		t.Fatalf("escaped string = %q", sl.Val)
	}
}

func TestExprStringRoundtrip(t *testing.T) {
	srcs := []string{
		"SELECT sum(a * (1 - b)) FROM r WHERE c BETWEEN 1 AND 2 AND s LIKE 'x%' AND d IN (1, 2)",
		"SELECT case when a = 1 then 2 else 3 end FROM r",
		"SELECT extract(year from d) FROM r WHERE d >= date '1994-01-01'",
	}
	for _, src := range srcs {
		q := mustParse(t, src)
		for _, it := range q.Select {
			if it.Expr.String() == "" {
				t.Errorf("empty String() for %v", it.Expr)
			}
		}
		if q.Where != nil && !strings.Contains(q.Where.String(), "(") {
			t.Errorf("where String() = %q", q.Where.String())
		}
	}
}

func TestDateHelpers(t *testing.T) {
	d, err := ParseDate("1994-06-15")
	if err != nil {
		t.Fatal(err)
	}
	if DaysToDate(d) != "1994-06-15" {
		t.Fatalf("roundtrip = %s", DaysToDate(d))
	}
	if DateYear(d) != 1994 || DateMonth(d) != 6 || DateDay(d) != 15 {
		t.Fatalf("extract = %d-%d-%d", DateYear(d), DateMonth(d), DateDay(d))
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("bad date should error")
	}
	// Month-end clamping behavior is time.AddDate's (overflow rolls over).
	jan31, _ := ParseDate("1993-01-31")
	if got := DaysToDate(AddInterval(jan31, 1, "month")); got != "1993-03-03" {
		t.Logf("note: AddDate rolls 1993-01-31 +1 month to %s", got)
	}
}

func TestHavingParses(t *testing.T) {
	q := mustParse(t, `SELECT a, sum(x) as s FROM r GROUP BY a HAVING sum(x) > 10 AND count(*) < 5`)
	if q.Having == nil {
		t.Fatal("missing HAVING")
	}
	be := q.Having.(BinaryExpr)
	if be.Op != "and" {
		t.Fatalf("having op = %s", be.Op)
	}
	if _, err := Parse("SELECT a FROM r GROUP BY a HAVING"); err == nil {
		t.Error("dangling HAVING should error")
	}
}

func TestNotLookaheadEdgeCases(t *testing.T) {
	// A dangling NOT at end of input must error, not silently vanish.
	if _, err := Parse(`SELECT a FROM r WHERE x NOT`); err == nil {
		t.Fatal("dangling NOT parsed without error")
	}
	// NOT followed by a string literal 'in' is not NOT IN: the
	// lookahead must restore and report the stray tokens. Before the
	// fix the token-kind check was missing, so 'in' set negate, the
	// keyword switch matched nothing, and the NOT was swallowed.
	if _, err := Parse(`SELECT a FROM r WHERE x NOT 'in'`); err == nil {
		t.Fatal("x NOT 'in' parsed without error")
	}
	// Prefix NOT wrapping a NOT IN keeps both negations.
	q := mustParse(t, `SELECT a FROM r WHERE NOT x NOT IN (1, 2)`)
	un, ok := q.Where.(UnaryExpr)
	if !ok || un.Op != "not" {
		t.Fatalf("outer = %T %+v, want UnaryExpr not", q.Where, q.Where)
	}
	in, ok := un.X.(InExpr)
	if !ok || !in.Negate || len(in.Vals) != 2 {
		t.Fatalf("inner = %T %+v, want negated InExpr with 2 vals", un.X, un.X)
	}
	// NOT binding inside an AND chain: a = b AND NOT (c LIKE 'x%').
	q = mustParse(t, `SELECT a FROM r WHERE a = b AND NOT c LIKE 'x%'`)
	and, ok := q.Where.(BinaryExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("top = %T %+v, want and", q.Where, q.Where)
	}
	un, ok = and.R.(UnaryExpr)
	if !ok || un.Op != "not" {
		t.Fatalf("rhs = %T %+v, want UnaryExpr not", and.R, and.R)
	}
	like, ok := un.X.(LikeExpr)
	if !ok || like.Negate || like.Pattern != "x%" {
		t.Fatalf("rhs inner = %T %+v, want non-negated LikeExpr", un.X, un.X)
	}
}
