package sqlparse

import (
	"fmt"
	"strconv"
)

// Parse parses a single SELECT statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: unexpected trailing input %q at %d", p.peek().text, p.peek().pos)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) backup()     { p.i-- }

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokIdent && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

// acceptSymbol consumes the symbol if present.
func (p *parser) acceptSymbol(s string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %q, got %q at %d", kw, p.peek().text, p.peek().pos)
	}
	return nil
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("sql: expected %q, got %q at %d", s, p.peek().text, p.peek().pos)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, ref)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Having = h
	}
	if p.acceptKeyword("order") {
		return nil, fmt.Errorf("sql: ORDER BY is not supported (the paper's benchmarks omit it)")
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		t := p.next()
		if t.kind != tokIdent {
			return SelectItem{}, fmt.Errorf("sql: expected alias after AS at %d", t.pos)
		}
		item.Alias = t.text
	} else if p.peek().kind == tokIdent && !isReserved(p.peek().text) {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return TableRef{}, fmt.Errorf("sql: expected table name at %d", t.pos)
	}
	ref := TableRef{Table: t.text, Alias: t.text}
	if p.acceptKeyword("as") {
		a := p.next()
		if a.kind != tokIdent {
			return TableRef{}, fmt.Errorf("sql: expected alias after AS at %d", a.pos)
		}
		ref.Alias = a.text
	} else if p.peek().kind == tokIdent && !isReserved(p.peek().text) {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// isReserved lists keywords that terminate implicit aliases.
func isReserved(s string) bool {
	switch s {
	case "select", "from", "where", "group", "by", "and", "or", "not",
		"as", "on", "order", "having", "limit", "between", "in", "like",
		"case", "when", "then", "else", "end", "is", "null", "asc", "desc":
		return true
	}
	return false
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := [NOT] cmpExpr
//	cmpExpr := addExpr [(=|<>|<|<=|>|>=) addExpr
//	         | [NOT] BETWEEN addExpr AND addExpr
//	         | [NOT] IN (expr, ...)
//	         | [NOT] LIKE 'pattern']
//	addExpr := mulExpr ((+|-) mulExpr)*
//	mulExpr := unary ((*|/) unary)*
//	unary   := [-] primary
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "not", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	negate := false
	if p.peek().kind == tokIdent && p.peek().text == "not" {
		// Lookahead for NOT BETWEEN / NOT IN / NOT LIKE. Only an ident
		// token continues the form — a string literal like 'in' after
		// NOT, or NOT at end of input, must restore and let the caller
		// report the dangling token instead of silently dropping NOT.
		save := p.i
		p.next()
		if nxt := p.peek(); nxt.kind == tokIdent {
			switch nxt.text {
			case "between", "in", "like":
				negate = true
			}
		}
		if !negate {
			p.i = save
			return l, nil
		}
	}
	switch {
	case p.peek().kind == tokSymbol && isCmpOp(p.peek().text):
		op := p.next().text
		if op == "!=" {
			op = "<>"
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return BinaryExpr{Op: op, L: l, R: r}, nil
	case p.acceptKeyword("between"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return BetweenExpr{X: l, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.acceptKeyword("in"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var vals []Expr
		for {
			v, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return InExpr{X: l, Vals: vals, Negate: negate}, nil
	case p.acceptKeyword("like"):
		t := p.next()
		if t.kind != tokString {
			return nil, fmt.Errorf("sql: LIKE requires a string pattern at %d", t.pos)
		}
		return LikeExpr{X: l, Pattern: t.text, Negate: negate}, nil
	}
	return l, nil
}

func isCmpOp(s string) bool {
	switch s {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokSymbol && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.next().text
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = foldDateArith(BinaryExpr{Op: op, L: l, R: r})
	}
	return l, nil
}

// foldDateArith folds date ± interval into a DateLit at parse time.
func foldDateArith(e BinaryExpr) Expr {
	d, okd := e.L.(DateLit)
	iv, oki := e.R.(IntervalLit)
	if !okd || !oki {
		return e
	}
	n := iv.N
	if e.Op == "-" {
		n = -n
	}
	return DateLit{Days: AddInterval(d.Days, n, iv.Unit)}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokSymbol && (p.peek().text == "*" || p.peek().text == "/") {
		op := p.next().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if n, ok := x.(NumberLit); ok {
			n.Val = -n.Val
			return n, nil
		}
		return UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q at %d", t.text, t.pos)
		}
		_, ierr := strconv.ParseInt(t.text, 10, 64)
		return NumberLit{Val: v, IsInt: ierr == nil}, nil
	case tokString:
		return StringLit{Val: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, fmt.Errorf("sql: unexpected %q at %d", t.text, t.pos)
	case tokIdent:
		switch t.text {
		case "date":
			s := p.next()
			if s.kind != tokString {
				return nil, fmt.Errorf("sql: DATE requires a string literal at %d", s.pos)
			}
			days, err := ParseDate(s.text)
			if err != nil {
				return nil, err
			}
			return DateLit{Days: days}, nil
		case "interval":
			s := p.next()
			if s.kind != tokString {
				return nil, fmt.Errorf("sql: INTERVAL requires a quoted count at %d", s.pos)
			}
			n, err := strconv.Atoi(s.text)
			if err != nil {
				return nil, fmt.Errorf("sql: bad interval count %q at %d", s.text, s.pos)
			}
			u := p.next()
			if u.kind != tokIdent {
				return nil, fmt.Errorf("sql: expected interval unit at %d", u.pos)
			}
			unit := u.text
			if len(unit) > 1 && unit[len(unit)-1] == 's' {
				unit = unit[:len(unit)-1]
			}
			switch unit {
			case "day", "month", "year":
			default:
				return nil, fmt.Errorf("sql: unsupported interval unit %q", u.text)
			}
			return IntervalLit{N: n, Unit: unit}, nil
		case "case":
			return p.parseCase()
		case "extract":
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			u := p.next()
			if u.kind != tokIdent {
				return nil, fmt.Errorf("sql: expected unit in EXTRACT at %d", u.pos)
			}
			if err := p.expectKeyword("from"); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			switch u.text {
			case "year", "month", "day":
			default:
				return nil, fmt.Errorf("sql: unsupported EXTRACT unit %q", u.text)
			}
			return ExtractExpr{Unit: u.text, X: x}, nil
		}
		// Function call?
		if p.peek().kind == tokSymbol && p.peek().text == "(" {
			p.next()
			fc := FuncCall{Name: t.text}
			if p.acceptSymbol("*") {
				fc.Star = true
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.acceptKeyword("distinct") {
				fc.Distinct = true
			}
			if p.acceptSymbol(")") {
				if fc.Distinct {
					return nil, fmt.Errorf("sql: %s(distinct) needs an argument", fc.Name)
				}
				return fc, nil
			}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, a)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified or bare column reference.
		if p.peek().kind == tokSymbol && p.peek().text == "." {
			p.next()
			c := p.next()
			if c.kind != tokIdent {
				return nil, fmt.Errorf("sql: expected column after %q. at %d", t.text, c.pos)
			}
			return ColRef{Qualifier: t.text, Name: c.text}, nil
		}
		return ColRef{Name: t.text}, nil
	}
	return nil, fmt.Errorf("sql: unexpected end of input")
}

func (p *parser) parseCase() (Expr, error) {
	var ce CaseExpr
	for {
		if p.acceptKeyword("when") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("then"); err != nil {
				return nil, err
			}
			then, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Then: then})
			continue
		}
		if p.acceptKeyword("else") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ce.Else = e
		}
		if err := p.expectKeyword("end"); err != nil {
			return nil, err
		}
		break
	}
	if len(ce.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE requires at least one WHEN")
	}
	return ce, nil
}
