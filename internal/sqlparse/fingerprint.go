// Query fingerprinting: a canonical, literal-free rendering of a parsed
// statement plus a stable 64-bit hash of it. Two statements share a
// fingerprint exactly when they are the same query *shape* — same
// tables, joins, projections, grouping and predicate structure — no
// matter how their literals, IN-list lengths, whitespace or keyword
// case differ. The per-fingerprint statement store (internal/telemetry)
// keys on this, the slow-query log carries it, and /debug/statements
// groups workload history by it (the pg_stat_statements model).
//
// Normalization rules:
//
//   - number/string/date/interval literals render as "?" (a unary minus
//     over a literal folds into the placeholder, so x > -5 and x > 5
//     share a shape);
//   - IN-lists collapse: every literal member folds into one "?", so
//     IN (1,2,3) and IN (7) are the same shape (non-literal members,
//     e.g. column references, are kept and keep their order);
//   - LIKE patterns render as "?";
//   - identifiers are already lowercased by the lexer, and rendering
//     from the AST canonicalizes whitespace and keyword case.
//
// Structural properties stay visible: BETWEEN vs two comparisons, NOT
// variants, EXTRACT units, aggregate function names, aliases (they name
// result columns) and qualifier-ed column references all distinguish
// fingerprints.
package sqlparse

import (
	"hash/fnv"
	"strings"
)

// Fingerprint renders the canonical text of a parsed statement and
// returns it with its stable 64-bit FNV-1a fingerprint ID.
func Fingerprint(q *Query) (text string, id uint64) {
	var b strings.Builder
	b.Grow(128)
	normQuery(&b, q)
	text = b.String()
	h := fnv.New64a()
	h.Write([]byte(text))
	return text, h.Sum64()
}

// FingerprintSQL parses sql and fingerprints it (convenience for tools
// and tests; the engine fingerprints the AST it already has).
func FingerprintSQL(sql string) (text string, id uint64, err error) {
	q, err := Parse(sql)
	if err != nil {
		return "", 0, err
	}
	text, id = Fingerprint(q)
	return text, id, nil
}

func normQuery(b *strings.Builder, q *Query) {
	b.WriteString("select ")
	for i := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		normExpr(b, q.Select[i].Expr)
		if a := q.Select[i].Alias; a != "" {
			b.WriteString(" as ")
			b.WriteString(a)
		}
	}
	b.WriteString(" from ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Table)
		if t.Alias != "" && t.Alias != t.Table {
			b.WriteString(" as ")
			b.WriteString(t.Alias)
		}
	}
	if q.Where != nil {
		b.WriteString(" where ")
		normExpr(b, q.Where)
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" group by ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			normExpr(b, g)
		}
	}
	if q.Having != nil {
		b.WriteString(" having ")
		normExpr(b, q.Having)
	}
}

// isLiteral reports whether e normalizes to a bare placeholder.
func isLiteral(e Expr) bool {
	switch x := e.(type) {
	case NumberLit, StringLit, DateLit, IntervalLit:
		return true
	case UnaryExpr:
		return x.Op == "-" && isLiteral(x.X)
	}
	return false
}

func normExpr(b *strings.Builder, e Expr) {
	if isLiteral(e) {
		b.WriteByte('?')
		return
	}
	switch x := e.(type) {
	case ColRef:
		if x.Qualifier != "" {
			b.WriteString(x.Qualifier)
			b.WriteByte('.')
		}
		b.WriteString(x.Name)
	case BinaryExpr:
		b.WriteByte('(')
		normExpr(b, x.L)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		normExpr(b, x.R)
		b.WriteByte(')')
	case UnaryExpr:
		b.WriteByte('(')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		normExpr(b, x.X)
		b.WriteByte(')')
	case FuncCall:
		b.WriteString(x.Name)
		if x.Star {
			b.WriteString("(*)")
			return
		}
		b.WriteByte('(')
		if x.Distinct {
			// count(distinct x) and count(x) must fingerprint apart: they
			// are different statements to the planner and the approx tier.
			b.WriteString("distinct ")
		}
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			normExpr(b, a)
		}
		b.WriteByte(')')
	case CaseExpr:
		b.WriteString("case")
		for _, w := range x.Whens {
			b.WriteString(" when ")
			normExpr(b, w.Cond)
			b.WriteString(" then ")
			normExpr(b, w.Then)
		}
		if x.Else != nil {
			b.WriteString(" else ")
			normExpr(b, x.Else)
		}
		b.WriteString(" end")
	case BetweenExpr:
		b.WriteByte('(')
		normExpr(b, x.X)
		if x.Negate {
			b.WriteString(" not")
		}
		b.WriteString(" between ")
		normExpr(b, x.Lo)
		b.WriteString(" and ")
		normExpr(b, x.Hi)
		b.WriteByte(')')
	case InExpr:
		b.WriteByte('(')
		normExpr(b, x.X)
		if x.Negate {
			b.WriteString(" not")
		}
		b.WriteString(" in (")
		// Collapse: all literal members fold into one leading "?";
		// non-literal members survive in order.
		wrote := false
		for _, v := range x.Vals {
			if isLiteral(v) {
				b.WriteByte('?')
				wrote = true
				break
			}
		}
		for _, v := range x.Vals {
			if isLiteral(v) {
				continue
			}
			if wrote {
				b.WriteString(", ")
			}
			normExpr(b, v)
			wrote = true
		}
		b.WriteString("))")
	case LikeExpr:
		b.WriteByte('(')
		normExpr(b, x.X)
		if x.Negate {
			b.WriteString(" not")
		}
		b.WriteString(" like ?)")
	case ExtractExpr:
		b.WriteString("extract(")
		b.WriteString(x.Unit)
		b.WriteString(" from ")
		normExpr(b, x.X)
		b.WriteByte(')')
	default:
		// Unknown node (future AST growth): fall back to its String form
		// so fingerprinting degrades to exact-text rather than colliding.
		b.WriteString(e.String())
	}
}
