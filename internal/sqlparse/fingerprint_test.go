package sqlparse

import "testing"

// fp parses sql and returns its fingerprint pair, failing the test on a
// parse error.
func fp(t *testing.T, sql string) (string, uint64) {
	t.Helper()
	text, id, err := FingerprintSQL(sql)
	if err != nil {
		t.Fatalf("FingerprintSQL(%q): %v", sql, err)
	}
	if id == 0 {
		t.Fatalf("FingerprintSQL(%q): zero fingerprint", sql)
	}
	return text, id
}

// TestFingerprintCanonicalText pins the canonical rendering: literals
// become ?, IN-lists collapse, keywords and spacing canonicalize.
func TestFingerprintCanonicalText(t *testing.T) {
	cases := []struct {
		sql, want string
	}{
		{
			"SELECT a FROM t WHERE x > 5",
			"select a from t where (x > ?)",
		},
		{
			"SELECT count(*) AS c FROM t",
			"select count(*) as c from t",
		},
		{
			"SELECT a FROM t WHERE x IN (1, 2, 3)",
			"select a from t where (x in (?))",
		},
		{
			"SELECT a FROM t WHERE x NOT IN (1, 2)",
			"select a from t where (x not in (?))",
		},
		{
			"SELECT a FROM t WHERE s LIKE '%green%'",
			"select a from t where (s like ?)",
		},
		{
			"SELECT a FROM t WHERE x BETWEEN 3 AND 9",
			"select a from t where (x between ? and ?)",
		},
		{
			"SELECT sum(r.v) AS s FROM r, q WHERE r.i = q.i GROUP BY r.j",
			"select sum(r.v) as s from r, q where (r.i = q.i) group by r.j",
		},
	}
	for _, c := range cases {
		got, _ := fp(t, c.sql)
		if got != c.want {
			t.Errorf("canonical text of %q:\n got %q\nwant %q", c.sql, got, c.want)
		}
	}
}

// TestFingerprintNormalization checks that statements differing only in
// literals, IN-list length, whitespace or keyword case share one
// fingerprint.
func TestFingerprintNormalization(t *testing.T) {
	groups := [][]string{
		// Literal values don't matter.
		{
			"SELECT a FROM t WHERE x > 5",
			"SELECT a FROM t WHERE x > 12345",
			"select a from t where x > 0",
		},
		// Unary minus over a literal folds into the placeholder.
		{
			"SELECT a FROM t WHERE x > -5",
			"SELECT a FROM t WHERE x > 5",
		},
		// String and date literals too.
		{
			"SELECT a FROM t WHERE s = 'abc'",
			"SELECT a FROM t WHERE s = 'zzzzzz'",
		},
		// IN-lists collapse regardless of arity.
		{
			"SELECT a FROM t WHERE x IN (1, 2, 3, 4, 5)",
			"SELECT a FROM t WHERE x IN (7)",
		},
		// Whitespace and keyword case canonicalize.
		{
			"SELECT a FROM t WHERE x > 5",
			"select    a   from t\twhere x>7",
			"Select a froM t wherE x > 9",
		},
		// LIKE patterns are literals.
		{
			"SELECT a FROM t WHERE s LIKE '%x%'",
			"SELECT a FROM t WHERE s LIKE 'exact'",
		},
	}
	for gi, g := range groups {
		baseText, baseID := fp(t, g[0])
		for _, sql := range g[1:] {
			text, id := fp(t, sql)
			if id != baseID || text != baseText {
				t.Errorf("group %d: %q fingerprints (%q, %016x), want (%q, %016x) like %q",
					gi, sql, text, id, baseText, baseID, g[0])
			}
		}
	}
}

// TestFingerprintDistinctShapes checks that genuinely different query
// shapes keep distinct fingerprints.
func TestFingerprintDistinctShapes(t *testing.T) {
	shapes := []string{
		"SELECT a FROM t WHERE x > 5",
		"SELECT a FROM t WHERE x < 5",             // operator matters
		"SELECT a FROM t WHERE x > 5 AND y > 5",   // predicate structure
		"SELECT a FROM u WHERE x > 5",             // table name
		"SELECT b FROM t WHERE x > 5",             // projection
		"SELECT a AS z FROM t WHERE x > 5",        // alias names the output
		"SELECT a FROM t WHERE x BETWEEN 1 AND 5", // between vs comparison
		"SELECT a FROM t WHERE x IN (1)",          // IN vs equality
		"SELECT a FROM t WHERE x NOT IN (1)",      // NOT variant
		"SELECT a FROM t",                         // no predicate
		"SELECT count(*) AS c FROM t",             // aggregate
		"SELECT sum(a) AS c FROM t",               // aggregate function name
		"SELECT a FROM t GROUP BY a",              // grouping
		"SELECT count(a) AS c FROM t",             // plain count(col)
		"SELECT count(distinct a) AS c FROM t",    // distinct-ness is part of the shape
	}
	seen := map[uint64]string{}
	for _, sql := range shapes {
		_, id := fp(t, sql)
		if prev, dup := seen[id]; dup {
			t.Errorf("fingerprint collision: %q and %q both hash to %016x", prev, sql, id)
		}
		seen[id] = sql
	}
}

// TestFingerprintStability pins the hash algorithm: a changed constant
// would silently split statement history across releases, so the exact
// ID is part of the contract.
func TestFingerprintStability(t *testing.T) {
	text, id := fp(t, "SELECT a FROM t WHERE x > 5")
	_, id2 := fp(t, "select a from t where x > 99")
	if id != id2 {
		t.Fatalf("same shape, different IDs: %016x vs %016x", id, id2)
	}
	// FNV-1a of the canonical text, computed independently.
	want := uint64(14695981039346656037)
	for i := 0; i < len(text); i++ {
		want ^= uint64(text[i])
		want *= 1099511628211
	}
	if id != want {
		t.Errorf("fingerprint of %q = %016x, want FNV-1a %016x", text, id, want)
	}
}
