package sqlparse

import (
	"fmt"
	"strings"
	"time"
)

// Query is a parsed SELECT statement.
type Query struct {
	Select  []SelectItem
	From    []TableRef
	Where   Expr // nil when absent; otherwise a boolean expression
	GroupBy []Expr
	Having  Expr // nil when absent; boolean over aggregates
}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef is one FROM-list entry. Alias defaults to the table name.
type TableRef struct {
	Table string
	Alias string
}

// Expr is a SQL expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColRef references a column, optionally qualified by a table alias.
type ColRef struct {
	Qualifier string // "" when unqualified
	Name      string
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Val   float64
	IsInt bool
}

// StringLit is a string literal.
type StringLit struct{ Val string }

// DateLit is a date literal, stored as days since 1970-01-01.
type DateLit struct{ Days int32 }

// IntervalLit is an INTERVAL 'n' DAY/MONTH/YEAR literal.
type IntervalLit struct {
	N    int
	Unit string // "day", "month", "year"
}

// BinaryExpr applies Op to L and R. Op is one of
// + - * / = <> < <= > >= and or.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr is -x or NOT x.
type UnaryExpr struct {
	Op string // "-" or "not"
	X  Expr
}

// FuncCall is an aggregate or scalar function call. Star marks COUNT(*);
// Distinct marks COUNT(DISTINCT col) (the only distinct aggregate the
// engine accepts — the planner rejects distinct on other functions).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

// CaseExpr is CASE WHEN c1 THEN v1 [...] [ELSE e] END.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr // nil means NULL→0 semantics in this engine
}

// WhenClause is one WHEN/THEN arm.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// BetweenExpr is x BETWEEN lo AND hi (inclusive).
type BetweenExpr struct {
	X, Lo, Hi Expr
	Negate    bool
}

// InExpr is x IN (v1, v2, ...).
type InExpr struct {
	X      Expr
	Vals   []Expr
	Negate bool
}

// LikeExpr is x LIKE pattern with % and _ wildcards.
type LikeExpr struct {
	X       Expr
	Pattern string
	Negate  bool
}

// ExtractExpr is EXTRACT(unit FROM x).
type ExtractExpr struct {
	Unit string // "year", "month", "day"
	X    Expr
}

func (ColRef) exprNode()      {}
func (NumberLit) exprNode()   {}
func (StringLit) exprNode()   {}
func (DateLit) exprNode()     {}
func (IntervalLit) exprNode() {}
func (BinaryExpr) exprNode()  {}
func (UnaryExpr) exprNode()   {}
func (FuncCall) exprNode()    {}
func (CaseExpr) exprNode()    {}
func (BetweenExpr) exprNode() {}
func (InExpr) exprNode()      {}
func (LikeExpr) exprNode()    {}
func (ExtractExpr) exprNode() {}

func (e ColRef) String() string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Name
	}
	return e.Name
}

func (e NumberLit) String() string {
	if e.IsInt {
		return fmt.Sprintf("%d", int64(e.Val))
	}
	return fmt.Sprintf("%g", e.Val)
}

func (e StringLit) String() string { return "'" + e.Val + "'" }

func (e DateLit) String() string {
	return "date '" + DaysToDate(e.Days) + "'"
}

func (e IntervalLit) String() string { return fmt.Sprintf("interval '%d' %s", e.N, e.Unit) }

func (e BinaryExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

func (e UnaryExpr) String() string { return "(" + e.Op + " " + e.X.String() + ")" }

func (e FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	if e.Distinct {
		// Distinct-ness is part of the call's identity: String() drives
		// aggregate dedup in refeval and exprEq everywhere.
		return e.Name + "(distinct " + strings.Join(args, ", ") + ")"
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

func (e CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("case")
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " when %s then %s", w.Cond, w.Then)
	}
	if e.Else != nil {
		fmt.Fprintf(&b, " else %s", e.Else)
	}
	b.WriteString(" end")
	return b.String()
}

func (e BetweenExpr) String() string {
	op := "between"
	if e.Negate {
		op = "not between"
	}
	return fmt.Sprintf("(%s %s %s and %s)", e.X, op, e.Lo, e.Hi)
}

func (e InExpr) String() string {
	vals := make([]string, len(e.Vals))
	for i, v := range e.Vals {
		vals[i] = v.String()
	}
	op := "in"
	if e.Negate {
		op = "not in"
	}
	return fmt.Sprintf("(%s %s (%s))", e.X, op, strings.Join(vals, ", "))
}

func (e LikeExpr) String() string {
	op := "like"
	if e.Negate {
		op = "not like"
	}
	return fmt.Sprintf("(%s %s '%s')", e.X, op, e.Pattern)
}

func (e ExtractExpr) String() string {
	return fmt.Sprintf("extract(%s from %s)", e.Unit, e.X)
}

// epoch is day zero of the engine's date representation.
var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// ParseDate converts 'YYYY-MM-DD' to days since 1970-01-01.
func ParseDate(s string) (int32, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("sql: bad date %q: %v", s, err)
	}
	return int32(t.Sub(epoch).Hours() / 24), nil
}

// DaysToDate converts days since 1970-01-01 back to 'YYYY-MM-DD'.
func DaysToDate(days int32) string {
	return epoch.AddDate(0, 0, int(days)).Format("2006-01-02")
}

// AddInterval shifts a day count by an interval (calendar-aware for
// months and years).
func AddInterval(days int32, n int, unit string) int32 {
	t := epoch.AddDate(0, 0, int(days))
	switch unit {
	case "day":
		t = t.AddDate(0, 0, n)
	case "month":
		t = t.AddDate(0, n, 0)
	case "year":
		t = t.AddDate(n, 0, 0)
	}
	return int32(t.Sub(epoch).Hours() / 24)
}

// DateYear extracts the calendar year of a day count.
func DateYear(days int32) int {
	return epoch.AddDate(0, 0, int(days)).Year()
}

// DateMonth extracts the calendar month (1-12) of a day count.
func DateMonth(days int32) int {
	return int(epoch.AddDate(0, 0, int(days)).Month())
}

// DateDay extracts the day-of-month of a day count.
func DateDay(days int32) int {
	return epoch.AddDate(0, 0, int(days)).Day()
}
