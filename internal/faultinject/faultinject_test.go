package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	Fire("nope")
	if err := Err("nope"); err != nil {
		t.Fatalf("disarmed Err = %v", err)
	}
	if Enabled() {
		t.Fatal("Enabled with no armed points")
	}
}

func TestPanicBudget(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm(PointExecWorker, Fault{Mode: ModePanic, Times: 1})
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		Fire(PointExecWorker)
		return false
	}
	if !panicked() {
		t.Fatal("first hit did not panic")
	}
	if panicked() {
		t.Fatal("budget of 1 fired twice")
	}
}

func TestErrMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm(PointGovernorCharge, Fault{Mode: ModeError})
	if err := Err(PointGovernorCharge); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", err)
	}
	Disarm(PointGovernorCharge)
	if err := Err(PointGovernorCharge); err != nil {
		t.Fatalf("after Disarm, Err = %v", err)
	}
}

func TestDelayMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm(PointSetIntersect, Fault{Mode: ModeDelay, Delay: 10 * time.Millisecond, Times: 1})
	t0 := time.Now()
	Fire(PointSetIntersect)
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Fatalf("delay fired for only %v", d)
	}
}

func TestParseFault(t *testing.T) {
	f, err := parseFault("delay:5ms*3")
	if err != nil || f.Mode != ModeDelay || f.Delay != 5*time.Millisecond || f.Times != 3 {
		t.Fatalf("parseFault = %+v, %v", f, err)
	}
	if _, err := parseFault("nonsense"); err == nil {
		t.Fatal("parseFault accepted garbage")
	}
	if _, err := parseFault("delay:notaduration"); err == nil {
		t.Fatal("parseFault accepted bad delay")
	}
}
