// Package faultinject is the engine's chaos harness: named fault points
// compiled into exec, trie, set and governor that can be armed to force
// panics, delays or allocation failures at run time. Disarmed (the
// default), a point costs one atomic load — the package is safe to
// leave in production builds.
//
// Points are armed programmatically (tests) or from the environment:
//
//	LH_FAULTS="exec.worker=panic*1,set.intersect=delay:5ms" lhserve ...
//
// Each entry is point=mode with an optional :arg (delay duration) and
// an optional *N fire budget (default: unlimited). Supported modes are
// "panic", "delay:<duration>" and "error".
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed fault point does when hit.
type Mode uint8

const (
	// ModePanic makes the point panic (exercises the recovery barriers).
	ModePanic Mode = iota
	// ModeDelay makes the point sleep for Fault.Delay.
	ModeDelay
	// ModeError makes the point report an injected failure (e.g. a
	// simulated allocation failure in the governor).
	ModeError
)

// Fault configures one armed point.
type Fault struct {
	Mode  Mode
	Delay time.Duration
	// Times bounds how often the point fires before disarming itself;
	// <= 0 means every hit fires.
	Times int64
}

// The canonical point names. Callers pass these constants so the set of
// chaos points is greppable in one place.
const (
	PointExecWorker     = "exec.worker"     // start of every parfor worker chunk
	PointExecOutput     = "exec.output"     // result assembly
	PointTrieBuild      = "trie.build"      // trie construction (compile phase)
	PointSetIntersect   = "set.intersect"   // multi-set intersection kernel entry
	PointGovernorCharge = "governor.charge" // memory accountant charge
)

// ErrInjected is the sentinel returned by Err for ModeError points.
var ErrInjected = fmt.Errorf("faultinject: injected failure")

type armedFault struct {
	Fault
	left atomic.Int64 // remaining fires when Times > 0
}

var (
	// nArmed counts armed points: the only state the hot path reads.
	nArmed atomic.Int32

	mu     sync.Mutex
	points = map[string]*armedFault{}
)

// Enabled reports whether any point is armed (one atomic load).
func Enabled() bool { return nArmed.Load() != 0 }

// Arm installs (or replaces) a fault at the named point.
func Arm(point string, f Fault) {
	af := &armedFault{Fault: f}
	if f.Times > 0 {
		af.left.Store(f.Times)
	}
	mu.Lock()
	if _, dup := points[point]; !dup {
		nArmed.Add(1)
	}
	points[point] = af
	mu.Unlock()
}

// Disarm removes the fault at the named point, if armed.
func Disarm(point string) {
	mu.Lock()
	if _, ok := points[point]; ok {
		delete(points, point)
		nArmed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every point (test cleanup).
func Reset() {
	mu.Lock()
	nArmed.Add(-int32(len(points)))
	points = map[string]*armedFault{}
	mu.Unlock()
}

// hit consumes one firing of the named point, honoring the Times
// budget. Nil when the point is not armed or its budget is spent.
func hit(point string) *armedFault {
	mu.Lock()
	af := points[point]
	mu.Unlock()
	if af == nil {
		return nil
	}
	if af.Times > 0 && af.left.Add(-1) < 0 {
		return nil
	}
	return af
}

// Fire triggers the named point: panics for ModePanic, sleeps for
// ModeDelay, and is a no-op for ModeError (use Err at sites that can
// return an error). Disarmed, it is a single atomic load.
func Fire(point string) {
	if nArmed.Load() == 0 {
		return
	}
	af := hit(point)
	if af == nil {
		return
	}
	switch af.Mode {
	case ModePanic:
		panic("faultinject: forced panic at " + point)
	case ModeDelay:
		time.Sleep(af.Delay)
	}
}

// Err triggers the named point at an error-returning site: ModeError
// yields ErrInjected, ModePanic panics, ModeDelay sleeps and returns
// nil. Disarmed, it is a single atomic load.
func Err(point string) error {
	if nArmed.Load() == 0 {
		return nil
	}
	af := hit(point)
	if af == nil {
		return nil
	}
	switch af.Mode {
	case ModePanic:
		panic("faultinject: forced panic at " + point)
	case ModeDelay:
		time.Sleep(af.Delay)
		return nil
	default:
		return ErrInjected
	}
}

// init arms points from LH_FAULTS (ignoring malformed entries rather
// than failing startup — chaos configuration must never brick a boot).
func init() {
	spec := os.Getenv("LH_FAULTS")
	if spec == "" {
		return
	}
	for _, entry := range strings.Split(spec, ",") {
		point, mode, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || point == "" {
			continue
		}
		f, err := parseFault(mode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: ignoring %q: %v\n", entry, err)
			continue
		}
		Arm(point, f)
	}
}

// parseFault parses "panic", "delay:10ms" or "error", each with an
// optional "*N" fire budget suffix.
func parseFault(s string) (Fault, error) {
	var f Fault
	if base, times, ok := strings.Cut(s, "*"); ok {
		n, err := strconv.ParseInt(times, 10, 64)
		if err != nil || n <= 0 {
			return f, fmt.Errorf("bad fire budget %q", times)
		}
		f.Times = n
		s = base
	}
	mode, arg, _ := strings.Cut(s, ":")
	switch mode {
	case "panic":
		f.Mode = ModePanic
	case "delay":
		f.Mode = ModeDelay
		d, err := time.ParseDuration(arg)
		if err != nil {
			return f, fmt.Errorf("bad delay %q", arg)
		}
		f.Delay = d
	case "error":
		f.Mode = ModeError
	default:
		return f, fmt.Errorf("unknown mode %q", mode)
	}
	return f, nil
}
