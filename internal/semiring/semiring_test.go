package semiring

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// closeEnough tolerates float associativity error for + and ×.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	if math.IsInf(a, -1) && math.IsInf(b, -1) {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// boolVals restricts inputs to {0,1} for the boolean semiring.
func domain(s Semiring, v float64) float64 {
	switch s.(type) {
	case BoolOrAnd:
		if v > 0 {
			return 1
		}
		return 0
	case MinTimes, MaxTimes:
		return math.Abs(v) // nonnegative domain keeps × monotone
	default:
		return v
	}
}

func genVals(args []reflect.Value, r *rand.Rand) {
	for i := range args {
		args[i] = reflect.ValueOf(r.NormFloat64() * 10)
	}
}

func TestSemiringLaws(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			cfg := &quick.Config{MaxCount: 300, Values: genVals}

			commutative := func(a, b float64) bool {
				a, b = domain(s, a), domain(s, b)
				return closeEnough(s.Add(a, b), s.Add(b, a)) &&
					closeEnough(s.Mul(a, b), s.Mul(b, a))
			}
			if err := quick.Check(commutative, cfg); err != nil {
				t.Errorf("commutativity: %v", err)
			}

			associative := func(a, b, c float64) bool {
				a, b, c = domain(s, a), domain(s, b), domain(s, c)
				return closeEnough(s.Add(s.Add(a, b), c), s.Add(a, s.Add(b, c))) &&
					closeEnough(s.Mul(s.Mul(a, b), c), s.Mul(a, s.Mul(b, c)))
			}
			if err := quick.Check(associative, cfg); err != nil {
				t.Errorf("associativity: %v", err)
			}

			identity := func(a float64) bool {
				a = domain(s, a)
				return closeEnough(s.Add(a, s.Zero()), a) &&
					closeEnough(s.Mul(a, s.One()), a)
			}
			if err := quick.Check(identity, cfg); err != nil {
				t.Errorf("identity: %v", err)
			}

			distributive := func(a, b, c float64) bool {
				a, b, c = domain(s, a), domain(s, b), domain(s, c)
				lhs := s.Mul(a, s.Add(b, c))
				rhs := s.Add(s.Mul(a, b), s.Mul(a, c))
				return closeEnough(lhs, rhs)
			}
			if err := quick.Check(distributive, cfg); err != nil {
				t.Errorf("distributivity: %v", err)
			}
		})
	}
}

func TestAnnihilation(t *testing.T) {
	// Zero annihilates under Mul for sum-product and boolean semirings.
	for _, s := range []Semiring{SumProduct{}, BoolOrAnd{}} {
		if got := s.Mul(5, s.Zero()); got != s.Zero() {
			t.Errorf("%s: 5 ⊗ 0 = %v, want %v", s.Name(), got, s.Zero())
		}
	}
	// For min-plus, Mul with Zero (=+∞) stays +∞.
	mp := MinPlus{}
	if got := mp.Mul(5, mp.Zero()); !math.IsInf(got, 1) {
		t.Errorf("min-plus: 5 ⊗ ∞ = %v, want +∞", got)
	}
}

func TestSumProductMatchesArithmetic(t *testing.T) {
	s := SumProduct{}
	if s.Add(2, 3) != 5 || s.Mul(2, 3) != 6 {
		t.Fatal("sum-product should be ordinary arithmetic")
	}
}

func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
		if seen[s.Name()] {
			t.Errorf("duplicate semiring name %q", s.Name())
		}
		seen[s.Name()] = true
	}
}
