// Package semiring defines the commutative semirings over which
// LevelHeaded's AJAR annotations are aggregated (paper §II-C). When
// relations are joined, annotations multiply (⊗); when an attribute is
// aggregated away, annotations sum (⊕) over the eliminated values.
package semiring

import "math"

// Semiring is a commutative semiring over float64: (⊕, ⊗) with additive
// identity Zero (which annihilates under ⊗ for the standard instances
// used here) and multiplicative identity One.
type Semiring interface {
	// Name identifies the semiring, e.g. "sum-product".
	Name() string
	// Zero is the ⊕ identity.
	Zero() float64
	// One is the ⊗ identity.
	One() float64
	// Add is the commutative, associative ⊕ operator.
	Add(a, b float64) float64
	// Mul is the commutative, associative ⊗ operator distributing over ⊕.
	Mul(a, b float64) float64
}

// SumProduct is the (ℝ, +, ×) semiring: the semiring of SQL SUM
// aggregates and of sparse matrix multiplication.
type SumProduct struct{}

func (SumProduct) Name() string             { return "sum-product" }
func (SumProduct) Zero() float64            { return 0 }
func (SumProduct) One() float64             { return 1 }
func (SumProduct) Add(a, b float64) float64 { return a + b }
func (SumProduct) Mul(a, b float64) float64 { return a * b }

// MinPlus is the tropical (ℝ∪{+∞}, min, +) semiring (shortest paths,
// SQL MIN over summed annotations).
type MinPlus struct{}

func (MinPlus) Name() string  { return "min-plus" }
func (MinPlus) Zero() float64 { return math.Inf(1) }
func (MinPlus) One() float64  { return 0 }
func (MinPlus) Add(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func (MinPlus) Mul(a, b float64) float64 { return a + b }

// MaxPlus is the (ℝ∪{-∞}, max, +) semiring (SQL MAX over summed
// annotations, longest paths).
type MaxPlus struct{}

func (MaxPlus) Name() string  { return "max-plus" }
func (MaxPlus) Zero() float64 { return math.Inf(-1) }
func (MaxPlus) One() float64  { return 0 }
func (MaxPlus) Add(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func (MaxPlus) Mul(a, b float64) float64 { return a + b }

// MinTimes is the (ℝ≥0∪{+∞}, min, ×) semiring.
type MinTimes struct{}

func (MinTimes) Name() string  { return "min-times" }
func (MinTimes) Zero() float64 { return math.Inf(1) }
func (MinTimes) One() float64  { return 1 }
func (MinTimes) Add(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func (MinTimes) Mul(a, b float64) float64 { return a * b }

// MaxTimes is the (ℝ≥0∪{-∞}, max, ×) semiring.
type MaxTimes struct{}

func (MaxTimes) Name() string  { return "max-times" }
func (MaxTimes) Zero() float64 { return math.Inf(-1) }
func (MaxTimes) One() float64  { return 1 }
func (MaxTimes) Add(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func (MaxTimes) Mul(a, b float64) float64 { return a * b }

// BoolOrAnd is the boolean semiring ({0,1}, ∨, ∧): pure join existence
// with no aggregation payload.
type BoolOrAnd struct{}

func (BoolOrAnd) Name() string  { return "bool-or-and" }
func (BoolOrAnd) Zero() float64 { return 0 }
func (BoolOrAnd) One() float64  { return 1 }
func (BoolOrAnd) Add(a, b float64) float64 {
	if a != 0 || b != 0 {
		return 1
	}
	return 0
}
func (BoolOrAnd) Mul(a, b float64) float64 {
	if a != 0 && b != 0 {
		return 1
	}
	return 0
}

// All enumerates the semiring instances for property testing.
func All() []Semiring {
	return []Semiring{SumProduct{}, MinPlus{}, MaxPlus{}, MinTimes{}, MaxTimes{}, BoolOrAnd{}}
}
