// Package tpch is this reproduction's stand-in for the TPC-H dbgen
// tool: a deterministic generator for all eight TPC-H tables with the
// spec's schema and distribution shapes (uniform keys, date ranges,
// text pools for the predicate columns), plus the seven benchmark
// queries of the paper (1, 3, 5, 6, 8, 9, 10) in the engine's SQL
// dialect.
//
// Substitution note (DESIGN.md §1.2): official dbgen is C and the
// paper's scale factors 1–100 exceed this environment; Populate takes a
// fractional scale factor and preserves row-count ratios, selectivities
// and key skew rather than absolute sizes.
package tpch

import "repro/internal/storage"

// Schemas returns the eight TPC-H table schemas under the LevelHeaded
// data model: primary/foreign keys are Key attributes grouped into join
// domains; everything else is an Annotation.
func Schemas() []storage.Schema {
	return []storage.Schema{
		{Name: "region", Cols: []storage.ColumnDef{
			{Name: "r_regionkey", Kind: storage.Int64, Role: storage.Key, Domain: "regionkey", PK: true},
			{Name: "r_name", Kind: storage.String, Role: storage.Annotation},
			{Name: "r_comment", Kind: storage.String, Role: storage.Annotation},
		}},
		{Name: "nation", Cols: []storage.ColumnDef{
			{Name: "n_nationkey", Kind: storage.Int64, Role: storage.Key, Domain: "nationkey", PK: true},
			{Name: "n_regionkey", Kind: storage.Int64, Role: storage.Key, Domain: "regionkey"},
			{Name: "n_name", Kind: storage.String, Role: storage.Annotation},
			{Name: "n_comment", Kind: storage.String, Role: storage.Annotation},
		}},
		{Name: "supplier", Cols: []storage.ColumnDef{
			{Name: "s_suppkey", Kind: storage.Int64, Role: storage.Key, Domain: "suppkey", PK: true},
			{Name: "s_nationkey", Kind: storage.Int64, Role: storage.Key, Domain: "nationkey"},
			{Name: "s_name", Kind: storage.String, Role: storage.Annotation},
			{Name: "s_address", Kind: storage.String, Role: storage.Annotation},
			{Name: "s_phone", Kind: storage.String, Role: storage.Annotation},
			{Name: "s_acctbal", Kind: storage.Float64, Role: storage.Annotation},
			{Name: "s_comment", Kind: storage.String, Role: storage.Annotation},
		}},
		{Name: "customer", Cols: []storage.ColumnDef{
			{Name: "c_custkey", Kind: storage.Int64, Role: storage.Key, Domain: "custkey", PK: true},
			{Name: "c_nationkey", Kind: storage.Int64, Role: storage.Key, Domain: "nationkey"},
			{Name: "c_name", Kind: storage.String, Role: storage.Annotation},
			{Name: "c_address", Kind: storage.String, Role: storage.Annotation},
			{Name: "c_phone", Kind: storage.String, Role: storage.Annotation},
			{Name: "c_acctbal", Kind: storage.Float64, Role: storage.Annotation},
			{Name: "c_mktsegment", Kind: storage.String, Role: storage.Annotation},
			{Name: "c_comment", Kind: storage.String, Role: storage.Annotation},
		}},
		{Name: "part", Cols: []storage.ColumnDef{
			{Name: "p_partkey", Kind: storage.Int64, Role: storage.Key, Domain: "partkey", PK: true},
			{Name: "p_name", Kind: storage.String, Role: storage.Annotation},
			{Name: "p_mfgr", Kind: storage.String, Role: storage.Annotation},
			{Name: "p_brand", Kind: storage.String, Role: storage.Annotation},
			{Name: "p_type", Kind: storage.String, Role: storage.Annotation},
			{Name: "p_size", Kind: storage.Int64, Role: storage.Annotation},
			{Name: "p_container", Kind: storage.String, Role: storage.Annotation},
			{Name: "p_retailprice", Kind: storage.Float64, Role: storage.Annotation},
		}},
		{Name: "partsupp", Cols: []storage.ColumnDef{
			{Name: "ps_partkey", Kind: storage.Int64, Role: storage.Key, Domain: "partkey"},
			{Name: "ps_suppkey", Kind: storage.Int64, Role: storage.Key, Domain: "suppkey"},
			{Name: "ps_availqty", Kind: storage.Int64, Role: storage.Annotation},
			{Name: "ps_supplycost", Kind: storage.Float64, Role: storage.Annotation},
		}},
		{Name: "orders", Cols: []storage.ColumnDef{
			{Name: "o_orderkey", Kind: storage.Int64, Role: storage.Key, Domain: "orderkey", PK: true},
			{Name: "o_custkey", Kind: storage.Int64, Role: storage.Key, Domain: "custkey"},
			{Name: "o_orderstatus", Kind: storage.String, Role: storage.Annotation},
			{Name: "o_totalprice", Kind: storage.Float64, Role: storage.Annotation},
			{Name: "o_orderdate", Kind: storage.Date, Role: storage.Annotation},
			{Name: "o_orderpriority", Kind: storage.String, Role: storage.Annotation},
			{Name: "o_shippriority", Kind: storage.Int64, Role: storage.Annotation},
		}},
		{Name: "lineitem", Cols: []storage.ColumnDef{
			{Name: "l_orderkey", Kind: storage.Int64, Role: storage.Key, Domain: "orderkey"},
			{Name: "l_partkey", Kind: storage.Int64, Role: storage.Key, Domain: "partkey"},
			{Name: "l_suppkey", Kind: storage.Int64, Role: storage.Key, Domain: "suppkey"},
			{Name: "l_linenumber", Kind: storage.Int64, Role: storage.Annotation},
			{Name: "l_quantity", Kind: storage.Float64, Role: storage.Annotation},
			{Name: "l_extendedprice", Kind: storage.Float64, Role: storage.Annotation},
			{Name: "l_discount", Kind: storage.Float64, Role: storage.Annotation},
			{Name: "l_tax", Kind: storage.Float64, Role: storage.Annotation},
			{Name: "l_returnflag", Kind: storage.String, Role: storage.Annotation},
			{Name: "l_linestatus", Kind: storage.String, Role: storage.Annotation},
			{Name: "l_shipdate", Kind: storage.Date, Role: storage.Annotation},
			{Name: "l_commitdate", Kind: storage.Date, Role: storage.Annotation},
			{Name: "l_receiptdate", Kind: storage.Date, Role: storage.Annotation},
			{Name: "l_shipmode", Kind: storage.String, Role: storage.Annotation},
		}},
	}
}

// Queries are the paper's seven TPC-H benchmark queries (run without
// ORDER BY, per the paper's footnote 2). Q8 and Q9 are flattened: the
// original nested subqueries become aggregate expressions with CASE
// gating and computed GROUP BY, which the planner's §IV-A rules capture.
var Queries = map[string]string{
	"q1": `SELECT l_returnflag, l_linestatus,
		sum(l_quantity) as sum_qty,
		sum(l_extendedprice) as sum_base_price,
		sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
		sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
		avg(l_quantity) as avg_qty,
		avg(l_extendedprice) as avg_price,
		avg(l_discount) as avg_disc,
		count(*) as count_order
		FROM lineitem
		WHERE l_shipdate <= date '1998-12-01' - interval '90' day
		GROUP BY l_returnflag, l_linestatus`,

	"q3": `SELECT l_orderkey,
		sum(l_extendedprice * (1 - l_discount)) as revenue,
		o_orderdate, o_shippriority
		FROM customer, orders, lineitem
		WHERE c_mktsegment = 'BUILDING'
		AND c_custkey = o_custkey AND l_orderkey = o_orderkey
		AND o_orderdate < date '1995-03-15'
		AND l_shipdate > date '1995-03-15'
		GROUP BY l_orderkey, o_orderdate, o_shippriority`,

	"q5": `SELECT n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
		FROM customer, orders, lineitem, supplier, nation, region
		WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
		AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		AND r_name = 'ASIA'
		AND o_orderdate >= date '1994-01-01'
		AND o_orderdate < date '1994-01-01' + interval '1' year
		GROUP BY n_name`,

	"q6": `SELECT sum(l_extendedprice * l_discount) as revenue
		FROM lineitem
		WHERE l_shipdate >= date '1994-01-01'
		AND l_shipdate < date '1994-01-01' + interval '1' year
		AND l_discount between 0.06 - 0.01 and 0.06 + 0.01
		AND l_quantity < 24`,

	"q8": `SELECT extract(year from o_orderdate) as o_year,
		sum(case when n2.n_name = 'BRAZIL' then l_extendedprice * (1 - l_discount) else 0 end) /
		sum(l_extendedprice * (1 - l_discount)) as mkt_share
		FROM part, supplier, lineitem, orders, customer, nation as n1, nation as n2, region
		WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
		AND l_orderkey = o_orderkey AND o_custkey = c_custkey
		AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey
		AND r_name = 'AMERICA' AND s_nationkey = n2.n_nationkey
		AND o_orderdate between date '1995-01-01' and date '1996-12-31'
		AND p_type = 'ECONOMY ANODIZED STEEL'
		GROUP BY o_year`,

	"q9": `SELECT n_name, extract(year from o_orderdate) as o_year,
		sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) as sum_profit
		FROM part, supplier, lineitem, partsupp, orders, nation
		WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
		AND ps_partkey = l_partkey AND p_partkey = l_partkey
		AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
		AND p_name like '%green%'
		GROUP BY n_name, o_year`,

	"q10": `SELECT c_custkey, c_name,
		sum(l_extendedprice * (1 - l_discount)) as revenue,
		c_acctbal, n_name, c_address, c_phone, c_comment
		FROM customer, orders, lineitem, nation
		WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		AND o_orderdate >= date '1993-10-01'
		AND o_orderdate < date '1993-10-01' + interval '3' month
		AND l_returnflag = 'R' AND c_nationkey = n_nationkey
		GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment`,
}

// QueryNames lists the benchmark queries in the paper's order.
var QueryNames = []string{"q1", "q3", "q5", "q6", "q8", "q9", "q10"}
