package tpch

import (
	"testing"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

func TestSizesScale(t *testing.T) {
	s1 := SizesAt(0.01)
	s2 := SizesAt(0.02)
	if s2.Orders <= s1.Orders || s2.Customer <= s1.Customer {
		t.Fatalf("sizes not monotone: %+v vs %+v", s1, s2)
	}
	if s1.PartSupp != s1.Part*4 {
		t.Fatalf("partsupp ratio wrong: %+v", s1)
	}
	tiny := SizesAt(0)
	if tiny.Supplier < 10 || tiny.Orders < 100 {
		t.Fatalf("minimum sizes not enforced: %+v", tiny)
	}
}

func TestPopulateDeterministic(t *testing.T) {
	cat1 := storage.NewCatalog()
	if _, err := Populate(cat1, 0.002, 42); err != nil {
		t.Fatal(err)
	}
	cat2 := storage.NewCatalog()
	if _, err := Populate(cat2, 0.002, 42); err != nil {
		t.Fatal(err)
	}
	l1, l2 := cat1.Table("lineitem"), cat2.Table("lineitem")
	if l1.NumRows != l2.NumRows {
		t.Fatalf("row counts differ: %d vs %d", l1.NumRows, l2.NumRows)
	}
	for i := 0; i < l1.NumRows; i += 97 {
		if l1.Col("l_extendedprice").Floats[i] != l2.Col("l_extendedprice").Floats[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestPopulateIntegrity(t *testing.T) {
	cat := storage.NewCatalog()
	sz, err := Populate(cat, 0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	// Foreign keys resolve.
	orders := cat.Table("orders")
	custs := map[int64]bool{}
	for _, ck := range cat.Table("customer").Col("c_custkey").Ints {
		custs[ck] = true
	}
	for _, ck := range orders.Col("o_custkey").Ints {
		if !custs[ck] {
			t.Fatal("order references missing customer")
		}
	}
	li := cat.Table("lineitem")
	okeys := map[int64]bool{}
	for _, ok := range orders.Col("o_orderkey").Ints {
		okeys[ok] = true
	}
	for _, ok := range li.Col("l_orderkey").Ints {
		if !okeys[ok] {
			t.Fatal("lineitem references missing order")
		}
	}
	// Suppliers and parts in range.
	for _, sk := range li.Col("l_suppkey").Ints {
		if sk < 1 || sk > int64(sz.Supplier) {
			t.Fatalf("suppkey %d out of range", sk)
		}
	}
	for _, pk := range li.Col("l_partkey").Ints {
		if pk < 1 || pk > int64(sz.Part) {
			t.Fatalf("partkey %d out of range", pk)
		}
	}
	// Dates are ordered ship <= receipt.
	for i := 0; i < li.NumRows; i++ {
		if li.Col("l_receiptdate").Ints[i] < li.Col("l_shipdate").Ints[i] {
			t.Fatal("receipt before ship")
		}
	}
	// Nation-region mapping covers five regions.
	seen := map[int64]bool{}
	for _, rk := range cat.Table("nation").Col("n_regionkey").Ints {
		seen[rk] = true
	}
	if len(seen) != 5 {
		t.Fatalf("nation regions = %v", seen)
	}
}

func TestSelectivityShapes(t *testing.T) {
	cat := storage.NewCatalog()
	if _, err := Populate(cat, 0.005, 2); err != nil {
		t.Fatal(err)
	}
	li := cat.Table("lineitem")
	// Roughly half of receipt dates precede mid-1995 → R/A flags exist.
	flags := map[string]int{}
	for _, f := range li.Col("l_returnflag").Strs {
		flags[f]++
	}
	if flags["R"] == 0 || flags["A"] == 0 || flags["N"] == 0 {
		t.Fatalf("returnflag distribution degenerate: %v", flags)
	}
	// Q6-style selectivity: some rows hit the 1994 + discount band.
	lo, _ := sqlparse.ParseDate("1994-01-01")
	hi, _ := sqlparse.ParseDate("1995-01-01")
	hits := 0
	for i := 0; i < li.NumRows; i++ {
		d := li.Col("l_shipdate").Ints[i]
		disc := li.Col("l_discount").Floats[i]
		if d >= int64(lo) && d < int64(hi) && disc >= 0.05 && disc <= 0.07 && li.Col("l_quantity").Floats[i] < 24 {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("Q6 predicate selects nothing")
	}
	// Q9: some part names contain "green".
	greens := 0
	for _, n := range cat.Table("part").Col("p_name").Strs {
		for i := 0; i+5 <= len(n); i++ {
			if n[i:i+5] == "green" {
				greens++
				break
			}
		}
	}
	if greens == 0 {
		t.Fatal("no green parts")
	}
	// Q8: the exact type exists.
	econ := 0
	for _, ty := range cat.Table("part").Col("p_type").Strs {
		if ty == "ECONOMY ANODIZED STEEL" {
			econ++
		}
	}
	if econ == 0 {
		t.Fatal("no ECONOMY ANODIZED STEEL parts")
	}
}

func TestQueriesParse(t *testing.T) {
	for _, name := range QueryNames {
		if _, err := sqlparse.Parse(Queries[name]); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
}
