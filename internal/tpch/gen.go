package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Sizes reports the row counts generated at a scale factor, mirroring
// the TPC-H ratios (SF 1 = 6M lineitems).
type Sizes struct {
	Supplier, Part, PartSupp, Customer, Orders, Lineitem int
}

// SizesAt computes the table cardinalities for a scale factor.
func SizesAt(sf float64) Sizes {
	atLeast := func(x float64, lo int) int {
		n := int(x)
		if n < lo {
			return lo
		}
		return n
	}
	s := Sizes{
		Supplier: atLeast(10000*sf, 10),
		Part:     atLeast(200000*sf, 50),
		Customer: atLeast(150000*sf, 30),
		Orders:   atLeast(1500000*sf, 100),
	}
	s.PartSupp = s.Part * 4
	// dbgen draws 1..7 lineitems per order (avg ≈ 4).
	s.Lineitem = s.Orders * 4
	return s
}

var (
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	// nationRegion is the fixed dbgen nation → region mapping.
	nationRegion = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}

	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	containers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP PACK", "JUMBO JAR"}

	typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

	colors = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow"}
)

func day(s string) int64 {
	d, err := sqlparse.ParseDate(s)
	if err != nil {
		panic(err)
	}
	return int64(d)
}

// Populate creates and fills the eight TPC-H tables in the catalog at
// the given scale factor, deterministically from the seed.
func Populate(cat *storage.Catalog, sf float64, seed int64) (Sizes, error) {
	sz := SizesAt(sf)
	r := rand.New(rand.NewSource(seed))
	tables := map[string]*storage.Table{}
	for _, s := range Schemas() {
		t, err := cat.Create(s)
		if err != nil {
			return sz, err
		}
		tables[s.Name] = t
	}

	// region
	{
		keys := make([]int64, len(regions))
		names := make([]string, len(regions))
		comments := make([]string, len(regions))
		for i := range regions {
			keys[i] = int64(i)
			names[i] = regions[i]
			comments[i] = "region comment " + regions[i]
		}
		if err := tables["region"].SetColumnData(map[string]interface{}{
			"r_regionkey": keys, "r_name": names, "r_comment": comments,
		}); err != nil {
			return sz, err
		}
	}

	// nation
	{
		n := len(nations)
		keys := make([]int64, n)
		rkeys := make([]int64, n)
		names := make([]string, n)
		comments := make([]string, n)
		for i := 0; i < n; i++ {
			keys[i] = int64(i)
			rkeys[i] = nationRegion[i]
			names[i] = nations[i]
			comments[i] = "nation comment " + nations[i]
		}
		if err := tables["nation"].SetColumnData(map[string]interface{}{
			"n_nationkey": keys, "n_regionkey": rkeys, "n_name": names, "n_comment": comments,
		}); err != nil {
			return sz, err
		}
	}

	// supplier
	{
		n := sz.Supplier
		keys := make([]int64, n)
		nkeys := make([]int64, n)
		names := make([]string, n)
		addrs := make([]string, n)
		phones := make([]string, n)
		bals := make([]float64, n)
		comments := make([]string, n)
		for i := 0; i < n; i++ {
			keys[i] = int64(i + 1)
			nkeys[i] = int64(r.Intn(25))
			names[i] = fmt.Sprintf("Supplier#%09d", i+1)
			addrs[i] = fmt.Sprintf("addr-s-%d", r.Intn(1<<20))
			phones[i] = fmt.Sprintf("%02d-%03d-%03d-%04d", 10+nkeys[i], r.Intn(1000), r.Intn(1000), r.Intn(10000))
			bals[i] = float64(r.Intn(1099999))/100 - 999.99
			comments[i] = "supplier comment"
		}
		if err := tables["supplier"].SetColumnData(map[string]interface{}{
			"s_suppkey": keys, "s_nationkey": nkeys, "s_name": names, "s_address": addrs,
			"s_phone": phones, "s_acctbal": bals, "s_comment": comments,
		}); err != nil {
			return sz, err
		}
	}

	// part
	{
		n := sz.Part
		keys := make([]int64, n)
		names := make([]string, n)
		mfgrs := make([]string, n)
		brands := make([]string, n)
		types := make([]string, n)
		sizes := make([]int64, n)
		conts := make([]string, n)
		prices := make([]float64, n)
		for i := 0; i < n; i++ {
			keys[i] = int64(i + 1)
			// Five color words per part name (dbgen uses 5 of 92).
			names[i] = colors[r.Intn(len(colors))] + " " + colors[r.Intn(len(colors))] + " " +
				colors[r.Intn(len(colors))] + " " + colors[r.Intn(len(colors))] + " " + colors[r.Intn(len(colors))]
			m := r.Intn(5) + 1
			mfgrs[i] = fmt.Sprintf("Manufacturer#%d", m)
			brands[i] = fmt.Sprintf("Brand#%d%d", m, r.Intn(5)+1)
			types[i] = typeSyl1[r.Intn(len(typeSyl1))] + " " + typeSyl2[r.Intn(len(typeSyl2))] + " " + typeSyl3[r.Intn(len(typeSyl3))]
			sizes[i] = int64(r.Intn(50) + 1)
			conts[i] = containers[r.Intn(len(containers))]
			prices[i] = 900 + float64(keys[i]%200000)/10
		}
		if err := tables["part"].SetColumnData(map[string]interface{}{
			"p_partkey": keys, "p_name": names, "p_mfgr": mfgrs, "p_brand": brands,
			"p_type": types, "p_size": sizes, "p_container": conts, "p_retailprice": prices,
		}); err != nil {
			return sz, err
		}
	}

	// partsupp: four suppliers per part.
	{
		n := sz.PartSupp
		pkeys := make([]int64, n)
		skeys := make([]int64, n)
		qtys := make([]int64, n)
		costs := make([]float64, n)
		for i := 0; i < n; i++ {
			pk := int64(i/4 + 1)
			pkeys[i] = pk
			skeys[i] = (pk+int64(i%4)*int64(sz.Supplier/4+1))%int64(sz.Supplier) + 1
			qtys[i] = int64(r.Intn(9999) + 1)
			costs[i] = float64(r.Intn(99900)+100) / 100
		}
		if err := tables["partsupp"].SetColumnData(map[string]interface{}{
			"ps_partkey": pkeys, "ps_suppkey": skeys, "ps_availqty": qtys, "ps_supplycost": costs,
		}); err != nil {
			return sz, err
		}
	}

	// customer
	{
		n := sz.Customer
		keys := make([]int64, n)
		nkeys := make([]int64, n)
		names := make([]string, n)
		addrs := make([]string, n)
		phones := make([]string, n)
		bals := make([]float64, n)
		segs := make([]string, n)
		comments := make([]string, n)
		for i := 0; i < n; i++ {
			keys[i] = int64(i + 1)
			nkeys[i] = int64(r.Intn(25))
			names[i] = fmt.Sprintf("Customer#%09d", i+1)
			addrs[i] = fmt.Sprintf("addr-c-%d", r.Intn(1<<20))
			phones[i] = fmt.Sprintf("%02d-%03d-%03d-%04d", 10+nkeys[i], r.Intn(1000), r.Intn(1000), r.Intn(10000))
			bals[i] = float64(r.Intn(1099999))/100 - 999.99
			segs[i] = segments[r.Intn(len(segments))]
			comments[i] = "customer comment"
		}
		if err := tables["customer"].SetColumnData(map[string]interface{}{
			"c_custkey": keys, "c_nationkey": nkeys, "c_name": names, "c_address": addrs,
			"c_phone": phones, "c_acctbal": bals, "c_mktsegment": segs, "c_comment": comments,
		}); err != nil {
			return sz, err
		}
	}

	// orders + lineitem
	startDate := day("1992-01-01")
	endDate := day("1998-08-02")
	{
		n := sz.Orders
		okeys := make([]int64, n)
		ckeys := make([]int64, n)
		status := make([]string, n)
		totals := make([]float64, n)
		dates := make([]int64, n)
		prios := make([]string, n)
		ships := make([]int64, n)

		var lok, lpk, lsk, lln []int64
		var lqty, lprice, ldisc, ltax []float64
		var lflag, lstat, lmode []string
		var lship, lcommit, lrcpt []int64

		for i := 0; i < n; i++ {
			ok := int64(i + 1)
			okeys[i] = ok
			ckeys[i] = int64(r.Intn(sz.Customer) + 1)
			od := startDate + int64(r.Intn(int(endDate-startDate-121)))
			dates[i] = od
			prios[i] = priorities[r.Intn(len(priorities))]
			ships[i] = 0
			total := 0.0
			nl := r.Intn(7) + 1
			allF, allO := true, true
			for ln := 0; ln < nl; ln++ {
				pk := int64(r.Intn(sz.Part) + 1)
				sk := (pk+int64(r.Intn(4))*int64(sz.Supplier/4+1))%int64(sz.Supplier) + 1
				qty := float64(r.Intn(50) + 1)
				price := qty * (900 + float64(pk%200000)/10) / 10
				disc := float64(r.Intn(11)) / 100
				tax := float64(r.Intn(9)) / 100
				ship := od + int64(r.Intn(121)+1)
				commit := od + int64(r.Intn(91)+30)
				rcpt := ship + int64(r.Intn(30)+1)
				flag := "N"
				if rcpt <= day("1995-06-17") {
					if r.Intn(2) == 0 {
						flag = "R"
					} else {
						flag = "A"
					}
				}
				stat := "O"
				if ship <= day("1995-06-17") {
					stat = "F"
				}
				if stat == "F" {
					allO = false
				} else {
					allF = false
				}
				lok = append(lok, ok)
				lpk = append(lpk, pk)
				lsk = append(lsk, sk)
				lln = append(lln, int64(ln+1))
				lqty = append(lqty, qty)
				lprice = append(lprice, price)
				ldisc = append(ldisc, disc)
				ltax = append(ltax, tax)
				lflag = append(lflag, flag)
				lstat = append(lstat, stat)
				lship = append(lship, ship)
				lcommit = append(lcommit, commit)
				lrcpt = append(lrcpt, rcpt)
				lmode = append(lmode, shipmodes[r.Intn(len(shipmodes))])
				total += price * (1 - disc) * (1 + tax)
			}
			totals[i] = total
			switch {
			case allF:
				status[i] = "F"
			case allO:
				status[i] = "O"
			default:
				status[i] = "P"
			}
		}
		if err := tables["orders"].SetColumnData(map[string]interface{}{
			"o_orderkey": okeys, "o_custkey": ckeys, "o_orderstatus": status,
			"o_totalprice": totals, "o_orderdate": dates, "o_orderpriority": prios,
			"o_shippriority": ships,
		}); err != nil {
			return sz, err
		}
		if err := tables["lineitem"].SetColumnData(map[string]interface{}{
			"l_orderkey": lok, "l_partkey": lpk, "l_suppkey": lsk, "l_linenumber": lln,
			"l_quantity": lqty, "l_extendedprice": lprice, "l_discount": ldisc, "l_tax": ltax,
			"l_returnflag": lflag, "l_linestatus": lstat, "l_shipdate": lship,
			"l_commitdate": lcommit, "l_receiptdate": lrcpt, "l_shipmode": lmode,
		}); err != nil {
			return sz, err
		}
		sz.Lineitem = len(lok)
	}
	return sz, nil
}
