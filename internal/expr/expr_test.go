package expr

import (
	"testing"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// fixture builds a small lineitem-like table and freezes the catalog.
func fixture(t *testing.T) *Binding {
	t.Helper()
	cat := storage.NewCatalog()
	tab, err := cat.Create(storage.Schema{
		Name: "l",
		Cols: []storage.ColumnDef{
			{Name: "l_orderkey", Kind: storage.Int64, Role: storage.Key, Domain: "orderkey"},
			{Name: "l_quantity", Kind: storage.Float64, Role: storage.Annotation},
			{Name: "l_extendedprice", Kind: storage.Float64, Role: storage.Annotation},
			{Name: "l_discount", Kind: storage.Float64, Role: storage.Annotation},
			{Name: "l_shipdate", Kind: storage.Date, Role: storage.Annotation},
			{Name: "l_returnflag", Kind: storage.String, Role: storage.Annotation},
			{Name: "l_comment", Kind: storage.String, Role: storage.Annotation},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		ok    int64
		qty   float64
		price float64
		disc  float64
		ship  string
		flag  string
		com   string
	}{
		{1, 10, 100, 0.05, "1994-03-01", "R", "the green grass"},
		{1, 20, 200, 0.10, "1995-06-15", "N", "red metal"},
		{2, 24, 300, 0.06, "1994-12-31", "A", "greenish hue"},
		{3, 5, 50, 0.00, "1996-01-01", "R", "plain"},
	}
	for _, r := range rows {
		if err := tab.AppendRow(r.ok, r.qty, r.price, r.disc, r.ship, r.flag, r.com); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	return &Binding{Alias: "l", Table: tab}
}

func whereOf(t *testing.T, src string) sqlparse.Expr {
	t.Helper()
	q, err := sqlparse.Parse("SELECT x FROM l WHERE " + src)
	if err != nil {
		t.Fatal(err)
	}
	return q.Where
}

func selectOf(t *testing.T, src string) sqlparse.Expr {
	t.Helper()
	q, err := sqlparse.Parse("SELECT " + src + " FROM l")
	if err != nil {
		t.Fatal(err)
	}
	return q.Select[0].Expr
}

func evalFilter(t *testing.T, b *Binding, src string) []bool {
	t.Helper()
	f, err := CompileFilter(whereOf(t, src), b)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	out := make([]bool, b.Table.NumRows)
	for i := range out {
		out[i] = f(int32(i))
	}
	return out
}

func eq(t *testing.T, got, want []bool, label string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: row %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestNumericComparisons(t *testing.T) {
	b := fixture(t)
	eq(t, evalFilter(t, b, "l_quantity < 24"), []bool{true, true, false, true}, "<")
	eq(t, evalFilter(t, b, "l_quantity >= 20"), []bool{false, true, true, false}, ">=")
	eq(t, evalFilter(t, b, "l_quantity = 5"), []bool{false, false, false, true}, "=")
	eq(t, evalFilter(t, b, "l_quantity <> 5"), []bool{true, true, true, false}, "<>")
}

func TestDateComparisons(t *testing.T) {
	b := fixture(t)
	eq(t, evalFilter(t, b, "l_shipdate >= date '1994-01-01' and l_shipdate < date '1994-01-01' + interval '1' year"),
		[]bool{true, false, true, false}, "date range")
}

func TestBetween(t *testing.T) {
	b := fixture(t)
	eq(t, evalFilter(t, b, "l_discount between 0.06 - 0.01 and 0.06 + 0.01"),
		[]bool{true, false, true, false}, "between")
	eq(t, evalFilter(t, b, "l_quantity not between 6 and 30"),
		[]bool{false, false, false, true}, "not between")
}

func TestStringPredicates(t *testing.T) {
	b := fixture(t)
	eq(t, evalFilter(t, b, "l_returnflag = 'R'"), []bool{true, false, false, true}, "str =")
	eq(t, evalFilter(t, b, "'R' = l_returnflag"), []bool{true, false, false, true}, "flipped str =")
	eq(t, evalFilter(t, b, "l_returnflag <> 'R'"), []bool{false, true, true, false}, "str <>")
	eq(t, evalFilter(t, b, "l_returnflag >= 'N'"), []bool{true, true, false, true}, "str >=")
	eq(t, evalFilter(t, b, "'N' >= l_returnflag"), []bool{false, true, true, false}, "str flipped >=")
}

func TestLike(t *testing.T) {
	b := fixture(t)
	eq(t, evalFilter(t, b, "l_comment like '%green%'"), []bool{true, false, true, false}, "contains")
	eq(t, evalFilter(t, b, "l_comment not like '%green%'"), []bool{false, true, false, true}, "not contains")
	eq(t, evalFilter(t, b, "l_comment like 'red%'"), []bool{false, true, false, false}, "prefix")
	eq(t, evalFilter(t, b, "l_comment like '%metal'"), []bool{false, true, false, false}, "suffix")
	eq(t, evalFilter(t, b, "l_comment like 'plain'"), []bool{false, false, false, true}, "exact")
	eq(t, evalFilter(t, b, "l_comment like 'the_green%'"), []bool{true, false, false, false}, "underscore")
}

func TestLikeMatchGeneral(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"abcdef", "a%c%f", true},
		{"abcdef", "a%x%f", false},
		{"abc", "___", true},
		{"abc", "__", false},
		{"", "%", true},
		{"", "_", false},
		{"green grass", "%gr%gr%", true},
		{"aaa", "%a", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestInList(t *testing.T) {
	b := fixture(t)
	eq(t, evalFilter(t, b, "l_quantity in (5, 24)"), []bool{false, false, true, true}, "num in")
	eq(t, evalFilter(t, b, "l_returnflag in ('R', 'A')"), []bool{true, false, true, true}, "str in")
	eq(t, evalFilter(t, b, "l_returnflag not in ('R', 'A')"), []bool{false, true, false, false}, "str not in")
}

func TestAndOrNot(t *testing.T) {
	b := fixture(t)
	eq(t, evalFilter(t, b, "l_quantity > 5 and l_returnflag = 'R'"), []bool{true, false, false, false}, "and")
	eq(t, evalFilter(t, b, "l_quantity = 5 or l_returnflag = 'N'"), []bool{false, true, false, true}, "or")
	eq(t, evalFilter(t, b, "not l_returnflag = 'R'"), []bool{false, true, true, false}, "not")
}

func TestValueExpressions(t *testing.T) {
	b := fixture(t)
	v, err := CompileValue(selectOf(t, "l_extendedprice * (1 - l_discount)"), b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{95, 180, 282, 50}
	for i, w := range want {
		if got := v(int32(i)); got != w {
			t.Errorf("row %d = %v, want %v", i, got, w)
		}
	}
}

func TestKeyColumnInValue(t *testing.T) {
	b := fixture(t)
	v, err := CompileValue(selectOf(t, "l_orderkey * 10"), b)
	if err != nil {
		t.Fatal(err)
	}
	if v(2) != 20 {
		t.Errorf("key value = %v, want 20", v(2))
	}
}

func TestCaseExpression(t *testing.T) {
	b := fixture(t)
	v, err := CompileValue(selectOf(t, "case when l_returnflag = 'R' then l_quantity else 0 end"), b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 0, 0, 5}
	for i, w := range want {
		if got := v(int32(i)); got != w {
			t.Errorf("case row %d = %v, want %v", i, got, w)
		}
	}
	// No else → 0.
	v2, err := CompileValue(selectOf(t, "case when l_quantity > 100 then 1 end"), b)
	if err != nil {
		t.Fatal(err)
	}
	if v2(0) != 0 {
		t.Error("missing ELSE should evaluate to 0")
	}
}

func TestExtractInValue(t *testing.T) {
	b := fixture(t)
	v, err := CompileValue(selectOf(t, "extract(year from l_shipdate)"), b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1994, 1995, 1994, 1996}
	for i, w := range want {
		if got := v(int32(i)); got != w {
			t.Errorf("year row %d = %v, want %v", i, got, w)
		}
	}
}

func TestBooleanInNumericContext(t *testing.T) {
	b := fixture(t)
	v, err := CompileValue(selectOf(t, "l_quantity * (l_returnflag = 'R')"), b)
	if err != nil {
		t.Fatal(err)
	}
	if v(0) != 10 || v(1) != 0 {
		t.Errorf("indicator product = %v, %v", v(0), v(1))
	}
}

func TestCompileErrors(t *testing.T) {
	b := fixture(t)
	bad := []string{
		"zzz = 1",                  // unknown column
		"l_returnflag = 1",         // string col vs number → numeric ctx error
		"l_comment like l_comment", // LIKE without literal handled by parser, this is col-like-col
	}
	_ = bad
	if _, err := CompileFilter(whereOf(t, "zzz = 1"), b); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := CompileFilter(whereOf(t, "l_returnflag + 1 > 0"), b); err == nil {
		t.Error("string in arithmetic should error")
	}
	if _, err := CompileValue(selectOf(t, "l_comment"), b); err == nil {
		t.Error("string column in numeric context should error")
	}
	if _, err := CompileFilter(whereOf(t, "l_quantity in (l_discount)"), b); err == nil {
		t.Error("non-literal IN should error")
	}
}

func TestQualifierMismatch(t *testing.T) {
	b := fixture(t)
	q, err := sqlparse.Parse("SELECT x FROM l WHERE other.l_quantity = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileFilter(q.Where, b); err == nil {
		t.Error("foreign qualifier should not resolve")
	}
}

func TestStringPredicateOnKeyColumn(t *testing.T) {
	// String predicates on a string-typed KEY column go through the
	// shared domain dictionary rather than per-column codes.
	cat := storage.NewCatalog()
	tab, err := cat.Create(storage.Schema{
		Name: "ev",
		Cols: []storage.ColumnDef{
			{Name: "name", Kind: storage.String, Role: storage.Key, Domain: "names"},
			{Name: "x", Kind: storage.Float64, Role: storage.Annotation},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = tab.AppendRow("carol", 1.0)
	_ = tab.AppendRow("alice", 2.0)
	_ = tab.AppendRow("bob", 3.0)
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	b := &Binding{Alias: "ev", Table: tab}
	q, err := sqlparse.Parse("SELECT x FROM ev WHERE name >= 'b'")
	if err != nil {
		t.Fatal(err)
	}
	f, err := CompileFilter(q.Where, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true} // carol, alice, bob
	for i, w := range want {
		if f(int32(i)) != w {
			t.Fatalf("row %d = %v, want %v", i, f(int32(i)), w)
		}
	}
}
