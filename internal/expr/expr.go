// Package expr compiles the scalar sub-expressions of a SQL query into
// closures over a single relation's columnar buffers. The planner uses
// it for (1) per-row filter predicates applied while a query trie is
// built and (2) per-row annotation value expressions (paper §IV-A rule
// 3, e.g. l_extendedprice * (1 - l_discount)).
//
// String predicates are evaluated once per dictionary entry rather than
// once per row: the compiler materializes a boolean table indexed by the
// column's order-preserving codes, so LIKE '%green%' costs one regexp
// -free scan of the dictionary, not of the data.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Filter is a compiled row predicate.
type Filter func(row int32) bool

// Value is a compiled numeric row expression. Dates evaluate to their
// day count; booleans to 0/1.
type Value func(row int32) float64

// Binding resolves column names for one relation occurrence.
type Binding struct {
	// Alias is the relation's FROM alias (qualifier match).
	Alias string
	// Table supplies the columns.
	Table *storage.Table
}

// colFor resolves a column reference against the binding, nil if the
// reference belongs to another relation.
func (b *Binding) colFor(c sqlparse.ColRef) *storage.Column {
	if c.Qualifier != "" && c.Qualifier != b.Alias {
		return nil
	}
	return b.Table.Col(c.Name)
}

// CompileFilter compiles a boolean expression into a Filter. Every
// column referenced must resolve within the binding.
func CompileFilter(e sqlparse.Expr, b *Binding) (Filter, error) {
	c := &compiler{b: b}
	f, err := c.compileBool(e)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// CompileValue compiles a numeric expression into a Value.
func CompileValue(e sqlparse.Expr, b *Binding) (Value, error) {
	c := &compiler{b: b}
	return c.compileNum(e)
}

type compiler struct {
	b *Binding
}

func (c *compiler) compileBool(e sqlparse.Expr) (Filter, error) {
	switch v := e.(type) {
	case sqlparse.BinaryExpr:
		switch v.Op {
		case "and":
			l, err := c.compileBool(v.L)
			if err != nil {
				return nil, err
			}
			r, err := c.compileBool(v.R)
			if err != nil {
				return nil, err
			}
			return func(row int32) bool { return l(row) && r(row) }, nil
		case "or":
			l, err := c.compileBool(v.L)
			if err != nil {
				return nil, err
			}
			r, err := c.compileBool(v.R)
			if err != nil {
				return nil, err
			}
			return func(row int32) bool { return l(row) || r(row) }, nil
		case "=", "<>", "<", "<=", ">", ">=":
			return c.compileComparison(v)
		default:
			return nil, fmt.Errorf("expr: %q is not a boolean operator", v.Op)
		}
	case sqlparse.UnaryExpr:
		if v.Op == "not" {
			f, err := c.compileBool(v.X)
			if err != nil {
				return nil, err
			}
			return func(row int32) bool { return !f(row) }, nil
		}
		return nil, fmt.Errorf("expr: unary %q is not boolean", v.Op)
	case sqlparse.BetweenExpr:
		x, err := c.compileNum(v.X)
		if err != nil {
			return nil, err
		}
		lo, err := c.compileNum(v.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.compileNum(v.Hi)
		if err != nil {
			return nil, err
		}
		if v.Negate {
			return func(row int32) bool {
				xv := x(row)
				return xv < lo(row) || xv > hi(row)
			}, nil
		}
		return func(row int32) bool {
			xv := x(row)
			return xv >= lo(row) && xv <= hi(row)
		}, nil
	case sqlparse.InExpr:
		return c.compileIn(v)
	case sqlparse.LikeExpr:
		return c.compileLike(v)
	default:
		return nil, fmt.Errorf("expr: %T is not a boolean expression", e)
	}
}

// compileComparison handles numeric–numeric and string-column–literal
// comparisons.
func (c *compiler) compileComparison(v sqlparse.BinaryExpr) (Filter, error) {
	// String comparison path: a string column against a string literal
	// (either side).
	if f, ok, err := c.tryStringComparison(v); err != nil || ok {
		return f, err
	}
	l, err := c.compileNum(v.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compileNum(v.R)
	if err != nil {
		return nil, err
	}
	switch v.Op {
	case "=":
		return func(row int32) bool { return l(row) == r(row) }, nil
	case "<>":
		return func(row int32) bool { return l(row) != r(row) }, nil
	case "<":
		return func(row int32) bool { return l(row) < r(row) }, nil
	case "<=":
		return func(row int32) bool { return l(row) <= r(row) }, nil
	case ">":
		return func(row int32) bool { return l(row) > r(row) }, nil
	case ">=":
		return func(row int32) bool { return l(row) >= r(row) }, nil
	}
	return nil, fmt.Errorf("expr: bad comparison %q", v.Op)
}

func (c *compiler) tryStringComparison(v sqlparse.BinaryExpr) (Filter, bool, error) {
	colRef, lit, op := sqlparse.ColRef{}, "", v.Op
	switch l := v.L.(type) {
	case sqlparse.ColRef:
		if r, ok := v.R.(sqlparse.StringLit); ok {
			colRef, lit = l, r.Val
		} else {
			return nil, false, nil
		}
	case sqlparse.StringLit:
		if r, ok := v.R.(sqlparse.ColRef); ok {
			colRef, lit = r, l.Val
			op = flipOp(op)
		} else {
			return nil, false, nil
		}
	default:
		return nil, false, nil
	}
	col := c.b.colFor(colRef)
	if col == nil {
		return nil, false, fmt.Errorf("expr: unknown column %s", colRef)
	}
	if col.Def.Kind != storage.String {
		return nil, false, fmt.Errorf("expr: column %s is not a string", colRef)
	}
	table, err := stringPredTable(col, func(s string) bool {
		switch op {
		case "=":
			return s == lit
		case "<>":
			return s != lit
		case "<":
			return s < lit
		case "<=":
			return s <= lit
		case ">":
			return s > lit
		case ">=":
			return s >= lit
		}
		return false
	})
	if err != nil {
		return nil, false, err
	}
	codes := col.AnnCodes()
	if codes == nil {
		// Key column of string kind: domain codes index a (possibly
		// larger) shared dictionary, but the table above was sized to it
		// via Dict(), so the same lookup applies.
		codes = col.KeyCodes()
	}
	return func(row int32) bool { return table[codes[row]] }, true, nil
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// stringPredTable evaluates pred once per distinct dictionary value.
func stringPredTable(col *storage.Column, pred func(string) bool) ([]bool, error) {
	d := col.Dict()
	if d == nil {
		return nil, fmt.Errorf("expr: column %s has no dictionary (catalog not frozen?)", col.Def.Name)
	}
	table := make([]bool, d.Len())
	for i := range table {
		table[i] = pred(d.DecodeString(uint32(i)))
	}
	return table, nil
}

func (c *compiler) compileIn(v sqlparse.InExpr) (Filter, error) {
	// String IN-list on a string column.
	if cr, ok := v.X.(sqlparse.ColRef); ok {
		if col := c.b.colFor(cr); col != nil && col.Def.Kind == storage.String {
			lits := map[string]bool{}
			for _, e := range v.Vals {
				sl, ok := e.(sqlparse.StringLit)
				if !ok {
					return nil, fmt.Errorf("expr: IN list on string column %s requires string literals", cr)
				}
				lits[sl.Val] = true
			}
			table, err := stringPredTable(col, func(s string) bool { return lits[s] != v.Negate })
			if err != nil {
				return nil, err
			}
			codes := col.AnnCodes()
			if codes == nil {
				// Key column: domain codes index the shared dictionary the
				// predicate table above was sized to.
				codes = col.KeyCodes()
			}
			return func(row int32) bool { return table[codes[row]] }, nil
		}
	}
	x, err := c.compileNum(v.X)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(v.Vals))
	for i, e := range v.Vals {
		f, err := c.compileNum(e)
		if err != nil {
			return nil, err
		}
		vals[i] = f(0) // literals only; row-independent
		if !isConst(e) {
			return nil, fmt.Errorf("expr: IN list requires literals")
		}
	}
	neg := v.Negate
	return func(row int32) bool {
		xv := x(row)
		for _, val := range vals {
			if xv == val {
				return !neg
			}
		}
		return neg
	}, nil
}

func isConst(e sqlparse.Expr) bool {
	switch v := e.(type) {
	case sqlparse.NumberLit, sqlparse.StringLit, sqlparse.DateLit:
		return true
	case sqlparse.UnaryExpr:
		return v.Op == "-" && isConst(v.X)
	case sqlparse.BinaryExpr:
		return isConst(v.L) && isConst(v.R)
	}
	return false
}

func (c *compiler) compileLike(v sqlparse.LikeExpr) (Filter, error) {
	cr, ok := v.X.(sqlparse.ColRef)
	if !ok {
		return nil, fmt.Errorf("expr: LIKE requires a column reference")
	}
	col := c.b.colFor(cr)
	if col == nil {
		return nil, fmt.Errorf("expr: unknown column %s", cr)
	}
	if col.Def.Kind != storage.String {
		return nil, fmt.Errorf("expr: LIKE on non-string column %s", cr)
	}
	m := compileLikePattern(v.Pattern)
	table, err := stringPredTable(col, func(s string) bool { return m(s) != v.Negate })
	if err != nil {
		return nil, err
	}
	codes := col.AnnCodes()
	if codes == nil {
		// Key column: domain codes index the shared dictionary the
		// predicate table above was sized to.
		codes = col.KeyCodes()
	}
	return func(row int32) bool { return table[codes[row]] }, nil
}

// compileLikePattern builds a matcher for SQL LIKE with % and _.
func compileLikePattern(pat string) func(string) bool {
	// Fast paths for the common shapes.
	if !strings.ContainsAny(pat, "%_") {
		return func(s string) bool { return s == pat }
	}
	if strings.Count(pat, "%") == 2 && strings.HasPrefix(pat, "%") && strings.HasSuffix(pat, "%") {
		inner := pat[1 : len(pat)-1]
		if !strings.ContainsAny(inner, "%_") {
			return func(s string) bool { return strings.Contains(s, inner) }
		}
	}
	if strings.Count(pat, "%") == 1 && strings.HasSuffix(pat, "%") && !strings.Contains(pat, "_") {
		prefix := pat[:len(pat)-1]
		return func(s string) bool { return strings.HasPrefix(s, prefix) }
	}
	if strings.Count(pat, "%") == 1 && strings.HasPrefix(pat, "%") && !strings.Contains(pat, "_") {
		suffix := pat[1:]
		return func(s string) bool { return strings.HasSuffix(s, suffix) }
	}
	// General greedy matcher with backtracking over %.
	return func(s string) bool { return likeMatch(s, pat) }
}

func likeMatch(s, pat string) bool {
	// Dynamic programming over (s index, pattern index).
	n, m := len(s), len(pat)
	prev := make([]bool, n+1)
	cur := make([]bool, n+1)
	prev[0] = true
	for j := 1; j <= m; j++ {
		p := pat[j-1]
		cur[0] = prev[0] && p == '%'
		for i := 1; i <= n; i++ {
			switch p {
			case '%':
				cur[i] = cur[i-1] || prev[i]
			case '_':
				cur[i] = prev[i-1]
			default:
				cur[i] = prev[i-1] && s[i-1] == p
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// boolAsNum compiles a predicate used in numeric context to 0/1.
func (c *compiler) boolAsNum(e sqlparse.Expr) (Value, error) {
	f, err := c.compileBool(e)
	if err != nil {
		return nil, err
	}
	return func(row int32) float64 {
		if f(row) {
			return 1
		}
		return 0
	}, nil
}

func (c *compiler) compileNum(e sqlparse.Expr) (Value, error) {
	switch v := e.(type) {
	case sqlparse.NumberLit:
		val := v.Val
		return func(int32) float64 { return val }, nil
	case sqlparse.DateLit:
		val := float64(v.Days)
		return func(int32) float64 { return val }, nil
	case sqlparse.ColRef:
		col := c.b.colFor(v)
		if col == nil {
			return nil, fmt.Errorf("expr: unknown column %s", v)
		}
		switch col.Def.Kind {
		case storage.String:
			return nil, fmt.Errorf("expr: string column %s in numeric context", v)
		}
		if col.Def.Role == storage.Key {
			// Keys participate in numeric expressions via raw values.
			ints := col.Ints
			return func(row int32) float64 { return float64(ints[row]) }, nil
		}
		f := col.AnnFloats()
		if f == nil {
			return nil, fmt.Errorf("expr: column %s has no numeric buffer (catalog not frozen?)", v)
		}
		return func(row int32) float64 { return f[row] }, nil
	case sqlparse.BinaryExpr:
		switch v.Op {
		case "+", "-", "*", "/":
			l, err := c.compileNum(v.L)
			if err != nil {
				return nil, err
			}
			r, err := c.compileNum(v.R)
			if err != nil {
				return nil, err
			}
			switch v.Op {
			case "+":
				return func(row int32) float64 { return l(row) + r(row) }, nil
			case "-":
				return func(row int32) float64 { return l(row) - r(row) }, nil
			case "*":
				return func(row int32) float64 { return l(row) * r(row) }, nil
			default:
				return func(row int32) float64 { return l(row) / r(row) }, nil
			}
		default:
			// Boolean in numeric context evaluates to 0/1 (CASE shortcut).
			return c.boolAsNum(v)
		}
	case sqlparse.UnaryExpr:
		if v.Op == "-" {
			x, err := c.compileNum(v.X)
			if err != nil {
				return nil, err
			}
			return func(row int32) float64 { return -x(row) }, nil
		}
		if v.Op == "not" {
			return c.boolAsNum(v)
		}
		return nil, fmt.Errorf("expr: unary %q in numeric context", v.Op)
	case sqlparse.BetweenExpr, sqlparse.InExpr, sqlparse.LikeExpr:
		// Predicate forms in numeric context (e.g. a decomposed CASE
		// condition) evaluate to 0/1 like boolean BinaryExprs do.
		return c.boolAsNum(e)
	case sqlparse.CaseExpr:
		type arm struct {
			cond Filter
			then Value
		}
		arms := make([]arm, len(v.Whens))
		for i, w := range v.Whens {
			cond, err := c.compileBool(w.Cond)
			if err != nil {
				return nil, err
			}
			then, err := c.compileNum(w.Then)
			if err != nil {
				return nil, err
			}
			arms[i] = arm{cond, then}
		}
		var elseV Value = func(int32) float64 { return 0 }
		if v.Else != nil {
			ev, err := c.compileNum(v.Else)
			if err != nil {
				return nil, err
			}
			elseV = ev
		}
		return func(row int32) float64 {
			for _, a := range arms {
				if a.cond(row) {
					return a.then(row)
				}
			}
			return elseV(row)
		}, nil
	case sqlparse.ExtractExpr:
		x, err := c.compileNum(v.X)
		if err != nil {
			return nil, err
		}
		switch v.Unit {
		case "year":
			return func(row int32) float64 { return float64(sqlparse.DateYear(int32(x(row)))) }, nil
		case "month":
			return func(row int32) float64 { return float64(sqlparse.DateMonth(int32(x(row)))) }, nil
		case "day":
			return func(row int32) float64 { return float64(sqlparse.DateDay(int32(x(row)))) }, nil
		}
		return nil, fmt.Errorf("expr: bad EXTRACT unit %q", v.Unit)
	default:
		return nil, fmt.Errorf("expr: unsupported expression %T in numeric context", e)
	}
}
