// Package set implements the two trie-set layouts at the core of the
// LevelHeaded storage engine: a sorted unsigned-integer layout ("uint")
// for sparse sets and a bitset layout ("bs") for dense sets, together
// with the intersection kernels that form the bottleneck operation of
// the generic worst-case optimal join algorithm (paper §III-B, §V-A).
package set

import (
	"fmt"
	"math/bits"
	"sort"
)

// Layout identifies the physical representation of a Set.
type Layout uint8

const (
	// Uint is the sparse layout: sorted distinct uint32 values.
	Uint Layout = iota
	// Bitset is the dense layout: a 64-bit word bitmap with a base offset.
	Bitset
)

// String returns the layout name used in the paper ("uint" / "bs").
func (l Layout) String() string {
	switch l {
	case Uint:
		return "uint"
	case Bitset:
		return "bs"
	default:
		return fmt.Sprintf("Layout(%d)", uint8(l))
	}
}

// DensityThreshold is the minimum fraction card/range at which a set is
// stored as a bitset. EmptyHeaded/LevelHeaded switch to bitsets once a
// set is dense enough that word-parallel AND beats value merging; 1/16
// reproduces the published crossover shape on scalar (non-SIMD) code.
const DensityThreshold = 1.0 / 16.0

// Set is an immutable sorted set of uint32 values in one of two layouts.
//
// The zero value is the empty set (Uint layout, no values).
type Set struct {
	layout Layout
	vals   []uint32 // Uint layout: sorted distinct values
	words  []uint64 // Bitset layout: bitmap words
	base   uint32   // Bitset layout: value of bit 0 of words[0]; multiple of 64
	card   int
	ranks  []int32 // Bitset layout, optional: cumulative popcount before each word
}

// Layout reports the physical layout of s.
func (s *Set) Layout() Layout { return s.layout }

// Card reports the number of elements in s.
func (s *Set) Card() int { return s.card }

// Empty reports whether s has no elements.
func (s *Set) Empty() bool { return s.card == 0 }

// FromSorted builds a set from sorted distinct values. The slice is
// retained; callers must not mutate it afterwards. The layout is chosen
// by density.
func FromSorted(vals []uint32) Set {
	if len(vals) == 0 {
		return Set{}
	}
	span := uint64(vals[len(vals)-1]) - uint64(vals[0]) + 1
	if float64(len(vals)) >= DensityThreshold*float64(span) {
		return bitsetFromSorted(vals)
	}
	return Set{layout: Uint, vals: vals, card: len(vals)}
}

// FromSortedSparse builds a uint-layout set from sorted distinct values
// regardless of density. Used for forcing layouts in microbenchmarks.
func FromSortedSparse(vals []uint32) Set {
	return Set{layout: Uint, vals: vals, card: len(vals)}
}

// FromUnsorted sorts and deduplicates vals (in place) and builds a set.
func FromUnsorted(vals []uint32) Set {
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	vals = dedupSorted(vals)
	return FromSorted(vals)
}

func dedupSorted(vals []uint32) []uint32 {
	if len(vals) < 2 {
		return vals
	}
	w := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[w-1] {
			vals[w] = vals[i]
			w++
		}
	}
	return vals[:w]
}

// bitsetFromSorted builds a Bitset-layout set from sorted distinct values.
func bitsetFromSorted(vals []uint32) Set {
	base := vals[0] &^ 63
	span := vals[len(vals)-1] - base + 1
	nw := int((span + 63) / 64)
	words := make([]uint64, nw)
	for _, v := range vals {
		off := v - base
		words[off>>6] |= 1 << (off & 63)
	}
	return Set{layout: Bitset, words: words, base: base, card: len(vals)}
}

// BitsetFromSorted exposes forced bitset construction for benchmarks and
// the trie builder's dense levels.
func BitsetFromSorted(vals []uint32) Set {
	if len(vals) == 0 {
		return Set{layout: Bitset}
	}
	return bitsetFromSorted(vals)
}

// DenseRange builds the bitset {lo, lo+1, ..., hi-1}. It is the layout
// of a completely dense trie level (e.g. dense matrix row indices), for
// which the optimizer assigns an icost of 0 (paper §V-A1).
func DenseRange(lo, hi uint32) Set {
	if hi <= lo {
		return Set{layout: Bitset}
	}
	base := lo &^ 63
	span := hi - base
	nw := int((span + 63) / 64)
	words := make([]uint64, nw)
	for v := lo; v < hi; v++ {
		off := v - base
		words[off>>6] |= 1 << (off & 63)
	}
	return Set{layout: Bitset, words: words, base: base, card: int(hi - lo)}
}

// Values materializes the elements of s in ascending order.
func (s *Set) Values() []uint32 {
	out := make([]uint32, 0, s.card)
	s.ForEach(func(v uint32) {
		out = append(out, v)
	})
	return out
}

// Contains reports whether v is an element of s.
func (s *Set) Contains(v uint32) bool {
	switch s.layout {
	case Uint:
		i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= v })
		return i < len(s.vals) && s.vals[i] == v
	case Bitset:
		if v < s.base {
			return false
		}
		off := v - s.base
		w := int(off >> 6)
		if w >= len(s.words) {
			return false
		}
		return s.words[w]&(1<<(off&63)) != 0
	}
	return false
}

// Min returns the smallest element. It panics on the empty set.
func (s *Set) Min() uint32 {
	if s.card == 0 {
		panic("set: Min of empty set")
	}
	if s.layout == Uint {
		return s.vals[0]
	}
	for i, w := range s.words {
		if w != 0 {
			return s.base + uint32(i<<6) + uint32(bits.TrailingZeros64(w))
		}
	}
	panic("set: corrupt bitset")
}

// Max returns the largest element. It panics on the empty set.
func (s *Set) Max() uint32 {
	if s.card == 0 {
		panic("set: Max of empty set")
	}
	if s.layout == Uint {
		return s.vals[len(s.vals)-1]
	}
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return s.base + uint32(i<<6) + uint32(63-bits.LeadingZeros64(w))
		}
	}
	panic("set: corrupt bitset")
}

// ForEach calls f for every element in ascending order.
func (s *Set) ForEach(f func(v uint32)) {
	switch s.layout {
	case Uint:
		for _, v := range s.vals {
			f(v)
		}
	case Bitset:
		for i, w := range s.words {
			hi := s.base + uint32(i<<6)
			for w != 0 {
				f(hi + uint32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	}
}

// ForEachIndexed calls f(rank, value) for every element in ascending
// order, where rank is the element's 0-based position. Trie traversal
// uses the rank to locate child sets at the next level.
func (s *Set) ForEachIndexed(f func(i int, v uint32)) {
	switch s.layout {
	case Uint:
		for i, v := range s.vals {
			f(i, v)
		}
	case Bitset:
		n := 0
		for i, w := range s.words {
			hi := s.base + uint32(i<<6)
			for w != 0 {
				f(n, hi+uint32(bits.TrailingZeros64(w)))
				n++
				w &= w - 1
			}
		}
	}
}

// ForEachUntil calls f for every element in ascending order until f
// returns false. It reports whether iteration ran to completion.
func (s *Set) ForEachUntil(f func(v uint32) bool) bool {
	switch s.layout {
	case Uint:
		for _, v := range s.vals {
			if !f(v) {
				return false
			}
		}
	case Bitset:
		for i, w := range s.words {
			hi := s.base + uint32(i<<6)
			for w != 0 {
				if !f(hi + uint32(bits.TrailingZeros64(w))) {
					return false
				}
				w &= w - 1
			}
		}
	}
	return true
}

// BuildRankIndex precomputes per-word cumulative popcounts so Rank runs
// in O(1) on bitsets. It is a no-op for uint sets.
func (s *Set) BuildRankIndex() {
	if s.layout != Bitset || s.ranks != nil {
		return
	}
	ranks := make([]int32, len(s.words))
	var run int32
	for i, w := range s.words {
		ranks[i] = run
		run += int32(bits.OnesCount64(w))
	}
	s.ranks = ranks
}

// Rank returns the 0-based position of v in s, or -1 if v is not an
// element. For bitsets without a rank index it is O(words).
func (s *Set) Rank(v uint32) int {
	switch s.layout {
	case Uint:
		i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= v })
		if i < len(s.vals) && s.vals[i] == v {
			return i
		}
		return -1
	case Bitset:
		if v < s.base {
			return -1
		}
		off := v - s.base
		wi := int(off >> 6)
		if wi >= len(s.words) {
			return -1
		}
		bit := uint64(1) << (off & 63)
		if s.words[wi]&bit == 0 {
			return -1
		}
		below := bits.OnesCount64(s.words[wi] & (bit - 1))
		if s.ranks != nil {
			return int(s.ranks[wi]) + below
		}
		r := 0
		for i := 0; i < wi; i++ {
			r += bits.OnesCount64(s.words[i])
		}
		return r + below
	}
	return -1
}

// Select returns the element at 0-based rank i. It panics if i is out of
// range.
func (s *Set) Select(i int) uint32 {
	if i < 0 || i >= s.card {
		panic(fmt.Sprintf("set: Select(%d) out of range [0,%d)", i, s.card))
	}
	if s.layout == Uint {
		return s.vals[i]
	}
	if s.ranks != nil {
		// Binary search the word whose cumulative rank covers i.
		lo, hi := 0, len(s.ranks)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if int(s.ranks[mid]) <= i {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		w := s.words[lo]
		rem := i - int(s.ranks[lo])
		for ; rem > 0; rem-- {
			w &= w - 1
		}
		return s.base + uint32(lo<<6) + uint32(bits.TrailingZeros64(w))
	}
	n := 0
	for wi, w := range s.words {
		c := bits.OnesCount64(w)
		if n+c > i {
			rem := i - n
			for ; rem > 0; rem-- {
				w &= w - 1
			}
			return s.base + uint32(wi<<6) + uint32(bits.TrailingZeros64(w))
		}
		n += c
	}
	panic("set: corrupt set in Select")
}

// MemBytes estimates the heap bytes held by the set's payload.
func (s *Set) MemBytes() int {
	return len(s.vals)*4 + len(s.words)*8 + len(s.ranks)*4
}

// Uints exposes the sorted value slice of a uint-layout set, letting
// hot loops iterate without per-element closure calls. ok is false for
// bitsets (use ForEach / ForEachIndexed there).
func (s *Set) Uints() ([]uint32, bool) {
	if s.layout != Uint {
		return nil, false
	}
	return s.vals, true
}
