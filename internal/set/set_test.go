package set

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func sortedUnique(vals []uint32) []uint32 {
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return dedupSorted(vals)
}

func refIntersect(a, b []uint32) []uint32 {
	m := make(map[uint32]bool, len(a))
	for _, v := range a {
		m[v] = true
	}
	out := []uint32{}
	for _, v := range b {
		if m[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func randomVals(r *rand.Rand, n int, span uint32) []uint32 {
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(r.Int63n(int64(span)))
	}
	return sortedUnique(vals)
}

func TestLayoutSelection(t *testing.T) {
	sparse := FromSorted([]uint32{0, 1000, 2000, 3000})
	if sparse.Layout() != Uint {
		t.Errorf("sparse set got layout %v, want uint", sparse.Layout())
	}
	denseVals := make([]uint32, 100)
	for i := range denseVals {
		denseVals[i] = uint32(i * 2)
	}
	dense := FromSorted(denseVals)
	if dense.Layout() != Bitset {
		t.Errorf("dense set got layout %v, want bs", dense.Layout())
	}
}

func TestEmptySet(t *testing.T) {
	var s Set
	if !s.Empty() || s.Card() != 0 {
		t.Fatal("zero Set should be empty")
	}
	if s.Contains(0) {
		t.Error("empty set should not contain 0")
	}
	if got := s.Values(); len(got) != 0 {
		t.Errorf("empty set Values = %v", got)
	}
	e := FromSorted(nil)
	if !e.Empty() {
		t.Error("FromSorted(nil) should be empty")
	}
}

func TestValuesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		vals := randomVals(r, 1+r.Intn(500), 1+uint32(r.Intn(100000)))
		for _, s := range []Set{FromSorted(append([]uint32(nil), vals...)), FromSortedSparse(vals), BitsetFromSorted(vals)} {
			if got := s.Values(); !reflect.DeepEqual(got, vals) {
				t.Fatalf("layout %v: Values = %v, want %v", s.Layout(), got, vals)
			}
			if s.Card() != len(vals) {
				t.Fatalf("layout %v: Card = %d, want %d", s.Layout(), s.Card(), len(vals))
			}
		}
	}
}

func TestContainsRankSelect(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	vals := randomVals(r, 300, 5000)
	for _, s := range []Set{FromSortedSparse(vals), BitsetFromSorted(vals)} {
		s := s
		s.BuildRankIndex()
		for i, v := range vals {
			if !s.Contains(v) {
				t.Fatalf("layout %v: missing %d", s.Layout(), v)
			}
			if got := s.Rank(v); got != i {
				t.Fatalf("layout %v: Rank(%d) = %d, want %d", s.Layout(), v, got, i)
			}
			if got := s.Select(i); got != v {
				t.Fatalf("layout %v: Select(%d) = %d, want %d", s.Layout(), i, got, v)
			}
		}
		// Probe absent values.
		absent := 0
		for v := uint32(0); v < 5000 && absent < 50; v++ {
			if s.Contains(v) {
				continue
			}
			absent++
			if got := s.Rank(v); got != -1 {
				t.Fatalf("layout %v: Rank(absent %d) = %d, want -1", s.Layout(), v, got)
			}
		}
	}
}

func TestMinMax(t *testing.T) {
	vals := []uint32{7, 100, 65, 9000}
	for _, s := range []Set{FromSortedSparse(sortedUnique(vals)), BitsetFromSorted(sortedUnique(vals))} {
		if s.Min() != 7 {
			t.Errorf("layout %v: Min = %d", s.Layout(), s.Min())
		}
		if s.Max() != 9000 {
			t.Errorf("layout %v: Max = %d", s.Layout(), s.Max())
		}
	}
}

func TestDenseRange(t *testing.T) {
	s := DenseRange(10, 200)
	if s.Card() != 190 {
		t.Fatalf("Card = %d, want 190", s.Card())
	}
	if s.Layout() != Bitset {
		t.Fatal("DenseRange should be a bitset")
	}
	if s.Contains(9) || !s.Contains(10) || !s.Contains(199) || s.Contains(200) {
		t.Error("DenseRange membership wrong at boundaries")
	}
	if e := DenseRange(5, 5); !e.Empty() {
		t.Error("DenseRange(5,5) should be empty")
	}
}

func TestForEachIndexed(t *testing.T) {
	vals := []uint32{3, 64, 65, 127, 128, 9000}
	for _, s := range []Set{FromSortedSparse(vals), BitsetFromSorted(vals)} {
		var idx []int
		var got []uint32
		s.ForEachIndexed(func(i int, v uint32) {
			idx = append(idx, i)
			got = append(got, v)
		})
		if !reflect.DeepEqual(got, vals) {
			t.Fatalf("layout %v: values %v", s.Layout(), got)
		}
		for i, x := range idx {
			if x != i {
				t.Fatalf("layout %v: index %d at position %d", s.Layout(), x, i)
			}
		}
	}
}

func TestForEachUntilEarlyExit(t *testing.T) {
	vals := []uint32{1, 2, 3, 4, 5}
	for _, s := range []Set{FromSortedSparse(vals), BitsetFromSorted(vals)} {
		n := 0
		done := s.ForEachUntil(func(v uint32) bool {
			n++
			return v < 3
		})
		if done {
			t.Errorf("layout %v: expected early exit", s.Layout())
		}
		if n != 3 {
			t.Errorf("layout %v: visited %d elements, want 3", s.Layout(), n)
		}
	}
}

func TestIntersectAllLayoutPairs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		a := randomVals(r, 1+r.Intn(400), 1+uint32(r.Intn(4000)))
		b := randomVals(r, 1+r.Intn(400), 1+uint32(r.Intn(4000)))
		want := refIntersect(a, b)
		layouts := []func([]uint32) Set{
			func(v []uint32) Set { return FromSortedSparse(v) },
			func(v []uint32) Set { return BitsetFromSorted(v) },
		}
		for _, la := range layouts {
			for _, lb := range layouts {
				sa, sb := la(a), lb(b)
				got := Intersect(&sa, &sb)
				gv := got.Values()
				if len(gv) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(gv, want) {
					t.Fatalf("%v ∩ %v = %v, want %v", sa.Layout(), sb.Layout(), gv, want)
				}
			}
		}
	}
}

func TestIntersectGallopPath(t *testing.T) {
	// Force the galloping branch: tiny small side, huge large side.
	small := []uint32{5, 100000, 250000, 999999}
	large := make([]uint32, 0, 500000)
	for v := uint32(0); v < 1000000; v += 2 {
		large = append(large, v)
	}
	sa, sb := FromSortedSparse(small), FromSortedSparse(large)
	res := Intersect(&sa, &sb)
	got := res.Values()
	want := []uint32{100000, 250000}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("gallop intersect = %v, want %v", got, want)
	}
}

func TestIntersectDisjointWindows(t *testing.T) {
	a := BitsetFromSorted([]uint32{0, 1, 2, 3})
	b := BitsetFromSorted([]uint32{1000, 1001, 1002})
	if got := Intersect(&a, &b); !got.Empty() {
		t.Errorf("disjoint bs∩bs = %v", got.Values())
	}
	u := FromSortedSparse([]uint32{500, 600})
	if got := Intersect(&a, &u); !got.Empty() {
		t.Errorf("disjoint bs∩uint = %v", got.Values())
	}
}

func TestIntersectMany(t *testing.T) {
	a := FromSorted([]uint32{1, 2, 3, 4, 5, 6, 7, 8})
	b := FromSortedSparse([]uint32{2, 4, 6, 8, 100})
	c := BitsetFromSorted([]uint32{4, 6, 8, 9})
	var b1, b2 Buffer
	res := IntersectMany(&b1, &b2, []*Set{&a, &b, &c})
	got := res.Values()
	want := []uint32{4, 6, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("IntersectMany = %v, want %v", got, want)
	}
	one := IntersectMany(&b1, &b2, []*Set{&a})
	if one.Card() != a.Card() {
		t.Error("IntersectMany of one set should be identity")
	}
	if e := IntersectMany(&b1, &b2, nil); !e.Empty() {
		t.Error("IntersectMany of zero sets should be empty")
	}
}

func TestUnionDifference(t *testing.T) {
	a := FromSortedSparse([]uint32{1, 3, 5})
	b := BitsetFromSorted([]uint32{3, 4, 5, 6})
	u := Union(&a, &b)
	if got, want := u.Values(), []uint32{1, 3, 4, 5, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	d := Difference(&a, &b)
	if got, want := d.Values(), []uint32{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Difference = %v, want %v", got, want)
	}
}

func TestEqualAcrossLayouts(t *testing.T) {
	vals := []uint32{2, 9, 17, 4000}
	a := FromSortedSparse(vals)
	b := BitsetFromSorted(vals)
	if !Equal(&a, &b) {
		t.Error("same values across layouts should be Equal")
	}
	c := FromSortedSparse([]uint32{2, 9, 17, 4001})
	if Equal(&a, &c) {
		t.Error("different values should not be Equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	var buf Buffer
	a := FromSortedSparse([]uint32{1, 5, 9})
	b := FromSortedSparse([]uint32{5, 9, 11})
	res := IntersectInto(&buf, &a, &b)
	clone := res.Clone()
	// Reuse the buffer; clone must be unaffected.
	c := FromSortedSparse([]uint32{100, 200})
	d := FromSortedSparse([]uint32{100, 300})
	IntersectInto(&buf, &c, &d)
	if got, want := clone.Values(), []uint32{5, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("clone corrupted by buffer reuse: %v, want %v", got, want)
	}
}

// Property: intersection is commutative, associative-with-Many, and a
// subset of both operands, for arbitrary inputs and both layouts.
func TestIntersectProperties(t *testing.T) {
	f := func(raw1, raw2 []uint32, bs1, bs2 bool) bool {
		a := sortedUnique(append([]uint32(nil), raw1...))
		b := sortedUnique(append([]uint32(nil), raw2...))
		mk := func(v []uint32, bs bool) Set {
			if len(v) == 0 {
				return Set{}
			}
			if bs {
				return BitsetFromSorted(v)
			}
			return FromSortedSparse(v)
		}
		sa, sb := mk(a, bs1), mk(b, bs2)
		ab := Intersect(&sa, &sb)
		ba := Intersect(&sb, &sa)
		if !reflect.DeepEqual(ab.Values(), ba.Values()) {
			return false
		}
		ok := true
		ab.ForEach(func(v uint32) {
			if !sa.Contains(v) || !sb.Contains(v) {
				ok = false
			}
		})
		// Every common element must be present.
		for _, v := range refIntersect(a, b) {
			if !ab.Contains(v) {
				ok = false
			}
		}
		return ok
	}
	cfg := &quick.Config{MaxCount: 200, Values: quickSmallSets}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: union cardinality satisfies inclusion–exclusion.
func TestUnionProperty(t *testing.T) {
	f := func(raw1, raw2 []uint32, bs1, bs2 bool) bool {
		a := sortedUnique(append([]uint32(nil), raw1...))
		b := sortedUnique(append([]uint32(nil), raw2...))
		mk := func(v []uint32, bs bool) Set {
			if len(v) == 0 {
				return Set{}
			}
			if bs {
				return BitsetFromSorted(v)
			}
			return FromSortedSparse(v)
		}
		sa, sb := mk(a, bs1), mk(b, bs2)
		u := Union(&sa, &sb)
		i := Intersect(&sa, &sb)
		return u.Card() == sa.Card()+sb.Card()-i.Card()
	}
	cfg := &quick.Config{MaxCount: 200, Values: quickSmallSets}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// quickSmallSets generates bounded random inputs so bitsets stay small.
func quickSmallSets(args []reflect.Value, r *rand.Rand) {
	for i := 0; i < 2; i++ {
		n := r.Intn(60)
		vals := make([]uint32, n)
		for j := range vals {
			vals[j] = uint32(r.Intn(2000))
		}
		args[i] = reflect.ValueOf(vals)
	}
	args[2] = reflect.ValueOf(r.Intn(2) == 0)
	args[3] = reflect.ValueOf(r.Intn(2) == 0)
}

func TestRankIndexSelectLargeBitset(t *testing.T) {
	vals := make([]uint32, 0, 3000)
	r := rand.New(rand.NewSource(7))
	for v := uint32(0); v < 20000; v++ {
		if r.Intn(7) == 0 {
			vals = append(vals, v)
		}
	}
	s := BitsetFromSorted(vals)
	s.BuildRankIndex()
	for i := 0; i < len(vals); i += 37 {
		if got := s.Select(i); got != vals[i] {
			t.Fatalf("Select(%d) = %d, want %d", i, got, vals[i])
		}
	}
}
