package set

import (
	"math/bits"
	"sort"
)

// gallopThreshold is the size ratio beyond which uint∩uint switches from
// linear merge to galloping (exponential) search from the smaller side.
const gallopThreshold = 32

// Intersect returns a ∩ b, allocating the result.
func Intersect(a, b *Set) Set {
	var buf Buffer
	return IntersectInto(&buf, a, b)
}

// Stats counts intersection-kernel invocations and materialized output
// bytes, broken down by the paper's three kernel cases (§V-A1). A Stats
// value is owned by a single worker and merged at parfor joins, so the
// counters are plain integers: incrementing them costs one predictable
// branch and never allocates or contends.
type Stats struct {
	UintUintMerge  uint64 // uint∩uint linear merge
	UintUintGallop uint64 // uint∩uint galloping search
	BsUint         uint64 // bs∩uint membership probes
	BsBs           uint64 // bs∩bs word AND
	BytesOut       uint64 // bytes materialized into result buffers
}

// Add folds o into s (the parfor-join merge).
func (s *Stats) Add(o *Stats) {
	s.UintUintMerge += o.UintUintMerge
	s.UintUintGallop += o.UintUintGallop
	s.BsUint += o.BsUint
	s.BsBs += o.BsBs
	s.BytesOut += o.BytesOut
}

// Total reports the total number of kernel invocations.
func (s *Stats) Total() uint64 {
	return s.UintUintMerge + s.UintUintGallop + s.BsUint + s.BsBs
}

// Buffer holds reusable scratch storage for intersection results so the
// inner loops of the WCOJ algorithm do not allocate. A Buffer may back
// at most one live Set at a time.
type Buffer struct {
	vals  []uint32
	words []uint64
	// Stat, when non-nil, receives one count per kernel invocation that
	// writes through this buffer. Point it at a per-worker Stats value.
	Stat *Stats
}

// IntersectInto computes a ∩ b into buf's storage and returns the
// resulting set. The returned set aliases buf and is invalidated by the
// next IntersectInto call on the same buffer.
//
// Kernel selection follows the paper's three cases (§V-A1, Fig. 5a):
// bs∩bs (word AND), bs∩uint (membership probes), uint∩uint
// (merge/galloping).
func IntersectInto(buf *Buffer, a, b *Set) Set {
	if a.card == 0 || b.card == 0 {
		return Set{}
	}
	switch {
	case a.layout == Bitset && b.layout == Bitset:
		return intersectBsBs(buf, a, b)
	case a.layout == Bitset && b.layout == Uint:
		return intersectBsUint(buf, a, b)
	case a.layout == Uint && b.layout == Bitset:
		return intersectBsUint(buf, b, a)
	default:
		return intersectUintUint(buf, a, b)
	}
}

func intersectBsBs(buf *Buffer, a, b *Set) Set {
	if buf.Stat != nil {
		buf.Stat.BsBs++
	}
	// Overlap window in value space, aligned to words.
	lo := a.base
	if b.base > lo {
		lo = b.base
	}
	aEnd := a.base + uint32(len(a.words)<<6)
	bEnd := b.base + uint32(len(b.words)<<6)
	hi := aEnd
	if bEnd < hi {
		hi = bEnd
	}
	if hi <= lo {
		return Set{}
	}
	nw := int(hi-lo) >> 6
	if cap(buf.words) < nw {
		buf.words = make([]uint64, nw)
	}
	words := buf.words[:nw]
	aw := a.words[(lo-a.base)>>6:]
	bw := b.words[(lo-b.base)>>6:]
	card := 0
	for i := 0; i < nw; i++ {
		w := aw[i] & bw[i]
		words[i] = w
		card += bits.OnesCount64(w)
	}
	if buf.Stat != nil {
		buf.Stat.BytesOut += uint64(nw) * 8
	}
	if card == 0 {
		return Set{}
	}
	return Set{layout: Bitset, words: words, base: lo, card: card}
}

func intersectBsUint(buf *Buffer, bs, ui *Set) Set {
	if buf.Stat != nil {
		buf.Stat.BsUint++
	}
	if cap(buf.vals) < len(ui.vals) {
		buf.vals = make([]uint32, len(ui.vals))
	}
	out := buf.vals[:0]
	base := bs.base
	end := base + uint32(len(bs.words)<<6)
	// Skip uint values below the bitset window.
	vals := ui.vals
	start := sort.Search(len(vals), func(i int) bool { return vals[i] >= base })
	for _, v := range vals[start:] {
		if v >= end {
			break
		}
		off := v - base
		if bs.words[off>>6]&(1<<(off&63)) != 0 {
			out = append(out, v)
		}
	}
	buf.vals = out[:cap(out)]
	if buf.Stat != nil {
		buf.Stat.BytesOut += uint64(len(out)) * 4
	}
	if len(out) == 0 {
		return Set{}
	}
	return Set{layout: Uint, vals: out, card: len(out)}
}

func intersectUintUint(buf *Buffer, a, b *Set) Set {
	av, bv := a.vals, b.vals
	if len(av) > len(bv) {
		av, bv = bv, av
	}
	n := len(av)
	if cap(buf.vals) < n {
		buf.vals = make([]uint32, n)
	}
	out := buf.vals[:0]
	if len(bv) >= gallopThreshold*len(av) {
		if buf.Stat != nil {
			buf.Stat.UintUintGallop++
		}
		out = gallopIntersect(out, av, bv)
	} else {
		if buf.Stat != nil {
			buf.Stat.UintUintMerge++
		}
		out = mergeIntersect(out, av, bv)
	}
	buf.vals = out[:cap(out)]
	if buf.Stat != nil {
		buf.Stat.BytesOut += uint64(len(out)) * 4
	}
	if len(out) == 0 {
		return Set{}
	}
	return Set{layout: Uint, vals: out, card: len(out)}
}

func mergeIntersect(out, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			out = append(out, x)
			i++
			j++
		}
	}
	return out
}

// gallopIntersect probes each element of the small side into the large
// side with exponential search, advancing a moving lower bound.
func gallopIntersect(out, small, large []uint32) []uint32 {
	lo := 0
	for _, v := range small {
		// Exponential search for the first index >= v.
		hi := lo + 1
		for hi < len(large) && large[hi] < v {
			lo = hi
			hi *= 2
		}
		if hi > len(large) {
			hi = len(large)
		}
		sub := large[lo:hi]
		k := sort.Search(len(sub), func(i int) bool { return sub[i] >= v })
		lo += k
		if lo >= len(large) {
			break
		}
		if large[lo] == v {
			out = append(out, v)
			lo++
		}
	}
	return out
}

// IntersectMany intersects all of ss. The paper's icost model (§V-A1)
// accounts bitsets first; execution orders operands by ascending
// cardinality (bitsets preferred on ties) so the cheapest pair runs
// first and every remaining set — bitsets especially — serves as an
// O(1)-probe filter of an already-small intermediate. The operand slice
// is reordered in place (callers pass scratch), and the result is
// written through buf/buf2 scratch space — this runs in the innermost
// WCOJ loops and must not allocate.
func IntersectMany(buf, buf2 *Buffer, ss []*Set) Set {
	switch len(ss) {
	case 0:
		return Set{}
	case 1:
		return *ss[0]
	}
	// Insertion sort (N is the number of relations on one attribute,
	// almost always ≤ 4).
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && lessSet(ss[j], ss[j-1]); j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
	cur := IntersectInto(buf, ss[0], ss[1])
	for _, s := range ss[2:] {
		if cur.card == 0 {
			return Set{}
		}
		cur = IntersectInto(buf2, &cur, s)
		buf, buf2 = buf2, buf
	}
	return cur
}

func lessSet(a, b *Set) bool {
	if a.card != b.card {
		return a.card < b.card
	}
	return a.layout == Bitset && b.layout != Bitset
}

// Union returns a ∪ b as a newly allocated set.
func Union(a, b *Set) Set {
	out := make([]uint32, 0, a.card+b.card)
	av, bv := a.Values(), b.Values()
	i, j := 0, 0
	for i < len(av) && j < len(bv) {
		x, y := av[i], bv[j]
		switch {
		case x < y:
			out = append(out, x)
			i++
		case x > y:
			out = append(out, y)
			j++
		default:
			out = append(out, x)
			i++
			j++
		}
	}
	out = append(out, av[i:]...)
	out = append(out, bv[j:]...)
	return FromSorted(out)
}

// Difference returns the elements of a not in b, as a uint-layout set.
func Difference(a, b *Set) Set {
	out := make([]uint32, 0, a.card)
	a.ForEach(func(v uint32) {
		if !b.Contains(v) {
			out = append(out, v)
		}
	})
	return FromSortedSparse(out)
}

// Equal reports whether a and b contain the same elements, regardless of
// layout.
func Equal(a, b *Set) bool {
	if a.card != b.card {
		return false
	}
	eq := true
	i := 0
	bv := b.Values()
	a.ForEachUntil(func(v uint32) bool {
		if bv[i] != v {
			eq = false
			return false
		}
		i++
		return true
	})
	return eq
}

// Clone returns a deep copy of s that does not alias its storage. Use it
// to persist a set produced into a Buffer.
func (s *Set) Clone() Set {
	c := *s
	if s.vals != nil {
		c.vals = append([]uint32(nil), s.vals...)
	}
	if s.words != nil {
		c.words = append([]uint64(nil), s.words...)
	}
	if s.ranks != nil {
		c.ranks = append([]int32(nil), s.ranks...)
	}
	return c
}
