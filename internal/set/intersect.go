package set

import (
	"math/bits"
	"sort"
	"time"

	"repro/internal/faultinject"
)

// gallopThreshold is the size ratio beyond which uint∩uint switches from
// linear merge to galloping (exponential) search from the smaller side.
// Tuned with BenchmarkGallopCrossover (intersect_bench_test.go): on
// this scalar Go code galloping already beats the unrolled branchless
// merge once the large side is ~3x the small side (3.6µs vs 5.3µs at
// ratio 3, 7.2µs vs 58µs at ratio 32); 4 leaves margin for adversarial
// interleavings where exponential search degenerates. The paper's SIMD
// merge kernels cross over much later.
const gallopThreshold = 4

// sampleStride is the per-kernel sampling period for wall-clock timings:
// one invocation in sampleStride is timed and accumulated into
// Stats.SampleNs. Two clock reads per 64 kernel calls keeps the cost
// invisible next to the kernels themselves while still producing a
// usable latency distribution per kernel class.
const sampleStride = 64

// Kernel indices for the sampled-timing slots of Stats.
const (
	KernelUintUintMerge = iota
	KernelUintUintGallop
	KernelBsUint
	KernelBsBs
	NumKernels
)

// KernelNames labels the sampled-timing slots of Stats, indexed by the
// Kernel* constants.
var KernelNames = [NumKernels]string{"uu_merge", "uu_gallop", "bs_uint", "bs_bs"}

// Intersect returns a ∩ b, allocating the result.
func Intersect(a, b *Set) Set {
	var buf Buffer
	return IntersectInto(&buf, a, b)
}

// Stats counts intersection-kernel invocations and materialized output
// bytes, broken down by the paper's three kernel cases (§V-A1). A Stats
// value is owned by a single worker and merged at parfor joins, so the
// counters are plain integers: incrementing them costs one predictable
// branch and never allocates or contends.
type Stats struct {
	UintUintMerge  uint64 // uint∩uint linear merge
	UintUintGallop uint64 // uint∩uint galloping search
	BsUint         uint64 // bs∩uint membership probes
	BsBs           uint64 // bs∩bs word AND
	Probes         uint64 // binary hash-join membership probes (lazy-trie path)
	BytesOut       uint64 // bytes materialized into result buffers

	// SampleNs accumulates sampled kernel wall time (every
	// sampleStride-th invocation of each kernel is timed); SampleCnt
	// counts the samples. SampleNs[k]/SampleCnt[k] estimates the mean
	// latency of kernel k without putting a clock read on every call.
	SampleNs  [NumKernels]uint64
	SampleCnt [NumKernels]uint64
}

// Add folds o into s (the parfor-join merge).
func (s *Stats) Add(o *Stats) {
	s.UintUintMerge += o.UintUintMerge
	s.UintUintGallop += o.UintUintGallop
	s.BsUint += o.BsUint
	s.BsBs += o.BsBs
	s.Probes += o.Probes
	s.BytesOut += o.BytesOut
	for k := 0; k < NumKernels; k++ {
		s.SampleNs[k] += o.SampleNs[k]
		s.SampleCnt[k] += o.SampleCnt[k]
	}
}

// Total reports the total number of kernel invocations (set
// intersections plus binary hash-join probes).
func (s *Stats) Total() uint64 {
	return s.UintUintMerge + s.UintUintGallop + s.BsUint + s.BsBs + s.Probes
}

// SampledMeanNs estimates the mean wall time of kernel k from the
// timing samples; ok is false when no invocation of k was sampled.
func (s *Stats) SampledMeanNs(k int) (ns uint64, ok bool) {
	if k < 0 || k >= NumKernels || s.SampleCnt[k] == 0 {
		return 0, false
	}
	return s.SampleNs[k] / s.SampleCnt[k], true
}

// Buffer holds reusable scratch storage for intersection results so the
// inner loops of the WCOJ algorithm do not allocate. A Buffer may back
// at most one live Set at a time.
type Buffer struct {
	vals  []uint32
	words []uint64
	ops   []*Set // IntersectMany operand scratch (keeps callers' slices intact)
	// Stat, when non-nil, receives one count per kernel invocation that
	// writes through this buffer. Point it at a per-worker Stats value.
	Stat *Stats
}

// ClearRefs drops the operand pointers captured by IntersectMany so a
// pooled Buffer does not pin the sets (and, transitively, the tries)
// it last intersected. The scratch capacity itself is kept.
func (b *Buffer) ClearRefs() {
	for i := range b.ops {
		b.ops[i] = nil
	}
}

// sampleStart counts one invocation of kernel k against st and decides
// whether this invocation is timed. st must be non-nil.
func sampleStart(count uint64) bool { return count&(sampleStride-1) == 1 }

// IntersectInto computes a ∩ b into buf's storage and returns the
// resulting set. The returned set aliases buf and is invalidated by the
// next IntersectInto call on the same buffer.
//
// Kernel selection follows the paper's three cases (§V-A1, Fig. 5a):
// bs∩bs (word AND), bs∩uint (membership probes), uint∩uint
// (merge/galloping).
func IntersectInto(buf *Buffer, a, b *Set) Set {
	if a.card == 0 || b.card == 0 {
		return Set{}
	}
	switch {
	case a.layout == Bitset && b.layout == Bitset:
		return intersectBsBs(buf, a, b)
	case a.layout == Bitset && b.layout == Uint:
		return intersectBsUint(buf, a, b)
	case a.layout == Uint && b.layout == Bitset:
		return intersectBsUint(buf, b, a)
	default:
		return intersectUintUint(buf, a, b)
	}
}

func intersectBsBs(buf *Buffer, a, b *Set) Set {
	st := buf.Stat
	var t0 time.Time
	timed := false
	if st != nil {
		st.BsBs++
		if timed = sampleStart(st.BsBs); timed {
			t0 = time.Now()
		}
	}
	// Overlap window in value space, aligned to words.
	lo := a.base
	if b.base > lo {
		lo = b.base
	}
	aEnd := a.base + uint32(len(a.words)<<6)
	bEnd := b.base + uint32(len(b.words)<<6)
	hi := aEnd
	if bEnd < hi {
		hi = bEnd
	}
	if hi <= lo {
		return Set{}
	}
	nw := int(hi-lo) >> 6
	if cap(buf.words) < nw {
		buf.words = make([]uint64, nw)
	}
	words := buf.words[:nw]
	aw := a.words[(lo-a.base)>>6:]
	bw := b.words[(lo-b.base)>>6:]
	card := 0
	for i := 0; i < nw; i++ {
		w := aw[i] & bw[i]
		words[i] = w
		card += bits.OnesCount64(w)
	}
	if st != nil {
		st.BytesOut += uint64(nw) * 8
		if timed {
			st.SampleNs[KernelBsBs] += uint64(time.Since(t0))
			st.SampleCnt[KernelBsBs]++
		}
	}
	if card == 0 {
		return Set{}
	}
	return Set{layout: Bitset, words: words, base: lo, card: card}
}

func intersectBsUint(buf *Buffer, bs, ui *Set) Set {
	st := buf.Stat
	var t0 time.Time
	timed := false
	if st != nil {
		st.BsUint++
		if timed = sampleStart(st.BsUint); timed {
			t0 = time.Now()
		}
	}
	if cap(buf.vals) < len(ui.vals) {
		buf.vals = make([]uint32, len(ui.vals))
	}
	out := buf.vals[:0]
	base := bs.base
	end := base + uint32(len(bs.words)<<6)
	// Skip uint values below the bitset window.
	vals := ui.vals
	start := sort.Search(len(vals), func(i int) bool { return vals[i] >= base })
	for _, v := range vals[start:] {
		if v >= end {
			break
		}
		off := v - base
		if bs.words[off>>6]&(1<<(off&63)) != 0 {
			out = append(out, v)
		}
	}
	buf.vals = out[:cap(out)]
	if st != nil {
		st.BytesOut += uint64(len(out)) * 4
		if timed {
			st.SampleNs[KernelBsUint] += uint64(time.Since(t0))
			st.SampleCnt[KernelBsUint]++
		}
	}
	if len(out) == 0 {
		return Set{}
	}
	return Set{layout: Uint, vals: out, card: len(out)}
}

func intersectUintUint(buf *Buffer, a, b *Set) Set {
	av, bv := a.vals, b.vals
	if len(av) > len(bv) {
		av, bv = bv, av
	}
	n := len(av)
	if cap(buf.vals) < n {
		buf.vals = make([]uint32, n)
	}
	out := buf.vals[:0]
	st := buf.Stat
	var t0 time.Time
	timed := false
	kernel := KernelUintUintMerge
	gallop := len(bv) >= gallopThreshold*len(av)
	if gallop {
		kernel = KernelUintUintGallop
	}
	if st != nil {
		if gallop {
			st.UintUintGallop++
			timed = sampleStart(st.UintUintGallop)
		} else {
			st.UintUintMerge++
			timed = sampleStart(st.UintUintMerge)
		}
		if timed {
			t0 = time.Now()
		}
	}
	if gallop {
		out = gallopIntersect(out, av, bv)
	} else {
		out = mergeIntersect(out, av, bv)
	}
	buf.vals = out[:cap(out)]
	if st != nil {
		st.BytesOut += uint64(len(out)) * 4
		if timed {
			st.SampleNs[kernel] += uint64(time.Since(t0))
			st.SampleCnt[kernel]++
		}
	}
	if len(out) == 0 {
		return Set{}
	}
	return Set{layout: Uint, vals: out, card: len(out)}
}

// b2i converts a comparison result to an index increment. Written this
// way the compiler emits a flag-setting SETcc + add, not a jump, which
// is what makes the merge loop immune to branch misprediction.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// mergeIntersect is the uint∩uint linear merge, unrolled 4-wide with
// branchless index advances. Each step moves i or j (or both on a hit)
// via b2i, so the only data-dependent branch left is the rarely-taken
// equality append; the outer condition checks bounds once per four
// steps instead of once per step. Measured against the branchy switch
// merge (BenchmarkMergeVariants): ~25% faster on inputs too large for
// the branch predictor to memorize, which is what live query data
// looks like.
func mergeIntersect(out, a, b []uint32) []uint32 {
	i, j := 0, 0
	na, nb := len(a), len(b)
	for i+4 <= na && j+4 <= nb {
		// Each step advances i or j by at most one, so four steps stay
		// inside the window proven by the loop condition.
		x, y := a[i], b[j]
		if x == y {
			out = append(out, x)
		}
		i += b2i(x <= y)
		j += b2i(y <= x)
		x, y = a[i], b[j]
		if x == y {
			out = append(out, x)
		}
		i += b2i(x <= y)
		j += b2i(y <= x)
		x, y = a[i], b[j]
		if x == y {
			out = append(out, x)
		}
		i += b2i(x <= y)
		j += b2i(y <= x)
		x, y = a[i], b[j]
		if x == y {
			out = append(out, x)
		}
		i += b2i(x <= y)
		j += b2i(y <= x)
	}
	for i < na && j < nb {
		x, y := a[i], b[j]
		if x == y {
			out = append(out, x)
		}
		i += b2i(x <= y)
		j += b2i(y <= x)
	}
	return out
}

// gallopIntersect probes each element of the small side into the large
// side with exponential search, advancing a moving lower bound.
func gallopIntersect(out, small, large []uint32) []uint32 {
	lo := 0
	for _, v := range small {
		// Exponential search for the first index >= v.
		hi := lo + 1
		for hi < len(large) && large[hi] < v {
			lo = hi
			hi *= 2
		}
		if hi > len(large) {
			hi = len(large)
		}
		sub := large[lo:hi]
		k := sort.Search(len(sub), func(i int) bool { return sub[i] >= v })
		lo += k
		if lo >= len(large) {
			break
		}
		if large[lo] == v {
			out = append(out, v)
			lo++
		}
	}
	return out
}

// IntersectMany intersects all of ss. The paper's icost model (§V-A1)
// accounts bitsets first; execution orders operands by ascending
// cardinality (bitsets preferred on ties) so the cheapest pair runs
// first and every remaining set — bitsets especially — serves as an
// O(1)-probe filter of an already-small intermediate. The caller's
// operand slice is left untouched: operands are reordered in buf's
// private scratch. The result is written through buf/buf2 scratch space
// — this runs in the innermost WCOJ loops and must not allocate once
// the buffers are warm.
func IntersectMany(buf, buf2 *Buffer, ss []*Set) Set {
	faultinject.Fire(faultinject.PointSetIntersect)
	switch len(ss) {
	case 0:
		return Set{}
	case 1:
		return *ss[0]
	}
	// Sort a private copy of the operand list (callers may rely on — or
	// reuse — their slice's order).
	if cap(buf.ops) < len(ss) {
		buf.ops = make([]*Set, len(ss))
	}
	ops := buf.ops[:len(ss)]
	copy(ops, ss)
	// Insertion sort (N is the number of relations on one attribute,
	// almost always ≤ 4).
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && lessSet(ops[j], ops[j-1]); j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
	cur := IntersectInto(buf, ops[0], ops[1])
	for _, s := range ops[2:] {
		if cur.card == 0 {
			return Set{}
		}
		cur = IntersectInto(buf2, &cur, s)
		buf, buf2 = buf2, buf
	}
	return cur
}

func lessSet(a, b *Set) bool {
	if a.card != b.card {
		return a.card < b.card
	}
	return a.layout == Bitset && b.layout != Bitset
}

// Union returns a ∪ b as a newly allocated set.
func Union(a, b *Set) Set {
	out := make([]uint32, 0, a.card+b.card)
	av, bv := a.Values(), b.Values()
	i, j := 0, 0
	for i < len(av) && j < len(bv) {
		x, y := av[i], bv[j]
		switch {
		case x < y:
			out = append(out, x)
			i++
		case x > y:
			out = append(out, y)
			j++
		default:
			out = append(out, x)
			i++
			j++
		}
	}
	out = append(out, av[i:]...)
	out = append(out, bv[j:]...)
	return FromSorted(out)
}

// Difference returns the elements of a not in b, as a uint-layout set.
func Difference(a, b *Set) Set {
	out := make([]uint32, 0, a.card)
	a.ForEach(func(v uint32) {
		if !b.Contains(v) {
			out = append(out, v)
		}
	})
	return FromSortedSparse(out)
}

// Equal reports whether a and b contain the same elements, regardless of
// layout.
func Equal(a, b *Set) bool {
	if a.card != b.card {
		return false
	}
	eq := true
	i := 0
	bv := b.Values()
	a.ForEachUntil(func(v uint32) bool {
		if bv[i] != v {
			eq = false
			return false
		}
		i++
		return true
	})
	return eq
}

// Clone returns a deep copy of s that does not alias its storage. Use it
// to persist a set produced into a Buffer.
func (s *Set) Clone() Set {
	c := *s
	if s.vals != nil {
		c.vals = append([]uint32(nil), s.vals...)
	}
	if s.words != nil {
		c.words = append([]uint64(nil), s.words...)
	}
	if s.ranks != nil {
		c.ranks = append([]int32(nil), s.ranks...)
	}
	return c
}
