package set

import "testing"

// The intersection kernels run in the innermost WCOJ loops: once their
// buffers are warm they must not allocate. testing.AllocsPerRun guards
// enforce exactly zero (make bench-smoke runs these in CI).

func TestIntersectIntoZeroAllocs(t *testing.T) {
	mk := func(start, step uint32, n int) []uint32 {
		out := make([]uint32, n)
		for i := range out {
			out[i] = start + uint32(i)*step
		}
		return out
	}
	ua := FromSortedSparse(mk(0, 3, 4096))
	ub := FromSortedSparse(mk(0, 2, 4096))
	ba := BitsetFromSorted(mk(0, 3, 4096))
	bb := BitsetFromSorted(mk(0, 2, 4096))

	var stats Stats
	buf := &Buffer{Stat: &stats}
	cases := []struct {
		name string
		a, b *Set
	}{
		{"uint_uint_merge", &ua, &ub},
		{"bs_uint", &ba, &ub},
		{"bs_bs", &ba, &bb},
	}
	for _, c := range cases {
		IntersectInto(buf, c.a, c.b) // warm the buffer
		if n := testing.AllocsPerRun(100, func() {
			IntersectInto(buf, c.a, c.b)
		}); n != 0 {
			t.Errorf("%s: %v allocs/op with a warm buffer, want 0", c.name, n)
		}
	}

	// Galloping path: force the >= gallopThreshold size ratio.
	small := FromSortedSparse(mk(0, 64, 64))
	IntersectInto(buf, &small, &ub)
	if stats.UintUintGallop == 0 {
		t.Fatalf("size ratio %d did not select the galloping kernel", ub.Card()/small.Card())
	}
	if n := testing.AllocsPerRun(100, func() {
		IntersectInto(buf, &small, &ub)
	}); n != 0 {
		t.Errorf("uint_uint_gallop: %v allocs/op with a warm buffer, want 0", n)
	}
}

func TestIntersectManyZeroAllocs(t *testing.T) {
	mk := func(step uint32, n int) []uint32 {
		out := make([]uint32, n)
		for i := range out {
			out[i] = uint32(i) * step
		}
		return out
	}
	s1 := FromSortedSparse(mk(2, 2048))
	s2 := FromSortedSparse(mk(3, 2048))
	s3 := BitsetFromSorted(mk(1, 4096))
	ss := []*Set{&s1, &s2, &s3}

	var stats Stats
	b1 := &Buffer{Stat: &stats}
	b2 := &Buffer{Stat: &stats}
	IntersectMany(b1, b2, ss) // warm both buffers and the operand scratch
	if n := testing.AllocsPerRun(100, func() {
		IntersectMany(b1, b2, ss)
	}); n != 0 {
		t.Errorf("IntersectMany: %v allocs/op with warm buffers, want 0", n)
	}
}

// TestIntersectManyKeepsOperandOrder pins the contract fixed in this
// package: IntersectMany must not reorder the caller's operand slice
// (it used to sort ss in place, silently corrupting callers that
// indexed into it afterwards).
func TestIntersectManyKeepsOperandOrder(t *testing.T) {
	big := FromSortedSparse([]uint32{0, 2, 4, 6, 8, 10, 12})
	mid := FromSortedSparse([]uint32{0, 4, 8, 12})
	tiny := FromSortedSparse([]uint32{4, 8})
	ss := []*Set{&big, &mid, &tiny}
	var b1, b2 Buffer
	got := IntersectMany(&b1, &b2, ss)
	if got.Card() != 2 || !got.Contains(4) || !got.Contains(8) {
		t.Fatalf("wrong intersection: card=%d", got.Card())
	}
	if ss[0] != &big || ss[1] != &mid || ss[2] != &tiny {
		t.Fatalf("IntersectMany reordered the caller's operand slice")
	}
}
