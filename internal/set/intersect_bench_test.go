package set

import (
	"fmt"
	"math/rand"
	"testing"
)

// mergeIntersectBranchy is the pre-unrolling reference merge, kept for
// BenchmarkMergeVariants so the unrolled kernel's win (or loss) on this
// hardware is one benchmark run away.
func mergeIntersectBranchy(out, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			out = append(out, x)
			i++
			j++
		}
	}
	return out
}

// randSorted builds n sorted distinct values drawn from [0, n*spread).
func randSorted(rng *rand.Rand, n int, spread int) []uint32 {
	seen := make(map[uint32]bool, n)
	vals := make([]uint32, 0, n)
	for len(vals) < n {
		v := uint32(rng.Intn(n * spread))
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	sortU32(vals)
	return vals
}

func sortU32(v []uint32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func BenchmarkMergeVariants(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1024, 65536} {
		x := randSorted(rng, n, 4)
		y := randSorted(rng, n, 4)
		out := make([]uint32, 0, n)
		b.Run(fmt.Sprintf("n%d/branchy", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out = mergeIntersectBranchy(out[:0], x, y)
			}
		})
		b.Run(fmt.Sprintf("n%d/unrolled", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out = mergeIntersect(out[:0], x, y)
			}
		})
	}
}

// BenchmarkGallopCrossover sweeps the size ratio between the two sides
// of a uint∩uint intersection, timing the merge and galloping kernels
// head to head. The gallopThreshold constant is set where the gallop
// rows start beating the merge rows on this hardware.
func BenchmarkGallopCrossover(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const small = 512
	for _, ratio := range []int{2, 3, 4, 8, 16, 32, 64} {
		large := randSorted(rng, small*ratio, 4)
		probe := make([]uint32, small)
		for i := range probe {
			probe[i] = large[rng.Intn(len(large))]
		}
		sortU32(probe)
		probe = dedupSorted(probe)
		out := make([]uint32, 0, small)
		b.Run(fmt.Sprintf("ratio%d/merge", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out = mergeIntersect(out[:0], probe, large)
			}
		})
		b.Run(fmt.Sprintf("ratio%d/gallop", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out = gallopIntersect(out[:0], probe, large)
			}
		})
	}
}
