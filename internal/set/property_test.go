package set_test

import (
	"fmt"
	"testing"

	"repro/internal/difftest"
	"repro/internal/set"
)

// naiveIntersect is the oracle: O(n*m) membership scan over the raw
// value slices.
func naiveIntersect(a, b []uint32) []uint32 {
	inB := map[uint32]bool{}
	for _, v := range b {
		inB[v] = true
	}
	var out []uint32
	for _, v := range a {
		if inB[v] {
			out = append(out, v)
		}
	}
	return out
}

func naiveUnion(a, b []uint32) []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	add := func(vs []uint32) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	add(a)
	add(b)
	// Union preserves sorted order by construction; the oracle sorts by
	// re-building through the difftest helper contract (inputs sorted).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func naiveDifference(a, b []uint32) []uint32 {
	inB := map[uint32]bool{}
	for _, v := range b {
		inB[v] = true
	}
	var out []uint32
	for _, v := range a {
		if !inB[v] {
			out = append(out, v)
		}
	}
	return out
}

func eqU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// layouts builds the same logical set in every physical layout the
// engine can choose, so each pair of draws exercises uint∩uint,
// bitset∩bitset, and the mixed kernel.
func layouts(vals []uint32) []set.Set {
	ls := []set.Set{set.FromSorted(append([]uint32{}, vals...))}
	ls = append(ls, set.FromSortedSparse(append([]uint32{}, vals...)))
	if len(vals) > 0 {
		ls = append(ls, set.BitsetFromSorted(append([]uint32{}, vals...)))
	}
	return ls
}

// TestIntersectProperty drives Intersect/IntersectInto across random
// sorted draws from the difftest generator, covering the merge kernel,
// the galloping kernel past its crossover ratio, and both bitset
// kernels, against the naive oracle.
func TestIntersectProperty(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		g := difftest.NewGen(4000 + seed)
		// Skewed size pairs push len(b) >= 4*len(a) often enough to hit
		// the gallop crossover from both sides.
		a := g.RandomSortedU32(40, 300)
		b := g.RandomSortedU32(640, 3000)
		if seed%3 == 0 {
			b = g.RandomSortedU32(40, 120) // dense overlap regime
		}
		want := naiveIntersect(a, b)
		for ai, sa := range layouts(a) {
			for bi, sb := range layouts(b) {
				got := set.Intersect(&sa, &sb)
				if !eqU32(got.Values(), want) {
					t.Fatalf("seed %d layouts (%d,%d): Intersect = %v, want %v\n a=%v\n b=%v",
						seed, ai, bi, got.Values(), want, a, b)
				}
				var buf set.Buffer
				got2 := set.IntersectInto(&buf, &sa, &sb)
				if !eqU32(got2.Values(), want) {
					t.Fatalf("seed %d layouts (%d,%d): IntersectInto = %v, want %v",
						seed, ai, bi, got2.Values(), want)
				}
			}
		}
	}
}

// TestGallopCrossoverProperty pins the merge→gallop switch: ratios
// straddling the crossover threshold must agree with the oracle (a
// wrong binary-search bound in the galloping kernel shows up here).
func TestGallopCrossoverProperty(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := difftest.NewGen(5000 + seed)
		small := g.RandomSortedU32(24, 200)
		if len(small) == 0 {
			small = []uint32{7}
		}
		for _, ratio := range []int{1, 3, 4, 5, 16, 64} {
			large := g.RandomSortedU32(len(small)*ratio+1, len(small)*ratio*8+16)
			want := naiveIntersect(small, large)
			sa := set.FromSortedSparse(small)
			sb := set.FromSortedSparse(large)
			got := set.Intersect(&sa, &sb)
			if !eqU32(got.Values(), want) {
				t.Fatalf("seed %d ratio %d: got %v want %v\n small=%v\n large=%v",
					seed, ratio, got.Values(), want, small, large)
			}
		}
	}
}

// TestIntersectManyProperty checks the k-way driver (smallest-first
// ordering, buffer reuse) against iterated naive intersection.
func TestIntersectManyProperty(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := difftest.NewGen(6000 + seed)
		k := 2 + int(seed%4)
		var raw [][]uint32
		var sets []*set.Set
		for i := 0; i < k; i++ {
			vs := g.RandomSortedU32(120, 400)
			raw = append(raw, vs)
			s := set.FromSorted(append([]uint32{}, vs...))
			sets = append(sets, &s)
		}
		want := raw[0]
		for _, vs := range raw[1:] {
			want = naiveIntersect(want, vs)
		}
		var b1, b2 set.Buffer
		got := set.IntersectMany(&b1, &b2, sets)
		if !eqU32(got.Values(), want) {
			t.Fatalf("seed %d k=%d: got %v want %v", seed, k, got.Values(), want)
		}
	}
}

// TestUnionDifferenceProperty covers the remaining set algebra against
// the oracle.
func TestUnionDifferenceProperty(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		g := difftest.NewGen(7000 + seed)
		a := g.RandomSortedU32(80, 500)
		b := g.RandomSortedU32(80, 500)
		sa := set.FromSorted(append([]uint32{}, a...))
		sb := set.FromSorted(append([]uint32{}, b...))
		if u := set.Union(&sa, &sb); !eqU32(u.Values(), naiveUnion(a, b)) {
			t.Fatalf("seed %d: Union = %v, want %v", seed, u.Values(), naiveUnion(a, b))
		}
		if d := set.Difference(&sa, &sb); !eqU32(d.Values(), naiveDifference(a, b)) {
			t.Fatalf("seed %d: Difference = %v, want %v", seed, d.Values(), naiveDifference(a, b))
		}
		for _, v := range naiveIntersect(a, b) {
			if !sa.Contains(v) || !sb.Contains(v) {
				t.Fatalf("seed %d: Contains(%d) inconsistent", seed, v)
			}
		}
	}
}

func ExampleIntersect() {
	a := set.FromSorted([]uint32{1, 3, 5, 7})
	b := set.FromSorted([]uint32{3, 4, 5, 6})
	got := set.Intersect(&a, &b)
	fmt.Println(got.Values())
	// Output: [3 5]
}
