package planner

import (
	"strings"
	"testing"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// miniCatalog builds a TPC-H-shaped catalog with a few rows per table.
func miniCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	mk := func(s storage.Schema) *storage.Table {
		tab, err := cat.Create(s)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	region := mk(storage.Schema{Name: "region", Cols: []storage.ColumnDef{
		{Name: "r_regionkey", Kind: storage.Int64, Role: storage.Key, Domain: "regionkey", PK: true},
		{Name: "r_name", Kind: storage.String, Role: storage.Annotation},
	}})
	nation := mk(storage.Schema{Name: "nation", Cols: []storage.ColumnDef{
		{Name: "n_nationkey", Kind: storage.Int64, Role: storage.Key, Domain: "nationkey", PK: true},
		{Name: "n_regionkey", Kind: storage.Int64, Role: storage.Key, Domain: "regionkey"},
		{Name: "n_name", Kind: storage.String, Role: storage.Annotation},
	}})
	customer := mk(storage.Schema{Name: "customer", Cols: []storage.ColumnDef{
		{Name: "c_custkey", Kind: storage.Int64, Role: storage.Key, Domain: "custkey", PK: true},
		{Name: "c_nationkey", Kind: storage.Int64, Role: storage.Key, Domain: "nationkey"},
		{Name: "c_mktsegment", Kind: storage.String, Role: storage.Annotation},
	}})
	orders := mk(storage.Schema{Name: "orders", Cols: []storage.ColumnDef{
		{Name: "o_orderkey", Kind: storage.Int64, Role: storage.Key, Domain: "orderkey", PK: true},
		{Name: "o_custkey", Kind: storage.Int64, Role: storage.Key, Domain: "custkey"},
		{Name: "o_orderdate", Kind: storage.Date, Role: storage.Annotation},
	}})
	lineitem := mk(storage.Schema{Name: "lineitem", Cols: []storage.ColumnDef{
		{Name: "l_orderkey", Kind: storage.Int64, Role: storage.Key, Domain: "orderkey"},
		{Name: "l_suppkey", Kind: storage.Int64, Role: storage.Key, Domain: "suppkey"},
		{Name: "l_extendedprice", Kind: storage.Float64, Role: storage.Annotation},
		{Name: "l_discount", Kind: storage.Float64, Role: storage.Annotation},
		{Name: "l_returnflag", Kind: storage.String, Role: storage.Annotation},
		{Name: "l_linestatus", Kind: storage.String, Role: storage.Annotation},
		{Name: "l_quantity", Kind: storage.Float64, Role: storage.Annotation},
	}})
	supplier := mk(storage.Schema{Name: "supplier", Cols: []storage.ColumnDef{
		{Name: "s_suppkey", Kind: storage.Int64, Role: storage.Key, Domain: "suppkey", PK: true},
		{Name: "s_nationkey", Kind: storage.Int64, Role: storage.Key, Domain: "nationkey"},
	}})
	matrix := mk(storage.Schema{Name: "matrix", Cols: []storage.ColumnDef{
		{Name: "i", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "j", Kind: storage.Int64, Role: storage.Key, Domain: "dim"},
		{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
	}})

	_ = region.AppendRow(int64(0), "ASIA")
	_ = region.AppendRow(int64(1), "AMERICA")
	_ = nation.AppendRow(int64(0), int64(0), "JAPAN")
	_ = nation.AppendRow(int64(1), int64(1), "BRAZIL")
	_ = customer.AppendRow(int64(1), int64(0), "BUILDING")
	_ = orders.AppendRow(int64(10), int64(1), "1994-05-01")
	_ = lineitem.AppendRow(int64(10), int64(7), 100.0, 0.1, "R", "F", 10.0)
	_ = supplier.AppendRow(int64(7), int64(0))
	_ = matrix.AppendRow(int64(0), int64(1), 0.5)
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	return cat
}

func buildPlan(t *testing.T, cat *storage.Catalog, sql string) *Plan {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q, cat)
	if err != nil {
		t.Fatalf("Build(%s): %v", sql, err)
	}
	return p
}

const q5SQL = `SELECT n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
	FROM customer, orders, lineitem, supplier, nation, region
	WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
	AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
	AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	AND r_name = 'ASIA' AND o_orderdate >= date '1994-01-01'
	AND o_orderdate < date '1995-01-01'
	GROUP BY n_name`

func TestQ5Plan(t *testing.T) {
	cat := miniCatalog(t)
	p := buildPlan(t, cat, q5SQL)
	// Rule 1: five vertices.
	if len(p.HG.Vertices) != 5 {
		t.Fatalf("vertices = %v", p.HG.Vertices)
	}
	// Attribute elimination: lineitem covers only orderkey and suppkey.
	li := p.RelIndex("lineitem")
	if li < 0 {
		t.Fatal("lineitem missing")
	}
	if len(p.Rels[li].Vertices) != 2 {
		t.Fatalf("lineitem vertices = %v", p.Rels[li].Vertices)
	}
	// Rule 3: the SUM expression annotates lineitem only.
	if len(p.Aggs) != 1 || len(p.Aggs[0].Leaves) != 1 || p.Aggs[0].Leaves[0].Rel != li {
		t.Fatalf("aggs = %+v", p.Aggs)
	}
	// Rule 4: n_name resolves through metadata on nationkey.
	if len(p.Groups) != 1 || p.Groups[0].Kind != GroupMeta || p.Groups[0].Vertex != "nationkey" || !p.Groups[0].String {
		t.Fatalf("groups = %+v", p.Groups)
	}
	// Filters: region has the equality selection; orders has the range.
	ri := p.RelIndex("region")
	if !p.Rels[ri].HasEqualitySelection || p.Rels[ri].Filter == nil {
		t.Fatalf("region selection not captured: %+v", p.Rels[ri])
	}
	oi := p.RelIndex("orders")
	if p.Rels[oi].Filter == nil || p.Rels[oi].HasEqualitySelection {
		t.Fatalf("orders filter wrong: %+v", p.Rels[oi])
	}
	// GHD: the paper's 2-node plan with the region-nation node as leaf.
	if p.GHD.NumNodes != 2 {
		t.Fatalf("Q5 GHD nodes = %d:\n%s", p.GHD.NumNodes, p.GHD)
	}
	// Root holds the output vertex.
	found := false
	for _, v := range p.GHD.Root.Bag {
		if v == "nationkey" {
			found = true
		}
	}
	if !found {
		t.Fatalf("root bag %v lacks nationkey", p.GHD.Root.Bag)
	}
}

func TestQ1StylePseudoVertices(t *testing.T) {
	cat := miniCatalog(t)
	p := buildPlan(t, cat, `SELECT l_returnflag, l_linestatus, sum(l_quantity) as s, count(*) as c, avg(l_quantity) as a
		FROM lineitem GROUP BY l_returnflag, l_linestatus`)
	li := p.RelIndex("lineitem")
	if len(p.Rels[li].PseudoVertices) != 2 {
		t.Fatalf("pseudo vertices = %v", p.Rels[li].PseudoVertices)
	}
	if p.Groups[0].Kind != GroupPseudo || !p.Groups[0].String {
		t.Fatalf("group 0 = %+v", p.Groups[0])
	}
	// sum, count, avg_sum, avg_count.
	if len(p.Aggs) != 4 {
		t.Fatalf("aggs = %+v", p.Aggs)
	}
	if p.Aggs[1].Kind != AggCount {
		t.Fatalf("agg 1 = %+v", p.Aggs[1])
	}
	// avg output is a division skeleton.
	last := p.Outputs[len(p.Outputs)-1]
	if last.Kind != OutAggExpr || last.Expr.Op != EmitDiv {
		t.Fatalf("avg output = %+v", last)
	}
	if p.GHD == nil || p.GHD.NumNodes != 1 {
		t.Fatalf("single-relation group-by should be a 1-node GHD")
	}
}

func TestScalarScanPath(t *testing.T) {
	cat := miniCatalog(t)
	p := buildPlan(t, cat, `SELECT sum(l_extendedprice * l_discount) as revenue
		FROM lineitem WHERE l_quantity < 24`)
	if !p.ScalarScan {
		t.Fatal("Q6 shape should take the scalar-scan path")
	}
	if p.GHD != nil {
		t.Fatal("scalar scan needs no GHD")
	}
}

func TestMatMulSelfJoin(t *testing.T) {
	cat := miniCatalog(t)
	p := buildPlan(t, cat, `SELECT m1.i, m2.j, sum(m1.v * m2.v) as v
		FROM matrix as m1, matrix as m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`)
	if len(p.Rels) != 2 {
		t.Fatalf("rels = %d", len(p.Rels))
	}
	// Three vertices: m1.i, shared m1.j=m2.i, m2.j.
	if len(p.HG.Vertices) != 3 {
		t.Fatalf("vertices = %v", p.HG.Vertices)
	}
	// Two group items are key vertices.
	if p.Groups[0].Kind != GroupVertex || p.Groups[1].Kind != GroupVertex {
		t.Fatalf("groups = %+v", p.Groups)
	}
	if p.Groups[0].Vertex == p.Groups[1].Vertex {
		t.Fatal("output vertices must be distinct")
	}
	// Aggregate decomposes into two leaves multiplied.
	if len(p.Aggs[0].Leaves) != 2 || p.Aggs[0].Skeleton.Op != EmitMul {
		t.Fatalf("agg = %+v", p.Aggs[0])
	}
	if p.GHD.NumNodes != 1 {
		t.Fatalf("matmul should compress to one node:\n%s", p.GHD)
	}
}

func TestCaseDecomposition(t *testing.T) {
	cat := miniCatalog(t)
	p := buildPlan(t, cat, `SELECT sum(case when n_name = 'BRAZIL' then l_extendedprice * (1 - l_discount) else 0 end) as num,
		sum(l_extendedprice * (1 - l_discount)) as den
		FROM lineitem, supplier, nation
		WHERE l_suppkey = s_suppkey AND s_nationkey = n_nationkey
		GROUP BY n_name`)
	// First aggregate: indicator(nation) × value(lineitem), using the
	// short-circuiting indicator product (0·NaN must stay 0).
	a := p.Aggs[0]
	if len(a.Leaves) != 2 || a.Skeleton.Op != EmitMulInd {
		t.Fatalf("case agg = %+v", a)
	}
	relNames := map[int]string{}
	for i := range p.Rels {
		relNames[i] = p.Rels[i].Alias
	}
	leafRels := map[string]bool{}
	for _, l := range a.Leaves {
		leafRels[relNames[l.Rel]] = true
	}
	if !leafRels["nation"] || !leafRels["lineitem"] {
		t.Fatalf("leaf relations = %v", leafRels)
	}
}

func TestMultiLeafLinearDecomposition(t *testing.T) {
	cat := miniCatalog(t)
	// Q9-shaped: f(lineitem) - g(supplier-ish)·h(lineitem). Use matrix for
	// a second annotated relation joined via suppkey-like domain — here we
	// reuse lineitem × supplier with a made-up arithmetic over one
	// annotation each.
	p := buildPlan(t, cat, `SELECT n_name, sum(l_extendedprice * (1 - l_discount) - l_quantity * 2) as profit
		FROM lineitem, supplier, nation
		WHERE l_suppkey = s_suppkey AND s_nationkey = n_nationkey
		GROUP BY n_name`)
	// Whole expression references only lineitem → single leaf.
	if len(p.Aggs[0].Leaves) != 1 {
		t.Fatalf("leaves = %+v", p.Aggs[0].Leaves)
	}
}

func TestErrors(t *testing.T) {
	cat := miniCatalog(t)
	cases := []struct {
		sql  string
		frag string
	}{
		{"SELECT x FROM nosuch", "unknown table"},
		{"SELECT n_name FROM nation, nation", "duplicate alias"},
		{"SELECT zzz FROM nation", "unknown column"},
		{"SELECT sum(n_nationkey) FROM nation, region WHERE n_regionkey = r_regionkey", "cannot be aggregated"},
		{"SELECT sum(l_quantity) FROM lineitem, orders WHERE l_extendedprice = o_orderdate", "non-key"},
		{"SELECT sum(l_quantity) FROM lineitem, orders WHERE l_orderkey = o_custkey", "across domains"},
		{"SELECT sum(l_quantity) FROM lineitem, orders WHERE l_quantity > o_orderdate", "cross-relation"},
		{"SELECT sum(l_quantity) FROM lineitem, nation WHERE l_orderkey = 1", "joins nothing"},
		{"SELECT l_quantity FROM lineitem", "neither grouped nor aggregated"},
		{"SELECT median(l_quantity) FROM lineitem", "unknown aggregate"},
	}
	for _, c := range cases {
		q, err := sqlparse.Parse(c.sql)
		if err != nil {
			t.Fatalf("parse %q: %v", c.sql, err)
		}
		_, err = Build(q, cat)
		if err == nil {
			t.Errorf("Build(%q) should fail", c.sql)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Build(%q) error = %q, want fragment %q", c.sql, err, c.frag)
		}
	}
}

func TestGroupByAliasExpansion(t *testing.T) {
	cat := miniCatalog(t)
	p := buildPlan(t, cat, `SELECT extract(year from o_orderdate) as o_year, sum(l_extendedprice) as s
		FROM orders, lineitem WHERE o_orderkey = l_orderkey GROUP BY o_year`)
	if len(p.Groups) != 1 || p.Groups[0].Kind != GroupMeta {
		t.Fatalf("groups = %+v", p.Groups)
	}
	if p.Groups[0].Vertex != "orderkey" {
		t.Fatalf("meta vertex = %s", p.Groups[0].Vertex)
	}
	if p.Outputs[0].Kind != OutGroup {
		t.Fatalf("output 0 = %+v", p.Outputs[0])
	}
}

func TestCountStarMultiRelation(t *testing.T) {
	cat := miniCatalog(t)
	p := buildPlan(t, cat, `SELECT n_name, count(*) as c FROM supplier, nation
		WHERE s_nationkey = n_nationkey GROUP BY n_name`)
	if p.Aggs[0].Kind != AggCount || p.Aggs[0].Skeleton != nil {
		t.Fatalf("count agg = %+v", p.Aggs[0])
	}
}

func TestSelfJoinSameDomainDistinctVertices(t *testing.T) {
	cat := miniCatalog(t)
	// Two nation occurrences joined to different vertices of the same
	// domain must get distinct vertex names.
	p := buildPlan(t, cat, `SELECT count(*) as c FROM customer, nation as n1, supplier, nation as n2
		WHERE c_nationkey = n1.n_nationkey AND s_nationkey = n2.n_nationkey AND c_custkey = c_custkey`)
	_ = p
	names := map[string]bool{}
	for _, v := range p.HG.Vertices {
		if names[v] {
			t.Fatalf("duplicate vertex name %q in %v", v, p.HG.Vertices)
		}
		names[v] = true
	}
}
