package planner

import (
	"fmt"
	"strings"

	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/qerr"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Build translates a parsed query into a logical plan against the
// catalog, applying the four hypergraph-construction rules of §IV-A and
// selecting a GHD per §IV-B.
func Build(q *sqlparse.Query, cat *storage.Catalog) (*Plan, error) {
	b := &builder{q: q, cat: cat, plan: &Plan{}}
	if err := b.resolveFrom(); err != nil {
		return nil, err
	}
	if err := b.classifyWhere(); err != nil {
		return nil, err
	}
	if err := b.buildVertices(); err != nil {
		return nil, err
	}
	if err := b.resolveGroupBy(); err != nil {
		return nil, err
	}
	if err := b.resolveSelect(); err != nil {
		return nil, err
	}
	if err := b.resolveHaving(); err != nil {
		return nil, err
	}
	if err := b.finishHypergraph(); err != nil {
		return nil, err
	}
	return b.plan, nil
}

type colKey struct {
	rel int
	col string
}

type builder struct {
	q    *sqlparse.Query
	cat  *storage.Catalog
	plan *Plan

	joinParent map[colKey]colKey // union-find over joined key columns
	vertexOf   map[colKey]string // column → vertex name (after buildVertices)
	vertexSeq  int
}

// resolveFrom validates the FROM list.
func (b *builder) resolveFrom() error {
	if len(b.q.From) == 0 {
		return fmt.Errorf("planner: empty FROM list")
	}
	seen := map[string]bool{}
	for _, ref := range b.q.From {
		t := b.cat.Table(ref.Table)
		if t == nil {
			return &qerr.UnknownTableError{Name: ref.Table}
		}
		if seen[ref.Alias] {
			return fmt.Errorf("planner: duplicate alias %q", ref.Alias)
		}
		seen[ref.Alias] = true
		b.plan.Rels = append(b.plan.Rels, RelInfo{
			Alias:     ref.Alias,
			Table:     t,
			VertexCol: map[string]string{},
		})
	}
	return nil
}

// resolveCol resolves a column reference to (relation index, column).
func (b *builder) resolveCol(c sqlparse.ColRef) (int, *storage.Column, error) {
	found := -1
	var col *storage.Column
	for i := range b.plan.Rels {
		r := &b.plan.Rels[i]
		if c.Qualifier != "" && c.Qualifier != r.Alias {
			continue
		}
		if cc := r.Table.Col(c.Name); cc != nil {
			if found >= 0 {
				return 0, nil, fmt.Errorf("planner: ambiguous column %s", c)
			}
			found, col = i, cc
		}
	}
	if found < 0 {
		return 0, nil, fmt.Errorf("planner: unknown column %s", c)
	}
	return found, col, nil
}

// relsOf collects the relation indices referenced by an expression.
func (b *builder) relsOf(e sqlparse.Expr) (map[int]bool, error) {
	rels := map[int]bool{}
	var walk func(e sqlparse.Expr) error
	walk = func(e sqlparse.Expr) error {
		switch v := e.(type) {
		case sqlparse.ColRef:
			i, _, err := b.resolveCol(v)
			if err != nil {
				return err
			}
			rels[i] = true
		case sqlparse.BinaryExpr:
			if err := walk(v.L); err != nil {
				return err
			}
			return walk(v.R)
		case sqlparse.UnaryExpr:
			return walk(v.X)
		case sqlparse.FuncCall:
			for _, a := range v.Args {
				if err := walk(a); err != nil {
					return err
				}
			}
		case sqlparse.CaseExpr:
			for _, w := range v.Whens {
				if err := walk(w.Cond); err != nil {
					return err
				}
				if err := walk(w.Then); err != nil {
					return err
				}
			}
			if v.Else != nil {
				return walk(v.Else)
			}
		case sqlparse.BetweenExpr:
			if err := walk(v.X); err != nil {
				return err
			}
			if err := walk(v.Lo); err != nil {
				return err
			}
			return walk(v.Hi)
		case sqlparse.InExpr:
			if err := walk(v.X); err != nil {
				return err
			}
			for _, x := range v.Vals {
				if err := walk(x); err != nil {
					return err
				}
			}
		case sqlparse.LikeExpr:
			return walk(v.X)
		case sqlparse.ExtractExpr:
			return walk(v.X)
		}
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	return rels, nil
}

// classifyWhere splits the WHERE conjunction into equi-join conditions
// (rule 1: unified hypergraph vertices) and single-relation filters.
func (b *builder) classifyWhere() error {
	b.joinParent = map[colKey]colKey{}
	conjuncts := splitAnd(b.q.Where)
	for _, c := range conjuncts {
		if be, ok := c.(sqlparse.BinaryExpr); ok && be.Op == "=" {
			lc, lok := be.L.(sqlparse.ColRef)
			rc, rok := be.R.(sqlparse.ColRef)
			if lok && rok {
				li, lcol, err := b.resolveCol(lc)
				if err != nil {
					return err
				}
				ri, rcol, err := b.resolveCol(rc)
				if err != nil {
					return err
				}
				if li != ri {
					// Equi-join: both sides must be keys of the same domain.
					if lcol.Def.Role != storage.Key || rcol.Def.Role != storage.Key {
						return fmt.Errorf("planner: join on non-key column in %s = %s (annotations cannot join)", lc, rc)
					}
					if lcol.Def.DomainName() != rcol.Def.DomainName() {
						return fmt.Errorf("planner: join across domains %q and %q", lcol.Def.DomainName(), rcol.Def.DomainName())
					}
					b.union(colKey{li, lc.Name}, colKey{ri, rc.Name})
					continue
				}
			}
		}
		// Single-relation filter.
		rels, err := b.relsOf(c)
		if err != nil {
			return err
		}
		if len(rels) == 0 {
			return fmt.Errorf("planner: constant predicate %s is not supported", c)
		}
		if len(rels) > 1 {
			return fmt.Errorf("planner: non-equi-join cross-relation predicate %s is not supported", c)
		}
		var ri int
		for i := range rels {
			ri = i
		}
		r := &b.plan.Rels[ri]
		if r.Filter == nil {
			r.Filter = c
		} else {
			r.Filter = sqlparse.BinaryExpr{Op: "and", L: r.Filter, R: c}
		}
		if isEqualitySelection(c) {
			r.HasEqualitySelection = true
		}
	}
	return nil
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e sqlparse.Expr) []sqlparse.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(sqlparse.BinaryExpr); ok && be.Op == "and" {
		return append(splitAnd(be.L), splitAnd(be.R)...)
	}
	return []sqlparse.Expr{e}
}

// isEqualitySelection reports whether the predicate is a high-selectivity
// constraint, per §V-B. The paper names equality constraints; LIKE and
// IN filters are point-like in the same sense (they keep a small
// fraction of the relation, e.g. Q9's p_name LIKE '%green%' at ~5%), so
// they feed the same weight rule — without this, Q9's selective part
// relation is weighted as if unfiltered and lands too late in the order.
func isEqualitySelection(e sqlparse.Expr) bool {
	switch v := e.(type) {
	case sqlparse.BinaryExpr:
		if v.Op != "=" {
			return false
		}
		isLit := func(x sqlparse.Expr) bool {
			switch x.(type) {
			case sqlparse.NumberLit, sqlparse.StringLit, sqlparse.DateLit:
				return true
			}
			return false
		}
		_, lcol := v.L.(sqlparse.ColRef)
		_, rcol := v.R.(sqlparse.ColRef)
		return (lcol && isLit(v.R)) || (rcol && isLit(v.L))
	case sqlparse.LikeExpr:
		return !v.Negate
	case sqlparse.InExpr:
		return !v.Negate
	}
	return false
}

func (b *builder) find(k colKey) colKey {
	p, ok := b.joinParent[k]
	if !ok {
		b.joinParent[k] = k
		return k
	}
	if p == k {
		return k
	}
	root := b.find(p)
	b.joinParent[k] = root
	return root
}

func (b *builder) union(a, c colKey) {
	ra, rc := b.find(a), b.find(c)
	if ra != rc {
		b.joinParent[ra] = rc
	}
}

// buildVertices names one hypergraph vertex per join group (rule 1) and
// registers each member column.
func (b *builder) buildVertices() error {
	b.vertexOf = map[colKey]string{}
	groups := map[colKey][]colKey{}
	for k := range b.joinParent {
		r := b.find(k)
		groups[r] = append(groups[r], k)
	}
	usedNames := map[string]int{}
	for root, members := range groups {
		col := b.plan.Rels[root.rel].Table.Col(root.col)
		name := col.Def.DomainName()
		usedNames[name]++
		if usedNames[name] > 1 {
			name = fmt.Sprintf("%s#%d", name, usedNames[name])
		}
		for _, m := range members {
			b.vertexOf[m] = name
			b.addRelVertex(m.rel, name, m.col)
		}
	}
	return nil
}

// vertexForKeyCol returns the vertex of a key column, creating a fresh
// one if the column joins nothing (e.g. matrix output indices).
func (b *builder) vertexForKeyCol(rel int, col string) string {
	k := colKey{rel, col}
	if v, ok := b.vertexOf[k]; ok {
		return v
	}
	root := b.find(k)
	if v, ok := b.vertexOf[root]; ok {
		b.vertexOf[k] = v
		return v
	}
	c := b.plan.Rels[rel].Table.Col(col)
	name := c.Def.DomainName()
	// Disambiguate against existing vertex names.
	base, n := name, 1
	for b.vertexNameTaken(name) {
		n++
		name = fmt.Sprintf("%s#%d", base, n)
	}
	b.vertexOf[k] = name
	b.addRelVertex(rel, name, col)
	return name
}

func (b *builder) vertexNameTaken(name string) bool {
	for i := range b.plan.Rels {
		for _, v := range b.plan.Rels[i].Vertices {
			if v == name {
				return true
			}
		}
	}
	return false
}

func (b *builder) addRelVertex(rel int, vertex, col string) {
	r := &b.plan.Rels[rel]
	for _, v := range r.Vertices {
		if v == vertex {
			return
		}
	}
	r.Vertices = append(r.Vertices, vertex)
	r.VertexCol[vertex] = col
}

// pkVertex finds the relation's single-column primary key vertex in this
// query, or "" if the PK is not a join vertex here.
func (b *builder) pkVertex(rel int) string {
	r := &b.plan.Rels[rel]
	for _, cd := range r.Table.Schema.Cols {
		if !cd.PK {
			continue
		}
		if v, ok := b.vertexOf[colKey{rel, cd.Name}]; ok {
			return v
		}
	}
	return ""
}

// resolveGroupBy classifies GROUP BY items per the metadata container
// rules (§IV-A rule 4): key vertices directly; annotations through a PK
// metadata lookup when possible; otherwise promoted to pseudo-vertices.
func (b *builder) resolveGroupBy() error {
	for _, ge := range b.q.GroupBy {
		// GROUP BY may reference a SELECT alias.
		ge = b.expandAlias(ge)
		name := b.nameFor(ge)
		if cr, ok := ge.(sqlparse.ColRef); ok {
			ri, col, err := b.resolveCol(cr)
			if err != nil {
				return err
			}
			if col.Def.Role == storage.Key {
				v := b.vertexForKeyCol(ri, cr.Name)
				b.plan.Groups = append(b.plan.Groups, GroupItem{
					Name: name, Kind: GroupVertex, Vertex: v, Rel: ri, Col: cr.Name,
					String: col.Def.Kind == storage.String,
				})
				continue
			}
			// Annotation column: metadata if the relation's PK is a join
			// vertex, else pseudo-vertex.
			if pk := b.pkVertex(ri); pk != "" {
				b.plan.Groups = append(b.plan.Groups, GroupItem{
					Name: name, Kind: GroupMeta, Vertex: pk, Rel: ri, Expr: ge,
					Col: cr.Name, String: col.Def.Kind == storage.String,
				})
				continue
			}
			v := b.pseudoVertex(ri, cr.Name)
			b.plan.Groups = append(b.plan.Groups, GroupItem{
				Name: name, Kind: GroupPseudo, Vertex: v, Rel: ri, Col: cr.Name,
				String: col.Def.Kind == storage.String,
			})
			continue
		}
		// Computed expression: must reference one relation whose PK is a
		// join vertex.
		rels, err := b.relsOf(ge)
		if err != nil {
			return err
		}
		if len(rels) != 1 {
			return fmt.Errorf("planner: GROUP BY expression %s must reference exactly one relation", ge)
		}
		var ri int
		for i := range rels {
			ri = i
		}
		pk := b.pkVertex(ri)
		if pk == "" {
			return fmt.Errorf("planner: GROUP BY expression %s needs relation %s's primary key in the join", ge, b.plan.Rels[ri].Alias)
		}
		b.plan.Groups = append(b.plan.Groups, GroupItem{
			Name: name, Kind: GroupMeta, Vertex: pk, Rel: ri, Expr: ge,
		})
	}
	return nil
}

// pseudoVertex promotes an annotation column to a trie key level.
func (b *builder) pseudoVertex(rel int, col string) string {
	r := &b.plan.Rels[rel]
	name := r.Alias + "_" + col
	for _, pv := range r.PseudoVertices {
		if pv == name {
			return name
		}
	}
	r.PseudoVertices = append(r.PseudoVertices, name)
	r.Vertices = append(r.Vertices, name)
	r.VertexCol[name] = col
	return name
}

// expandAlias replaces a bare column reference matching a SELECT alias
// with the aliased expression (GROUP BY o_year for an extract alias).
func (b *builder) expandAlias(e sqlparse.Expr) sqlparse.Expr {
	cr, ok := e.(sqlparse.ColRef)
	if !ok || cr.Qualifier != "" {
		return e
	}
	// A real column wins over an alias.
	if _, _, err := b.resolveCol(cr); err == nil {
		return e
	}
	for _, it := range b.q.Select {
		if it.Alias == cr.Name {
			return it.Expr
		}
	}
	return e
}

// nameFor derives an output column name from an expression.
func (b *builder) nameFor(e sqlparse.Expr) string {
	if cr, ok := e.(sqlparse.ColRef); ok {
		return cr.Name
	}
	return strings.ReplaceAll(e.String(), " ", "")
}

// groupIndexFor matches a SELECT item against the GROUP BY list.
func (b *builder) groupIndexFor(e sqlparse.Expr) int {
	es := b.expandAlias(e).String()
	for i, ge := range b.q.GroupBy {
		if b.expandAlias(ge).String() == es {
			return i
		}
	}
	return -1
}

// resolveSelect classifies SELECT-list items and builds aggregates.
func (b *builder) resolveSelect() error {
	for _, it := range b.q.Select {
		name := it.Alias
		if name == "" {
			name = b.nameFor(it.Expr)
		}
		if gi := b.groupIndexFor(it.Expr); gi >= 0 {
			if it.Alias != "" {
				b.plan.Groups[gi].Name = it.Alias
			}
			b.plan.Outputs = append(b.plan.Outputs, OutItem{Name: name, Kind: OutGroup, Index: gi})
			continue
		}
		if cr, ok := it.Expr.(sqlparse.ColRef); ok {
			if _, _, err := b.resolveCol(cr); err != nil {
				return err
			}
			return fmt.Errorf("planner: SELECT item %s is neither grouped nor aggregated", cr)
		}
		// Aggregate or arithmetic over aggregates.
		node, nAggs, err := b.buildAggExpr(it.Expr)
		if err != nil {
			return err
		}
		if nAggs == 0 {
			return fmt.Errorf("planner: SELECT item %s is neither grouped nor aggregated", it.Expr)
		}
		if node.Op == EmitLeaf {
			b.plan.Outputs = append(b.plan.Outputs, OutItem{Name: name, Kind: OutAgg, Index: node.Leaf})
		} else {
			b.plan.Outputs = append(b.plan.Outputs, OutItem{Name: name, Kind: OutAggExpr, Expr: node})
		}
	}
	if len(b.plan.Outputs) == 0 {
		return fmt.Errorf("planner: empty SELECT list")
	}
	return nil
}

// resolveHaving compiles the HAVING clause into comparisons over
// aggregate skeletons (registering any aggregates not already in the
// SELECT list).
func (b *builder) resolveHaving() error {
	if b.q.Having == nil {
		return nil
	}
	h, err := b.buildHaving(b.q.Having)
	if err != nil {
		return err
	}
	b.plan.Having = h
	return nil
}

func (b *builder) buildHaving(e sqlparse.Expr) (*HavingNode, error) {
	switch v := e.(type) {
	case sqlparse.BinaryExpr:
		switch v.Op {
		case "and", "or":
			l, err := b.buildHaving(v.L)
			if err != nil {
				return nil, err
			}
			r, err := b.buildHaving(v.R)
			if err != nil {
				return nil, err
			}
			return &HavingNode{Op: v.Op, L: l, R: r}, nil
		case "=", "<>", "<", "<=", ">", ">=":
			le, _, err := b.buildAggExpr(v.L)
			if err != nil {
				return nil, err
			}
			re, _, err := b.buildAggExpr(v.R)
			if err != nil {
				return nil, err
			}
			return &HavingNode{Op: v.Op, LE: le, RE: re}, nil
		}
		return nil, fmt.Errorf("planner: unsupported HAVING operator %q", v.Op)
	case sqlparse.UnaryExpr:
		if v.Op == "not" {
			l, err := b.buildHaving(v.X)
			if err != nil {
				return nil, err
			}
			return &HavingNode{Op: "not", L: l}, nil
		}
	}
	return nil, fmt.Errorf("planner: HAVING must be comparisons over aggregates, got %s", e)
}

// buildAggExpr compiles a SELECT item into a skeleton whose leaves are
// aggregate indices; nAggs counts aggregates found.
func (b *builder) buildAggExpr(e sqlparse.Expr) (*EmitNode, int, error) {
	switch v := e.(type) {
	case sqlparse.FuncCall:
		idx, err := b.addAggregate(v)
		if err != nil {
			return nil, 0, err
		}
		if idx < 0 {
			// AVG expands to sum/count division.
			sumIdx := len(b.plan.Aggs) - 2
			cntIdx := len(b.plan.Aggs) - 1
			return &EmitNode{Op: EmitDiv,
				L: &EmitNode{Op: EmitLeaf, Leaf: sumIdx},
				R: &EmitNode{Op: EmitLeaf, Leaf: cntIdx},
			}, 2, nil
		}
		return &EmitNode{Op: EmitLeaf, Leaf: idx}, 1, nil
	case sqlparse.BinaryExpr:
		var op EmitOp
		switch v.Op {
		case "+":
			op = EmitAdd
		case "-":
			op = EmitSub
		case "*":
			op = EmitMul
		case "/":
			op = EmitDiv
		default:
			return nil, 0, fmt.Errorf("planner: operator %q over aggregates is not supported", v.Op)
		}
		l, nl, err := b.buildAggExpr(v.L)
		if err != nil {
			return nil, 0, err
		}
		r, nr, err := b.buildAggExpr(v.R)
		if err != nil {
			return nil, 0, err
		}
		return &EmitNode{Op: op, L: l, R: r}, nl + nr, nil
	case sqlparse.NumberLit:
		return &EmitNode{Op: EmitConst, Const: v.Val}, 0, nil
	default:
		return nil, 0, fmt.Errorf("planner: unsupported SELECT expression %s", e)
	}
}

// addAggregate registers one aggregate function call, returning its
// index, or -1 when AVG expanded into two aggregates.
func (b *builder) addAggregate(fc sqlparse.FuncCall) (int, error) {
	if fc.Distinct {
		// Distinct aggregation is served by the approximate tier's scan
		// evaluator (exact hash-set or HLL), not the WCOJ pipeline: a
		// distinct call reaching the planner means the front-end could not
		// handle the query shape.
		return 0, fmt.Errorf("planner: %s(distinct) is only supported over a single table without joins", fc.Name)
	}
	switch fc.Name {
	case "count":
		// COUNT(*) and COUNT(expr) (no NULLs in this engine) are the
		// product of relation multiplicities.
		b.plan.Aggs = append(b.plan.Aggs, AggSpec{Name: "count", Kind: AggCount})
		return len(b.plan.Aggs) - 1, nil
	case "avg":
		if len(fc.Args) != 1 {
			return 0, fmt.Errorf("planner: avg takes one argument")
		}
		if _, err := b.addSum("avg_sum", fc.Args[0]); err != nil {
			return 0, err
		}
		b.plan.Aggs = append(b.plan.Aggs, AggSpec{Name: "avg_count", Kind: AggCount})
		return -1, nil
	case "sum":
		if len(fc.Args) != 1 {
			return 0, fmt.Errorf("planner: sum takes one argument")
		}
		return b.addSum("sum", fc.Args[0])
	case "min", "max":
		if len(fc.Args) != 1 {
			return 0, fmt.Errorf("planner: %s takes one argument", fc.Name)
		}
		rels, err := b.relsOf(fc.Args[0])
		if err != nil {
			return 0, err
		}
		if len(rels) != 1 {
			return 0, fmt.Errorf("planner: %s over multiple relations is not supported", fc.Name)
		}
		var ri int
		for i := range rels {
			ri = i
		}
		if err := b.checkNoKeys(fc.Args[0]); err != nil {
			return 0, err
		}
		kind := AggMin
		if fc.Name == "max" {
			kind = AggMax
		}
		spec := AggSpec{Name: fc.Name, Kind: kind,
			Leaves:   []AggLeaf{{Rel: ri, Expr: fc.Args[0]}},
			Skeleton: &EmitNode{Op: EmitLeaf, Leaf: 0},
		}
		b.plan.Aggs = append(b.plan.Aggs, spec)
		return len(b.plan.Aggs) - 1, nil
	default:
		return 0, fmt.Errorf("planner: unknown aggregate %q", fc.Name)
	}
}

// addSum decomposes a SUM argument into per-relation leaves and a
// cross-relation skeleton (§IV-A rule 3 generalized to multilinear
// expressions).
func (b *builder) addSum(name string, arg sqlparse.Expr) (int, error) {
	if err := b.checkNoKeys(arg); err != nil {
		return 0, err
	}
	spec := AggSpec{Name: name, Kind: AggSum}
	skel, err := b.decompose(arg, &spec)
	if err != nil {
		return 0, err
	}
	spec.Skeleton = skel
	b.plan.Aggs = append(b.plan.Aggs, spec)
	return len(b.plan.Aggs) - 1, nil
}

// checkNoKeys enforces the data-model rule that keys cannot be
// aggregated (§III-A).
func (b *builder) checkNoKeys(e sqlparse.Expr) error {
	var bad error
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		if bad != nil {
			return
		}
		switch v := e.(type) {
		case sqlparse.ColRef:
			_, col, err := b.resolveCol(v)
			if err == nil && col.Def.Role == storage.Key {
				bad = fmt.Errorf("planner: key attribute %s cannot be aggregated", v)
			}
		case sqlparse.BinaryExpr:
			walk(v.L)
			walk(v.R)
		case sqlparse.UnaryExpr:
			walk(v.X)
		case sqlparse.CaseExpr:
			for _, w := range v.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if v.Else != nil {
				walk(v.Else)
			}
		case sqlparse.ExtractExpr:
			walk(v.X)
		}
	}
	walk(e)
	return bad
}

// decompose splits an aggregate argument into single-relation leaves
// connected by an arithmetic skeleton. Each maximal single-relation
// subexpression becomes one leaf, evaluated per source row and
// pre-aggregated into that relation's trie annotation.
func (b *builder) decompose(e sqlparse.Expr, spec *AggSpec) (*EmitNode, error) {
	rels, err := b.relsOf(e)
	if err != nil {
		return nil, err
	}
	if len(rels) == 0 {
		v, ok := constFold(e)
		if !ok {
			return nil, fmt.Errorf("planner: cannot fold constant expression %s", e)
		}
		return &EmitNode{Op: EmitConst, Const: v}, nil
	}
	if len(rels) == 1 {
		var ri int
		for i := range rels {
			ri = i
		}
		spec.Leaves = append(spec.Leaves, AggLeaf{Rel: ri, Expr: e})
		return &EmitNode{Op: EmitLeaf, Leaf: len(spec.Leaves) - 1}, nil
	}
	switch v := e.(type) {
	case sqlparse.BinaryExpr:
		var op EmitOp
		switch v.Op {
		case "+":
			op = EmitAdd
		case "-":
			op = EmitSub
		case "*":
			op = EmitMul
		case "/":
			op = EmitDiv
		default:
			return nil, fmt.Errorf("planner: cannot decompose cross-relation %s", e)
		}
		l, err := b.decompose(v.L, spec)
		if err != nil {
			return nil, err
		}
		r, err := b.decompose(v.R, spec)
		if err != nil {
			return nil, err
		}
		return &EmitNode{Op: op, L: l, R: r}, nil
	case sqlparse.CaseExpr:
		// CASE WHEN p THEN x ELSE 0 END with p and x on different single
		// relations rewrites to indicator(p) * x (paper Q8).
		if len(v.Whens) != 1 {
			return nil, fmt.Errorf("planner: cross-relation CASE must have a single WHEN")
		}
		if v.Else != nil {
			if c, ok := constFold(v.Else); !ok || c != 0 {
				return nil, fmt.Errorf("planner: cross-relation CASE requires ELSE 0")
			}
		}
		cond, err := b.decompose(v.Whens[0].Cond, spec)
		if err != nil {
			return nil, err
		}
		then, err := b.decompose(v.Whens[0].Then, spec)
		if err != nil {
			return nil, err
		}
		return &EmitNode{Op: EmitMulInd, L: cond, R: then}, nil
	default:
		return nil, fmt.Errorf("planner: cannot decompose cross-relation expression %s", e)
	}
}

// constFold evaluates a literal-only numeric expression.
func constFold(e sqlparse.Expr) (float64, bool) {
	switch v := e.(type) {
	case sqlparse.NumberLit:
		return v.Val, true
	case sqlparse.DateLit:
		return float64(v.Days), true
	case sqlparse.UnaryExpr:
		if v.Op == "-" {
			x, ok := constFold(v.X)
			return -x, ok
		}
	case sqlparse.BinaryExpr:
		l, lok := constFold(v.L)
		r, rok := constFold(v.R)
		if lok && rok {
			switch v.Op {
			case "+":
				return l + r, true
			case "-":
				return l - r, true
			case "*":
				return l * r, true
			case "/":
				return l / r, true
			}
		}
	}
	return 0, false
}

// finishHypergraph applies rule 1's edge construction, detects the
// scalar-scan fast path, and runs GHD selection.
func (b *builder) finishHypergraph() error {
	p := b.plan
	// Materialized vertices: those needed by group items.
	seen := map[string]bool{}
	for _, g := range p.Groups {
		if !seen[g.Vertex] {
			seen[g.Vertex] = true
			p.OutVertices = append(p.OutVertices, g.Vertex)
		}
	}

	// Scalar scan: one relation, no vertices at all, no groups.
	if len(p.Rels) == 1 && len(p.Rels[0].Vertices) == 0 && len(p.Groups) == 0 {
		p.ScalarScan = true
		return nil
	}

	var edges []hypergraph.Edge
	var selEdges []int
	for i := range p.Rels {
		r := &p.Rels[i]
		if len(r.Vertices) == 0 {
			return fmt.Errorf("planner: relation %s joins nothing (cartesian products are not supported)", r.Alias)
		}
		edges = append(edges, hypergraph.Edge{
			Name:     r.Alias,
			Vertices: append([]string(nil), r.Vertices...),
			Card:     r.Table.LiveRows(),
		})
		if r.HasEqualitySelection {
			selEdges = append(selEdges, i)
		}
	}
	hg, err := hypergraph.New(edges)
	if err != nil {
		return err
	}
	p.HG = hg

	// Hash-emit candidacy: every group item is a metadata expression, so
	// no vertex needs to lead the attribute order — aggregate into a
	// hash table at emit instead (Fig. 4's out(n_n) += pattern). Valid
	// only if the unconstrained GHD's root still binds every metadata
	// vertex.
	allMeta := len(p.Groups) > 0
	for _, g := range p.Groups {
		if g.Kind != GroupMeta {
			allMeta = false
			break
		}
	}
	if allMeta {
		g, err := ghd.Decompose(hg, ghd.Options{SelectionEdges: selEdges})
		if err == nil && rootCovers(g, p.OutVertices) {
			p.GHD = g
			p.HashEmit = true
			p.OutVertices = nil
			return nil
		}
	}

	g, err := ghd.Decompose(hg, ghd.Options{
		RootMustContain: p.OutVertices,
		SelectionEdges:  selEdges,
	})
	if err != nil {
		return err
	}
	p.GHD = g
	return nil
}

// rootCovers reports whether the root bag contains every vertex.
func rootCovers(g *ghd.GHD, verts []string) bool {
	for _, v := range verts {
		found := false
		for _, b := range g.Root.Bag {
			if b == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
