// Package planner translates parsed SQL queries into LevelHeaded's
// logical plan: the query hypergraph built by the four rules of paper
// §IV-A, the GHD chosen per §IV-B, the AJAR aggregate decomposition
// (per-relation annotation factors plus a cross-relation emit skeleton),
// the metadata container M for non-aggregated annotations, and the
// attribute-elimination decisions that determine exactly which trie
// levels and annotation buffers a query touches.
package planner

import (
	"fmt"

	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// RelInfo is one relation occurrence (FROM-list entry) in a plan.
type RelInfo struct {
	// Alias is the unique FROM alias.
	Alias string
	Table *storage.Table
	// Vertices are the hypergraph vertices this relation covers, in the
	// order of the underlying key columns (join vertices first, then
	// pseudo-vertices). VertexCol maps vertex → column name.
	Vertices  []string
	VertexCol map[string]string
	// PseudoVertices are GROUP BY annotation columns promoted to trie key
	// levels because no key-based metadata lookup can resolve them
	// (paper Q1: l_returnflag, l_linestatus).
	PseudoVertices []string
	// Filter is the conjunction of single-relation predicates, applied
	// while the query trie is built; nil when the relation is unfiltered.
	Filter sqlparse.Expr
	// HasEqualitySelection feeds GHD heuristic 4 and the §V-B weight rule.
	HasEqualitySelection bool
}

// AggKind is the SQL aggregate function class.
type AggKind uint8

const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
)

func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return "agg?"
}

// AggLeaf is a per-relation annotation factor: Expr evaluated per source
// row of Rel, pre-aggregated over duplicate key tuples during trie
// construction (the AJAR annotation of that relation, §IV-A rule 3).
type AggLeaf struct {
	Rel  int
	Expr sqlparse.Expr
}

// EmitOp is an operator of the cross-relation emit skeleton.
type EmitOp uint8

const (
	EmitLeaf EmitOp = iota
	EmitConst
	EmitAdd
	EmitSub
	EmitMul
	EmitDiv
	// EmitMulInd is the indicator product of a decomposed CASE WHEN p
	// THEN x ELSE 0: a left operand of exactly 0 short-circuits to 0
	// without evaluating IEEE 0*NaN or 0*Inf, which would leak a NaN
	// into groups whose predicate never fired.
	EmitMulInd
)

// EmitNode is the skeleton combining per-relation leaves into the value
// added to an aggregate for each WCOJ result tuple. Leaves must appear
// linearly per relation (guaranteed by construction for the supported
// SQL shapes), which keeps pre-aggregation of duplicates sound.
type EmitNode struct {
	Op    EmitOp
	Leaf  int // EmitLeaf: index into AggSpec.Leaves
	Const float64
	L, R  *EmitNode
}

// AggSpec is one aggregate computed by the query.
type AggSpec struct {
	Name     string
	Kind     AggKind
	Leaves   []AggLeaf
	Skeleton *EmitNode
}

// GroupKind classifies a GROUP BY item.
type GroupKind uint8

const (
	// GroupVertex is a direct reference to a join vertex (key column).
	GroupVertex GroupKind = iota
	// GroupMeta is an expression over annotations of one relation,
	// resolved through the metadata container: the relation's PK vertex
	// code locates a source row, on which the expression is evaluated.
	GroupMeta
	// GroupPseudo is an annotation column promoted to a trie level.
	GroupPseudo
)

// GroupItem is one GROUP BY output column.
type GroupItem struct {
	Name string
	Kind GroupKind
	// Vertex: GroupVertex/GroupPseudo — the hypergraph vertex holding the
	// value. GroupMeta — the PK vertex used for the metadata row lookup.
	Vertex string
	// Rel/Expr: GroupMeta — relation and expression to evaluate on the
	// looked-up source row. GroupPseudo — relation and source column.
	Rel    int
	Expr   sqlparse.Expr
	Col    string // GroupPseudo / GroupVertex: source column name
	String bool   // output value is a string (decode through a dictionary)
}

// OutKind classifies a SELECT-list item.
type OutKind uint8

const (
	OutGroup OutKind = iota
	OutAgg
	OutAggExpr
)

// OutItem is one SELECT-list output column.
type OutItem struct {
	Name  string
	Kind  OutKind
	Index int       // OutGroup: group index; OutAgg: aggregate index
	Expr  *EmitNode // OutAggExpr: skeleton whose leaves index Aggs
}

// HavingNode is the compiled HAVING predicate: logical combinators over
// comparisons whose operands are skeletons evaluated on the final
// per-group aggregate values.
type HavingNode struct {
	// Op is "and", "or", "not", or a comparison (= <> < <= > >=).
	Op     string
	L, R   *HavingNode // logical children ("not" uses L only)
	LE, RE *EmitNode   // comparison operands (leaves index Plan.Aggs)
}

// Plan is the complete logical plan.
type Plan struct {
	Rels    []RelInfo
	HG      *hypergraph.Hypergraph
	GHD     *ghd.GHD
	Aggs    []AggSpec
	Groups  []GroupItem
	Outputs []OutItem
	// Having filters final groups; nil when absent.
	Having *HavingNode
	// OutVertices are the materialized hypergraph vertices (needed by
	// group items), which must lead every attribute order.
	OutVertices []string
	// ScalarScan marks the single-relation, no-join, no-group-by fast
	// path (paper Q6): a filtered fold with no trie.
	ScalarScan bool
	// HashEmit marks plans whose GROUP BY items are all metadata
	// expressions: instead of materializing their key vertices at the
	// front of the attribute order (which can force a low-cardinality
	// attribute into an outer loop), the engine aggregates into a hash
	// table keyed by the metadata values at emit time — the
	// `out(n_n) += ...` pattern of the paper's Fig. 4 generated code.
	// OutVertices is empty and the order is unconstrained.
	HashEmit bool
}

// RelIndex returns the index of the relation with the given alias, or -1.
func (p *Plan) RelIndex(alias string) int {
	for i := range p.Rels {
		if p.Rels[i].Alias == alias {
			return i
		}
	}
	return -1
}

func (p *Plan) String() string {
	s := fmt.Sprintf("plan: %d rels, %d aggs, %d groups", len(p.Rels), len(p.Aggs), len(p.Groups))
	if p.HG != nil {
		s += "\n  " + p.HG.String()
	}
	if p.GHD != nil {
		s += "\n" + p.GHD.String()
	}
	return s
}
