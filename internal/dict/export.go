package dict

import "fmt"

// Snapshot is the serializable form of a Dictionary: the ordered
// prefix plus the unsorted tail in its original first-seen order.
// Restoring a Snapshot reproduces the exact value→code mapping,
// including tail codes — the property the on-disk catalog snapshot
// relies on to keep persisted key codes meaningful across restarts.
type Snapshot struct {
	Kind     Kind      `json:"kind"`
	Identity bool      `json:"identity,omitempty"`
	HasNaN   bool      `json:"has_nan,omitempty"`
	Base     int       `json:"base"`
	N        int       `json:"n"`
	Ints     []int64   `json:"ints,omitempty"`
	Floats   []float64 `json:"floats,omitempty"`
	Strs     []string  `json:"strs,omitempty"`
	TailInts []int64   `json:"tail_ints,omitempty"`
	TailStrs []string  `json:"tail_strs,omitempty"`
}

// Export captures d's full state. The returned snapshot shares d's
// backing arrays — d is immutable, so that is safe for serialization.
func (d *Dictionary) Export() Snapshot {
	return Snapshot{
		Kind:     d.kind,
		Identity: d.identity,
		HasNaN:   d.hasNaN,
		Base:     d.base,
		N:        d.n,
		Ints:     d.ints,
		Floats:   d.floats,
		Strs:     d.strs,
		TailInts: d.tailInts,
		TailStrs: d.tailStrs,
	}
}

// Restore rebuilds a Dictionary from a Snapshot, reconstructing the
// tail lookup indexes. It validates internal consistency so a corrupt
// or hand-edited snapshot fails loudly instead of minting dictionaries
// whose codes silently disagree with persisted columns.
func Restore(s Snapshot) (*Dictionary, error) {
	d := &Dictionary{
		kind:     s.Kind,
		identity: s.Identity,
		hasNaN:   s.HasNaN,
		base:     s.Base,
		n:        s.N,
		ints:     s.Ints,
		floats:   s.Floats,
		strs:     s.Strs,
		tailInts: s.TailInts,
		tailStrs: s.TailStrs,
	}
	prefixLen := 0
	switch s.Kind {
	case Int:
		if d.identity {
			prefixLen = d.base
		} else {
			prefixLen = len(d.ints)
		}
	case Float:
		prefixLen = len(d.floats)
		if len(d.tailInts) != 0 || len(d.tailStrs) != 0 {
			return nil, fmt.Errorf("dict: float snapshot carries a tail")
		}
	case String:
		prefixLen = len(d.strs)
	default:
		return nil, fmt.Errorf("dict: snapshot has unknown kind %d", uint8(s.Kind))
	}
	if prefixLen != d.base {
		return nil, fmt.Errorf("dict: snapshot prefix length %d != base %d", prefixLen, d.base)
	}
	tailLen := d.n - d.base
	if tailLen < 0 {
		return nil, fmt.Errorf("dict: snapshot n %d < base %d", d.n, d.base)
	}
	switch {
	case tailLen == 0:
		if len(d.tailInts) != 0 || len(d.tailStrs) != 0 {
			return nil, fmt.Errorf("dict: snapshot tail present but n == base")
		}
	case s.Kind == String:
		if len(d.tailStrs) != tailLen {
			return nil, fmt.Errorf("dict: snapshot string tail %d != n-base %d", len(d.tailStrs), tailLen)
		}
		d.tailIdxS = make(map[string]uint32, tailLen)
		for i, v := range d.tailStrs {
			d.tailIdxS[v] = uint32(d.base + i)
		}
	default: // Int (explicit or identity) tails live in tailInts
		if len(d.tailInts) != tailLen {
			return nil, fmt.Errorf("dict: snapshot int tail %d != n-base %d", len(d.tailInts), tailLen)
		}
		d.tailIdxI = make(map[int64]uint32, tailLen)
		for i, v := range d.tailInts {
			d.tailIdxI[v] = uint32(d.base + i)
		}
	}
	return d, nil
}
