// Package dict implements the order-preserving dictionary encoding that
// LevelHeaded applies to every key attribute before it enters a trie
// (paper §III-B). Codes are dense uint32 ranks, so range predicates on
// encoded values are equivalent to range predicates on the original
// values, and join-compatible columns that share a dictionary join by
// simple code equality.
package dict

import (
	"fmt"
	"sort"
)

// Kind is the logical type of the values held by a dictionary.
type Kind uint8

const (
	// Int covers int and long SQL types, plus dates (days since epoch).
	Int Kind = iota
	// Float covers float and double SQL types used as keys.
	Float
	// String covers string keys.
	String
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Dictionary maps values of one Kind to dense, order-preserving uint32
// codes. A Dictionary is immutable after Build.
//
// The identity form (NewIdentity) maps the integers [0, n) to
// themselves with no storage; it is the natural encoding of matrix
// indices and other already-dense keys.
type Dictionary struct {
	kind     Kind
	identity bool
	n        int
	ints     []int64
	floats   []float64
	strs     []string
}

// NewIdentity returns the identity dictionary over [0, n).
func NewIdentity(n int) *Dictionary {
	return &Dictionary{kind: Int, identity: true, n: n}
}

// Kind reports the logical type of the dictionary's values.
func (d *Dictionary) Kind() Kind { return d.kind }

// Len reports the number of distinct values (the code space size).
func (d *Dictionary) Len() int { return d.n }

// Identity reports whether d is an identity dictionary.
func (d *Dictionary) Identity() bool { return d.identity }

// EncodeInt returns the code for v. ok is false if v is not in the
// dictionary.
func (d *Dictionary) EncodeInt(v int64) (uint32, bool) {
	if d.identity {
		if v < 0 || v >= int64(d.n) {
			return 0, false
		}
		return uint32(v), true
	}
	if d.kind != Int {
		return 0, false
	}
	i := sort.Search(len(d.ints), func(i int) bool { return d.ints[i] >= v })
	if i < len(d.ints) && d.ints[i] == v {
		return uint32(i), true
	}
	return 0, false
}

// EncodeFloat returns the code for v.
func (d *Dictionary) EncodeFloat(v float64) (uint32, bool) {
	if d.kind != Float {
		return 0, false
	}
	i := sort.Search(len(d.floats), func(i int) bool { return d.floats[i] >= v })
	if i < len(d.floats) && d.floats[i] == v {
		return uint32(i), true
	}
	return 0, false
}

// EncodeString returns the code for v.
func (d *Dictionary) EncodeString(v string) (uint32, bool) {
	if d.kind != String {
		return 0, false
	}
	i := sort.Search(len(d.strs), func(i int) bool { return d.strs[i] >= v })
	if i < len(d.strs) && d.strs[i] == v {
		return uint32(i), true
	}
	return 0, false
}

// LowerBoundInt returns the smallest code whose value is >= v. If every
// value is < v, it returns Len(). Order preservation makes this the
// translation of a range predicate into code space.
func (d *Dictionary) LowerBoundInt(v int64) uint32 {
	if d.identity {
		switch {
		case v < 0:
			return 0
		case v > int64(d.n):
			return uint32(d.n)
		default:
			return uint32(v)
		}
	}
	return uint32(sort.Search(len(d.ints), func(i int) bool { return d.ints[i] >= v }))
}

// LowerBoundFloat is LowerBoundInt for float dictionaries.
func (d *Dictionary) LowerBoundFloat(v float64) uint32 {
	return uint32(sort.Search(len(d.floats), func(i int) bool { return d.floats[i] >= v }))
}

// LowerBoundString is LowerBoundInt for string dictionaries.
func (d *Dictionary) LowerBoundString(v string) uint32 {
	return uint32(sort.Search(len(d.strs), func(i int) bool { return d.strs[i] >= v }))
}

// DecodeInt returns the integer value for code c.
func (d *Dictionary) DecodeInt(c uint32) int64 {
	if d.identity {
		return int64(c)
	}
	return d.ints[c]
}

// DecodeFloat returns the float value for code c.
func (d *Dictionary) DecodeFloat(c uint32) float64 { return d.floats[c] }

// DecodeString returns the string value for code c.
func (d *Dictionary) DecodeString(c uint32) string { return d.strs[c] }

// Builder accumulates values across one or more columns that share a
// join domain and produces their common Dictionary.
type Builder struct {
	kind   Kind
	seenI  map[int64]struct{}
	seenF  map[float64]struct{}
	seenS  map[string]struct{}
	sealed bool
}

// NewBuilder returns a Builder for values of the given kind.
func NewBuilder(kind Kind) *Builder {
	b := &Builder{kind: kind}
	switch kind {
	case Int:
		b.seenI = make(map[int64]struct{})
	case Float:
		b.seenF = make(map[float64]struct{})
	case String:
		b.seenS = make(map[string]struct{})
	}
	return b
}

// AddInt records an integer value.
func (b *Builder) AddInt(v int64) { b.seenI[v] = struct{}{} }

// AddFloat records a float value.
func (b *Builder) AddFloat(v float64) { b.seenF[v] = struct{}{} }

// AddString records a string value.
func (b *Builder) AddString(v string) { b.seenS[v] = struct{}{} }

// Build seals the builder and returns the order-preserving dictionary.
// If every recorded integer lies in [0, 4·count) and forms a dense
// enough prefix, Build still returns an explicit dictionary; callers
// that know their keys are exactly [0, n) should use NewIdentity.
func (b *Builder) Build() *Dictionary {
	if b.sealed {
		panic("dict: Build called twice")
	}
	b.sealed = true
	d := &Dictionary{kind: b.kind}
	switch b.kind {
	case Int:
		d.ints = make([]int64, 0, len(b.seenI))
		for v := range b.seenI {
			d.ints = append(d.ints, v)
		}
		sort.Slice(d.ints, func(i, j int) bool { return d.ints[i] < d.ints[j] })
		d.n = len(d.ints)
	case Float:
		d.floats = make([]float64, 0, len(b.seenF))
		for v := range b.seenF {
			d.floats = append(d.floats, v)
		}
		sort.Float64s(d.floats)
		d.n = len(d.floats)
	case String:
		d.strs = make([]string, 0, len(b.seenS))
		for v := range b.seenS {
			d.strs = append(d.strs, v)
		}
		sort.Strings(d.strs)
		d.n = len(d.strs)
	}
	return d
}
