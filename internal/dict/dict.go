// Package dict implements the order-preserving dictionary encoding that
// LevelHeaded applies to every key attribute before it enters a trie
// (paper §III-B). Codes are dense uint32 ranks, so range predicates on
// encoded values are equivalent to range predicates on the original
// values, and join-compatible columns that share a dictionary join by
// simple code equality.
package dict

import (
	"fmt"
	"math"
	"sort"
)

// Kind is the logical type of the values held by a dictionary.
type Kind uint8

const (
	// Int covers int and long SQL types, plus dates (days since epoch).
	Int Kind = iota
	// Float covers float and double SQL types used as keys.
	Float
	// String covers string keys.
	String
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Dictionary maps values of one Kind to dense, order-preserving uint32
// codes. A Dictionary is immutable after Build; post-freeze values are
// admitted through ExtendInts/ExtendStrings, which return a NEW
// dictionary sharing the ordered prefix and carrying the extra values
// in an append-only, unsorted tail. Tail codes are dense continuations
// of the prefix code space ([base, n)), so code equality still means
// value equality across every extension — but code ORDER is only
// meaningful within the ordered prefix. LowerBound* therefore operate
// on the prefix alone; callers translating range predicates must not
// assume tail codes are ordered.
//
// The identity form (NewIdentity) maps the integers [0, n) to
// themselves with no storage; it is the natural encoding of matrix
// indices and other already-dense keys.
type Dictionary struct {
	kind     Kind
	identity bool
	n        int
	ints     []int64
	floats   []float64
	strs     []string
	// hasNaN marks a float dictionary whose last code is the canonical
	// NaN entry. NaN compares unequal to everything (including itself),
	// so it must be kept out of the binary-searched prefix: exactly one
	// code represents all NaNs and it sorts after every ordered value.
	hasNaN bool

	// base is the size of the ordered prefix (== n until the first
	// extension). Codes >= base live in the unsorted tail.
	base     int
	tailInts []int64
	tailStrs []string
	tailIdxI map[int64]uint32
	tailIdxS map[string]uint32
}

// NewIdentity returns the identity dictionary over [0, n).
func NewIdentity(n int) *Dictionary {
	return &Dictionary{kind: Int, identity: true, n: n, base: n}
}

// Kind reports the logical type of the dictionary's values.
func (d *Dictionary) Kind() Kind { return d.kind }

// Len reports the number of distinct values (the code space size).
func (d *Dictionary) Len() int { return d.n }

// Identity reports whether d is an identity dictionary.
func (d *Dictionary) Identity() bool { return d.identity }

// HasNaN reports whether a float dictionary carries the canonical NaN
// entry (always the last code).
func (d *Dictionary) HasNaN() bool { return d.hasNaN }

// EncodeInt returns the code for v. ok is false if v is not in the
// dictionary (prefix or tail).
func (d *Dictionary) EncodeInt(v int64) (uint32, bool) {
	if d.identity {
		if v >= 0 && v < int64(d.base) {
			return uint32(v), true
		}
		if c, ok := d.tailIdxI[v]; ok {
			return c, true
		}
		return 0, false
	}
	if d.kind != Int {
		return 0, false
	}
	i := sort.Search(len(d.ints), func(i int) bool { return d.ints[i] >= v })
	if i < len(d.ints) && d.ints[i] == v {
		return uint32(i), true
	}
	if c, ok := d.tailIdxI[v]; ok {
		return c, true
	}
	return 0, false
}

// EncodeFloat returns the code for v. All NaN payloads map to the one
// canonical NaN code (if present); -0.0 encodes as +0.0.
func (d *Dictionary) EncodeFloat(v float64) (uint32, bool) {
	if d.kind != Float {
		return 0, false
	}
	if math.IsNaN(v) {
		if d.hasNaN {
			return uint32(d.n - 1), true
		}
		return 0, false
	}
	if v == 0 {
		v = 0
	}
	ordered := d.orderedFloats()
	i := sort.Search(len(ordered), func(i int) bool { return ordered[i] >= v })
	if i < len(ordered) && ordered[i] == v {
		return uint32(i), true
	}
	return 0, false
}

// orderedFloats returns the totally ordered (NaN-free) prefix that
// binary searches may run over.
func (d *Dictionary) orderedFloats() []float64 {
	if d.hasNaN {
		return d.floats[:len(d.floats)-1]
	}
	return d.floats
}

// EncodeString returns the code for v.
func (d *Dictionary) EncodeString(v string) (uint32, bool) {
	if d.kind != String {
		return 0, false
	}
	i := sort.Search(len(d.strs), func(i int) bool { return d.strs[i] >= v })
	if i < len(d.strs) && d.strs[i] == v {
		return uint32(i), true
	}
	if c, ok := d.tailIdxS[v]; ok {
		return c, true
	}
	return 0, false
}

// LowerBoundInt returns the smallest PREFIX code whose value is >= v.
// If every prefix value is < v, it returns the prefix length. Order
// preservation makes this the translation of a range predicate into
// code space; tail codes (post-freeze extensions) are unsorted and
// deliberately excluded.
func (d *Dictionary) LowerBoundInt(v int64) uint32 {
	if d.identity {
		switch {
		case v < 0:
			return 0
		case v > int64(d.base):
			return uint32(d.base)
		default:
			return uint32(v)
		}
	}
	return uint32(sort.Search(len(d.ints), func(i int) bool { return d.ints[i] >= v }))
}

// LowerBoundFloat is LowerBoundInt for float dictionaries. The NaN
// code (when present) sorts after every real value, so it is never
// covered by a finite lower bound; a NaN argument bounds nothing and
// returns Len().
func (d *Dictionary) LowerBoundFloat(v float64) uint32 {
	if math.IsNaN(v) {
		return uint32(d.n)
	}
	ordered := d.orderedFloats()
	return uint32(sort.Search(len(ordered), func(i int) bool { return ordered[i] >= v }))
}

// LowerBoundString is LowerBoundInt for string dictionaries.
func (d *Dictionary) LowerBoundString(v string) uint32 {
	return uint32(sort.Search(len(d.strs), func(i int) bool { return d.strs[i] >= v }))
}

// DecodeInt returns the integer value for code c.
func (d *Dictionary) DecodeInt(c uint32) int64 {
	if int(c) >= d.base {
		return d.tailInts[int(c)-d.base]
	}
	if d.identity {
		return int64(c)
	}
	return d.ints[c]
}

// DecodeFloat returns the float value for code c.
func (d *Dictionary) DecodeFloat(c uint32) float64 { return d.floats[c] }

// DecodeString returns the string value for code c.
func (d *Dictionary) DecodeString(c uint32) string {
	if int(c) >= d.base {
		return d.tailStrs[int(c)-d.base]
	}
	return d.strs[c]
}

// TailLen reports how many codes live in the unsorted tail (values
// admitted after the dictionary was built).
func (d *Dictionary) TailLen() int { return d.n - d.base }

// extendClone copies the mutable tail state so extensions never alias
// the tail of the dictionary they grew from (older snapshots keep
// reading their own tail unperturbed).
func (d *Dictionary) extendClone() *Dictionary {
	nd := *d
	nd.tailInts = append([]int64(nil), d.tailInts...)
	nd.tailStrs = append([]string(nil), d.tailStrs...)
	if d.tailIdxI != nil {
		nd.tailIdxI = make(map[int64]uint32, len(d.tailIdxI))
		for k, v := range d.tailIdxI {
			nd.tailIdxI[k] = v
		}
	}
	if d.tailIdxS != nil {
		nd.tailIdxS = make(map[string]uint32, len(d.tailIdxS))
		for k, v := range d.tailIdxS {
			nd.tailIdxS[k] = v
		}
	}
	return &nd
}

// ExtendInts returns a dictionary extended with any of vals not already
// present, appended to the unsorted tail in first-seen order. d itself
// is unchanged; prefix storage is shared. Existing codes (prefix and
// tail) are stable across the extension.
func (d *Dictionary) ExtendInts(vals []int64) *Dictionary {
	if d.kind != Int {
		panic(fmt.Sprintf("dict: ExtendInts on %v dictionary", d.kind))
	}
	nd := d.extendClone()
	for _, v := range vals {
		if _, ok := nd.EncodeInt(v); ok {
			continue
		}
		if nd.tailIdxI == nil {
			nd.tailIdxI = make(map[int64]uint32)
		}
		nd.tailIdxI[v] = uint32(nd.n)
		nd.tailInts = append(nd.tailInts, v)
		nd.n++
	}
	return nd
}

// ExtendStrings is ExtendInts for string dictionaries.
func (d *Dictionary) ExtendStrings(vals []string) *Dictionary {
	if d.kind != String {
		panic(fmt.Sprintf("dict: ExtendStrings on %v dictionary", d.kind))
	}
	nd := d.extendClone()
	for _, v := range vals {
		if _, ok := nd.EncodeString(v); ok {
			continue
		}
		if nd.tailIdxS == nil {
			nd.tailIdxS = make(map[string]uint32)
		}
		nd.tailIdxS[v] = uint32(nd.n)
		nd.tailStrs = append(nd.tailStrs, v)
		nd.n++
	}
	return nd
}

// Builder accumulates values across one or more columns that share a
// join domain and produces their common Dictionary.
type Builder struct {
	kind   Kind
	seenI  map[int64]struct{}
	seenF  map[float64]struct{}
	seenS  map[string]struct{}
	hasNaN bool
	sealed bool
}

// NewBuilder returns a Builder for values of the given kind.
func NewBuilder(kind Kind) *Builder {
	b := &Builder{kind: kind}
	switch kind {
	case Int:
		b.seenI = make(map[int64]struct{})
	case Float:
		b.seenF = make(map[float64]struct{})
	case String:
		b.seenS = make(map[string]struct{})
	}
	return b
}

// AddInt records an integer value.
func (b *Builder) AddInt(v int64) { b.seenI[v] = struct{}{} }

// AddFloat records a float value. NaN is canonicalized to a single
// dictionary entry (Go map keys treat each NaN as distinct, so storing
// them raw would mint one code per insert and break lookups); -0.0 is
// folded into +0.0 so the two encode identically.
func (b *Builder) AddFloat(v float64) {
	if math.IsNaN(v) {
		b.hasNaN = true
		return
	}
	if v == 0 {
		v = 0 // collapse -0.0 into +0.0
	}
	b.seenF[v] = struct{}{}
}

// AddString records a string value.
func (b *Builder) AddString(v string) { b.seenS[v] = struct{}{} }

// Build seals the builder and returns the order-preserving dictionary.
// If every recorded integer lies in [0, 4·count) and forms a dense
// enough prefix, Build still returns an explicit dictionary; callers
// that know their keys are exactly [0, n) should use NewIdentity.
func (b *Builder) Build() *Dictionary {
	if b.sealed {
		panic("dict: Build called twice")
	}
	b.sealed = true
	d := &Dictionary{kind: b.kind}
	switch b.kind {
	case Int:
		d.ints = make([]int64, 0, len(b.seenI))
		for v := range b.seenI {
			d.ints = append(d.ints, v)
		}
		sort.Slice(d.ints, func(i, j int) bool { return d.ints[i] < d.ints[j] })
		d.n = len(d.ints)
	case Float:
		d.floats = make([]float64, 0, len(b.seenF)+1)
		for v := range b.seenF {
			d.floats = append(d.floats, v)
		}
		sort.Float64s(d.floats)
		if b.hasNaN {
			// One canonical NaN code, ordered after every real value so
			// the binary-searched prefix stays totally ordered.
			d.floats = append(d.floats, math.NaN())
			d.hasNaN = true
		}
		d.n = len(d.floats)
	case String:
		d.strs = make([]string, 0, len(b.seenS))
		for v := range b.seenS {
			d.strs = append(d.strs, v)
		}
		sort.Strings(d.strs)
		d.n = len(d.strs)
	}
	d.base = d.n
	return d
}
