package dict

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIntDictionaryOrderPreserving(t *testing.T) {
	b := NewBuilder(Int)
	vals := []int64{500, -3, 0, 999999, -3, 42}
	for _, v := range vals {
		b.AddInt(v)
	}
	d := b.Build()
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5 distinct", d.Len())
	}
	sorted := []int64{-3, 0, 42, 500, 999999}
	for i, v := range sorted {
		code, ok := d.EncodeInt(v)
		if !ok || code != uint32(i) {
			t.Fatalf("EncodeInt(%d) = %d,%v, want %d", v, code, ok, i)
		}
		if d.DecodeInt(code) != v {
			t.Fatalf("DecodeInt(%d) = %d", code, d.DecodeInt(code))
		}
	}
	if _, ok := d.EncodeInt(7777); ok {
		t.Error("absent value should not encode")
	}
}

func TestStringDictionary(t *testing.T) {
	b := NewBuilder(String)
	for _, s := range []string{"BUILDING", "AUTOMOBILE", "MACHINERY", "BUILDING"} {
		b.AddString(s)
	}
	d := b.Build()
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	ca, _ := d.EncodeString("AUTOMOBILE")
	cb, _ := d.EncodeString("BUILDING")
	cm, _ := d.EncodeString("MACHINERY")
	if !(ca < cb && cb < cm) {
		t.Fatal("string codes not order-preserving")
	}
	if d.DecodeString(cb) != "BUILDING" {
		t.Fatal("decode wrong")
	}
	if _, ok := d.EncodeString("zzz"); ok {
		t.Error("absent string should not encode")
	}
}

func TestFloatDictionary(t *testing.T) {
	b := NewBuilder(Float)
	for _, v := range []float64{2.5, -1, 0.25} {
		b.AddFloat(v)
	}
	d := b.Build()
	if d.Kind() != Float || d.Len() != 3 {
		t.Fatalf("dict = %+v", d)
	}
	c, ok := d.EncodeFloat(0.25)
	if !ok || d.DecodeFloat(c) != 0.25 {
		t.Fatal("float roundtrip failed")
	}
}

func TestIdentityDictionary(t *testing.T) {
	d := NewIdentity(100)
	if !d.Identity() || d.Len() != 100 {
		t.Fatalf("identity dict = %+v", d)
	}
	c, ok := d.EncodeInt(42)
	if !ok || c != 42 || d.DecodeInt(42) != 42 {
		t.Fatal("identity encode/decode wrong")
	}
	if _, ok := d.EncodeInt(100); ok {
		t.Error("out-of-range should not encode")
	}
	if _, ok := d.EncodeInt(-1); ok {
		t.Error("negative should not encode")
	}
	if d.LowerBoundInt(-5) != 0 || d.LowerBoundInt(42) != 42 || d.LowerBoundInt(1000) != 100 {
		t.Error("identity lower bound wrong")
	}
}

func TestLowerBound(t *testing.T) {
	b := NewBuilder(Int)
	for _, v := range []int64{10, 20, 30} {
		b.AddInt(v)
	}
	d := b.Build()
	cases := []struct {
		v    int64
		want uint32
	}{{5, 0}, {10, 0}, {15, 1}, {30, 2}, {31, 3}}
	for _, c := range cases {
		if got := d.LowerBoundInt(c.v); got != c.want {
			t.Errorf("LowerBoundInt(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	bs := NewBuilder(String)
	bs.AddString("b")
	bs.AddString("d")
	ds := bs.Build()
	if ds.LowerBoundString("a") != 0 || ds.LowerBoundString("c") != 1 || ds.LowerBoundString("e") != 2 {
		t.Error("string lower bound wrong")
	}
	bf := NewBuilder(Float)
	bf.AddFloat(1.5)
	df := bf.Build()
	if df.LowerBoundFloat(1.0) != 0 || df.LowerBoundFloat(2.0) != 1 {
		t.Error("float lower bound wrong")
	}
}

func TestBuildTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("second Build should panic")
		}
	}()
	b := NewBuilder(Int)
	b.AddInt(1)
	b.Build()
	b.Build()
}

func TestKindMismatchEncoding(t *testing.T) {
	b := NewBuilder(Int)
	b.AddInt(1)
	d := b.Build()
	if _, ok := d.EncodeString("x"); ok {
		t.Error("string encode on int dict should fail")
	}
	if _, ok := d.EncodeFloat(1); ok {
		t.Error("float encode on int dict should fail")
	}
}

// Property: encode/decode roundtrip for arbitrary int sets, and codes
// are exactly the sort ranks.
func TestIntDictProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		b := NewBuilder(Int)
		for _, v := range vals {
			b.AddInt(v)
		}
		d := b.Build()
		uniq := map[int64]bool{}
		for _, v := range vals {
			uniq[v] = true
		}
		if d.Len() != len(uniq) {
			return false
		}
		sorted := make([]int64, 0, len(uniq))
		for v := range uniq {
			sorted = append(sorted, v)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, v := range sorted {
			c, ok := d.EncodeInt(v)
			if !ok || int(c) != i || d.DecodeInt(c) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestFloatDictionaryNaNCanonicalized(t *testing.T) {
	b := NewBuilder(Float)
	// Several distinct NaN inserts must collapse to one code; before the
	// fix each insert minted a fresh map entry and sort.Float64s left
	// NaNs at positions that broke the binary-search invariant.
	for i := 0; i < 5; i++ {
		b.AddFloat(math.NaN())
	}
	for _, v := range []float64{3.5, -1.25, 0, 7} {
		b.AddFloat(v)
	}
	d := b.Build()
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5 (4 reals + 1 canonical NaN)", d.Len())
	}
	if !d.HasNaN() {
		t.Fatal("HasNaN = false")
	}
	nanCode, ok := d.EncodeFloat(math.NaN())
	if !ok || nanCode != uint32(d.Len()-1) {
		t.Fatalf("EncodeFloat(NaN) = %d,%v, want last code %d", nanCode, ok, d.Len()-1)
	}
	if !math.IsNaN(d.DecodeFloat(nanCode)) {
		t.Fatalf("DecodeFloat(nan code) = %v, want NaN", d.DecodeFloat(nanCode))
	}
	// Ordered reals keep dense ranks below the NaN code.
	for i, v := range []float64{-1.25, 0, 3.5, 7} {
		code, ok := d.EncodeFloat(v)
		if !ok || code != uint32(i) {
			t.Fatalf("EncodeFloat(%v) = %d,%v, want %d", v, code, ok, i)
		}
	}
	// A finite lower bound never covers the NaN code.
	if lb := d.LowerBoundFloat(100); lb != uint32(d.Len()-1) {
		t.Fatalf("LowerBoundFloat(100) = %d, want %d (exclude NaN)", lb, d.Len()-1)
	}
	if lb := d.LowerBoundFloat(math.NaN()); lb != uint32(d.Len()) {
		t.Fatalf("LowerBoundFloat(NaN) = %d, want Len()", lb)
	}
}

func TestFloatDictionaryNegativeZeroRoundTrip(t *testing.T) {
	b := NewBuilder(Float)
	b.AddFloat(math.Copysign(0, -1))
	b.AddFloat(0.0)
	b.AddFloat(1.5)
	d := b.Build()
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (-0.0 folds into +0.0)", d.Len())
	}
	cNeg, okNeg := d.EncodeFloat(math.Copysign(0, -1))
	cPos, okPos := d.EncodeFloat(0.0)
	if !okNeg || !okPos || cNeg != cPos {
		t.Fatalf("EncodeFloat(-0)=%d,%v EncodeFloat(+0)=%d,%v, want same code", cNeg, okNeg, cPos, okPos)
	}
	if v := d.DecodeFloat(cPos); v != 0 || math.Signbit(v) {
		t.Fatalf("DecodeFloat(zero code) = %v, want +0.0", v)
	}
	if lbNeg, lbPos := d.LowerBoundFloat(math.Copysign(0, -1)), d.LowerBoundFloat(0.0); lbNeg != lbPos {
		t.Fatalf("LowerBoundFloat(-0)=%d != LowerBoundFloat(+0)=%d", lbNeg, lbPos)
	}
}

func TestFloatDictionaryNoNaN(t *testing.T) {
	b := NewBuilder(Float)
	b.AddFloat(1)
	b.AddFloat(2)
	d := b.Build()
	if d.HasNaN() {
		t.Fatal("HasNaN = true on NaN-free dictionary")
	}
	if _, ok := d.EncodeFloat(math.NaN()); ok {
		t.Fatal("EncodeFloat(NaN) should miss when no NaN was added")
	}
	if lb := d.LowerBoundFloat(1.5); lb != 1 {
		t.Fatalf("LowerBoundFloat(1.5) = %d, want 1", lb)
	}
}
