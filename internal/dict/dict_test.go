package dict

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIntDictionaryOrderPreserving(t *testing.T) {
	b := NewBuilder(Int)
	vals := []int64{500, -3, 0, 999999, -3, 42}
	for _, v := range vals {
		b.AddInt(v)
	}
	d := b.Build()
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5 distinct", d.Len())
	}
	sorted := []int64{-3, 0, 42, 500, 999999}
	for i, v := range sorted {
		code, ok := d.EncodeInt(v)
		if !ok || code != uint32(i) {
			t.Fatalf("EncodeInt(%d) = %d,%v, want %d", v, code, ok, i)
		}
		if d.DecodeInt(code) != v {
			t.Fatalf("DecodeInt(%d) = %d", code, d.DecodeInt(code))
		}
	}
	if _, ok := d.EncodeInt(7777); ok {
		t.Error("absent value should not encode")
	}
}

func TestStringDictionary(t *testing.T) {
	b := NewBuilder(String)
	for _, s := range []string{"BUILDING", "AUTOMOBILE", "MACHINERY", "BUILDING"} {
		b.AddString(s)
	}
	d := b.Build()
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	ca, _ := d.EncodeString("AUTOMOBILE")
	cb, _ := d.EncodeString("BUILDING")
	cm, _ := d.EncodeString("MACHINERY")
	if !(ca < cb && cb < cm) {
		t.Fatal("string codes not order-preserving")
	}
	if d.DecodeString(cb) != "BUILDING" {
		t.Fatal("decode wrong")
	}
	if _, ok := d.EncodeString("zzz"); ok {
		t.Error("absent string should not encode")
	}
}

func TestFloatDictionary(t *testing.T) {
	b := NewBuilder(Float)
	for _, v := range []float64{2.5, -1, 0.25} {
		b.AddFloat(v)
	}
	d := b.Build()
	if d.Kind() != Float || d.Len() != 3 {
		t.Fatalf("dict = %+v", d)
	}
	c, ok := d.EncodeFloat(0.25)
	if !ok || d.DecodeFloat(c) != 0.25 {
		t.Fatal("float roundtrip failed")
	}
}

func TestIdentityDictionary(t *testing.T) {
	d := NewIdentity(100)
	if !d.Identity() || d.Len() != 100 {
		t.Fatalf("identity dict = %+v", d)
	}
	c, ok := d.EncodeInt(42)
	if !ok || c != 42 || d.DecodeInt(42) != 42 {
		t.Fatal("identity encode/decode wrong")
	}
	if _, ok := d.EncodeInt(100); ok {
		t.Error("out-of-range should not encode")
	}
	if _, ok := d.EncodeInt(-1); ok {
		t.Error("negative should not encode")
	}
	if d.LowerBoundInt(-5) != 0 || d.LowerBoundInt(42) != 42 || d.LowerBoundInt(1000) != 100 {
		t.Error("identity lower bound wrong")
	}
}

func TestLowerBound(t *testing.T) {
	b := NewBuilder(Int)
	for _, v := range []int64{10, 20, 30} {
		b.AddInt(v)
	}
	d := b.Build()
	cases := []struct {
		v    int64
		want uint32
	}{{5, 0}, {10, 0}, {15, 1}, {30, 2}, {31, 3}}
	for _, c := range cases {
		if got := d.LowerBoundInt(c.v); got != c.want {
			t.Errorf("LowerBoundInt(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	bs := NewBuilder(String)
	bs.AddString("b")
	bs.AddString("d")
	ds := bs.Build()
	if ds.LowerBoundString("a") != 0 || ds.LowerBoundString("c") != 1 || ds.LowerBoundString("e") != 2 {
		t.Error("string lower bound wrong")
	}
	bf := NewBuilder(Float)
	bf.AddFloat(1.5)
	df := bf.Build()
	if df.LowerBoundFloat(1.0) != 0 || df.LowerBoundFloat(2.0) != 1 {
		t.Error("float lower bound wrong")
	}
}

func TestBuildTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("second Build should panic")
		}
	}()
	b := NewBuilder(Int)
	b.AddInt(1)
	b.Build()
	b.Build()
}

func TestKindMismatchEncoding(t *testing.T) {
	b := NewBuilder(Int)
	b.AddInt(1)
	d := b.Build()
	if _, ok := d.EncodeString("x"); ok {
		t.Error("string encode on int dict should fail")
	}
	if _, ok := d.EncodeFloat(1); ok {
		t.Error("float encode on int dict should fail")
	}
}

// Property: encode/decode roundtrip for arbitrary int sets, and codes
// are exactly the sort ranks.
func TestIntDictProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		b := NewBuilder(Int)
		for _, v := range vals {
			b.AddInt(v)
		}
		d := b.Build()
		uniq := map[int64]bool{}
		for _, v := range vals {
			uniq[v] = true
		}
		if d.Len() != len(uniq) {
			return false
		}
		sorted := make([]int64, 0, len(uniq))
		for v := range uniq {
			sorted = append(sorted, v)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, v := range sorted {
			c, ok := d.EncodeInt(v)
			if !ok || int(c) != i || d.DecodeInt(c) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
