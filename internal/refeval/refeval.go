// Package refeval is the brute-force reference evaluator used as a
// differential-testing oracle for the LevelHeaded engine. It evaluates
// the same parsed SQL subset over plain decoded rows with nested-loop
// joins and map-based grouping — no dictionaries, tries, or WCOJ — so a
// disagreement with the engine localizes a bug in the encode/plan/exec
// pipeline rather than in shared code.
//
// Semantics deliberately mirror the engine's observable conventions:
//
//   - Numeric predicate and value evaluation happens in float64 (the
//     engine's internal/expr compiles every numeric context to float64,
//     converting int64 keys via float64(v)).
//   - Cross-alias key equality in WHERE is a join predicate and
//     compares natively (the engine joins in exact code space).
//   - Aggregates are float64. avg is sum/count. min/max fold with the
//     engine's order-dependent `if v < acc` rule.
//   - A single-relation query with no GROUP BY is a "scalar scan":
//     always one output row, with aggregates zeroed (min/max included)
//     when no rows qualify; a failing HAVING yields zero rows. A
//     multi-relation query with no GROUP BY yields zero rows when the
//     join is empty.
//   - GROUP BY float values canonicalize NaN into one group and -0.0
//     into +0.0, matching the engine's pseudo-encoding.
package refeval

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Relation is one decoded base table: a schema plus native rows
// (int64 for Int64/Date columns — dates are days since epoch — float64
// for Float64, string for String).
type Relation struct {
	Schema storage.Schema
	Rows   [][]any
}

// Column is one output column of a reference result.
type Column struct {
	Name string
	// IsAgg marks aggregate-derived columns (always float64 cells).
	IsAgg bool
	Vals  []any
}

// Result is a columnar reference result.
type Result struct {
	Cols    []*Column
	NumRows int
}

// Eval parses and evaluates sql over rels.
func Eval(sql string, rels map[string]*Relation) (*Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return EvalQuery(q, rels)
}

type binding struct {
	alias string
	rel   *Relation
}

type evaluator struct {
	binds []binding
	// tuple[i] is the current row index into binds[i].rel.Rows.
	tuple []int
}

// EvalQuery evaluates an already-parsed query over rels.
func EvalQuery(q *sqlparse.Query, rels map[string]*Relation) (*Result, error) {
	ev := &evaluator{}
	for _, tr := range q.From {
		rel, ok := rels[tr.Table]
		if !ok {
			return nil, fmt.Errorf("refeval: unknown table %s", tr.Table)
		}
		alias := tr.Alias
		if alias == "" {
			alias = tr.Table
		}
		ev.binds = append(ev.binds, binding{alias: alias, rel: rel})
	}
	ev.tuple = make([]int, len(ev.binds))

	joins, filters := splitWhere(ev, q.Where)

	aggs := collectAggs(q)
	for _, a := range aggs {
		if a.distinct && a.fn != "count" {
			return nil, fmt.Errorf("refeval: distinct is only supported in count()")
		}
	}
	type group struct {
		keyVals []any
		accs    []float64
		counts  []float64
		// sets[i] holds the distinct canonical values seen by a
		// count(distinct x) aggregate (nil for non-distinct aggs).
		sets []map[string]struct{}
		rows int
	}
	groups := map[string]*group{}
	var order []string

	// Nested-loop enumeration with early filter/join checks per level:
	// a predicate runs at the innermost level whose alias set it needs.
	n := len(ev.binds)
	predLevel := func(e sqlparse.Expr) int {
		lv := 0
		for i, b := range ev.binds {
			if exprUsesAlias(ev, e, b.alias) && i > lv {
				lv = i
			}
		}
		return lv
	}
	type pred struct {
		e    sqlparse.Expr
		join bool
	}
	byLevel := make([][]pred, n)
	for _, j := range joins {
		byLevel[predLevel(j)] = append(byLevel[predLevel(j)], pred{j, true})
	}
	for _, f := range filters {
		byLevel[predLevel(f)] = append(byLevel[predLevel(f)], pred{f, false})
	}

	visit := func() error {
		keyVals := make([]any, len(q.GroupBy))
		var sb strings.Builder
		for i, ge := range q.GroupBy {
			v, err := ev.val(ge)
			if err != nil {
				return err
			}
			v = canonGroupVal(v)
			keyVals[i] = v
			sb.WriteString(groupKeyPart(v))
			sb.WriteByte(0)
		}
		key := sb.String()
		g := groups[key]
		if g == nil {
			g = &group{keyVals: keyVals, accs: make([]float64, len(aggs)), counts: make([]float64, len(aggs)), sets: make([]map[string]struct{}, len(aggs))}
			for i, a := range aggs {
				switch a.fn {
				case "min":
					g.accs[i] = math.Inf(1)
				case "max":
					g.accs[i] = math.Inf(-1)
				}
				if a.distinct {
					g.sets[i] = map[string]struct{}{}
				}
			}
			groups[key] = g
			order = append(order, key)
		}
		g.rows++
		for i, a := range aggs {
			if a.distinct {
				// count(distinct x): collect the canonical value (NaN and
				// -0.0 fold like group keys) and count the set at the end.
				v, err := ev.val(a.arg)
				if err != nil {
					return err
				}
				g.sets[i][groupKeyPart(canonGroupVal(v))] = struct{}{}
				continue
			}
			switch a.fn {
			case "count":
				g.accs[i]++
			default:
				v, err := ev.num(a.arg)
				if err != nil {
					return err
				}
				switch a.fn {
				case "sum":
					g.accs[i] += v
				case "avg":
					g.accs[i] += v
					g.counts[i]++
				case "min":
					if v < g.accs[i] {
						g.accs[i] = v
					}
				case "max":
					if v > g.accs[i] {
						g.accs[i] = v
					}
				}
			}
		}
		return nil
	}

	var rec func(level int) error
	rec = func(level int) error {
		if level == n {
			return visit()
		}
		for ri := range ev.binds[level].rel.Rows {
			ev.tuple[level] = ri
			ok := true
			for _, p := range byLevel[level] {
				pass, err := ev.predicate(p.e, p.join)
				if err != nil {
					return err
				}
				if !pass {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if err := rec(level + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}

	// Scalar convention: no GROUP BY → exactly one output row even when
	// nothing qualified (the engine emits one all-zero aggregate row for
	// empty scans and empty joins alike).
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		g := &group{accs: make([]float64, len(aggs)), counts: make([]float64, len(aggs)), sets: make([]map[string]struct{}, len(aggs))}
		groups[""] = g
		order = append(order, "")
	}

	// Assemble output.
	res := &Result{}
	for _, it := range q.Select {
		res.Cols = append(res.Cols, &Column{Name: selectName(it), IsAgg: exprHasAgg(it.Expr)})
	}
	aggIndex := func(fn string, arg sqlparse.Expr, distinct bool) int {
		for i, a := range aggs {
			if a.fn == fn && a.distinct == distinct && exprEq(a.arg, arg) {
				return i
			}
		}
		return -1
	}
	for _, key := range order {
		g := groups[key]
		// min/max over zero rows reset from ±Inf to 0 (engine scalar
		// convention); sums/counts are already 0.
		finals := make([]float64, len(aggs))
		for i, a := range aggs {
			v := g.accs[i]
			if a.distinct {
				v = float64(len(g.sets[i]))
			}
			if g.rows == 0 && math.IsInf(v, 0) {
				v = 0
			}
			if a.fn == "avg" {
				// The engine divides sum by count at output time, so an
				// empty group yields 0/0 = NaN — mirror that exactly.
				v = v / g.counts[i]
			}
			finals[i] = v
		}
		evalAgg := func(e sqlparse.Expr) (float64, error) {
			return ev.aggExpr(e, func(fn string, arg sqlparse.Expr, distinct bool) (float64, error) {
				i := aggIndex(fn, arg, distinct)
				if i < 0 {
					return 0, fmt.Errorf("refeval: aggregate %s not collected", fn)
				}
				return finals[i], nil
			}, g.keyVals, q.GroupBy)
		}
		if q.Having != nil {
			keep, err := ev.havingBool(q.Having, evalAgg)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		for ci, it := range q.Select {
			if gi := groupByIndex(q.GroupBy, it.Expr); gi >= 0 {
				res.Cols[ci].Vals = append(res.Cols[ci].Vals, g.keyVals[gi])
				continue
			}
			v, err := evalAgg(it.Expr)
			if err != nil {
				return nil, err
			}
			res.Cols[ci].Vals = append(res.Cols[ci].Vals, v)
		}
		res.NumRows++
	}
	return res, nil
}

// --- predicate / expression evaluation over the current tuple ---

func (ev *evaluator) predicate(e sqlparse.Expr, join bool) (bool, error) {
	if join {
		// Join predicates compare natively (engine joins in exact code
		// space), never through float64.
		be := e.(sqlparse.BinaryExpr)
		l, err := ev.val(be.L)
		if err != nil {
			return false, err
		}
		r, err := ev.val(be.R)
		if err != nil {
			return false, err
		}
		return l == r, nil
	}
	return ev.boolean(e)
}

func (ev *evaluator) boolean(e sqlparse.Expr) (bool, error) {
	switch v := e.(type) {
	case sqlparse.BinaryExpr:
		switch v.Op {
		case "and":
			l, err := ev.boolean(v.L)
			if err != nil || !l {
				return false, err
			}
			return ev.boolean(v.R)
		case "or":
			l, err := ev.boolean(v.L)
			if err != nil || l {
				return l, err
			}
			return ev.boolean(v.R)
		case "=", "<>", "<", "<=", ">", ">=":
			return ev.compare(v.Op, v.L, v.R)
		}
		return false, fmt.Errorf("refeval: boolean op %s", v.Op)
	case sqlparse.UnaryExpr:
		if v.Op == "not" {
			b, err := ev.boolean(v.X)
			return !b, err
		}
		return false, fmt.Errorf("refeval: unary %s in boolean context", v.Op)
	case sqlparse.BetweenExpr:
		x, err := ev.num(v.X)
		if err != nil {
			return false, err
		}
		lo, err := ev.num(v.Lo)
		if err != nil {
			return false, err
		}
		hi, err := ev.num(v.Hi)
		if err != nil {
			return false, err
		}
		in := x >= lo && x <= hi
		if v.Negate {
			return !in, nil
		}
		return in, nil
	case sqlparse.InExpr:
		if s, ok, err := ev.str(v.X); err != nil {
			return false, err
		} else if ok {
			hit := false
			for _, ve := range v.Vals {
				lit, isStr := ve.(sqlparse.StringLit)
				if !isStr {
					return false, fmt.Errorf("refeval: IN on string needs string literals")
				}
				if s == lit.Val {
					hit = true
					break
				}
			}
			if v.Negate {
				return !hit, nil
			}
			return hit, nil
		}
		x, err := ev.num(v.X)
		if err != nil {
			return false, err
		}
		hit := false
		for _, ve := range v.Vals {
			n, err := ev.num(ve)
			if err != nil {
				return false, err
			}
			if x == n {
				hit = true
				break
			}
		}
		if v.Negate {
			return !hit, nil
		}
		return hit, nil
	case sqlparse.LikeExpr:
		s, ok, err := ev.str(v.X)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, fmt.Errorf("refeval: LIKE on non-string")
		}
		m := LikeMatch(s, v.Pattern)
		if v.Negate {
			return !m, nil
		}
		return m, nil
	}
	return false, fmt.Errorf("refeval: unsupported boolean expr %T", e)
}

func (ev *evaluator) compare(op string, le, re sqlparse.Expr) (bool, error) {
	ls, lok, err := ev.str(le)
	if err != nil {
		return false, err
	}
	rs, rok, err := ev.str(re)
	if err != nil {
		return false, err
	}
	if lok && rok {
		switch op {
		case "=":
			return ls == rs, nil
		case "<>":
			return ls != rs, nil
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		case ">=":
			return ls >= rs, nil
		}
	}
	if lok != rok {
		return false, fmt.Errorf("refeval: mixed string/numeric comparison")
	}
	l, err := ev.num(le)
	if err != nil {
		return false, err
	}
	r, err := ev.num(re)
	if err != nil {
		return false, err
	}
	switch op {
	case "=":
		return l == r, nil
	case "<>":
		return l != r, nil
	case "<":
		return l < r, nil
	case "<=":
		return l <= r, nil
	case ">":
		return l > r, nil
	case ">=":
		return l >= r, nil
	}
	return false, fmt.Errorf("refeval: cmp op %s", op)
}

// str evaluates e as a string if it is string-typed; ok=false means
// "not a string expression" (fall back to numeric).
func (ev *evaluator) str(e sqlparse.Expr) (string, bool, error) {
	switch v := e.(type) {
	case sqlparse.StringLit:
		return v.Val, true, nil
	case sqlparse.ColRef:
		def, val, err := ev.col(v)
		if err != nil {
			return "", false, err
		}
		if def.Kind == storage.String {
			return val.(string), true, nil
		}
		return "", false, nil
	}
	return "", false, nil
}

// num evaluates e in float64, mirroring internal/expr.compileNum: keys
// and dates via float64(int64), booleans as 0/1, CASE else defaulting
// to 0.
func (ev *evaluator) num(e sqlparse.Expr) (float64, error) {
	switch v := e.(type) {
	case sqlparse.NumberLit:
		return v.Val, nil
	case sqlparse.DateLit:
		return float64(v.Days), nil
	case sqlparse.ColRef:
		def, val, err := ev.col(v)
		if err != nil {
			return 0, err
		}
		switch def.Kind {
		case storage.String:
			return 0, fmt.Errorf("refeval: string column %s in numeric context", v.Name)
		case storage.Float64:
			return val.(float64), nil
		default:
			return float64(val.(int64)), nil
		}
	case sqlparse.BinaryExpr:
		switch v.Op {
		case "+", "-", "*", "/":
			l, err := ev.num(v.L)
			if err != nil {
				return 0, err
			}
			r, err := ev.num(v.R)
			if err != nil {
				return 0, err
			}
			return arith(v.Op, l, r), nil
		default:
			b, err := ev.boolean(v)
			if err != nil {
				return 0, err
			}
			if b {
				return 1, nil
			}
			return 0, nil
		}
	case sqlparse.UnaryExpr:
		switch v.Op {
		case "-":
			n, err := ev.num(v.X)
			return -n, err
		case "not":
			b, err := ev.boolean(v)
			if err != nil {
				return 0, err
			}
			if b {
				return 1, nil
			}
			return 0, nil
		}
	case sqlparse.CaseExpr:
		for _, w := range v.Whens {
			c, err := ev.boolean(w.Cond)
			if err != nil {
				return 0, err
			}
			if c {
				return ev.num(w.Then)
			}
		}
		if v.Else != nil {
			return ev.num(v.Else)
		}
		return 0, nil
	case sqlparse.ExtractExpr:
		d, err := ev.num(v.X)
		if err != nil {
			return 0, err
		}
		days := int32(d)
		switch v.Unit {
		case "year":
			return float64(sqlparse.DateYear(days)), nil
		case "month":
			return float64(sqlparse.DateMonth(days)), nil
		case "day":
			return float64(sqlparse.DateDay(days)), nil
		}
		return 0, fmt.Errorf("refeval: extract field %s", v.Unit)
	case sqlparse.BetweenExpr, sqlparse.InExpr, sqlparse.LikeExpr:
		b, err := ev.boolean(e)
		if err != nil {
			return 0, err
		}
		if b {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("refeval: unsupported numeric expr %T", e)
}

// val evaluates e to its native value (int64/float64/string): column
// refs keep their stored type; everything else goes through num.
func (ev *evaluator) val(e sqlparse.Expr) (any, error) {
	if cr, ok := e.(sqlparse.ColRef); ok {
		_, v, err := ev.col(cr)
		return v, err
	}
	if sl, ok := e.(sqlparse.StringLit); ok {
		return sl.Val, nil
	}
	return ev.num(e)
}

func (ev *evaluator) col(cr sqlparse.ColRef) (*storage.ColumnDef, any, error) {
	for i, b := range ev.binds {
		if cr.Qualifier != "" && cr.Qualifier != b.alias {
			continue
		}
		for ci := range b.rel.Schema.Cols {
			if b.rel.Schema.Cols[ci].Name == cr.Name {
				return &b.rel.Schema.Cols[ci], b.rel.Rows[ev.tuple[i]][ci], nil
			}
		}
		if cr.Qualifier != "" {
			break
		}
	}
	return nil, nil, fmt.Errorf("refeval: unknown column %s", cr)
}

// --- aggregate handling ---

type aggCall struct {
	fn       string
	arg      sqlparse.Expr // nil for count(*)
	distinct bool          // count(distinct arg)
}

func collectAggs(q *sqlparse.Query) []aggCall {
	var aggs []aggCall
	add := func(fn string, arg sqlparse.Expr, distinct bool) {
		for _, a := range aggs {
			if a.fn == fn && a.distinct == distinct && exprEq(a.arg, arg) {
				return
			}
		}
		aggs = append(aggs, aggCall{fn, arg, distinct})
	}
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		switch v := e.(type) {
		case sqlparse.FuncCall:
			if isAggName(v.Name) {
				if v.Star || len(v.Args) == 0 {
					add(v.Name, nil, false)
				} else {
					add(v.Name, v.Args[0], v.Distinct)
				}
				return
			}
			for _, a := range v.Args {
				walk(a)
			}
		case sqlparse.BinaryExpr:
			walk(v.L)
			walk(v.R)
		case sqlparse.UnaryExpr:
			walk(v.X)
		case sqlparse.CaseExpr:
			for _, w := range v.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if v.Else != nil {
				walk(v.Else)
			}
		}
	}
	for _, it := range q.Select {
		walk(it.Expr)
	}
	if q.Having != nil {
		walk(q.Having)
	}
	return aggs
}

func isAggName(n string) bool {
	switch n {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

func exprHasAgg(e sqlparse.Expr) bool {
	found := false
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		switch v := e.(type) {
		case sqlparse.FuncCall:
			if isAggName(v.Name) {
				found = true
				return
			}
			for _, a := range v.Args {
				walk(a)
			}
		case sqlparse.BinaryExpr:
			walk(v.L)
			walk(v.R)
		case sqlparse.UnaryExpr:
			walk(v.X)
		case sqlparse.CaseExpr:
			for _, w := range v.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if v.Else != nil {
				walk(v.Else)
			}
		}
	}
	walk(e)
	return found
}

// aggExpr evaluates a SELECT/HAVING expression over finished group
// aggregates: aggregate calls resolve through lookup, group columns
// through keyVals, and arithmetic in float64.
func (ev *evaluator) aggExpr(e sqlparse.Expr, lookup func(fn string, arg sqlparse.Expr, distinct bool) (float64, error), keyVals []any, groupBy []sqlparse.Expr) (float64, error) {
	switch v := e.(type) {
	case sqlparse.NumberLit:
		return v.Val, nil
	case sqlparse.DateLit:
		return float64(v.Days), nil
	case sqlparse.FuncCall:
		if isAggName(v.Name) {
			if v.Star || len(v.Args) == 0 {
				return lookup(v.Name, nil, false)
			}
			return lookup(v.Name, v.Args[0], v.Distinct)
		}
		return 0, fmt.Errorf("refeval: function %s in aggregate context", v.Name)
	case sqlparse.BinaryExpr:
		switch v.Op {
		case "+", "-", "*", "/":
			l, err := ev.aggExpr(v.L, lookup, keyVals, groupBy)
			if err != nil {
				return 0, err
			}
			r, err := ev.aggExpr(v.R, lookup, keyVals, groupBy)
			if err != nil {
				return 0, err
			}
			return arith(v.Op, l, r), nil
		}
	case sqlparse.UnaryExpr:
		if v.Op == "-" {
			n, err := ev.aggExpr(v.X, lookup, keyVals, groupBy)
			return -n, err
		}
	case sqlparse.ColRef:
		if gi := groupByIndex(groupBy, v); gi >= 0 {
			switch kv := keyVals[gi].(type) {
			case int64:
				return float64(kv), nil
			case float64:
				return kv, nil
			}
		}
	}
	return 0, fmt.Errorf("refeval: unsupported aggregate-context expr %T", e)
}

// havingBool evaluates HAVING over finished aggregates: comparisons and
// and/or/not over aggregate-context numeric expressions.
func (ev *evaluator) havingBool(e sqlparse.Expr, evalAgg func(sqlparse.Expr) (float64, error)) (bool, error) {
	switch v := e.(type) {
	case sqlparse.BinaryExpr:
		switch v.Op {
		case "and":
			l, err := ev.havingBool(v.L, evalAgg)
			if err != nil || !l {
				return false, err
			}
			return ev.havingBool(v.R, evalAgg)
		case "or":
			l, err := ev.havingBool(v.L, evalAgg)
			if err != nil || l {
				return l, err
			}
			return ev.havingBool(v.R, evalAgg)
		case "=", "<>", "<", "<=", ">", ">=":
			l, err := evalAgg(v.L)
			if err != nil {
				return false, err
			}
			r, err := evalAgg(v.R)
			if err != nil {
				return false, err
			}
			switch v.Op {
			case "=":
				return l == r, nil
			case "<>":
				return l != r, nil
			case "<":
				return l < r, nil
			case "<=":
				return l <= r, nil
			case ">":
				return l > r, nil
			case ">=":
				return l >= r, nil
			}
		}
	case sqlparse.UnaryExpr:
		if v.Op == "not" {
			b, err := ev.havingBool(v.X, evalAgg)
			return !b, err
		}
	}
	return false, fmt.Errorf("refeval: unsupported HAVING expr %T", e)
}

// --- helpers ---

func arith(op string, l, r float64) float64 {
	switch op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	default:
		return l / r
	}
}

// splitWhere separates top-level AND conjuncts into join predicates
// (cross-alias key equality, evaluated natively) and filters.
func splitWhere(ev *evaluator, where sqlparse.Expr) (joins, filters []sqlparse.Expr) {
	var split func(e sqlparse.Expr)
	split = func(e sqlparse.Expr) {
		if be, ok := e.(sqlparse.BinaryExpr); ok {
			if be.Op == "and" {
				split(be.L)
				split(be.R)
				return
			}
			if be.Op == "=" {
				lc, lok := be.L.(sqlparse.ColRef)
				rc, rok := be.R.(sqlparse.ColRef)
				if lok && rok && aliasOf(ev, lc) != aliasOf(ev, rc) {
					joins = append(joins, e)
					return
				}
			}
		}
		filters = append(filters, e)
	}
	if where != nil {
		split(where)
	}
	return joins, filters
}

func aliasOf(ev *evaluator, cr sqlparse.ColRef) string {
	if cr.Qualifier != "" {
		return cr.Qualifier
	}
	for _, b := range ev.binds {
		for ci := range b.rel.Schema.Cols {
			if b.rel.Schema.Cols[ci].Name == cr.Name {
				return b.alias
			}
		}
	}
	return ""
}

func exprUsesAlias(ev *evaluator, e sqlparse.Expr, alias string) bool {
	found := false
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		switch v := e.(type) {
		case sqlparse.ColRef:
			if aliasOf(ev, v) == alias {
				found = true
			}
		case sqlparse.BinaryExpr:
			walk(v.L)
			walk(v.R)
		case sqlparse.UnaryExpr:
			walk(v.X)
		case sqlparse.FuncCall:
			for _, a := range v.Args {
				walk(a)
			}
		case sqlparse.CaseExpr:
			for _, w := range v.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if v.Else != nil {
				walk(v.Else)
			}
		case sqlparse.BetweenExpr:
			walk(v.X)
			walk(v.Lo)
			walk(v.Hi)
		case sqlparse.InExpr:
			walk(v.X)
			for _, x := range v.Vals {
				walk(x)
			}
		case sqlparse.LikeExpr:
			walk(v.X)
		case sqlparse.ExtractExpr:
			walk(v.X)
		}
	}
	walk(e)
	return found
}

func groupByIndex(groupBy []sqlparse.Expr, e sqlparse.Expr) int {
	for i, g := range groupBy {
		if exprEq(g, e) {
			return i
		}
	}
	// An unqualified SELECT column may match a qualified GROUP BY item
	// (or vice versa) by name.
	if cr, ok := e.(sqlparse.ColRef); ok {
		for i, g := range groupBy {
			if gc, ok := g.(sqlparse.ColRef); ok && gc.Name == cr.Name &&
				(gc.Qualifier == "" || cr.Qualifier == "" || gc.Qualifier == cr.Qualifier) {
				return i
			}
		}
	}
	return -1
}

func exprEq(a, b sqlparse.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

func selectName(it sqlparse.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	return it.Expr.String()
}

// canonGroupVal canonicalizes a group value the way the engine's
// pseudo-encoding does: -0.0 folds into +0.0 and every NaN payload is
// the same group.
func canonGroupVal(v any) any {
	if f, ok := v.(float64); ok {
		if f == 0 {
			return 0.0
		}
		if math.IsNaN(f) {
			return math.NaN()
		}
	}
	return v
}

func groupKeyPart(v any) string {
	switch x := v.(type) {
	case int64:
		return "i" + strconv.FormatInt(x, 10)
	case float64:
		if math.IsNaN(x) {
			return "fNaN"
		}
		return "f" + strconv.FormatFloat(x, 'x', -1, 64)
	case string:
		return "s" + x
	}
	return fmt.Sprintf("?%v", v)
}

// LikeMatch reports whether s matches a SQL LIKE pattern with % and _
// wildcards. Exported for reuse by the differential tester; semantics
// match the engine's matcher.
func LikeMatch(s, pat string) bool {
	n, m := len(s), len(pat)
	prev := make([]bool, n+1)
	cur := make([]bool, n+1)
	prev[0] = true
	for j := 1; j <= m; j++ {
		p := pat[j-1]
		cur[0] = prev[0] && p == '%'
		for i := 1; i <= n; i++ {
			switch p {
			case '%':
				cur[i] = cur[i-1] || prev[i]
			case '_':
				cur[i] = prev[i-1]
			default:
				cur[i] = prev[i-1] && s[i-1] == p
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// SortKeyOrder is a stable textual ordering helper for tests that want
// deterministic row order from a Result.
func (r *Result) SortKeyOrder() []int {
	idx := make([]int, r.NumRows)
	for i := range idx {
		idx[i] = i
	}
	keys := make([]string, r.NumRows)
	for i := range keys {
		var sb strings.Builder
		for _, c := range r.Cols {
			if !c.IsAgg {
				sb.WriteString(groupKeyPart(c.Vals[i]))
				sb.WriteByte(0)
			}
		}
		keys[i] = sb.String()
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	return idx
}
