package refeval

import (
	"math"
	"testing"

	"repro/internal/storage"
)

// rel builds a one-table fixture with an int key k, an int annotation v
// and a string annotation s.
func rel() map[string]*Relation {
	r := &Relation{Schema: storage.Schema{Name: "t", Cols: []storage.ColumnDef{
		{Name: "k", Kind: storage.Int64, Role: storage.Key},
		{Name: "v", Kind: storage.Int64, Role: storage.Annotation},
		{Name: "s", Kind: storage.String, Role: storage.Annotation},
		{Name: "f", Kind: storage.Float64, Role: storage.Annotation},
	}}}
	rows := [][]any{
		{int64(1), int64(10), "a", 1.5},
		{int64(2), int64(10), "b", -0.0},
		{int64(3), int64(20), "a", 0.0},
		{int64(4), int64(20), "a", math.NaN()},
		{int64(5), int64(30), "c", math.NaN()},
	}
	r.Rows = rows
	return map[string]*Relation{"t": r}
}

func scalar(t *testing.T, sql string) float64 {
	t.Helper()
	res, err := Eval(sql, rel())
	if err != nil {
		t.Fatalf("Eval(%q): %v", sql, err)
	}
	if res.NumRows != 1 || len(res.Cols) != 1 {
		t.Fatalf("Eval(%q): %d rows × %d cols, want 1×1", sql, res.NumRows, len(res.Cols))
	}
	return res.Cols[0].Vals[0].(float64)
}

func TestCountDistinctExact(t *testing.T) {
	if got := scalar(t, "SELECT count(distinct v) FROM t"); got != 3 {
		t.Fatalf("count(distinct v) = %v, want 3", got)
	}
	if got := scalar(t, "SELECT count(distinct s) FROM t"); got != 3 {
		t.Fatalf("count(distinct s) = %v, want 3", got)
	}
	if got := scalar(t, "SELECT count(v) FROM t"); got != 5 {
		t.Fatalf("count(v) = %v, want 5", got)
	}
	// -0.0 folds into +0.0 and all NaN payloads are one value.
	if got := scalar(t, "SELECT count(distinct f) FROM t"); got != 3 {
		t.Fatalf("count(distinct f) = %v, want 3 (1.5, 0, NaN)", got)
	}
	// Filtered distinct.
	if got := scalar(t, "SELECT count(distinct s) FROM t WHERE v = 20"); got != 1 {
		t.Fatalf("filtered count(distinct s) = %v, want 1", got)
	}
	// Empty scan keeps the one-row scalar convention with a zero count.
	if got := scalar(t, "SELECT count(distinct v) FROM t WHERE v > 99"); got != 0 {
		t.Fatalf("empty count(distinct v) = %v, want 0", got)
	}
}

func TestCountDistinctGrouped(t *testing.T) {
	res, err := Eval("SELECT v, count(distinct s), count(*) FROM t GROUP BY v", rel())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 3 {
		t.Fatalf("groups = %d, want 3", res.NumRows)
	}
	want := map[int64][2]float64{10: {2, 2}, 20: {1, 2}, 30: {1, 1}}
	for i := 0; i < res.NumRows; i++ {
		g := res.Cols[0].Vals[i].(int64)
		w, ok := want[g]
		if !ok {
			t.Fatalf("unexpected group %d", g)
		}
		if d := res.Cols[1].Vals[i].(float64); d != w[0] {
			t.Errorf("group %d count(distinct s) = %v, want %v", g, d, w[0])
		}
		if c := res.Cols[2].Vals[i].(float64); c != w[1] {
			t.Errorf("group %d count(*) = %v, want %v", g, c, w[1])
		}
	}
}

func TestDistinctNonCountRejected(t *testing.T) {
	if _, err := Eval("SELECT sum(distinct v) FROM t", rel()); err == nil {
		t.Fatal("sum(distinct) should be rejected")
	}
}
