package storage

import (
	"strings"
	"testing"
)

func matrixSchema() Schema {
	return Schema{
		Name: "matrix",
		Cols: []ColumnDef{
			{Name: "i", Kind: Int64, Role: Key, Domain: "dim"},
			{Name: "j", Kind: Int64, Role: Key, Domain: "dim"},
			{Name: "v", Kind: Float64, Role: Annotation},
		},
	}
}

func ordersSchema() Schema {
	return Schema{
		Name: "orders",
		Cols: []ColumnDef{
			{Name: "o_orderkey", Kind: Int64, Role: Key, Domain: "orderkey"},
			{Name: "o_custkey", Kind: Int64, Role: Key, Domain: "custkey"},
			{Name: "o_orderdate", Kind: Date, Role: Annotation},
			{Name: "o_comment", Kind: String, Role: Annotation},
		},
	}
}

func TestAppendRowAndKinds(t *testing.T) {
	cat := NewCatalog()
	tab, err := cat.Create(ordersSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRow(int64(1), int64(10), "1994-01-02", "hello"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRow(2, int64(11), int64(8766), "bye"); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows != 2 {
		t.Fatalf("rows = %d", tab.NumRows)
	}
	if tab.Col("o_orderdate").Ints[0] != 8767 { // 1994-01-02
		t.Fatalf("date = %d", tab.Col("o_orderdate").Ints[0])
	}
	// Type errors.
	if err := tab.AppendRow("x", int64(1), int64(1), "y"); err == nil {
		t.Error("wrong type should error")
	}
	if err := tab.AppendRow(int64(1)); err == nil {
		t.Error("wrong arity should error")
	}
}

func TestCatalogCreateErrors(t *testing.T) {
	cat := NewCatalog()
	if _, err := cat.Create(Schema{}); err == nil {
		t.Error("unnamed table should error")
	}
	if _, err := cat.Create(matrixSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Create(matrixSchema()); err == nil {
		t.Error("duplicate table should error")
	}
	if _, err := cat.Create(Schema{Name: "bad", Cols: []ColumnDef{
		{Name: "a", Kind: Int64, Role: Key}, {Name: "a", Kind: Int64, Role: Key},
	}}); err == nil {
		t.Error("duplicate column should error")
	}
	if _, err := cat.Create(Schema{Name: "fk", Cols: []ColumnDef{
		{Name: "f", Kind: Float64, Role: Key},
	}}); err == nil {
		t.Error("float key should error")
	}
}

func TestFreezeSharedDomain(t *testing.T) {
	cat := NewCatalog()
	m, _ := cat.Create(matrixSchema())
	// Keys 5 and 100 appear in different columns of the shared domain.
	if err := m.AppendRow(int64(5), int64(100), 1.0); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendRow(int64(100), int64(5), 2.0); err != nil {
		t.Fatal(err)
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	ci, cj := m.Col("i"), m.Col("j")
	// Shared domain: the same value encodes identically across columns.
	if ci.KeyCodes()[0] != cj.KeyCodes()[1] {
		t.Fatalf("5 encodes differently: %d vs %d", ci.KeyCodes()[0], cj.KeyCodes()[1])
	}
	if ci.KeyCodes()[1] != cj.KeyCodes()[0] {
		t.Fatalf("100 encodes differently")
	}
	// Order preservation: code(5) < code(100).
	if ci.KeyCodes()[0] >= ci.KeyCodes()[1] {
		t.Fatal("encoding not order-preserving")
	}
	d := cat.Domain("dim")
	if d == nil || d.Len() != 2 {
		t.Fatalf("domain dict = %+v", d)
	}
	if d.DecodeInt(ci.KeyCodes()[0]) != 5 {
		t.Fatal("decode wrong")
	}
}

func TestFreezeAnnotations(t *testing.T) {
	cat := NewCatalog()
	o, _ := cat.Create(ordersSchema())
	if err := o.AppendRow(int64(1), int64(10), "1994-01-01", "beta"); err != nil {
		t.Fatal(err)
	}
	if err := o.AppendRow(int64(2), int64(11), "1995-06-01", "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	dates := o.Col("o_orderdate").AnnFloats()
	if len(dates) != 2 || dates[0] >= dates[1] {
		t.Fatalf("date floats = %v", dates)
	}
	codes := o.Col("o_comment").AnnCodes()
	d := o.Col("o_comment").Dict()
	if d.DecodeString(codes[0]) != "beta" || d.DecodeString(codes[1]) != "alpha" {
		t.Fatalf("comment codes decode wrong")
	}
	// Order-preserving: alpha < beta.
	if codes[1] >= codes[0] {
		t.Fatal("string annotation codes not order-preserving")
	}
	// Key columns must not report annotation codes.
	if o.Col("o_orderkey").AnnCodes() != nil {
		t.Error("key column should not have annotation codes")
	}
}

func TestFreezeIdempotentAndLocksCreate(t *testing.T) {
	cat := NewCatalog()
	m, _ := cat.Create(matrixSchema())
	_ = m.AppendRow(int64(0), int64(0), 1.0)
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	if !cat.Frozen() {
		t.Error("catalog should be frozen")
	}
	if _, err := cat.Create(ordersSchema()); err == nil {
		t.Error("create after freeze should error")
	}
}

func TestDomainKindMismatch(t *testing.T) {
	cat := NewCatalog()
	_, _ = cat.Create(Schema{Name: "a", Cols: []ColumnDef{{Name: "k", Kind: Int64, Role: Key, Domain: "d"}}})
	_, _ = cat.Create(Schema{Name: "b", Cols: []ColumnDef{{Name: "k2", Kind: String, Role: Key, Domain: "d"}}})
	if err := cat.Freeze(); err == nil {
		t.Error("mixed-kind domain should error on freeze")
	}
}

func TestLoadDelimited(t *testing.T) {
	cat := NewCatalog()
	o, _ := cat.Create(ordersSchema())
	data := "1|10|1994-01-01|first order|\n2|11|1994-02-01|second|\n\n3|12|1994-03-01|third|\n"
	if err := o.LoadDelimited(strings.NewReader(data), '|'); err != nil {
		t.Fatal(err)
	}
	if o.NumRows != 3 {
		t.Fatalf("rows = %d", o.NumRows)
	}
	if o.Col("o_comment").Strs[2] != "third" {
		t.Fatalf("comment = %q", o.Col("o_comment").Strs[2])
	}
	// Field-count mismatch.
	bad, _ := cat.Create(Schema{Name: "t2", Cols: []ColumnDef{{Name: "x", Kind: Int64, Role: Key}}})
	if err := bad.LoadDelimited(strings.NewReader("1|2|\n"), '|'); err == nil {
		t.Error("field mismatch should error")
	}
	// Bad int.
	bad2, _ := cat.Create(Schema{Name: "t3", Cols: []ColumnDef{{Name: "x", Kind: Int64, Role: Key}}})
	if err := bad2.LoadDelimited(strings.NewReader("zzz\n"), '|'); err == nil {
		t.Error("bad int should error")
	}
}

func TestSetColumnData(t *testing.T) {
	cat := NewCatalog()
	m, _ := cat.Create(matrixSchema())
	err := m.SetColumnData(map[string]interface{}{
		"i": []int64{0, 1},
		"j": []int64{1, 0},
		"v": []float64{0.5, 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows != 2 {
		t.Fatalf("rows = %d", m.NumRows)
	}
	if err := m.SetColumnData(map[string]interface{}{"i": []int64{0}}); err == nil {
		t.Error("missing columns should error")
	}
	if err := m.SetColumnData(map[string]interface{}{
		"i": []int64{0}, "j": []int64{1, 2}, "v": []float64{0.1},
	}); err == nil {
		t.Error("ragged columns should error")
	}
	if err := m.SetColumnData(map[string]interface{}{
		"i": []float64{0}, "j": []int64{1}, "v": []float64{0.1},
	}); err == nil {
		t.Error("kind mismatch should error")
	}
}

func TestSchemaCol(t *testing.T) {
	s := matrixSchema()
	if s.Col("v") == nil || s.Col("v").Kind != Float64 {
		t.Error("Col lookup wrong")
	}
	if s.Col("zzz") != nil {
		t.Error("absent column should be nil")
	}
	cd := ColumnDef{Name: "x", Domain: ""}
	if cd.DomainName() != "x" {
		t.Error("default domain should be column name")
	}
}
