package storage

import (
	"fmt"
	"strconv"

	"repro/internal/sqlparse"
)

// cell is one converted (schema-checked) value: exactly one field is
// meaningful, selected by the column's Kind. Converting a whole row
// before touching any storage keeps Append/AppendBatch atomic — a bad
// value rejects the row (or batch) without a partial write.
type cell struct {
	i int64
	f float64
	s string
}

// convertCell type-checks one value against a column definition.
func convertCell(table string, def *ColumnDef, v interface{}) (cell, error) {
	switch def.Kind {
	case Int64:
		switch x := v.(type) {
		case int64:
			return cell{i: x}, nil
		case int:
			return cell{i: int64(x)}, nil
		}
		return cell{}, fmt.Errorf("storage: column %s.%s wants int64, got %T", table, def.Name, v)
	case Float64:
		if x, ok := v.(float64); ok {
			return cell{f: x}, nil
		}
		return cell{}, fmt.Errorf("storage: column %s.%s wants float64, got %T", table, def.Name, v)
	case String:
		if x, ok := v.(string); ok {
			return cell{s: x}, nil
		}
		return cell{}, fmt.Errorf("storage: column %s.%s wants string, got %T", table, def.Name, v)
	case Date:
		switch x := v.(type) {
		case int64:
			return cell{i: x}, nil
		case string:
			days, err := sqlparse.ParseDate(x)
			if err != nil {
				return cell{}, err
			}
			return cell{i: int64(days)}, nil
		}
		return cell{}, fmt.Errorf("storage: column %s.%s wants date, got %T", table, def.Name, v)
	}
	return cell{}, fmt.Errorf("storage: column %s.%s has unsupported kind", table, def.Name)
}

// parseCell parses one delimited text field against a column definition
// (the LoadDelimited value syntax).
func parseCell(def *ColumnDef, f string) (cell, error) {
	switch def.Kind {
	case Int64:
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return cell{}, err
		}
		return cell{i: v}, nil
	case Float64:
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return cell{}, err
		}
		return cell{f: v}, nil
	case String:
		return cell{s: f}, nil
	case Date:
		days, err := sqlparse.ParseDate(f)
		if err != nil {
			return cell{}, err
		}
		return cell{i: int64(days)}, nil
	}
	return cell{}, fmt.Errorf("storage: unsupported kind")
}

// deltaCol is the typed append log for one column.
type deltaCol struct {
	ints   []int64
	floats []float64
	strs   []string
}

// deltaStore is a table's post-freeze append log: row-oriented in API,
// column-typed in storage, guarded by the owning Table's mutex. It is
// the mutable half of the mutable-on-top-of-immutable split — snapshot
// builds fold a prefix of it into a new immutable generation, and
// compaction truncates the folded prefix away.
type deltaStore struct {
	rows int
	cols []deltaCol
}

func newDeltaStore(ncols int) *deltaStore {
	return &deltaStore{cols: make([]deltaCol, ncols)}
}

// push appends one converted row. Caller holds the table mutex.
func (d *deltaStore) push(defs []*Column, row []cell) {
	for i, c := range defs {
		dc := &d.cols[i]
		switch c.Def.Kind {
		case Int64, Date:
			dc.ints = append(dc.ints, row[i].i)
		case Float64:
			dc.floats = append(dc.floats, row[i].f)
		case String:
			dc.strs = append(dc.strs, row[i].s)
		}
	}
	d.rows++
}

// view captures immutable slice headers over the first n rows of every
// column. Caller holds the table mutex for the capture; afterwards the
// views are safe to read without it (appenders only write beyond n).
func (d *deltaStore) view(n int) []deltaCol {
	out := make([]deltaCol, len(d.cols))
	for i := range d.cols {
		dc := &d.cols[i]
		if dc.ints != nil {
			out[i].ints = dc.ints[:min(n, len(dc.ints))]
		}
		if dc.floats != nil {
			out[i].floats = dc.floats[:min(n, len(dc.floats))]
		}
		if dc.strs != nil {
			out[i].strs = dc.strs[:min(n, len(dc.strs))]
		}
	}
	return out
}

// drop returns a fresh store holding the rows after the first n (the
// compaction truncation). Caller holds the table mutex. Returns nil
// when nothing remains.
func (d *deltaStore) drop(n int) *deltaStore {
	if d == nil || d.rows <= n {
		return nil
	}
	nd := newDeltaStore(len(d.cols))
	nd.rows = d.rows - n
	for i := range d.cols {
		dc := &d.cols[i]
		if dc.ints != nil {
			nd.cols[i].ints = append([]int64(nil), dc.ints[n:]...)
		}
		if dc.floats != nil {
			nd.cols[i].floats = append([]float64(nil), dc.floats[n:]...)
		}
		if dc.strs != nil {
			nd.cols[i].strs = append([]string(nil), dc.strs[n:]...)
		}
	}
	return nd
}
