package storage

import (
	"fmt"

	"repro/internal/dict"
	"repro/internal/wal"
)

// This file is the storage side of the durability subsystem: the WAL
// sink every append funnels through, the batch-id plumbing for
// idempotent client retries, and the consistent capture used to write
// on-disk snapshots.

// SetWAL attaches (or, with nil, detaches) the table's write-ahead
// log. While attached, every append — Append, AppendBatch,
// LoadDelimitedContext, pre- or post-freeze — is written and
// policy-synced to the log BEFORE the rows become visible, under the
// same table mutex that serializes the commit, so replay order equals
// commit order. Recovery attaches the WAL only after replay completes
// (replayed rows must not be re-logged). SetColumnData bypasses the
// WAL by design: it is the bulk-generator path, covered by writing a
// snapshot right after population.
func (t *Table) SetWAL(l *wal.Log) {
	t.mu.Lock()
	t.wal = l
	t.mu.Unlock()
}

// WAL returns the attached write-ahead log, or nil.
func (t *Table) WAL() *wal.Log {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wal
}

// AppendBatchID is AppendBatch carrying a client batch id that is
// recorded in the WAL record, so recovery can rebuild the idempotency
// dedup set (the X-Batch-Id contract in lhserve).
func (t *Table) AppendBatchID(batchID string, rows [][]interface{}) error {
	conv := make([][]cell, len(rows))
	for i, r := range rows {
		row, err := t.convertRow(r)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		conv[i] = row
	}
	return t.appendCellsID(conv, batchID)
}

// walAppendLocked logs one converted batch. Caller holds t.mu.
func (t *Table) walAppendLocked(rows [][]cell, batchID string) error {
	var epoch uint64
	if t.cat != nil {
		epoch = t.cat.epoch.Load()
	}
	e := wal.NewEncoder(epoch, batchID, len(rows))
	for _, r := range rows {
		for i, c := range t.Cols {
			switch c.Def.Kind {
			case Int64, Date:
				e.Int64(r[i].i)
			case Float64:
				e.Float64(r[i].f)
			case String:
				e.String(r[i].s)
			}
		}
	}
	return t.wal.Append(e)
}

// DecodeWALRecord decodes one replayed WAL record against the table's
// schema into Append-compatible rows.
func (t *Table) DecodeWALRecord(r *wal.Record) ([][]interface{}, error) {
	rows := make([][]interface{}, 0, r.NRows)
	for n := 0; n < r.NRows; n++ {
		row := make([]interface{}, len(t.Cols))
		for i, c := range t.Cols {
			switch c.Def.Kind {
			case Int64, Date:
				row[i] = r.Int64()
			case Float64:
				row[i] = r.Float64()
			case String:
				row[i] = r.String()
			}
		}
		rows = append(rows, row)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// TableCapture is one table's durable state at capture time: the
// immutable generation holding every folded row, plus the (usually
// tiny) delta tail not yet folded, plus the WAL segment cutoff — every
// row in Gen/TailRows was logged to a segment <= WALCutoff, every row
// after the capture lands in a segment > WALCutoff.
type TableCapture struct {
	Name      string
	Schema    Schema
	Gen       *Table
	TailRows  [][]interface{}
	WALCutoff uint64
}

// Capture is a consistent durable view of the whole catalog.
type Capture struct {
	Epoch   uint64
	Tables  []TableCapture
	Domains map[string]*dict.Dictionary
}

// CaptureForSnapshot captures the catalog's durable state. For each
// table, rotate (when non-nil) is called with the table name WHILE the
// table mutex is held — the same mutex appends commit under — and must
// rotate that table's WAL, returning the rotated-away segment
// sequence. Holding the mutex across rotate+capture means no append
// can straddle the cutoff: a row is either in the captured state (its
// record in a segment <= cutoff) or will be replayed (segment >
// cutoff), never both. Domain dictionaries are captured under snapMu,
// which also blocks generation builds, so every value in every
// captured generation is covered by the captured dictionaries.
func (c *Catalog) CaptureForSnapshot(rotate func(table string) (uint64, error)) (*Capture, error) {
	if !c.frozen {
		return nil, fmt.Errorf("storage: CaptureForSnapshot before Freeze")
	}
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	cap := &Capture{Epoch: c.epoch.Load()}
	for _, name := range c.order {
		t := c.tables[name]
		t.mu.Lock()
		var cutoff uint64
		if rotate != nil {
			var err error
			cutoff, err = rotate(name)
			if err != nil {
				t.mu.Unlock()
				return nil, err
			}
		}
		n := 0
		var view []deltaCol
		if t.delta != nil {
			n = t.delta.rows
			view = t.delta.view(n)
		}
		t.mu.Unlock()
		gen := t.Live()
		tc := TableCapture{Name: name, Schema: t.Schema, Gen: gen, WALCutoff: cutoff}
		for r := gen.deltaMerged; r < n; r++ {
			row := make([]interface{}, len(t.Cols))
			for i, col := range t.Cols {
				switch col.Def.Kind {
				case Int64, Date:
					row[i] = view[i].ints[r]
				case Float64:
					row[i] = view[i].floats[r]
				case String:
					row[i] = view[i].strs[r]
				}
			}
			tc.TailRows = append(tc.TailRows, row)
		}
		cap.Tables = append(cap.Tables, tc)
	}
	cap.Domains = make(map[string]*dict.Dictionary, len(c.domains))
	for dn, d := range c.domains {
		cap.Domains[dn] = d
	}
	return cap, nil
}

// RestoreEpoch seeds the catalog's epoch counter after a snapshot
// restore so post-recovery epochs continue the pre-crash sequence.
func (c *Catalog) RestoreEpoch(e uint64) {
	for {
		cur := c.epoch.Load()
		if cur >= e || c.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}
