package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dict"
	"repro/internal/qerr"
)

// Catalog owns the base tables, the per-join-domain key dictionaries,
// and the encoded column caches. After Freeze the base arrays are
// immutable and safe for concurrent readers; live appends accumulate in
// per-table delta stores and are published to queries through epoch
// snapshots (see snapshot.go).
type Catalog struct {
	tables  map[string]*Table
	order   []string
	domains map[string]*dict.Dictionary
	frozen  bool

	// onCreate, when set (see OnCreate), observes every successful
	// Create — including ones made directly on the catalog by dataset
	// generators, bypassing the engine facade. The durability layer
	// uses it to attach a WAL to every table no matter who created it.
	onCreate func(*Table) error

	// freezeMu serializes Freeze against concurrent appenders (writers
	// hold the read side; Freeze holds the write side while it scans the
	// base arrays and flips the frozen flags).
	freezeMu sync.RWMutex
	// snapMu serializes snapshot generation builds and compactions —
	// the only code paths that extend domain dictionaries.
	snapMu     sync.Mutex
	snap       atomic.Pointer[Snapshot]
	mutSeq     atomic.Uint64
	epoch      atomic.Uint64
	genCounter atomic.Uint64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*Table{}, domains: map[string]*dict.Dictionary{}}
}

// Create registers an empty table for the schema and returns it.
func (c *Catalog) Create(s Schema) (*Table, error) {
	if c.frozen {
		return nil, &qerr.FrozenTableError{Table: s.Name, Op: "Create"}
	}
	if s.Name == "" {
		return nil, fmt.Errorf("storage: table needs a name")
	}
	if _, dup := c.tables[s.Name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", s.Name)
	}
	seen := map[string]bool{}
	for _, cd := range s.Cols {
		if seen[cd.Name] {
			return nil, fmt.Errorf("storage: duplicate column %q in %s", cd.Name, s.Name)
		}
		seen[cd.Name] = true
		if cd.Role == Key && cd.Kind == Float64 {
			return nil, fmt.Errorf("storage: float keys are not supported (%s.%s)", s.Name, cd.Name)
		}
	}
	t := NewTable(s)
	t.cat = c
	c.tables[s.Name] = t
	c.order = append(c.order, s.Name)
	if c.onCreate != nil {
		if err := c.onCreate(t); err != nil {
			delete(c.tables, s.Name)
			c.order = c.order[:len(c.order)-1]
			return nil, fmt.Errorf("storage: create hook for %s: %w", s.Name, err)
		}
	}
	return t, nil
}

// OnCreate installs a hook observing every subsequent Create (a hook
// error fails the Create and unregisters the table). One hook; calling
// again replaces it.
func (c *Catalog) OnCreate(fn func(*Table) error) { c.onCreate = fn }

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// Tables lists table names in creation order.
func (c *Catalog) Tables() []string { return append([]string(nil), c.order...) }

// Frozen reports whether Freeze has run.
func (c *Catalog) Frozen() bool { return c.frozen }

// Freeze builds the per-domain key dictionaries, encodes every key
// column, encodes string annotation columns with per-column
// dictionaries, and converts numeric annotations to float64 buffers.
// It corresponds to the data-statistics / encoding phase that the
// paper's measurements exclude. Freeze is no longer a one-way door for
// writes: rows appended after it land in per-table delta stores and
// surface through epoch snapshots (snapshot.go); Compact folds them
// back into right-sized base generations.
func (c *Catalog) Freeze() error { return c.freezeWith(nil, nil) }

// FreezeWith freezes using dictionaries restored from a snapshot
// instead of building fresh ones: provided domain dictionaries (keyed
// by domain name) and string-annotation dictionaries (keyed
// "table.column") are installed as-is and the column codes re-encoded
// against them. Because a restored dictionary carries its unsorted
// tail in original first-seen order, the re-encoded codes are exactly
// the pre-snapshot codes. A value missing from a provided dictionary
// means the snapshot is inconsistent: FreezeWith fails without
// freezing, and the caller falls back to a plain Freeze (fresh
// dictionaries — different codes, same query semantics).
func (c *Catalog) FreezeWith(domains, ann map[string]*dict.Dictionary) error {
	return c.freezeWith(domains, ann)
}

func (c *Catalog) freezeWith(provDomains, provAnn map[string]*dict.Dictionary) error {
	if c.frozen {
		return nil
	}
	c.freezeMu.Lock()
	defer c.freezeMu.Unlock()
	// Collect domain value sets across tables.
	type domainCols struct {
		kind Kind
		cols []*Column
	}
	domains := map[string]*domainCols{}
	for _, name := range c.order {
		t := c.tables[name]
		for _, col := range t.Cols {
			if col.Def.Role != Key {
				continue
			}
			dn := col.Def.DomainName()
			dc := domains[dn]
			if dc == nil {
				dc = &domainCols{kind: col.Def.Kind}
				domains[dn] = dc
			}
			if dc.kind != col.Def.Kind {
				return fmt.Errorf("storage: domain %q mixes kinds %v and %v", dn, dc.kind, col.Def.Kind)
			}
			dc.cols = append(dc.cols, col)
		}
	}
	// Build one order-preserving dictionary per domain. Integer domains
	// whose values are exactly a dense range [min, max] with min >= 0 and
	// small span get the identity-like dictionary via ranks anyway —
	// order preservation is what matters.
	names := make([]string, 0, len(domains))
	for dn := range domains {
		names = append(names, dn)
	}
	sort.Strings(names)
	for _, dn := range names {
		dc := domains[dn]
		var d *dict.Dictionary
		if prov := provDomains[dn]; prov != nil {
			d = prov
		} else {
			switch dc.kind {
			case Int64, Date:
				b := dict.NewBuilder(dict.Int)
				for _, col := range dc.cols {
					for _, v := range col.Ints {
						b.AddInt(v)
					}
				}
				d = b.Build()
			case String:
				b := dict.NewBuilder(dict.String)
				for _, col := range dc.cols {
					for _, v := range col.Strs {
						b.AddString(v)
					}
				}
				d = b.Build()
			default:
				return fmt.Errorf("storage: unsupported key kind in domain %q", dn)
			}
		}
		c.domains[dn] = d
		for _, col := range dc.cols {
			col.dict = d
			col.codes = make([]uint32, len(col.Ints)+len(col.Strs))
			switch dc.kind {
			case Int64, Date:
				for i, v := range col.Ints {
					code, ok := d.EncodeInt(v)
					if !ok {
						return fmt.Errorf("storage: value %d missing from domain %q", v, dn)
					}
					col.codes[i] = code
				}
			case String:
				for i, v := range col.Strs {
					code, ok := d.EncodeString(v)
					if !ok {
						return fmt.Errorf("storage: value %q missing from domain %q", v, dn)
					}
					col.codes[i] = code
				}
			}
		}
	}
	// Encode string annotations per column; cache numeric annotations as
	// float64 buffers.
	for _, name := range c.order {
		t := c.tables[name]
		for _, col := range t.Cols {
			if col.Def.Role != Annotation {
				continue
			}
			switch col.Def.Kind {
			case String:
				d := provAnn[name+"."+col.Def.Name]
				if d == nil {
					b := dict.NewBuilder(dict.String)
					for _, v := range col.Strs {
						b.AddString(v)
					}
					d = b.Build()
				}
				col.dict = d
				col.codes = make([]uint32, len(col.Strs))
				for i, v := range col.Strs {
					code, ok := d.EncodeString(v)
					if !ok {
						return fmt.Errorf("storage: value %q missing from restored dictionary %s.%s", v, name, col.Def.Name)
					}
					col.codes[i] = code
				}
			case Float64:
				col.floats = col.Floats
				if col.floats == nil {
					// An empty table has a nil Floats buffer; expression
					// compilation distinguishes "numeric buffer present"
					// from "string annotation" by nil-ness, so freeze an
					// empty (non-nil) buffer to keep zero-row relations
					// filterable.
					col.floats = []float64{}
				}
			case Int64, Date:
				col.floats = make([]float64, len(col.Ints))
				for i, v := range col.Ints {
					col.floats[i] = float64(v)
				}
			}
		}
	}
	c.frozen = true
	for _, t := range c.tables {
		t.frozen = true
	}
	return nil
}

// Domain returns the dictionary of the named join domain (post-Freeze).
func (c *Catalog) Domain(name string) *dict.Dictionary { return c.domains[name] }

// KeyCodes returns the domain-encoded codes of a key column.
func (col *Column) KeyCodes() []uint32 { return col.codes }

// Dict returns the dictionary of a key column or string annotation.
func (col *Column) Dict() *dict.Dictionary { return col.dict }

// AnnFloats returns a numeric annotation as float64s (dates as day
// counts). Nil for string annotations.
func (col *Column) AnnFloats() []float64 { return col.floats }

// AnnCodes returns a string annotation's per-column codes.
func (col *Column) AnnCodes() []uint32 {
	if col.Def.Role == Annotation && col.Def.Kind == String {
		return col.codes
	}
	return nil
}
