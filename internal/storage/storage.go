// Package storage implements LevelHeaded's catalog and base-table
// storage (paper §III-A, §III-B). Attributes are classified by a
// user-defined schema as either keys (the only attributes that may
// join; dictionary-encoded into tries, grouped into join domains that
// share a code space) or annotations (aggregatable values held in flat
// columnar buffers).
package storage

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dict"
	"repro/internal/qerr"
	"repro/internal/wal"
)

// Kind is the logical type of a column.
type Kind uint8

const (
	Int64 Kind = iota
	Float64
	String
	Date // stored as days since 1970-01-01
)

func (k Kind) String() string {
	switch k {
	case Int64:
		return "int"
	case Float64:
		return "double"
	case String:
		return "string"
	case Date:
		return "date"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Role classifies an attribute per the LevelHeaded data model.
type Role uint8

const (
	// Key attributes are primary/foreign keys: the only joinable
	// attributes, stored in the trie. Keys cannot be aggregated.
	Key Role = iota
	// Annotation attributes carry data values; they can be aggregated,
	// filtered and grouped on, but never joined.
	Annotation
)

// ColumnDef declares one column of a table schema.
type ColumnDef struct {
	Name string
	Kind Kind
	Role Role
	// Domain names the join domain of a Key column; key columns sharing
	// a domain share one order-preserving dictionary and are therefore
	// join-compatible. Empty means the column name itself.
	Domain string
	// PK marks a single-column primary key. The planner uses it to
	// resolve GROUP BY annotations through the metadata container
	// (paper §IV-A rule 4): the PK vertex code locates the source row.
	PK bool
}

// DomainName resolves the effective join-domain name.
func (c *ColumnDef) DomainName() string {
	if c.Domain != "" {
		return c.Domain
	}
	return c.Name
}

// Schema is an ordered list of column definitions.
type Schema struct {
	Name string
	Cols []ColumnDef
}

// Col returns the definition of the named column, or nil.
func (s *Schema) Col(name string) *ColumnDef {
	for i := range s.Cols {
		if s.Cols[i].Name == name {
			return &s.Cols[i]
		}
	}
	return nil
}

// Column is the typed columnar storage for one attribute.
type Column struct {
	Def ColumnDef
	// Ints holds Int64 and Date values; Floats holds Float64 values;
	// Strs holds String values. Exactly one is populated.
	Ints   []int64
	Floats []float64
	Strs   []string

	// codes/dict cache the encoded form, built by Catalog.Freeze:
	// domain-encoded for keys, per-column encoded for string annotations.
	codes  []uint32
	dict   *dict.Dictionary
	floats []float64 // numeric annotation cache (int/date → float64)
}

// Table is a base relation: schema plus columnar data.
//
// A Table value plays two roles. The HANDLE is the struct returned by
// Catalog.Create: it owns the mutation state (delta log, published
// generation pointer) and its Cols hold the frozen base arrays. A
// GENERATION is an immutable Table built by a snapshot or compaction:
// base arrays plus folded delta rows, published on the handle's live
// pointer and pinned by epoch snapshots. Executors never see the
// distinction — they receive whichever *Table the snapshot resolves.
type Table struct {
	Schema  Schema
	NumRows int
	Cols    []*Column

	byName map[string]*Column
	frozen bool

	// Mutation state (meaningful on the handle only).
	cat         *Catalog // owning catalog; nil for standalone tables
	mu          sync.Mutex
	delta       *deltaStore           // post-freeze append log
	wal         *wal.Log              // durability sink; nil when not durable
	live        atomic.Pointer[Table] // latest generation; nil ⇒ no deltas ever folded
	lastCompact atomic.Uint64         // epoch of the last compaction

	// Generation metadata (meaningful on generations).
	genSeq      uint64 // unique build sequence, 0 for the handle
	deltaMerged int    // delta-log rows folded into this generation
}

// Frozen reports whether the owning catalog has been frozen. A frozen
// table's base arrays are immutable; appends land in its delta store.
func (t *Table) Frozen() bool { return t.frozen }

// Live returns the freshest published generation of t (t itself when no
// delta rows have ever been folded). Safe to call concurrently.
func (t *Table) Live() *Table {
	if g := t.live.Load(); g != nil {
		return g
	}
	return t
}

// LiveRows reports the row count of the freshest published generation —
// what the planner should cost against, as opposed to NumRows, which on
// a handle counts only base rows.
func (t *Table) LiveRows() int { return t.Live().NumRows }

// Generation returns this table struct's build sequence (0 for a
// handle's base data). Trie caches key on it to separate generations.
func (t *Table) Generation() uint64 { return t.genSeq }

// DeltaRows reports how many appended rows sit in the delta log, i.e.
// have not yet been folded away by Compact. (Rows already visible to
// queries via a snapshot still count until compaction truncates them.)
func (t *Table) DeltaRows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.delta == nil {
		return 0
	}
	return t.delta.rows
}

// LastCompactEpoch reports the catalog epoch of this table's most
// recent compaction (0 = never compacted).
func (t *Table) LastCompactEpoch() uint64 { return t.lastCompact.Load() }

// TotalRows reports the rows a fresh snapshot would expose: the live
// generation's rows plus any delta rows not yet folded into it.
func (t *Table) TotalRows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	live := t.Live()
	n := 0
	if t.delta != nil {
		n = t.delta.rows
	}
	return live.NumRows + (n - live.deltaMerged)
}

// NewTable creates an empty table for the schema.
func NewTable(s Schema) *Table {
	t := &Table{Schema: s, byName: map[string]*Column{}}
	for _, cd := range s.Cols {
		c := &Column{Def: cd}
		t.Cols = append(t.Cols, c)
		t.byName[cd.Name] = c
	}
	return t
}

// Col returns the named column, or nil.
func (t *Table) Col(name string) *Column { return t.byName[name] }

// Append appends one row, before or after freeze. Values must match the
// schema's kinds: int64 for Int64, float64 for Float64, string for
// String, and either int64 (day count) or string ("YYYY-MM-DD") for
// Date. Before freeze the row lands in the base arrays; after freeze it
// lands in the table's delta store and becomes visible to the next
// query without an explicit compaction. Safe for concurrent use.
func (t *Table) Append(vals ...interface{}) error {
	row, err := t.convertRow(vals)
	if err != nil {
		return err
	}
	return t.appendCells([][]cell{row})
}

// AppendBatch appends many rows atomically: every row is type-checked
// before any storage is touched, so a bad row rejects the whole batch.
// Safe for concurrent use, before or after freeze.
func (t *Table) AppendBatch(rows [][]interface{}) error {
	conv := make([][]cell, len(rows))
	for i, r := range rows {
		row, err := t.convertRow(r)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		conv[i] = row
	}
	return t.appendCells(conv)
}

// AppendRow appends one row.
//
// Deprecated: use Append, which also accepts rows after freeze.
func (t *Table) AppendRow(vals ...interface{}) error { return t.Append(vals...) }

func (t *Table) convertRow(vals []interface{}) ([]cell, error) {
	if len(vals) != len(t.Cols) {
		return nil, fmt.Errorf("storage: %d values for %d columns of %s", len(vals), len(t.Cols), t.Schema.Name)
	}
	row := make([]cell, len(vals))
	for i, c := range t.Cols {
		cv, err := convertCell(t.Schema.Name, &c.Def, vals[i])
		if err != nil {
			return nil, err
		}
		row[i] = cv
	}
	return row, nil
}

// appendCells commits converted rows: into the base arrays before
// freeze, into the delta log after. It synchronizes against Freeze via
// the catalog's freeze lock and against concurrent appenders and
// snapshot builds via the table mutex.
func (t *Table) appendCells(rows [][]cell) error { return t.appendCellsID(rows, "") }

// appendCellsID is appendCells with a client batch id destined for the
// WAL record. When a WAL is attached, the batch is logged (and synced,
// per policy) while holding the table mutex, BEFORE any row is
// committed — a WAL failure rejects the whole batch, so an acked
// append is always on disk and an unacked one is never visible.
func (t *Table) appendCellsID(rows [][]cell, batchID string) error {
	if len(rows) == 0 {
		return nil
	}
	if t.cat != nil {
		t.cat.freezeMu.RLock()
		defer t.cat.freezeMu.RUnlock()
	}
	t.mu.Lock()
	if t.wal != nil {
		if err := t.walAppendLocked(rows, batchID); err != nil {
			t.mu.Unlock()
			return fmt.Errorf("storage: wal append on %s: %w", t.Schema.Name, err)
		}
	}
	frozen := t.frozen
	if frozen {
		if t.delta == nil {
			t.delta = newDeltaStore(len(t.Cols))
		}
		for _, r := range rows {
			t.delta.push(t.Cols, r)
		}
	} else {
		for _, r := range rows {
			for i, c := range t.Cols {
				switch c.Def.Kind {
				case Int64, Date:
					c.Ints = append(c.Ints, r[i].i)
				case Float64:
					c.Floats = append(c.Floats, r[i].f)
				case String:
					c.Strs = append(c.Strs, r[i].s)
				}
			}
			t.NumRows++
		}
	}
	t.mu.Unlock()
	if frozen && t.cat != nil {
		t.cat.noteMutation()
	}
	return nil
}

// LoadDelimited bulk-loads delimiter-separated rows.
//
// Deprecated: use LoadDelimitedContext, which can be cancelled
// mid-load.
func (t *Table) LoadDelimited(r io.Reader, delim byte) error {
	return t.LoadDelimitedContext(context.Background(), r, delim)
}

// loadChunkRows is how many parsed rows LoadDelimitedContext buffers
// between context checks and storage commits.
const loadChunkRows = 1024

// LoadDelimitedContext bulk-loads delimiter-separated rows (e.g. '|'
// for TPC-H .tbl files, ',' for CSV). Trailing delimiters are
// tolerated; fields must match the schema order. The context is checked
// at chunk boundaries (every loadChunkRows rows), so a cancelled load
// returns ctx.Err() promptly; rows from fully committed chunks remain
// appended. Works before and after freeze — post-freeze rows land in
// the delta store like Append.
func (t *Table) LoadDelimitedContext(ctx context.Context, r io.Reader, delim byte) error {
	br := bufio.NewReaderSize(r, 1<<20)
	line := 0
	batch := make([][]cell, 0, loadChunkRows)
	flush := func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(batch) == 0 {
			return nil
		}
		if err := t.appendCells(batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for {
		raw, err := br.ReadString('\n')
		if raw != "" {
			line++
			raw = strings.TrimRight(raw, "\r\n")
			if raw == "" {
				if err != nil {
					break
				}
				continue
			}
			raw = strings.TrimSuffix(raw, string(delim))
			fields := strings.Split(raw, string(delim))
			if len(fields) != len(t.Cols) {
				return fmt.Errorf("storage: %s line %d: %d fields for %d columns", t.Schema.Name, line, len(fields), len(t.Cols))
			}
			row := make([]cell, len(t.Cols))
			for i, c := range t.Cols {
				cv, perr := parseCell(&c.Def, fields[i])
				if perr != nil {
					return fmt.Errorf("storage: %s line %d col %s: %v", t.Schema.Name, line, c.Def.Name, perr)
				}
				row[i] = cv
			}
			batch = append(batch, row)
			if len(batch) >= loadChunkRows {
				if ferr := flush(); ferr != nil {
					return ferr
				}
			}
		}
		if err != nil {
			if err == io.EOF {
				return flush()
			}
			return err
		}
	}
	return flush()
}

// SetColumnData installs pre-built columnar data, replacing the current
// contents; all columns must have equal length. Used by generators to
// avoid per-row appends.
func (t *Table) SetColumnData(data map[string]interface{}) error {
	if t.frozen {
		return &qerr.FrozenTableError{Table: t.Schema.Name, Op: "SetColumnData"}
	}
	n := -1
	for name, raw := range data {
		c := t.byName[name]
		if c == nil {
			return &qerr.UnknownColumnError{Table: t.Schema.Name, Column: name}
		}
		var ln int
		switch v := raw.(type) {
		case []int64:
			if c.Def.Kind != Int64 && c.Def.Kind != Date {
				return fmt.Errorf("storage: %s.%s kind mismatch", t.Schema.Name, name)
			}
			c.Ints = v
			ln = len(v)
		case []float64:
			if c.Def.Kind != Float64 {
				return fmt.Errorf("storage: %s.%s kind mismatch", t.Schema.Name, name)
			}
			c.Floats = v
			ln = len(v)
		case []string:
			if c.Def.Kind != String {
				return fmt.Errorf("storage: %s.%s kind mismatch", t.Schema.Name, name)
			}
			c.Strs = v
			ln = len(v)
		default:
			return fmt.Errorf("storage: unsupported column data %T for %s.%s", raw, t.Schema.Name, name)
		}
		if n >= 0 && ln != n {
			return fmt.Errorf("storage: ragged columns in %s", t.Schema.Name)
		}
		n = ln
	}
	if len(data) != len(t.Cols) {
		return fmt.Errorf("storage: %d columns supplied for %d in %s", len(data), len(t.Cols), t.Schema.Name)
	}
	t.NumRows = n
	return nil
}
