// Package storage implements LevelHeaded's catalog and base-table
// storage (paper §III-A, §III-B). Attributes are classified by a
// user-defined schema as either keys (the only attributes that may
// join; dictionary-encoded into tries, grouped into join domains that
// share a code space) or annotations (aggregatable values held in flat
// columnar buffers).
package storage

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/dict"
	"repro/internal/qerr"
	"repro/internal/sqlparse"
)

// Kind is the logical type of a column.
type Kind uint8

const (
	Int64 Kind = iota
	Float64
	String
	Date // stored as days since 1970-01-01
)

func (k Kind) String() string {
	switch k {
	case Int64:
		return "int"
	case Float64:
		return "double"
	case String:
		return "string"
	case Date:
		return "date"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Role classifies an attribute per the LevelHeaded data model.
type Role uint8

const (
	// Key attributes are primary/foreign keys: the only joinable
	// attributes, stored in the trie. Keys cannot be aggregated.
	Key Role = iota
	// Annotation attributes carry data values; they can be aggregated,
	// filtered and grouped on, but never joined.
	Annotation
)

// ColumnDef declares one column of a table schema.
type ColumnDef struct {
	Name string
	Kind Kind
	Role Role
	// Domain names the join domain of a Key column; key columns sharing
	// a domain share one order-preserving dictionary and are therefore
	// join-compatible. Empty means the column name itself.
	Domain string
	// PK marks a single-column primary key. The planner uses it to
	// resolve GROUP BY annotations through the metadata container
	// (paper §IV-A rule 4): the PK vertex code locates the source row.
	PK bool
}

// DomainName resolves the effective join-domain name.
func (c *ColumnDef) DomainName() string {
	if c.Domain != "" {
		return c.Domain
	}
	return c.Name
}

// Schema is an ordered list of column definitions.
type Schema struct {
	Name string
	Cols []ColumnDef
}

// Col returns the definition of the named column, or nil.
func (s *Schema) Col(name string) *ColumnDef {
	for i := range s.Cols {
		if s.Cols[i].Name == name {
			return &s.Cols[i]
		}
	}
	return nil
}

// Column is the typed columnar storage for one attribute.
type Column struct {
	Def ColumnDef
	// Ints holds Int64 and Date values; Floats holds Float64 values;
	// Strs holds String values. Exactly one is populated.
	Ints   []int64
	Floats []float64
	Strs   []string

	// codes/dict cache the encoded form, built by Catalog.Freeze:
	// domain-encoded for keys, per-column encoded for string annotations.
	codes  []uint32
	dict   *dict.Dictionary
	floats []float64 // numeric annotation cache (int/date → float64)
}

// Table is a base relation: schema plus columnar data.
type Table struct {
	Schema  Schema
	NumRows int
	Cols    []*Column

	byName map[string]*Column
	frozen bool
}

// Frozen reports whether the owning catalog has been frozen, after
// which the table is immutable.
func (t *Table) Frozen() bool { return t.frozen }

// NewTable creates an empty table for the schema.
func NewTable(s Schema) *Table {
	t := &Table{Schema: s, byName: map[string]*Column{}}
	for _, cd := range s.Cols {
		c := &Column{Def: cd}
		t.Cols = append(t.Cols, c)
		t.byName[cd.Name] = c
	}
	return t
}

// Col returns the named column, or nil.
func (t *Table) Col(name string) *Column { return t.byName[name] }

// AppendRow appends one row. Values must match the schema's kinds:
// int64 for Int64, float64 for Float64, string for String, and either
// int64 (day count) or string ("YYYY-MM-DD") for Date.
func (t *Table) AppendRow(vals ...interface{}) error {
	if t.frozen {
		return &qerr.FrozenTableError{Table: t.Schema.Name, Op: "AppendRow"}
	}
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("storage: %d values for %d columns of %s", len(vals), len(t.Cols), t.Schema.Name)
	}
	for i, c := range t.Cols {
		switch c.Def.Kind {
		case Int64:
			v, ok := vals[i].(int64)
			if !ok {
				if vi, oki := vals[i].(int); oki {
					v, ok = int64(vi), true
				}
			}
			if !ok {
				return fmt.Errorf("storage: column %s.%s wants int64, got %T", t.Schema.Name, c.Def.Name, vals[i])
			}
			c.Ints = append(c.Ints, v)
		case Float64:
			v, ok := vals[i].(float64)
			if !ok {
				return fmt.Errorf("storage: column %s.%s wants float64, got %T", t.Schema.Name, c.Def.Name, vals[i])
			}
			c.Floats = append(c.Floats, v)
		case String:
			v, ok := vals[i].(string)
			if !ok {
				return fmt.Errorf("storage: column %s.%s wants string, got %T", t.Schema.Name, c.Def.Name, vals[i])
			}
			c.Strs = append(c.Strs, v)
		case Date:
			switch v := vals[i].(type) {
			case int64:
				c.Ints = append(c.Ints, v)
			case string:
				days, err := sqlparse.ParseDate(v)
				if err != nil {
					return err
				}
				c.Ints = append(c.Ints, int64(days))
			default:
				return fmt.Errorf("storage: column %s.%s wants date, got %T", t.Schema.Name, c.Def.Name, vals[i])
			}
		}
	}
	t.NumRows++
	return nil
}

// LoadDelimited bulk-loads delimiter-separated rows (e.g. '|' for TPC-H
// .tbl files, ',' for CSV). Trailing delimiters are tolerated. Fields
// must match the schema order.
func (t *Table) LoadDelimited(r io.Reader, delim byte) error {
	if t.frozen {
		return &qerr.FrozenTableError{Table: t.Schema.Name, Op: "LoadDelimited"}
	}
	br := bufio.NewReaderSize(r, 1<<20)
	line := 0
	for {
		raw, err := br.ReadString('\n')
		if raw != "" {
			line++
			raw = strings.TrimRight(raw, "\r\n")
			if raw == "" {
				if err != nil {
					break
				}
				continue
			}
			raw = strings.TrimSuffix(raw, string(delim))
			fields := strings.Split(raw, string(delim))
			if len(fields) != len(t.Cols) {
				return fmt.Errorf("storage: %s line %d: %d fields for %d columns", t.Schema.Name, line, len(fields), len(t.Cols))
			}
			for i, c := range t.Cols {
				f := fields[i]
				switch c.Def.Kind {
				case Int64:
					v, perr := strconv.ParseInt(f, 10, 64)
					if perr != nil {
						return fmt.Errorf("storage: %s line %d col %s: %v", t.Schema.Name, line, c.Def.Name, perr)
					}
					c.Ints = append(c.Ints, v)
				case Float64:
					v, perr := strconv.ParseFloat(f, 64)
					if perr != nil {
						return fmt.Errorf("storage: %s line %d col %s: %v", t.Schema.Name, line, c.Def.Name, perr)
					}
					c.Floats = append(c.Floats, v)
				case String:
					c.Strs = append(c.Strs, f)
				case Date:
					days, perr := sqlparse.ParseDate(f)
					if perr != nil {
						return fmt.Errorf("storage: %s line %d col %s: %v", t.Schema.Name, line, c.Def.Name, perr)
					}
					c.Ints = append(c.Ints, int64(days))
				}
			}
			t.NumRows++
		}
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
	return nil
}

// SetColumnData installs pre-built columnar data, replacing the current
// contents; all columns must have equal length. Used by generators to
// avoid per-row appends.
func (t *Table) SetColumnData(data map[string]interface{}) error {
	if t.frozen {
		return &qerr.FrozenTableError{Table: t.Schema.Name, Op: "SetColumnData"}
	}
	n := -1
	for name, raw := range data {
		c := t.byName[name]
		if c == nil {
			return &qerr.UnknownColumnError{Table: t.Schema.Name, Column: name}
		}
		var ln int
		switch v := raw.(type) {
		case []int64:
			if c.Def.Kind != Int64 && c.Def.Kind != Date {
				return fmt.Errorf("storage: %s.%s kind mismatch", t.Schema.Name, name)
			}
			c.Ints = v
			ln = len(v)
		case []float64:
			if c.Def.Kind != Float64 {
				return fmt.Errorf("storage: %s.%s kind mismatch", t.Schema.Name, name)
			}
			c.Floats = v
			ln = len(v)
		case []string:
			if c.Def.Kind != String {
				return fmt.Errorf("storage: %s.%s kind mismatch", t.Schema.Name, name)
			}
			c.Strs = v
			ln = len(v)
		default:
			return fmt.Errorf("storage: unsupported column data %T for %s.%s", raw, t.Schema.Name, name)
		}
		if n >= 0 && ln != n {
			return fmt.Errorf("storage: ragged columns in %s", t.Schema.Name)
		}
		n = ln
	}
	if len(data) != len(t.Cols) {
		return fmt.Errorf("storage: %d columns supplied for %d in %s", len(data), len(t.Cols), t.Schema.Name)
	}
	t.NumRows = n
	return nil
}
