package storage

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func kvSchema() Schema {
	return Schema{Name: "kv", Cols: []ColumnDef{
		{Name: "k", Kind: Int64, Role: Key},
		{Name: "s", Kind: String, Role: Annotation},
		{Name: "v", Kind: Float64, Role: Annotation},
	}}
}

func TestAppendAfterFreezeLandsInDelta(t *testing.T) {
	c := NewCatalog()
	tab, err := c.Create(kvSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(int64(1), "a", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(int64(2), "b", 2.5); err != nil {
		t.Fatalf("post-freeze Append: %v", err)
	}
	if got := tab.DeltaRows(); got != 1 {
		t.Fatalf("DeltaRows = %d, want 1", got)
	}
	if tab.NumRows != 1 {
		t.Fatalf("base NumRows mutated: %d", tab.NumRows)
	}
	s := c.Snapshot()
	if s == nil {
		t.Fatal("Snapshot nil after mutation")
	}
	g := s.Resolve(tab)
	if g == tab || g.NumRows != 2 {
		t.Fatalf("generation NumRows = %d, want 2", g.NumRows)
	}
	kc := g.Col("k")
	if len(kc.KeyCodes()) != 2 {
		t.Fatalf("key codes = %v", kc.KeyCodes())
	}
	if got := kc.Dict().DecodeInt(kc.KeyCodes()[1]); got != 2 {
		t.Fatalf("delta key decodes to %d, want 2", got)
	}
	if got := g.Col("v").AnnFloats(); len(got) != 2 || got[1] != 2.5 {
		t.Fatalf("ann floats = %v", got)
	}
	sc := g.Col("s")
	if got := sc.Dict().DecodeString(sc.AnnCodes()[1]); got != "b" {
		t.Fatalf("string ann decodes to %q", got)
	}
	// Old codes are untouched in the handle's base arrays.
	if len(tab.Col("k").KeyCodes()) != 1 {
		t.Fatal("handle base codes grew")
	}
}

func TestSnapshotPinsEpoch(t *testing.T) {
	c := NewCatalog()
	tab, _ := c.Create(kvSchema())
	tab.Append(int64(1), "a", 1.0)
	c.Freeze()
	if s := c.Snapshot(); s != nil {
		t.Fatal("static catalog should snapshot to nil")
	}
	tab.Append(int64(2), "b", 2.0)
	s1 := c.Snapshot()
	g1 := s1.Resolve(tab)
	tab.Append(int64(3), "c", 3.0)
	s2 := c.Snapshot()
	g2 := s2.Resolve(tab)
	if s1 == s2 || s1.Epoch >= s2.Epoch {
		t.Fatalf("epochs not monotone: %d vs %d", s1.Epoch, s2.Epoch)
	}
	if g1.NumRows != 2 || g2.NumRows != 3 {
		t.Fatalf("pinned rows %d/%d, want 2/3", g1.NumRows, g2.NumRows)
	}
	// Old snapshot still resolves to the old generation.
	if s1.Resolve(tab).NumRows != 2 {
		t.Fatal("snapshot lost its pin")
	}
	// No new mutations: snapshot is cached.
	if c.Snapshot() != s2 {
		t.Fatal("unchanged catalog rebuilt its snapshot")
	}
}

func TestCompactTruncatesAndKeepsCodes(t *testing.T) {
	c := NewCatalog()
	tab, _ := c.Create(kvSchema())
	tab.Append(int64(5), "x", 1.0)
	tab.Append(int64(3), "y", 2.0)
	c.Freeze()
	tab.Append(int64(9), "z", 3.0) // new key value → dict tail
	tab.Append(int64(5), "x", 4.0) // existing values
	pre := c.Snapshot().Resolve(tab)
	preCodes := append([]uint32(nil), pre.Col("k").KeyCodes()...)

	n, epoch, err := c.Compact(context.Background(), nil)
	if err != nil || n != 2 || epoch == 0 {
		t.Fatalf("Compact = (%d, %d, %v)", n, epoch, err)
	}
	if got := tab.DeltaRows(); got != 0 {
		t.Fatalf("delta rows after compact = %d", got)
	}
	if tab.LastCompactEpoch() != epoch {
		t.Fatal("last-compact epoch not stamped")
	}
	post := c.Snapshot().Resolve(tab)
	if post.NumRows != 4 {
		t.Fatalf("post rows = %d", post.NumRows)
	}
	for i, pc := range post.Col("k").KeyCodes() {
		if pc != preCodes[i] {
			t.Fatalf("code %d changed across compaction: %d → %d", i, preCodes[i], pc)
		}
	}
	// Idempotent when clean.
	if n, _, _ := c.Compact(context.Background(), nil); n != 0 {
		t.Fatalf("second compact folded %d rows", n)
	}
	// Appends keep working after compaction.
	if err := tab.Append(int64(100), "w", 5.0); err != nil {
		t.Fatal(err)
	}
	if g := c.Snapshot().Resolve(tab); g.NumRows != 5 {
		t.Fatalf("post-compact append rows = %d", g.NumRows)
	}
}

func TestSharedDomainDeltaCodesAgree(t *testing.T) {
	c := NewCatalog()
	a, _ := c.Create(Schema{Name: "a", Cols: []ColumnDef{{Name: "k", Kind: Int64, Role: Key, Domain: "d"}}})
	b, _ := c.Create(Schema{Name: "b", Cols: []ColumnDef{{Name: "k", Kind: Int64, Role: Key, Domain: "d"}}})
	a.Append(int64(1))
	b.Append(int64(2))
	c.Freeze()
	a.Append(int64(77))
	b.Append(int64(77))
	s := c.Snapshot()
	ga, gb := s.Resolve(a), s.Resolve(b)
	ca := ga.Col("k").KeyCodes()[1]
	cb := gb.Col("k").KeyCodes()[1]
	if ca != cb {
		t.Fatalf("shared-domain codes diverge: %d vs %d", ca, cb)
	}
}

func TestLoadDelimitedContextCancel(t *testing.T) {
	c := NewCatalog()
	tab, _ := c.Create(Schema{Name: "t", Cols: []ColumnDef{
		{Name: "k", Kind: Int64, Role: Key},
		{Name: "v", Kind: Float64, Role: Annotation},
	}})
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		sb.WriteString("1|2.0\n")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tab.LoadDelimitedContext(ctx, strings.NewReader(sb.String()), '|'); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Uncancelled load still works, pre and post freeze.
	if err := tab.LoadDelimitedContext(context.Background(), strings.NewReader("1|2.0\n"), '|'); err != nil {
		t.Fatal(err)
	}
	c.Freeze()
	if err := tab.LoadDelimitedContext(context.Background(), strings.NewReader("7|3.0\n"), '|'); err != nil {
		t.Fatal(err)
	}
	if g := c.Snapshot().Resolve(tab); g.NumRows != 2 {
		t.Fatalf("rows = %d, want 2", g.NumRows)
	}
}

func TestConcurrentAppendSnapshotCompact(t *testing.T) {
	c := NewCatalog()
	tab, _ := c.Create(kvSchema())
	tab.Append(int64(0), "s", 0.0)
	c.Freeze()
	var wg sync.WaitGroup
	const writers, perWriter = 4, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := tab.Append(int64(w*perWriter+i), "s", float64(i)); err != nil {
					t.Error(err)
					return
				}
				if i%17 == 0 {
					if g := c.Snapshot().Resolve(tab); g.NumRows < 1 {
						t.Error("empty generation")
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, _, err := c.Compact(context.Background(), nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if _, _, err := c.Compact(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	g := c.Snapshot().Resolve(tab)
	if g == nil {
		g = tab.Live()
	}
	if g.NumRows != 1+writers*perWriter {
		t.Fatalf("rows = %d, want %d", g.NumRows, 1+writers*perWriter)
	}
}
