package storage

import (
	"context"
	"fmt"

	"repro/internal/dict"
)

// Snapshot pins one consistent view of the catalog: every table whose
// delta rows have been folded into a generation maps to that
// generation. Queries resolve table handles through the snapshot they
// were admitted with, so a query observes one epoch for its whole
// lifetime no matter how many appends or compactions land while it
// runs.
//
// A nil *Snapshot is the static-catalog fast path: no post-freeze
// mutation has ever happened, handles ARE the data, and resolution is
// a branch on the nil pointer.
type Snapshot struct {
	// Epoch is the monotonically increasing publish sequence.
	Epoch uint64

	seq  uint64            // catalog mutation sequence this snapshot covers
	live map[*Table]*Table // handle → pinned generation
}

// Resolve maps a table handle to the generation pinned by this
// snapshot. Tables without folded deltas resolve to themselves.
func (s *Snapshot) Resolve(t *Table) *Table {
	if s == nil {
		return t
	}
	if g, ok := s.live[t]; ok {
		return g
	}
	return t
}

// noteMutation records a post-freeze append; the next Snapshot call
// rebuilds instead of reusing the cached epoch.
func (c *Catalog) noteMutation() { c.mutSeq.Add(1) }

// MutationSeq reports the catalog's post-freeze mutation sequence
// (0 = never mutated).
func (c *Catalog) MutationSeq() uint64 { return c.mutSeq.Load() }

// Epoch reports the latest published snapshot/compaction epoch.
func (c *Catalog) Epoch() uint64 { return c.epoch.Load() }

// DeltaRows sums the not-yet-compacted delta rows across all tables.
func (c *Catalog) DeltaRows() int {
	total := 0
	for _, name := range c.order {
		total += c.tables[name].DeltaRows()
	}
	return total
}

// Snapshot returns the current consistent view of the catalog,
// building (and caching) a new epoch only when appends have landed
// since the last one. Returns nil — the zero-cost static view — while
// the catalog has never seen a post-freeze append.
func (c *Catalog) Snapshot() *Snapshot {
	seq := c.mutSeq.Load()
	if seq == 0 {
		return nil
	}
	if s := c.snap.Load(); s != nil && s.seq == seq {
		return s
	}
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	// Capture the sequence BEFORE reading any delta rows: appends that
	// race with the build may or may not be folded in, but they bumped
	// the sequence past seq, so the next Snapshot call rebuilds and
	// cannot lose them.
	seq = c.mutSeq.Load()
	if s := c.snap.Load(); s != nil && s.seq == seq {
		return s
	}
	s := &Snapshot{Epoch: c.epoch.Add(1), seq: seq, live: map[*Table]*Table{}}
	for _, name := range c.order {
		t := c.tables[name]
		g := c.refreshGeneration(t)
		if g != t {
			s.live[t] = g
		}
	}
	c.snap.Store(s)
	return s
}

// refreshGeneration folds any unfolded delta rows of t into a new
// immutable generation and publishes it on the handle. Caller holds
// snapMu (generation building and domain-dictionary extension are
// serialized engine-wide).
func (c *Catalog) refreshGeneration(t *Table) *Table {
	t.mu.Lock()
	n := 0
	var view []deltaCol
	if t.delta != nil {
		n = t.delta.rows
		view = t.delta.view(n)
	}
	t.mu.Unlock()
	cur := t.Live()
	if cur.deltaMerged >= n {
		return cur
	}
	g := c.buildGeneration(t, cur, view, n)
	t.live.Store(g)
	return g
}

// buildGeneration produces the immutable generation of t that extends
// cur with delta rows [cur.deltaMerged, n). Base arrays are shared
// structurally: each buffer is append-extended, which either reuses
// cur's backing array beyond its length (older readers only see their
// own prefix) or reallocates — both race-free for concurrent readers
// of older generations. New key values are admitted by extending the
// shared-domain dictionaries in place in the catalog, keeping all
// existing codes stable.
func (c *Catalog) buildGeneration(t *Table, cur *Table, view []deltaCol, n int) *Table {
	from := cur.deltaMerged
	add := n - from
	g := &Table{
		Schema:      t.Schema,
		NumRows:     cur.NumRows + add,
		byName:      map[string]*Column{},
		frozen:      true,
		cat:         c,
		genSeq:      c.genCounter.Add(1),
		deltaMerged: n,
	}
	for i, hc := range t.Cols {
		cc := cur.Cols[i]
		nc := &Column{Def: hc.Def}
		dv := view[i]
		switch {
		case hc.Def.Role == Key:
			dn := hc.Def.DomainName()
			d := c.domains[dn]
			switch hc.Def.Kind {
			case Int64, Date:
				vals := dv.ints[from:n]
				d = c.extendDomainInts(dn, d, vals)
				nc.Ints = append(cc.Ints, vals...)
				nc.codes = appendCodes(cc.codes, vals, nil, d)
			case String:
				vals := dv.strs[from:n]
				d = c.extendDomainStrs(dn, d, vals)
				nc.Strs = append(cc.Strs, vals...)
				nc.codes = appendCodes(cc.codes, nil, vals, d)
			}
			nc.dict = d
		case hc.Def.Kind == String: // string annotation: per-column dict
			vals := dv.strs[from:n]
			d := cc.dict
			if needStrs(d, vals) {
				d = d.ExtendStrings(vals)
			}
			nc.Strs = append(cc.Strs, vals...)
			nc.dict = d
			nc.codes = appendCodes(cc.codes, nil, vals, d)
		case hc.Def.Kind == Float64:
			vals := dv.floats[from:n]
			nc.Floats = append(cc.Floats, vals...)
			nc.floats = append(cc.floats, vals...)
		default: // Int64/Date annotation
			vals := dv.ints[from:n]
			nc.Ints = append(cc.Ints, vals...)
			nc.floats = cc.floats
			for _, v := range vals {
				nc.floats = append(nc.floats, float64(v))
			}
		}
		g.Cols = append(g.Cols, nc)
		g.byName[hc.Def.Name] = nc
	}
	return g
}

func needInts(d *dict.Dictionary, vals []int64) bool {
	for _, v := range vals {
		if _, ok := d.EncodeInt(v); !ok {
			return true
		}
	}
	return false
}

func needStrs(d *dict.Dictionary, vals []string) bool {
	for _, v := range vals {
		if _, ok := d.EncodeString(v); !ok {
			return true
		}
	}
	return false
}

// extendDomainInts admits new integer key values into a shared join
// domain, publishing the extended dictionary catalog-wide so sibling
// tables mint identical codes for identical values.
func (c *Catalog) extendDomainInts(dn string, d *dict.Dictionary, vals []int64) *dict.Dictionary {
	if !needInts(d, vals) {
		return d
	}
	nd := d.ExtendInts(vals)
	c.domains[dn] = nd
	return nd
}

func (c *Catalog) extendDomainStrs(dn string, d *dict.Dictionary, vals []string) *dict.Dictionary {
	if !needStrs(d, vals) {
		return d
	}
	nd := d.ExtendStrings(vals)
	c.domains[dn] = nd
	return nd
}

// appendCodes append-extends a code buffer with the encodings of vals
// (exactly one of ints/strs is non-nil).
func appendCodes(codes []uint32, ints []int64, strs []string, d *dict.Dictionary) []uint32 {
	for _, v := range ints {
		code, ok := d.EncodeInt(v)
		if !ok {
			panic(fmt.Sprintf("storage: value %d missing after domain extension", v))
		}
		codes = append(codes, code)
	}
	for _, v := range strs {
		code, ok := d.EncodeString(v)
		if !ok {
			panic(fmt.Sprintf("storage: value %q missing after domain extension", v))
		}
		codes = append(codes, code)
	}
	return codes
}

// Compact folds every table's delta rows into fresh, right-sized
// generations and truncates the delta logs — the heavy rebuild the
// snapshot path keeps off the hot path. Dictionary codes are stable
// across compaction (tails are never re-sorted), so query results are
// byte-identical before and after. The context is checked per table;
// charge, when non-nil, is called with the byte size of each rebuilt
// column buffer and may abort the compaction by returning an error.
// It returns the number of delta rows folded away and the epoch
// stamped on compacted tables.
func (c *Catalog) Compact(ctx context.Context, charge func(int64) error) (int, uint64, error) {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	total := 0
	epoch := uint64(0)
	for _, name := range c.order {
		if err := ctx.Err(); err != nil {
			return total, epoch, err
		}
		t := c.tables[name]
		n, err := c.compactTable(t, charge, &epoch)
		total += n
		if err != nil {
			return total, epoch, err
		}
	}
	if total > 0 {
		// Invalidate the cached snapshot so the next query pins the
		// compacted generations.
		c.noteMutation()
	}
	return total, epoch, nil
}

// compactTable rebuilds one table. Caller holds snapMu.
func (c *Catalog) compactTable(t *Table, charge func(int64) error, epoch *uint64) (int, error) {
	t.mu.Lock()
	n := 0
	var view []deltaCol
	if t.delta != nil {
		n = t.delta.rows
		view = t.delta.view(n)
	}
	t.mu.Unlock()
	if n == 0 {
		return 0, nil
	}
	cur := t.Live()
	if cur.deltaMerged < n {
		cur = c.buildGeneration(t, cur, view, n)
	}
	g, err := c.copyGeneration(t, cur, charge)
	if err != nil {
		return 0, err
	}
	if *epoch == 0 {
		*epoch = c.epoch.Add(1)
	}
	t.mu.Lock()
	t.delta = t.delta.drop(n)
	t.live.Store(g)
	t.mu.Unlock()
	t.lastCompact.Store(*epoch)
	return n, nil
}

// copyGeneration deep-copies a generation into exact-size buffers,
// releasing the over-allocated append chains grown by snapshot builds.
// deltaMerged resets to 0: every row of the copy is base data relative
// to the truncated delta log.
func (c *Catalog) copyGeneration(t *Table, cur *Table, charge func(int64) error) (*Table, error) {
	g := &Table{
		Schema:      t.Schema,
		NumRows:     cur.NumRows,
		byName:      map[string]*Column{},
		frozen:      true,
		cat:         c,
		genSeq:      c.genCounter.Add(1),
		deltaMerged: 0,
	}
	for _, cc := range cur.Cols {
		nc := &Column{Def: cc.Def, dict: cc.dict}
		var bytes int64
		if cc.Ints != nil {
			nc.Ints = append(make([]int64, 0, len(cc.Ints)), cc.Ints...)
			bytes += int64(len(cc.Ints)) * 8
		}
		if cc.Floats != nil {
			nc.Floats = append(make([]float64, 0, len(cc.Floats)), cc.Floats...)
			bytes += int64(len(cc.Floats)) * 8
		}
		if cc.Strs != nil {
			nc.Strs = append(make([]string, 0, len(cc.Strs)), cc.Strs...)
			bytes += int64(len(cc.Strs)) * 16
		}
		if cc.codes != nil {
			nc.codes = append(make([]uint32, 0, len(cc.codes)), cc.codes...)
			bytes += int64(len(cc.codes)) * 4
		}
		if cc.floats != nil {
			nc.floats = append(make([]float64, 0, len(cc.floats)), cc.floats...)
			bytes += int64(len(cc.floats)) * 8
		}
		if charge != nil {
			if err := charge(bytes); err != nil {
				return nil, err
			}
		}
		g.Cols = append(g.Cols, nc)
		g.byName[cc.Def.Name] = nc
	}
	return g, nil
}
