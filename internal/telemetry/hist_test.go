package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundary checks that values on and around every bucket
// boundary land in the bucket whose [lo, hi) range contains them.
func TestBucketBoundary(t *testing.T) {
	for i := 0; i < histNumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if hi <= lo {
			t.Fatalf("bucket %d: bounds [%d, %d)", i, lo, hi)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(lo=%d) = %d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi - 1); got != i {
			t.Fatalf("bucketIndex(hi-1=%d) = %d, want %d", hi-1, got, i)
		}
		if hi < math.MaxInt64 {
			if got := bucketIndex(hi); got != i+1 {
				t.Fatalf("bucketIndex(hi=%d) = %d, want %d", hi, got, i+1)
			}
		}
	}
	// Bounds tile the value space with no gaps.
	var prevHi int64
	for i := 0; i < histNumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if i > 0 && lo != prevHi {
			t.Fatalf("gap before bucket %d: prev hi %d, lo %d", i, prevHi, lo)
		}
		prevHi = hi
	}
}

// TestQuantileKnownDistribution records a known uniform set and checks
// each quantile estimate lies within one bucket width of the truth.
func TestQuantileKnownDistribution(t *testing.T) {
	h := &Histogram{}
	const n = 10_000
	for i := 1; i <= n; i++ {
		h.RecordNs(int64(i) * 1000) // 1µs .. 10ms uniform
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d", s.Count)
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.95, 0.99, 1.0} {
		want := int64(q*n) * 1000
		got := s.Quantile(q)
		_, hi := BucketBounds(bucketIndex(want))
		lo, _ := BucketBounds(bucketIndex(want))
		width := hi - lo
		if got < want-width || got > want+width {
			t.Fatalf("q%.2f = %d ns, want %d ± %d", q, got, want, width)
		}
	}
	if s.MaxNs != n*1000 {
		t.Fatalf("max = %d", s.MaxNs)
	}
	if mean := s.MeanNs(); mean < 4_900_000 || mean > 5_200_000 {
		t.Fatalf("mean = %d", mean)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	h := &Histogram{}
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
	h.Record(42 * time.Microsecond)
	s := h.Snapshot()
	lo, hi := BucketBounds(bucketIndex(42_000))
	if q := s.Quantile(0.5); q < lo || q >= hi {
		t.Fatalf("single-sample p50 = %d, want in [%d, %d)", q, lo, hi)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 100; i++ {
		a.RecordNs(1000)
		b.RecordNs(1_000_000)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 200 {
		t.Fatalf("merged count = %d", s.Count)
	}
	if s.SumNs != 100*1000+100*1_000_000 {
		t.Fatalf("merged sum = %d", s.SumNs)
	}
	if s.MaxNs != 1_000_000 {
		t.Fatalf("merged max = %d", s.MaxNs)
	}
	// p25 in the low mode, p75 in the high mode.
	if q := s.Quantile(0.25); q > 2000 {
		t.Fatalf("p25 = %d", q)
	}
	if q := s.Quantile(0.75); q < 900_000 {
		t.Fatalf("p75 = %d", q)
	}
}

// TestConcurrentRecordSnapshot hammers Record from many goroutines
// while snapshotting; run under -race this proves the lock-free path
// is race-clean, and the final snapshot must account for every record.
func TestConcurrentRecordSnapshot(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				s.Quantile(0.99)
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				h.RecordNs(int64(w*1000 + i))
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*per)
	}
}
