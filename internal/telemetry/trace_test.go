package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/set"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("SELECT 1")
	root := tr.Root()
	p1 := tr.Begin(root, SpanPhase, "compile")
	tr.End(p1)
	p2 := tr.Begin(root, SpanPhase, "execute")
	n1 := tr.Begin(p2, SpanNode, "node [a b]")
	k1 := tr.Begin(n1, SpanKernel, "spmv-gather")
	tr.End(k1)
	tr.EndWithStats(n1, &set.Stats{BsBs: 7, BytesOut: 64})
	tr.End(p2)
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("spans = %d", len(spans))
	}
	byID := map[SpanID]Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	// Every child interval nests inside its parent.
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span %d (%s) not closed: [%d, %d]", s.ID, s.Name, s.Start, s.End)
		}
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %d has unknown parent %d", s.ID, s.Parent)
		}
		if s.Start < p.Start || s.End > p.End {
			t.Fatalf("span %s [%d,%d] escapes parent %s [%d,%d]",
				s.Name, s.Start, s.End, p.Name, p.Start, p.End)
		}
	}
	if got := byID[n1].Stats.BsBs; got != 7 {
		t.Fatalf("node span stats bs_bs = %d", got)
	}

	tree := tr.TreeString()
	for _, want := range []string{"query", "compile", "execute", "node [a b]", "spmv-gather", "isect=7"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	// Indentation: kernel is two levels below execute.
	if !strings.Contains(tree, "      kernel") {
		t.Fatalf("kernel not nested in tree:\n%s", tree)
	}
}

func TestChromeTraceJSON(t *testing.T) {
	tr := NewTrace("q")
	p := tr.Begin(tr.Root(), SpanPhase, "execute")
	time.Sleep(time.Millisecond)
	tr.EndWithStats(p, &set.Stats{UintUintMerge: 3})
	tr.Finish()

	b, err := tr.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, b)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("phase = %v", ev["ph"])
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("ts missing: %v", ev)
		}
	}
	// The execute span carries its counters as args.
	found := false
	for _, ev := range events {
		if ev["name"] == "execute" {
			args, _ := ev["args"].(map[string]interface{})
			if args["uint_uint_merge"] != float64(3) {
				t.Fatalf("args = %v", args)
			}
			if ev["dur"].(float64) < 900 { // ≥ 0.9ms in µs units
				t.Fatalf("dur = %v µs", ev["dur"])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("execute event missing")
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	id := tr.Begin(tr.Root(), SpanPhase, "x")
	tr.End(id)
	tr.EndWithStats(id, &set.Stats{})
	tr.Add(tr.Root(), SpanPhase, "y", time.Now(), time.Now())
	tr.Finish()
	if tr.Spans() != nil || tr.TreeString() != "" || tr.Current() != "" {
		t.Fatal("nil trace leaked state")
	}
	if b, err := tr.ChromeTraceJSON(); err != nil || string(b) != "[]" {
		t.Fatalf("nil chrome json = %s, %v", b, err)
	}
}

func TestTraceOverflowDrops(t *testing.T) {
	tr := NewTrace("q")
	for i := 0; i < maxSpans+50; i++ {
		id := tr.Begin(tr.Root(), SpanNode, "n")
		tr.End(id)
	}
	if got := len(tr.Spans()); got != maxSpans {
		t.Fatalf("spans = %d, want %d", got, maxSpans)
	}
	if tr.Dropped() != 51 { // root took one slot
		t.Fatalf("dropped = %d", tr.Dropped())
	}
}

func TestCurrentSpan(t *testing.T) {
	tr := NewTrace("q")
	if cur := tr.Current(); cur != "query" {
		t.Fatalf("current = %q", cur)
	}
	p := tr.Begin(tr.Root(), SpanPhase, "execute")
	if cur := tr.Current(); cur != "execute" {
		t.Fatalf("current = %q", cur)
	}
	tr.End(p)
	if cur := tr.Current(); cur != "query" {
		t.Fatalf("current = %q", cur)
	}
}
