package telemetry

import (
	"context"
	"fmt"
	"testing"
)

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := NewTrace("SELECT 1")
	a := r.Register("SELECT 1", cancel, tr)
	if a.ID() == 0 || tr.ID() != a.ID() {
		t.Fatalf("ids: handle=%d trace=%d", a.ID(), tr.ID())
	}
	a.SetPhase("execute")

	list := r.List()
	if len(list) != 1 || list[0].SQL != "SELECT 1" || list[0].Phase != "execute" {
		t.Fatalf("list = %+v", list)
	}
	if list[0].Span != "query" {
		t.Fatalf("span = %q", list[0].Span)
	}

	if !r.Cancel(a.ID()) {
		t.Fatal("cancel failed")
	}
	if ctx.Err() == nil {
		t.Fatal("cancel did not fire the context")
	}
	if r.Cancel(999) {
		t.Fatal("cancelled a nonexistent query")
	}

	r.Finish(a)
	if r.NumActive() != 0 {
		t.Fatalf("active = %d", r.NumActive())
	}
	// The finished trace stays retrievable.
	if got := r.Trace(a.ID()); got != tr {
		t.Fatal("finished trace not retained")
	}
}

func TestRegistryRecentEviction(t *testing.T) {
	r := NewRegistry(2)
	var ids []uint64
	for i := 0; i < 3; i++ {
		tr := NewTrace(fmt.Sprintf("q%d", i))
		a := r.Register(tr.SQL(), nil, tr)
		ids = append(ids, a.ID())
		r.Finish(a)
	}
	if r.Trace(ids[0]) != nil {
		t.Fatal("oldest trace should be evicted")
	}
	if r.Trace(ids[1]) == nil || r.Trace(ids[2]) == nil {
		t.Fatal("recent traces missing")
	}
	got := r.TraceIDs()
	if len(got) != 2 || got[0] != ids[1] || got[1] != ids[2] {
		t.Fatalf("trace ids = %v", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(8)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			r.List()
			r.TraceIDs()
		}
		close(done)
	}()
	for i := 0; i < 200; i++ {
		a := r.Register("q", nil, NewTrace("q"))
		r.Finish(a)
	}
	<-done
	if r.NumActive() != 0 {
		t.Fatalf("active = %d", r.NumActive())
	}
}
