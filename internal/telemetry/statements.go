package telemetry

import (
	"container/list"
	"sort"
	"sync"
	"time"
)

// DefaultStatementCap bounds the statement store when the collector
// builds its own: enough for every distinct query shape of a dashboard
// fleet, small enough that the per-entry histograms stay a few MiB.
const DefaultStatementCap = 256

// StatementObservation is one finished query folded into the statement
// store. The engine builds it from the query's QueryStats; the struct is
// defined here (not in internal/obs) because obs sits above telemetry
// in the dependency order.
type StatementObservation struct {
	Fingerprint uint64
	Text        string // canonical literal-free statement text
	DurNs       int64
	Err         bool
	Rows        int
	AllocBytes  uint64
	MemBytes    int64 // query memory high-water (governor-accounted)
	DeltaRows   int   // delta rows folded into the query's snapshot
	Epoch       uint64
	Order       []string // costopt root attribute order
	Paths       []string // per-GHD-node access paths (pre-order)
	EstCost     float64  // Σ per-node §V model cost
	ActualCost  float64  // Σ per-node observed icost-weighted work
	Approx      bool     // answered by the approximate tier
	ErrorBound  float64  // advertised absolute error of this call (0 exact)
}

// StatementStats is one fingerprint's live accumulator.
type stmtEntry struct {
	elem *list.Element // position in the LRU list
	s    StatementSnapshot
	hist *Histogram
}

// StatementSnapshot is the exported, mergeable form of one
// fingerprint's statistics (the pg_stat_statements row analog).
type StatementSnapshot struct {
	Fingerprint uint64 `json:"-"`
	// FingerprintHex is the join key used everywhere fingerprints are
	// rendered (slow log, /metrics labels, EXPLAIN ANALYZE).
	FingerprintHex string `json:"fingerprint"`
	Text           string `json:"query"`

	Calls  uint64 `json:"calls"`
	Errors uint64 `json:"errors"`
	Rows   uint64 `json:"rows"`

	TotalNs int64 `json:"total_ns"`
	MeanNs  int64 `json:"mean_ns"`
	P50Ns   int64 `json:"p50_ns"`
	P95Ns   int64 `json:"p95_ns"`
	P99Ns   int64 `json:"p99_ns"`
	MaxNs   int64 `json:"max_ns"`

	AllocBytes   uint64 `json:"alloc_bytes"`
	MemHighWater int64  `json:"mem_high_water"` // max over calls
	DeltaRows    uint64 `json:"delta_rows_folded"`

	// Cost-model audit: cumulative estimated (§V icost×weight) and
	// observed (icost-weighted kernel counts) work, and their ratio —
	// the estimate-vs-actual calibration signal per statement shape.
	EstCost    float64 `json:"est_cost"`
	ActualCost float64 `json:"actual_cost"`
	CostRatio  float64 `json:"cost_ratio"` // ActualCost/EstCost, 0 when unknown

	// Approximate-tier usage: how many calls were answered with sketch
	// or sample estimates, and the error bound advertised last time.
	ApproxCalls    uint64  `json:"approx_calls,omitempty"`
	LastErrorBound float64 `json:"last_error_bound,omitempty"`

	// Plan drift: the optimizer's root attribute order last seen for
	// this fingerprint, how many times it changed, and the snapshot
	// epoch of the latest change (compaction re-sizing tables can
	// legitimately flip the §V decision; drift says it happened).
	LastOrder []string `json:"last_order,omitempty"`
	// LastPaths is the per-GHD-node access-path labels of the latest run
	// (wcoj/binary, pre-order) — the hybrid executor's decision record.
	LastPaths       []string `json:"last_paths,omitempty"`
	PlanChanges     uint64   `json:"plan_changes"`
	LastChangeEpoch uint64   `json:"last_change_epoch,omitempty"`
	LastEpoch       uint64   `json:"last_epoch"`

	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`

	// Hist carries the full latency histogram for merging across
	// engines/snapshots; omitted from JSON (the quantiles above are the
	// wire form).
	Hist *HistSnapshot `json:"-"`
}

// Merge folds another snapshot of the same fingerprint into s (fleet
// aggregation across engines or across scrape intervals).
func (s *StatementSnapshot) Merge(o *StatementSnapshot) {
	s.Calls += o.Calls
	s.Errors += o.Errors
	s.Rows += o.Rows
	s.TotalNs += o.TotalNs
	s.AllocBytes += o.AllocBytes
	s.DeltaRows += o.DeltaRows
	s.EstCost += o.EstCost
	s.ActualCost += o.ActualCost
	s.ApproxCalls += o.ApproxCalls
	s.PlanChanges += o.PlanChanges
	if o.MemHighWater > s.MemHighWater {
		s.MemHighWater = o.MemHighWater
	}
	if o.MaxNs > s.MaxNs {
		s.MaxNs = o.MaxNs
	}
	if o.LastSeen.After(s.LastSeen) {
		s.LastSeen = o.LastSeen
		s.LastOrder = o.LastOrder
		s.LastPaths = o.LastPaths
		s.LastEpoch = o.LastEpoch
		s.LastErrorBound = o.LastErrorBound
	}
	if o.LastChangeEpoch > s.LastChangeEpoch {
		s.LastChangeEpoch = o.LastChangeEpoch
	}
	if !o.FirstSeen.IsZero() && (s.FirstSeen.IsZero() || o.FirstSeen.Before(s.FirstSeen)) {
		s.FirstSeen = o.FirstSeen
	}
	if s.Hist != nil && o.Hist != nil {
		s.Hist.Merge(o.Hist)
	} else if s.Hist == nil {
		s.Hist = o.Hist
	}
	s.finish()
}

// finish recomputes the derived fields from the accumulated state.
func (s *StatementSnapshot) finish() {
	if s.Calls > 0 {
		s.MeanNs = s.TotalNs / int64(s.Calls)
	}
	if s.Hist != nil && s.Hist.Count > 0 {
		s.P50Ns = s.Hist.Quantile(0.50)
		s.P95Ns = s.Hist.Quantile(0.95)
		s.P99Ns = s.Hist.Quantile(0.99)
	}
	if s.EstCost > 0 {
		s.CostRatio = s.ActualCost / s.EstCost
	} else {
		s.CostRatio = 0
	}
}

// StatementStore is the bounded per-fingerprint statement-statistics
// table: an LRU keyed by fingerprint, updated once per finished query.
// Recording is one short mutex hold (map lookup, ~10 integer adds, an
// LRU splice) plus a lock-free histogram record — nothing per-tuple, so
// it is safe on the query hot path.
type StatementStore struct {
	mu      sync.Mutex
	cap     int
	m       map[uint64]*stmtEntry
	lru     *list.List // front = most recent
	evicted uint64
	drifts  uint64
}

// NewStatementStore creates a store bounded to cap fingerprints
// (cap <= 0 uses DefaultStatementCap).
func NewStatementStore(cap int) *StatementStore {
	if cap <= 0 {
		cap = DefaultStatementCap
	}
	return &StatementStore{cap: cap, m: make(map[uint64]*stmtEntry), lru: list.New()}
}

// Record folds one finished query into its fingerprint's entry,
// creating (and, at capacity, evicting the least-recently-used) as
// needed. Fingerprint 0 (unparseable statement) is ignored.
func (st *StatementStore) Record(o StatementObservation) {
	if st == nil || o.Fingerprint == 0 {
		return
	}
	now := time.Now()
	st.mu.Lock()
	e := st.m[o.Fingerprint]
	if e == nil {
		if st.lru.Len() >= st.cap {
			old := st.lru.Back()
			st.lru.Remove(old)
			delete(st.m, old.Value.(uint64))
			st.evicted++
		}
		e = &stmtEntry{hist: &Histogram{}}
		e.s.Fingerprint = o.Fingerprint
		e.s.FingerprintHex = FingerprintHex(o.Fingerprint)
		e.s.Text = o.Text
		e.s.FirstSeen = now
		e.elem = st.lru.PushFront(o.Fingerprint)
		st.m[o.Fingerprint] = e
	} else {
		st.lru.MoveToFront(e.elem)
	}
	s := &e.s
	s.Calls++
	if o.Err {
		s.Errors++
	}
	s.Rows += uint64(o.Rows)
	s.TotalNs += o.DurNs
	if o.DurNs > s.MaxNs {
		s.MaxNs = o.DurNs
	}
	s.AllocBytes += o.AllocBytes
	if o.MemBytes > s.MemHighWater {
		s.MemHighWater = o.MemBytes
	}
	s.DeltaRows += uint64(o.DeltaRows)
	s.EstCost += o.EstCost
	s.ActualCost += o.ActualCost
	if o.Approx {
		s.ApproxCalls++
		s.LastErrorBound = o.ErrorBound
	}
	if len(o.Order) > 0 {
		if len(s.LastOrder) > 0 && !eqStrs(s.LastOrder, o.Order) {
			s.PlanChanges++
			s.LastChangeEpoch = o.Epoch
			st.drifts++
		}
		s.LastOrder = append(s.LastOrder[:0], o.Order...)
	}
	if len(o.Paths) > 0 {
		s.LastPaths = append(s.LastPaths[:0], o.Paths...)
	}
	s.LastEpoch = o.Epoch
	s.LastSeen = now
	st.mu.Unlock()
	// Histogram recording is atomic; no need to hold the store lock.
	e.hist.RecordNs(o.DurNs)
}

func eqStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Len reports the number of tracked fingerprints.
func (st *StatementStore) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// Lookup returns a deep-copied snapshot of one fingerprint's statistics
// (derived fields recomputed), or ok=false when untracked. The hybrid
// path classifier reads the statement's cost_ratio through this — the
// estimate-vs-actual drift signal feeding back into access-path
// pricing. Lookups do not touch the LRU order.
func (st *StatementStore) Lookup(fp uint64) (StatementSnapshot, bool) {
	if st == nil {
		return StatementSnapshot{}, false
	}
	st.mu.Lock()
	e := st.m[fp]
	if e == nil {
		st.mu.Unlock()
		return StatementSnapshot{}, false
	}
	s := e.s
	s.LastOrder = append([]string(nil), e.s.LastOrder...)
	s.LastPaths = append([]string(nil), e.s.LastPaths...)
	hist := e.hist
	st.mu.Unlock()
	s.Hist = hist.Snapshot()
	s.finish()
	return s, true
}

// CostRatio returns the fingerprint's cumulative actual/estimated cost
// ratio, or 0 when the statement is untracked or has no cost estimate
// yet. This is the allocation-free fast path of Lookup for the per-query
// access-path classifier.
func (st *StatementStore) CostRatio(fp uint64) float64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if e := st.m[fp]; e != nil && e.s.EstCost > 0 {
		return e.s.ActualCost / e.s.EstCost
	}
	return 0
}

// Evicted reports how many fingerprints were pushed out by the LRU cap.
func (st *StatementStore) Evicted() uint64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.evicted
}

// Reset clears every entry (tests and \statements reset).
func (st *StatementStore) Reset() {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.m = make(map[uint64]*stmtEntry)
	st.lru = list.New()
	st.mu.Unlock()
}

// Statement sort keys accepted by Snapshots' by selector.
var StatementSortKeys = []string{"time", "calls", "mean", "rows", "errors", "alloc", "drift", "ratio"}

// Snapshots exports every tracked fingerprint sorted by the selector
// (descending): "time" (default) = total latency, "calls", "mean",
// "rows", "errors", "alloc", "drift" = plan changes, "ratio" =
// estimate-vs-actual cost ratio. limit <= 0 returns all. Snapshots are
// deep copies: safe to hold, merge and serialize while queries run.
func (st *StatementStore) Snapshots(by string, limit int) []StatementSnapshot {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	out := make([]StatementSnapshot, 0, len(st.m))
	hists := make([]*Histogram, 0, len(st.m))
	for _, e := range st.m {
		s := e.s
		s.LastOrder = append([]string(nil), e.s.LastOrder...)
		s.LastPaths = append([]string(nil), e.s.LastPaths...)
		out = append(out, s)
		hists = append(hists, e.hist)
	}
	st.mu.Unlock()
	for i := range out {
		out[i].Hist = hists[i].Snapshot()
		out[i].finish()
	}
	less := func(i, j int) bool { return out[i].TotalNs > out[j].TotalNs }
	switch by {
	case "", "time":
	case "calls":
		less = func(i, j int) bool { return out[i].Calls > out[j].Calls }
	case "mean":
		less = func(i, j int) bool { return out[i].MeanNs > out[j].MeanNs }
	case "rows":
		less = func(i, j int) bool { return out[i].Rows > out[j].Rows }
	case "errors":
		less = func(i, j int) bool { return out[i].Errors > out[j].Errors }
	case "alloc":
		less = func(i, j int) bool { return out[i].AllocBytes > out[j].AllocBytes }
	case "drift":
		less = func(i, j int) bool { return out[i].PlanChanges > out[j].PlanChanges }
	case "ratio":
		less = func(i, j int) bool { return out[i].CostRatio > out[j].CostRatio }
	}
	// Fingerprint tie-break keeps the order deterministic for tests and
	// stable pagination.
	sort.Slice(out, func(i, j int) bool {
		if less(i, j) != less(j, i) {
			return less(i, j)
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Counters exports store-level totals for the /metrics counter sum
// (per-fingerprint series are emitted separately by the exposition
// layer).
func (st *StatementStore) Counters() map[string]int64 {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return map[string]int64{
		"statements_tracked":     int64(len(st.m)),
		"statements_evicted":     int64(st.evicted),
		"statement_plan_changes": int64(st.drifts),
	}
}

// FingerprintHex renders a fingerprint ID the way every surface joins
// on it (slow log, /metrics labels, /debug/statements).
func FingerprintHex(fp uint64) string {
	const hexdigits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[fp&0xf]
		fp >>= 4
	}
	return string(buf[:])
}
