package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Handler builds the debug mux:
//
//	/metrics               Prometheus text exposition (counters + latency histograms)
//	/debug/statements      per-fingerprint statement statistics as JSON,
//	                       sorted by total time (?by=calls|mean|rows|errors|alloc|drift|ratio, ?limit=N)
//	/debug/queries         live query registry as JSON
//	/debug/queries/cancel  POST ?id=N — cancel an in-flight query
//	/debug/trace/          IDs with a retrievable trace, as JSON
//	/debug/trace/<id>      one query's spans as Chrome trace_event JSON
//	/debug/trace/<id>/tree the same trace as an indented text tree
//	/debug/pprof/...       the standard pprof handlers
func Handler(c *Collector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, c)
	})
	mux.HandleFunc("/debug/statements", func(w http.ResponseWriter, r *http.Request) {
		by := r.URL.Query().Get("by")
		if by != "" && !validSortKey(by) {
			http.Error(w, fmt.Sprintf("unknown sort key %q (want one of %s)",
				by, strings.Join(StatementSortKeys, "|")), http.StatusBadRequest)
			return
		}
		limit := 0
		if l := r.URL.Query().Get("limit"); l != "" {
			n, err := strconv.Atoi(l)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		snaps := c.Statements.Snapshots(by, limit)
		if snaps == nil {
			snaps = []StatementSnapshot{}
		}
		writeJSON(w, snaps)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Registry.List())
	})
	mux.HandleFunc("/debug/queries/cancel", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		id, err := strconv.ParseUint(r.FormValue("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		if !c.Registry.Cancel(id) {
			http.Error(w, "no such in-flight query", http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "cancelled %d\n", id)
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
		if rest == "" {
			writeJSON(w, c.Registry.TraceIDs())
			return
		}
		idStr, tree := rest, false
		if s, ok := strings.CutSuffix(rest, "/tree"); ok {
			idStr, tree = s, true
		}
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		tr := c.Registry.Trace(id)
		if tr == nil {
			http.Error(w, "unknown or evicted trace", http.StatusNotFound)
			return
		}
		if tree {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "query %d: %s\n%s", tr.ID(), tr.SQL(), tr.TreeString())
			return
		}
		b, err := tr.ChromeTraceJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// counterHelp documents the well-known counter keys; anything not
// listed gets a generic description (scrapers only need *a* HELP line
// to stop warning, and engines register free-form counter sources).
var counterHelp = map[string]string{
	"queries":          "Queries executed successfully.",
	"errors":           "Queries that returned an error.",
	"rows_out":         "Result rows returned across all queries.",
	"delta_rows":       "Appended rows not yet folded by compaction.",
	"snapshot_epoch":   "Latest published snapshot/compaction epoch.",
	"inflight_queries": "Queries currently executing or queued.",
}

func helpFor(k string) string {
	if h, ok := counterHelp[k]; ok {
		return h
	}
	return "Cumulative engine counter " + k + " (summed across engines on this collector)."
}

// writePrometheus renders counters and latency histograms in the
// Prometheus text exposition format (each family with its # HELP and
// # TYPE header). Engine counters become levelheaded_<key>; histograms
// become levelheaded_query_latency_seconds{class=...} and
// levelheaded_phase_latency_seconds{phase=...} with cumulative buckets;
// the statement store exports per-fingerprint series labeled
// {fingerprint="..."}.
func writePrometheus(w http.ResponseWriter, c *Collector) {
	counters := c.Counters()
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := "levelheaded_" + sanitizeMetricName(k)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, helpFor(k), name, name, counters[k])
	}
	fmt.Fprintf(w, "# HELP levelheaded_inflight_queries %s\n# TYPE levelheaded_inflight_queries gauge\nlevelheaded_inflight_queries %d\n",
		helpFor("inflight_queries"), c.Registry.NumActive())

	classes := c.ClassSnapshots()
	classNames := make([]string, 0, len(classes))
	for k := range classes {
		classNames = append(classNames, k)
	}
	sort.Strings(classNames)
	fmt.Fprintf(w, "# HELP levelheaded_query_latency_seconds Whole-query latency by dispatch class.\n")
	fmt.Fprintf(w, "# TYPE levelheaded_query_latency_seconds histogram\n")
	for _, class := range classNames {
		writePromHistogram(w, "levelheaded_query_latency_seconds",
			fmt.Sprintf("class=%q", class), classes[class])
	}
	fmt.Fprintf(w, "# HELP levelheaded_phase_latency_seconds Per-lifecycle-phase latency.\n")
	fmt.Fprintf(w, "# TYPE levelheaded_phase_latency_seconds histogram\n")
	for _, phase := range PhaseNames {
		s := c.PhaseSnapshot(phase)
		if s == nil || s.Count == 0 {
			continue
		}
		writePromHistogram(w, "levelheaded_phase_latency_seconds",
			fmt.Sprintf("phase=%q", phase), s)
	}
	writePromStatements(w, c.Statements)
}

// writePromStatements emits the per-fingerprint counter series. The
// store is LRU-bounded, so cardinality is capped by construction.
func writePromStatements(w http.ResponseWriter, st *StatementStore) {
	snaps := st.Snapshots("time", 0)
	if len(snaps) == 0 {
		return
	}
	families := []struct {
		name, help string
		val        func(*StatementSnapshot) string
	}{
		{"levelheaded_statement_calls_total", "Executions per statement fingerprint.",
			func(s *StatementSnapshot) string { return strconv.FormatUint(s.Calls, 10) }},
		{"levelheaded_statement_errors_total", "Failed executions per statement fingerprint.",
			func(s *StatementSnapshot) string { return strconv.FormatUint(s.Errors, 10) }},
		{"levelheaded_statement_rows_total", "Result rows per statement fingerprint.",
			func(s *StatementSnapshot) string { return strconv.FormatUint(s.Rows, 10) }},
		{"levelheaded_statement_seconds_total", "Total execution time per statement fingerprint.",
			func(s *StatementSnapshot) string { return strconv.FormatFloat(float64(s.TotalNs)/1e9, 'g', -1, 64) }},
		{"levelheaded_statement_plan_changes_total", "Optimizer attribute-order changes per statement fingerprint (plan drift).",
			func(s *StatementSnapshot) string { return strconv.FormatUint(s.PlanChanges, 10) }},
	}
	for _, f := range families {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", f.name, f.help, f.name)
		for i := range snaps {
			s := &snaps[i]
			fmt.Fprintf(w, "%s{fingerprint=%q} %s\n", f.name, s.FingerprintHex, f.val(s))
		}
	}
	fmt.Fprintf(w, "# HELP levelheaded_statement_cost_ratio Observed/estimated §V cost ratio per statement fingerprint.\n")
	fmt.Fprintf(w, "# TYPE levelheaded_statement_cost_ratio gauge\n")
	for i := range snaps {
		s := &snaps[i]
		if s.EstCost <= 0 {
			continue
		}
		fmt.Fprintf(w, "levelheaded_statement_cost_ratio{fingerprint=%q} %s\n",
			s.FingerprintHex, strconv.FormatFloat(s.CostRatio, 'g', -1, 64))
	}
}

func validSortKey(by string) bool {
	for _, k := range StatementSortKeys {
		if by == k {
			return true
		}
	}
	return false
}

// writePromHistogram emits one labeled histogram series with cumulative
// buckets. Only boundaries of occupied buckets are emitted (plus +Inf),
// which stays a valid cumulative bucket list.
func writePromHistogram(w http.ResponseWriter, name, label string, s *HistSnapshot) {
	var cum uint64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		cum += n
		_, hi := BucketBounds(i)
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n", name, label, float64(hi)/1e9, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, label, s.Count)
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, label, float64(s.SumNs)/1e9)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, s.Count)
}

// Server is a running debug HTTP server.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the debug server on addr (host:port; port 0 picks a free
// one) and serves in a background goroutine until Close.
func Serve(addr string, c *Collector) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(c), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	return &Server{srv: srv, ln: ln}, nil
}

// Addr reports the bound address (resolving a requested port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
